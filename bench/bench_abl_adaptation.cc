// Ablation: static vs adaptive configuration across workload phases (the
// paper's Ivy-inspired future work, Section 5).
//
// A day of traffic alternates between a read-mostly file-server phase and a
// write-heavy batch phase. Three systems face it: a static stripe, a static
// SR-Array tuned for the read phase, and the adaptive array that re-shapes at
// phase boundaries (charging itself the migration time).
#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/adaptive_array.h"

using namespace mimdraid;
using namespace mimdraid::bench;

namespace {

constexpr uint64_t kDataset = 8'000'000;

struct PhaseSpec {
  const char* label;
  double read_frac;
  uint32_t outstanding;
  uint64_t ops;
};

const PhaseSpec kPhases[] = {
    {"reads@q1", 1.0, 1, 2000},
    {"writes@q48", 0.15, 48, 3500},
    {"reads@q1", 1.0, 1, 2000},
};

RunResult RunPhase(Simulator* sim, SubmitFn submit, const PhaseSpec& phase,
                   uint64_t seed) {
  ClosedLoopOptions loop;
  loop.outstanding = phase.outstanding;
  loop.read_frac = phase.read_frac;
  loop.sectors = 8;
  loop.warmup_ops = 100;
  loop.measure_ops = phase.ops;
  loop.dataset_sectors = kDataset;
  loop.seed = seed;
  ClosedLoopDriver driver(sim, std::move(submit), loop);
  return driver.Run();
}

double StaticSystem(const ArrayAspect& aspect, SchedulerKind sched,
                    std::vector<double>* per_phase) {
  MimdRaidOptions options;
  options.aspect = aspect;
  options.scheduler = sched;
  options.dataset_sectors = kDataset;
  options.delayed_table_limit = 500;
  MimdRaid array(options);
  double total = 0.0;
  uint64_t seed = 1;
  for (const PhaseSpec& phase : kPhases) {
    const RunResult r =
        RunPhase(&array.sim(), array.Submitter(), phase, seed++);
    per_phase->push_back(r.latency.MeanMs());
    total += r.latency.MeanUs() * static_cast<double>(phase.ops);
  }
  return total / 1000.0;
}

double AdaptiveSystem(std::vector<double>* per_phase, size_t* reshapes) {
  AdaptiveArrayOptions options;
  options.base.aspect = Aspect(6, 1);
  options.base.scheduler = SchedulerKind::kRsatf;
  options.base.dataset_sectors = kDataset;
  options.base.delayed_table_limit = 500;
  options.advisor.min_gain = 1.1;
  options.monitor_window = 512;  // react to phase changes within the probe
  AdaptiveArray adaptive(options);
  double total = 0.0;
  uint64_t seed = 1;
  for (const PhaseSpec& phase : kPhases) {
    // A short probe lets the monitor see the new phase, then adapt.
    PhaseSpec probe = phase;
    probe.ops = 600;
    RunPhase(&adaptive.sim(), adaptive.Submitter(), probe, seed + 100);
    adaptive.Adapt();
    const RunResult r =
        RunPhase(&adaptive.sim(), adaptive.Submitter(), phase, seed++);
    per_phase->push_back(r.latency.MeanMs());
    total += r.latency.MeanUs() * static_cast<double>(phase.ops);
  }
  *reshapes = adaptive.reshapes().size();
  return total / 1000.0;
}

struct SystemResult {
  std::vector<double> phases;
  double total_ms = 0.0;
  size_t reshapes = 0;
};

}  // namespace

int main(int argc, char** argv) {
  InitBenchSweep(argc, argv);
  PrintHeader("Ablation: adaptive reconfiguration",
              "static shapes vs monitor->advisor->reshape across phases");
  DeferredSweep<SystemResult> sweep;
  sweep.Defer([] {
    SystemResult r;
    r.total_ms = StaticSystem(Aspect(6, 1), SchedulerKind::kSatf, &r.phases);
    return r;
  });
  sweep.Defer([] {
    SystemResult r;
    r.total_ms = StaticSystem(Aspect(3, 2), SchedulerKind::kRsatf, &r.phases);
    return r;
  });
  sweep.Defer([] {
    SystemResult r;
    r.total_ms = AdaptiveSystem(&r.phases, &r.reshapes);
    return r;
  });
  sweep.Run();

  std::printf("%-26s", "system");
  for (const PhaseSpec& p : kPhases) {
    std::printf(" %-12s", p.label);
  }
  std::printf(" %s\n", "total op-time");

  auto report = [&](const char* label, const SystemResult& r) {
    std::printf("%-26s", label);
    for (double ms : r.phases) {
      std::printf(" %-12.2f", ms);
    }
    std::printf(" %8.0f ms", r.total_ms);
    if (r.reshapes > 0) {
      std::printf("  (%zu reshapes)", r.reshapes);
    }
    std::printf("\n");
  };

  report("static 6x1x1 stripe", sweep.Next());
  report("static 3x2x1 SR", sweep.Next());
  report("adaptive", sweep.Next());

  std::printf("\nexpected: the static SR wins the read phases but pays in the\n"
              "write flood; the stripe is the mirror image; the adaptive\n"
              "array tracks the better of the two in every phase.\n");
  return 0;
}
