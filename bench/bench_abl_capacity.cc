// Ablation: the capacity-for-performance frontier (the paper's title,
// quantified).
//
// Six disks, one dataset, every redundancy scheme in the repertoire — from
// RAID-5 and the general (k+m) erasure codes (most capacity, slowest small
// writes) through striping, the SR-Array family, RAID-10, and a 6-way mirror
// (least capacity). For each: usable capacity fraction, random-read latency,
// and mixed random throughput.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"

using namespace mimdraid;
using namespace mimdraid::bench;

namespace {

constexpr uint64_t kDataset = 4'000'000;  // ~2 GB
constexpr int kDisks = 6;

struct Outcome {
  double capacity_frac;
  double read_ms;
  double mixed_iops;
};

Outcome RunArray(const ArrayAspect& aspect, SchedulerKind sched) {
  Outcome out{};
  out.capacity_frac = 1.0 / aspect.ReplicasPerBlock();  // 1/(Dr*Dm)
  {
    MimdRaidOptions options;
    options.aspect = aspect;
    options.scheduler = sched;
    options.dataset_sectors = kDataset;
    MimdRaid array(options);
    ClosedLoopOptions loop;
    loop.outstanding = 1;
    loop.read_frac = 1.0;
    loop.sectors = 8;
    loop.warmup_ops = 200;
    loop.measure_ops = 2500;
    out.read_ms = RunClosedLoopOnArray(array, loop).latency.MeanMs();
  }
  {
    MimdRaidOptions options;
    options.aspect = aspect;
    options.scheduler = sched;
    options.dataset_sectors = kDataset;
    options.foreground_write_propagation = true;
    MimdRaid array(options);
    ClosedLoopOptions loop;
    loop.outstanding = 16;
    loop.read_frac = 0.6;
    loop.sectors = 8;
    loop.warmup_ops = 200;
    loop.measure_ops = 3500;
    out.mixed_iops = RunClosedLoopOnArray(array, loop).iops;
  }
  return out;
}

// Unlike RunArray's mixed pass, the parity rigs never set
// foreground_write_propagation: that knob is mirror-only (delayed replica
// propagation vs writing all replicas in the foreground) and Raid5Options()/
// EcOptions() ignore it — a parity small write always does its full RMW or
// reconstruct-write cycle in the foreground. Setting it here would be dead
// config implying a comparison knob that doesn't exist.
Outcome RunRaid5() {
  Outcome out{};
  out.capacity_frac = static_cast<double>(kDisks - 1) / kDisks;
  for (int pass = 0; pass < 2; ++pass) {
    Raid5RigConfig rig;
    rig.disks = kDisks;
    rig.dataset_sectors = kDataset;
    rig.max_scan = 128;
    rig.seed = 41;
    std::unique_ptr<MimdRaid> array = MakeRaid5Array(rig);

    ClosedLoopOptions loop;
    loop.dataset_sectors = kDataset;
    loop.sectors = 8;
    loop.warmup_ops = 200;
    if (pass == 0) {
      loop.outstanding = 1;
      loop.read_frac = 1.0;
      loop.measure_ops = 2500;
    } else {
      loop.outstanding = 16;
      loop.read_frac = 0.6;
      loop.measure_ops = 3500;
    }
    ClosedLoopDriver driver(&array->sim(), array->Submitter(), loop);
    const RunResult r = driver.Run();
    if (pass == 0) {
      out.read_ms = r.latency.MeanMs();
    } else {
      out.mixed_iops = r.iops;
    }
  }
  return out;
}

// General (k+m) erasure points: same six spindles, m parity columns, so the
// capacity fraction is k/(k+m) rather than the hardcoded mirror/RAID-5 forms.
Outcome RunErasure(uint32_t parity_shards) {
  Outcome out{};
  const double k = static_cast<double>(kDisks) - parity_shards;
  out.capacity_frac = k / kDisks;
  for (int pass = 0; pass < 2; ++pass) {
    EcRigConfig rig;
    rig.disks = kDisks;
    rig.parity_shards = parity_shards;
    rig.dataset_sectors = kDataset;
    rig.max_scan = 128;
    rig.seed = 41;
    std::unique_ptr<MimdRaid> array = MakeEcArray(rig);

    ClosedLoopOptions loop;
    loop.dataset_sectors = kDataset;
    loop.sectors = 8;
    loop.warmup_ops = 200;
    if (pass == 0) {
      loop.outstanding = 1;
      loop.read_frac = 1.0;
      loop.measure_ops = 2500;
    } else {
      loop.outstanding = 16;
      loop.read_frac = 0.6;
      loop.measure_ops = 3500;
    }
    ClosedLoopDriver driver(&array->sim(), array->Submitter(), loop);
    const RunResult r = driver.Run();
    if (pass == 0) {
      out.read_ms = r.latency.MeanMs();
    } else {
      out.mixed_iops = r.iops;
    }
  }
  return out;
}

struct Row {
  const char* label;
  ArrayAspect aspect;
  SchedulerKind sched;
};

const std::vector<Row>& Rows() {
  static const std::vector<Row> rows = {
      {"6x1x1 stripe (SATF)", Aspect(6, 1), SchedulerKind::kSatf},
      {"3x2x1 SR (RSATF)", Aspect(3, 2), SchedulerKind::kRsatf},
      {"2x3x1 SR (RSATF)", Aspect(2, 3), SchedulerKind::kRsatf},
      {"3x1x2 RAID-10 (SATF)", Aspect(3, 1, 2), SchedulerKind::kSatf},
      {"1x6x1 SR (RSATF)", Aspect(1, 6), SchedulerKind::kRsatf},
      {"1x1x6 mirror (SATF)", Aspect(1, 1, 6), SchedulerKind::kSatf},
  };
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  InitBenchSweep(argc, argv);
  PrintHeader("Ablation: the capacity-performance frontier",
              "six disks, every scheme (reads q=1; 60/40 mix q=16, fg prop)");
  struct EcRow {
    const char* label;
    uint32_t parity_shards;
  };
  const std::vector<EcRow> ec_rows = {
      {"EC 5+1 (SATF)", 1},
      {"EC 4+2 (SATF)", 2},
      {"EC 3+3 (SATF)", 3},
  };
  DeferredSweep<Outcome> sweep;
  sweep.Defer([] { return RunRaid5(); });
  for (const EcRow& row : ec_rows) {
    sweep.Defer([row] { return RunErasure(row.parity_shards); });
  }
  for (const Row& row : Rows()) {
    sweep.Defer([row] { return RunArray(row.aspect, row.sched); });
  }
  sweep.Run();

  std::printf("%-22s %-10s %-14s %s\n", "scheme", "capacity",
              "read latency", "mixed throughput");
  const Outcome raid5 = sweep.Next();
  std::printf("%-22s %-10.2f %10.2f ms  %8.0f IOPS\n", "RAID-5 (SATF)",
              raid5.capacity_frac, raid5.read_ms, raid5.mixed_iops);
  for (const EcRow& row : ec_rows) {
    const Outcome o = sweep.Next();
    std::printf("%-22s %-10.2f %10.2f ms  %8.0f IOPS\n", row.label,
                o.capacity_frac, o.read_ms, o.mixed_iops);
  }
  for (const Row& row : Rows()) {
    const Outcome o = sweep.Next();
    std::printf("%-22s %-10.2f %10.2f ms  %8.0f IOPS\n", row.label,
                1.0 / row.aspect.ReplicasPerBlock(), o.read_ms, o.mixed_iops);
  }
  std::printf(
      "\nthe frontier: capacity falls left to right across the replication\n"
      "spectrum while read latency improves; RAID-5 and the k+m codes\n"
      "anchor the capacity-efficient end (fraction k/(k+m)) but pay extra\n"
      "accesses per small write, growing with m.\n");
  return 0;
}
