// Ablation: delayed-write machinery (Section 3.4).
//
// Sweeps the NVRAM metadata-table limit under a write burst and compares
// foreground propagation against background propagation: the table limit
// bounds how long propagation can hide, and when it fills, delayed writes are
// forced into the foreground queues, re-exposing the Equation (3) cost.
#include <cstdio>

#include "bench/bench_common.h"

using namespace mimdraid;
using namespace mimdraid::bench;

namespace {

struct Outcome {
  double mean_ms;
  uint64_t forced;
  uint64_t discarded;
};

Outcome Run(size_t table_limit, bool foreground, double write_frac,
            uint32_t outstanding) {
  MimdRaidOptions options;
  options.aspect = Aspect(2, 3);
  options.scheduler = SchedulerKind::kRsatf;
  options.dataset_sectors = 4'000'000;
  options.delayed_table_limit = table_limit;
  options.foreground_write_propagation = foreground;
  options.seed = 23;
  MimdRaid array(options);
  ClosedLoopOptions loop;
  loop.outstanding = outstanding;
  loop.read_frac = 1.0 - write_frac;
  loop.sectors = 8;
  // Hot working set: back-to-back rewrites exercise the discard path.
  loop.footprint_frac = 0.02;
  loop.warmup_ops = 200;
  loop.measure_ops = 4000;
  const RunResult r = RunClosedLoopOnArray(array, loop);
  return Outcome{r.latency.MeanMs(), array.controller().stats().delayed_writes_forced,
                 array.controller().stats().delayed_writes_discarded};
}

}  // namespace

int main(int argc, char** argv) {
  InitBenchSweep(argc, argv);
  PrintHeader("Ablation: delayed writes",
              "NVRAM table limit and propagation policy (2x3 SR, 50% writes)");
  DeferredSweep<Outcome> sweep;
  for (size_t limit : {size_t{10}, size_t{100}, size_t{1000}, size_t{10000}}) {
    sweep.Defer([limit] { return Run(limit, /*foreground=*/false, 0.5, 16); });
  }
  sweep.Defer([] { return Run(10000, /*foreground=*/true, 0.5, 16); });
  sweep.Run();

  std::printf("%-26s %-12s %-10s %-10s\n", "policy", "latency ms", "forced",
              "discarded");
  for (size_t limit : {size_t{10}, size_t{100}, size_t{1000}, size_t{10000}}) {
    const Outcome o = sweep.Next();
    std::printf("background, table=%-7zu %-12.2f %-10llu %-10llu\n", limit,
                o.mean_ms, static_cast<unsigned long long>(o.forced),
                static_cast<unsigned long long>(o.discarded));
  }
  const Outcome fg = sweep.Next();
  std::printf("%-26s %-12.2f %-10llu %-10llu\n", "foreground propagation",
              fg.mean_ms, static_cast<unsigned long long>(fg.forced),
              static_cast<unsigned long long>(fg.discarded));
  std::printf(
      "\nexpected: a large table keeps response time near the read-optimal\n"
      "level (propagation hides in idle gaps and superseded updates are\n"
      "discarded); a tiny table forces propagation into the foreground and\n"
      "approaches the fully synchronous cost.\n");
  return 0;
}
