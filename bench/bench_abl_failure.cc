// Ablation: failure, degraded operation, and rebuild — the reliability side
// of the capacity-for-performance trade (Section 2.5 notes the striped
// mirror's reliability edge over the SR-Array; RAID-5 buys it cheaper still).
//
// Six disks, RAID-10 (3x1x2) vs RAID-5: random-read latency healthy and
// degraded, and the time to rebuild the lost disk on an otherwise idle array.
#include <cstdio>
#include <memory>

#include "bench/bench_common.h"

using namespace mimdraid;
using namespace mimdraid::bench;

namespace {

constexpr uint64_t kDataset = 2'000'000;  // ~1 GB
constexpr int kDisks = 6;

struct Outcome {
  double healthy_ms = 0.0;
  double degraded_ms = 0.0;
  double rebuild_minutes = 0.0;
};

Outcome RunRaid10() {
  Outcome out;
  {
    MimdRaidOptions options;
    options.aspect = Aspect(3, 1, 2);
    options.scheduler = SchedulerKind::kSatf;
    options.dataset_sectors = kDataset;
    MimdRaid array(options);
    ClosedLoopOptions loop;
    loop.outstanding = 1;
    loop.read_frac = 1.0;
    loop.sectors = 8;
    loop.warmup_ops = 150;
    loop.measure_ops = 2500;
    out.healthy_ms = RunClosedLoopOnArray(array, loop).latency.MeanMs();
  }
  {
    MimdRaidOptions options;
    options.aspect = Aspect(3, 1, 2);
    options.scheduler = SchedulerKind::kSatf;
    options.dataset_sectors = kDataset;
    MimdRaid array(options);
    MIMDRAID_CHECK(array.controller().FailDisk(SlotId(0)));
    ClosedLoopOptions loop;
    loop.outstanding = 1;
    loop.read_frac = 1.0;
    loop.sectors = 8;
    loop.warmup_ops = 150;
    loop.measure_ops = 2500;
    out.degraded_ms = RunClosedLoopOnArray(array, loop).latency.MeanMs();
    const SimTime start = array.sim().Now();
    SimTime rebuilt(-1);
    array.controller().RebuildDisk(
        0, [&](const IoResult& r) { rebuilt = r.completion_us; });
    while (rebuilt < SimTime(0)) {
      array.sim().Step();
    }
    out.rebuild_minutes = SecondsFromUs(rebuilt - start) / 60.0;
  }
  return out;
}

Outcome RunRaid5() {
  Outcome out;
  for (int pass = 0; pass < 2; ++pass) {
    Raid5RigConfig rig;
    rig.disks = kDisks;
    rig.dataset_sectors = kDataset;
    rig.seed = 13;
    std::unique_ptr<MimdRaid> array = MakeRaid5Array(rig);
    if (pass == 1) {
      MIMDRAID_CHECK(array->backend().FailDisk(SlotId(0)));
    }
    ClosedLoopOptions loop;
    loop.dataset_sectors = kDataset;
    loop.outstanding = 1;
    loop.read_frac = 1.0;
    loop.sectors = 8;
    loop.warmup_ops = 150;
    loop.measure_ops = 2500;
    ClosedLoopDriver driver(&array->sim(), array->Submitter(), loop);
    const RunResult r = driver.Run();
    if (pass == 0) {
      out.healthy_ms = r.latency.MeanMs();
    } else {
      out.degraded_ms = r.latency.MeanMs();
      const SimTime start = array->sim().Now();
      SimTime rebuilt(-1);
      array->backend().Rebuild(
          SlotId(0), [&](const IoResult& res) { rebuilt = res.completion_us; });
      while (rebuilt < SimTime(0)) {
        array->sim().Step();
      }
      out.rebuild_minutes = SecondsFromUs(rebuilt - start) / 60.0;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  InitBenchSweep(argc, argv);
  PrintHeader("Ablation: failure and rebuild",
              "six disks, one lost: RAID-10 vs RAID-5 (8 KB random reads)");
  DeferredSweep<Outcome> sweep;
  sweep.Defer([] { return RunRaid10(); });
  sweep.Defer([] { return RunRaid5(); });
  sweep.Run();

  std::printf("%-16s %-12s %-12s %-12s %s\n", "scheme", "healthy", "degraded",
              "slowdown", "rebuild time");
  const Outcome r10 = sweep.Next();
  std::printf("%-16s %-9.2f ms %-9.2f ms %-12.2f %.1f min\n", "RAID-10",
              r10.healthy_ms, r10.degraded_ms,
              r10.degraded_ms / r10.healthy_ms, r10.rebuild_minutes);
  const Outcome r5 = sweep.Next();
  std::printf("%-16s %-9.2f ms %-9.2f ms %-12.2f %.1f min\n", "RAID-5",
              r5.healthy_ms, r5.degraded_ms, r5.degraded_ms / r5.healthy_ms,
              r5.rebuild_minutes);
  std::printf(
      "\nexpected: RAID-10 degrades gently (reads fall back to the twin) and\n"
      "rebuilds by plain copy; RAID-5 reads suffer the N-1-way reconstruct\n"
      "fan-out and rebuild touches every row. An SR-Array (Dm=1) would not\n"
      "survive the failure at all — the paper's reliability tradeoff.\n");
  return 0;
}
