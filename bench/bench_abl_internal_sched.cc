// Ablation: host-based software scheduling vs drive-internal firmware
// scheduling (the open question the paper closes with).
//
// One noisy drive, a closed random-read queue. Four ways to schedule it:
//   host FCFS                — no position knowledge anywhere;
//   host SATF (software)     — the paper's contribution: timestamps-only
//                              calibration + slack, one command at a time;
//   firmware FCFS (tags)     — drive accepts many commands, serves in order;
//   firmware SATF            — drive schedules internally with perfect
//                              knowledge of its own head and spindle.
// Firmware SATF is the upper bound; the software predictor's job is to get
// close to it without any hardware support.
#include <cstdio>
#include <unordered_map>

#include "bench/bench_common.h"
#include "src/calib/calibration.h"
#include "src/calib/predictor.h"
#include "src/disk/queued_disk.h"
#include "src/sched/scheduler.h"

using namespace mimdraid;
using namespace mimdraid::bench;

namespace {

constexpr int kOps = 4000;
constexpr uint32_t kQueue = 16;

struct Outcome {
  double iops;
  double mean_ms;
};

std::unique_ptr<SimDisk> MakeDrive(Simulator* sim) {
  return std::make_unique<SimDisk>(
      sim, MakeSt39133Geometry(), MakeSt39133SeekProfile(),
      DiskNoiseModel::Prototype(), /*seed=*/5,
      /*phase=*/1234.0, 6000.0 * (1 + 22e-6));
}

// Closed loop over a queue abstraction.
template <typename SubmitOne>
Outcome RunClosed(Simulator* sim, SubmitOne submit) {
  Rng rng(9);
  int done = 0;
  Summary latency;
  SimTime start = sim->Now();
  std::function<void()> issue = [&]() {
    const SimTime t0 = sim->Now();
    submit(rng, [&, t0](SimTime completion) {
      ++done;
      latency.Add(static_cast<double>((completion - t0).us()));
      if (done + static_cast<int>(kQueue) <= kOps) {
        issue();
      }
    });
  };
  for (uint32_t i = 0; i < kQueue; ++i) {
    issue();
  }
  while (done < kOps) {
    sim->Step();
  }
  Outcome out;
  out.iops = static_cast<double>(done) / SecondsFromUs(sim->Now() - start);
  out.mean_ms = latency.mean() / 1000.0;
  return out;
}

// Host-side scheduling: external queue + scheduler + software predictor,
// one command outstanding (the prototype's structure).
Outcome RunHost(SchedulerKind kind) {
  Simulator sim;
  auto drive_ptr = MakeDrive(&sim);
  SimDisk& disk = *drive_ptr;
  CalibrationOptions copt;
  copt.seek.num_distances = 14;
  auto predictor = MakeCalibratedPredictor(&sim, &disk, copt);
  auto sched = MakeScheduler(kind);
  std::vector<QueuedRequest> queue;
  uint64_t next_id = 1;
  std::unordered_map<uint64_t, std::function<void(SimTime)>> done_map;

  std::function<void()> pump = [&]() {
    if (disk.busy() || queue.empty()) {
      return;
    }
    ScheduleContext ctx;
    ctx.now = sim.Now();
    ctx.predictor = predictor.get();
    ctx.layout = &disk.layout();
    const SchedulerPick pick = sched->Pick(queue, ctx);
    QueuedRequest entry = std::move(queue[pick.queue_index]);
    queue.erase(queue.begin() + static_cast<ptrdiff_t>(pick.queue_index));
    double predicted = pick.predicted_service_us;
    if (predicted <= 0) {
      predicted = predictor->Predict(sim.Now(), pick.lba, entry.sectors, false)
                      .total_us;
    }
    predictor->OnDispatch(sim.Now(), pick.lba, entry.sectors, false, predicted);
    const uint64_t id = entry.id;
    const BlockAddr lba = pick.lba;
    const uint32_t sectors = entry.sectors;
    disk.Start(entry.op, lba, sectors, [&, id, lba,
                                        sectors](const DiskOpResult& r) {
      predictor->OnCompletion(r.completion_us, lba, sectors);
      auto it = done_map.find(id);
      auto cb = std::move(it->second);
      done_map.erase(it);
      cb(r.completion_us);
      pump();
    });
  };

  return RunClosed(&sim, [&](Rng& rng, std::function<void(SimTime)> cb) {
    QueuedRequest entry;
    entry.id = next_id++;
    entry.op = DiskOp::kRead;
    entry.sectors = 1;
    entry.candidate_lbas = {BlockAddr(rng.UniformU64(disk.num_sectors()))};
    entry.arrival_us = sim.Now();
    done_map[entry.id] = std::move(cb);
    queue.push_back(std::move(entry));
    pump();
  });
}

Outcome RunFirmware(FirmwarePolicy policy) {
  Simulator sim;
  auto drive_ptr = MakeDrive(&sim);
  SimDisk& disk = *drive_ptr;
  InternalQueueDisk drive(&disk, policy);
  return RunClosed(&sim, [&](Rng& rng, std::function<void(SimTime)> cb) {
    drive.Submit(DiskOp::kRead, BlockAddr(rng.UniformU64(disk.num_sectors())), 1,
                 [cb = std::move(cb)](const DiskOpResult& r) {
                   cb(r.completion_us);
                 });
  });
}

}  // namespace

int main(int argc, char** argv) {
  InitBenchSweep(argc, argv);
  PrintHeader("Ablation: host vs firmware scheduling",
              "one noisy drive, 512 B random reads, queue 16");
  DeferredSweep<Outcome> sweep;
  sweep.Defer([] { return RunHost(SchedulerKind::kFcfs); });
  sweep.Defer([] { return RunHost(SchedulerKind::kLook); });
  sweep.Defer([] { return RunHost(SchedulerKind::kSatf); });
  sweep.Defer([] { return RunFirmware(FirmwarePolicy::kFcfs); });
  sweep.Defer([] { return RunFirmware(FirmwarePolicy::kSatf); });
  sweep.Run();

  std::printf("%-32s %-10s %s\n", "scheduler", "IOPS", "mean latency");
  const Outcome host_fcfs = sweep.Next();
  std::printf("%-32s %-10.0f %.2f ms\n", "host FCFS", host_fcfs.iops,
              host_fcfs.mean_ms);
  const Outcome host_look = sweep.Next();
  std::printf("%-32s %-10.0f %.2f ms\n", "host LOOK (software)",
              host_look.iops, host_look.mean_ms);
  const Outcome host_satf = sweep.Next();
  std::printf("%-32s %-10.0f %.2f ms\n", "host SATF (software predictor)",
              host_satf.iops, host_satf.mean_ms);
  const Outcome fw_fcfs = sweep.Next();
  std::printf("%-32s %-10.0f %.2f ms\n", "firmware FCFS (tags)", fw_fcfs.iops,
              fw_fcfs.mean_ms);
  const Outcome fw_satf = sweep.Next();
  std::printf("%-32s %-10.0f %.2f ms\n", "firmware SATF (perfect)",
              fw_satf.iops, fw_satf.mean_ms);
  std::printf(
      "\nexpected: the software predictor recovers most of the firmware\n"
      "SATF gain over FCFS without hardware support (the paper's claim);\n"
      "the residual gap is the slack paid for unobservable overheads.\n");
  return 0;
}
