// Ablation: intra-track vs cross-track rotational replication (Section 2.2).
//
// The paper rejects placing replicas within a track because it shortens the
// effective track and multiplies track switches for large sequential I/O,
// and chooses different tracks of the same cylinder instead. This ablation
// measures both placements at Dr=3: small random reads (where the two should
// be comparable) and large sequential reads (where intra-track placement
// forfeits bandwidth).
#include <cstdio>

#include "bench/bench_common.h"

using namespace mimdraid;
using namespace mimdraid::bench;

namespace {

struct Outcome {
  double random_ms = 0.0;
  double seq_read_mb_s = 0.0;       // RSATF: replica-aware
  double seq_read_naive_mb_s = 0.0; // FCFS: always the primary copy
  double seq_write_mb_s = 0.0;      // all replicas written (foreground)
};

double SequentialSweep(PlacementMode mode, SchedulerKind sched, DiskOp op,
                       uint64_t seed) {
  MimdRaidOptions options;
  options.aspect = Aspect(1, 3);  // single column isolates per-disk bandwidth
  options.scheduler = sched;
  options.dataset_sectors = 4'000'000;
  options.placement_mode = mode;
  options.foreground_write_propagation = true;
  options.seed = seed;
  // Zero per-command overhead and track-sized stripe units: expose the
  // *mechanical* streaming behavior of the placement (with command overhead,
  // per-fragment costs dominate both placements equally).
  options.noise = DiskNoiseModel{.overhead_mean_us = 0.0,
                                 .overhead_stddev_us = 0.0,
                                 .post_overhead_mean_us = 0.0,
                                 .post_overhead_stddev_us = 0.0,
                                 .hiccup_prob = 0.0,
                                 .hiccup_mean_us = 0.0};
  options.stripe_unit_sectors = 1024;
  MimdRaid array(options);
  constexpr uint32_t kReq = 512;  // 256 KiB
  constexpr int kOps = 300;
  const SimTime start = array.sim().Now();
  uint64_t lba = 0;
  int done = 0;
  std::function<void()> next = [&]() {
    if (done >= kOps) {
      return;
    }
    array.controller().Submit(op, lba, kReq, [&](const IoResult&) {
      ++done;
      lba += kReq;
      next();
    });
  };
  next();
  while (done < kOps) {
    array.sim().Step();
  }
  const double secs = SecondsFromUs(array.sim().Now() - start);
  return static_cast<double>(kOps) * kReq * 512.0 / 1e6 / secs;
}

double RandomReadMs(PlacementMode mode) {
  MimdRaidOptions options;
  options.aspect = Aspect(2, 3);
  options.scheduler = SchedulerKind::kRsatf;
  options.dataset_sectors = 4'000'000;
  options.placement_mode = mode;
  options.seed = 31;
  MimdRaid array(options);
  ClosedLoopOptions loop;
  loop.outstanding = 1;
  loop.read_frac = 1.0;
  loop.sectors = 8;
  loop.warmup_ops = 200;
  loop.measure_ops = 3000;
  return RunClosedLoopOnArray(array, loop).latency.MeanMs();
}

void DeferOutcome(DeferredSweep<double>& sweep, PlacementMode mode) {
  sweep.Defer([mode] { return RandomReadMs(mode); });
  sweep.Defer([mode] {
    return SequentialSweep(mode, SchedulerKind::kRsatf, DiskOp::kRead, 32);
  });
  sweep.Defer([mode] {
    return SequentialSweep(mode, SchedulerKind::kFcfs, DiskOp::kRead, 33);
  });
  sweep.Defer([mode] {
    return SequentialSweep(mode, SchedulerKind::kRsatf, DiskOp::kWrite, 34);
  });
}

Outcome NextOutcome(DeferredSweep<double>& sweep) {
  Outcome out{};
  out.random_ms = sweep.Next();
  out.seq_read_mb_s = sweep.Next();
  out.seq_read_naive_mb_s = sweep.Next();
  out.seq_write_mb_s = sweep.Next();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  InitBenchSweep(argc, argv);
  PrintHeader("Ablation: replica placement",
              "intra-track vs cross-track (Dr = 3)");
  DeferredSweep<double> sweep;
  DeferOutcome(sweep, PlacementMode::kCrossTrack);
  DeferOutcome(sweep, PlacementMode::kIntraTrack);
  sweep.Run();
  const Outcome cross = NextOutcome(sweep);
  const Outcome intra = NextOutcome(sweep);
  std::printf("%-22s %-16s %-16s %-16s %-16s\n", "placement",
              "8KB random ms", "seq read MB/s", "naive read MB/s",
              "seq write MB/s");
  std::printf("%-22s %-16.2f %-16.1f %-16.1f %-16.1f\n",
              "cross-track (paper)", cross.random_ms, cross.seq_read_mb_s,
              cross.seq_read_naive_mb_s, cross.seq_write_mb_s);
  std::printf("%-22s %-16.2f %-16.1f %-16.1f %-16.1f\n",
              "intra-track (Ng '91)", intra.random_ms, intra.seq_read_mb_s,
              intra.seq_read_naive_mb_s, intra.seq_write_mb_s);
  std::printf(
      "\nexpected: comparable small-read latency; intra-track placement\n"
      "shortens the effective track, costing sequential bandwidth — worst\n"
      "for replica-oblivious readers and for writes, which must lay down\n"
      "every copy (the Section 2.2 design argument).\n");
  return 0;
}
