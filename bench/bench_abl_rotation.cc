// Ablation: rotational-replication models (Section 2.2).
//
// Measures the rotational delay of choosing the closest among Dr evenly
// spaced replicas against Equation (2) (R/2Dr) and the rejected
// random-placement model (R/(Dr+1)), and prints the Equation (3) foreground
// write cost for reference. This isolates the mechanism the SR-Array is
// built on, independent of seeks and scheduling.
#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "src/array/placement.h"
#include "src/model/analytic.h"
#include "src/util/summary.h"

using namespace mimdraid;
using namespace mimdraid::bench;

namespace {

double MeasureEvenReplicaRotationUs(int dr) {
  Simulator sim;
  SimDisk disk(&sim, MakeSt39133Geometry(), MakeSt39133SeekProfile(),
               DiskNoiseModel::None(), /*seed=*/7, /*phase=*/0.0);
  const DiskLayout& layout = disk.layout();
  SrDiskPlacement placement(&layout, dr);
  const DiskTimingModel& truth = disk.DebugTimingModel();
  Rng rng(13);
  Summary rot;
  for (int i = 0; i < 6000; ++i) {
    const uint64_t s = rng.UniformU64(placement.capacity_sectors());
    const double now = rng.UniformDouble(0.0, 1e9);
    // Head already on the right cylinder: isolate the rotational choice.
    const Chs chs = layout.ToChs(placement.PhysicalLba(s, 0));
    const HeadState head{chs.cylinder, chs.head};
    double best = 1e18;
    for (int r = 0; r < dr; ++r) {
      const AccessPlan plan = truth.Plan(
          head, now, placement.PhysicalLba(s, r), 1, /*is_write=*/false);
      // Head switches between replica tracks do not count as rotation.
      best = std::min(best, plan.rotational_us);
    }
    rot.Add(best);
  }
  return rot.mean();
}

}  // namespace

int main(int argc, char** argv) {
  InitBenchSweep(argc, argv);
  PrintHeader("Ablation: rotational replication",
              "Equations (2)/(3) vs measurement");
  const double r_us = 6000.0;
  DeferredSweep<double> sweep;
  for (int dr : {1, 2, 3, 4, 6}) {
    sweep.Defer([dr] { return MeasureEvenReplicaRotationUs(dr); });
  }
  sweep.Run();

  std::printf("%-5s %-18s %-18s %-18s %-18s\n", "Dr", "model even R/2Dr",
              "model random", "measured (even)", "write cost Eq(3)");
  for (int dr : {1, 2, 3, 4, 6}) {
    std::printf("%-5d %-18.0f %-18.0f %-18.0f %-18.0f\n", dr,
                EvenReplicaReadRotationUs(r_us, dr),
                RandomReplicaReadRotationUs(r_us, dr), sweep.Next(),
                ReplicaWriteRotationUs(r_us, dr));
  }
  std::printf("\nexpected: measured rotation tracks R/2Dr (even placement),\n"
              "clearly better than the random-placement model R/(Dr+1).\n");
  return 0;
}
