// Ablation: the prediction slack and its feedback loop (Section 3.2).
//
// Small errors in timing measurement can cost a full rotation; the paper
// inserts a slack of k sectors, tuned by a real-time feedback loop, so more
// than 99% of requests stay on target. This ablation sweeps fixed slacks
// against the adaptive loop on noisy drives and reports miss rate, demerit,
// and mean response time — exposing both failure modes: too little slack
// (rotation misses) and too much (rotational opportunity thrown away).
#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "src/calib/predictor.h"

using namespace mimdraid;
using namespace mimdraid::bench;

namespace {

struct Outcome {
  double miss_pct = 0.0;
  double demerit_us = 0.0;
  double latency_ms = 0.0;
  double final_slack_us = 0.0;
};

Outcome Run(double slack_us, bool adaptive) {
  MimdRaidOptions options;
  options.aspect = Aspect(2, 3);
  options.scheduler = SchedulerKind::kRsatf;
  options.dataset_sectors = 4'000'000;
  options.noise = DiskNoiseModel::Prototype();
  options.use_oracle_predictor = false;
  options.recalibration_interval_us = SimDuration(120'000'000);
  options.calibration.seek.num_distances = 10;
  options.seed = 3;
  options.slack.initial_slack_us = slack_us;
  if (!adaptive) {
    options.slack.min_slack_us = slack_us;
    options.slack.max_slack_us = slack_us;
  }
  MimdRaid array(options);

  ClosedLoopOptions loop;
  loop.outstanding = 2;
  loop.read_frac = 1.0;
  loop.sectors = 1;
  loop.warmup_ops = 200;
  loop.measure_ops = 4000;
  const RunResult r = RunClosedLoopOnArray(array, loop);

  Outcome out;
  uint64_t predictions = 0;
  uint64_t misses = 0;
  double sq = 0.0;
  double slack_sum = 0.0;
  for (size_t i = 0; i < array.num_disks(); ++i) {
    auto& p = dynamic_cast<HeadPositionPredictor&>(array.predictor(i));
    predictions += p.stats().predictions;
    misses += p.stats().misses;
    sq += p.stats().squared_error_sum;
    slack_sum += p.SlackUs();
  }
  out.miss_pct =
      100.0 * static_cast<double>(misses) / static_cast<double>(predictions);
  out.demerit_us = std::sqrt(sq / static_cast<double>(predictions));
  out.latency_ms = r.latency.MeanMs();
  out.final_slack_us = slack_sum / static_cast<double>(array.num_disks());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  InitBenchSweep(argc, argv);
  PrintHeader("Ablation: slack",
              "rotation misses vs wasted rotation (2x3 SR-Array, RSATF)");
  DeferredSweep<Outcome> sweep;
  for (double s : {0.0, 100.0, 250.0, 500.0, 1000.0, 2000.0}) {
    sweep.Defer([s] { return Run(s, /*adaptive=*/false); });
  }
  sweep.Defer([] { return Run(450.0, /*adaptive=*/true); });
  sweep.Run();

  std::printf("%-20s %-8s %-12s %-12s %s\n", "policy", "miss%", "demerit us",
              "latency ms", "final slack us");
  for (double s : {0.0, 100.0, 250.0, 500.0, 1000.0, 2000.0}) {
    const Outcome o = sweep.Next();
    std::printf("fixed %-14.0f %-8.2f %-12.0f %-12.2f %.0f\n", s, o.miss_pct,
                o.demerit_us, o.latency_ms, o.final_slack_us);
  }
  const Outcome o = sweep.Next();
  std::printf("%-20s %-8.2f %-12.0f %-12.2f %.0f\n", "adaptive (paper)",
              o.miss_pct, o.demerit_us, o.latency_ms, o.final_slack_us);
  std::printf("\nexpected: tiny slack -> misses and high demerit; huge slack\n"
              "-> no misses but inflated response time; the adaptive loop\n"
              "lands between, holding misses near the 1%% target.\n");
  return 0;
}
