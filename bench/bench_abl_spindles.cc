// Ablation: synchronized vs unsynchronized spindles in a striped mirror
// (Section 2.5).
//
// The striped mirror's rotationally even cross-disk replica placement only
// works if spindles are synchronized; on unsynchronized drives the copies sit
// at random relative angles and the read-side rotational benefit decays.
// The paper notes spindle sync was already disappearing from drives — this
// ablation quantifies what that costs a RAID-10 and shows the SR-Array
// (same-disk replicas) is immune.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

using namespace mimdraid;
using namespace mimdraid::bench;

namespace {

double MeasureMeanMs(const ArrayAspect& aspect, SchedulerKind sched,
                     bool synchronized_spindles) {
  MimdRaidOptions options;
  options.aspect = aspect;
  options.scheduler = sched;
  options.dataset_sectors = 8'000'000;
  options.synchronized_spindles = synchronized_spindles;
  options.seed = 17;
  MimdRaid array(options);
  ClosedLoopOptions loop;
  loop.outstanding = 1;  // latency view: replica choice matters most
  loop.read_frac = 1.0;
  loop.sectors = 1;
  loop.warmup_ops = 200;
  loop.measure_ops = 4000;
  return RunClosedLoopOnArray(array, loop).latency.MeanMs();
}

struct Row {
  const char* label;
  ArrayAspect aspect;
  SchedulerKind sched;
};

const std::vector<Row>& Rows() {
  static const std::vector<Row> rows = {
      {"3x1x2 RAID-10 (SATF)", Aspect(3, 1, 2), SchedulerKind::kSatf},
      {"1x1x6 mirror (SATF)", Aspect(1, 1, 6), SchedulerKind::kSatf},
      {"3x2x1 SR (RSATF)", Aspect(3, 2), SchedulerKind::kRsatf},
      {"1x6x1 SR (RSATF)", Aspect(1, 6), SchedulerKind::kRsatf},
  };
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  InitBenchSweep(argc, argv);
  PrintHeader("Ablation: spindle synchronization",
              "striped mirror vs SR-Array (random reads, six disks)");
  DeferredSweep<double> sweep;
  for (const Row& row : Rows()) {
    sweep.Defer([row] { return MeasureMeanMs(row.aspect, row.sched, true); });
    sweep.Defer([row] { return MeasureMeanMs(row.aspect, row.sched, false); });
  }
  sweep.Run();

  std::printf("%-24s %-14s %-14s\n", "configuration", "synced", "unsynced");
  for (const Row& row : Rows()) {
    const double synced = sweep.Next();
    const double unsynced = sweep.Next();
    std::printf("%-24s %-14.2f %-14.2f (%+.1f%%)\n", row.label, synced,
                unsynced, 100.0 * (unsynced - synced) / synced);
  }
  std::printf("\nexpected: mirrored configurations lose their even replica\n"
              "spacing without spindle sync; SR-Array columns are unaffected\n"
              "(all replicas share a spindle).\n");
  return 0;
}
