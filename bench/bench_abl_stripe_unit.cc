// Ablation: striping-unit size. The prototype fixes 64 KiB (Section 3.1);
// this sweep shows where that sits: small units fragment requests across
// disks (parallel transfer but per-command overheads and lost locality),
// large units serialize big requests on one arm.
#include <cstdio>

#include "bench/bench_common.h"

using namespace mimdraid;
using namespace mimdraid::bench;

namespace {

double Run(uint32_t unit_sectors, uint32_t io_sectors) {
  MimdRaidOptions options;
  options.aspect = Aspect(2, 3);
  options.scheduler = SchedulerKind::kRsatf;
  options.dataset_sectors = 8'000'000;
  options.stripe_unit_sectors = unit_sectors;
  MimdRaid array(options);
  ClosedLoopOptions loop;
  loop.outstanding = 8;
  loop.read_frac = 0.7;
  loop.sectors = io_sectors;
  loop.warmup_ops = 200;
  loop.measure_ops = 3000;
  return RunClosedLoopOnArray(array, loop).latency.MeanMs();
}

}  // namespace

int main(int argc, char** argv) {
  InitBenchSweep(argc, argv);
  PrintHeader("Ablation: striping unit",
              "2x3 SR-Array, queue 8, 70% reads (mean ms)");
  DeferredSweep<double> sweep;
  for (uint32_t unit : {16u, 32u, 64u, 128u, 256u, 512u}) {
    for (uint32_t io : {8u, 128u, 512u}) {
      sweep.Defer([unit, io] { return Run(unit, io); });
    }
  }
  sweep.Run();

  std::printf("%-12s %-12s %-12s %-12s\n", "unit", "4 KB I/O", "64 KB I/O",
              "256 KB I/O");
  for (uint32_t unit : {16u, 32u, 64u, 128u, 256u, 512u}) {
    const double ms_4k = sweep.Next();
    const double ms_64k = sweep.Next();
    const double ms_256k = sweep.Next();
    std::printf("%4u KB      %-12.2f %-12.2f %-12.2f\n", unit / 2, ms_4k,
                ms_64k, ms_256k);
  }
  std::printf("\nthe prototype's 64 KiB unit (128 sectors) sits at the knee:\n"
              "small units splinter large I/O into per-disk commands; very\n"
              "large units forfeit cross-disk parallelism.\n");
  return 0;
}
