// Shared helpers for the table/figure reproduction benchmarks.
//
// Each bench binary regenerates one table or figure from the paper's
// evaluation section: it builds the workload, sweeps the same parameter axis,
// and prints the same rows/series the paper reports, plus the model curves
// where the paper shows them. Absolute values differ from the paper (our
// substrate is a calibrated simulator, not the authors' testbed); the series
// shapes and orderings are the reproduction target (see EXPERIMENTS.md).
#ifndef MIMDRAID_BENCH_BENCH_COMMON_H_
#define MIMDRAID_BENCH_BENCH_COMMON_H_

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/experiment.h"
#include "src/core/mimd_raid.h"
#include "src/core/sweep_runner.h"
#include "src/model/configurator.h"
#include "src/obs/chrome_trace.h"
#include "src/obs/trace_collector.h"
#include "src/util/check.h"
#include "src/util/flags.h"
#include "src/workload/synthetic.h"

namespace mimdraid {
namespace bench {

inline void PrintHeader(const char* id, const char* title) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("==============================================================\n");
}

// ---------------------------------------------------------------------------
// Parallel sweep support.
//
// Every bench sweep is a grid of independent deterministic points. The
// conversion pattern is two passes over the same loop structure: pass one
// registers each measurement as a DeferredSweep point (in the exact order the
// serial code used to execute it), Run() executes them all on a SweepRunner
// pool, and pass two replays the original print loop consuming results with
// Next() — so stdout is byte-identical to the serial run for any job count.
// ---------------------------------------------------------------------------

// Requested worker count, set once in main() by InitBenchSweep() before any
// sweep runs and read-only afterwards (safe to read from workers).
inline size_t g_bench_jobs_request = 0;

// Number of the sweep point executing on this thread (-1 outside a point);
// gives per-point trace filenames their stable, thread-safe numbering.
// Points are numbered at Defer() time — main thread, original serial call
// order — and the counter spans every sweep in the process, so the numbering
// reproduces the old serial call-order numbering for any job count.
inline thread_local int tl_sweep_point_index = -1;
inline int g_sweep_point_counter = 0;  // main-thread only (Defer time)

// Parses --jobs N (0 = auto). Call first thing in main().
inline void InitBenchSweep(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int64_t jobs = flags.GetInt("jobs", 0);
  g_bench_jobs_request = jobs > 0 ? static_cast<size_t>(jobs) : 0;
}

// --jobs wins, then MIMDRAID_JOBS, then hardware_concurrency; 1 is the exact
// old serial path (points run inline on the main thread).
inline size_t BenchJobs() {
  return SweepRunner::ResolveJobs(g_bench_jobs_request);
}

template <typename R>
class DeferredSweep {
 public:
  // Registers one measurement point. It may run on any worker thread: it must
  // not print, and must not share mutable state with other points.
  void Defer(std::function<R()> fn) {
    const size_t index = results_.size();
    const int point_number = g_sweep_point_counter++;
    results_.emplace_back();
    tasks_.push_back([this, index, point_number, fn = std::move(fn)] {
      const int saved = tl_sweep_point_index;
      tl_sweep_point_index = point_number;
      results_[index] = fn();
      tl_sweep_point_index = saved;
    });
  }

  // Executes every deferred point (order of completion is unspecified;
  // results land in submission-order slots).
  void Run() {
    SweepRunner runner(BenchJobs());
    runner.RunAll(std::move(tasks_));
    tasks_.clear();
  }

  // Results in submission order, for the print pass.
  const R& Next() {
    MIMDRAID_CHECK_LT(next_, results_.size());
    return results_[next_++];
  }

 private:
  std::vector<std::function<void()>> tasks_;
  std::deque<R> results_;  // deque: slots stay put while Defer() grows it
  size_t next_ = 0;
};

struct TraceRunConfig {
  ArrayAspect aspect;
  SchedulerKind scheduler = SchedulerKind::kRsatf;
  double rate_scale = 1.0;
  size_t max_scan = 128;
  size_t max_outstanding = 4000;
  bool foreground_writes = false;
  uint64_t seed = 42;
};

struct TraceRunOutput {
  double mean_ms = 0.0;
  double p99_ms = 0.0;
  double iops = 0.0;
  bool saturated = false;
};

// Opt-in per-run tracing: when MIMDRAID_TRACE_DIR names a directory, every
// RunTraceConfig call records the full request/disk-op timeline and writes it
// as Chrome trace-event JSON (trace_NNNN.json, one file per run) with a text
// summary on stderr. Inside a DeferredSweep point the file is numbered by the
// point index — stable across job counts and racefree, and identical to the
// old call-order numbering when each point makes one call (every converted
// bench does); outside a sweep a process-wide counter preserves call-order
// numbering. Unset (the default) leaves the collector pointer nullptr and the
// run byte-identical to an untraced one.
inline TraceRunOutput RunTraceConfig(const Trace& trace,
                                     const TraceRunConfig& config) {
  const char* trace_dir = std::getenv("MIMDRAID_TRACE_DIR");
  // mdl-ok(MDL005): this rig IS the harness; it owns the collector it lends
  std::unique_ptr<TraceCollector> collector;
  if (trace_dir != nullptr) {
    collector = std::make_unique<TraceCollector>();
  }
  MimdRaidOptions options;
  options.aspect = config.aspect;
  options.scheduler = config.scheduler;
  options.dataset_sectors = trace.dataset_sectors;
  options.max_scan = config.max_scan;
  options.foreground_write_propagation = config.foreground_writes;
  options.seed = config.seed;
  options.collector = collector.get();
  MimdRaid array(options);
  TracePlayerOptions popt;
  popt.rate_scale = config.rate_scale;
  popt.max_outstanding = config.max_outstanding;
  popt.collector = collector.get();
  const RunResult r = RunTraceOnArray(array, trace, popt);
  if (collector != nullptr) {
    // mdl-ok(MDL004): process-wide atomic file counter, documented above
    static std::atomic<int> seq{0};
    const int file_id = tl_sweep_point_index >= 0
                            ? tl_sweep_point_index
                            : seq.fetch_add(1, std::memory_order_relaxed);
    char path[512];
    std::snprintf(path, sizeof(path), "%s/trace_%04d.json", trace_dir,
                  file_id);
    if (WriteChromeTraceFile(*collector, path)) {
      std::fprintf(stderr, "[trace] wrote %s\n%s", path,
                   collector->Summary().c_str());
    } else {
      std::fprintf(stderr, "[trace] failed to write %s\n", path);
    }
  }
  TraceRunOutput out;
  out.saturated = r.saturated;
  out.mean_ms = r.saturated ? -1.0 : r.latency.MeanMs();
  out.p99_ms = r.saturated ? -1.0 : r.latency.PercentileUs(0.99) / 1000.0;
  out.iops = r.iops;
  return out;
}

inline std::string FormatMs(double ms) {
  if (ms < 0.0) {
    return "   sat";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%6.2f", ms);
  return buf;
}

// The standard drive and the model parameters the paper derives from it.
inline ModelDiskParams StandardModelParams(uint64_t dataset_sectors) {
  return ModelParamsForDataset(MakeSt39133Geometry(), MakeSt39133SeekProfile(),
                               dataset_sectors);
}

// Aspect shorthand.
inline ArrayAspect Aspect(int ds, int dr, int dm = 1) {
  ArrayAspect a;
  a.ds = ds;
  a.dr = dr;
  a.dm = dm;
  return a;
}

// RAID-5 rig on the MimdRaid backend-selection path: same drive model,
// predictor wiring, and assembly as the mirror rigs, rotating parity instead
// of replicas. Drive via array->Submitter() (or array->backend().Submit);
// fail/rebuild via array->raid5() or the ArrayBackend interface.
struct Raid5RigConfig {
  int disks = 6;
  uint64_t dataset_sectors = 1'000'000;
  SchedulerKind scheduler = SchedulerKind::kSatf;
  size_t max_scan = 0;
  uint32_t stripe_unit_sectors = 128;
  uint64_t seed = 42;
  bool enable_fault_injection = false;
  FaultInjectorOptions fault;
  uint32_t disk_error_fail_threshold = 0;
  uint32_t hot_spares = 0;
  SimDuration scrub_interval_us;
  TraceCollector* collector = nullptr;
  InvariantAuditor* auditor = nullptr;
};

inline std::unique_ptr<MimdRaid> MakeRaid5Array(const Raid5RigConfig& config) {
  MimdRaidOptions options;
  options.backend = ArrayBackendKind::kRaid5;
  options.aspect = Aspect(config.disks, 1, 1);
  options.scheduler = config.scheduler;
  options.max_scan = config.max_scan;
  options.dataset_sectors = config.dataset_sectors;
  options.stripe_unit_sectors = config.stripe_unit_sectors;
  options.seed = config.seed;
  options.enable_fault_injection = config.enable_fault_injection;
  options.fault = config.fault;
  options.disk_error_fail_threshold = config.disk_error_fail_threshold;
  options.hot_spares = config.hot_spares;
  options.scrub_interval_us = config.scrub_interval_us;
  options.collector = config.collector;
  options.auditor = config.auditor;
  return std::make_unique<MimdRaid>(options);
}

// General (k+m) erasure rig on the same backend-selection path: `disks`
// columns, `parity_shards` of them parity per rotated stripe row. Fail up to
// m slots and reads stay correct; fail/rebuild via array->ec() or the
// ArrayBackend interface.
struct EcRigConfig {
  int disks = 6;
  uint32_t parity_shards = 2;
  uint64_t dataset_sectors = 1'000'000;
  SchedulerKind scheduler = SchedulerKind::kSatf;
  size_t max_scan = 0;
  uint32_t stripe_unit_sectors = 128;
  uint64_t seed = 42;
  bool enable_fault_injection = false;
  FaultInjectorOptions fault;
  uint32_t disk_error_fail_threshold = 0;
  uint32_t hot_spares = 0;
  SimDuration scrub_interval_us;
  TraceCollector* collector = nullptr;
  InvariantAuditor* auditor = nullptr;
};

inline std::unique_ptr<MimdRaid> MakeEcArray(const EcRigConfig& config) {
  MimdRaidOptions options;
  options.backend = ArrayBackendKind::kErasure;
  options.aspect = Aspect(config.disks, 1, 1);
  options.parity_shards = config.parity_shards;
  options.scheduler = config.scheduler;
  options.max_scan = config.max_scan;
  options.dataset_sectors = config.dataset_sectors;
  options.stripe_unit_sectors = config.stripe_unit_sectors;
  options.seed = config.seed;
  options.enable_fault_injection = config.enable_fault_injection;
  options.fault = config.fault;
  options.disk_error_fail_threshold = config.disk_error_fail_threshold;
  options.hot_spares = config.hot_spares;
  options.scrub_interval_us = config.scrub_interval_us;
  options.collector = config.collector;
  options.auditor = config.auditor;
  return std::make_unique<MimdRaid>(options);
}

}  // namespace bench
}  // namespace mimdraid

#endif  // MIMDRAID_BENCH_BENCH_COMMON_H_
