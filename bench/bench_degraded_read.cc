// Degraded-read latency: healthy vs one-disk-failed vs rebuilding, for the
// striped mirror (SR-Array family, Dm=2) and RAID-5 on the same six spindles.
//
// The "rebuilding" column is the interesting one for the fault-recovery
// story: rebuild copy traffic rides the delayed queues and is supposed to
// yield to foreground reads, so the mirror's rebuilding latency should sit
// near its degraded latency; RAID-5 pays the reconstruct fan-out either way.
#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "src/workload/drivers.h"

using namespace mimdraid;
using namespace mimdraid::bench;

namespace {

constexpr uint64_t kDataset = 1'000'000;  // ~0.5 GB
constexpr int kDisks = 6;

enum class Phase { kHealthy, kDegraded, kRebuilding };

struct Row {
  double healthy_ms = 0.0;
  double degraded_ms = 0.0;
  double rebuilding_ms = 0.0;
  bool rebuild_finished_mid_run = false;
};

ClosedLoopOptions ReadLoop(uint64_t dataset) {
  ClosedLoopOptions loop;
  loop.dataset_sectors = dataset;
  loop.outstanding = 1;
  loop.read_frac = 1.0;
  loop.sectors = 8;
  loop.warmup_ops = 150;
  loop.measure_ops = 2000;
  return loop;
}

// One phase against either backend; both rigs come off the MimdRaid
// assembly path and are driven through the shared ArrayBackend interface.
double RunPhase(MimdRaid* array, Phase phase, bool* rebuilt) {
  if (phase != Phase::kHealthy) {
    MIMDRAID_CHECK(array->backend().FailDisk(SlotId(0)));
  }
  if (phase == Phase::kRebuilding) {
    array->backend().Rebuild(
        SlotId(0), [rebuilt](const IoResult&) { *rebuilt = true; });
  }
  ClosedLoopDriver driver(&array->sim(), array->Submitter(),
                          ReadLoop(kDataset));
  return driver.Run().latency.MeanMs();
}

template <typename MakeArray>
Row RunScheme(MakeArray make_array) {
  Row row;
  for (Phase phase :
       {Phase::kHealthy, Phase::kDegraded, Phase::kRebuilding}) {
    std::unique_ptr<MimdRaid> array = make_array();
    bool rebuilt = false;
    const double ms = RunPhase(array.get(), phase, &rebuilt);
    switch (phase) {
      case Phase::kHealthy:
        row.healthy_ms = ms;
        break;
      case Phase::kDegraded:
        row.degraded_ms = ms;
        break;
      case Phase::kRebuilding:
        row.rebuilding_ms = ms;
        row.rebuild_finished_mid_run = rebuilt;
        break;
    }
  }
  return row;
}

Row RunMirror() {
  return RunScheme([] {
    MimdRaidOptions options;
    options.aspect = Aspect(3, 1, 2);
    options.scheduler = SchedulerKind::kSatf;
    options.dataset_sectors = kDataset;
    return std::make_unique<MimdRaid>(options);
  });
}

Row RunRaid5() {
  return RunScheme([] {
    Raid5RigConfig rig;
    rig.disks = kDisks;
    rig.dataset_sectors = kDataset;
    rig.seed = 13;
    return MakeRaid5Array(rig);
  });
}

void PrintRow(const char* name, const Row& r) {
  std::printf("%-16s %-9.2f ms %-9.2f ms %-9.2f ms %-10.2f %s\n", name,
              r.healthy_ms, r.degraded_ms, r.rebuilding_ms,
              r.rebuilding_ms / r.healthy_ms,
              r.rebuild_finished_mid_run ? "(rebuild finished mid-run)" : "");
}

}  // namespace

int main() {
  PrintHeader("Degraded-read latency",
              "six disks, 8 KB random reads: healthy vs 1 failed vs "
              "rebuilding");
  std::printf("%-16s %-12s %-12s %-12s %-10s\n", "scheme", "healthy",
              "degraded", "rebuilding", "slowdown");
  PrintRow("striped mirror", RunMirror());
  PrintRow("RAID-5", RunRaid5());
  std::printf(
      "\nexpected: mirror reads fail over to the twin, so degraded and\n"
      "rebuilding sit close to healthy (rebuild copy traffic yields to\n"
      "foreground work via the delayed queues); RAID-5 degraded reads pay\n"
      "the N-1-way reconstruct fan-out and rebuilding adds row-copy\n"
      "contention on every surviving spindle.\n");
  return 0;
}
