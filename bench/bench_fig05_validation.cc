// Figure 5: prototype-vs-simulator throughput validation.
//
// The paper drives its hardware prototype and its integrated simulator with
// equivalent Iometer workloads and shows <3% divergence. Both of the paper's
// systems ran the same software stack; only the device differed (real drive
// vs calibrated simulator). We reproduce that: both sides run the full
// software calibration and prediction path; the "prototype" device has
// realistic stochastic overheads (jitter, hiccups, off-nominal spindles),
// the "simulator" device is the deterministic model. Their divergence
// measures exactly what the paper's Figure 5 measured: how much of real
// behavior the deterministic model misses.
//
// Workloads: 512-byte random I/O on a 2x3 SR-Array with RSATF, (a) pure
// reads, (b) 50% reads / 50% writes with foreground replica propagation;
// outstanding requests swept.
#include <cstdio>

#include "bench/bench_common.h"

using namespace mimdraid;
using namespace mimdraid::bench;

namespace {

double MeasureIops(bool noisy, double read_frac, uint32_t outstanding) {
  MimdRaidOptions options;
  options.aspect = Aspect(2, 3);
  options.scheduler = SchedulerKind::kRsatf;
  options.dataset_sectors = 4'000'000;  // ~2 GB
  options.foreground_write_propagation = true;
  options.seed = 2026;
  options.use_oracle_predictor = false;
  options.recalibration_interval_us = SimDuration(120'000'000);  // 2 minutes
  options.calibration.seek.num_distances = 12;
  options.noise =
      noisy ? DiskNoiseModel::Prototype() : DiskNoiseModel::None();
  if (!noisy) {
    options.rotation_tolerance_ppm = 0.0;
  }
  MimdRaid array(options);
  ClosedLoopOptions loop;
  loop.outstanding = outstanding;
  loop.read_frac = read_frac;
  loop.sectors = 1;  // 512 bytes
  loop.warmup_ops = 300;
  loop.measure_ops = 4000;
  loop.seed = 7;
  return RunClosedLoopOnArray(array, loop).iops;
}

void Sweep(const char* label, double read_frac) {
  std::printf("\n%s (2x3 SR-Array, RSATF, 512 B, foreground propagation)\n",
              label);
  std::printf("%-14s %-14s %-14s %s\n", "outstanding", "prototype",
              "simulator", "divergence");
  for (uint32_t q : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    const double prototype = MeasureIops(/*noisy=*/true, read_frac, q);
    const double simulator = MeasureIops(/*noisy=*/false, read_frac, q);
    std::printf("%-14u %-14.0f %-14.0f %+.1f%%\n", q, prototype, simulator,
                100.0 * (simulator - prototype) / prototype);
  }
}

}  // namespace

int main() {
  PrintHeader("Figure 5", "Prototype vs simulator throughput (Iometer)");
  Sweep("(a) 100% reads", 1.0);
  Sweep("(b) 50% reads / 50% writes", 0.5);
  std::printf("\npaper: divergence under 3%% at all queueing levels\n");
  return 0;
}
