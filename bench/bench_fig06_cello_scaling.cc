// Figure 6: average I/O response time of the Cello workloads vs number of
// disks, across array configurations.
//
// Series: SR-Array (model-configured, RSATF), D-way striping (SATF), RAID-10
// (SATF), D-way mirror (SATF), and the Section 2.3 latency model. Traces play
// at original speed; replica propagation is backgrounded (ample idle time).
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/model/analytic.h"

using namespace mimdraid;
using namespace mimdraid::bench;

namespace {

ArrayAspect SrAspectFor(const ModelDiskParams& disk_params,
                        const TraceStats& stats, int d) {
  ConfiguratorInputs inputs;
  inputs.num_disks = d;
  inputs.max_seek_us = disk_params.max_seek_us;
  inputs.rotation_us = disk_params.rotation_us;
  inputs.p = 1.0;  // idle time masks propagation at original speed
  inputs.queue_depth = 1.0;
  inputs.locality = stats.seek_locality;
  return ChooseConfig(inputs).aspect;
}

void RunWorkload(const char* label, const Trace& trace) {
  const TraceStats stats = ComputeTraceStats(trace);
  const ModelDiskParams disk_params =
      StandardModelParams(trace.dataset_sectors);
  const DiskNoiseModel noise = DiskNoiseModel::None();
  // Model overhead: request overheads plus the mean transfer.
  const double overhead_us = noise.overhead_mean_us +
                             noise.post_overhead_mean_us +
                             stats.mean_request_sectors * 25.0;

  DeferredSweep<TraceRunOutput> sweep;
  auto defer = [&sweep, &trace](const ArrayAspect& aspect,
                                SchedulerKind sched) {
    TraceRunConfig cfg;
    cfg.aspect = aspect;
    cfg.scheduler = sched;
    sweep.Defer([&trace, cfg] { return RunTraceConfig(trace, cfg); });
  };
  for (int d : {1, 2, 4, 6, 8, 12}) {
    defer(SrAspectFor(disk_params, stats, d), SchedulerKind::kRsatf);
    defer(Aspect(d, 1), SchedulerKind::kSatf);
    if (d % 2 == 0) {
      defer(Aspect(d / 2, 1, 2), SchedulerKind::kSatf);
    }
    defer(Aspect(1, 1, d), SchedulerKind::kSatf);
  }
  sweep.Run();

  std::printf("\n%s (L=%.2f, dataset %.1f GB, original speed)\n", label,
              stats.seek_locality, stats.data_size_gb);
  std::printf("%-6s %-10s %-10s %-10s %-10s %-10s %-10s\n", "disks",
              "SR-Array", "(aspect)", "striping", "RAID-10", "mirror",
              "model");

  for (int d : {1, 2, 4, 6, 8, 12}) {
    const ArrayAspect sr = SrAspectFor(disk_params, stats, d);
    const TraceRunOutput sr_out = sweep.Next();
    const TraceRunOutput stripe_out = sweep.Next();
    TraceRunOutput raid_out;
    raid_out.mean_ms = -2.0;  // n/a
    if (d % 2 == 0) {
      raid_out = sweep.Next();
    }
    const TraceRunOutput mirror_out = sweep.Next();

    const double model_ms =
        (SrMixedLatencyUs(disk_params.max_seek_us, disk_params.rotation_us,
                          sr.ds, sr.dr, /*p=*/1.0, stats.seek_locality) +
         overhead_us) /
        1000.0;

    std::printf("%-6d %-10s %-10s %-10s %-10s %-10s %-10.2f\n", d,
                FormatMs(sr_out.mean_ms).c_str(), sr.ToString().c_str(),
                FormatMs(stripe_out.mean_ms).c_str(),
                raid_out.mean_ms == -2.0 ? "   n/a"
                                         : FormatMs(raid_out.mean_ms).c_str(),
                FormatMs(mirror_out.mean_ms).c_str(), model_ms);
  }
}

}  // namespace

int main(int argc, char** argv) {
  InitBenchSweep(argc, argv);
  PrintHeader("Figure 6", "Cello response time vs number of disks");
  RunWorkload("(a) Cello base",
              GenerateSyntheticTrace(CelloBaseParams(2 * 3600, 21)));
  RunWorkload("(b) Cello disk 6",
              GenerateSyntheticTrace(CelloDisk6Params(2 * 3600, 22)));
  std::printf(
      "\npaper shape: SR-Array < mirror < RAID-10 < striping; model tracks\n"
      "the SR-Array curve; six-disk SR-Array ~1.23x faster than RAID-10,\n"
      "~1.42x faster than striping, ~1.94x faster than one disk.\n");
  return 0;
}
