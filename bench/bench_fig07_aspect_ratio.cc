// Figure 7: SR-Array aspect-ratio alternatives vs the model's choice.
//
// For each disk budget, measures every integer Ds x Dr factorization on the
// Cello workloads and marks the configuration the Equation (5)/(10) rule
// recommends. The model should land on (or next to) the measured optimum.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

using namespace mimdraid;
using namespace mimdraid::bench;

namespace {

void RunWorkload(const char* label, const Trace& trace) {
  const TraceStats stats = ComputeTraceStats(trace);
  const ModelDiskParams disk_params =
      StandardModelParams(trace.dataset_sectors);

  std::printf("\n%s\n", label);
  std::printf("%-6s %-34s %s\n", "disks", "measured per aspect (Ds x Dr)",
              "model pick");
  for (int d : {2, 4, 6, 12}) {
    ConfiguratorInputs inputs;
    inputs.num_disks = d;
    inputs.max_seek_us = disk_params.max_seek_us;
    inputs.rotation_us = disk_params.rotation_us;
    inputs.p = 1.0;
    inputs.queue_depth = 1.0;
    inputs.locality = stats.seek_locality;
    const ArrayAspect chosen = ChooseConfig(inputs).aspect;

    std::printf("%-6d ", d);
    double best_ms = 1e18;
    std::string best_label;
    std::string cells;
    for (int dr = 1; dr <= d && dr <= 6; ++dr) {
      if (d % dr != 0) {
        continue;
      }
      TraceRunConfig cfg;
      cfg.aspect = Aspect(d / dr, dr);
      cfg.scheduler = SchedulerKind::kRsatf;
      const TraceRunOutput out = RunTraceConfig(trace, cfg);
      char cell[64];
      std::snprintf(cell, sizeof(cell), "%dx%d=%s ", d / dr, dr,
                    FormatMs(out.mean_ms).c_str());
      cells += cell;
      if (out.mean_ms >= 0.0 && out.mean_ms < best_ms) {
        best_ms = out.mean_ms;
        best_label = std::to_string(d / dr) + "x" + std::to_string(dr);
      }
    }
    std::printf("%-48s %s (measured best: %s)\n", cells.c_str(),
                chosen.ToString().c_str(), best_label.c_str());
  }
}

}  // namespace

int main() {
  PrintHeader("Figure 7", "SR-Array aspect ratios vs the model's choice");
  RunWorkload("(a) Cello base",
              GenerateSyntheticTrace(CelloBaseParams(2 * 3600, 31)));
  RunWorkload("(b) Cello disk 6",
              GenerateSyntheticTrace(CelloDisk6Params(2 * 3600, 32)));
  std::printf("\npaper shape: the model's aspect ratio is at or adjacent to\n"
              "the measured optimum (e.g. 2x3 for Cello base at six disks).\n");
  return 0;
}
