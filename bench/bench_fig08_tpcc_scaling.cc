// Figure 8: TPC-C response time vs number of disks (original rate).
//
// (a) striping vs RAID-10 vs the model-configured SR-Array, 12..36 disks.
// (b) SR-Array aspect alternatives at 36 disks.
// The workload's higher rate and write share stress delayed-write
// propagation; D-way mirroring (and the low-load latency model) drop out,
// exactly as in the paper.
#include <cstdio>

#include "bench/bench_common.h"

using namespace mimdraid;
using namespace mimdraid::bench;

namespace {

ArrayAspect SrAspectFor(const ModelDiskParams& disk_params,
                        const TraceStats& stats, int d) {
  ConfiguratorInputs inputs;
  inputs.num_disks = d;
  inputs.max_seek_us = disk_params.max_seek_us;
  inputs.rotation_us = disk_params.rotation_us;
  // Moderate utilization leaves idle time for most propagations.
  inputs.p = 0.9;
  inputs.queue_depth = 1.0;
  inputs.locality = stats.seek_locality;
  return ChooseConfig(inputs).aspect;
}

}  // namespace

int main(int argc, char** argv) {
  InitBenchSweep(argc, argv);
  PrintHeader("Figure 8", "TPC-C response time vs number of disks");
  const Trace trace = GenerateSyntheticTrace(TpccParams(/*duration_s=*/90, 41));
  const TraceStats stats = ComputeTraceStats(trace);
  const ModelDiskParams disk_params =
      StandardModelParams(trace.dataset_sectors);

  DeferredSweep<TraceRunOutput> sweep;
  auto defer = [&sweep, &trace](const ArrayAspect& aspect,
                                SchedulerKind sched) {
    TraceRunConfig cfg;
    cfg.aspect = aspect;
    cfg.scheduler = sched;
    sweep.Defer([&trace, cfg] { return RunTraceConfig(trace, cfg); });
  };
  for (int d : {12, 18, 24, 36}) {
    defer(Aspect(d, 1), SchedulerKind::kSatf);
    defer(Aspect(d / 2, 1, 2), SchedulerKind::kSatf);
    defer(SrAspectFor(disk_params, stats, d), SchedulerKind::kRsatf);
  }
  for (int dr : {1, 2, 3, 4, 6}) {
    defer(Aspect(36 / dr, dr), SchedulerKind::kRsatf);
  }
  sweep.Run();

  std::printf("\n(a) configurations, original rate (%.0f IO/s)\n",
              stats.io_rate_per_s);
  std::printf("%-6s %-10s %-10s %-12s %s\n", "disks", "striping", "RAID-10",
              "SR-Array", "(SR aspect)");
  for (int d : {12, 18, 24, 36}) {
    const ArrayAspect sr = SrAspectFor(disk_params, stats, d);
    const TraceRunOutput stripe = sweep.Next();
    const TraceRunOutput raid = sweep.Next();
    const TraceRunOutput sr_out = sweep.Next();
    std::printf("%-6d %-10s %-10s %-12s %s\n", d,
                FormatMs(stripe.mean_ms).c_str(),
                FormatMs(raid.mean_ms).c_str(),
                FormatMs(sr_out.mean_ms).c_str(), sr.ToString().c_str());
  }

  std::printf("\n(b) SR-Array alternatives at 36 disks\n");
  std::printf("%-10s %s\n", "aspect", "mean response");
  for (int dr : {1, 2, 3, 4, 6}) {
    const ArrayAspect aspect = Aspect(36 / dr, dr);
    const TraceRunOutput out = sweep.Next();
    std::printf("%-10s %s ms\n", aspect.ToString().c_str(),
                FormatMs(out.mean_ms).c_str());
  }
  std::printf("\npaper shape: SR-Array < RAID-10 < striping at every size;\n"
              "with 36 disks the 9x4x1 SR-Array is ~1.23x faster than the\n"
              "18x1x2 RAID-10 and ~1.39x faster than the 36x1x1 stripe.\n");
  return 0;
}
