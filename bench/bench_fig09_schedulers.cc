// Figure 9: local disk schedulers vs I/O rate.
//
// LOOK and SATF on a striped array against RLOOK and RSATF on the
// corresponding SR-Array, as the trace replay rate is raised. The paper's
// findings: the RLOOK-RSATF gap is smaller than the LOOK-SATF gap (both
// already handle rotational delay), and a mis-configured array cannot be
// saved by a better scheduler — the 2x3 SR-Array with mere RLOOK beats the
// 6x1 stripe with SATF.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

using namespace mimdraid;
using namespace mimdraid::bench;

namespace {

struct Series {
  const char* label;
  ArrayAspect aspect;
  SchedulerKind sched;
};

void Sweep(const char* label, const Trace& trace,
           const std::vector<Series>& series,
           const std::vector<double>& scales) {
  DeferredSweep<TraceRunOutput> sweep;
  for (double scale : scales) {
    for (const Series& s : series) {
      TraceRunConfig cfg;
      cfg.aspect = s.aspect;
      cfg.scheduler = s.sched;
      cfg.rate_scale = scale;
      cfg.max_outstanding = 2000;
      sweep.Defer([&trace, cfg] { return RunTraceConfig(trace, cfg); });
    }
  }
  sweep.Run();

  std::printf("\n%s\n", label);
  std::printf("%-8s", "scale");
  for (const Series& s : series) {
    std::printf(" %-16s", s.label);
  }
  std::printf("\n");
  for (double scale : scales) {
    std::printf("%-8.1f", scale);
    for (size_t i = 0; i < series.size(); ++i) {
      std::printf(" %-16s", FormatMs(sweep.Next().mean_ms).c_str());
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  InitBenchSweep(argc, argv);
  PrintHeader("Figure 9", "Local schedulers vs I/O rate (mean response, ms)");

  const Trace cello =
      GenerateSyntheticTrace(CelloBaseParams(/*duration_s=*/3600, 51));
  Sweep("(a) Cello base, six disks", cello,
        {
            {"stripe 6x1 LOOK", Aspect(6, 1), SchedulerKind::kLook},
            {"stripe 6x1 SATF", Aspect(6, 1), SchedulerKind::kSatf},
            {"SR 2x3 RLOOK", Aspect(2, 3), SchedulerKind::kRlook},
            {"SR 2x3 RSATF", Aspect(2, 3), SchedulerKind::kRsatf},
        },
        {1, 50, 100, 200, 300, 400});

  const Trace tpcc = GenerateSyntheticTrace(TpccParams(/*duration_s=*/60, 52));
  Sweep("(b) TPC-C, 36 disks", tpcc,
        {
            {"stripe 36x1 LOOK", Aspect(36, 1), SchedulerKind::kLook},
            {"stripe 36x1 SATF", Aspect(36, 1), SchedulerKind::kSatf},
            {"SR 9x4 RLOOK", Aspect(9, 4), SchedulerKind::kRlook},
            {"SR 9x4 RSATF", Aspect(9, 4), SchedulerKind::kRsatf},
        },
        {1, 3, 6, 9, 12});

  std::printf("\npaper shape: RSATF-RLOOK gap < SATF-LOOK gap at every rate;\n"
              "SR with RLOOK beats stripe with SATF.\n");
  return 0;
}
