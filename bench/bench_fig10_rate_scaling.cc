// Figure 10: response time vs offered rate for competing configurations, and
// the sustainable rate under a 15 ms response-time budget.
//
// Cello base on six disks and TPC-C on 36 disks, replayed at increasing rate
// scales. High-replication configurations (6-way mirror, 1x6 SR-Array)
// saturate first; the balanced SR-Array holds the lowest response time until
// write propagation dominates, at which point striping takes over (TPC-C at
// the highest rates).
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

using namespace mimdraid;
using namespace mimdraid::bench;

namespace {

struct Series {
  const char* label;
  ArrayAspect aspect;
  SchedulerKind sched;
};

void Sweep(const char* label, const Trace& trace,
           const std::vector<Series>& series,
           const std::vector<double>& scales, double slo_ms) {
  const TraceStats stats = ComputeTraceStats(trace);
  DeferredSweep<TraceRunOutput> sweep;
  for (double scale : scales) {
    for (const Series& s : series) {
      TraceRunConfig cfg;
      cfg.aspect = s.aspect;
      cfg.scheduler = s.sched;
      cfg.rate_scale = scale;
      cfg.max_outstanding = 2500;
      sweep.Defer([&trace, cfg] { return RunTraceConfig(trace, cfg); });
    }
  }
  sweep.Run();

  std::printf("\n%s (base rate %.0f IO/s)\n", label, stats.io_rate_per_s);
  std::printf("%-8s", "scale");
  for (const Series& s : series) {
    std::printf(" %-14s", s.label);
  }
  std::printf("\n");
  std::vector<double> sustainable(series.size(), 0.0);
  for (double scale : scales) {
    std::printf("%-8.1f", scale);
    for (size_t i = 0; i < series.size(); ++i) {
      const TraceRunOutput out = sweep.Next();
      if (out.mean_ms >= 0.0 && out.mean_ms <= slo_ms) {
        sustainable[i] = scale;
      }
      std::printf(" %-14s", FormatMs(out.mean_ms).c_str());
    }
    std::printf("\n");
  }
  std::printf("sustainable rate at %.0f ms (x base):", slo_ms);
  for (size_t i = 0; i < series.size(); ++i) {
    std::printf("  %s=%.1f", series[i].label, sustainable[i]);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  InitBenchSweep(argc, argv);
  PrintHeader("Figure 10", "Response time vs offered rate (mean, ms)");

  const Trace cello =
      GenerateSyntheticTrace(CelloBaseParams(/*duration_s=*/3600, 61));
  Sweep("(a) Cello base, six disks", cello,
        {
            {"2x3x1 SR", Aspect(2, 3), SchedulerKind::kRsatf},
            {"1x6x1 SR", Aspect(1, 6), SchedulerKind::kRsatf},
            {"3x1x2 R10", Aspect(3, 1, 2), SchedulerKind::kSatf},
            {"6x1x1 strp", Aspect(6, 1), SchedulerKind::kSatf},
            {"1x1x6 mirr", Aspect(1, 1, 6), SchedulerKind::kSatf},
        },
        {1, 50, 100, 150, 200, 300, 400, 500}, 15.0);

  const Trace tpcc = GenerateSyntheticTrace(TpccParams(/*duration_s=*/60, 62));
  Sweep("(b) TPC-C, 36 disks", tpcc,
        {
            {"9x4x1 SR", Aspect(9, 4), SchedulerKind::kRsatf},
            {"12x3x1 SR", Aspect(12, 3), SchedulerKind::kRsatf},
            {"18x2x1 SR", Aspect(18, 2), SchedulerKind::kRsatf},
            {"18x1x2 R10", Aspect(18, 1, 2), SchedulerKind::kSatf},
            {"36x1x1 strp", Aspect(36, 1), SchedulerKind::kSatf},
        },
        {1, 3, 6, 9, 12, 15}, 15.0);

  std::printf(
      "\npaper shape: Cello — 2x3 best at every examined rate; heavy\n"
      "replication (1x6, 6-mirror) saturates first. TPC-C — best config\n"
      "shifts from 9x4 toward pure striping as the rate rises.\n");
  return 0;
}
