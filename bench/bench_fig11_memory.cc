// Figure 11: memory caching vs scaling the number of disks.
//
// Two ways to spend money on the same workload: add disks to a
// model-configured SR-Array, or add an LRU memory cache in front of the
// smallest array. Reported at original speed and at 3x, as in the paper. The
// crossover logic (the paper's "M" price ratio) falls out of the two series:
// caching wins while locality lasts; adding disks keeps helping after the
// cache stops absorbing misses and writes.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

using namespace mimdraid;
using namespace mimdraid::bench;

namespace {

ArrayAspect SrChoice(const Trace& trace, int disks, double locality) {
  const ModelDiskParams p = StandardModelParams(trace.dataset_sectors);
  ConfiguratorInputs in;
  in.num_disks = disks;
  in.max_seek_us = p.max_seek_us;
  in.rotation_us = p.rotation_us;
  in.p = 0.95;
  in.queue_depth = 1.0;
  in.locality = locality;
  return ChooseConfig(in).aspect;
}

double RunDisks(const Trace& trace, int disks, double scale, double locality) {
  TraceRunConfig cfg;
  cfg.aspect = SrChoice(trace, disks, locality);
  cfg.scheduler = SchedulerKind::kRsatf;
  cfg.rate_scale = scale;
  cfg.max_outstanding = 2500;
  return RunTraceConfig(trace, cfg).mean_ms;
}

double RunCache(const Trace& trace, int disks, uint64_t cache_mb, double scale,
                double locality) {
  MimdRaidOptions options;
  options.aspect = SrChoice(trace, disks, locality);
  options.scheduler = SchedulerKind::kRsatf;
  options.dataset_sectors = trace.dataset_sectors;
  options.max_scan = 128;
  MimdRaid array(options);
  TracePlayerOptions popt;
  popt.rate_scale = scale;
  popt.max_outstanding = 2500;
  const RunResult r =
      RunTraceWithCache(array, trace, cache_mb << 20, 50.0, popt);
  return r.saturated ? -1.0 : r.latency.MeanMs();
}

void Workload(const char* label, const Trace& trace, int base_disks,
              const std::vector<int>& disk_points,
              const std::vector<uint64_t>& cache_points_mb) {
  const TraceStats stats = ComputeTraceStats(trace);
  std::printf("\n%s\n", label);
  for (double scale : {1.0, 3.0}) {
    std::printf("  scale %.0fx — adding disks (SR-Array):\n    ", scale);
    for (int d : disk_points) {
      std::printf("D=%d: %s  ", d,
                  FormatMs(RunDisks(trace, d, scale, stats.seek_locality))
                      .c_str());
    }
    std::printf("\n  scale %.0fx — adding memory to %d disk(s):\n    ", scale,
                base_disks);
    for (uint64_t mb : cache_points_mb) {
      std::printf("%lluMB: %s  ", static_cast<unsigned long long>(mb),
                  FormatMs(RunCache(trace, base_disks, mb, scale,
                                    stats.seek_locality))
                      .c_str());
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  PrintHeader("Figure 11", "Memory caching vs scaling disks (mean ms)");
  Workload("(a) Cello base",
           GenerateSyntheticTrace(CelloBaseParams(/*duration_s=*/3600, 71)),
           /*base_disks=*/1, {1, 2, 4, 6, 12}, {16, 64, 128, 336, 512});
  Workload("(b) TPC-C",
           GenerateSyntheticTrace(TpccParams(/*duration_s=*/60, 72)),
           /*base_disks=*/12, {12, 18, 24, 36}, {64, 256, 512, 1024});
  std::printf(
      "\npaper shape: on Cello, a few hundred MB of cache matches doubling\n"
      "the disks at 1x but flattens at 3x (writes + diminishing locality);\n"
      "on TPC-C caching is the better first dollar at 1x, while at 3x disks\n"
      "keep helping after the cache plateaus.\n");
  return 0;
}
