// Figure 12: random-read throughput vs number of disks and queue depth, with
// the RLOOK throughput model (Equations 12-16).
//
// Iometer-style workload: 512-byte random reads over a footprint restricted
// to 1/3 of the data (seek locality index 3, as in Section 4.2), at 8 and 32
// outstanding requests. Series: striping+SATF, RAID-10+SATF, model-configured
// SR-Array with RSATF and with RLOOK, and the analytic N_D.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/model/analytic.h"

using namespace mimdraid;
using namespace mimdraid::bench;

namespace {

constexpr uint64_t kDataset = 16'400'000;
constexpr double kLocality = 3.0;

double MeasureIops(const ArrayAspect& aspect, SchedulerKind sched,
                   uint32_t outstanding) {
  MimdRaidOptions options;
  options.aspect = aspect;
  options.scheduler = sched;
  options.dataset_sectors = kDataset;
  options.seed = 99;
  MimdRaid array(options);
  ClosedLoopOptions loop;
  loop.outstanding = outstanding;
  loop.read_frac = 1.0;
  loop.sectors = 1;
  loop.footprint_frac = 1.0 / kLocality;
  loop.warmup_ops = 400;
  loop.measure_ops = 5000;
  return RunClosedLoopOnArray(array, loop).iops;
}

ArrayAspect SrAspectFor(const ModelDiskParams& params, int d,
                        uint32_t outstanding) {
  ConfiguratorInputs in;
  in.num_disks = d;
  in.max_seek_us = params.max_seek_us;
  in.rotation_us = params.rotation_us;
  in.p = 1.0;
  in.queue_depth = static_cast<double>(outstanding) / d;
  in.locality = kLocality;
  return ChooseConfig(in).aspect;
}

void Sweep(uint32_t outstanding) {
  const ModelDiskParams params = StandardModelParams(kDataset);
  const DiskNoiseModel noise = DiskNoiseModel::None();
  // Per-request overhead To (Eq. 15): processing + transfer + the
  // acceleration/settle floor of every arm stop, which the S/(q Ds) seek
  // amortization does not cover (the paper measured To = 2.7 ms on its
  // platform for the macrobenchmark request mix).
  const SeekProfile profile = MakeSt39133SeekProfile();
  const double to_us = noise.overhead_mean_us + noise.post_overhead_mean_us +
                       profile.short_a_us + 23.0;

  DeferredSweep<double> sweep;
  for (int d : {2, 4, 6, 8, 12}) {
    const ArrayAspect sr = SrAspectFor(params, d, outstanding);
    sweep.Defer([d, outstanding] {
      return MeasureIops(Aspect(d, 1), SchedulerKind::kSatf, outstanding);
    });
    sweep.Defer([d, outstanding] {
      return d % 2 == 0 ? MeasureIops(Aspect(d / 2, 1, 2),
                                      SchedulerKind::kSatf, outstanding)
                        : -1.0;
    });
    sweep.Defer(
        [sr, outstanding] { return MeasureIops(sr, SchedulerKind::kRsatf,
                                               outstanding); });
    sweep.Defer(
        [sr, outstanding] { return MeasureIops(sr, SchedulerKind::kRlook,
                                               outstanding); });
  }
  sweep.Run();

  std::printf("\nqueue length %u (IOPS)\n", outstanding);
  std::printf("%-6s %-9s %-9s %-11s %-11s %-10s %s\n", "disks", "stripe",
              "RAID-10", "SR RSATF", "SR RLOOK", "model N_D", "(SR aspect)");
  for (int d : {2, 4, 6, 8, 12}) {
    const ArrayAspect sr = SrAspectFor(params, d, outstanding);
    const double stripe = sweep.Next();
    const double raid = sweep.Next();
    const double rsatf = sweep.Next();
    const double rlook = sweep.Next();

    // Equations (12), (15), (16) with the chosen integer aspect.
    const double q = std::max(1.0, static_cast<double>(outstanding) / d);
    const double t_req =
        q > 3.0 ? RlookRequestTimeUs(params.max_seek_us, params.rotation_us,
                                     sr.ds, sr.dr, 1.0, q, kLocality)
                : SrMixedLatencyUs(params.max_seek_us, params.rotation_us,
                                   sr.ds, sr.dr, 1.0, kLocality);
    const double n1 = SingleDiskThroughput(to_us, t_req);
    const double nd = ArrayThroughput(d, outstanding, n1);

    std::printf("%-6d %-9.0f ", d, stripe);
    if (raid >= 0) {
      std::printf("%-9.0f ", raid);
    } else {
      std::printf("%-9s ", "n/a");
    }
    std::printf("%-11.0f %-11.0f %-10.0f %s\n", rsatf, rlook, nd,
                sr.ToString().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  InitBenchSweep(argc, argv);
  PrintHeader("Figure 12",
              "Random-read throughput vs disks (512 B, locality index 3)");
  Sweep(8);
  Sweep(32);
  std::printf(
      "\npaper shape: SR-Array scales best; RLOOK closely approximates\n"
      "RSATF; the model tracks the SR curves including the short-queue\n"
      "degradation; the SATF systems narrow the gap at queue 32.\n");
  return 0;
}
