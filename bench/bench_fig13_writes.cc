// Figure 13: throughput vs foreground write ratio (replica propagation cost).
//
// Six disks, 512-byte random I/O, every write propagated synchronously in the
// foreground, write ratio swept 0..100%. Series: 3x2x1 SR-Array (RLOOK and
// RSATF), 6x1x1 striping (LOOK and SATF), 3x1x2 RAID-10 (SATF), and the
// Equation (16) model for the SR-Array. The reproduction targets: RAID-10
// collapses at high write ratios (two seeks per propagation vs one), the
// SR/stripe crossover sits below 50% writes, and it sits further left under
// SATF-class scheduling and longer queues.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/model/analytic.h"

using namespace mimdraid;
using namespace mimdraid::bench;

namespace {

constexpr uint64_t kDataset = 16'400'000;
constexpr double kLocality = 3.0;

double MeasureIops(const ArrayAspect& aspect, SchedulerKind sched,
                   uint32_t outstanding, double write_frac) {
  MimdRaidOptions options;
  options.aspect = aspect;
  options.scheduler = sched;
  options.dataset_sectors = kDataset;
  options.foreground_write_propagation = true;
  options.seed = 77;
  MimdRaid array(options);
  ClosedLoopOptions loop;
  loop.outstanding = outstanding;
  loop.read_frac = 1.0 - write_frac;
  loop.sectors = 1;
  loop.footprint_frac = 1.0 / kLocality;
  loop.warmup_ops = 300;
  loop.measure_ops = 4000;
  return RunClosedLoopOnArray(array, loop).iops;
}

void Sweep(uint32_t outstanding) {
  const ModelDiskParams params = StandardModelParams(kDataset);
  const DiskNoiseModel noise = DiskNoiseModel::None();
  // Per-request overhead including the per-stop settle floor (see Fig. 12).
  const SeekProfile profile = MakeSt39133SeekProfile();
  const double to_us = noise.overhead_mean_us + noise.post_overhead_mean_us +
                       profile.short_a_us + 23.0;

  DeferredSweep<double> sweep;
  auto defer = [&sweep, outstanding](const ArrayAspect& aspect,
                                     SchedulerKind sched, double w) {
    sweep.Defer([aspect, sched, outstanding, w] {
      return MeasureIops(aspect, sched, outstanding, w);
    });
  };
  for (double w : {0.0, 0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0}) {
    defer(Aspect(3, 2), SchedulerKind::kRlook, w);
    defer(Aspect(3, 2), SchedulerKind::kRsatf, w);
    defer(Aspect(6, 1), SchedulerKind::kLook, w);
    defer(Aspect(6, 1), SchedulerKind::kSatf, w);
    defer(Aspect(3, 1, 2), SchedulerKind::kSatf, w);
  }
  sweep.Run();

  std::printf("\nqueue length %u (IOPS)\n", outstanding);
  std::printf("%-8s %-10s %-10s %-10s %-10s %-10s %s\n", "write%",
              "SR RLOOK", "SR RSATF", "strp LOOK", "strp SATF", "R10 SATF",
              "model(3x2)");
  for (double w : {0.0, 0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0}) {
    const double rlook = sweep.Next();
    const double rsatf = sweep.Next();
    const double look = sweep.Next();
    const double satf = sweep.Next();
    const double raid = sweep.Next();

    // Equation (16) for the 3x2 SR-Array: p = read fraction (every write is
    // a foreground propagation here). Each logical write costs Dr physical
    // writes, so the per-logical-op time doubles the write term's share.
    const double p = 1.0 - w;
    const double q = std::max(1.0, static_cast<double>(outstanding) / 6.0);
    // Per-physical-request time (Eq. 12 handles p directly).
    const double t_req =
        q > 3.0 ? RlookRequestTimeUs(params.max_seek_us, params.rotation_us, 3,
                                     2, p, q, kLocality)
                : SrMixedLatencyUs(params.max_seek_us, params.rotation_us, 3,
                                   2, p, kLocality);
    const double n1 = SingleDiskThroughput(to_us, t_req);
    const double nd = ArrayThroughput(6, outstanding, n1);

    std::printf("%-8.1f %-10.0f %-10.0f %-10.0f %-10.0f %-10.0f %.0f\n",
                w * 100.0, rlook, rsatf, look, satf, raid, nd);
  }
}

}  // namespace

int main(int argc, char** argv) {
  InitBenchSweep(argc, argv);
  PrintHeader("Figure 13",
              "Throughput vs foreground write ratio (six disks, 512 B)");
  Sweep(8);
  Sweep(32);
  return 0;
}
