// HDA frontier: generation mixes × virtual-array placement policies.
//
// The paper buys Dt identical drives and hands them all to one array. A
// consolidated installation instead grows a fleet across drive generations
// and carves per-tenant virtual arrays out of it. This bench sweeps that
// frontier: a fixed fleet size whose composition shifts from all-new
// (small, 10k RPM) to all-old (50% bigger, 7200 RPM — capacity traded back
// for performance, the paper's axis run in reverse), crossed with the four
// VA placement policies. For every point it packs alternating mirror /
// RAID-5 tenants until the allocator refuses, then runs a closed-loop
// workload on the first tenant pair and reports tenants packed, leftover
// capacity, and per-tenant mean response time.
//
// Expected shape: old-heavy mixes pack more tenants (bigger drives) but
// serve them slower (7200 RPM); the packing policies (least-free) leave the
// most contiguous free capacity while the spreading policies (most-free,
// probabilistic, round-robin) trade that headroom for balance. Every number
// is deterministic: goldens lock this output byte for byte at any --jobs.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/va/virtual_array.h"

using namespace mimdraid;
using namespace mimdraid::bench;

namespace {

constexpr size_t kFleetDrives = 8;
constexpr uint64_t kTenantDataset = 2400;
constexpr int kOpsPerTenant = 200;
constexpr int kLoopDepth = 4;

// Two generations: the "new" drive is the small fast test geometry, the
// "old" one spins at 7200 RPM with 50% more cylinders.
FleetSpec MakeMixFleet(size_t old_drives) {
  DriveParams old_gen;
  old_gen.name = "old7200";
  old_gen.geometry = MakeTestGeometry();
  old_gen.geometry.rpm = 7200;
  old_gen.geometry.num_cylinders = 90;
  old_gen.profile = MakeTestSeekProfile();
  DriveParams new_gen;
  new_gen.name = "new10k";
  new_gen.geometry = MakeTestGeometry();
  new_gen.profile = MakeTestSeekProfile();
  FleetSpec fleet;
  fleet.generations = {old_gen, new_gen};
  for (size_t d = 0; d < kFleetDrives; ++d) {
    fleet.slot_generation.push_back(d < old_drives ? 0u : 1u);
  }
  return fleet;
}

VaRequest TenantRequest(size_t index) {
  VaRequest r;
  r.name = "t" + std::to_string(index);
  if (index % 2 == 0) {
    r.backend = ArrayBackendKind::kMirror;
    r.aspect = Aspect(2, 1, 2);
  } else {
    r.backend = ArrayBackendKind::kRaid5;
    r.aspect = Aspect(4, 1, 1);
  }
  r.dataset_sectors = kTenantDataset;
  r.stripe_unit_sectors = 16;
  return r;
}

// Closed-loop pump (depth kLoopDepth): mean response time over `ops`
// completed operations, in milliseconds.
double RunClosedLoopMs(MimdRaid* array, int ops, uint64_t seed) {
  Rng rng(seed);
  int submitted = 0;
  int done = 0;
  int64_t total_us = 0;
  std::function<void()> submit_one = [&] {
    ++submitted;
    const uint32_t sectors = 1 + static_cast<uint32_t>(rng.UniformU64(16));
    const uint64_t lba =
        rng.UniformU64(array->backend().dataset_sectors() - sectors);
    const DiskOp op = rng.Bernoulli(0.65) ? DiskOp::kRead : DiskOp::kWrite;
    const SimTime start = array->sim().Now();
    array->backend().Submit(op, lba, sectors, [&, start](const IoResult& r) {
      MIMDRAID_CHECK(r.status == IoStatus::kOk);
      total_us += (array->sim().Now() - start).us();
      ++done;
      if (submitted < ops) {
        submit_one();
      }
    });
  };
  for (int i = 0; i < kLoopDepth && submitted < ops; ++i) {
    submit_one();
  }
  uint64_t steps = 0;
  while (done < ops) {
    MIMDRAID_CHECK(array->sim().Step());
    MIMDRAID_CHECK_LT(++steps, 30'000'000u);
  }
  return static_cast<double>(total_us) / static_cast<double>(ops) / 1000.0;
}

struct FrontierPoint {
  int tenants_fit = 0;
  double free_frac = 0.0;
  double mirror_ms = -1.0;  // first mirror tenant; -1 if none fit
  double raid5_ms = -1.0;   // first RAID-5 tenant; -1 if none fit
};

FrontierPoint MeasurePoint(size_t old_drives, VaPlacement policy) {
  VirtualArrayAllocator alloc(MakeMixFleet(old_drives), kFleetDrives, policy,
                              /*seed=*/11);
  const uint64_t total = alloc.TotalFreeSectors();

  std::vector<VaAllocation> granted;
  while (true) {
    std::optional<VaAllocation> a =
        alloc.Allocate(TenantRequest(granted.size()));
    if (!a.has_value()) {
      break;
    }
    granted.push_back(std::move(*a));
  }

  FrontierPoint point;
  point.tenants_fit = static_cast<int>(granted.size());
  point.free_frac = static_cast<double>(alloc.TotalFreeSectors()) /
                    static_cast<double>(total);

  MimdRaidOptions base;
  base.scheduler = SchedulerKind::kSatf;
  base.seed = 42;
  for (size_t t = 0; t < granted.size() && t < 2; ++t) {
    MimdRaid tenant(alloc.Materialize(granted[t], base));
    const double ms =
        RunClosedLoopMs(&tenant, kOpsPerTenant, /*seed=*/101 + t);
    if (granted[t].request.backend == ArrayBackendKind::kMirror) {
      point.mirror_ms = ms;
    } else {
      point.raid5_ms = ms;
    }
  }
  return point;
}

std::string FormatPointMs(double ms) {
  if (ms < 0.0) {
    return "     -";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%6.3f", ms);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  InitBenchSweep(argc, argv);
  PrintHeader("HDA frontier",
              "generation mixes x VA placement (8-drive fleet)");

  const std::vector<size_t> mixes = {0, 2, 4, 6, 8};
  const VaPlacement policies[] = {
      VaPlacement::kMostFree, VaPlacement::kLeastFree,
      VaPlacement::kProbabilistic, VaPlacement::kRoundRobin};

  DeferredSweep<FrontierPoint> sweep;
  for (const size_t old_drives : mixes) {
    for (const VaPlacement policy : policies) {
      sweep.Defer([old_drives, policy] {
        return MeasurePoint(old_drives, policy);
      });
    }
  }
  sweep.Run();

  for (const size_t old_drives : mixes) {
    std::printf("\nmix old=%zu new=%zu\n", old_drives,
                kFleetDrives - old_drives);
    std::printf("  %-14s %-8s %-7s %-10s %-10s\n", "policy", "tenants",
                "free%", "mirror-ms", "raid5-ms");
    for (const VaPlacement policy : policies) {
      const FrontierPoint& p = sweep.Next();
      std::printf("  %-14s %-8d %-7.1f %-10s %-10s\n",
                  VaPlacementName(policy), p.tenants_fit, 100.0 * p.free_frac,
                  FormatPointMs(p.mirror_ms).c_str(),
                  FormatPointMs(p.raid5_ms).c_str());
    }
  }

  std::printf("\nshape: old-heavy fleets pack more tenants at higher mean\n"
              "response; least-free packs tightest, the spreaders balance.\n");
  return 0;
}
