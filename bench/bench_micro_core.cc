// Microbenchmarks (google-benchmark) for the hot paths of the simulator:
// LBA mapping, access planning, replica placement, scheduler picks, and the
// GF(2^8) erasure codec. These bound the cost of simulated I/O, of
// position-sensitive scheduling (a SATF-class dispatch is
// O(queue x replicas) Plan() calls), and of byte-level coding per stripe.
#include <benchmark/benchmark.h>

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "src/array/placement.h"
#include "src/calib/predictor.h"
#include "src/disk/sim_disk.h"
#include "src/ec/gf256.h"
#include "src/sched/positional_schedulers.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"
#include "src/va/virtual_array.h"

namespace mimdraid {
namespace {

struct Fixture {
  Fixture()
      : geometry(MakeSt39133Geometry()),
        layout(&geometry),
        profile(MakeSt39133SeekProfile()),
        timing(&layout, profile, 0.0),
        placement3(&layout, 3),
        rng(1) {}
  DiskGeometry geometry;
  DiskLayout layout;
  SeekProfile profile;
  DiskTimingModel timing;
  SrDiskPlacement placement3;
  Rng rng;
};

Fixture& F() {
  // mdl-ok(MDL004): serial google-benchmark binary, never in a parallel sweep
  static Fixture f;
  return f;
}

void BM_LayoutToChs(benchmark::State& state) {
  Fixture& f = F();
  uint64_t lba = 12345;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.layout.ToChs(lba));
    lba = (lba * 2654435761u + 7) % f.layout.num_data_sectors();
  }
}
BENCHMARK(BM_LayoutToChs);

void BM_TimingPlan(benchmark::State& state) {
  Fixture& f = F();
  HeadState head{100, 3};
  uint64_t lba = 999;
  double t = 0.0;
  for (auto _ : state) {
    const AccessPlan plan = f.timing.Plan(head, t, lba, 8, false);
    benchmark::DoNotOptimize(plan.total_us);
    head = plan.end_state;
    t += plan.total_us;
    lba = (lba * 2654435761u + 13) % (f.layout.num_data_sectors() - 8);
  }
}
BENCHMARK(BM_TimingPlan);

void BM_PlacementPhysicalLba(benchmark::State& state) {
  Fixture& f = F();
  SrDiskPlacement& placement = f.placement3;
  uint64_t s = 5;
  int r = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(placement.PhysicalLba(s, r));
    s = (s * 2654435761u + 3) % placement.capacity_sectors();
    r = (r + 1) % 3;
  }
}
BENCHMARK(BM_PlacementPhysicalLba);

void BM_SimDiskOp(benchmark::State& state) {
  Simulator sim;
  SimDisk disk(&sim, F().geometry, F().profile, DiskNoiseModel::None(), 1,
               0.0);
  Rng rng(3);
  for (auto _ : state) {
    const uint64_t lba = rng.UniformU64(disk.num_sectors() - 8);
    bool done = false;
    disk.Start(DiskOp::kRead, BlockAddr(lba), 8, [&](const DiskOpResult&) {
      done = true;
    });
    while (!done) {
      sim.Step();
    }
  }
}
BENCHMARK(BM_SimDiskOp);

void BM_RsatfPick(benchmark::State& state) {
  const size_t queue_len = static_cast<size_t>(state.range(0));
  Simulator sim;
  SimDisk disk(&sim, F().geometry, F().profile, DiskNoiseModel::None(), 1,
               0.0);
  OraclePredictor predictor(&disk, 0.0);
  SrDiskPlacement placement(&disk.layout(), 3);
  Rng rng(5);
  std::vector<QueuedRequest> queue;
  for (size_t i = 0; i < queue_len; ++i) {
    QueuedRequest req;
    req.id = i + 1;
    req.op = DiskOp::kRead;
    req.sectors = 8;
    const uint64_t s = rng.UniformU64(placement.capacity_sectors() - 8);
    for (const uint64_t cand : placement.AllReplicas(s)) {
      req.candidate_lbas.push_back(BlockAddr(cand));
    }
    queue.push_back(std::move(req));
  }
  RsatfScheduler sched;
  ScheduleContext ctx;
  ctx.predictor = &predictor;
  ctx.layout = &disk.layout();
  SimTime now;
  for (auto _ : state) {
    ctx.now = now;
    benchmark::DoNotOptimize(sched.Pick(queue, ctx));
    now += SimDuration(1000);
  }
  state.SetComplexityN(static_cast<int64_t>(queue_len));
}
BENCHMARK(BM_RsatfPick)
    ->Arg(8)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Complexity();

// Closed-loop fleet: N independent disks on one simulator, each immediately
// re-issuing on completion, so the event engine holds N pending completions
// at all times. One iteration = one Step(); measures the engine's per-event
// cost (calendar-queue pop + insert) at fleet scale, not disk mechanics.
void BM_FleetSimStep(benchmark::State& state) {
  const size_t fleet = static_cast<size_t>(state.range(0));
  Simulator sim;
  std::vector<std::unique_ptr<SimDisk>> disks;
  std::vector<uint64_t> next_lba(fleet);
  Rng rng(11);
  disks.reserve(fleet);
  for (size_t i = 0; i < fleet; ++i) {
    disks.push_back(std::make_unique<SimDisk>(&sim, F().geometry, F().profile,
                                              DiskNoiseModel::None(), i + 1,
                                              0.0));
    next_lba[i] = rng.UniformU64(disks[i]->num_sectors() - 8);
  }
  // Self-rescheduling issue loop per disk keeps exactly `fleet` events live.
  std::function<void(size_t)> issue = [&](size_t i) {
    disks[i]->Start(DiskOp::kRead, BlockAddr(next_lba[i]), 8,
                    [&, i](const DiskOpResult&) {
                      next_lba[i] =
                          (next_lba[i] * 2654435761u + 9) %
                          (disks[i]->num_sectors() - 8);
                      issue(i);
                    });
  };
  for (size_t i = 0; i < fleet; ++i) {
    issue(i);
  }
  for (auto _ : state) {
    sim.Step();
  }
  state.SetComplexityN(static_cast<int64_t>(fleet));
}
BENCHMARK(BM_FleetSimStep)->Arg(100)->Arg(1000)->Complexity();

// Virtual-array grant/release round trip on a mixed two-generation fleet of
// N drives under the most-free policy (the sorting policy: O(N log N) per
// grant). Bounds the control-plane cost of carving tenants out of the fleet.
void BM_VaAllocate(benchmark::State& state) {
  const size_t fleet_drives = static_cast<size_t>(state.range(0));
  FleetSpec fleet;
  DriveParams fast;
  fast.name = "fast";
  fast.geometry = MakeTestGeometry();
  fast.profile = MakeTestSeekProfile();
  DriveParams slow = fast;
  slow.name = "slow";
  slow.geometry.rpm = 7200;
  slow.geometry.num_cylinders = 90;
  fleet.generations = {fast, slow};
  for (size_t d = 0; d < fleet_drives; ++d) {
    fleet.slot_generation.push_back(d % 2);
  }
  VirtualArrayAllocator alloc(fleet, fleet_drives, VaPlacement::kMostFree,
                              /*seed=*/7);
  VaRequest request;
  request.name = "bm";
  request.backend = ArrayBackendKind::kMirror;
  request.aspect.ds = 2;
  request.aspect.dr = 1;
  request.aspect.dm = 2;
  request.dataset_sectors = 2400;
  request.stripe_unit_sectors = 16;
  for (auto _ : state) {
    std::optional<VaAllocation> a = alloc.Allocate(request);
    benchmark::DoNotOptimize(a);
    alloc.Release(*a);
  }
  state.SetComplexityN(static_cast<int64_t>(fleet_drives));
}
BENCHMARK(BM_VaAllocate)->Arg(8)->Arg(64)->Arg(256)->Complexity();

// GF(2^8) Cauchy coding over one stripe of k 4 KiB shards: parity
// generation (Encode) and worst-case repair (Reconstruct with all m data
// shards lost, so the full k x k inversion plus every missing row is paid).
// Prices the byte path the simulator's plans stand in for.
void BM_EcEncode(benchmark::State& state) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  const uint32_t m = static_cast<uint32_t>(state.range(1));
  constexpr size_t kShardBytes = 4096;
  const EcCodec codec(k, m);
  Rng rng(19);
  std::vector<std::vector<uint8_t>> data(k);
  for (auto& s : data) {
    s.resize(kShardBytes);
    for (auto& b : s) {
      b = static_cast<uint8_t>(rng.UniformU64(256));
    }
  }
  std::vector<std::vector<uint8_t>> parity;
  for (auto _ : state) {
    codec.Encode(data, &parity);
    benchmark::DoNotOptimize(parity);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * k *
                          kShardBytes);
}
BENCHMARK(BM_EcEncode)->Args({4, 2})->Args({5, 1})->Args({8, 4});

void BM_EcDecode(benchmark::State& state) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  const uint32_t m = static_cast<uint32_t>(state.range(1));
  constexpr size_t kShardBytes = 4096;
  const EcCodec codec(k, m);
  Rng rng(23);
  std::vector<std::vector<uint8_t>> whole(k);
  for (auto& s : whole) {
    s.resize(kShardBytes);
    for (auto& b : s) {
      b = static_cast<uint8_t>(rng.UniformU64(256));
    }
  }
  std::vector<std::vector<uint8_t>> parity;
  codec.Encode(whole, &parity);
  whole.insert(whole.end(), parity.begin(), parity.end());
  std::vector<bool> present(k + m, true);
  for (uint32_t i = 0; i < m; ++i) {
    present[i] = false;  // worst case: m data shards gone
  }
  for (auto _ : state) {
    std::vector<std::vector<uint8_t>> shards = whole;
    for (uint32_t i = 0; i < m; ++i) {
      shards[i].clear();
    }
    const bool ok = codec.Reconstruct(&shards, present);
    benchmark::DoNotOptimize(ok);
    benchmark::DoNotOptimize(shards);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * m *
                          kShardBytes);
}
BENCHMARK(BM_EcDecode)->Args({4, 2})->Args({5, 1})->Args({8, 4});

}  // namespace
}  // namespace mimdraid

BENCHMARK_MAIN();
