// Reliability frontier: MTTDL and expected data-loss rates next to the
// capacity the paper's schemes spend and the performance they buy.
//
// The paper trades capacity for performance; this bench adds the third axis.
// For each redundancy scheme the fleet-lifetime simulator (src/rel) runs a
// Monte Carlo over multi-year trials — whole-disk failures from the
// configured hazard, latent sector errors accumulating between scrubs,
// rebuild windows calibrated by running the real rebuild path on the real
// engine — and reports MTTDL with a 95% confidence interval plus expected
// data-loss events per year, both whole-array and sector-class.
//
// Lifetimes are accelerated (MTTF far below datasheet) so the Monte Carlo
// resolves every scheme's loss rate in seconds; the *ordering* across
// schemes is the result, exactly as with the paper's performance figures.
// For single-fault-tolerant schemes the exact Markov closed form is printed
// next to the simulated estimate — the estimator's CI brackets it.
//
// Determinism: every trial seeds from PointSeed(base, trial); output is
// byte-identical for any --jobs value.
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/rel/fleet_sim.h"
#include "src/rel/hazard.h"
#include "src/rel/mttdl.h"
#include "src/rel/rebuild_calib.h"
#include "src/stats/estimate.h"

using namespace mimdraid;
using namespace mimdraid::bench;

namespace {

// Accelerated lifetime so losses are observable in a bounded Monte Carlo.
constexpr double kMttfHours = 10'000.0;
// Field-plausible latent-sector-error arrival rate per disk-hour.
constexpr double kLseRatePerHour = 1.0e-3;
// ST39133 capacity (9.1 GB / 512 B sectors): what the calibrated rebuild
// rate is scaled to.
constexpr uint64_t kDiskSectors = 17'783'240;
constexpr double kHorizonHours = 10.0 * kHoursPerYear;  // one trial
constexpr uint32_t kTrials = 400;
constexpr uint64_t kBaseSeed = 20260808;
constexpr double kScrubPeriodHours = 168.0;  // weekly

struct SchemeRow {
  const char* label;
  uint32_t disks;
  uint32_t fault_tolerance;
  // Which embedded rebuild path calibrates the window (mirror copy vs.
  // parity reconstruction).
  ArrayBackendKind rebuild_like;
  double capacity_frac;
};

const std::vector<SchemeRow>& Schemes() {
  static const std::vector<SchemeRow> rows = {
      {"mirror pair (2, m=1)", 2, 1, ArrayBackendKind::kMirror, 0.50},
      {"RAID-5 group (6, m=1)", 6, 1, ArrayBackendKind::kRaid5, 5.0 / 6.0},
      {"6+2 erasure (8, m=2)", 8, 2, ArrayBackendKind::kRaid5, 6.0 / 8.0},
  };
  return rows;
}

struct SchemeOutcome {
  double rebuild_hours = 0.0;
  rel::MttdlEstimate estimate;
};

SchemeOutcome RunScheme(const SchemeRow& row, rel::ScrubPolicy scrub) {
  SchemeOutcome out;
  const rel::RebuildCalibration calib =
      rel::CalibrateRebuild(row.rebuild_like, kBaseSeed);
  out.rebuild_hours = calib.HoursForCapacity(kDiskSectors);

  rel::MonteCarloOptions mc;
  mc.fleet.disks = row.disks;
  mc.fleet.fault_tolerance = row.fault_tolerance;
  mc.fleet.lifetime.hazard = LifetimeHazard::kExponential;
  mc.fleet.lifetime.mttf_hours = kMttfHours;
  mc.fleet.lifetime.lse_rate_per_hour = kLseRatePerHour;
  mc.fleet.rebuild_model = rel::RebuildTimeModel::kFixed;
  mc.fleet.rebuild_hours = out.rebuild_hours;
  mc.fleet.scrub = scrub;
  mc.fleet.scrub_period_hours = kScrubPeriodHours;
  if (scrub == rel::ScrubPolicy::kUtilizationGated) {
    // A busy array: foreground load denies the idle-gated scrubber the
    // disks 60% of the time, stretching the effective period.
    mc.fleet.utilization = 0.6;
  }
  mc.fleet.horizon_hours = kHorizonHours;
  mc.trials = kTrials;
  mc.base_seed = kBaseSeed;
  // Trials run serially inside the point; the DeferredSweep parallelizes
  // across points, keeping output independent of the job count.
  mc.jobs = 1;
  out.estimate = rel::RunFleetMonteCarlo(mc);
  return out;
}

const char* PolicyName(rel::ScrubPolicy p) {
  switch (p) {
    case rel::ScrubPolicy::kOff:
      return "off";
    case rel::ScrubPolicy::kFixedPeriod:
      return "fixed-period";
    case rel::ScrubPolicy::kStaggered:
      return "staggered";
    case rel::ScrubPolicy::kUtilizationGated:
      return "util-gated";
  }
  return "?";
}

std::string FormatYears(double hours) {
  char buf[32];
  if (hours == std::numeric_limits<double>::infinity()) {
    std::snprintf(buf, sizeof(buf), "inf");
  } else {
    std::snprintf(buf, sizeof(buf), "%.3g", hours / kHoursPerYear);
  }
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  InitBenchSweep(argc, argv);
  PrintHeader("Reliability frontier",
              "capacity vs. performance vs. MTTDL (accelerated lifetimes)");
  std::printf(
      "fleet model: exponential lifetimes MTTF=%.0f h (accelerated), LSE\n"
      "rate %.0e /disk-h, weekly scrub, calibrated rebuild windows;\n"
      "%u trials x %.0f simulated years each, 95%% CIs.\n\n",
      kMttfHours, kLseRatePerHour, kTrials,
      kHorizonHours / kHoursPerYear);

  DeferredSweep<SchemeOutcome> frontier;
  for (const SchemeRow& row : Schemes()) {
    frontier.Defer(
        [row] { return RunScheme(row, rel::ScrubPolicy::kFixedPeriod); });
  }
  const std::vector<rel::ScrubPolicy> policies = {
      rel::ScrubPolicy::kOff, rel::ScrubPolicy::kFixedPeriod,
      rel::ScrubPolicy::kStaggered, rel::ScrubPolicy::kUtilizationGated};
  DeferredSweep<SchemeOutcome> scrub_sweep;
  for (const rel::ScrubPolicy policy : policies) {
    scrub_sweep.Defer(
        [policy] { return RunScheme(Schemes()[1], policy); });
  }
  frontier.Run();
  scrub_sweep.Run();

  std::printf("%-22s %-9s %-9s %-22s %-10s %-12s %s\n", "scheme", "capacity",
              "rebuild", "MTTDL yr [95% CI]", "closed", "array-loss",
              "sector-loss");
  std::printf("%-22s %-9s %-9s %-22s %-10s %-12s %s\n", "", "", "(hours)",
              "", "form yr", "(/yr)", "(/yr)");
  for (const SchemeRow& row : Schemes()) {
    const SchemeOutcome o = frontier.Next();
    const rel::MttdlEstimate& e = o.estimate;
    char ci[64];
    std::snprintf(ci, sizeof(ci), "%s [%s, %s]",
                  FormatYears(e.mttdl_hours.point).c_str(),
                  FormatYears(e.mttdl_hours.lo).c_str(),
                  FormatYears(e.mttdl_hours.hi).c_str());
    char closed[32];
    if (row.fault_tolerance == 1) {
      std::snprintf(closed, sizeof(closed), "%s",
                    FormatYears(rel::ClosedFormMttdlSingleFault(
                                    row.disks, kMttfHours, o.rebuild_hours))
                        .c_str());
    } else {
      std::snprintf(closed, sizeof(closed), "-");
    }
    std::printf("%-22s %-9.2f %-9.2f %-22s %-10s %-12.4f %.4f\n", row.label,
                row.capacity_frac, o.rebuild_hours, ci, closed,
                e.array_loss_per_year.point, e.sector_loss_per_year.point);
  }

  std::printf("\nscrub policy (RAID-5 group, weekly period):\n");
  std::printf("%-14s %-8s %-12s %-12s %-12s %s\n", "policy", "sweeps",
              "LSE cleared", "array-loss", "sector-loss", "coverage");
  for (const rel::ScrubPolicy policy : policies) {
    const SchemeOutcome o = scrub_sweep.Next();
    const rel::FleetTrialResult& t = o.estimate.totals;
    std::printf("%-14s %-8llu %-12llu %-12.4f %-12.4f %.2f\n",
                PolicyName(policy),
                static_cast<unsigned long long>(t.scrub_sweeps),
                static_cast<unsigned long long>(t.lse_scrub_cleared),
                o.estimate.array_loss_per_year.point,
                o.estimate.sector_loss_per_year.point,
                t.last_sweep_coverage);
  }

  std::printf(
      "\nthe third axis: replication spends capacity and earns both latency\n"
      "(fig 7) and MTTDL — fewer disks per group and a copy-speed rebuild\n"
      "shorten the critical window; parity groups amortize capacity across\n"
      "more disks and pay with a wider window and a higher loss rate.\n"
      "scrubbing does not move whole-array MTTDL but suppresses the\n"
      "sector-loss class by clearing latent errors before a rebuild needs\n"
      "the sectors.\n");
  return 0;
}
