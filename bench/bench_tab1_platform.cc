// Table 1: platform characteristics.
//
// Prints the simulated drive's characteristics next to the paper's platform
// table, including *measured* average seeks (random single-sector probes on
// the simulated drive) so the drive model is validated against its spec, not
// just restated.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/calib/sync_disk.h"
#include "src/util/rng.h"
#include "src/util/summary.h"

using namespace mimdraid;
using namespace mimdraid::bench;

int main() {
  PrintHeader("Table 1", "Platform characteristics (simulated substrate)");
  const DiskGeometry geo = MakeSt39133Geometry();
  const SeekProfile profile = MakeSt39133SeekProfile();

  // Measure average random seek by issuing read/write pairs at uniform
  // cylinders and extracting the seek component from the ground truth.
  Simulator sim;
  SimDisk disk(&sim, geo, profile, DiskNoiseModel::None(), /*seed=*/1,
               /*phase=*/0.0);
  SyncDisk sync(&sim, &disk);
  Rng rng(9);
  Summary read_seek;
  Summary write_seek;
  for (int i = 0; i < 4000; ++i) {
    const uint64_t lba = rng.UniformU64(disk.num_sectors());
    const bool is_write = i % 2 == 1;
    const DiskOpResult r =
        sync.Access(is_write ? DiskOp::kWrite : DiskOp::kRead, lba, 1);
    (is_write ? write_seek : read_seek).Add(r.seek_us);
  }

  std::printf("%-22s %-28s %s\n", "", "paper (Table 1)", "this reproduction");
  std::printf("%-22s %-28s %s\n", "Operating system", "Windows 2000",
              "event-driven simulator");
  std::printf("%-22s %-28s %s\n", "Device access", "Adaptec 39160 SCSI",
              "simulated black-box drive");
  std::printf("%-22s %-28s %.1f GB, %u cyl, %u heads, %zu zones\n",
              "Disk model", "Seagate ST39133LWV 9.1 GB",
              geo.CapacityBytes() / 1e9, geo.num_cylinders, geo.num_heads,
              geo.zones.size());
  std::printf("%-22s %-28s %u (R = %lld us)\n", "RPM", "10000", geo.rpm,
              static_cast<long long>(geo.RotationUs().us()));
  std::printf("%-22s %-28s %.1f ms read, %.1f ms write (measured)\n",
              "Average seek", "5.2 ms read, 6.0 ms write",
              read_seek.mean() / 1000.0, write_seek.mean() / 1000.0);
  std::printf("%-22s %-28s %.1f ms\n", "Full stroke", "~10 ms",
              profile.MaxSeekUs(geo.num_cylinders) / 1000.0);
  std::printf("%-22s %-28s %.0f us switch, %.0f us write settle\n",
              "Track switch", "~900 us", profile.head_switch_us,
              profile.write_settle_us);
  return 0;
}
