// Table 2: head-position prediction accuracy under the Cello base workload.
//
// Runs the full software stack — rotation/phase estimation from reference
// reads, extracted seek profile, per-disk head tracking with two-minute
// re-calibration — on noisy drives, plays a Cello-base-like trace against a
// 2x3 SR-Array with RSATF, and reports the Table 2 statistics aggregated over
// the drives' predictors.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/calib/predictor.h"

using namespace mimdraid;
using namespace mimdraid::bench;

int main() {
  PrintHeader("Table 2", "Prediction accuracy on Cello base (2x3 SR-Array, RSATF)");

  SyntheticTraceParams params = CelloBaseParams(/*duration_s=*/4 * 3600, 5);
  // Play at 8x so the short trace exercises plenty of physical I/O.
  const Trace trace = GenerateSyntheticTrace(params);

  MimdRaidOptions options;
  options.aspect = Aspect(2, 3);
  options.scheduler = SchedulerKind::kRsatf;
  options.dataset_sectors = trace.dataset_sectors;
  options.noise = DiskNoiseModel::Prototype();
  options.use_oracle_predictor = false;
  options.recalibration_interval_us = SimDuration(120'000'000);
  options.calibration.seek.num_distances = 12;
  options.max_scan = 128;
  MimdRaid array(options);

  TracePlayerOptions popt;
  popt.rate_scale = 8.0;
  const RunResult run = RunTraceOnArray(array, trace, popt);

  PredictorStats total;
  for (size_t i = 0; i < array.num_disks(); ++i) {
    const auto& p = dynamic_cast<HeadPositionPredictor&>(array.predictor(i));
    total.predictions += p.stats().predictions;
    total.misses += p.stats().misses;
    total.error_us.Merge(p.stats().error_us);
    total.access_time_us.Merge(p.stats().access_time_us);
    total.squared_error_sum += p.stats().squared_error_sum;
  }

  std::printf("physical I/Os predicted: %llu (trace replayed at 8x, %llu ops)\n\n",
              static_cast<unsigned long long>(total.predictions),
              static_cast<unsigned long long>(run.completed));
  std::printf("%-32s %-12s %s\n", "", "paper", "measured");
  std::printf("%-32s %-12s %.2f%%\n", "Misses", "0.22%",
              total.MissRate() * 100.0);
  std::printf("%-32s %-12s %.0f us\n", "Mean prediction error", "3 us",
              total.error_us.mean());
  std::printf("%-32s %-12s %.0f us\n", "Stddev of error", "31 us",
              total.error_us.stddev());
  std::printf("%-32s %-12s %.0f us\n", "Average access time", "2746 us",
              total.access_time_us.mean());
  std::printf("%-32s %-12s %.0f us\n", "Demerit", "52 us", total.DemeritUs());
  std::printf("%-32s %-12s %.1f%%\n", "Demerit / access time", "1.9%",
              100.0 * total.DemeritUs() / total.access_time_us.mean());
  return 0;
}
