// Table 3: trace characteristics.
//
// Generates the three synthetic workloads and reports the Table 3 metrics
// next to the paper's values. Durations are shortened from the originals (a
// week of Cello, two hours of TPC-C) — the rates and mixes are what matters.
#include <cstdio>

#include "bench/bench_common.h"

using namespace mimdraid;
using namespace mimdraid::bench;

namespace {

void Report(const char* label, const Trace& trace, const char* paper_row) {
  const TraceStats s = ComputeTraceStats(trace);
  std::printf("%-14s %7.1f GB %9llu %8.2f/s  %5.1f%% %7.1f%% %7.2f %9.1f%%\n",
              label, s.data_size_gb,
              static_cast<unsigned long long>(s.io_count), s.io_rate_per_s,
              s.read_frac * 100.0, s.async_write_frac * 100.0,
              s.seek_locality, s.read_after_write_frac * 100.0);
  std::printf("%-14s %s\n", "  (paper)", paper_row);
}

}  // namespace

int main() {
  PrintHeader("Table 3", "Trace characteristics (synthetic equivalents)");
  std::printf("%-14s %10s %9s %10s %6s %8s %7s %10s\n", "", "data", "I/Os",
              "rate", "reads", "async-w", "L", "RAW(1h)");

  Report("Cello base",
         GenerateSyntheticTrace(CelloBaseParams(/*duration_s=*/6 * 3600, 1)),
         "    8.4 GB   1717483    2.84/s   55.2%   18.9%    4.14       4.15%");
  Report("Cello disk 6",
         GenerateSyntheticTrace(CelloDisk6Params(/*duration_s=*/6 * 3600, 2)),
         "    1.3 GB   1545341    2.56/s   35.8%   16.1%   16.67       3.8%");
  Report("TPC-C",
         GenerateSyntheticTrace(TpccParams(/*duration_s=*/300, 3)),
         "    9.0 GB   3598422     500/s   54.8%    0.0%    1.04      14.8%");
  return 0;
}
