file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_adaptation.dir/bench_abl_adaptation.cc.o"
  "CMakeFiles/bench_abl_adaptation.dir/bench_abl_adaptation.cc.o.d"
  "bench_abl_adaptation"
  "bench_abl_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
