# Empty compiler generated dependencies file for bench_abl_adaptation.
# This may be replaced when dependencies are built.
