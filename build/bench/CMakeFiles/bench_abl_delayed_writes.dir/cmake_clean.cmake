file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_delayed_writes.dir/bench_abl_delayed_writes.cc.o"
  "CMakeFiles/bench_abl_delayed_writes.dir/bench_abl_delayed_writes.cc.o.d"
  "bench_abl_delayed_writes"
  "bench_abl_delayed_writes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_delayed_writes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
