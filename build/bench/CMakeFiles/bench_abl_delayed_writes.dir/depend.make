# Empty dependencies file for bench_abl_delayed_writes.
# This may be replaced when dependencies are built.
