file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_failure.dir/bench_abl_failure.cc.o"
  "CMakeFiles/bench_abl_failure.dir/bench_abl_failure.cc.o.d"
  "bench_abl_failure"
  "bench_abl_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
