file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_internal_sched.dir/bench_abl_internal_sched.cc.o"
  "CMakeFiles/bench_abl_internal_sched.dir/bench_abl_internal_sched.cc.o.d"
  "bench_abl_internal_sched"
  "bench_abl_internal_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_internal_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
