# Empty dependencies file for bench_abl_internal_sched.
# This may be replaced when dependencies are built.
