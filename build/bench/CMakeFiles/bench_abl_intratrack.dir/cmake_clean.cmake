file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_intratrack.dir/bench_abl_intratrack.cc.o"
  "CMakeFiles/bench_abl_intratrack.dir/bench_abl_intratrack.cc.o.d"
  "bench_abl_intratrack"
  "bench_abl_intratrack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_intratrack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
