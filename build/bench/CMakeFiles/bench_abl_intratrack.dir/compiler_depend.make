# Empty compiler generated dependencies file for bench_abl_intratrack.
# This may be replaced when dependencies are built.
