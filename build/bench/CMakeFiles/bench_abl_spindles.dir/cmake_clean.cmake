file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_spindles.dir/bench_abl_spindles.cc.o"
  "CMakeFiles/bench_abl_spindles.dir/bench_abl_spindles.cc.o.d"
  "bench_abl_spindles"
  "bench_abl_spindles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_spindles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
