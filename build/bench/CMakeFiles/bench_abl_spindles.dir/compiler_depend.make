# Empty compiler generated dependencies file for bench_abl_spindles.
# This may be replaced when dependencies are built.
