
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_abl_stripe_unit.cc" "bench/CMakeFiles/bench_abl_stripe_unit.dir/bench_abl_stripe_unit.cc.o" "gcc" "bench/CMakeFiles/bench_abl_stripe_unit.dir/bench_abl_stripe_unit.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mimdraid_core.dir/DependInfo.cmake"
  "/root/repo/build/src/array/CMakeFiles/mimdraid_array.dir/DependInfo.cmake"
  "/root/repo/build/src/raid5/CMakeFiles/mimdraid_raid5.dir/DependInfo.cmake"
  "/root/repo/build/src/calib/CMakeFiles/mimdraid_calib.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mimdraid_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/mimdraid_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mimdraid_model.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/mimdraid_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mimdraid_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/mimdraid_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mimdraid_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mimdraid_util.dir/DependInfo.cmake"
  "/root/repo/build/src/adapt/CMakeFiles/mimdraid_adapt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
