file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_stripe_unit.dir/bench_abl_stripe_unit.cc.o"
  "CMakeFiles/bench_abl_stripe_unit.dir/bench_abl_stripe_unit.cc.o.d"
  "bench_abl_stripe_unit"
  "bench_abl_stripe_unit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_stripe_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
