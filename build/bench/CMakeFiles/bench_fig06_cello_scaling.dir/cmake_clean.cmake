file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_cello_scaling.dir/bench_fig06_cello_scaling.cc.o"
  "CMakeFiles/bench_fig06_cello_scaling.dir/bench_fig06_cello_scaling.cc.o.d"
  "bench_fig06_cello_scaling"
  "bench_fig06_cello_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_cello_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
