# Empty compiler generated dependencies file for bench_fig06_cello_scaling.
# This may be replaced when dependencies are built.
