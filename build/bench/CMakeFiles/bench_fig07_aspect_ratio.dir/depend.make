# Empty dependencies file for bench_fig07_aspect_ratio.
# This may be replaced when dependencies are built.
