file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_schedulers.dir/bench_fig09_schedulers.cc.o"
  "CMakeFiles/bench_fig09_schedulers.dir/bench_fig09_schedulers.cc.o.d"
  "bench_fig09_schedulers"
  "bench_fig09_schedulers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_schedulers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
