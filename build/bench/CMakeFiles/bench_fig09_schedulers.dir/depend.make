# Empty dependencies file for bench_fig09_schedulers.
# This may be replaced when dependencies are built.
