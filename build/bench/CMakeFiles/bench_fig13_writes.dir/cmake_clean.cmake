file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_writes.dir/bench_fig13_writes.cc.o"
  "CMakeFiles/bench_fig13_writes.dir/bench_fig13_writes.cc.o.d"
  "bench_fig13_writes"
  "bench_fig13_writes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_writes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
