# Empty dependencies file for bench_tab2_prediction.
# This may be replaced when dependencies are built.
