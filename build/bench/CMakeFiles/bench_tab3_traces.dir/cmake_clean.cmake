file(REMOVE_RECURSE
  "CMakeFiles/bench_tab3_traces.dir/bench_tab3_traces.cc.o"
  "CMakeFiles/bench_tab3_traces.dir/bench_tab3_traces.cc.o.d"
  "bench_tab3_traces"
  "bench_tab3_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab3_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
