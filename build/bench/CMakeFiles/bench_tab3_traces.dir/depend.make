# Empty dependencies file for bench_tab3_traces.
# This may be replaced when dependencies are built.
