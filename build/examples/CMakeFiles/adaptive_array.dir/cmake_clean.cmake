file(REMOVE_RECURSE
  "CMakeFiles/adaptive_array.dir/adaptive_array.cpp.o"
  "CMakeFiles/adaptive_array.dir/adaptive_array.cpp.o.d"
  "adaptive_array"
  "adaptive_array.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
