# Empty compiler generated dependencies file for adaptive_array.
# This may be replaced when dependencies are built.
