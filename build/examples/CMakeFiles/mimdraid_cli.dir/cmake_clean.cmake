file(REMOVE_RECURSE
  "CMakeFiles/mimdraid_cli.dir/mimdraid_cli.cpp.o"
  "CMakeFiles/mimdraid_cli.dir/mimdraid_cli.cpp.o.d"
  "mimdraid_cli"
  "mimdraid_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mimdraid_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
