# Empty dependencies file for mimdraid_cli.
# This may be replaced when dependencies are built.
