# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("sim")
subdirs("disk")
subdirs("calib")
subdirs("sched")
subdirs("stats")
subdirs("workload")
subdirs("cache")
subdirs("model")
subdirs("adapt")
subdirs("raid5")
subdirs("array")
subdirs("core")
