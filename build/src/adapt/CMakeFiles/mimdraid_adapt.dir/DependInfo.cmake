
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adapt/advisor.cc" "src/adapt/CMakeFiles/mimdraid_adapt.dir/advisor.cc.o" "gcc" "src/adapt/CMakeFiles/mimdraid_adapt.dir/advisor.cc.o.d"
  "/root/repo/src/adapt/workload_monitor.cc" "src/adapt/CMakeFiles/mimdraid_adapt.dir/workload_monitor.cc.o" "gcc" "src/adapt/CMakeFiles/mimdraid_adapt.dir/workload_monitor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/mimdraid_model.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/mimdraid_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mimdraid_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mimdraid_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
