file(REMOVE_RECURSE
  "CMakeFiles/mimdraid_adapt.dir/advisor.cc.o"
  "CMakeFiles/mimdraid_adapt.dir/advisor.cc.o.d"
  "CMakeFiles/mimdraid_adapt.dir/workload_monitor.cc.o"
  "CMakeFiles/mimdraid_adapt.dir/workload_monitor.cc.o.d"
  "libmimdraid_adapt.a"
  "libmimdraid_adapt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mimdraid_adapt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
