file(REMOVE_RECURSE
  "libmimdraid_adapt.a"
)
