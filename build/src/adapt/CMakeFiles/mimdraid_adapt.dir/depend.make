# Empty dependencies file for mimdraid_adapt.
# This may be replaced when dependencies are built.
