
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/array/array_layout.cc" "src/array/CMakeFiles/mimdraid_array.dir/array_layout.cc.o" "gcc" "src/array/CMakeFiles/mimdraid_array.dir/array_layout.cc.o.d"
  "/root/repo/src/array/controller.cc" "src/array/CMakeFiles/mimdraid_array.dir/controller.cc.o" "gcc" "src/array/CMakeFiles/mimdraid_array.dir/controller.cc.o.d"
  "/root/repo/src/array/placement.cc" "src/array/CMakeFiles/mimdraid_array.dir/placement.cc.o" "gcc" "src/array/CMakeFiles/mimdraid_array.dir/placement.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/disk/CMakeFiles/mimdraid_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/mimdraid_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/calib/CMakeFiles/mimdraid_calib.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mimdraid_model.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mimdraid_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mimdraid_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
