file(REMOVE_RECURSE
  "CMakeFiles/mimdraid_array.dir/array_layout.cc.o"
  "CMakeFiles/mimdraid_array.dir/array_layout.cc.o.d"
  "CMakeFiles/mimdraid_array.dir/controller.cc.o"
  "CMakeFiles/mimdraid_array.dir/controller.cc.o.d"
  "CMakeFiles/mimdraid_array.dir/placement.cc.o"
  "CMakeFiles/mimdraid_array.dir/placement.cc.o.d"
  "libmimdraid_array.a"
  "libmimdraid_array.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mimdraid_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
