file(REMOVE_RECURSE
  "libmimdraid_array.a"
)
