# Empty compiler generated dependencies file for mimdraid_array.
# This may be replaced when dependencies are built.
