file(REMOVE_RECURSE
  "CMakeFiles/mimdraid_cache.dir/lru_cache.cc.o"
  "CMakeFiles/mimdraid_cache.dir/lru_cache.cc.o.d"
  "libmimdraid_cache.a"
  "libmimdraid_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mimdraid_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
