file(REMOVE_RECURSE
  "libmimdraid_cache.a"
)
