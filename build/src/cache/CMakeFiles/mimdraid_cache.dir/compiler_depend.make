# Empty compiler generated dependencies file for mimdraid_cache.
# This may be replaced when dependencies are built.
