# Empty dependencies file for mimdraid_cache.
# This may be replaced when dependencies are built.
