
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/calib/calibration.cc" "src/calib/CMakeFiles/mimdraid_calib.dir/calibration.cc.o" "gcc" "src/calib/CMakeFiles/mimdraid_calib.dir/calibration.cc.o.d"
  "/root/repo/src/calib/predictor.cc" "src/calib/CMakeFiles/mimdraid_calib.dir/predictor.cc.o" "gcc" "src/calib/CMakeFiles/mimdraid_calib.dir/predictor.cc.o.d"
  "/root/repo/src/calib/prober.cc" "src/calib/CMakeFiles/mimdraid_calib.dir/prober.cc.o" "gcc" "src/calib/CMakeFiles/mimdraid_calib.dir/prober.cc.o.d"
  "/root/repo/src/calib/rotation_estimator.cc" "src/calib/CMakeFiles/mimdraid_calib.dir/rotation_estimator.cc.o" "gcc" "src/calib/CMakeFiles/mimdraid_calib.dir/rotation_estimator.cc.o.d"
  "/root/repo/src/calib/seek_extractor.cc" "src/calib/CMakeFiles/mimdraid_calib.dir/seek_extractor.cc.o" "gcc" "src/calib/CMakeFiles/mimdraid_calib.dir/seek_extractor.cc.o.d"
  "/root/repo/src/calib/sync_disk.cc" "src/calib/CMakeFiles/mimdraid_calib.dir/sync_disk.cc.o" "gcc" "src/calib/CMakeFiles/mimdraid_calib.dir/sync_disk.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/disk/CMakeFiles/mimdraid_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mimdraid_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mimdraid_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
