file(REMOVE_RECURSE
  "CMakeFiles/mimdraid_calib.dir/calibration.cc.o"
  "CMakeFiles/mimdraid_calib.dir/calibration.cc.o.d"
  "CMakeFiles/mimdraid_calib.dir/predictor.cc.o"
  "CMakeFiles/mimdraid_calib.dir/predictor.cc.o.d"
  "CMakeFiles/mimdraid_calib.dir/prober.cc.o"
  "CMakeFiles/mimdraid_calib.dir/prober.cc.o.d"
  "CMakeFiles/mimdraid_calib.dir/rotation_estimator.cc.o"
  "CMakeFiles/mimdraid_calib.dir/rotation_estimator.cc.o.d"
  "CMakeFiles/mimdraid_calib.dir/seek_extractor.cc.o"
  "CMakeFiles/mimdraid_calib.dir/seek_extractor.cc.o.d"
  "CMakeFiles/mimdraid_calib.dir/sync_disk.cc.o"
  "CMakeFiles/mimdraid_calib.dir/sync_disk.cc.o.d"
  "libmimdraid_calib.a"
  "libmimdraid_calib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mimdraid_calib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
