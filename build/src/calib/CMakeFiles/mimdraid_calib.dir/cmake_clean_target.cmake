file(REMOVE_RECURSE
  "libmimdraid_calib.a"
)
