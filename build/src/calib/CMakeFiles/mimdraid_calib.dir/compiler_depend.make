# Empty compiler generated dependencies file for mimdraid_calib.
# This may be replaced when dependencies are built.
