file(REMOVE_RECURSE
  "CMakeFiles/mimdraid_core.dir/adaptive_array.cc.o"
  "CMakeFiles/mimdraid_core.dir/adaptive_array.cc.o.d"
  "CMakeFiles/mimdraid_core.dir/experiment.cc.o"
  "CMakeFiles/mimdraid_core.dir/experiment.cc.o.d"
  "CMakeFiles/mimdraid_core.dir/mimd_raid.cc.o"
  "CMakeFiles/mimdraid_core.dir/mimd_raid.cc.o.d"
  "libmimdraid_core.a"
  "libmimdraid_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mimdraid_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
