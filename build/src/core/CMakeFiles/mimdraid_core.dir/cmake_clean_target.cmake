file(REMOVE_RECURSE
  "libmimdraid_core.a"
)
