# Empty dependencies file for mimdraid_core.
# This may be replaced when dependencies are built.
