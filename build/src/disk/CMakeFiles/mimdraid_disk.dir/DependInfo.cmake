
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/disk/geometry.cc" "src/disk/CMakeFiles/mimdraid_disk.dir/geometry.cc.o" "gcc" "src/disk/CMakeFiles/mimdraid_disk.dir/geometry.cc.o.d"
  "/root/repo/src/disk/layout.cc" "src/disk/CMakeFiles/mimdraid_disk.dir/layout.cc.o" "gcc" "src/disk/CMakeFiles/mimdraid_disk.dir/layout.cc.o.d"
  "/root/repo/src/disk/queued_disk.cc" "src/disk/CMakeFiles/mimdraid_disk.dir/queued_disk.cc.o" "gcc" "src/disk/CMakeFiles/mimdraid_disk.dir/queued_disk.cc.o.d"
  "/root/repo/src/disk/seek_profile.cc" "src/disk/CMakeFiles/mimdraid_disk.dir/seek_profile.cc.o" "gcc" "src/disk/CMakeFiles/mimdraid_disk.dir/seek_profile.cc.o.d"
  "/root/repo/src/disk/sim_disk.cc" "src/disk/CMakeFiles/mimdraid_disk.dir/sim_disk.cc.o" "gcc" "src/disk/CMakeFiles/mimdraid_disk.dir/sim_disk.cc.o.d"
  "/root/repo/src/disk/timing.cc" "src/disk/CMakeFiles/mimdraid_disk.dir/timing.cc.o" "gcc" "src/disk/CMakeFiles/mimdraid_disk.dir/timing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mimdraid_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mimdraid_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
