file(REMOVE_RECURSE
  "CMakeFiles/mimdraid_disk.dir/geometry.cc.o"
  "CMakeFiles/mimdraid_disk.dir/geometry.cc.o.d"
  "CMakeFiles/mimdraid_disk.dir/layout.cc.o"
  "CMakeFiles/mimdraid_disk.dir/layout.cc.o.d"
  "CMakeFiles/mimdraid_disk.dir/queued_disk.cc.o"
  "CMakeFiles/mimdraid_disk.dir/queued_disk.cc.o.d"
  "CMakeFiles/mimdraid_disk.dir/seek_profile.cc.o"
  "CMakeFiles/mimdraid_disk.dir/seek_profile.cc.o.d"
  "CMakeFiles/mimdraid_disk.dir/sim_disk.cc.o"
  "CMakeFiles/mimdraid_disk.dir/sim_disk.cc.o.d"
  "CMakeFiles/mimdraid_disk.dir/timing.cc.o"
  "CMakeFiles/mimdraid_disk.dir/timing.cc.o.d"
  "libmimdraid_disk.a"
  "libmimdraid_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mimdraid_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
