file(REMOVE_RECURSE
  "libmimdraid_disk.a"
)
