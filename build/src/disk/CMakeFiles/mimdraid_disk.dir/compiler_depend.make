# Empty compiler generated dependencies file for mimdraid_disk.
# This may be replaced when dependencies are built.
