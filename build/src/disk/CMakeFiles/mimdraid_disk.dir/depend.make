# Empty dependencies file for mimdraid_disk.
# This may be replaced when dependencies are built.
