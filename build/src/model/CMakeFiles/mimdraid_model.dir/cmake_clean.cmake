file(REMOVE_RECURSE
  "CMakeFiles/mimdraid_model.dir/analytic.cc.o"
  "CMakeFiles/mimdraid_model.dir/analytic.cc.o.d"
  "CMakeFiles/mimdraid_model.dir/configurator.cc.o"
  "CMakeFiles/mimdraid_model.dir/configurator.cc.o.d"
  "libmimdraid_model.a"
  "libmimdraid_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mimdraid_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
