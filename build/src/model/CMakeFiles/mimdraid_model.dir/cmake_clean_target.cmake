file(REMOVE_RECURSE
  "libmimdraid_model.a"
)
