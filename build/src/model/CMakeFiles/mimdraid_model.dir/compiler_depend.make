# Empty compiler generated dependencies file for mimdraid_model.
# This may be replaced when dependencies are built.
