
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/raid5/raid5_controller.cc" "src/raid5/CMakeFiles/mimdraid_raid5.dir/raid5_controller.cc.o" "gcc" "src/raid5/CMakeFiles/mimdraid_raid5.dir/raid5_controller.cc.o.d"
  "/root/repo/src/raid5/raid5_layout.cc" "src/raid5/CMakeFiles/mimdraid_raid5.dir/raid5_layout.cc.o" "gcc" "src/raid5/CMakeFiles/mimdraid_raid5.dir/raid5_layout.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/disk/CMakeFiles/mimdraid_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/mimdraid_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mimdraid_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mimdraid_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
