file(REMOVE_RECURSE
  "CMakeFiles/mimdraid_raid5.dir/raid5_controller.cc.o"
  "CMakeFiles/mimdraid_raid5.dir/raid5_controller.cc.o.d"
  "CMakeFiles/mimdraid_raid5.dir/raid5_layout.cc.o"
  "CMakeFiles/mimdraid_raid5.dir/raid5_layout.cc.o.d"
  "libmimdraid_raid5.a"
  "libmimdraid_raid5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mimdraid_raid5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
