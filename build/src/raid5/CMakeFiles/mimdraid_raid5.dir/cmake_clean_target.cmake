file(REMOVE_RECURSE
  "libmimdraid_raid5.a"
)
