# Empty dependencies file for mimdraid_raid5.
# This may be replaced when dependencies are built.
