
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/basic_schedulers.cc" "src/sched/CMakeFiles/mimdraid_sched.dir/basic_schedulers.cc.o" "gcc" "src/sched/CMakeFiles/mimdraid_sched.dir/basic_schedulers.cc.o.d"
  "/root/repo/src/sched/positional_schedulers.cc" "src/sched/CMakeFiles/mimdraid_sched.dir/positional_schedulers.cc.o" "gcc" "src/sched/CMakeFiles/mimdraid_sched.dir/positional_schedulers.cc.o.d"
  "/root/repo/src/sched/scheduler.cc" "src/sched/CMakeFiles/mimdraid_sched.dir/scheduler.cc.o" "gcc" "src/sched/CMakeFiles/mimdraid_sched.dir/scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/disk/CMakeFiles/mimdraid_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mimdraid_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mimdraid_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
