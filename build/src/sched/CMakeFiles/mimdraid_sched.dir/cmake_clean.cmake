file(REMOVE_RECURSE
  "CMakeFiles/mimdraid_sched.dir/basic_schedulers.cc.o"
  "CMakeFiles/mimdraid_sched.dir/basic_schedulers.cc.o.d"
  "CMakeFiles/mimdraid_sched.dir/positional_schedulers.cc.o"
  "CMakeFiles/mimdraid_sched.dir/positional_schedulers.cc.o.d"
  "CMakeFiles/mimdraid_sched.dir/scheduler.cc.o"
  "CMakeFiles/mimdraid_sched.dir/scheduler.cc.o.d"
  "libmimdraid_sched.a"
  "libmimdraid_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mimdraid_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
