file(REMOVE_RECURSE
  "libmimdraid_sched.a"
)
