# Empty dependencies file for mimdraid_sched.
# This may be replaced when dependencies are built.
