file(REMOVE_RECURSE
  "CMakeFiles/mimdraid_sim.dir/simulator.cc.o"
  "CMakeFiles/mimdraid_sim.dir/simulator.cc.o.d"
  "libmimdraid_sim.a"
  "libmimdraid_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mimdraid_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
