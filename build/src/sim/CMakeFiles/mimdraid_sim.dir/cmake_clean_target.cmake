file(REMOVE_RECURSE
  "libmimdraid_sim.a"
)
