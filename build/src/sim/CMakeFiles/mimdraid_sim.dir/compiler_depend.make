# Empty compiler generated dependencies file for mimdraid_sim.
# This may be replaced when dependencies are built.
