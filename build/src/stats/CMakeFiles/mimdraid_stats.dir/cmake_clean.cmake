file(REMOVE_RECURSE
  "CMakeFiles/mimdraid_stats.dir/latency_recorder.cc.o"
  "CMakeFiles/mimdraid_stats.dir/latency_recorder.cc.o.d"
  "libmimdraid_stats.a"
  "libmimdraid_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mimdraid_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
