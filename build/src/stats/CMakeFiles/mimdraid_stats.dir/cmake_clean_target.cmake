file(REMOVE_RECURSE
  "libmimdraid_stats.a"
)
