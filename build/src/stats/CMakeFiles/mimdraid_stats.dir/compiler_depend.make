# Empty compiler generated dependencies file for mimdraid_stats.
# This may be replaced when dependencies are built.
