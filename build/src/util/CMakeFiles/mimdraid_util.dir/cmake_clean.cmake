file(REMOVE_RECURSE
  "CMakeFiles/mimdraid_util.dir/rng.cc.o"
  "CMakeFiles/mimdraid_util.dir/rng.cc.o.d"
  "libmimdraid_util.a"
  "libmimdraid_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mimdraid_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
