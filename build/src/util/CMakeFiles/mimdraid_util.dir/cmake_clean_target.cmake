file(REMOVE_RECURSE
  "libmimdraid_util.a"
)
