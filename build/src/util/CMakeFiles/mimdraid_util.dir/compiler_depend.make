# Empty compiler generated dependencies file for mimdraid_util.
# This may be replaced when dependencies are built.
