
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/drivers.cc" "src/workload/CMakeFiles/mimdraid_workload.dir/drivers.cc.o" "gcc" "src/workload/CMakeFiles/mimdraid_workload.dir/drivers.cc.o.d"
  "/root/repo/src/workload/synthetic.cc" "src/workload/CMakeFiles/mimdraid_workload.dir/synthetic.cc.o" "gcc" "src/workload/CMakeFiles/mimdraid_workload.dir/synthetic.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/workload/CMakeFiles/mimdraid_workload.dir/trace.cc.o" "gcc" "src/workload/CMakeFiles/mimdraid_workload.dir/trace.cc.o.d"
  "/root/repo/src/workload/trace_io.cc" "src/workload/CMakeFiles/mimdraid_workload.dir/trace_io.cc.o" "gcc" "src/workload/CMakeFiles/mimdraid_workload.dir/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/disk/CMakeFiles/mimdraid_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mimdraid_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mimdraid_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mimdraid_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
