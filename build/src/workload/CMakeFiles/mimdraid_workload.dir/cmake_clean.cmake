file(REMOVE_RECURSE
  "CMakeFiles/mimdraid_workload.dir/drivers.cc.o"
  "CMakeFiles/mimdraid_workload.dir/drivers.cc.o.d"
  "CMakeFiles/mimdraid_workload.dir/synthetic.cc.o"
  "CMakeFiles/mimdraid_workload.dir/synthetic.cc.o.d"
  "CMakeFiles/mimdraid_workload.dir/trace.cc.o"
  "CMakeFiles/mimdraid_workload.dir/trace.cc.o.d"
  "CMakeFiles/mimdraid_workload.dir/trace_io.cc.o"
  "CMakeFiles/mimdraid_workload.dir/trace_io.cc.o.d"
  "libmimdraid_workload.a"
  "libmimdraid_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mimdraid_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
