file(REMOVE_RECURSE
  "libmimdraid_workload.a"
)
