# Empty compiler generated dependencies file for mimdraid_workload.
# This may be replaced when dependencies are built.
