# Empty dependencies file for mimdraid_workload.
# This may be replaced when dependencies are built.
