file(REMOVE_RECURSE
  "CMakeFiles/array_failure_test.dir/array_failure_test.cc.o"
  "CMakeFiles/array_failure_test.dir/array_failure_test.cc.o.d"
  "array_failure_test"
  "array_failure_test.pdb"
  "array_failure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/array_failure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
