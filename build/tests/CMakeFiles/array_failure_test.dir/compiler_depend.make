# Empty compiler generated dependencies file for array_failure_test.
# This may be replaced when dependencies are built.
