file(REMOVE_RECURSE
  "CMakeFiles/array_layout_test.dir/array_layout_test.cc.o"
  "CMakeFiles/array_layout_test.dir/array_layout_test.cc.o.d"
  "array_layout_test"
  "array_layout_test.pdb"
  "array_layout_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/array_layout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
