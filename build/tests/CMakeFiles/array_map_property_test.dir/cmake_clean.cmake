file(REMOVE_RECURSE
  "CMakeFiles/array_map_property_test.dir/array_map_property_test.cc.o"
  "CMakeFiles/array_map_property_test.dir/array_map_property_test.cc.o.d"
  "array_map_property_test"
  "array_map_property_test.pdb"
  "array_map_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/array_map_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
