# Empty dependencies file for array_map_property_test.
# This may be replaced when dependencies are built.
