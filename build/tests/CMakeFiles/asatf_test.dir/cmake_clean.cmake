file(REMOVE_RECURSE
  "CMakeFiles/asatf_test.dir/asatf_test.cc.o"
  "CMakeFiles/asatf_test.dir/asatf_test.cc.o.d"
  "asatf_test"
  "asatf_test.pdb"
  "asatf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asatf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
