# Empty compiler generated dependencies file for asatf_test.
# This may be replaced when dependencies are built.
