file(REMOVE_RECURSE
  "CMakeFiles/controller_soak_test.dir/controller_soak_test.cc.o"
  "CMakeFiles/controller_soak_test.dir/controller_soak_test.cc.o.d"
  "controller_soak_test"
  "controller_soak_test.pdb"
  "controller_soak_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controller_soak_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
