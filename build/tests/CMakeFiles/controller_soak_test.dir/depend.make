# Empty dependencies file for controller_soak_test.
# This may be replaced when dependencies are built.
