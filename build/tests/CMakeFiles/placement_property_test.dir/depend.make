# Empty dependencies file for placement_property_test.
# This may be replaced when dependencies are built.
