file(REMOVE_RECURSE
  "CMakeFiles/prober_test.dir/prober_test.cc.o"
  "CMakeFiles/prober_test.dir/prober_test.cc.o.d"
  "prober_test"
  "prober_test.pdb"
  "prober_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prober_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
