# Empty dependencies file for prober_test.
# This may be replaced when dependencies are built.
