file(REMOVE_RECURSE
  "CMakeFiles/queued_disk_test.dir/queued_disk_test.cc.o"
  "CMakeFiles/queued_disk_test.dir/queued_disk_test.cc.o.d"
  "queued_disk_test"
  "queued_disk_test.pdb"
  "queued_disk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queued_disk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
