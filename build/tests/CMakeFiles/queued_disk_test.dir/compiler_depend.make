# Empty compiler generated dependencies file for queued_disk_test.
# This may be replaced when dependencies are built.
