file(REMOVE_RECURSE
  "CMakeFiles/raid5_test.dir/raid5_test.cc.o"
  "CMakeFiles/raid5_test.dir/raid5_test.cc.o.d"
  "raid5_test"
  "raid5_test.pdb"
  "raid5_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raid5_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
