# Empty compiler generated dependencies file for raid5_test.
# This may be replaced when dependencies are built.
