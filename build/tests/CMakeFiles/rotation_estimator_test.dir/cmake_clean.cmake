file(REMOVE_RECURSE
  "CMakeFiles/rotation_estimator_test.dir/rotation_estimator_test.cc.o"
  "CMakeFiles/rotation_estimator_test.dir/rotation_estimator_test.cc.o.d"
  "rotation_estimator_test"
  "rotation_estimator_test.pdb"
  "rotation_estimator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rotation_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
