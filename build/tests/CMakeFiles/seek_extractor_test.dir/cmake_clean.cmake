file(REMOVE_RECURSE
  "CMakeFiles/seek_extractor_test.dir/seek_extractor_test.cc.o"
  "CMakeFiles/seek_extractor_test.dir/seek_extractor_test.cc.o.d"
  "seek_extractor_test"
  "seek_extractor_test.pdb"
  "seek_extractor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seek_extractor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
