# Empty dependencies file for seek_extractor_test.
# This may be replaced when dependencies are built.
