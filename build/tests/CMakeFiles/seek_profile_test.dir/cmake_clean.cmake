file(REMOVE_RECURSE
  "CMakeFiles/seek_profile_test.dir/seek_profile_test.cc.o"
  "CMakeFiles/seek_profile_test.dir/seek_profile_test.cc.o.d"
  "seek_profile_test"
  "seek_profile_test.pdb"
  "seek_profile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seek_profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
