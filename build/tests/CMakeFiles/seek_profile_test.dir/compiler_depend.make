# Empty compiler generated dependencies file for seek_profile_test.
# This may be replaced when dependencies are built.
