# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for seek_profile_test.
