// Adaptive reconfiguration: the array re-shapes itself as the workload
// changes phase (the paper's Ivy-inspired future work, implemented).
//
// Phase 1: read-heavy, low-rate file traffic  -> replication pays.
// Phase 2: write-heavy, saturating traffic    -> striping pays.
// The monitor watches the stream, the advisor consults the Section 2 models,
// and the array migrates when the predicted gain clears the bar.
//
// Run: ./adaptive_array
#include <cstdio>

#include "src/core/adaptive_array.h"
#include "src/workload/drivers.h"

using namespace mimdraid;

namespace {

RunResult Phase(AdaptiveArray& adaptive, double read_frac, uint32_t outstanding,
                uint64_t ops, uint64_t seed) {
  ClosedLoopOptions loop;
  loop.outstanding = outstanding;
  loop.read_frac = read_frac;
  loop.sectors = 8;
  loop.warmup_ops = 150;
  loop.measure_ops = ops;
  loop.dataset_sectors = adaptive.array().options().dataset_sectors;
  loop.seed = seed;
  ClosedLoopDriver driver(&adaptive.sim(), adaptive.Submitter(), loop);
  return driver.Run();
}

void Report(const char* label, AdaptiveArray& adaptive, const RunResult& r) {
  std::printf("%-34s %-8s mean %6.2f ms, %7.0f IOPS\n", label,
              adaptive.array().options().aspect.ToString().c_str(),
              r.latency.MeanMs(), r.iops);
}

}  // namespace

int main() {
  AdaptiveArrayOptions options;
  options.base.aspect = ArrayAspect{6, 1, 1};  // provisioned as a plain stripe
  options.base.scheduler = SchedulerKind::kRsatf;
  options.base.dataset_sectors = 8'000'000;
  // A modest NVRAM table: sustained write floods must pay the propagation
  // cost instead of deferring it past the end of the experiment.
  options.base.delayed_table_limit = 500;
  options.advisor.min_gain = 1.1;
  AdaptiveArray adaptive(options);

  std::printf("six disks, starting as a %s stripe\n\n",
              adaptive.array().options().aspect.ToString().c_str());

  // --- Phase 1: read-mostly, latency-sensitive. ---
  RunResult r = Phase(adaptive, 1.0, 1, 2500, 1);
  Report("phase 1 (reads) before adapting:", adaptive, r);
  Advice advice = adaptive.Adapt();
  std::printf("  advisor: %s -> %s (predicted gain %.2fx)%s\n",
              advice.current.ToString().c_str(),
              advice.recommended.ToString().c_str(), advice.predicted_gain,
              advice.reconfigure ? ", migrating" : ", keeping");
  r = Phase(adaptive, 1.0, 1, 2500, 2);
  Report("phase 1 after adapting:", adaptive, r);

  // --- Phase 2: write-heavy, high concurrency. ---
  std::printf("\nworkload shifts to 90%% writes at high concurrency\n");
  r = Phase(adaptive, 0.1, 64, 5000, 3);
  Report("phase 2 before adapting:", adaptive, r);
  advice = adaptive.Adapt();
  std::printf("  advisor: %s -> %s (predicted gain %.2fx)%s\n",
              advice.current.ToString().c_str(),
              advice.recommended.ToString().c_str(), advice.predicted_gain,
              advice.reconfigure ? ", migrating" : ", keeping");
  r = Phase(adaptive, 0.1, 64, 5000, 4);
  Report("phase 2 after adapting:", adaptive, r);

  std::printf("\nreconfigurations performed: %zu\n",
              adaptive.reshapes().size());
  for (const ReshapeEvent& e : adaptive.reshapes()) {
    std::printf("  t=%.0fs  %s -> %s (gain %.2fx, migration %.0fs)\n",
                SecondsFromUs(e.at_us), e.from.ToString().c_str(),
                e.to.ToString().c_str(), e.predicted_gain,
                e.migration_seconds);
  }
  return 0;
}
