// Software head-position prediction on a black-box drive (Section 3.2).
//
// Treats a simulated drive as a raw device: estimates the rotation period and
// spindle phase from reference-sector reads, extracts the zone map and skews
// from timing alone, fits the seek curve, then demonstrates prediction
// accuracy on a random workload (the Table 2 experiment).
//
// Run: ./calibration_demo
#include <cstdio>

#include "src/calib/calibration.h"
#include "src/calib/prober.h"
#include "src/calib/predictor.h"
#include "src/disk/sim_disk.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"

using namespace mimdraid;

int main() {
  Simulator sim;
  const DiskGeometry geometry = MakeSt39133Geometry();
  // The "real" drive: noisy overheads, spindle 31 ppm off nominal, unknown
  // phase.
  const double true_rotation = 6000.0 * (1.0 + 31e-6);
  SimDisk disk(&sim, geometry, MakeSt39133SeekProfile(),
               DiskNoiseModel::Prototype(), /*seed=*/2026,
               /*spindle_phase_us=*/4711.0, true_rotation);

  std::printf("== Phase 1: rotation estimation from reference-sector reads ==\n");
  CalibrationOptions options;
  options.probe_layout = true;
  options.seek.num_distances = 24;
  options.seek.searches_per_distance = 5;
  options.seek.binary_search_iterations = 13;
  const CalibrationResult cal = CalibrateDisk(&sim, &disk, options);
  std::printf("  nominal rotation: 6000.000 us\n");
  std::printf("  true rotation:    %.3f us\n", true_rotation);
  std::printf("  estimated:        %.3f us (residual RMS %.1f us)\n",
              cal.rotation_us, cal.residual_rms_us);

  std::printf("\n== Phase 2: address-map extraction (Worthington-style) ==\n");
  std::printf("  %zu zones found, %u reserved track(s), %llu probes\n",
              cal.probe->zones.size(), cal.probe->reserved_tracks,
              static_cast<unsigned long long>(cal.probe->probes_used));
  std::printf("  %-6s %-10s %-6s %-11s %-13s\n", "zone", "first_cyl", "SPT",
              "track_skew", "cylinder_skew");
  for (size_t z = 0; z < cal.probe->zones.size(); ++z) {
    const ProbedZone& pz = cal.probe->zones[z];
    const Zone& truth = geometry.zones[z];
    std::printf("  %-6zu %-10u %-6u %-11u %-13u %s\n", z, pz.first_cylinder,
                pz.sectors_per_track, pz.track_skew, pz.cylinder_skew,
                (pz.sectors_per_track == truth.sectors_per_track &&
                 pz.track_skew == truth.track_skew &&
                 pz.cylinder_skew == truth.cylinder_skew &&
                 pz.first_cylinder == truth.first_cylinder)
                    ? "(exact)"
                    : "(MISMATCH)");
  }

  std::printf("\n== Phase 3: extracted seek curve ==\n");
  std::printf("  short regime: %.0f + %.1f*sqrt(d) us (true 600 + 116.0*sqrt(d) + 300 overhead)\n",
              cal.profile.short_a_us, cal.profile.short_b_us);
  std::printf("  head switch: %.0f us, write settle: %.0f us\n",
              cal.profile.head_switch_us, cal.profile.write_settle_us);

  std::printf("\n== Phase 4: prediction accuracy (Table 2 style) ==\n");
  HeadPositionPredictor predictor(&disk.layout(), cal.profile,
                                  cal.rotation_us, cal.lattice_phase_us,
                                  options.reference_lba);
  Rng rng(7);
  const int kOps = 4000;
  for (int i = 0; i < kOps; ++i) {
    // Like the RSATF scheduler, avoid targets whose predicted rotational wait
    // is inside the slack (on a replicated layout the scheduler would take
    // the next replica instead).
    uint64_t lba = rng.UniformU64(disk.num_sectors());
    AccessPlan plan = predictor.Predict(sim.Now(), BlockAddr(lba), 1, false);
    for (int retry = 0;
         retry < 8 && plan.rotational_us < predictor.SlackUs(); ++retry) {
      lba = rng.UniformU64(disk.num_sectors());
      plan = predictor.Predict(sim.Now(), BlockAddr(lba), 1, false);
    }
    predictor.OnDispatch(sim.Now(), BlockAddr(lba), 1, false, plan.total_us);
    bool done = false;
    SimTime completion(0);
    disk.Start(DiskOp::kRead, BlockAddr(lba), 1, [&](const DiskOpResult& r) {
      completion = r.completion_us;
      done = true;
    });
    while (!done) {
      sim.Step();
    }
    predictor.OnCompletion(completion, BlockAddr(lba), 1);
  }
  const PredictorStats& stats = predictor.stats();
  std::printf("  requests:                 %d\n", kOps);
  std::printf("  misses:                   %.2f%%   (paper: 0.22%%)\n",
              stats.MissRate() * 100.0);
  std::printf("  mean prediction error:    %.0f us  (paper: 3 us)\n",
              stats.error_us.mean());
  std::printf("  stddev of error:          %.0f us  (paper: 31 us)\n",
              stats.error_us.stddev());
  std::printf("  average access time:      %.0f us  (paper: 2746 us)\n",
              stats.access_time_us.mean());
  std::printf("  demerit:                  %.0f us  (paper: 52 us)\n",
              stats.DemeritUs());
  std::printf("  demerit/access time:      %.1f%%   (paper: 1.9%%)\n",
              100.0 * stats.DemeritUs() / stats.access_time_us.mean());
  return 0;
}
