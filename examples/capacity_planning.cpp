// Capacity planning for a latency SLO: the paper's motivating scenario.
//
// Database vendors provision by disk *heads*, not bytes (Section 1). Given a
// TPC-C-like workload and a 15 ms response-time budget, sweep array sizes and
// configurations and report the smallest disk budget that sustains the target
// request rate — comparing striping, RAID-10, and the model-chosen SR-Array.
//
// Run: ./capacity_planning
#include <cstdio>
#include <vector>

#include "src/core/experiment.h"
#include "src/core/mimd_raid.h"
#include "src/model/configurator.h"
#include "src/workload/synthetic.h"

using namespace mimdraid;

namespace {

constexpr double kSloMs = 15.0;

struct Candidate {
  const char* label;
  ArrayAspect aspect;
  SchedulerKind sched;
};

double MeasureMeanMs(const Candidate& c, const Trace& trace,
                     double rate_scale) {
  MimdRaidOptions options;
  options.aspect = c.aspect;
  options.scheduler = c.sched;
  options.dataset_sectors = trace.dataset_sectors;
  options.max_scan = 128;
  MimdRaid array(options);
  TracePlayerOptions popt;
  popt.rate_scale = rate_scale;
  popt.max_outstanding = 3000;
  const RunResult r = RunTraceOnArray(array, trace, popt);
  if (r.saturated) {
    return 1e9;
  }
  return r.latency.MeanMs();
}

}  // namespace

int main() {
  // A few minutes of TPC-C-like traffic, played at 2x the original rate to
  // stress the smaller arrays.
  SyntheticTraceParams params = TpccParams(/*duration_s=*/120, /*seed=*/42);
  const Trace trace = GenerateSyntheticTrace(params);
  const TraceStats stats = ComputeTraceStats(trace);
  const double rate_scale = 2.0;
  std::printf("workload: %.0f IO/s offered (TPC-C-like, %.1f GB), SLO %.0f ms\n",
              stats.io_rate_per_s * rate_scale, stats.data_size_gb, kSloMs);

  const DiskGeometry geometry = MakeSt39133Geometry();
  const SeekProfile profile = MakeSt39133SeekProfile();
  const ModelDiskParams disk_params =
      ModelParamsForDataset(geometry, profile, trace.dataset_sectors);

  std::printf("\n%-6s %-22s %-22s %-22s\n", "disks", "striping (SATF)",
              "RAID-10 (SATF)", "SR-Array (RSATF)");
  for (int d : {8, 12, 16, 24}) {
    std::vector<Candidate> candidates;
    ArrayAspect stripe;
    stripe.ds = d;
    candidates.push_back({"stripe", stripe, SchedulerKind::kSatf});

    Candidate raid10{"raid10", {}, SchedulerKind::kSatf};
    if (d % 2 == 0) {
      raid10.aspect.ds = d / 2;
      raid10.aspect.dm = 2;
    }

    ConfiguratorInputs inputs;
    inputs.num_disks = d;
    inputs.max_seek_us = disk_params.max_seek_us;
    inputs.rotation_us = disk_params.rotation_us;
    inputs.p = 0.9;  // reads + maskable propagation
    inputs.queue_depth = stats.io_rate_per_s * rate_scale * 0.004 / d + 1;
    inputs.locality = stats.seek_locality;
    Candidate sr{"sr", ChooseConfig(inputs).aspect, SchedulerKind::kRsatf};

    const double stripe_ms = MeasureMeanMs(candidates[0], trace, rate_scale);
    const double raid_ms = d % 2 == 0 ? MeasureMeanMs(raid10, trace, rate_scale)
                                      : -1.0;
    const double sr_ms = MeasureMeanMs(sr, trace, rate_scale);

    auto cell = [](const ArrayAspect& a, double ms) {
      static char buf[2][64];
      static int which = 0;
      which ^= 1;
      if (ms > 1e8) {
        std::snprintf(buf[which], sizeof(buf[which]), "%-8s saturated",
                      a.ToString().c_str());
      } else {
        std::snprintf(buf[which], sizeof(buf[which]), "%-8s %6.2f ms%s",
                      a.ToString().c_str(), ms, ms <= kSloMs ? " *" : "");
      }
      return buf[which];
    };
    std::printf("%-6d %-22s ", d, cell(stripe, stripe_ms));
    if (raid_ms >= 0) {
      std::printf("%-22s ", cell(raid10.aspect, raid_ms));
    } else {
      std::printf("%-22s ", "n/a (odd D)");
    }
    std::printf("%-22s\n", cell(sr.aspect, sr_ms));
  }
  std::printf("\n* = meets the %.0f ms SLO. The SR-Array meets it with the\n"
              "fewest heads, which is the paper's cost argument.\n", kSloMs);
  return 0;
}
