// mimdraid_cli: run an arbitrary array configuration against an arbitrary
// workload from the command line — the "try it on your workload" entry point.
//
// Examples:
//   ./mimdraid_cli --disks=6 --auto --workload=cello --report
//   ./mimdraid_cli --ds=2 --dr=3 --sched=rsatf --workload=random
//       --read-frac=0.7 --outstanding=16 --ops=5000
//   ./mimdraid_cli --ds=9 --dr=4 --workload=tpcc --rate-scale=3
//   ./mimdraid_cli --disks=6 --auto --trace=/tmp/my.trace
#include <cstdio>
#include <string>

#include "src/core/experiment.h"
#include "src/core/mimd_raid.h"
#include "src/model/configurator.h"
#include "src/util/flags.h"
#include "src/workload/synthetic.h"
#include "src/workload/trace_io.h"

using namespace mimdraid;

namespace {

void Usage() {
  std::printf(
      "mimdraid_cli — SR-Array simulator\n\n"
      "array shape (pick one):\n"
      "  --ds=N --dr=N [--dm=N]   explicit Ds x Dr x Dm aspect\n"
      "  --disks=N --auto         let the Section 2 models configure N disks\n"
      "options:\n"
      "  --sched=fcfs|sstf|look|clook|satf|asatf|rlook|rsatf  (default rsatf)\n"
      "  --dataset-gb=F           logical capacity (default 4)\n"
      "  --noisy                  realistic overhead jitter + software\n"
      "                           calibration (default: ideal + oracle)\n"
      "workload (pick one):\n"
      "  --workload=random [--read-frac=F --outstanding=N --ops=N --size=SECT]\n"
      "  --workload=cello|cello6|tpcc [--rate-scale=F --minutes=N]\n"
      "  --trace=PATH             replay a saved trace file\n"
      "output:\n"
      "  --report                 print model analysis alongside measurement\n");
}

SchedulerKind ParseSched(const std::string& s) {
  if (s == "fcfs") return SchedulerKind::kFcfs;
  if (s == "sstf") return SchedulerKind::kSstf;
  if (s == "look") return SchedulerKind::kLook;
  if (s == "clook") return SchedulerKind::kClook;
  if (s == "satf") return SchedulerKind::kSatf;
  if (s == "asatf") return SchedulerKind::kAsatf;
  if (s == "rlook") return SchedulerKind::kRlook;
  if (s == "rsatf") return SchedulerKind::kRsatf;
  std::fprintf(stderr, "unknown scheduler '%s'\n", s.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.Has("help")) {
    Usage();
    return 0;
  }

  const uint64_t dataset_sectors = static_cast<uint64_t>(
      flags.GetDouble("dataset-gb", 4.0) * 1e9 / 512.0);

  // --- Workload. ---
  Trace trace;
  bool have_trace = false;
  const std::string workload = flags.GetString("workload", "random");
  const double minutes = flags.GetDouble("minutes", 60.0);
  if (flags.Has("trace")) {
    if (!LoadTrace(flags.GetString("trace", ""), &trace)) {
      std::fprintf(stderr, "cannot load trace\n");
      return 2;
    }
    have_trace = true;
  } else if (workload == "cello") {
    trace = GenerateSyntheticTrace(CelloBaseParams(minutes * 60.0, 1));
    have_trace = true;
  } else if (workload == "cello6") {
    trace = GenerateSyntheticTrace(CelloDisk6Params(minutes * 60.0, 1));
    have_trace = true;
  } else if (workload == "tpcc") {
    trace = GenerateSyntheticTrace(TpccParams(minutes * 60.0, 1));
    have_trace = true;
  } else if (workload != "random") {
    std::fprintf(stderr, "unknown workload '%s'\n", workload.c_str());
    return 2;
  }
  const uint64_t dataset =
      have_trace ? trace.dataset_sectors : dataset_sectors;

  // --- Array shape. ---
  ArrayAspect aspect;
  const ModelDiskParams model_params = ModelParamsForDataset(
      MakeSt39133Geometry(), MakeSt39133SeekProfile(), dataset);
  TraceStats stats;
  if (have_trace) {
    stats = ComputeTraceStats(trace);
  }
  if (flags.GetBool("auto", false)) {
    ConfiguratorInputs in;
    in.num_disks = static_cast<int>(flags.GetInt("disks", 6));
    in.max_seek_us = model_params.max_seek_us;
    in.rotation_us = model_params.rotation_us;
    in.p = have_trace ? 0.9 + 0.1 * stats.read_frac
                      : flags.GetDouble("read-frac", 1.0);
    in.queue_depth = have_trace
                         ? 1.0
                         : static_cast<double>(flags.GetInt("outstanding", 8)) /
                               in.num_disks;
    in.locality = have_trace ? stats.seek_locality : 1.0;
    aspect = ChooseConfig(in).aspect;
    std::printf("model-chosen aspect for %d disks: %s\n", in.num_disks,
                aspect.ToString().c_str());
  } else {
    aspect.ds = static_cast<int>(flags.GetInt("ds", 1));
    aspect.dr = static_cast<int>(flags.GetInt("dr", 1));
    aspect.dm = static_cast<int>(flags.GetInt("dm", 1));
  }

  MimdRaidOptions options;
  options.aspect = aspect;
  options.scheduler = ParseSched(flags.GetString("sched", "rsatf"));
  options.dataset_sectors = dataset;
  options.max_scan = 128;
  if (flags.GetBool("noisy", false)) {
    options.noise = DiskNoiseModel::Prototype();
    options.use_oracle_predictor = false;
    options.recalibration_interval_us = SimDuration(120'000'000);
    options.calibration.seek.num_distances = 12;
  }
  MimdRaid array(options);

  // --- Run. ---
  RunResult result;
  if (have_trace) {
    TracePlayerOptions popt;
    popt.rate_scale = flags.GetDouble("rate-scale", 1.0);
    result = RunTraceOnArray(array, trace, popt);
  } else {
    ClosedLoopOptions loop;
    loop.outstanding = static_cast<uint32_t>(flags.GetInt("outstanding", 8));
    loop.read_frac = flags.GetDouble("read-frac", 1.0);
    loop.sectors = static_cast<uint32_t>(flags.GetInt("size", 16));
    loop.measure_ops = static_cast<uint64_t>(flags.GetInt("ops", 4000));
    result = RunClosedLoopOnArray(array, loop);
  }

  // --- Report. ---
  std::printf("\n%s on %s, %zu disk(s), dataset %.1f GB\n",
              SchedulerKindName(options.scheduler),
              aspect.ToString().c_str(), array.num_disks(),
              dataset * 512.0 / 1e9);
  if (result.saturated) {
    std::printf("SATURATED: the array cannot sustain the offered rate\n");
    return 1;
  }
  std::printf("  completed:   %llu ops\n",
              static_cast<unsigned long long>(result.completed));
  std::printf("  mean:        %.2f ms   p50 %.2f / p95 %.2f / p99 %.2f ms\n",
              result.latency.MeanMs(),
              result.latency.PercentileUs(0.50) / 1000.0,
              result.latency.PercentileUs(0.95) / 1000.0,
              result.latency.PercentileUs(0.99) / 1000.0);
  std::printf("  throughput:  %.0f IOPS (mean outstanding %.1f)\n",
              result.iops, result.mean_outstanding);

  if (flags.GetBool("report", false)) {
    std::printf("\nmodel analysis (Section 2):\n");
    ConfiguratorInputs in;
    in.num_disks = aspect.TotalDisks();
    in.max_seek_us = model_params.max_seek_us;
    in.rotation_us = model_params.rotation_us;
    in.p = have_trace ? 0.9 + 0.1 * stats.read_frac : 1.0;
    in.queue_depth = std::max(1.0, result.mean_outstanding /
                                       aspect.TotalDisks());
    in.locality = have_trace ? stats.seek_locality : 1.0;
    for (const ConfigCandidate& c : EnumerateConfigs(in)) {
      std::printf("  %-8s predicted %.2f ms%s\n", c.aspect.ToString().c_str(),
                  c.predicted_latency_us / 1000.0,
                  c.aspect.ds == aspect.ds && c.aspect.dr == aspect.dr &&
                          c.aspect.dm == aspect.dm
                      ? "   <- current"
                      : "");
    }
  }
  return 0;
}
