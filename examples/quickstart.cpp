// Quickstart: build a six-disk SR-Array, let the Section 2 models pick the
// aspect ratio, and measure random-read latency against plain striping.
//
// Run: ./quickstart
#include <cstdio>

#include "src/core/experiment.h"
#include "src/core/mimd_raid.h"
#include "src/model/configurator.h"

using namespace mimdraid;

namespace {

double MeasureMeanLatencyMs(const ArrayAspect& aspect, SchedulerKind sched) {
  MimdRaidOptions options;
  options.aspect = aspect;
  options.scheduler = sched;
  options.dataset_sectors = 8'000'000;  // ~4 GB of data
  MimdRaid array(options);

  ClosedLoopOptions loop;
  loop.outstanding = 1;  // latency, not throughput
  loop.read_frac = 1.0;
  loop.sectors = 16;  // 8 KiB
  loop.warmup_ops = 200;
  loop.measure_ops = 3000;
  const RunResult result = RunClosedLoopOnArray(array, loop);
  return result.latency.MeanMs();
}

}  // namespace

int main() {
  constexpr int kDisks = 6;
  const DiskGeometry geometry = MakeSt39133Geometry();
  const SeekProfile profile = MakeSt39133SeekProfile();

  std::printf("MimdRAID quickstart: %d x %s disks (%.1f GB each)\n", kDisks,
              "ST39133-like", geometry.CapacityBytes() / 1e9);

  // 1. Ask the analytical models for the best aspect ratio.
  const ModelDiskParams disk_params =
      ModelParamsForDataset(geometry, profile, 8'000'000);
  ConfiguratorInputs inputs;
  inputs.num_disks = kDisks;
  inputs.max_seek_us = disk_params.max_seek_us;
  inputs.rotation_us = disk_params.rotation_us;
  inputs.p = 1.0;          // read-dominated
  inputs.queue_depth = 1;  // latency-sensitive
  const ConfigCandidate choice = ChooseConfig(inputs);
  std::printf("model recommends: %s (predicted %.2f ms + overhead)\n",
              choice.aspect.ToString().c_str(),
              choice.predicted_latency_us / 1000.0);

  // 2. Build that array and a striped baseline; measure both.
  ArrayAspect stripe;
  stripe.ds = kDisks;
  const double sr_ms = MeasureMeanLatencyMs(choice.aspect, SchedulerKind::kRsatf);
  const double stripe_ms = MeasureMeanLatencyMs(stripe, SchedulerKind::kSatf);

  std::printf("measured random-read latency:\n");
  std::printf("  %-14s %6.2f ms  (RSATF)\n", choice.aspect.ToString().c_str(),
              sr_ms);
  std::printf("  %-14s %6.2f ms  (SATF)\n", stripe.ToString().c_str(),
              stripe_ms);
  std::printf("SR-Array speedup over striping: %.2fx\n", stripe_ms / sr_ms);
  return 0;
}
