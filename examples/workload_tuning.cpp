// Workload-driven configuration: generate the three paper workloads
// (Cello base, Cello disk 6, TPC-C), characterize them (Table 3 style), feed
// the characteristics to the Configurator, and show how the recommended
// aspect ratio changes with the workload.
//
// Run: ./workload_tuning
#include <cstdio>

#include "src/core/experiment.h"
#include "src/core/mimd_raid.h"
#include "src/model/configurator.h"
#include "src/workload/synthetic.h"

using namespace mimdraid;

namespace {

void Analyze(const char* label, const Trace& trace, int num_disks) {
  const TraceStats stats = ComputeTraceStats(trace);
  std::printf("\n%s: %.1f GB, %.1f IO/s, %.0f%% reads, L=%.2f, RAW(1h)=%.1f%%\n",
              label, stats.data_size_gb, stats.io_rate_per_s,
              stats.read_frac * 100.0, stats.seek_locality,
              stats.read_after_write_frac * 100.0);

  const DiskGeometry geometry = MakeSt39133Geometry();
  const SeekProfile profile = MakeSt39133SeekProfile();
  const ModelDiskParams disk_params =
      ModelParamsForDataset(geometry, profile, trace.dataset_sectors);

  ConfiguratorInputs inputs;
  inputs.num_disks = num_disks;
  inputs.max_seek_us = disk_params.max_seek_us;
  inputs.rotation_us = disk_params.rotation_us;
  // p: everything except foreground-propagated writes. At trace speed, idle
  // time masks propagation, so p ~ 1; we derate slightly by write share.
  inputs.p = 0.9 + 0.1 * stats.read_frac;
  inputs.queue_depth = 1.0;
  inputs.locality = stats.seek_locality;

  std::printf("  %d disks -> model recommends %s\n", num_disks,
              ChooseConfig(inputs).aspect.ToString().c_str());
  std::printf("  top-3 model-ranked configurations:\n");
  int shown = 0;
  for (const ConfigCandidate& c : EnumerateConfigs(inputs)) {
    std::printf("    %-8s predicted %.2f ms\n", c.aspect.ToString().c_str(),
                c.predicted_latency_us / 1000.0);
    if (++shown == 3) {
      break;
    }
  }
}

}  // namespace

int main() {
  std::printf("Workload-driven array configuration (Table 3 -> Section 2 models)\n");

  // Short equivalents of the paper's traces (rates and mixes preserved).
  const Trace cello =
      GenerateSyntheticTrace(CelloBaseParams(/*duration_s=*/4 * 3600, 1));
  const Trace news =
      GenerateSyntheticTrace(CelloDisk6Params(/*duration_s=*/4 * 3600, 2));
  const Trace tpcc = GenerateSyntheticTrace(TpccParams(/*duration_s=*/300, 3));

  Analyze("Cello base", cello, 6);
  Analyze("Cello disk 6 (news)", news, 6);
  Analyze("TPC-C", tpcc, 12);

  std::printf("\nNote how high seek locality (news) pushes the model toward\n"
              "rotational replicas, while write-heavy random traffic pushes\n"
              "it back toward striping.\n");
  return 0;
}
