#include "src/adapt/advisor.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/check.h"

namespace mimdraid {

Advice ReconfigurationAdvisor::Evaluate(const ArrayAspect& current,
                                        const WorkloadProfile& profile) const {
  Advice advice;
  advice.current = current;

  ConfiguratorInputs in;
  in.num_disks = current.TotalDisks();
  in.max_seek_us = disk_params_.max_seek_us;
  in.rotation_us = disk_params_.rotation_us;
  in.p = std::clamp(profile.p_estimate, 0.0, 1.0);
  in.queue_depth = std::max(1.0, profile.mean_queue_depth /
                                     std::max(1, current.TotalDisks()));
  in.locality = std::max(1.0, profile.locality);
  in.max_dr = options_.max_dr;

  const ConfigCandidate pick = ChooseConfig(in);
  advice.recommended = pick.aspect;
  advice.recommended_predicted_us = pick.predicted_latency_us;
  advice.current_predicted_us = PredictLatencyUs(in, current);
  advice.predicted_gain =
      advice.recommended_predicted_us > 0.0
          ? advice.current_predicted_us / advice.recommended_predicted_us
          : 1.0;
  const bool same = pick.aspect.ds == current.ds &&
                    pick.aspect.dr == current.dr &&
                    pick.aspect.dm == current.dm;
  advice.reconfigure = !same && advice.predicted_gain >= options_.min_gain;
  return advice;
}

MigrationEstimate EstimateMigration(const Advice& advice,
                                    uint64_t dataset_sectors,
                                    double workload_io_per_s,
                                    double background_mb_per_s) {
  MIMDRAID_CHECK_GT(background_mb_per_s, 0.0);
  MigrationEstimate est;
  est.bytes_to_move = static_cast<double>(dataset_sectors) * 512.0;
  // Every block is read once and written Dr*Dm times under the new shape.
  const double amplification =
      1.0 + static_cast<double>(advice.recommended.ReplicasPerBlock());
  est.migration_seconds =
      est.bytes_to_move * amplification / (background_mb_per_s * 1e6);
  est.per_op_saving_us =
      advice.current_predicted_us - advice.recommended_predicted_us;
  if (est.per_op_saving_us <= 0.0 || workload_io_per_s <= 0.0) {
    est.break_even_seconds = std::numeric_limits<double>::infinity();
    return est;
  }
  const double saving_per_second_us = est.per_op_saving_us * workload_io_per_s;
  est.break_even_seconds =
      est.migration_seconds * 1e6 / saving_per_second_us;
  return est;
}

}  // namespace mimdraid
