// Reconfiguration advice: closes the loop from observed workload to array
// shape (the Ivy-inspired dynamic tuning the paper names as future work).
//
// The advisor feeds a WorkloadProfile into the Section 2 Configurator,
// compares the recommended aspect's predicted request time with the current
// aspect's, and — together with the MigrationPlanner's cost estimate —
// decides whether re-shaping the array pays for itself.
#ifndef MIMDRAID_SRC_ADAPT_ADVISOR_H_
#define MIMDRAID_SRC_ADAPT_ADVISOR_H_

#include "src/adapt/workload_monitor.h"
#include "src/model/configurator.h"
#include "src/model/disk_params.h"

namespace mimdraid {

struct AdvisorOptions {
  // Minimum predicted improvement (current/recommended request time) before
  // a reconfiguration is worth considering.
  double min_gain = 1.15;
  int max_dr = 6;
};

struct Advice {
  ArrayAspect current;
  ArrayAspect recommended;
  double current_predicted_us = 0.0;
  double recommended_predicted_us = 0.0;
  // current/recommended predicted request time; > 1 means improvement.
  double predicted_gain = 1.0;
  bool reconfigure = false;
};

class ReconfigurationAdvisor {
 public:
  ReconfigurationAdvisor(const ModelDiskParams& disk_params,
                         const AdvisorOptions& options = {})
      : disk_params_(disk_params), options_(options) {}

  // Evaluates the current aspect against the model's pick for `profile`.
  Advice Evaluate(const ArrayAspect& current,
                  const WorkloadProfile& profile) const;

 private:
  ModelDiskParams disk_params_;
  AdvisorOptions options_;
};

// Cost side of the decision: how long a re-shape takes and when it pays off.
struct MigrationEstimate {
  double bytes_to_move = 0.0;
  double migration_seconds = 0.0;   // at the given background bandwidth
  double per_op_saving_us = 0.0;    // predicted
  // Seconds of the new workload after which the saved time repays the
  // migration (infinity when there is no predicted gain).
  double break_even_seconds = 0.0;
};

// `dataset_sectors` must be re-laid-out entirely (every block's placement
// changes when the aspect changes); `background_mb_per_s` is the copy
// bandwidth the migration may steal.
MigrationEstimate EstimateMigration(const Advice& advice,
                                    uint64_t dataset_sectors,
                                    double workload_io_per_s,
                                    double background_mb_per_s = 10.0);

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_ADAPT_ADVISOR_H_
