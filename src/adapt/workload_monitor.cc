#include "src/adapt/workload_monitor.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "src/util/check.h"

namespace mimdraid {

WorkloadMonitor::WorkloadMonitor(uint64_t dataset_sectors, size_t window)
    : dataset_sectors_(dataset_sectors), window_(window) {
  MIMDRAID_CHECK_GT(dataset_sectors, 0u);
  MIMDRAID_CHECK_GT(window, 16u);
}

void WorkloadMonitor::OnSubmit(DiskOp op, uint64_t lba, uint32_t sectors,
                               SimTime now) {
  Sample s;
  s.time_us = now;
  s.lba = lba;
  s.sectors = sectors;
  s.is_write = op == DiskOp::kWrite;
  s.distance = have_prev_ ? (lba > prev_lba_ ? lba - prev_lba_
                                             : prev_lba_ - lba)
                          : 0;
  prev_lba_ = lba;
  have_prev_ = true;
  samples_.push_back(s);
  while (samples_.size() > window_) {
    samples_.pop_front();
  }

  ++submitted_;
  outstanding_integral_ += static_cast<double>(outstanding_) *
                           static_cast<double>((now - last_change_us_).us());
  last_change_us_ = now;
  ++outstanding_;
}

void WorkloadMonitor::OnComplete(SimTime now) {
  MIMDRAID_CHECK_GT(outstanding_, 0u);
  outstanding_integral_ += static_cast<double>(outstanding_) *
                           static_cast<double>((now - last_change_us_).us());
  last_change_us_ = now;
  --outstanding_;
  ++completed_;
}

WorkloadProfile WorkloadMonitor::Snapshot(int disks,
                                          double mean_service_us) const {
  WorkloadProfile p;
  p.samples = samples_.size();
  if (samples_.size() < 2) {
    return p;
  }
  const SimDuration span =
      samples_.back().time_us - samples_.front().time_us;
  uint64_t reads = 0;
  double dist_sum = 0.0;
  double sector_sum = 0.0;
  for (const Sample& s : samples_) {
    if (!s.is_write) {
      ++reads;
    }
    dist_sum += static_cast<double>(s.distance);
    sector_sum += s.sectors;
  }
  const double n = static_cast<double>(samples_.size());
  p.read_frac = static_cast<double>(reads) / n;
  p.mean_request_sectors = sector_sum / n;
  p.io_per_s = span > SimDuration(0) ? n / SecondsFromUs(span) : 0.0;
  const double mean_dist = dist_sum / (n - 1);
  const double random_dist = static_cast<double>(dataset_sectors_) / 3.0;
  p.locality = mean_dist > 0.0 ? std::max(1.0, random_dist / mean_dist) : 1.0;

  const SimDuration elapsed = last_change_us_ - window_start_us_;
  p.mean_queue_depth =
      elapsed > SimDuration(0)
          ? outstanding_integral_ / static_cast<double>(elapsed.us())
          : static_cast<double>(outstanding_);

  // Utilization: offered disk-time per wall-time. Idle headroom masks write
  // propagation (Equation 8): a fully idle array propagates every replica in
  // the background (p -> 1); a saturated one propagates in the foreground
  // (p -> read fraction).
  MIMDRAID_CHECK_GE(disks, 1);
  p.utilization = std::min(
      1.0, p.io_per_s * mean_service_us / 1e6 / static_cast<double>(disks));
  const double maskable = 1.0 - p.utilization;
  p.p_estimate = p.read_frac + (1.0 - p.read_frac) * maskable;
  return p;
}

}  // namespace mimdraid
