// Online workload characterization (the paper's future-work direction,
// after HP Ivy: observe access patterns and dynamically tune the array).
//
// The monitor taps the logical request stream and maintains the statistics
// the Section 2 models consume: arrival rate, read fraction, seek locality L,
// queue depth, and an estimate of p (the fraction of operations whose replica
// propagation can be masked by idle time, Equation 8). Windowed so the
// profile follows workload phase changes.
#ifndef MIMDRAID_SRC_ADAPT_WORKLOAD_MONITOR_H_
#define MIMDRAID_SRC_ADAPT_WORKLOAD_MONITOR_H_

#include <cstdint>
#include <deque>

#include "src/disk/sim_disk.h"
#include "src/util/time.h"

namespace mimdraid {

// What the Configurator needs to know about the workload.
struct WorkloadProfile {
  double io_per_s = 0.0;
  double read_frac = 1.0;
  double locality = 1.0;        // L
  double mean_queue_depth = 0.0;  // outstanding ops, time-averaged
  double mean_request_sectors = 0.0;
  // Estimated utilization of the array (busy fraction), used to derive p.
  double utilization = 0.0;
  // Equation (8): reads plus background-maskable writes over everything.
  double p_estimate = 1.0;
  uint64_t samples = 0;
};

class WorkloadMonitor {
 public:
  // `dataset_sectors` anchors the locality index; `window` bounds how many
  // recent requests the profile reflects.
  explicit WorkloadMonitor(uint64_t dataset_sectors, size_t window = 4096);

  // Tap points.
  void OnSubmit(DiskOp op, uint64_t lba, uint32_t sectors, SimTime now);
  void OnComplete(SimTime now);

  // Profile over the current window. `disks` and `mean_service_us` scale the
  // utilization estimate (offered work vs available disk-seconds).
  WorkloadProfile Snapshot(int disks, double mean_service_us) const;

  uint64_t submitted() const { return submitted_; }
  uint64_t completed() const { return completed_; }

 private:
  struct Sample {
    SimTime time_us;
    uint64_t lba;
    uint32_t sectors;
    bool is_write;
    uint64_t distance;  // |lba - previous lba|
  };

  uint64_t dataset_sectors_;
  size_t window_;
  std::deque<Sample> samples_;
  uint64_t prev_lba_ = 0;
  bool have_prev_ = false;

  uint64_t submitted_ = 0;
  uint64_t completed_ = 0;
  // Time-averaged outstanding count.
  SimTime last_change_us_;
  uint64_t outstanding_ = 0;
  double outstanding_integral_ = 0.0;
  SimTime window_start_us_;
};

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_ADAPT_WORKLOAD_MONITOR_H_
