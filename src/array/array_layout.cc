#include "src/array/array_layout.h"

#include <algorithm>

#include "src/util/check.h"

namespace mimdraid {

ArrayLayout::ArrayLayout(const DiskLayout* disk_layout,
                         const ArrayAspect& aspect,
                         uint32_t stripe_unit_sectors,
                         uint64_t dataset_sectors,
                         PlacementMode placement_mode)
    : aspect_(aspect),
      stripe_unit_sectors_(stripe_unit_sectors),
      dataset_sectors_(dataset_sectors),
      placement_(disk_layout, aspect.dr, placement_mode) {
  MIMDRAID_CHECK_GE(aspect.ds, 1);
  MIMDRAID_CHECK_GE(aspect.dr, 1);
  MIMDRAID_CHECK_GE(aspect.dm, 1);
  MIMDRAID_CHECK_GT(stripe_unit_sectors, 0u);
  MIMDRAID_CHECK_GT(dataset_sectors, 0u);
  // Stripe rows are whole units; the last partial row still occupies a unit
  // on each column. Columns = Ds*Dr (see header).
  const uint64_t columns = static_cast<uint64_t>(aspect.ds) * aspect.dr;
  const uint64_t units =
      (dataset_sectors + stripe_unit_sectors - 1) / stripe_unit_sectors;
  const uint64_t units_per_disk = (units + columns - 1) / columns;
  per_disk_sectors_ = units_per_disk * stripe_unit_sectors;
  MIMDRAID_CHECK_LE(per_disk_sectors_, placement_.capacity_sectors());
}

std::vector<ArrayFragment> ArrayLayout::Map(uint64_t lba,
                                            uint32_t sectors) const {
  MIMDRAID_CHECK_GT(sectors, 0u);
  MIMDRAID_CHECK_LE(lba + sectors, dataset_sectors_);
  std::vector<ArrayFragment> out;
  const uint32_t unit = stripe_unit_sectors_;
  const int dr = aspect_.dr;
  const int dm = aspect_.dm;

  uint64_t cur = lba;
  uint32_t remaining = sectors;
  while (remaining > 0) {
    const uint64_t stripe_index = cur / unit;
    const uint32_t offset_in_unit = static_cast<uint32_t>(cur % unit);
    const uint64_t columns = num_groups();
    const uint32_t group = static_cast<uint32_t>(stripe_index % columns);
    const uint64_t disk_sector =
        (stripe_index / columns) * unit + offset_in_unit;

    // Clip to the stripe unit and to the track-group run.
    uint32_t len = std::min(remaining, unit - offset_in_unit);
    len = std::min(len, placement_.ContiguousRun(disk_sector));

    ArrayFragment frag;
    frag.group = group;
    frag.replicas.reserve(static_cast<size_t>(dm) * dr);
    const DiskLayout& dl = placement_.layout();
    for (int m = 0; m < dm; ++m) {
      const double base_angle =
          static_cast<double>(m) / static_cast<double>(dm * dr);
      const uint32_t disk = DiskFor(group, static_cast<uint32_t>(m));
      for (int r = 0; r < dr; ++r) {
        const uint64_t phys =
            placement_.PhysicalLba(disk_sector, r, base_angle);
        frag.replicas.push_back(ReplicaLocation{disk, phys});
        // A rotated copy must stay LBA-contiguous: clip at the point where
        // its slot range would wrap past the end of the track.
        const Chs chs = dl.ToChs(phys);
        const uint32_t spt = dl.geometry().SectorsPerTrack(chs.cylinder);
        len = std::min(len, spt - chs.sector);
      }
    }
    frag.logical_lba = cur;
    frag.sectors = len;
    out.push_back(std::move(frag));

    cur += len;
    remaining -= len;
  }
  return out;
}

}  // namespace mimdraid
