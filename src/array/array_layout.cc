#include "src/array/array_layout.h"

#include <algorithm>
#include <limits>

#include "src/util/check.h"

namespace mimdraid {

ArrayLayout::ArrayLayout(const DiskLayout* disk_layout,
                         const ArrayAspect& aspect,
                         uint32_t stripe_unit_sectors,
                         uint64_t dataset_sectors,
                         PlacementMode placement_mode)
    : ArrayLayout(std::vector<const DiskLayout*>(aspect.TotalDisks(),
                                                 disk_layout),
                  aspect, stripe_unit_sectors, dataset_sectors,
                  placement_mode) {}

ArrayLayout::ArrayLayout(std::vector<const DiskLayout*> disk_layouts,
                         const ArrayAspect& aspect,
                         uint32_t stripe_unit_sectors,
                         uint64_t dataset_sectors,
                         PlacementMode placement_mode)
    : aspect_(aspect),
      stripe_unit_sectors_(stripe_unit_sectors),
      dataset_sectors_(dataset_sectors) {
  MIMDRAID_CHECK_GE(aspect.ds, 1);
  MIMDRAID_CHECK_GE(aspect.dr, 1);
  MIMDRAID_CHECK_GE(aspect.dm, 1);
  MIMDRAID_CHECK_GT(stripe_unit_sectors, 0u);
  MIMDRAID_CHECK_GT(dataset_sectors, 0u);
  MIMDRAID_CHECK_EQ(disk_layouts.size(),
                    static_cast<size_t>(aspect.TotalDisks()));

  // One SrDiskPlacement per distinct drive geometry; identical disks share.
  placement_of_disk_.resize(disk_layouts.size());
  for (size_t d = 0; d < disk_layouts.size(); ++d) {
    MIMDRAID_CHECK(disk_layouts[d] != nullptr);
    uint32_t idx = static_cast<uint32_t>(placements_.size());
    for (uint32_t p = 0; p < placements_.size(); ++p) {
      if (&placements_[p]->layout() == disk_layouts[d]) {
        idx = p;
        break;
      }
    }
    if (idx == placements_.size()) {
      placements_.push_back(std::make_unique<SrDiskPlacement>(
          disk_layouts[d], aspect.dr, placement_mode));
    }
    placement_of_disk_[d] = idx;
  }

  // A column's weight is the stripe units its weakest mirror can hold.
  const uint32_t columns = num_groups();
  std::vector<uint64_t> weight(columns, 0);
  for (uint32_t c = 0; c < columns; ++c) {
    uint64_t cap = std::numeric_limits<uint64_t>::max();
    for (uint32_t m = 0; m < static_cast<uint32_t>(aspect.dm); ++m) {
      cap = std::min(cap, placement_for(DiskFor(c, m)).capacity_sectors());
    }
    weight[c] = cap / stripe_unit_sectors;
  }

  // Stripe rows are whole units; the last partial row still occupies a unit
  // on its column.
  const uint64_t units =
      (dataset_sectors + stripe_unit_sectors - 1) / stripe_unit_sectors;
  column_units_.assign(columns, 0);

  const bool equal_weights =
      std::all_of(weight.begin(), weight.end(),
                  [&](uint64_t w) { return w == weight[0]; });
  if (equal_weights) {
    // Equal weights make the capacity-weighted deal exactly round-robin
    // (argmin of (assigned+1)/w cycles through the columns in index order),
    // so skip the deal tables and use the closed form.
    const uint64_t units_per_disk = (units + columns - 1) / columns;
    MIMDRAID_CHECK_LE(units_per_disk, weight[0]);
    per_disk_sectors_ = units_per_disk * stripe_unit_sectors;
    for (uint32_t c = 0; c < columns; ++c) {
      column_units_[c] = static_cast<uint32_t>((units + columns - 1 - c) /
                                               columns);
    }
    return;
  }

  // Capacity-weighted deal: give the next unit to the column whose fill
  // fraction after taking it, (assigned+1)/weight, is smallest; ties go to
  // the lowest column index; full columns are skipped. Compared with
  // cross-multiplication to stay exact.
  unit_group_.reserve(units);
  unit_row_.reserve(units);
  std::vector<uint64_t> assigned(columns, 0);
  for (uint64_t i = 0; i < units; ++i) {
    uint32_t best = columns;
    for (uint32_t c = 0; c < columns; ++c) {
      if (assigned[c] >= weight[c]) {
        continue;  // column full
      }
      if (best == columns ||
          (assigned[c] + 1) * weight[best] < (assigned[best] + 1) * weight[c]) {
        best = c;
      }
    }
    MIMDRAID_CHECK_LT(best, columns);  // dataset must fit the fleet
    unit_group_.push_back(best);
    MIMDRAID_CHECK_LE(assigned[best],
                      std::numeric_limits<uint32_t>::max());
    unit_row_.push_back(static_cast<uint32_t>(assigned[best]));
    ++assigned[best];
  }
  for (uint32_t c = 0; c < columns; ++c) {
    column_units_[c] = static_cast<uint32_t>(assigned[c]);
    per_disk_sectors_ = std::max(
        per_disk_sectors_, assigned[c] * stripe_unit_sectors);
  }
}

void ArrayLayout::LocateUnit(uint64_t unit_index, uint32_t* group,
                             uint64_t* row) const {
  if (unit_group_.empty()) {
    const uint64_t columns = num_groups();
    *group = static_cast<uint32_t>(unit_index % columns);
    *row = unit_index / columns;
    return;
  }
  MIMDRAID_CHECK_LT(unit_index, unit_group_.size());
  *group = unit_group_[unit_index];
  *row = unit_row_[unit_index];
}

std::vector<ArrayFragment> ArrayLayout::Map(uint64_t lba,
                                            uint32_t sectors) const {
  MIMDRAID_CHECK_GT(sectors, 0u);
  MIMDRAID_CHECK_LE(lba + sectors, dataset_sectors_);
  std::vector<ArrayFragment> out;
  const uint32_t unit = stripe_unit_sectors_;
  const int dr = aspect_.dr;
  const int dm = aspect_.dm;

  uint64_t cur = lba;
  uint32_t remaining = sectors;
  while (remaining > 0) {
    const uint64_t stripe_index = cur / unit;
    const uint32_t offset_in_unit = static_cast<uint32_t>(cur % unit);
    uint32_t group = 0;
    uint64_t row = 0;
    LocateUnit(stripe_index, &group, &row);
    const uint64_t disk_sector = row * unit + offset_in_unit;

    // Clip to the stripe unit and to the track-group run of every mirror in
    // the column (mirrors of different generations may break groups at
    // different logical sectors).
    uint32_t len = std::min(remaining, unit - offset_in_unit);
    for (int m = 0; m < dm; ++m) {
      len = std::min(len, placement_for(DiskFor(group, m))
                              .ContiguousRun(disk_sector));
    }

    ArrayFragment frag;
    frag.group = group;
    frag.replicas.reserve(static_cast<size_t>(dm) * dr);
    for (int m = 0; m < dm; ++m) {
      const double base_angle =
          static_cast<double>(m) / static_cast<double>(dm * dr);
      const uint32_t disk = DiskFor(group, static_cast<uint32_t>(m));
      const SrDiskPlacement& placement = placement_for(disk);
      const DiskLayout& dl = placement.layout();
      for (int r = 0; r < dr; ++r) {
        const uint64_t phys = placement.PhysicalLba(disk_sector, r, base_angle);
        frag.replicas.push_back(ReplicaLocation{disk, phys});
        // A rotated copy must stay LBA-contiguous: clip at the point where
        // its slot range would wrap past the end of the track.
        const Chs chs = dl.ToChs(phys);
        const uint32_t spt = dl.geometry().SectorsPerTrack(chs.cylinder);
        len = std::min(len, spt - chs.sector);
      }
    }
    frag.logical_lba = cur;
    frag.sectors = len;
    out.push_back(std::move(frag));

    cur += len;
    remaining -= len;
  }
  return out;
}

uint32_t ArrayLayout::CylinderSpan() const {
  uint32_t span = 0;
  for (uint32_t d = 0; d < num_disks(); ++d) {
    const uint32_t group = d / static_cast<uint32_t>(aspect_.dm);
    span = std::max(span,
                    placement_for(d).CylinderSpan(column_sectors(group)));
  }
  return span;
}

}  // namespace mimdraid
