// Logical-to-physical mapping for a Ds x Dr x Dm array (Section 2.5's most
// general "SR-Mirror" configuration).
//
// Following Figure 3: a Ds x Dr SR-Array stripes the dataset over ALL
// Ds*Dr disks — each disk holds 1/(Ds*Dr) of the data plus its Dr same-disk
// rotational replicas, so Dr * 1/(Ds*Dr) = 1/Ds of each disk's cylinders are
// in use. "Ds" therefore names the resulting seek span (same as a Ds-way
// stripe), not the column count.
//
//   Ds: seek-reduction degree — 1/Ds of each disk's cylinders hold data.
//   Dr: rotational replicas per block on the *same* disk (SrDiskPlacement).
//   Dm: mirror copies on *different* disks within a group. Copy m's replica
//       set is rotated by m/(Dm*Dr), so with synchronized spindles all
//       Dm*Dr copies are evenly spaced in angle.
//
// The stripe-column count is Ds*Dr; each column is a group of Dm mirrored
// disks, for Ds*Dr*Dm disks total.
//
// Heterogeneous fleets: each physical disk may have its own DiskLayout
// (different generation — zones, RPM, capacity). A column's capacity is the
// minimum over its Dm mirrors, and stripe units are dealt to columns
// capacity-weighted (argmin of (assigned+1)/weight, ties to the lowest
// column) instead of plain round-robin, so big drives absorb proportionally
// more of the dataset. With identical disks the weighted deal reduces
// exactly to round-robin, so the homogeneous case is bit-for-bit unchanged.
//
// Degenerate shapes: Dx1x1 = striping, 1x1xD = D-way mirror, Dsx1x2 = the
// common RAID-10, DsxDrx1 = SR-Array.
#ifndef MIMDRAID_SRC_ARRAY_ARRAY_LAYOUT_H_
#define MIMDRAID_SRC_ARRAY_ARRAY_LAYOUT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/array/placement.h"
#include "src/disk/layout.h"
#include "src/model/configurator.h"

namespace mimdraid {

struct ReplicaLocation {
  uint32_t disk = 0;
  uint64_t lba = 0;
};

// A physically contiguous piece of a logical request, confined to one stripe
// column and one track group, together with every physical copy of it.
struct ArrayFragment {
  uint64_t logical_lba = 0;
  uint32_t sectors = 0;
  uint32_t group = 0;  // stripe column
  // All Dm*Dr copies, ordered mirror-major: replicas[m*Dr + r]. Every copy is
  // physically contiguous for `sectors` sectors.
  std::vector<ReplicaLocation> replicas;
};

class ArrayLayout {
 public:
  // All disks share `disk_layout`'s geometry (homogeneous array).
  // `dataset_sectors` is the logical capacity exposed; it must fit in
  // Ds * per-disk capacity at replication degree Dr.
  ArrayLayout(const DiskLayout* disk_layout, const ArrayAspect& aspect,
              uint32_t stripe_unit_sectors, uint64_t dataset_sectors,
              PlacementMode placement_mode = PlacementMode::kCrossTrack);

  // Heterogeneous array: one DiskLayout per physical slot, in DiskFor()
  // order (disk_layouts.size() == aspect.TotalDisks()). The dataset must fit
  // in the summed column capacities at replication degree Dr.
  ArrayLayout(std::vector<const DiskLayout*> disk_layouts,
              const ArrayAspect& aspect, uint32_t stripe_unit_sectors,
              uint64_t dataset_sectors,
              PlacementMode placement_mode = PlacementMode::kCrossTrack);

  const ArrayAspect& aspect() const { return aspect_; }
  uint64_t dataset_sectors() const { return dataset_sectors_; }
  uint32_t num_disks() const {
    return static_cast<uint32_t>(aspect_.TotalDisks());
  }
  // Stripe columns (groups of Dm mirrored disks): Ds*Dr.
  uint32_t num_groups() const {
    return static_cast<uint32_t>(aspect_.ds * aspect_.dr);
  }
  uint32_t stripe_unit_sectors() const { return stripe_unit_sectors_; }

  // Placement of a specific physical disk (per-slot geometry).
  const SrDiskPlacement& placement_for(uint32_t disk) const {
    return *placements_[placement_of_disk_[disk]];
  }

  // True when every disk shares one DiskLayout (the homogeneous case).
  bool uniform() const { return placements_.size() == 1; }

  // Logical sectors stored in stripe column `group`.
  uint64_t column_sectors(uint32_t group) const {
    return static_cast<uint64_t>(column_units_[group]) * stripe_unit_sectors_;
  }

  // Largest per-column share of the dataset (== every column's share in the
  // homogeneous case). Rebuild work on any one disk is bounded by this.
  uint64_t per_disk_sectors() const { return per_disk_sectors_; }

  // Physical disk index of mirror copy m in stripe column `group`.
  uint32_t DiskFor(uint32_t group, uint32_t mirror) const {
    return group * static_cast<uint32_t>(aspect_.dm) + mirror;
  }

  // Splits a logical request into fragments with full replica sets.
  std::vector<ArrayFragment> Map(uint64_t lba, uint32_t sectors) const;

  // Highest cylinder used on any disk (the seek span workloads experience).
  uint32_t CylinderSpan() const;

 private:
  // Stripe column and within-column unit row of stripe unit `unit_index`.
  void LocateUnit(uint64_t unit_index, uint32_t* group, uint64_t* row) const;

  ArrayAspect aspect_;
  uint32_t stripe_unit_sectors_;
  uint64_t dataset_sectors_;
  uint64_t per_disk_sectors_ = 0;
  // Deduplicated placements (one per distinct DiskLayout) + per-disk index.
  std::vector<std::unique_ptr<SrDiskPlacement>> placements_;
  std::vector<uint32_t> placement_of_disk_;
  // Units dealt to each column; empty deal tables mean plain round-robin.
  std::vector<uint32_t> column_units_;
  std::vector<uint32_t> unit_group_;  // column of stripe unit i
  std::vector<uint32_t> unit_row_;    // within-column row of stripe unit i
};

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_ARRAY_ARRAY_LAYOUT_H_
