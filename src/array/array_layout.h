// Logical-to-physical mapping for a Ds x Dr x Dm array (Section 2.5's most
// general "SR-Mirror" configuration).
//
// Following Figure 3: a Ds x Dr SR-Array stripes the dataset over ALL
// Ds*Dr disks — each disk holds 1/(Ds*Dr) of the data plus its Dr same-disk
// rotational replicas, so Dr * 1/(Ds*Dr) = 1/Ds of each disk's cylinders are
// in use. "Ds" therefore names the resulting seek span (same as a Ds-way
// stripe), not the column count.
//
//   Ds: seek-reduction degree — 1/Ds of each disk's cylinders hold data.
//   Dr: rotational replicas per block on the *same* disk (SrDiskPlacement).
//   Dm: mirror copies on *different* disks within a group. Copy m's replica
//       set is rotated by m/(Dm*Dr), so with synchronized spindles all
//       Dm*Dr copies are evenly spaced in angle.
//
// The stripe-column count is Ds*Dr; each column is a group of Dm mirrored
// disks, for Ds*Dr*Dm disks total.
//
// Degenerate shapes: Dx1x1 = striping, 1x1xD = D-way mirror, Dsx1x2 = the
// common RAID-10, DsxDrx1 = SR-Array.
#ifndef MIMDRAID_SRC_ARRAY_ARRAY_LAYOUT_H_
#define MIMDRAID_SRC_ARRAY_ARRAY_LAYOUT_H_

#include <cstdint>
#include <vector>

#include "src/array/placement.h"
#include "src/disk/layout.h"
#include "src/model/configurator.h"

namespace mimdraid {

struct ReplicaLocation {
  uint32_t disk = 0;
  uint64_t lba = 0;
};

// A physically contiguous piece of a logical request, confined to one stripe
// column and one track group, together with every physical copy of it.
struct ArrayFragment {
  uint64_t logical_lba = 0;
  uint32_t sectors = 0;
  uint32_t group = 0;  // stripe column
  // All Dm*Dr copies, ordered mirror-major: replicas[m*Dr + r]. Every copy is
  // physically contiguous for `sectors` sectors.
  std::vector<ReplicaLocation> replicas;
};

class ArrayLayout {
 public:
  // All disks share `disk_layout`'s geometry (homogeneous array).
  // `dataset_sectors` is the logical capacity exposed; it must fit in
  // Ds * per-disk capacity at replication degree Dr.
  ArrayLayout(const DiskLayout* disk_layout, const ArrayAspect& aspect,
              uint32_t stripe_unit_sectors, uint64_t dataset_sectors,
              PlacementMode placement_mode = PlacementMode::kCrossTrack);

  const ArrayAspect& aspect() const { return aspect_; }
  uint64_t dataset_sectors() const { return dataset_sectors_; }
  uint32_t num_disks() const {
    return static_cast<uint32_t>(aspect_.TotalDisks());
  }
  // Stripe columns (groups of Dm mirrored disks): Ds*Dr.
  uint32_t num_groups() const {
    return static_cast<uint32_t>(aspect_.ds * aspect_.dr);
  }
  uint32_t stripe_unit_sectors() const { return stripe_unit_sectors_; }
  const SrDiskPlacement& placement() const { return placement_; }

  // Logical sectors stored per disk (the per-column share of the dataset).
  uint64_t per_disk_sectors() const { return per_disk_sectors_; }

  // Physical disk index of mirror copy m in stripe column `group`.
  uint32_t DiskFor(uint32_t group, uint32_t mirror) const {
    return group * static_cast<uint32_t>(aspect_.dm) + mirror;
  }

  // Splits a logical request into fragments with full replica sets.
  std::vector<ArrayFragment> Map(uint64_t lba, uint32_t sectors) const;

  // Highest cylinder used on any disk (the seek span workloads experience).
  uint32_t CylinderSpan() const {
    return placement_.CylinderSpan(per_disk_sectors_);
  }

 private:
  ArrayAspect aspect_;
  uint32_t stripe_unit_sectors_;
  uint64_t dataset_sectors_;
  uint64_t per_disk_sectors_ = 0;
  SrDiskPlacement placement_;
};

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_ARRAY_ARRAY_LAYOUT_H_
