#include "src/array/controller.h"

#include <algorithm>
#include <limits>

#include "src/util/check.h"

namespace mimdraid {

namespace {
// Status severity follows declaration order; an op surfaces the worst
// unabsorbed status of its fragments.
IoStatus Worse(IoStatus a, IoStatus b) {
  return static_cast<uint8_t>(a) >= static_cast<uint8_t>(b) ? a : b;
}

DriveSetOptions EngineOptions(const ArrayControllerOptions& options) {
  DriveSetOptions dso;
  dso.scheduler = options.scheduler;
  dso.max_scan = options.max_scan;
  dso.auditor = options.auditor;
  dso.fault_injector = options.fault_injector;
  dso.collector = options.collector;
  dso.retry = options.retry;
  dso.disk_error_fail_threshold = options.disk_error_fail_threshold;
  dso.scrub_interval_us = options.scrub_interval_us;
  dso.scrub_gating = options.scrub_gating;
  return dso;
}
}  // namespace

ArrayController::ArrayController(Simulator* sim, std::vector<SimDisk*> disks,
                                 std::vector<AccessPredictor*> predictors,
                                 const ArrayLayout* layout,
                                 const ArrayControllerOptions& options)
    : sim_(sim),
      layout_(layout),
      options_(options),
      auditor_(options.auditor),
      collector_(options.collector) {
  MIMDRAID_CHECK(sim != nullptr);
  MIMDRAID_CHECK(layout != nullptr);
  MIMDRAID_CHECK_EQ(disks.size(), layout->num_disks());
  MIMDRAID_CHECK_EQ(predictors.size(), disks.size());
  const size_t n = disks.size();
  recalibration_events_.resize(n);
  drives_ = std::make_unique<DriveSet>(sim, std::move(disks),
                                       std::move(predictors),
                                       static_cast<DriveSetClient*>(this),
                                       EngineOptions(options));
  if (options_.recalibration_interval_us > SimDuration(0)) {
    for (size_t i = 0; i < n; ++i) {
      ScheduleRecalibration(static_cast<uint32_t>(i));
    }
  }
  drives_->StartScrub();
}

ArrayController::~ArrayController() {
  for (EventId id : recalibration_events_) {
    if (id.valid()) {
      // The timer callback re-arms itself before returning, so a valid
      // handle always names a pending event and cancellation cannot miss.
      MIMDRAID_CHECK(sim_->Cancel(id));
    }
  }
  StopScrub();
}

void ArrayController::AuditQuiescent() const {
  if (auditor_ == nullptr) {
    return;
  }
  auditor_->CheckQuiescent(drives_->TotalFgQueued(),
                           drives_->TotalDelayedQueued(), nvram_.size(),
                           stale_sectors_.size(), inflight_writes_.size(),
                           parked_.size());
}

bool ArrayController::Idle() const {
  if (!ops_.empty() || !parked_.empty() || drives_->pending_recovery() > 0) {
    return false;
  }
  return drives_->AllDrivesQuiet();
}

void ArrayController::Submit(DiskOp op, uint64_t lba, uint32_t sectors,
                             DoneFn done) {
  SubmitInternal(op, lba, sectors, std::move(done), sim_->Now());
}

void ArrayController::SubmitInternal(DiskOp op, uint64_t lba, uint32_t sectors,
                                     DoneFn done, SimTime issue_us) {
  MIMDRAID_CHECK_GT(sectors, 0u);
  // Read-after-write ordering: a read of data with an in-flight foreground
  // write waits for the write (all replicas are potentially stale until one
  // lands).
  if (op == DiskOp::kRead && RangeHasInflightWrite(lba, sectors)) {
    ++stats_.parked_reads;
    parked_.push_back(ParkedRequest{op, lba, sectors, std::move(done), issue_us});
    return;
  }

  const uint64_t op_id = next_op_id_++;
  // Parked reads are recorded only on resubmission (the early return above),
  // with their original issue time, so parked waiting shows up in queue_us'
  // complement: the e2e latency counts it, the final leg does not.
  if (collector_ != nullptr) {
    collector_->OnRequestArrival(op_id, op == DiskOp::kWrite, lba, sectors,
                                 issue_us);
  }
  std::vector<ArrayFragment> fragments = layout_->Map(lba, sectors);
  if (auditor_ != nullptr) {
    AuditMappedFragments(lba, sectors, fragments);
  }
  OpState& opstate = ops_[op_id];
  opstate.op = op;
  opstate.fragments_remaining = static_cast<uint32_t>(fragments.size());
  opstate.done = std::move(done);
  opstate.issue_us = issue_us;

  if (op == DiskOp::kWrite) {
    MarkInflightWrite(lba, sectors, +1);
  }

  for (ArrayFragment& f : fragments) {
    const uint64_t frag_key = next_frag_key_++;
    FragState& frag = frags_[frag_key];
    frag.op_id = op_id;
    frag.logical_lba = f.logical_lba;
    frag.sectors = f.sectors;
    frag.op = op;
    frag.replicas = std::move(f.replicas);
    if (op == DiskOp::kRead) {
      SubmitReadFragment(frag, frag_key);
    } else {
      SubmitWriteFragment(frag, frag_key);
    }
  }
}

bool ArrayController::SubmitReadFragment(FragState& frag, uint64_t frag_key) {
  const int dr = layout_->aspect().dr;
  const int dm = layout_->aspect().dm;
  frag.entries_remaining = 1;

  // Overlapping unaligned writes can leave every replica of this range
  // partially stale even though every *sector* has a clean copy somewhere.
  // Shrink the fragment to the longest prefix some replica covers cleanly and
  // resubmit the tail as its own fragment.
  uint32_t best_prefix = 0;
  for (const ReplicaLocation& loc : frag.replicas) {
    uint32_t clean = 0;
    while (clean < frag.sectors &&
           !stale_sectors_.contains(ReplicaKey(loc.disk, loc.lba + clean))) {
      ++clean;
    }
    best_prefix = std::max(best_prefix, clean);
    if (best_prefix == frag.sectors) {
      break;
    }
  }
  // Partially overlapping unaligned writes can (rarely) leave every replica
  // of a sector carrying a stale marker even though the newest data has in
  // fact been written (the marker belongs to an older, superseded
  // propagation). Timing-wise any replica is equivalent; serve from the full
  // set and account for it.
  const bool ignore_stale = best_prefix == 0;
  if (ignore_stale) {
    ++stats_.stale_fallback_reads;
    best_prefix = frag.sectors;
  }
  if (best_prefix < frag.sectors) {
    const uint64_t tail_key = next_frag_key_++;
    FragState& tail = frags_[tail_key];
    tail.op_id = frag.op_id;
    tail.logical_lba = frag.logical_lba + best_prefix;
    tail.sectors = frag.sectors - best_prefix;
    tail.op = frag.op;
    tail.replicas = frag.replicas;
    tail.attempts = frag.attempts;
    tail.bad_replicas = frag.bad_replicas;
    for (ReplicaLocation& loc : tail.replicas) {
      loc.lba += best_prefix;
    }
    for (ReplicaLocation& loc : tail.bad_replicas) {
      loc.lba += best_prefix;
    }
    ++ops_[frag.op_id].fragments_remaining;
    // `frag` may have been invalidated by the map insertion above.
    FragState& head = frags_[frag_key];
    head.sectors = best_prefix;
    const bool head_ok = SubmitReadFragment(head, frag_key);
    const bool tail_ok = SubmitReadFragment(frags_[tail_key], tail_key);
    return head_ok && tail_ok;
  }

  // Per-disk candidate sets, stale replicas excluded.
  struct DiskCandidates {
    uint32_t disk;
    std::vector<BlockAddr> lbas;
  };
  std::vector<DiskCandidates> candidates;
  for (int m = 0; m < dm; ++m) {
    DiskCandidates dc;
    dc.disk = frag.replicas[static_cast<size_t>(m) * dr].disk;
    if (drives_->failed(SlotId(dc.disk))) {
      continue;
    }
    for (int r = 0; r < dr; ++r) {
      const ReplicaLocation& loc = frag.replicas[static_cast<size_t>(m) * dr + r];
      bool known_bad = false;
      for (const ReplicaLocation& bad : frag.bad_replicas) {
        if (bad.disk == loc.disk && bad.lba == loc.lba) {
          known_bad = true;
          break;
        }
      }
      if (known_bad) {
        continue;
      }
      if (ignore_stale || !ReplicaIsStale(loc.disk, loc.lba, frag.sectors)) {
        dc.lbas.push_back(BlockAddr(loc.lba));
      }
    }
    if (!dc.lbas.empty()) {
      candidates.push_back(std::move(dc));
    }
  }
  if (candidates.empty()) {
    // Every replica is on a failed disk or known bad: redundancy exhausted.
    CompleteFragmentUnrecoverable(frag_key, frag);
    return false;
  }

  // Mirror heuristic (Section 3.3): if a holding disk is idle, send the
  // request to the idle head closest to a copy; otherwise duplicate the
  // request into every holder's queue and cancel the losers on dispatch.
  std::vector<const DiskCandidates*> targets;
  if (candidates.size() > 1) {
    const DiskCandidates* best_idle = nullptr;
    double best_cost = std::numeric_limits<double>::infinity();
    for (const DiskCandidates& dc : candidates) {
      if (drives_->disk(SlotId(dc.disk))->busy() || !drives_->fg(SlotId(dc.disk)).empty()) {
        continue;
      }
      for (BlockAddr cand : dc.lbas) {
        const AccessPlan plan = drives_->predictor(SlotId(dc.disk))->Predict(
            sim_->Now(), cand, frag.sectors, /*is_write=*/false);
        const double cost = drives_->predictor(SlotId(dc.disk))->EffectiveServiceUs(plan);
        if (cost < best_cost) {
          best_cost = cost;
          best_idle = &dc;
        }
      }
    }
    if (best_idle != nullptr) {
      targets.push_back(best_idle);
    } else {
      for (const DiskCandidates& dc : candidates) {
        targets.push_back(&dc);
      }
    }
  } else {
    targets.push_back(&candidates.front());
  }

  for (const DiskCandidates* dc : targets) {
    QueuedRequest entry;
    entry.id = drives_->AllocEntryId();
    entry.op = DiskOp::kRead;
    entry.sectors = frag.sectors;
    entry.candidate_lbas = dc->lbas;
    entry.arrival_us = sim_->Now();
    entry.tag = frag_key;
    frag.queued.emplace_back(dc->disk, entry.id);
    drives_->EnqueueFg(SlotId(dc->disk), std::move(entry));
  }
  // Dispatch after all duplicates are queued so cancellation state is
  // complete before the first pick.
  for (const DiskCandidates* dc : targets) {
    drives_->MaybeDispatch(SlotId(dc->disk));
  }
  return true;
}

bool ArrayController::SubmitWriteFragment(FragState& frag, uint64_t frag_key) {
  const int dr = layout_->aspect().dr;
  const int dm = layout_->aspect().dm;

  if (options_.foreground_write_propagation) {
    // Every copy is written synchronously: one single-candidate entry per
    // replica; the fragment completes when all land.
    uint32_t live = 0;
    for (const ReplicaLocation& loc : frag.replicas) {
      if (!drives_->failed(SlotId(loc.disk))) {
        ++live;
      }
    }
    if (live == 0) {
      // Every copy's disk is gone: the write has nowhere durable to land.
      CompleteFragmentUnrecoverable(frag_key, frag);
      return false;
    }
    frag.entries_remaining = live;
    std::vector<uint32_t> touched;
    for (const ReplicaLocation& loc : frag.replicas) {
      if (drives_->failed(SlotId(loc.disk))) {
        continue;
      }
      QueuedRequest entry;
      entry.id = drives_->AllocEntryId();
      entry.op = DiskOp::kWrite;
      entry.sectors = frag.sectors;
      entry.candidate_lbas = {BlockAddr(loc.lba)};
      entry.arrival_us = sim_->Now();
      entry.tag = frag_key;
      drives_->EnqueueFg(SlotId(loc.disk), std::move(entry));
      touched.push_back(loc.disk);
    }
    for (uint32_t d : touched) {
      drives_->MaybeDispatch(SlotId(d));
    }
    return true;
  }

  // Background propagation: the first copy is scheduled like a read (any
  // mirror disk, any rotational replica); the rest become delayed writes once
  // the winner is known.
  frag.entries_remaining = 1;
  std::vector<uint32_t> touched;
  for (int m = 0; m < dm; ++m) {
    const uint32_t disk = frag.replicas[static_cast<size_t>(m) * dr].disk;
    if (drives_->failed(SlotId(disk))) {
      continue;
    }
    QueuedRequest entry;
    entry.id = drives_->AllocEntryId();
    entry.op = DiskOp::kWrite;
    entry.sectors = frag.sectors;
    entry.arrival_us = sim_->Now();
    entry.tag = frag_key;
    for (int r = 0; r < dr; ++r) {
      entry.candidate_lbas.push_back(
          BlockAddr(frag.replicas[static_cast<size_t>(m) * dr + r].lba));
    }
    frag.queued.emplace_back(disk, entry.id);
    drives_->EnqueueFg(SlotId(disk), std::move(entry));
    touched.push_back(disk);
  }
  if (touched.empty()) {
    CompleteFragmentUnrecoverable(frag_key, frag);
    return false;
  }
  for (uint32_t d : touched) {
    drives_->MaybeDispatch(SlotId(d));
  }
  return true;
}

void ArrayController::AuditMappedFragments(
    uint64_t lba, uint32_t sectors,
    const std::vector<ArrayFragment>& fragments) const {
  std::vector<AuditFragment> audit_frags;
  audit_frags.reserve(fragments.size());
  for (const ArrayFragment& f : fragments) {
    AuditFragment af;
    af.logical_lba = f.logical_lba;
    af.sectors = f.sectors;
    af.replicas.reserve(f.replicas.size());
    for (const ReplicaLocation& loc : f.replicas) {
      af.replicas.push_back(AuditReplicaRef{loc.disk, loc.lba});
    }
    audit_frags.push_back(std::move(af));
  }
  auditor_->OnArrayMap(lba, sectors, layout_->aspect().dm,
                       layout_->aspect().dr, layout_->num_disks(),
                       drives_->num_slots() == 0
                           ? 0
                           : drives_->disk(SlotId(0))->num_sectors(),
                       audit_frags);
}

void ArrayController::OnEntryDispatched(SlotId slot,
                                        const QueuedRequest& entry) {
  const uint32_t disk = slot.value();
  if (!entry.delayed && !entry.maintenance) {
    CancelSiblings(entry.tag, disk, entry.id);
  }
}

void ArrayController::CancelSiblings(uint64_t frag_key, uint32_t winner_disk,
                                     uint64_t winner_entry) {
  auto it = frags_.find(frag_key);
  MIMDRAID_CHECK(it != frags_.end());
  FragState& frag = it->second;
  for (const auto& [disk, entry_id] : frag.queued) {
    if (disk == winner_disk && entry_id == winner_entry) {
      continue;
    }
    auto& q = drives_->fg(SlotId(disk));
    for (size_t i = 0; i < q.size(); ++i) {
      if (q[i].id == entry_id) {
        q.erase(q.begin() + static_cast<ptrdiff_t>(i));
        ++stats_.read_duplicates_cancelled;
        if (auditor_ != nullptr) {
          auditor_->OnEntryCancelled(disk, entry_id);
        }
        if (collector_ != nullptr) {
          collector_->OnQueueDepth(disk, sim_->Now(), q.size());
        }
        break;
      }
    }
  }
  frag.queued.clear();
}

void ArrayController::OnEntryComplete(SlotId slot,
                                      const QueuedRequest& entry,
                                      BlockAddr chosen_addr,
                                      const DiskOpResult& result) {
  const uint32_t disk = slot.value();
  const uint64_t chosen_lba = chosen_addr.value();
  // The engine has already reported the completion to the auditor and, for
  // failures, opened the fault record and run the fault counters (possibly
  // auto-failing the slot). Only the mirror policy's bookkeeping runs here.
  if (!result.ok()) {
    HandleEntryFailure(disk, entry, chosen_lba, result);
    return;
  }
  if (entry.maintenance) {
    if (auto sit = scrub_reads_.find(entry.id); sit != scrub_reads_.end()) {
      fstats().scrub_sectors_read += sit->second.sectors;
      scrub_reads_.erase(sit);
      ++fstats().scrub_reads;
      return;
    }
    if (auto rit = rebuild_read_done_.find(entry.id);
        rit != rebuild_read_done_.end()) {
      auto fn = std::move(rit->second);
      rebuild_read_done_.erase(rit);
      fn(result);
      return;
    }
    if (auto wit = rebuild_write_done_.find(entry.id);
        wit != rebuild_write_done_.end()) {
      auto fn = std::move(wit->second);
      rebuild_write_done_.erase(wit);
      fn(result);
      return;
    }
    ++stats_.maintenance_reads;
    if (auto* hp =
            dynamic_cast<HeadPositionPredictor*>(drives_->predictor(SlotId(disk)))) {
      hp->AddReferenceObservation(result.completion_us);
    }
    return;
  }
  if (entry.delayed) {
    // Background propagation landed: the replica is now clean — unless a
    // newer propagation to the same location was queued while this one was in
    // flight (the index then points at the newer entry).
    if (nvram_.EraseIfOwner(disk, chosen_lba, entry.id)) {
      if (auditor_ != nullptr) {
        auditor_->OnNvramErase(disk, chosen_lba);
      }
      for (uint32_t s = 0; s < entry.sectors; ++s) {
        stale_sectors_.erase(ReplicaKey(disk, chosen_lba + s));
      }
    }
    ++stats_.delayed_writes_completed;
    return;
  }

  auto it = frags_.find(entry.tag);
  MIMDRAID_CHECK(it != frags_.end());
  FragState& frag = it->second;
  MIMDRAID_CHECK_GT(frag.entries_remaining, 0u);
  if (frag.op == DiskOp::kWrite) {
    ++frag.successes;
  }
  if (--frag.entries_remaining == 0) {
    FinalLeg leg;
    leg.entry_arrival_us = entry.arrival_us;
    leg.disk_start_us = result.start_us;
    leg.overhead_us = result.overhead_us;
    leg.seek_us = result.seek_us;
    leg.rotational_us = result.rotational_us;
    leg.transfer_us = result.transfer_us;
    CompleteFragment(entry.tag, frag, disk, chosen_lba, result.completion_us,
                     &leg);
  }
}

void ArrayController::CompleteFragment(uint64_t frag_key, FragState& frag,
                                       uint32_t chosen_disk,
                                       uint64_t chosen_lba,
                                       SimTime completion_us,
                                       const FinalLeg* leg) {
  const uint64_t op_id = frag.op_id;
  const DiskOp op = frag.op;
  const IoStatus frag_status = frag.status;
  if (op == DiskOp::kWrite) {
    if (!options_.foreground_write_propagation &&
        frag_status == IoStatus::kOk) {
      // The winner's copy is fresh; every other replica becomes a pending
      // background propagation. A previously pending propagation to the
      // winner's location is superseded by this write, and any stale markers
      // on the just-written sectors (from older, partially overlapping
      // propagations) are cleared.
      CancelPendingDelayed(chosen_disk, chosen_lba);
      for (uint32_t s = 0; s < frag.sectors; ++s) {
        stale_sectors_.erase(ReplicaKey(chosen_disk, chosen_lba + s));
      }
      for (const ReplicaLocation& loc : frag.replicas) {
        if ((loc.disk == chosen_disk && loc.lba == chosen_lba) ||
            drives_->failed(SlotId(loc.disk))) {
          continue;
        }
        AddDelayedWrite(loc.disk, loc.lba, frag.sectors);
      }
      EnforceDelayedTableLimit();
    }
    MarkInflightWrite(frag.logical_lba, frag.sectors, -1);
  }
  if (op == DiskOp::kRead && frag_status == IoStatus::kOk &&
      !frag.bad_replicas.empty()) {
    // Repair by rewrite: each replica that returned a media error is
    // rewritten with the data just served from a surviving copy; the drive's
    // firmware remaps the latent sector on write, clearing the error.
    for (const ReplicaLocation& bad : frag.bad_replicas) {
      if (drives_->failed(SlotId(bad.disk))) {
        continue;
      }
      ++fstats().repairs_queued;
      AddDelayedWrite(bad.disk, bad.lba, frag.sectors);
    }
    EnforceDelayedTableLimit();
  }

  frags_.erase(frag_key);

  auto oit = ops_.find(op_id);
  MIMDRAID_CHECK(oit != ops_.end());
  OpState& opstate = oit->second;
  opstate.status = Worse(opstate.status, frag_status);
  MIMDRAID_CHECK_GT(opstate.fragments_remaining, 0u);
  if (--opstate.fragments_remaining == 0) {
    if (opstate.status == IoStatus::kOk) {
      if (op == DiskOp::kRead) {
        ++stats_.reads_completed;
      } else {
        ++stats_.writes_completed;
      }
    } else {
      ++fstats().unrecoverable_completions;
    }
    IoResult io;
    io.status = opstate.status;
    io.completion_us = completion_us;
    io.recovery_attempts = opstate.recovery_attempts;
    if (collector_ != nullptr) {
      collector_->OnRequestComplete(op_id, io.status, io.completion_us,
                                    io.recovery_attempts, leg);
    }
    DoneFn done = std::move(opstate.done);
    ops_.erase(oit);
    if (done) {
      done(io);
    }
  }
  if (op == DiskOp::kWrite) {
    WakeParked();
  }
}

void ArrayController::CompleteFragmentUnrecoverable(uint64_t frag_key,
                                                    FragState& frag) {
  frag.status = Worse(frag.status, IoStatus::kUnrecoverable);
  CompleteFragment(frag_key, frag, /*chosen_disk=*/0, /*chosen_lba=*/0,
                   sim_->Now());
}

// --- Fault recovery -------------------------------------------------------

void ArrayController::ResolveFault(uint64_t entry_id,
                                   FaultResolution resolution,
                                   bool target_disk_failed) {
  if (auditor_ != nullptr) {
    auditor_->OnFaultResolved(entry_id, resolution, target_disk_failed);
  }
}

void ArrayController::NoteOpRecoveryAttempt(uint64_t op_id) {
  auto it = ops_.find(op_id);
  if (it != ops_.end()) {
    ++it->second.recovery_attempts;
  }
}

void ArrayController::ScheduleRecovery(uint32_t attempt,
                                       std::function<void()> fn) {
  drives_->ScheduleRecovery(attempt, std::move(fn));
}

void ArrayController::HandleEntryFailure(uint32_t disk,
                                         const QueuedRequest& entry,
                                         uint64_t chosen_lba,
                                         const DiskOpResult& result) {
  if (entry.maintenance) {
    HandleMaintenanceFailure(disk, entry, chosen_lba, result);
  } else if (entry.delayed) {
    HandleDelayedFailure(disk, entry, chosen_lba, result);
  } else if (entry.op == DiskOp::kRead) {
    HandleReadFailure(disk, entry, chosen_lba, result);
  } else {
    HandleWriteFailure(disk, entry, chosen_lba, result);
  }
}

void ArrayController::HandleReadFailure(uint32_t disk,
                                        const QueuedRequest& entry,
                                        uint64_t chosen_lba,
                                        const DiskOpResult& result) {
  auto it = frags_.find(entry.tag);
  MIMDRAID_CHECK(it != frags_.end());
  FragState& frag = it->second;
  NoteOpRecoveryAttempt(frag.op_id);

  // A timeout says nothing about the media; retry in place (bounded, with
  // backoff) before writing the path off.
  if (result.status == IoStatus::kTimeout && !drives_->failed(SlotId(disk)) &&
      frag.attempts + 1 < options_.retry.max_attempts) {
    ++frag.attempts;
    ++fstats().retries_issued;
    ResolveFault(entry.id, FaultResolution::kRetried, false);
    const uint64_t frag_key = entry.tag;
    ScheduleRecovery(frag.attempts, [this, frag_key]() {
      auto fit = frags_.find(frag_key);
      if (fit == frags_.end()) {
        return;
      }
      SubmitReadFragment(fit->second, frag_key);
    });
    return;
  }

  if (result.status == IoStatus::kMediaError) {
    // That specific replica is bad: never read it again for this fragment,
    // and rewrite it once a clean copy has been served (CompleteFragment).
    frag.bad_replicas.push_back(ReplicaLocation{disk, chosen_lba});
  } else if (result.status == IoStatus::kTimeout && !drives_->failed(SlotId(disk))) {
    // Retries exhausted: treat the whole path as suspect for this fragment.
    for (const ReplicaLocation& loc : frag.replicas) {
      if (loc.disk == disk) {
        frag.bad_replicas.push_back(loc);
      }
    }
  }
  // kDiskFailed needs no bookkeeping: the engine's failed flag excludes the
  // disk from candidate sets.

  ++fstats().failovers;
  const bool target_failed = drives_->failed(SlotId(disk));
  if (SubmitReadFragment(frag, entry.tag)) {
    ResolveFault(entry.id, FaultResolution::kFailedOver, target_failed);
  } else {
    // No live replica remained; the fragment completed as kUnrecoverable.
    ResolveFault(entry.id, FaultResolution::kSurfaced, target_failed);
  }
}

void ArrayController::HandleWriteFailure(uint32_t disk,
                                         const QueuedRequest& entry,
                                         uint64_t chosen_lba,
                                         const DiskOpResult& result) {
  (void)result;
  auto it = frags_.find(entry.tag);
  MIMDRAID_CHECK(it != frags_.end());
  FragState& frag = it->second;
  NoteOpRecoveryAttempt(frag.op_id);
  const uint64_t frag_key = entry.tag;

  if (!options_.foreground_write_propagation) {
    // First-copy write: duplicates were cancelled at dispatch, so this entry
    // carried the fragment alone.
    if (drives_->failed(SlotId(disk))) {
      ++fstats().failovers;
      if (SubmitWriteFragment(frag, frag_key)) {
        ResolveFault(entry.id, FaultResolution::kFailedOver, true);
      } else {
        ResolveFault(entry.id, FaultResolution::kSurfaced, true);
      }
      return;
    }
    // Transient failure on a live disk: retry without an attempt bound — the
    // data exists nowhere else yet, so giving up is not an option until the
    // disk itself is declared dead.
    ++frag.attempts;
    ++fstats().retries_issued;
    ResolveFault(entry.id, FaultResolution::kRetried, false);
    ScheduleRecovery(frag.attempts, [this, frag_key]() {
      auto fit = frags_.find(frag_key);
      if (fit == frags_.end()) {
        return;
      }
      SubmitWriteFragment(fit->second, frag_key);
    });
    return;
  }

  // Foreground propagation: each entry is one replica.
  if (drives_->failed(SlotId(disk))) {
    // This copy is lost; surviving copies carry the fragment. If none
    // succeeded by the time all entries account, the write is unrecoverable.
    ResolveFault(entry.id, FaultResolution::kAbandoned, true);
    LoseWriteReplica(frag_key);
    return;
  }
  QueuedRequest retry;
  retry.id = drives_->AllocEntryId();
  retry.op = DiskOp::kWrite;
  retry.sectors = entry.sectors;
  retry.candidate_lbas = {BlockAddr(chosen_lba)};
  retry.tag = frag_key;
  retry.attempts = entry.attempts + 1;
  ++fstats().retries_issued;
  ResolveFault(entry.id, FaultResolution::kRetried, false);
  ScheduleRecovery(retry.attempts,
                   [this, disk, retry = std::move(retry)]() mutable {
                     if (drives_->failed(SlotId(disk))) {
                       LoseWriteReplica(retry.tag);
                       return;
                     }
                     retry.arrival_us = sim_->Now();
                     drives_->EnqueueFg(SlotId(disk), std::move(retry));
                     drives_->MaybeDispatch(SlotId(disk));
                   });
}

void ArrayController::LoseWriteReplica(uint64_t frag_key) {
  auto it = frags_.find(frag_key);
  MIMDRAID_CHECK(it != frags_.end());
  FragState& frag = it->second;
  MIMDRAID_CHECK_GT(frag.entries_remaining, 0u);
  if (--frag.entries_remaining == 0) {
    if (frag.successes == 0) {
      frag.status = Worse(frag.status, IoStatus::kUnrecoverable);
    }
    CompleteFragment(frag_key, frag, /*chosen_disk=*/0, /*chosen_lba=*/0,
                     sim_->Now());
  }
}

void ArrayController::HandleDelayedFailure(uint32_t disk,
                                           const QueuedRequest& entry,
                                           uint64_t chosen_lba,
                                           const DiskOpResult& result) {
  (void)result;
  const std::optional<uint64_t> owner = nvram_.OwnerOf(disk, chosen_lba);
  const bool is_owner = owner.has_value() && *owner == entry.id;
  if (drives_->failed(SlotId(disk))) {
    if (is_owner) {
      nvram_.Erase(disk, chosen_lba);
      if (auditor_ != nullptr) {
        auditor_->OnNvramErase(disk, chosen_lba);
      }
      for (uint32_t s = 0; s < entry.sectors; ++s) {
        stale_sectors_.erase(ReplicaKey(disk, chosen_lba + s));
      }
    }
    ++fstats().propagations_abandoned;
    ResolveFault(entry.id, FaultResolution::kAbandoned, true);
    return;
  }
  if (!is_owner) {
    // A newer write superseded this propagation while it was in flight; the
    // live owner entry will rewrite the location with fresher data.
    ResolveFault(entry.id, FaultResolution::kRetried, false);
    return;
  }
  // Move ownership of the pending propagation to a fresh retry entry. The
  // stale markers stay: the replica's content is still old. No attempt
  // bound — the backlog is the only durable record of this data.
  nvram_.Erase(disk, chosen_lba);
  if (auditor_ != nullptr) {
    auditor_->OnNvramErase(disk, chosen_lba);
  }
  ++fstats().retries_issued;
  ResolveFault(entry.id, FaultResolution::kRetried, false);
  const uint32_t attempts = entry.attempts + 1;
  const uint32_t sectors = entry.sectors;
  ScheduleRecovery(attempts, [this, disk, chosen_lba, sectors, attempts]() {
    if (drives_->failed(SlotId(disk))) {
      for (uint32_t s = 0; s < sectors; ++s) {
        stale_sectors_.erase(ReplicaKey(disk, chosen_lba + s));
      }
      ++fstats().propagations_abandoned;
      return;
    }
    AddDelayedWrite(disk, chosen_lba, sectors, attempts);
  });
}

void ArrayController::HandleMaintenanceFailure(uint32_t disk,
                                               const QueuedRequest& entry,
                                               uint64_t chosen_lba,
                                               const DiskOpResult& result) {
  (void)chosen_lba;
  if (auto rit = rebuild_read_done_.find(entry.id);
      rit != rebuild_read_done_.end()) {
    auto fn = std::move(rit->second);
    rebuild_read_done_.erase(rit);
    fn(result);  // restarts the fragment copy with a different source
    ResolveFault(entry.id, FaultResolution::kFailedOver, drives_->failed(SlotId(disk)));
    return;
  }
  if (auto wit = rebuild_write_done_.find(entry.id);
      wit != rebuild_write_done_.end()) {
    auto fn = std::move(wit->second);
    rebuild_write_done_.erase(wit);
    fn(result);  // retries the copy, or records it lost if the target died
    ResolveFault(entry.id,
                 drives_->failed(SlotId(disk)) ? FaultResolution::kAbandoned
                                       : FaultResolution::kRetried,
                 drives_->failed(SlotId(disk)));
    return;
  }
  if (auto sit = scrub_reads_.find(entry.id); sit != scrub_reads_.end()) {
    const ScrubTarget target = sit->second;
    scrub_reads_.erase(sit);
    ++fstats().scrub_reads;
    // The read covered its sectors even when it surfaced a media error: the
    // sweep's job is discovery, and discovery is what happened.
    fstats().scrub_sectors_read += target.sectors;
    if (result.status == IoStatus::kMediaError &&
        !drives_->failed(SlotId(target.disk))) {
      // Latent sector error caught by the sweep: rewrite the replica with
      // the logically equivalent data the scrubber reads from its siblings
      // in the same pass; the drive remaps the sector on write.
      ++fstats().scrub_repairs;
      ++fstats().repairs_queued;
      AddDelayedWrite(target.disk, target.lba, target.sectors);
      ResolveFault(entry.id, FaultResolution::kRepaired, false);
    } else if (drives_->failed(SlotId(target.disk))) {
      ResolveFault(entry.id, FaultResolution::kAbandoned, true);
    } else {
      // Transient noise on a verification read: the next sweep revisits the
      // chunk, so the observation is surfaced (counted) and dropped.
      ResolveFault(entry.id, FaultResolution::kSurfaced, false);
    }
    return;
  }
  // Recalibration reference read: nothing to recover — the observation is
  // simply missed and the next timer issues a fresh one.
  ResolveFault(entry.id, FaultResolution::kSurfaced, drives_->failed(SlotId(disk)));
}

void ArrayController::OnSlotFailed(SlotId slot) {
  const uint32_t disk = slot.value();
  AbandonDelayedQueue(disk);
  RerouteQueuedEntries(disk);
}

void ArrayController::AbandonDelayedQueue(uint32_t disk) {
  std::vector<QueuedRequest> drained = std::move(drives_->delayed(SlotId(disk)));
  drives_->delayed(SlotId(disk)).clear();
  for (QueuedRequest& e : drained) {
    if (auditor_ != nullptr) {
      auditor_->OnEntryCancelled(disk, e.id);
    }
    if (e.maintenance) {
      // Rebuild copy traffic rides the delayed queues; hand the hooks a
      // synthetic disk-failed result so the chains reroute or terminate.
      DiskOpResult dead;
      dead.status = IoStatus::kDiskFailed;
      dead.start_us = sim_->Now();
      dead.completion_us = sim_->Now();
      if (auto rit = rebuild_read_done_.find(e.id);
          rit != rebuild_read_done_.end()) {
        auto fn = std::move(rit->second);
        rebuild_read_done_.erase(rit);
        fn(dead);
      } else if (auto wit = rebuild_write_done_.find(e.id);
                 wit != rebuild_write_done_.end()) {
        auto fn = std::move(wit->second);
        rebuild_write_done_.erase(wit);
        fn(dead);
      } else {
        scrub_reads_.erase(e.id);
      }
      continue;
    }
    // Pending propagation to a dead disk: meaningless now.
    if (nvram_.EraseIfOwner(disk, e.candidate_lbas.front().value(), e.id)) {
      if (auditor_ != nullptr) {
        auditor_->OnNvramErase(disk, e.candidate_lbas.front().value());
      }
    }
    for (uint32_t s = 0; s < e.sectors; ++s) {
      stale_sectors_.erase(ReplicaKey(disk, e.candidate_lbas.front().value() + s));
    }
    ++fstats().propagations_abandoned;
  }
}

void ArrayController::RerouteQueuedEntries(uint32_t disk) {
  std::vector<QueuedRequest> moved = std::move(drives_->fg(SlotId(disk)));
  drives_->fg(SlotId(disk)).clear();
  if (collector_ != nullptr && !moved.empty()) {
    collector_->OnQueueDepth(disk, sim_->Now(), 0);
  }
  for (QueuedRequest& e : moved) {
    if (auditor_ != nullptr) {
      auditor_->OnEntryCancelled(disk, e.id);
    }
    if (e.maintenance) {
      // Recalibration reads are periodic; the next timer re-issues one.
      scrub_reads_.erase(e.id);
      continue;
    }
    if (e.delayed) {
      // Propagation forced into the FG queue by the table limit.
      if (nvram_.EraseIfOwner(disk, e.candidate_lbas.front().value(), e.id)) {
        if (auditor_ != nullptr) {
          auditor_->OnNvramErase(disk, e.candidate_lbas.front().value());
        }
      }
      for (uint32_t s = 0; s < e.sectors; ++s) {
        stale_sectors_.erase(ReplicaKey(disk, e.candidate_lbas.front().value() + s));
      }
      ++fstats().propagations_abandoned;
      continue;
    }
    auto fit = frags_.find(e.tag);
    MIMDRAID_CHECK(fit != frags_.end());
    FragState& frag = fit->second;
    for (size_t i = 0; i < frag.queued.size(); ++i) {
      if (frag.queued[i].first == disk && frag.queued[i].second == e.id) {
        frag.queued.erase(frag.queued.begin() + static_cast<ptrdiff_t>(i));
        break;
      }
    }
    if (e.op == DiskOp::kRead || !options_.foreground_write_propagation) {
      // Duplicate-style entry: a sibling on a live disk still carries the
      // fragment; only a now-orphaned fragment needs resubmission.
      if (!frag.queued.empty()) {
        continue;
      }
      ++fstats().failovers;
      NoteOpRecoveryAttempt(frag.op_id);
      if (e.op == DiskOp::kRead) {
        SubmitReadFragment(frag, e.tag);
      } else {
        SubmitWriteFragment(frag, e.tag);
      }
    } else {
      // Foreground-propagation replica on the dead disk: this copy is lost.
      LoseWriteReplica(e.tag);
    }
  }
}

bool ArrayController::SparePromotionAllowed(SlotId slot) {
  (void)slot;
  // An SR-Array column (Dm == 1) has nothing to rebuild a spare from.
  return layout_->aspect().dm >= 2;
}

uint64_t ArrayController::UsedSpanSectors(SlotId slot) const {
  const uint32_t group =
      slot.value() / static_cast<uint32_t>(layout_->aspect().dm);
  return layout_->placement_for(slot.value())
      .PhysicalSpanSectors(layout_->column_sectors(group));
}

void ArrayController::OnSparePromoted(SlotId slot) {
  RebuildDisk(slot.value(), [this](const IoResult& r) {
    if (r.status == IoStatus::kOk) {
      ++fstats().spare_rebuilds_completed;
    }
  });
}

// --- Background scrubbing -------------------------------------------------

bool ArrayController::ScrubEligible() const {
  // The engine has already checked its own half of the gate (recovery
  // timers, live-drive quiescence).
  return ops_.empty() && parked_.empty() && !RebuildInProgress();
}

void ArrayController::ScrubStep() {
  const uint64_t dataset = layout_->dataset_sectors();
  if (dataset == 0) {
    return;
  }
  if (scrub_cursor_ >= dataset) {
    scrub_cursor_ = 0;
    ++fstats().scrub_sweeps_completed;
    fstats().scrub_last_sweep_coverage =
        sweep_sectors_nominal_ == 0
            ? 0.0
            : static_cast<double>(sweep_sectors_issued_) /
                  static_cast<double>(sweep_sectors_nominal_);
    sweep_sectors_issued_ = 0;
    sweep_sectors_nominal_ = 0;
  }
  const uint32_t span = static_cast<uint32_t>(std::min<uint64_t>(
      layout_->stripe_unit_sectors(), dataset - scrub_cursor_));
  for (const ArrayFragment& f : layout_->Map(scrub_cursor_, span)) {
    for (const ReplicaLocation& loc : f.replicas) {
      sweep_sectors_nominal_ += f.sectors;
      if (drives_->failed(SlotId(loc.disk))) {
        continue;
      }
      sweep_sectors_issued_ += f.sectors;
      QueuedRequest e;
      e.id = drives_->AllocEntryId();
      e.op = DiskOp::kRead;
      e.sectors = f.sectors;
      e.candidate_lbas = {BlockAddr(loc.lba)};
      e.arrival_us = sim_->Now();
      e.maintenance = true;
      scrub_reads_[e.id] = ScrubTarget{loc.disk, loc.lba, f.sectors};
      const uint32_t d = loc.disk;
      drives_->EnqueueDelayed(SlotId(d), std::move(e));
      drives_->MaybeDispatch(SlotId(d));
    }
  }
  scrub_cursor_ += span;
}

void ArrayController::AddDelayedWrite(uint32_t disk, uint64_t lba,
                                      uint32_t sectors, uint32_t attempts) {
  const std::optional<uint64_t> existing_owner = nvram_.OwnerOf(disk, lba);
  if (existing_owner.has_value()) {
    ++stats_.delayed_writes_discarded;
    // If the superseded entry is still queued, it simply carries the newer
    // data ("data dies young", Section 3.4) — nothing more to do. If it is
    // already in flight, a fresh propagation must follow it.
    for (const auto* q : {&drives_->delayed(SlotId(disk)), &drives_->fg(SlotId(disk))}) {
      for (const QueuedRequest& e : *q) {
        if (e.id == *existing_owner) {
          return;  // still queued; superseded in place
        }
      }
    }
    nvram_.Erase(disk, lba);  // in flight; fall through to re-queue
    if (auditor_ != nullptr) {
      auditor_->OnNvramErase(disk, lba);
    }
  }
  QueuedRequest entry;
  entry.id = drives_->AllocEntryId();
  entry.op = DiskOp::kWrite;
  entry.sectors = sectors;
  entry.candidate_lbas = {BlockAddr(lba)};
  entry.arrival_us = sim_->Now();
  entry.delayed = true;
  entry.attempts = attempts;
  const uint64_t owner_id = entry.id;
  // Queue registration precedes the table insert so the auditor sees the
  // NVRAM entry owned by an already-live delayed entry.
  drives_->EnqueueDelayed(SlotId(disk), std::move(entry));
  nvram_.Put(NvramEntry{disk, lba, sectors}, owner_id);
  if (auditor_ != nullptr) {
    auditor_->OnNvramPut(disk, lba, owner_id);
  }
  for (uint32_t s = 0; s < sectors; ++s) {
    stale_sectors_.insert(ReplicaKey(disk, lba + s));
  }
  drives_->MaybeDispatch(SlotId(disk));
}

void ArrayController::CancelPendingDelayed(uint32_t disk, uint64_t lba) {
  const std::optional<uint64_t> owner = nvram_.OwnerOf(disk, lba);
  if (!owner.has_value()) {
    return;
  }
  const std::optional<NvramEntry> record = nvram_.EntryOf(disk, lba);
  nvram_.Erase(disk, lba);
  if (auditor_ != nullptr) {
    auditor_->OnNvramErase(disk, lba);
  }
  ++stats_.delayed_writes_discarded;
  // The entry may sit in the delayed queue or (if forced out) the FG queue.
  for (auto* q : {&drives_->delayed(SlotId(disk)), &drives_->fg(SlotId(disk))}) {
    for (size_t i = 0; i < q->size(); ++i) {
      if ((*q)[i].id == *owner) {
        for (uint32_t s = 0; s < (*q)[i].sectors; ++s) {
          stale_sectors_.erase(ReplicaKey(disk, lba + s));
        }
        q->erase(q->begin() + static_cast<ptrdiff_t>(i));
        if (auditor_ != nullptr) {
          auditor_->OnEntryCancelled(disk, *owner);
        }
        return;
      }
    }
  }
  // Entry already dispatched: it will complete and clear its own state.
  nvram_.Put(*record, *owner);
  if (auditor_ != nullptr) {
    auditor_->OnNvramPut(disk, lba, *owner);
  }
}

void ArrayController::EnforceDelayedTableLimit() {
  while (nvram_.size() > options_.delayed_table_limit) {
    // Force the oldest still-queued delayed write into its FG queue.
    uint32_t best_disk = 0;
    uint64_t best_id = UINT64_MAX;
    for (uint32_t d = 0; d < drives_->num_slots(); ++d) {
      if (!drives_->delayed(SlotId(d)).empty() &&
          drives_->delayed(SlotId(d)).front().id < best_id) {
        best_id = drives_->delayed(SlotId(d)).front().id;
        best_disk = d;
      }
    }
    if (best_id == UINT64_MAX) {
      return;  // everything pending is already in flight or forced
    }
    QueuedRequest entry = std::move(drives_->delayed(SlotId(best_disk)).front());
    drives_->delayed(SlotId(best_disk)).erase(drives_->delayed(SlotId(best_disk)).begin());
    drives_->fg(SlotId(best_disk)).push_back(std::move(entry));
    ++stats_.delayed_writes_forced;
    drives_->MaybeDispatch(SlotId(best_disk));
  }
}

void ArrayController::RestorePropagations(
    const std::vector<NvramEntry>& entries) {
  for (const NvramEntry& e : entries) {
    MIMDRAID_CHECK_LT(e.disk, drives_->num_slots());
    AddDelayedWrite(e.disk, e.lba, e.sectors);
  }
  EnforceDelayedTableLimit();
}

bool ArrayController::RangeHasInflightWrite(uint64_t lba,
                                            uint32_t sectors) const {
  if (inflight_writes_.empty()) {
    return false;
  }
  for (uint32_t s = 0; s < sectors; ++s) {
    if (inflight_writes_.contains(lba + s)) {
      return true;
    }
  }
  return false;
}

void ArrayController::MarkInflightWrite(uint64_t lba, uint32_t sectors,
                                        int delta) {
  for (uint32_t s = 0; s < sectors; ++s) {
    auto [it, inserted] = inflight_writes_.try_emplace(lba + s, 0);
    it->second += delta;
    MIMDRAID_CHECK_GE(it->second, 0);
    if (it->second == 0) {
      inflight_writes_.erase(it);
    }
  }
}

void ArrayController::WakeParked() {
  if (parked_.empty()) {
    return;
  }
  std::vector<ParkedRequest> still_parked;
  std::vector<ParkedRequest> ready;
  for (ParkedRequest& p : parked_) {
    if (RangeHasInflightWrite(p.lba, p.sectors)) {
      still_parked.push_back(std::move(p));
    } else {
      ready.push_back(std::move(p));
    }
  }
  parked_ = std::move(still_parked);
  for (ParkedRequest& p : ready) {
    SubmitInternal(p.op, p.lba, p.sectors, std::move(p.done), p.issue_us);
  }
}

bool ArrayController::FailDisk(SlotId slot) {
  const uint32_t disk = slot.value();
  MIMDRAID_CHECK_LT(disk, drives_->num_slots());
  MIMDRAID_CHECK(!drives_->failed(SlotId(disk)));
  MIMDRAID_CHECK(!drives_->disk(SlotId(disk))->busy());
  MIMDRAID_CHECK(drives_->fg(SlotId(disk)).empty());
  if (layout_->aspect().dm < 2) {
    // An SR-Array/stripe column has no cross-disk copy: losing the disk
    // loses data (the paper's Section 2.5 reliability tradeoff).
    return false;
  }
  drives_->MarkFailed(SlotId(disk));
  // Pending propagations to the failed disk are meaningless now.
  AbandonDelayedQueue(disk);
  return true;
}

void ArrayController::RebuildDisk(uint32_t disk, DoneFn done) {
  MIMDRAID_CHECK(drives_->failed(SlotId(disk)));
  MIMDRAID_CHECK_GE(layout_->aspect().dm, 2);
  drives_->MarkReplaced(SlotId(disk));  // replacement drive in the slot
  RebuildNextFragment(disk, 0, std::move(done));
}

void ArrayController::RebuildNextFragment(uint32_t disk, uint64_t next_lba,
                                          DoneFn done) {
  // Stream the dataset fragment by fragment; for each fragment with replicas
  // on `disk`, read a surviving copy and rewrite this disk's copies. The copy
  // traffic rides the delayed queues, yielding to foreground work.
  if (drives_->failed(SlotId(disk))) {
    // The replacement itself died mid-rebuild; abort the stream.
    if (done) {
      done(IoResult{IoStatus::kDiskFailed, sim_->Now(), 0});
    }
    return;
  }
  const uint64_t dataset = layout_->dataset_sectors();
  uint64_t lba = next_lba;
  while (lba < dataset) {
    const uint32_t span = static_cast<uint32_t>(
        std::min<uint64_t>(layout_->stripe_unit_sectors(), dataset - lba));
    const std::vector<ArrayFragment> frags = layout_->Map(lba, span);
    for (const ArrayFragment& f : frags) {
      std::vector<ReplicaLocation> targets;
      const ReplicaLocation* source = nullptr;
      for (const ReplicaLocation& loc : f.replicas) {
        if (loc.disk == disk) {
          targets.push_back(loc);
        } else if (source == nullptr && !drives_->failed(SlotId(loc.disk)) &&
                   !bad_sources_.contains(ReplicaKey(loc.disk, loc.lba))) {
          source = &loc;
        }
      }
      if (targets.empty()) {
        continue;
      }
      if (source == nullptr) {
        // Every surviving copy is failed or known bad: this fragment cannot
        // be re-populated. Count it and keep rebuilding the rest.
        ++fstats().rebuild_fragments_lost;
        continue;
      }
      const uint64_t frag_start = f.logical_lba;
      const uint64_t resume = f.logical_lba + f.sectors;
      const uint32_t len = f.sectors;
      const uint32_t source_disk = source->disk;
      const uint64_t source_lba = source->lba;

      QueuedRequest read_entry;
      read_entry.id = drives_->AllocEntryId();
      read_entry.op = DiskOp::kRead;
      read_entry.sectors = len;
      read_entry.candidate_lbas = {BlockAddr(source_lba)};
      read_entry.arrival_us = sim_->Now();
      read_entry.maintenance = true;
      rebuild_read_done_[read_entry.id] =
          [this, disk, frag_start, resume, targets, len, source_disk,
           source_lba, done](const DiskOpResult& r) mutable {
            if (r.status != IoStatus::kOk) {
              if (r.status == IoStatus::kMediaError) {
                // The source replica is bad: exclude it from future sourcing
                // and rewrite it from whichever copy the restart picks.
                bad_sources_.insert(ReplicaKey(source_disk, source_lba));
                if (!drives_->failed(SlotId(source_disk))) {
                  ++fstats().repairs_queued;
                  AddDelayedWrite(source_disk, source_lba, len);
                }
              }
              ++fstats().failovers;
              RebuildNextFragment(disk, frag_start, std::move(done));
              return;
            }
            auto writes_left = std::make_shared<size_t>(targets.size());
            for (const ReplicaLocation& loc : targets) {
              EnqueueRebuildWrite(loc, len, writes_left, disk, resume, done);
            }
          };
      drives_->EnqueueDelayed(SlotId(source_disk), std::move(read_entry));
      drives_->MaybeDispatch(SlotId(source_disk));
      return;  // continue from the completion callbacks
    }
    lba += span;
  }
  if (done) {
    done(IoResult{IoStatus::kOk, sim_->Now(), 0});
  }
}

void ArrayController::EnqueueRebuildWrite(ReplicaLocation loc, uint32_t len,
                                          std::shared_ptr<size_t> writes_left,
                                          uint32_t rebuild_disk,
                                          uint64_t resume, DoneFn done) {
  if (drives_->failed(SlotId(loc.disk))) {
    // The target slot died between sourcing the copy and issuing the write;
    // an entry queued to a failed disk would never dispatch. The fragment is
    // lost and the stream advances (RebuildNextFragment aborts the rebuild
    // when the target itself is the failed disk).
    ++fstats().rebuild_fragments_lost;
    if (--*writes_left == 0) {
      RebuildNextFragment(rebuild_disk, resume, std::move(done));
    }
    return;
  }
  QueuedRequest w;
  w.id = drives_->AllocEntryId();
  w.op = DiskOp::kWrite;
  w.sectors = len;
  w.candidate_lbas = {BlockAddr(loc.lba)};
  w.arrival_us = sim_->Now();
  w.maintenance = true;
  rebuild_write_done_[w.id] = [this, loc, len, writes_left, rebuild_disk,
                               resume, done](const DiskOpResult& r) mutable {
    if (r.status != IoStatus::kOk && !drives_->failed(SlotId(loc.disk))) {
      // Transient failure of the copy write: retry after backoff. The write
      // itself repairs any latent error at the target (firmware remap).
      ++fstats().retries_issued;
      ScheduleRecovery(1, [this, loc, len, writes_left, rebuild_disk, resume,
                           done]() mutable {
        if (drives_->failed(SlotId(loc.disk))) {
          ++fstats().rebuild_fragments_lost;
          if (--*writes_left == 0) {
            RebuildNextFragment(rebuild_disk, resume, std::move(done));
          }
          return;
        }
        EnqueueRebuildWrite(loc, len, writes_left, rebuild_disk, resume,
                            std::move(done));
      });
      return;
    }
    if (r.status != IoStatus::kOk) {
      ++fstats().rebuild_fragments_lost;  // target slot died mid-copy
    } else {
      ++rebuild_copied_;
    }
    if (--*writes_left == 0) {
      RebuildNextFragment(rebuild_disk, resume, std::move(done));
    }
  };
  drives_->EnqueueDelayed(SlotId(loc.disk), std::move(w));
  drives_->MaybeDispatch(SlotId(loc.disk));
}

void ArrayController::ScheduleRecalibration(uint32_t disk) {
  recalibration_events_[disk] =
      sim_->ScheduleAfter(options_.recalibration_interval_us, [this, disk]() {
    auto* hp = dynamic_cast<HeadPositionPredictor*>(drives_->predictor(SlotId(disk)));
    if (hp != nullptr) {
      QueuedRequest entry;
      entry.id = drives_->AllocEntryId();
      entry.op = DiskOp::kRead;
      entry.sectors = 1;
      entry.candidate_lbas = {BlockAddr(hp->reference_lba())};
      entry.arrival_us = sim_->Now();
      entry.maintenance = true;
      drives_->EnqueueFg(SlotId(disk), std::move(entry));
      drives_->MaybeDispatch(SlotId(disk));
    }
    ScheduleRecalibration(disk);
  });
}

bool ArrayController::ReplicaIsStale(uint32_t disk, uint64_t lba,
                                     uint32_t sectors) const {
  if (stale_sectors_.empty()) {
    return false;
  }
  for (uint32_t s = 0; s < sectors; ++s) {
    if (stale_sectors_.contains(ReplicaKey(disk, lba + s))) {
      return true;
    }
  }
  return false;
}

void ArrayController::ExportStats(StatsRegistry* registry) const {
  ExportFaultStats(drives_->fstats(), registry);
  registry->Set("array.reads_completed",
                static_cast<double>(stats_.reads_completed));
  registry->Set("array.writes_completed",
                static_cast<double>(stats_.writes_completed));
  registry->Set("array.delayed_writes_completed",
                static_cast<double>(stats_.delayed_writes_completed));
  registry->Set("array.delayed_writes_forced",
                static_cast<double>(stats_.delayed_writes_forced));
  registry->Set("array.delayed_writes_discarded",
                static_cast<double>(stats_.delayed_writes_discarded));
  registry->Set("array.read_duplicates_cancelled",
                static_cast<double>(stats_.read_duplicates_cancelled));
  registry->Set("array.maintenance_reads",
                static_cast<double>(stats_.maintenance_reads));
  registry->Set("array.parked_reads",
                static_cast<double>(stats_.parked_reads));
  registry->Set("array.stale_fallback_reads",
                static_cast<double>(stats_.stale_fallback_reads));
  registry->Set("array.delayed_backlog", static_cast<double>(nvram_.size()));
  registry->Set("array.rebuild_copied_fragments",
                static_cast<double>(rebuild_copied_));
}

}  // namespace mimdraid
