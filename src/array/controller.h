// The Disk Configuration + Scheduling layers of the prototype (Sections 3.1,
// 3.3, 3.4): translates logical array I/O into per-drive queue entries,
// implements the mirror read heuristic (idle-closest dispatch,
// duplicate-and-cancel when busy), and propagates write replicas in the
// background through per-disk delayed-write queues backed by an NVRAM
// metadata table with a force-out threshold.
//
// The per-drive machinery — scheduler queues, the dispatch loop, fault
// counting, auto-fail, hot-spare promotion, the scrub timer, observer
// wiring — lives in the shared DriveSet engine (src/io/drive_set.h); this
// class is the mirror *policy* over that engine and one of the two
// ArrayBackend implementations.
#ifndef MIMDRAID_SRC_ARRAY_CONTROLLER_H_
#define MIMDRAID_SRC_ARRAY_CONTROLLER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/array/array_layout.h"
#include "src/array/nvram_table.h"
#include "src/calib/predictor.h"
#include "src/disk/access_predictor.h"
#include "src/disk/sim_disk.h"
#include "src/io/array_backend.h"
#include "src/io/drive_set.h"
#include "src/obs/trace_collector.h"
#include "src/sched/scheduler.h"
#include "src/sim/auditor.h"
#include "src/sim/fault_injector.h"
#include "src/sim/io_status.h"
#include "src/sim/simulator.h"
#include "src/stats/fault_stats.h"

namespace mimdraid {

struct ArrayControllerOptions {
  SchedulerKind scheduler = SchedulerKind::kRsatf;
  // Cap on SATF-class scan depth per dispatch (0 = whole queue).
  size_t max_scan = 0;
  // NVRAM delayed-write metadata table capacity; above this, pending delayed
  // writes are forced into the foreground queues (Section 3.4).
  size_t delayed_table_limit = 10'000;
  // Period of maintenance reference-sector reads feeding re-calibration
  // (paper: two minutes). 0 disables.
  SimDuration recalibration_interval_us;
  // When true, every replica of a write is written in the foreground and the
  // write completes only after all copies land (the "foreground propagation"
  // mode of Figures 5 and 13). When false, the write completes after the
  // first copy; the rest propagate in the background.
  bool foreground_write_propagation = false;
  // Debug tripwire: when set, the controller wires this runtime
  // invariant auditor into the simulator, every disk, and every per-drive
  // scheduler, and reports queue/replica/NVRAM transitions to it (see
  // src/sim/auditor.h). Borrowed; must outlive the controller. Auditing
  // observes without altering any scheduling decision, so measured results
  // are unchanged.
  InvariantAuditor* auditor = nullptr;
  // Fault injection: when set, the controller wires the injector into every
  // disk (and into promoted spares) and runs its recovery machinery against
  // the faults the disks report. Borrowed; must outlive the controller.
  FaultInjector* fault_injector = nullptr;
  // Observability: when set, the controller wires the collector into every
  // disk (and every promoted spare) and reports the request lifecycle to it
  // (arrival, completion with the final-leg service decomposition, queue
  // depth, dispatch prediction error). Borrowed; must outlive the
  // controller. Like the auditor, the collector only observes — attaching it
  // changes no scheduling or recovery decision.
  TraceCollector* collector = nullptr;
  // Bounded-retry policy for foreground reads that fail with a transient
  // status (timeouts). Writes and background propagations retry without an
  // attempt bound: they carry data that exists nowhere else yet, so the only
  // legal terminal states are "landed" and "target disk failed".
  RetryPolicy retry;
  // Consecutive-error budget per disk before the controller declares the
  // drive failed and promotes a hot spare (0 = never auto-fail on errors;
  // an explicit kDiskFailed status always auto-fails).
  uint32_t disk_error_fail_threshold = 0;
  // Period of the background scrubber (0 = off). Each tick that finds the
  // array otherwise idle reads every live replica of the next chunk of the
  // logical space; a media error triggers a repair-rewrite from a surviving
  // copy. Idle-gating is the rate limit: scrubbing never competes with
  // foreground work.
  SimDuration scrub_interval_us;
  // Whether scrub ticks defer to foreground activity (historical default) or
  // fire on every period regardless of engine load (fixed-period policy for
  // reliability studies). The policy-level gate (no logical ops, no rebuild)
  // applies under both modes.
  ScrubGating scrub_gating = ScrubGating::kIdleGated;
};

struct ArrayStats {
  uint64_t reads_completed = 0;
  uint64_t writes_completed = 0;
  uint64_t delayed_writes_completed = 0;
  uint64_t delayed_writes_forced = 0;   // moved to FG by the table limit
  uint64_t delayed_writes_discarded = 0;  // superseded by a newer write
  uint64_t read_duplicates_cancelled = 0;
  uint64_t maintenance_reads = 0;
  uint64_t parked_reads = 0;  // reads ordered behind an in-flight write
  // Reads served while every replica carried a stale marker (possible only
  // under partially overlapping unaligned writes; see SubmitReadFragment).
  uint64_t stale_fallback_reads = 0;
};

class ArrayController : public ArrayBackend, private DriveSetClient {
 public:
  // Completion carries a full IoResult: kOk, or kUnrecoverable when every
  // recovery avenue (retry, replica failover, repair) is exhausted. The
  // intermediate statuses (kMediaError/kTimeout/kDiskFailed) are absorbed by
  // the recovery machinery and never surface here.
  using DoneFn = ArrayBackend::DoneFn;

  // `disks` and `predictors` are parallel arrays of size
  // layout->num_disks(); the controller borrows them.
  ArrayController(Simulator* sim, std::vector<SimDisk*> disks,
                  std::vector<AccessPredictor*> predictors,
                  const ArrayLayout* layout,
                  const ArrayControllerOptions& options);

  ArrayController(const ArrayController&) = delete;
  ArrayController& operator=(const ArrayController&) = delete;

  // Cancels pending maintenance timers. The controller must be idle (no
  // in-flight disk operation holds a completion callback into it).
  ~ArrayController() override;

  // Submits a logical I/O. `done` fires at the simulated completion time
  // (first-copy time for writes unless foreground propagation is on).
  void Submit(DiskOp op, uint64_t lba, uint32_t sectors, DoneFn done) override;

  const ArrayStats& stats() const { return stats_; }
  const ArrayLayout& layout() const { return *layout_; }
  uint64_t dataset_sectors() const override {
    return layout_->dataset_sectors();
  }

  // Outstanding foreground entries across all drive queues (dispatched
  // requests excluded).
  size_t TotalQueued() const { return drives_->TotalFgQueued(); }
  // Pending background replica propagations (the NVRAM table occupancy).
  size_t DelayedBacklog() const { return nvram_.size(); }
  // The delayed-write metadata table (what NVRAM preserves across a crash).
  const NvramTable& nvram() const { return nvram_; }
  // Crash recovery (Section 3.4): re-queues the propagation of every replica
  // recorded in a surviving NVRAM snapshot. Call on a freshly constructed
  // controller before offering load.
  void RestorePropagations(const std::vector<NvramEntry>& entries);
  size_t QueueDepth(uint32_t disk) const {
    return drives_->fg(SlotId(disk)).size();
  }
  bool Idle() const override;

  // Runs the auditor's terminal consistency check (queues, NVRAM table,
  // stale markers, parked reads must all be empty). Call once the array
  // reports Idle(); a no-op when no auditor is attached.
  void AuditQuiescent() const override;

  // --- Disk failure and rebuild (the Section 2.5 reliability argument). ---
  // Marks a disk failed. Every block with a surviving copy (Dm >= 2, or
  // pending same-data replicas elsewhere) keeps being served; returns false
  // if the configuration cannot tolerate the loss (Dm == 1: an SR-Array
  // column has no cross-disk copy — data loss). The array must be quiescent
  // on that disk (no in-flight command).
  bool FailDisk(SlotId disk) override;
  bool IsFailed(SlotId disk) const override { return drives_->failed(disk); }
  // Re-populates a replaced disk from its mirror twins, fragment stream by
  // fragment stream; `done` fires when redundancy is restored. Requires
  // Dm >= 2.
  void RebuildDisk(uint32_t disk, DoneFn done);
  void Rebuild(SlotId disk, DoneFn done) override {
    RebuildDisk(disk.value(), std::move(done));
  }
  uint64_t rebuild_copied_fragments() const { return rebuild_copied_; }
  bool RebuildInProgress() const override {
    return !rebuild_read_done_.empty() || !rebuild_write_done_.empty();
  }

  // --- Hot spares and fault recovery. ---
  // Registers a standby drive (and its predictor) the controller may promote
  // into a failed slot. Borrowed; must outlive the controller. The spare is
  // wired to the auditor/injector only on promotion.
  void AddSpare(SimDisk* disk, AccessPredictor* predictor) override {
    drives_->AddSpare(disk, predictor);
  }
  size_t spares_available() const override {
    return drives_->spares_available();
  }
  const FaultRecoveryStats& fault_stats() const override {
    return drives_->fstats();
  }
  uint64_t disk_error_count(uint32_t disk) const {
    return drives_->error_count(SlotId(disk));
  }

  // Publishes "fault.*" and "array.*" counters.
  void ExportStats(StatsRegistry* registry) const override;

  // Cancels the periodic scrub timer (in-flight scrub reads drain normally).
  // Call before draining to quiescence; the destructor also cancels it.
  void StopScrub() override { drives_->StopScrub(); }
  // Re-arms the timer; the next step resumes from scrub_cursor_ as it stood.
  void StartScrub() override { drives_->StartScrub(); }
  uint64_t scrub_sweeps_completed() const {
    return drives_->fstats().scrub_sweeps_completed;
  }

 private:
  struct FragState {
    uint64_t op_id = 0;
    uint64_t logical_lba = 0;
    uint32_t sectors = 0;
    DiskOp op = DiskOp::kRead;
    std::vector<ReplicaLocation> replicas;
    uint32_t entries_remaining = 0;  // FG entries that must still complete
    // Entries queued for this fragment (for duplicate cancellation).
    std::vector<std::pair<uint32_t, uint64_t>> queued;  // (disk, entry id)
    // --- Recovery state ---
    uint32_t attempts = 0;  // in-place retries spent (timeouts)
    // Replicas that returned a media error this fragment lifetime; excluded
    // from failover candidate sets and rewritten (repaired) once the
    // fragment completes from a surviving copy.
    std::vector<ReplicaLocation> bad_replicas;
    // Replicas that landed (foreground propagation mode only).
    uint32_t successes = 0;
    IoStatus status = IoStatus::kOk;  // worst unabsorbed status
  };

  struct OpState {
    DiskOp op = DiskOp::kRead;
    uint32_t fragments_remaining = 0;
    DoneFn done;
    SimTime issue_us;
    IoStatus status = IoStatus::kOk;  // worst status over fragments
    uint32_t recovery_attempts = 0;   // retries/failovers spent on this op
  };

  struct ParkedRequest {
    DiskOp op;
    uint64_t lba;
    uint32_t sectors;
    DoneFn done;
    SimTime issue_us;
  };

  static uint64_t ReplicaKey(uint32_t disk, uint64_t lba) {
    return (static_cast<uint64_t>(disk) << 48) | lba;
  }

  // --- DriveSetClient hooks ---
  void OnEntryDispatched(SlotId slot, const QueuedRequest& entry) override;
  void OnEntryComplete(SlotId slot, const QueuedRequest& entry,
                       BlockAddr chosen_addr,
                       const DiskOpResult& result) override;
  // Engine fail-stopped the slot: abandon its propagations and reroute its
  // queued foreground entries before any spare promotion.
  void OnSlotFailed(SlotId slot) override;
  bool SparePromotionAllowed(SlotId slot) override;
  // Physical span the slot's column occupies through its drive's placement —
  // the extent a promoted spare must resolve.
  uint64_t UsedSpanSectors(SlotId slot) const override;
  void OnSparePromoted(SlotId slot) override;
  bool ScrubEligible() const override;
  // One scrub chunk: reads every live replica of the next stripe unit of the
  // logical space.
  void ScrubStep() override;

  void SubmitInternal(DiskOp op, uint64_t lba, uint32_t sectors, DoneFn done,
                      SimTime issue_us);
  // Both return false when no live candidate disk remains; the fragment is
  // then completed with kUnrecoverable instead of being queued.
  bool SubmitReadFragment(FragState& frag, uint64_t frag_key);
  bool SubmitWriteFragment(FragState& frag, uint64_t frag_key);
  void AuditMappedFragments(uint64_t lba, uint32_t sectors,
                            const std::vector<ArrayFragment>& fragments) const;
  // `leg` is the decomposition of the disk op whose completion completed the
  // fragment; nullptr on paths with no such op (unrecoverable completions,
  // lost foreground-propagation replicas).
  void CompleteFragment(uint64_t frag_key, FragState& frag,
                        uint32_t chosen_disk, uint64_t chosen_lba,
                        SimTime completion_us, const FinalLeg* leg = nullptr);
  void CancelSiblings(uint64_t frag_key, uint32_t winner_disk,
                      uint64_t winner_entry);
  void AddDelayedWrite(uint32_t disk, uint64_t lba, uint32_t sectors,
                       uint32_t attempts = 0);
  void CancelPendingDelayed(uint32_t disk, uint64_t lba);
  void EnforceDelayedTableLimit();
  bool RangeHasInflightWrite(uint64_t lba, uint32_t sectors) const;
  void MarkInflightWrite(uint64_t lba, uint32_t sectors, int delta);
  void WakeParked();
  void ScheduleRecalibration(uint32_t disk);
  void RebuildNextFragment(uint32_t disk, uint64_t next_lba, DoneFn done);
  void EnqueueRebuildWrite(ReplicaLocation loc, uint32_t len,
                           std::shared_ptr<size_t> writes_left,
                           uint32_t rebuild_disk, uint64_t resume, DoneFn done);
  bool ReplicaIsStale(uint32_t disk, uint64_t lba, uint32_t sectors) const;

  // --- Fault recovery ---
  // Dispatches a failed entry's recovery; called from OnEntryComplete for
  // every non-kOk completion after the engine has the fault on record.
  void HandleEntryFailure(uint32_t disk, const QueuedRequest& entry,
                          uint64_t chosen_lba, const DiskOpResult& result);
  void HandleReadFailure(uint32_t disk, const QueuedRequest& entry,
                         uint64_t chosen_lba, const DiskOpResult& result);
  void HandleWriteFailure(uint32_t disk, const QueuedRequest& entry,
                          uint64_t chosen_lba, const DiskOpResult& result);
  void HandleDelayedFailure(uint32_t disk, const QueuedRequest& entry,
                            uint64_t chosen_lba, const DiskOpResult& result);
  void HandleMaintenanceFailure(uint32_t disk, const QueuedRequest& entry,
                                uint64_t chosen_lba,
                                const DiskOpResult& result);
  void ResolveFault(uint64_t entry_id, FaultResolution resolution,
                    bool target_disk_failed);
  void AbandonDelayedQueue(uint32_t disk);
  void RerouteQueuedEntries(uint32_t disk);
  // Schedules `fn` after the retry backoff for `attempt`; Idle() stays false
  // until every such recovery event has fired.
  void ScheduleRecovery(uint32_t attempt, std::function<void()> fn);
  void NoteOpRecoveryAttempt(uint64_t op_id);
  void CompleteFragmentUnrecoverable(uint64_t frag_key, FragState& frag);
  // A foreground-propagation replica write was lost (its disk failed);
  // accounts it and completes the fragment when all entries are in.
  void LoseWriteReplica(uint64_t frag_key);

  FaultRecoveryStats& fstats() { return drives_->fstats(); }

  Simulator* sim_;
  const ArrayLayout* layout_;
  ArrayControllerOptions options_;
  InvariantAuditor* auditor_ = nullptr;
  TraceCollector* collector_ = nullptr;

  // The shared drive-pool engine: queues, dispatch, fault counting,
  // auto-fail, spares, the scrub timer. Constructed in the ctor body.
  std::unique_ptr<DriveSet> drives_;

  std::vector<EventId> recalibration_events_;

  uint64_t next_op_id_ = 1;
  uint64_t next_frag_key_ = 1;
  std::unordered_map<uint64_t, OpState> ops_;
  std::unordered_map<uint64_t, FragState> frags_;

  // Pending background propagation, keyed by replica location (the NVRAM
  // metadata table). The owning queue entry may live in the delayed queue or,
  // if forced out, the FG queue.
  NvramTable nvram_;
  // Physical sectors whose content is stale until propagation completes.
  std::unordered_set<uint64_t> stale_sectors_;
  // Logical sectors with an in-flight foreground write (ordering barrier).
  std::unordered_map<uint64_t, int> inflight_writes_;
  std::vector<ParkedRequest> parked_;

  uint64_t rebuild_copied_ = 0;
  // Rebuild plumbing: completion hooks for the maintenance-tagged copy ops.
  // Both receive the DiskOpResult so the failure path can reroute (pick a
  // new source / retry the write) instead of silently dropping the copy.
  std::unordered_map<uint64_t, std::function<void(const DiskOpResult&)>>
      rebuild_read_done_;
  std::unordered_map<uint64_t, std::function<void(const DiskOpResult&)>>
      rebuild_write_done_;
  // Replica sources that returned a media error during rebuild/scrub
  // sourcing; never picked again (keyed by ReplicaKey).
  std::unordered_set<uint64_t> bad_sources_;

  // --- Background scrubbing state ---
  uint64_t scrub_cursor_ = 0;  // next logical LBA to sweep
  // Per-sweep coverage tallies: sectors of scrub reads issued this sweep vs.
  // what a fully-live array would have issued over the same logical span.
  // Their ratio lands in fstats().scrub_last_sweep_coverage at sweep wrap.
  uint64_t sweep_sectors_issued_ = 0;
  uint64_t sweep_sectors_nominal_ = 0;
  // In-flight scrub reads: entry id -> target replica.
  struct ScrubTarget {
    uint32_t disk = 0;
    uint64_t lba = 0;
    uint32_t sectors = 0;
  };
  std::unordered_map<uint64_t, ScrubTarget> scrub_reads_;

  ArrayStats stats_;
};

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_ARRAY_CONTROLLER_H_
