// The delayed-write metadata table (Section 3.4).
//
// Each entry records the physical location of a replica that still needs
// background propagation. The paper keeps this table in NVRAM: the *data*
// need not be persisted because the first (completed) copy can be read back
// to finish propagation after a crash — only the locations matter, so the
// table is small. Snapshot() models what survives a crash;
// ArrayController::RestorePropagations() completes recovery.
#ifndef MIMDRAID_SRC_ARRAY_NVRAM_TABLE_H_
#define MIMDRAID_SRC_ARRAY_NVRAM_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

namespace mimdraid {

// A pending replica propagation: the *target* location that is stale until
// the background write lands.
struct NvramEntry {
  uint32_t disk = 0;
  uint64_t lba = 0;
  uint32_t sectors = 0;
};

class NvramTable {
 public:
  static uint64_t Key(uint32_t disk, uint64_t lba) {
    return (static_cast<uint64_t>(disk) << 48) | lba;
  }

  // Inserts or replaces the entry for (disk, lba). `owner` is the queue entry
  // id currently responsible for the propagation.
  void Put(const NvramEntry& entry, uint64_t owner) {
    map_[Key(entry.disk, entry.lba)] = Record{entry, owner};
  }

  // The owner id for (disk, lba), if pending.
  std::optional<uint64_t> OwnerOf(uint32_t disk, uint64_t lba) const {
    auto it = map_.find(Key(disk, lba));
    if (it == map_.end()) {
      return std::nullopt;
    }
    return it->second.owner;
  }

  std::optional<NvramEntry> EntryOf(uint32_t disk, uint64_t lba) const {
    auto it = map_.find(Key(disk, lba));
    if (it == map_.end()) {
      return std::nullopt;
    }
    return it->second.entry;
  }

  // Erases the entry regardless of owner. Returns whether it existed.
  bool Erase(uint32_t disk, uint64_t lba) {
    return map_.erase(Key(disk, lba)) > 0;
  }

  // Erases only if `owner` still owns the entry (a newer propagation to the
  // same location must not be dropped by a stale completion).
  bool EraseIfOwner(uint32_t disk, uint64_t lba, uint64_t owner) {
    auto it = map_.find(Key(disk, lba));
    if (it == map_.end() || it->second.owner != owner) {
      return false;
    }
    map_.erase(it);
    return true;
  }

  size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }

  // What survives a crash: every pending propagation target.
  std::vector<NvramEntry> Snapshot() const {
    std::vector<NvramEntry> out;
    out.reserve(map_.size());
    for (const auto& [key, record] : map_) {
      (void)key;
      out.push_back(record.entry);
    }
    return out;
  }

 private:
  struct Record {
    NvramEntry entry;
    uint64_t owner = 0;
  };
  std::unordered_map<uint64_t, Record> map_;
};

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_ARRAY_NVRAM_TABLE_H_
