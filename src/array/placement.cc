#include "src/array/placement.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace mimdraid {

SrDiskPlacement::SrDiskPlacement(const DiskLayout* layout, int dr,
                                 PlacementMode mode)
    : layout_(layout), dr_(dr), mode_(mode) {
  MIMDRAID_CHECK(layout != nullptr);
  MIMDRAID_CHECK_GE(dr, 1);
  const DiskGeometry& geo = layout->geometry();
  MIMDRAID_CHECK_LE(static_cast<uint32_t>(dr), geo.num_heads);
  uint64_t logical = 0;
  for (uint32_t c = 0; c < geo.num_cylinders; ++c) {
    // Data heads are contiguous within a cylinder (reserved tracks lead,
    // spare tracks trail).
    uint32_t first_head = geo.num_heads;
    uint32_t avail = 0;
    for (uint32_t h = 0; h < geo.num_heads; ++h) {
      if (layout->IsDataTrack(c, h)) {
        if (first_head == geo.num_heads) {
          first_head = h;
        }
        MIMDRAID_CHECK_EQ(first_head + avail, h);  // contiguity invariant
        ++avail;
      }
    }
    const uint32_t spt = geo.SectorsPerTrack(c);
    uint32_t groups;
    uint32_t per_group;
    if (mode_ == PlacementMode::kCrossTrack) {
      // A group is Dr whole tracks; it stores one track's worth of data.
      groups = avail / static_cast<uint32_t>(dr_);
      per_group = spt;
    } else {
      // A group is a single track holding SPT/Dr logical sectors, each
      // replicated Dr times within the track.
      groups = avail;
      per_group = spt / static_cast<uint32_t>(dr_);
    }
    if (groups == 0 || per_group == 0) {
      continue;
    }
    CylinderEntry e;
    e.first_logical = logical;
    e.cylinder = c;
    e.first_head = first_head;
    e.groups = groups;
    e.spt = spt;
    e.per_group = per_group;
    table_.push_back(e);
    logical += static_cast<uint64_t>(groups) * per_group;
  }
  capacity_sectors_ = logical;
  MIMDRAID_CHECK(!table_.empty());
}

const SrDiskPlacement::CylinderEntry& SrDiskPlacement::EntryFor(
    uint64_t s) const {
  MIMDRAID_CHECK_LT(s, capacity_sectors_);
  // Last entry with first_logical <= s.
  auto it = std::upper_bound(
      table_.begin(), table_.end(), s,
      [](uint64_t v, const CylinderEntry& e) { return v < e.first_logical; });
  MIMDRAID_CHECK(it != table_.begin());
  return *(it - 1);
}

uint64_t SrDiskPlacement::PhysicalLba(uint64_t s, int r,
                                      double base_angle) const {
  MIMDRAID_CHECK_GE(r, 0);
  MIMDRAID_CHECK_LT(r, dr_);
  const CylinderEntry& e = EntryFor(s);
  const uint64_t off = s - e.first_logical;
  const uint32_t group = static_cast<uint32_t>(off / e.per_group);
  const uint32_t sector = static_cast<uint32_t>(off % e.per_group);
  MIMDRAID_CHECK_LT(group, e.groups);

  if (mode_ == PlacementMode::kIntraTrack) {
    // All replicas share the group's single track, spaced SPT/Dr slots
    // apart (exactly even when Dr divides SPT; within a slot otherwise).
    const uint32_t head = e.first_head + group;
    const uint32_t shift =
        static_cast<uint32_t>(std::llround(base_angle * e.spt));
    const uint32_t replica_offset = static_cast<uint32_t>(
        static_cast<uint64_t>(r) * e.spt / static_cast<uint64_t>(dr_));
    const Chs chs{e.cylinder, head,
                  (sector + replica_offset + shift) % e.spt};
    const uint64_t lba = layout_->ToLba(chs);
    MIMDRAID_CHECK_NE(lba, kInvalidLba);
    return lba;
  }

  const uint32_t head =
      e.first_head + group * static_cast<uint32_t>(dr_) + static_cast<uint32_t>(r);

  // Angular placement follows the skew chain of *consecutive* tracks — the
  // paper's "track skews must be re-arranged" requirement: group g's data is
  // placed at the angles of virtual track g (head first_head+g), so a large
  // sequential I/O crossing from group g to g+1 sees exactly one track skew,
  // even though the data physically sits Dr heads apart.
  const Chs virtual_track{e.cylinder, e.first_head + group, sector};
  const double rotate =
      base_angle + static_cast<double>(r) / static_cast<double>(dr_);
  double angle = layout_->AngleOf(virtual_track) + rotate;
  angle -= std::floor(angle);
  // Skip remapped holes (rare: only with bad sectors present).
  for (uint32_t attempt = 0; attempt < e.spt; ++attempt) {
    const uint64_t lba = layout_->LbaForAngle(e.cylinder, head, angle);
    if (lba != kInvalidLba) {
      return lba;
    }
    angle += 1.0 / e.spt;
    if (angle >= 1.0) {
      angle -= 1.0;
    }
  }
  MIMDRAID_CHECK(false);  // a data track cannot be entirely remapped
}

std::vector<uint64_t> SrDiskPlacement::AllReplicas(uint64_t s,
                                                   double base_angle) const {
  std::vector<uint64_t> out;
  out.reserve(dr_);
  for (int r = 0; r < dr_; ++r) {
    out.push_back(PhysicalLba(s, r, base_angle));
  }
  return out;
}

uint32_t SrDiskPlacement::ContiguousRun(uint64_t s) const {
  const CylinderEntry& e = EntryFor(s);
  const uint64_t off = s - e.first_logical;
  return e.per_group - static_cast<uint32_t>(off % e.per_group);
}

uint32_t SrDiskPlacement::CylinderOf(uint64_t s) const {
  return EntryFor(s).cylinder;
}

uint32_t SrDiskPlacement::CylinderSpan(uint64_t sectors) const {
  if (sectors == 0) {
    return 0;
  }
  MIMDRAID_CHECK_LE(sectors, capacity_sectors_);
  return EntryFor(sectors - 1).cylinder;
}

uint64_t SrDiskPlacement::PhysicalSpanSectors(uint64_t sectors) const {
  if (sectors == 0) {
    return 0;
  }
  MIMDRAID_CHECK_LE(sectors, capacity_sectors_);
  const CylinderEntry& e = EntryFor(sectors - 1);
  // Every track of the last used cylinder's group region counts as touched:
  // replicas rotate through the whole group, so the span ends at the last
  // sector of the last group track.
  const uint32_t tracks_used =
      mode_ == PlacementMode::kCrossTrack
          ? e.groups * static_cast<uint32_t>(dr_)
          : e.groups;
  const uint32_t last_head = e.first_head + tracks_used - 1;
  const uint64_t last_lba = layout_->ToLba(Chs{e.cylinder, last_head, e.spt - 1});
  MIMDRAID_CHECK_NE(last_lba, kInvalidLba);
  return last_lba + 1;
}

}  // namespace mimdraid
