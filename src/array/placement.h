// Per-disk placement of rotationally replicated data (Figure 3).
//
// Each disk's data tracks are grouped into "track groups" of Dr tracks within
// a cylinder. A group stores one track's worth of logical data; replica r of
// a logical sector lives on the group's r-th track, rotated by r/Dr of a
// revolution (plus an optional base angle used to stagger mirror copies on
// other disks). Skews are honored by placing replicas through
// DiskLayout::LbaForAngle, so replicas are evenly spaced in *physical angle*,
// not merely in sector numbering — this is what makes the R/(2 Dr) rotational
// delay of Equation (2) real.
//
// Placing replicas on different tracks (rather than within one track) keeps
// full-track sequential bandwidth intact, as argued in Section 2.2.
#ifndef MIMDRAID_SRC_ARRAY_PLACEMENT_H_
#define MIMDRAID_SRC_ARRAY_PLACEMENT_H_

#include <cstdint>
#include <vector>

#include "src/disk/layout.h"

namespace mimdraid {

// Where the Dr rotational replicas live.
//
// kCrossTrack (the paper's design): replicas on Dr different tracks of one
// cylinder — full-track sequential bandwidth is preserved.
// kIntraTrack (the rejected alternative, after Ng '91): replicas within one
// track — each track stores only SPT/Dr logical sectors, shortening the
// effective track and multiplying track switches for large I/O (Section 2.2's
// argument; see bench_abl_intratrack for the measurement).
enum class PlacementMode {
  kCrossTrack,
  kIntraTrack,
};

class SrDiskPlacement {
 public:
  // `dr` rotational replicas per logical sector. The placement uses cylinders
  // from the outer edge inward; a striped array simply stores less data per
  // disk and therefore spans proportionally fewer cylinders (that is the
  // "keep disks partially empty" seek reduction of Section 2.1).
  SrDiskPlacement(const DiskLayout* layout, int dr,
                  PlacementMode mode = PlacementMode::kCrossTrack);

  int dr() const { return dr_; }
  PlacementMode mode() const { return mode_; }
  const DiskLayout& layout() const { return *layout_; }

  // Logical sectors this disk can hold at this replication degree.
  uint64_t capacity_sectors() const { return capacity_sectors_; }

  // Physical LBA of replica `r` of logical sector `s`. `base_angle` rotates
  // the whole replica set (used to stagger mirror copies); replica r is
  // placed at the natural angle + base_angle + r/dr.
  uint64_t PhysicalLba(uint64_t s, int r, double base_angle = 0.0) const;

  // All dr replica LBAs of logical sector `s`.
  std::vector<uint64_t> AllReplicas(uint64_t s, double base_angle = 0.0) const;

  // Number of logically contiguous sectors starting at `s` whose replicas are
  // physically contiguous (i.e. up to the track-group boundary).
  uint32_t ContiguousRun(uint64_t s) const;

  // Cylinder holding logical sector `s` (same for all replicas).
  uint32_t CylinderOf(uint64_t s) const;

  // Highest cylinder index used when `sectors` logical sectors are stored
  // (the seek span a workload of that footprint experiences).
  uint32_t CylinderSpan(uint64_t sectors) const;

  // Physical LBAs this placement touches when `sectors` logical sectors are
  // stored: one past the highest physical LBA of any replica. This is the
  // address span a replacement drive must be able to resolve (spare
  // compatibility) and the extent the virtual-array allocator reserves.
  uint64_t PhysicalSpanSectors(uint64_t sectors) const;

 private:
  struct CylinderEntry {
    uint64_t first_logical = 0;  // first logical sector stored in this cylinder
    uint32_t cylinder = 0;
    uint32_t first_head = 0;  // first data head
    uint32_t groups = 0;      // track groups available
    uint32_t spt = 0;
    uint32_t per_group = 0;  // logical sectors stored per group
  };

  const CylinderEntry& EntryFor(uint64_t s) const;

  const DiskLayout* layout_;
  int dr_;
  PlacementMode mode_;
  uint64_t capacity_sectors_ = 0;
  std::vector<CylinderEntry> table_;
};

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_ARRAY_PLACEMENT_H_
