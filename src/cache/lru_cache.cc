#include "src/cache/lru_cache.h"

#include <algorithm>

#include "src/util/check.h"

namespace mimdraid {

LruBlockCache::LruBlockCache(uint64_t capacity_bytes, uint32_t block_sectors)
    : capacity_blocks_(std::max<uint64_t>(
          1, capacity_bytes / (static_cast<uint64_t>(block_sectors) * 512))),
      block_sectors_(block_sectors) {
  MIMDRAID_CHECK_GT(block_sectors, 0u);
}

bool LruBlockCache::Lookup(uint64_t lba, uint32_t sectors) {
  MIMDRAID_CHECK_GT(sectors, 0u);
  const uint64_t first = lba / block_sectors_;
  const uint64_t last = (lba + sectors - 1) / block_sectors_;
  for (uint64_t b = first; b <= last; ++b) {
    if (!map_.contains(b)) {
      ++misses_;
      return false;
    }
  }
  for (uint64_t b = first; b <= last; ++b) {
    Touch(b);
  }
  ++hits_;
  return true;
}

void LruBlockCache::Insert(uint64_t lba, uint32_t sectors) {
  MIMDRAID_CHECK_GT(sectors, 0u);
  uint64_t first = lba / block_sectors_;
  const uint64_t last = (lba + sectors - 1) / block_sectors_;
  // A range wider than the whole cache can only keep its trailing blocks
  // resident: installing the leading ones would make this very call evict
  // them again (churning the list and throwing away pre-existing residents
  // for nothing). Clamp to the blocks that can actually survive, which also
  // guarantees Insert never evicts a block it installed in the same call.
  if (last - first + 1 > capacity_blocks_) {
    first = last - capacity_blocks_ + 1;
  }
  for (uint64_t b = first; b <= last; ++b) {
    auto it = map_.find(b);
    if (it != map_.end()) {
      Touch(b);
      continue;
    }
    while (map_.size() >= capacity_blocks_) {
      map_.erase(lru_.back());
      lru_.pop_back();
    }
    lru_.push_front(b);
    map_[b] = lru_.begin();
  }
}

void LruBlockCache::Touch(uint64_t block) {
  auto it = map_.find(block);
  MIMDRAID_CHECK(it != map_.end());
  lru_.splice(lru_.begin(), lru_, it->second);
  it->second = lru_.begin();
}

}  // namespace mimdraid
