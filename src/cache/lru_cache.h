// LRU block cache (the memory-caching alternative of Figure 11).
//
// Tracks presence only — the simulator has no data contents. Reads hit if
// every block of the range is resident; reads and writes both install their
// blocks (allocate-on-access with LRU replacement).
#ifndef MIMDRAID_SRC_CACHE_LRU_CACHE_H_
#define MIMDRAID_SRC_CACHE_LRU_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>

namespace mimdraid {

class LruBlockCache {
 public:
  // `capacity_bytes` of cache over `block_sectors`-sized blocks (512 B
  // sectors).
  LruBlockCache(uint64_t capacity_bytes, uint32_t block_sectors);

  uint32_t block_sectors() const { return block_sectors_; }
  uint64_t capacity_blocks() const { return capacity_blocks_; }
  uint64_t resident_blocks() const { return map_.size(); }

  // True if all blocks covering [lba, lba+sectors) are resident. Touches the
  // blocks (moves them to MRU) when they are.
  [[nodiscard]] bool Lookup(uint64_t lba, uint32_t sectors);

  // Installs the blocks covering the range, evicting LRU blocks as needed.
  // A range wider than the whole cache installs only its trailing
  // `capacity_blocks()` blocks (the leading ones could never stay resident);
  // blocks installed by one call are never evicted by that same call.
  void Insert(uint64_t lba, uint32_t sectors);

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  double HitRate() const {
    const uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / total;
  }

 private:
  void Touch(uint64_t block);

  uint64_t capacity_blocks_;
  uint32_t block_sectors_;
  std::list<uint64_t> lru_;  // front = MRU
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_CACHE_LRU_CACHE_H_
