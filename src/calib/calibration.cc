#include "src/calib/calibration.h"

#include <algorithm>

#include "src/util/check.h"

namespace mimdraid {

double SpindlePhaseFromLattice(const DiskLayout& layout, uint64_t reference_lba,
                               double lattice_phase_us, double rotation_us) {
  const Chs ref = layout.ToChs(reference_lba);
  const uint32_t spt = layout.geometry().SectorsPerTrack(ref.cylinder);
  const double end_angle =
      static_cast<double>((layout.SlotOf(ref) + 1) % spt) / spt;
  return lattice_phase_us - end_angle * rotation_us;
}

CalibrationResult CalibrateDisk(Simulator* sim, SimDisk* disk,
                                const CalibrationOptions& options) {
  MIMDRAID_CHECK(sim != nullptr);
  MIMDRAID_CHECK(disk != nullptr);
  SyncDisk sync(sim, disk);
  const SimTime t_begin = sim->Now();
  CalibrationResult result;

  // --- 1. Rotation period and phase from reference reads. ---
  RotationEstimator estimator(
      static_cast<double>(disk->geometry().RotationUs().us()));
  double interval = options.initial_interval_us;
  for (int i = 0; i < options.reference_reads; ++i) {
    const DiskOpResult res = sync.Read(options.reference_lba, 1);
    estimator.AddObservation(res.completion_us);
    sync.Sleep(SimDuration(static_cast<int64_t>(interval)));
    interval = std::min(interval * options.interval_growth,
                        options.max_interval_us);
  }
  MIMDRAID_CHECK(estimator.Ready());
  result.rotation_us = estimator.rotation_us();
  result.lattice_phase_us = estimator.phase_us();
  result.residual_rms_us = estimator.ResidualRmsUs();

  const double spindle_phase =
      SpindlePhaseFromLattice(disk->layout(), options.reference_lba,
                              result.lattice_phase_us, result.rotation_us);

  // --- 2. Address-map extraction. ---
  if (options.probe_layout) {
    DiskProber prober(&sync, disk->layout().num_data_sectors(),
                      disk->geometry().num_heads, result.rotation_us,
                      spindle_phase);
    result.probe = prober.Probe();
  }

  // --- 3. Seek curve. ---
  if (options.extract_seek_profile) {
    SeekCurveExtractor extractor(&sync, &disk->layout(), result.rotation_us,
                                 spindle_phase);
    result.profile = extractor.ExtractProfile(options.seek);
    result.profile_extracted = true;
  }

  result.total_probes = sync.probes_issued();
  result.calibration_time_us = sim->Now() - t_begin;
  return result;
}

std::unique_ptr<HeadPositionPredictor> MakeCalibratedPredictor(
    Simulator* sim, SimDisk* disk, const CalibrationOptions& options,
    const SeekProfile* shared_profile, const SlackFeedbackOptions& slack) {
  CalibrationOptions opts = options;
  if (shared_profile != nullptr) {
    opts.extract_seek_profile = false;
  }
  const CalibrationResult cal = CalibrateDisk(sim, disk, opts);
  MIMDRAID_CHECK(shared_profile != nullptr || cal.profile_extracted);
  const SeekProfile& profile =
      shared_profile != nullptr ? *shared_profile : cal.profile;
  return std::make_unique<HeadPositionPredictor>(
      &disk->layout(), profile, cal.rotation_us, cal.lattice_phase_us,
      opts.reference_lba, slack);
}

}  // namespace mimdraid
