// Calibration orchestration: turns a black-box drive into a configured
// head-position predictor.
//
// The sequence mirrors the paper's Calibration Layer (Section 3.1/3.2):
//   1. Reference-sector reads on a growing interval schedule establish the
//      rotation period and spindle phase.
//   2. (Optionally) the DiskProber extracts the full address map — zones,
//      skews, reserved tracks. Arrays that share a disk model run this once
//      and reuse the result.
//   3. The SeekCurveExtractor measures the (overhead-inclusive) seek curve,
//      head-switch time, and write settle.
// The result feeds a HeadPositionPredictor, which keeps itself calibrated at
// run time via periodic reference reads.
#ifndef MIMDRAID_SRC_CALIB_CALIBRATION_H_
#define MIMDRAID_SRC_CALIB_CALIBRATION_H_

#include <memory>
#include <optional>

#include "src/calib/predictor.h"
#include "src/calib/prober.h"
#include "src/calib/seek_extractor.h"
#include "src/calib/sync_disk.h"
#include "src/disk/sim_disk.h"
#include "src/sim/simulator.h"

namespace mimdraid {

struct CalibrationOptions {
  int reference_reads = 40;
  double initial_interval_us = 20'000.0;
  double interval_growth = 1.6;
  double max_interval_us = 4e6;
  uint64_t reference_lba = 0;
  bool extract_seek_profile = true;
  bool probe_layout = false;  // full address-map extraction (expensive)
  SeekExtractionOptions seek;

  // Cheap settings for per-disk calibration when the seek profile is shared.
  static CalibrationOptions PhaseOnly() {
    CalibrationOptions o;
    o.extract_seek_profile = false;
    return o;
  }
};

struct CalibrationResult {
  double rotation_us = 0.0;
  double lattice_phase_us = 0.0;
  double residual_rms_us = 0.0;
  SeekProfile profile;  // meaningful iff profile_extracted
  bool profile_extracted = false;
  std::optional<ProbeResult> probe;
  uint64_t total_probes = 0;
  SimDuration calibration_time_us;
};

// Lattice phase (reference-read completion lattice) -> spindle phase usable
// by DiskTimingModel, anchored at the reference sector's end angle.
double SpindlePhaseFromLattice(const DiskLayout& layout, uint64_t reference_lba,
                               double lattice_phase_us, double rotation_us);

CalibrationResult CalibrateDisk(Simulator* sim, SimDisk* disk,
                                const CalibrationOptions& options = {});

// Calibrates the disk and builds a predictor from the result. If
// `shared_profile` is non-null it is used instead of extracting one (the
// common case for arrays of identical drives).
std::unique_ptr<HeadPositionPredictor> MakeCalibratedPredictor(
    Simulator* sim, SimDisk* disk, const CalibrationOptions& options = {},
    const SeekProfile* shared_profile = nullptr,
    const SlackFeedbackOptions& slack = {});

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_CALIB_CALIBRATION_H_
