#include "src/calib/predictor.h"

#include <cmath>

#include "src/util/check.h"

namespace mimdraid {

double PredictorStats::DemeritUs() const {
  return predictions == 0
             ? 0.0
             : std::sqrt(squared_error_sum / static_cast<double>(predictions));
}

HeadPositionPredictor::HeadPositionPredictor(
    const DiskLayout* layout, const SeekProfile& profile, double rotation_us,
    double lattice_phase_us, uint64_t reference_lba,
    const SlackFeedbackOptions& slack_options)
    : layout_(layout),
      estimator_(rotation_us),
      reference_lba_(reference_lba),
      slack_options_(slack_options),
      slack_us_(slack_options.initial_slack_us) {
  MIMDRAID_CHECK(layout != nullptr);
  // Translate the reference-read completion lattice into a spindle phase: at
  // a lattice point the reference sector's slot has just finished passing.
  const Chs ref = layout_->ToChs(reference_lba_);
  const uint32_t spt = layout_->geometry().SectorsPerTrack(ref.cylinder);
  const double end_angle =
      static_cast<double>((layout_->SlotOf(ref) + 1) % spt) / spt;
  const double spindle_phase = lattice_phase_us - end_angle * rotation_us;
  timing_ = std::make_unique<DiskTimingModel>(layout_, profile, spindle_phase,
                                              rotation_us);
  head_.cylinder = layout_->first_data_cylinder();
  head_.head = 0;
}

AccessPlan HeadPositionPredictor::Predict(SimTime now, BlockAddr lba,
                                          uint32_t sectors,
                                          bool is_write) const {
  return timing_->Plan(head_, static_cast<double>(now.us()), lba.value(),
                       sectors, is_write);
}

void HeadPositionPredictor::OnDispatch(SimTime now, BlockAddr lba,
                                       uint32_t sectors, bool is_write,
                                       double predicted_service_us) {
  (void)lba;
  (void)sectors;
  (void)is_write;
  MIMDRAID_CHECK(!pending_.has_value());
  pending_ = Pending{now, predicted_service_us};
}

void HeadPositionPredictor::OnCompletion(SimTime completion_us, BlockAddr lba,
                                         uint32_t sectors) {
  MIMDRAID_CHECK(pending_.has_value());
  const Pending p = *pending_;
  pending_.reset();

  // Arm position after the access.
  const Chs last = layout_->ToChs(lba.value() + sectors - 1);
  head_.cylinder = last.cylinder;
  head_.head = last.head;

  const double actual =
      static_cast<double>((completion_us - p.dispatch_us).us());
  const double error = actual - p.predicted_service_us;
  ++stats_.predictions;
  stats_.access_time_us.Add(actual);
  stats_.squared_error_sum += error * error;
  const bool miss = error > timing_->rotation_us() / 2.0;
  if (miss) {
    ++stats_.misses;
  } else {
    stats_.error_us.Add(error);
  }

  // Slack feedback: keep the on-target rate above (1 - target_miss_rate).
  ++window_predictions_;
  if (miss) {
    ++window_misses_;
  }
  if (window_predictions_ >= static_cast<uint64_t>(slack_options_.window)) {
    const double rate = static_cast<double>(window_misses_) /
                        static_cast<double>(window_predictions_);
    if (rate > slack_options_.target_miss_rate) {
      slack_us_ = std::min(slack_us_ * slack_options_.increase_factor,
                           slack_options_.max_slack_us);
    } else if (rate < slack_options_.target_miss_rate / 4.0) {
      slack_us_ = std::max(slack_us_ - slack_options_.decrease_us,
                           slack_options_.min_slack_us);
    }
    window_predictions_ = 0;
    window_misses_ = 0;
  }
}

void HeadPositionPredictor::AddReferenceObservation(SimTime completion_us) {
  estimator_.AddObservation(completion_us);
  estimator_.TrimTo(64);
  if (estimator_.Ready()) {
    RefreshModelFromEstimator();
  }
}

void HeadPositionPredictor::RefreshModelFromEstimator() {
  const Chs ref = layout_->ToChs(reference_lba_);
  const uint32_t spt = layout_->geometry().SectorsPerTrack(ref.cylinder);
  const double end_angle =
      static_cast<double>((layout_->SlotOf(ref) + 1) % spt) / spt;
  timing_->set_rotation_us(estimator_.rotation_us());
  timing_->set_spindle_phase_us(estimator_.phase_us() -
                                end_angle * estimator_.rotation_us());
}

OraclePredictor::OraclePredictor(const SimDisk* disk, double slack_us)
    : disk_(disk), slack_us_(slack_us) {
  MIMDRAID_CHECK(disk != nullptr);
  // With perfect phase knowledge the only systematic offsets are the mean
  // overheads; folding them in makes predictions comparable to observed
  // completion timestamps (and crucial: the mechanical access only begins
  // after the pre-access overhead, which shifts every rotational wait).
  // Peeking at the noise model is exactly the point of the oracle.
  overhead_mean_us_ =
      disk->noise().overhead_mean_us + disk->noise().post_overhead_mean_us;
}

AccessPlan OraclePredictor::Predict(SimTime now, BlockAddr lba,
                                    uint32_t sectors, bool is_write) const {
  const double pre = disk_->noise().overhead_mean_us;
  AccessPlan plan = disk_->DebugTimingModel().Plan(
      disk_->DebugHeadState(), static_cast<double>(now.us()) + pre,
      lba.value(), sectors, is_write);
  plan.total_us += overhead_mean_us_;
  return plan;
}

double OraclePredictor::RotationUs() const {
  return disk_->DebugTimingModel().rotation_us();
}

double OraclePredictor::AccessBoundUs(SimTime now, BlockAddr lba,
                                      uint32_t sectors, bool is_write) const {
  const double pre = disk_->noise().overhead_mean_us;
  return disk_->DebugTimingModel().AccessLowerBoundUs(
             disk_->DebugHeadState(), static_cast<double>(now.us()) + pre,
             lba.value(), sectors, is_write) +
         overhead_mean_us_;
}

void OraclePredictor::OnDispatch(SimTime now, BlockAddr lba, uint32_t sectors,
                                 bool is_write, double predicted_service_us) {
  (void)lba;
  (void)sectors;
  (void)is_write;
  MIMDRAID_CHECK(!pending_.has_value());
  pending_ = {now, predicted_service_us};
}

void OraclePredictor::OnCompletion(SimTime completion_us, BlockAddr lba,
                                   uint32_t sectors) {
  (void)lba;
  (void)sectors;
  MIMDRAID_CHECK(pending_.has_value());
  const auto [dispatch, predicted] = *pending_;
  pending_.reset();
  const double actual = static_cast<double>((completion_us - dispatch).us());
  const double error = actual - predicted;
  ++stats_.predictions;
  stats_.access_time_us.Add(actual);
  stats_.squared_error_sum += error * error;
  if (error > RotationUs() / 2.0) {
    ++stats_.misses;
  } else {
    stats_.error_us.Add(error);
  }
}

}  // namespace mimdraid
