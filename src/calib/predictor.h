// Online disk-head position prediction (Section 3.2).
//
// HeadPositionPredictor is the production AccessPredictor: it owns a
// DiskTimingModel configured with the *estimated* spindle phase and rotation
// period (from reference-sector reads) and the *extracted* seek profile, and
// tracks the arm position from the stream of dispatched requests. Because
// request overhead is unobservable, a predicted rotational wait smaller than
// the current slack is at risk of missing its sector; the slack is tuned by a
// feedback loop that targets an on-target rate above 99%, exactly as in the
// paper.
//
// OraclePredictor wraps the simulator's ground-truth timing model; it is the
// reference point for "perfect knowledge" experiments and for runs on
// noise-free disks.
#ifndef MIMDRAID_SRC_CALIB_PREDICTOR_H_
#define MIMDRAID_SRC_CALIB_PREDICTOR_H_

#include <cstdint>
#include <memory>
#include <optional>

#include "src/calib/rotation_estimator.h"
#include "src/disk/access_predictor.h"
#include "src/disk/layout.h"
#include "src/disk/seek_profile.h"
#include "src/disk/sim_disk.h"
#include "src/disk/timing.h"
#include "src/util/summary.h"

namespace mimdraid {

struct PredictorStats {
  uint64_t predictions = 0;
  uint64_t misses = 0;  // actual exceeded prediction by more than half a rotation
  Summary error_us;     // signed completion-time error, non-miss requests
  Summary access_time_us;
  double squared_error_sum = 0.0;  // across all requests, for the demerit figure

  double MissRate() const {
    return predictions == 0
               ? 0.0
               : static_cast<double>(misses) / static_cast<double>(predictions);
  }
  // Demerit figure (Ruemmler & Wilkes): RMS of prediction error.
  double DemeritUs() const;
};

struct SlackFeedbackOptions {
  double initial_slack_us = 450.0;
  double min_slack_us = 100.0;
  double max_slack_us = 2000.0;
  double target_miss_rate = 0.01;  // paper: >99% of requests on target
  int window = 400;                // requests between adjustments
  double increase_factor = 1.4;
  double decrease_us = 25.0;
};

class HeadPositionPredictor : public AccessPredictor {
 public:
  // `lattice_phase_us` is the RotationEstimator's phase: reference-read
  // completions lie at lattice_phase + k*rotation. `reference_lba` anchors
  // the translation from lattice phase to spindle phase.
  HeadPositionPredictor(const DiskLayout* layout, const SeekProfile& profile,
                        double rotation_us, double lattice_phase_us,
                        uint64_t reference_lba,
                        const SlackFeedbackOptions& slack_options = {});

  // --- AccessPredictor ---
  AccessPlan Predict(SimTime now, BlockAddr lba, uint32_t sectors,
                     bool is_write) const override;
  double SlackUs() const override { return slack_us_; }
  double RotationUs() const override { return timing_->rotation_us(); }
  HeadState Head() const override { return head_; }
  double AccessBoundUs(SimTime now, BlockAddr lba, uint32_t sectors,
                       bool is_write) const override {
    return timing_->AccessLowerBoundUs(head_, static_cast<double>(now.us()),
                                       lba.value(), sectors, is_write);
  }
  void OnDispatch(SimTime now, BlockAddr lba, uint32_t sectors, bool is_write,
                  double predicted_service_us) override;
  void OnCompletion(SimTime completion_us, BlockAddr lba,
                    uint32_t sectors) override;

  // --- Periodic re-calibration (the paper's two-minute reference reads). ---
  uint64_t reference_lba() const { return reference_lba_; }
  void AddReferenceObservation(SimTime completion_us);

  const PredictorStats& stats() const { return stats_; }
  void ResetStats() { stats_ = PredictorStats{}; }

  const DiskTimingModel& timing() const { return *timing_; }

 private:
  void RefreshModelFromEstimator();

  const DiskLayout* layout_;
  std::unique_ptr<DiskTimingModel> timing_;
  RotationEstimator estimator_;
  uint64_t reference_lba_;
  HeadState head_;

  struct Pending {
    SimTime dispatch_us;
    double predicted_service_us;
  };
  std::optional<Pending> pending_;

  PredictorStats stats_;
  SlackFeedbackOptions slack_options_;
  double slack_us_;
  uint64_t window_predictions_ = 0;
  uint64_t window_misses_ = 0;
};

// Predictor with perfect knowledge of the drive's internals. Predictions add
// the drive's mean overheads so they approximate observed completion times.
class OraclePredictor : public AccessPredictor {
 public:
  // `slack_us`: 0 suffices for noise-free disks; noisy disks still need a
  // slack covering the overhead spread.
  OraclePredictor(const SimDisk* disk, double slack_us);

  AccessPlan Predict(SimTime now, BlockAddr lba, uint32_t sectors,
                     bool is_write) const override;
  double SlackUs() const override { return slack_us_; }
  double RotationUs() const override;
  HeadState Head() const override { return disk_->DebugHeadState(); }
  // The bound mirrors Predict exactly: the mechanical timeline starts after
  // the mean pre-access overhead, and the mean overheads are folded into the
  // predicted total, so they must be folded into its lower bound too.
  double AccessBoundUs(SimTime now, BlockAddr lba, uint32_t sectors,
                       bool is_write) const override;
  void OnDispatch(SimTime now, BlockAddr lba, uint32_t sectors, bool is_write,
                  double predicted_service_us) override;
  void OnCompletion(SimTime completion_us, BlockAddr lba,
                    uint32_t sectors) override;

  const PredictorStats& stats() const { return stats_; }

 private:
  const SimDisk* disk_;
  double slack_us_;
  double overhead_mean_us_;
  std::optional<std::pair<SimTime, double>> pending_;
  PredictorStats stats_;
};

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_CALIB_PREDICTOR_H_
