#include "src/calib/prober.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "src/util/check.h"

namespace mimdraid {
namespace {

// Distance from x to the nearest integer (circular residual helper).
double CircDist(double x) { return std::abs(x - std::round(x)); }

// Positive fractional part in [0, 1).
double Frac(double x) {
  double f = x - std::floor(x);
  if (f >= 1.0) {
    f -= 1.0;
  }
  return f;
}

}  // namespace

DiskProber::DiskProber(SyncDisk* disk, uint64_t num_data_sectors,
                       uint32_t num_heads, double rotation_us, double phase_us)
    : disk_(disk),
      num_sectors_(num_data_sectors),
      num_heads_(num_heads),
      rotation_us_(rotation_us),
      phase_us_(phase_us) {
  MIMDRAID_CHECK_GT(rotation_us, 0.0);
  MIMDRAID_CHECK_GT(num_heads, 0u);
}

double DiskProber::SpindleAngleAt(double t_us) const {
  return Frac((t_us - phase_us_) / rotation_us_);
}

double DiskProber::MeasureEndAngle(uint64_t lba, int repeats) {
  MIMDRAID_CHECK_GT(repeats, 0);
  double base = 0.0;
  double delta_sum = 0.0;
  for (int r = 0; r < repeats; ++r) {
    const DiskOpResult res = disk_->Read(lba, 1);
    const double a = SpindleAngleAt(static_cast<double>(res.completion_us.us()));
    if (r == 0) {
      base = a;
    } else {
      // Circular mean relative to the first sample.
      double d = a - base;
      d -= std::round(d);
      delta_sum += d;
    }
  }
  return Frac(base + delta_sum / repeats);
}

DiskProber::TrackProbe DiskProber::MeasureSptAt(uint64_t lba0) {
  for (int attempt = 0; attempt < 6; ++attempt) {
    // --- 1. Coarse SPT estimate, refined over a ladder of widening strides
    // (a wider stride lengthens the lever arm of the angle measurement; the
    // consistency check against the previous rung detects a track boundary
    // inside the stride, in which case we shift and retry). ---
    double spt_est = 0.0;
    {
      const double a0 = MeasureEndAngle(lba0);
      const double d4 = Frac(MeasureEndAngle(lba0 + 4) - a0);
      if (d4 <= 0.0) {
        lba0 += 16;
        continue;
      }
      spt_est = 4.0 / d4;
      bool bad = false;
      for (uint64_t k : {16ull, 64ull}) {
        if (spt_est < static_cast<double>(k) * 2.5) {
          break;  // stride would risk crossing the track boundary
        }
        const double dk = Frac(MeasureEndAngle(lba0 + k) - a0);
        if (dk <= 0.0) {
          bad = true;
          break;
        }
        const double refined = static_cast<double>(k) / dk;
        if (std::abs(refined - spt_est) > 0.3 * spt_est) {
          bad = true;  // a boundary contaminated one of the strides
          break;
        }
        spt_est = refined;
      }
      if (bad || spt_est < 8.0 || spt_est > 4096.0) {
        // A track boundary sat inside the stride window; step past it (NOT a
        // multiple of the track length, or the bad phase would persist).
        lba0 += 83;
        continue;
      }
    }
    const uint32_t spt0 = static_cast<uint32_t>(std::round(spt_est));
    MIMDRAID_CHECK_LT(lba0 + 4ull * spt0, num_sectors_);

    // --- 2. Locate an exact track boundary: the angle step between two
    // consecutive LBAs jumps by the skew instead of one slot. ---
    uint64_t boundary = 0;
    const uint64_t stride = std::max<uint64_t>(1, spt0 / 16);
    double a_prev = MeasureEndAngle(lba0);
    const double expected_stride_delta = static_cast<double>(stride) / spt0;
    for (uint64_t i = 1; i * stride <= 2 * spt0 + 2 * stride; ++i) {
      const uint64_t pos = lba0 + i * stride;
      const double a = MeasureEndAngle(pos);
      const double d = Frac(a - a_prev);
      a_prev = a;
      if (d > expected_stride_delta + 2.2 / spt0) {
        if (stride == 1) {
          const double lo = MeasureEndAngle(pos - 1, /*repeats=*/10);
          const double hi = MeasureEndAngle(pos, /*repeats=*/10);
          if (Frac(hi - lo) > 2.5 / spt0) {
            boundary = pos;
            break;
          }
          continue;
        }
        // Refine inside (pos - stride, pos] with single steps. A candidate
        // hit is confirmed with high-repeat measurements: at the outer zones
        // one slot is comparable to the timestamp jitter, so the cheap
        // 3-repeat delta alone false-triggers too often.
        double a2_prev = MeasureEndAngle(pos - stride);
        for (uint64_t j = pos - stride + 1; j <= pos; ++j) {
          const double a2 = MeasureEndAngle(j);
          const double d2 = Frac(a2 - a2_prev);
          a2_prev = a2;
          if (d2 > 2.5 / spt0) {
            const double lo = MeasureEndAngle(j - 1, /*repeats=*/10);
            const double hi = MeasureEndAngle(j, /*repeats=*/10);
            if (Frac(hi - lo) > 2.5 / spt0) {
              boundary = j;
              break;
            }
          }
        }
        if (boundary != 0) {
          break;
        }
      }
    }
    if (boundary == 0) {
      lba0 += spt0 / 3 + 29;  // flaky region; shift off-phase and retry
      continue;
    }

    // --- 3. Exact SPT by integer scoring of wide angle strides measured
    // from the track start. ---
    const uint32_t cand_lo = std::max<uint32_t>(8, spt0 - 12);
    const uint32_t cand_hi = spt0 + 12;
    const uint32_t k1 = std::max<uint32_t>(8, spt0 >= 18 ? spt0 - 18 : 8);
    std::vector<uint32_t> ks = {k1, 3 * k1 / 4, 2 * k1 / 3, k1 / 2 + 1};
    std::sort(ks.begin(), ks.end());
    ks.erase(std::unique(ks.begin(), ks.end()), ks.end());
    const double a_start = MeasureEndAngle(boundary, /*repeats=*/8);
    std::vector<std::pair<uint32_t, double>> stride_deltas;
    for (uint32_t k : ks) {
      if (k == 0 || k + 2 >= cand_lo) {
        continue;
      }
      stride_deltas.emplace_back(
          k, Frac(MeasureEndAngle(boundary + k, /*repeats=*/8) - a_start));
    }
    MIMDRAID_CHECK(!stride_deltas.empty());
    uint32_t best_spt = 0;
    double best_score = std::numeric_limits<double>::infinity();
    for (uint32_t cand = cand_lo; cand <= cand_hi; ++cand) {
      double score = 0.0;
      for (const auto& [k, d] : stride_deltas) {
        const double r = d - static_cast<double>(k) / cand;
        score += CircDist(r) * CircDist(r);
      }
      if (score < best_score) {
        best_score = score;
        best_spt = cand;
      }
    }

    // --- 4. Verify: the next track boundary must sit exactly SPT sectors
    // after this one. ---
    const double a_last = MeasureEndAngle(boundary + best_spt - 1);
    const double a_next = MeasureEndAngle(boundary + best_spt);
    if (Frac(a_next - a_last) > 2.5 / best_spt) {
      return TrackProbe{best_spt, boundary};
    }
    lba0 += spt0 / 3 + 29;  // mis-measured; shift off-phase and retry
  }
  MIMDRAID_CHECK(false);  // persistent probe failure
}

uint64_t DiskProber::RefineZoneBoundary(uint64_t approx, uint32_t spt_left) {
  // Start from a track boundary at/after `approx` (which should still be in
  // the left zone) and walk track-by-track until the SPT changes. If a noisy
  // bisection step left `approx` too close to (or past) the boundary, back up
  // and retry.
  TrackProbe tp;
  for (int attempt = 0;; ++attempt) {
    tp = MeasureSptAt(approx);
    if (tp.sectors_per_track == spt_left) {
      break;
    }
    MIMDRAID_CHECK_LT(attempt, 8);
    approx = approx > 4096 ? approx - 4096 : 0;
  }
  uint64_t track = tp.track_start_lba;
  for (uint64_t iter = 0; iter < 8192; ++iter) {
    // Does the track starting at `track` span spt_left sectors? Check that
    // the angle stride (spt_left - 2) within it matches.
    const uint32_t k = spt_left - 2;
    const double a0 = MeasureEndAngle(track);
    const double d = Frac(MeasureEndAngle(track + k) - a0);
    const double expected = static_cast<double>(k) / spt_left;
    if (CircDist(d - expected) > 1.5 / spt_left) {
      return track;  // first track of the next zone
    }
    track += spt_left;
    MIMDRAID_CHECK_LT(track, num_sectors_);
  }
  MIMDRAID_CHECK(false);
}

uint64_t DiskProber::FindNextZoneBoundary(uint64_t lba_in_left_zone,
                                          uint32_t spt_left) {
  // Leave enough headroom at the end of the disk for MeasureSptAt's scans
  // (a few tracks), scaled down for small test disks.
  const uint64_t margin = std::min<uint64_t>(8192, num_sectors_ / 4);
  MIMDRAID_CHECK_GT(num_sectors_, margin * 2);
  const uint64_t hi_probe = num_sectors_ - margin;
  if (lba_in_left_zone >= hi_probe ||
      MeasureSptAt(hi_probe).sectors_per_track == spt_left) {
    return num_sectors_;  // same zone through the end of the disk
  }
  uint64_t lo = lba_in_left_zone;  // spt(lo) == spt_left
  uint64_t hi = hi_probe;          // spt(hi) != spt_left
  const uint64_t refine_window = std::min<uint64_t>(4096, num_sectors_ / 8);
  while (hi - lo > refine_window) {
    const uint64_t mid = lo + (hi - lo) / 2;
    if (MeasureSptAt(mid).sectors_per_track == spt_left) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return RefineZoneBoundary(lo, spt_left);
}

ProbeResult DiskProber::Probe() {
  ProbeResult result;
  const uint64_t probes_before = disk_->probes_issued();

  // --- Zone map: SPT changes partition the LBA space. ---
  uint64_t cur_first = 0;
  uint32_t cur_spt = MeasureSptAt(0).sectors_per_track;
  for (;;) {
    ProbedZone zone;
    zone.first_lba = cur_first;
    zone.sectors_per_track = cur_spt;
    result.zones.push_back(zone);
    MIMDRAID_CHECK_LT(result.zones.size(), 64u);
    const uint64_t next = FindNextZoneBoundary(cur_first, cur_spt);
    if (next >= num_sectors_) {
      break;
    }
    cur_first = next;
    cur_spt = MeasureSptAt(next).sectors_per_track;
  }

  // --- Per-zone data-track counts. ---
  for (size_t z = 0; z < result.zones.size(); ++z) {
    ProbedZone& zone = result.zones[z];
    const uint64_t next_first = z + 1 < result.zones.size()
                                    ? result.zones[z + 1].first_lba
                                    : num_sectors_;
    const uint64_t span = next_first - zone.first_lba;
    MIMDRAID_CHECK_EQ(span % zone.sectors_per_track, 0u);
    zone.num_data_tracks =
        static_cast<uint32_t>(span / zone.sectors_per_track);
  }

  // --- Skews and cylinder alignment. Track boundary k of a zone sits at
  // first_lba + k*SPT; its skew is the angle jump across it. The boundary
  // whose skew differs from the majority is a cylinder boundary; its index
  // modulo the head count reveals the zone's track alignment (and, for zone
  // 0, the number of reserved tracks). ---
  for (size_t z = 0; z < result.zones.size(); ++z) {
    ProbedZone& zone = result.zones[z];
    const uint32_t spt = zone.sectors_per_track;
    const uint32_t max_k =
        std::min(num_heads_ + 2, zone.num_data_tracks - 1);
    MIMDRAID_CHECK_GE(max_k, 2u);
    // One slot is comparable to the timestamp jitter on the outer zones, so
    // skews are measured with many repeats, and any boundary that disagrees
    // with the majority is re-measured with twice as many before being
    // trusted as a cylinder boundary.
    const auto measure_skew = [&](uint32_t k, int repeats) {
      const uint64_t b = zone.first_lba + static_cast<uint64_t>(k) * spt;
      const double a_before = MeasureEndAngle(b - 1, repeats);
      const double a_after = MeasureEndAngle(b, repeats);
      const double jump = Frac(a_after - a_before);
      const int skew = static_cast<int>(std::round(jump * spt)) - 1;
      MIMDRAID_CHECK_GE(skew, 0);
      return static_cast<uint32_t>(skew);
    };
    std::vector<uint32_t> skews(max_k + 1, 0);
    std::map<uint32_t, size_t> tally;
    for (uint32_t k = 1; k <= max_k; ++k) {
      skews[k] = measure_skew(k, /*repeats=*/12);
      ++tally[skews[k]];
    }
    uint32_t majority_skew = 0;
    size_t majority_count = 0;
    for (const auto& [skew_value, count] : tally) {
      if (count > majority_count) {
        majority_count = count;
        majority_skew = skew_value;
      }
    }
    std::map<uint32_t, std::vector<uint32_t>> by_skew;  // skew -> boundary ks
    for (uint32_t k = 1; k <= max_k; ++k) {
      uint32_t skew = skews[k];
      if (skew != majority_skew) {
        skew = measure_skew(k, /*repeats=*/24);  // confirm outliers
      }
      by_skew[skew].push_back(k);
    }
    // Majority value = track skew.
    uint32_t track_skew = 0;
    size_t majority = 0;
    for (const auto& [skew, ks] : by_skew) {
      if (ks.size() > majority) {
        majority = ks.size();
        track_skew = skew;
      }
    }
    zone.track_skew = track_skew;
    // The outliers are cylinder boundaries.
    uint32_t cyl_skew = track_skew;  // if indistinguishable, they are equal
    uint32_t first_cyl_boundary_k = 0;
    for (const auto& [skew, ks] : by_skew) {
      if (skew != track_skew) {
        cyl_skew = skew;
        first_cyl_boundary_k = ks.front();
        break;
      }
    }
    zone.cylinder_skew = cyl_skew;
    if (z == 0 && first_cyl_boundary_k != 0) {
      // Boundary after data track k-1 is a cylinder boundary iff
      // reserved + k - 1 == H - 1 (mod H)  =>  reserved == H - k (mod H).
      result.reserved_tracks =
          (num_heads_ - first_cyl_boundary_k % num_heads_) % num_heads_;
    }
  }

  // --- Cylinder positions: each zone starts on a cylinder boundary, which
  // pins the number of spare tracks hiding at the end of the previous zone
  // (assuming fewer spares than a full cylinder). ---
  uint64_t phys_tracks = 0;
  for (size_t z = 0; z < result.zones.size(); ++z) {
    ProbedZone& zone = result.zones[z];
    MIMDRAID_CHECK_EQ(phys_tracks % num_heads_, 0u);
    zone.first_cylinder = static_cast<uint32_t>(phys_tracks / num_heads_);
    const uint64_t used = (z == 0 ? result.reserved_tracks : 0u) +
                          zone.num_data_tracks;
    zone.inferred_spare_tracks =
        static_cast<uint32_t>((num_heads_ - used % num_heads_) % num_heads_);
    phys_tracks += used + zone.inferred_spare_tracks;
  }

  result.probes_used = disk_->probes_issued() - probes_before;
  return result;
}

std::vector<uint64_t> DiskProber::FindRemappedSectors(
    const DiskLayout& expected, uint64_t start, uint64_t count) {
  MIMDRAID_CHECK_LE(start + count, num_sectors_);
  std::vector<uint64_t> remapped;
  for (uint64_t lba = start; lba < start + count; ++lba) {
    const Chs chs = expected.ToChs(lba);
    const uint32_t spt = expected.geometry().SectorsPerTrack(chs.cylinder);
    const double want =
        static_cast<double>((expected.SlotOf(chs) + 1) % spt) / spt;
    const double got = MeasureEndAngle(lba, /*repeats=*/4);
    double diff = got - want;
    diff -= std::round(diff);
    if (std::abs(diff) > 3.0 / spt) {
      remapped.push_back(lba);
    }
  }
  return remapped;
}

DiskGeometry ProbeResult::ToGeometry(uint32_t num_cylinders,
                                     uint32_t num_heads, uint32_t rpm,
                                     uint32_t sector_bytes) const {
  DiskGeometry g;
  g.rpm = rpm;
  g.num_cylinders = num_cylinders;
  g.num_heads = num_heads;
  g.sector_bytes = sector_bytes;
  for (const ProbedZone& z : zones) {
    Zone zone;
    zone.first_cylinder = z.first_cylinder;
    zone.sectors_per_track = z.sectors_per_track;
    zone.track_skew = z.track_skew;
    zone.cylinder_skew = z.cylinder_skew;
    g.zones.push_back(zone);
  }
  return g;
}

}  // namespace mimdraid
