// Black-box extraction of the physical disk layout from access timing.
//
// With the rotation period and spindle phase known (RotationEstimator), the
// completion timestamp of any single-sector read reveals the *angular
// position* of that sector: completions land at the instant the sector's slot
// passes under the head. The prober leverages this to recover the full
// address map the way Worthington et al. (SIGMETRICS '95) did on real SCSI
// drives, using nothing but reads:
//
//   * sectors-per-track:   angles of lba and lba+k differ by k/SPT;
//   * track boundaries:    the angle step jumps by the skew;
//   * track/cylinder skew: size of that jump;
//   * zone boundaries:     SPT changes; found by binary search over the LBA
//                          space;
//   * reserved tracks:     the position of cylinder-skew boundaries within
//                          zone 0 reveals how many leading tracks the drive
//                          hides;
//   * spare tracks:        inferred from the requirement that each zone start
//                          on a cylinder boundary.
//
// The prober is given only what a real host can learn cheaply: the LBA count
// (read capacity), the head count (mode page), and the nominal RPM.
#ifndef MIMDRAID_SRC_CALIB_PROBER_H_
#define MIMDRAID_SRC_CALIB_PROBER_H_

#include <cstdint>
#include <vector>

#include "src/calib/sync_disk.h"
#include "src/disk/geometry.h"
#include "src/disk/layout.h"

namespace mimdraid {

struct ProbedZone {
  uint64_t first_lba = 0;
  uint32_t first_cylinder = 0;
  uint32_t sectors_per_track = 0;
  uint32_t track_skew = 0;
  uint32_t cylinder_skew = 0;
  uint32_t num_data_tracks = 0;
  uint32_t inferred_spare_tracks = 0;
};

struct ProbeResult {
  std::vector<ProbedZone> zones;
  uint32_t reserved_tracks = 0;
  uint64_t probes_used = 0;

  // Reconstructs a DiskGeometry from the probed zones (for comparison
  // against the truth in tests, and for building the predictor's layout).
  DiskGeometry ToGeometry(uint32_t num_cylinders, uint32_t num_heads,
                          uint32_t rpm, uint32_t sector_bytes) const;
};

class DiskProber {
 public:
  DiskProber(SyncDisk* disk, uint64_t num_data_sectors, uint32_t num_heads,
             double rotation_us, double phase_us);

  // Runs the full extraction.
  ProbeResult Probe();

  // --- Individually testable primitives. ---

  // Angular position (fraction of a revolution, [0,1)) at which the sector's
  // slot *ends* passing under the head, estimated from `repeats` reads.
  double MeasureEndAngle(uint64_t lba, int repeats = 3);

  struct TrackProbe {
    uint32_t sectors_per_track = 0;
    uint64_t track_start_lba = 0;  // first LBA of a track at/after the probe point
  };

  // Measures the SPT of the region around lba0 and locates an exact track
  // boundary. lba0 must leave ~4 tracks of margin before the end of the disk.
  TrackProbe MeasureSptAt(uint64_t lba0);

  // Defect scan: LBAs in [start, start+count) whose measured angular position
  // disagrees with the expected layout by more than ~3 slots — i.e. sectors
  // the drive has remapped to a spare location. `expected` is the address map
  // recovered by Probe() (or the vendor's). Limitation: a remap whose spare
  // slot happens to be angle-coincident with the natural position (within the
  // threshold) escapes a purely angular scan.
  std::vector<uint64_t> FindRemappedSectors(const DiskLayout& expected,
                                            uint64_t start, uint64_t count);

 private:
  // First LBA of the zone after the one containing `lba_in_left_zone`
  // (whose SPT is `spt_left`), or num_sectors if none.
  uint64_t FindNextZoneBoundary(uint64_t lba_in_left_zone, uint32_t spt_left);

  // Exact boundary refinement: walks track-by-track from just left of
  // `approx` until the SPT changes.
  uint64_t RefineZoneBoundary(uint64_t approx, uint32_t spt_left);

  double SpindleAngleAt(double t_us) const;

  SyncDisk* disk_;
  uint64_t num_sectors_;
  uint32_t num_heads_;
  double rotation_us_;
  double phase_us_;
};

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_CALIB_PROBER_H_
