#include "src/calib/rotation_estimator.h"

#include <cmath>

#include "src/util/check.h"

namespace mimdraid {

RotationEstimator::RotationEstimator(double nominal_rotation_us)
    : nominal_rotation_us_(nominal_rotation_us),
      rotation_us_(nominal_rotation_us) {
  MIMDRAID_CHECK_GT(nominal_rotation_us, 0.0);
}

void RotationEstimator::AddObservation(SimTime completion_us) {
  const double t = static_cast<double>(completion_us.us());
  double k = 0.0;
  if (!observations_.empty()) {
    const auto& [k_prev, t_prev] = observations_.back();
    MIMDRAID_CHECK_GE(t, t_prev);
    // Revolution count relative to the previous observation, rounded against
    // the current period estimate.
    k = k_prev + std::round((t - t_prev) / rotation_us_);
  }
  observations_.emplace_back(k, t);
  Refit();
}

void RotationEstimator::Refit() {
  if (observations_.size() < 2) {
    phase_us_ = observations_.empty() ? 0.0 : observations_[0].second;
    return;
  }
  // Least squares for t = phase + R * k. Center k for numerical stability.
  double k_mean = 0.0;
  double t_mean = 0.0;
  for (const auto& [k, t] : observations_) {
    k_mean += k;
    t_mean += t;
  }
  const double n = static_cast<double>(observations_.size());
  k_mean /= n;
  t_mean /= n;
  double num = 0.0;
  double den = 0.0;
  for (const auto& [k, t] : observations_) {
    num += (k - k_mean) * (t - t_mean);
    den += (k - k_mean) * (k - k_mean);
  }
  if (den <= 0.0) {
    return;  // all observations in the same revolution; keep current estimate
  }
  const double r = num / den;
  // Reject absurd fits (e.g. aliasing from a bad early rounding) by keeping
  // the estimate within 1% of nominal.
  if (std::abs(r - nominal_rotation_us_) / nominal_rotation_us_ < 0.01) {
    rotation_us_ = r;
  }
  phase_us_ = t_mean - rotation_us_ * k_mean;
}

double RotationEstimator::ResidualRmsUs() const {
  if (observations_.size() < 2) {
    return 0.0;
  }
  double ss = 0.0;
  for (const auto& [k, t] : observations_) {
    const double r = t - (phase_us_ + rotation_us_ * k);
    ss += r * r;
  }
  return std::sqrt(ss / static_cast<double>(observations_.size()));
}

void RotationEstimator::TrimTo(size_t keep) {
  if (observations_.size() <= keep) {
    return;
  }
  observations_.erase(observations_.begin(),
                      observations_.end() - static_cast<ptrdiff_t>(keep));
  Refit();
}

}  // namespace mimdraid
