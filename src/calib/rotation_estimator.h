// Spindle phase and rotation-period estimation from reference-sector reads.
//
// The paper's key observation (Section 3.2): the time between two reads of a
// fixed reference sector is always an integral multiple of the rotation time
// plus an unpredictable OS/SCSI overhead. Completion timestamps of reference
// reads therefore lie (up to timestamping jitter) on the lattice
//
//     t_i  =  phase + k_i * R
//
// where R is the true rotation period and k_i the (unknown) revolution count.
// We recover k_i incrementally — rounding against the current estimate, which
// is safe as long as accumulated drift between observations stays under R/2 —
// and then least-squares fit (k_i, t_i) for R and phase. Growing the interval
// between reads amortizes the probing overhead while extending the lever arm
// of the fit, exactly the "gradually increasing the time interval" scheme in
// the paper.
#ifndef MIMDRAID_SRC_CALIB_ROTATION_ESTIMATOR_H_
#define MIMDRAID_SRC_CALIB_ROTATION_ESTIMATOR_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/util/time.h"

namespace mimdraid {

class RotationEstimator {
 public:
  // `nominal_rotation_us` seeds the revolution-count rounding (from the
  // drive's advertised RPM).
  explicit RotationEstimator(double nominal_rotation_us);

  // Adds a reference-read completion timestamp. Timestamps must be
  // non-decreasing.
  void AddObservation(SimTime completion_us);

  // True once enough observations exist for a fit (>= 3).
  bool Ready() const { return observations_.size() >= 3; }

  // Estimated rotation period (falls back to nominal until Ready()).
  double rotation_us() const { return rotation_us_; }

  // Estimated lattice phase: the model's predicted completion times are
  // phase_us() + k * rotation_us(). Includes the mean timestamping delay,
  // which cancels when predictions are compared against observed timestamps.
  double phase_us() const { return phase_us_; }

  // RMS residual of observations against the fitted lattice (µs); a health
  // indicator for tests and the feedback loop.
  double ResidualRmsUs() const;

  size_t num_observations() const { return observations_.size(); }

  // Drops all but the most recent `keep` observations. Periodic
  // re-calibration keeps a bounded window so stale samples (taken when the
  // estimate of R was worse) do not dominate.
  void TrimTo(size_t keep);

 private:
  void Refit();

  double nominal_rotation_us_;
  double rotation_us_;
  double phase_us_ = 0.0;
  // (revolution index, completion time) pairs.
  std::vector<std::pair<double, double>> observations_;
};

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_CALIB_ROTATION_ESTIMATOR_H_
