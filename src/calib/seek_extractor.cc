#include "src/calib/seek_extractor.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace mimdraid {
namespace {

// Solves the 3x3 linear system a*x = b by Gaussian elimination with partial
// pivoting. Returns false if singular.
bool Solve3x3(double a[3][3], double b[3], double x[3]) {
  int perm[3] = {0, 1, 2};
  for (int col = 0; col < 3; ++col) {
    int pivot = col;
    for (int r = col + 1; r < 3; ++r) {
      if (std::abs(a[perm[r]][col]) > std::abs(a[perm[pivot]][col])) {
        pivot = r;
      }
    }
    std::swap(perm[col], perm[pivot]);
    const double p = a[perm[col]][col];
    if (std::abs(p) < 1e-12) {
      return false;
    }
    for (int r = col + 1; r < 3; ++r) {
      const double f = a[perm[r]][col] / p;
      for (int c = col; c < 3; ++c) {
        a[perm[r]][c] -= f * a[perm[col]][c];
      }
      b[perm[r]] -= f * b[perm[col]];
    }
  }
  for (int col = 2; col >= 0; --col) {
    double s = b[perm[col]];
    for (int c = col + 1; c < 3; ++c) {
      s -= a[perm[col]][c] * x[c];
    }
    x[col] = s / a[perm[col]][col];
  }
  return true;
}

double Median(std::vector<double> v) {
  MIMDRAID_CHECK(!v.empty());
  std::sort(v.begin(), v.end());
  const size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

}  // namespace

SeekProfile FitSeekProfile(
    const std::vector<std::pair<uint32_t, double>>& samples,
    double head_switch_us, double write_settle_us) {
  MIMDRAID_CHECK_GE(samples.size(), 5u);
  // Model, continuous at boundary `bd`:
  //   d <  bd:  t = a + b*sqrt(d)
  //   d >= bd:  t = a + b*sqrt(bd) + e*(d - bd)
  // For a fixed bd this is linear in (a, b, e); search bd over the sample
  // distances and keep the fit with the lowest SSE.
  double best_sse = std::numeric_limits<double>::infinity();
  double best_a = 0.0;
  double best_b = 0.0;
  double best_e = 0.0;
  uint32_t best_bd = samples.back().first;

  for (const auto& [bd_candidate, unused] : samples) {
    (void)unused;
    const double bd = static_cast<double>(bd_candidate);
    if (bd < 2.0) {
      continue;
    }
    // Require at least 3 samples on each side for a stable fit.
    int n_short = 0;
    int n_long = 0;
    for (const auto& [d, t] : samples) {
      (void)t;
      (d < bd_candidate ? n_short : n_long)++;
    }
    if (n_short < 3 || n_long < 2) {
      continue;
    }
    double ata[3][3] = {{0, 0, 0}, {0, 0, 0}, {0, 0, 0}};
    double atb[3] = {0, 0, 0};
    const double sqrt_bd = std::sqrt(bd);
    for (const auto& [d, t] : samples) {
      const double basis[3] = {
          1.0,
          d < bd_candidate ? std::sqrt(static_cast<double>(d)) : sqrt_bd,
          d < bd_candidate ? 0.0 : static_cast<double>(d) - bd,
      };
      for (int i = 0; i < 3; ++i) {
        for (int j = 0; j < 3; ++j) {
          ata[i][j] += basis[i] * basis[j];
        }
        atb[i] += basis[i] * t;
      }
    }
    double x[3];
    if (!Solve3x3(ata, atb, x)) {
      continue;
    }
    if (x[1] < 0.0 || x[2] < 0.0) {
      continue;  // non-monotone fit
    }
    double sse = 0.0;
    for (const auto& [d, t] : samples) {
      const double pred =
          d < bd_candidate
              ? x[0] + x[1] * std::sqrt(static_cast<double>(d))
              : x[0] + x[1] * sqrt_bd + x[2] * (static_cast<double>(d) - bd);
      sse += (t - pred) * (t - pred);
    }
    if (sse < best_sse) {
      best_sse = sse;
      best_a = x[0];
      best_b = x[1];
      best_e = x[2];
      best_bd = bd_candidate;
    }
  }
  MIMDRAID_CHECK(best_sse < std::numeric_limits<double>::infinity());

  SeekProfile p;
  p.short_a_us = std::max(best_a, 0.0);
  p.short_b_us = best_b;
  p.boundary_cylinders = best_bd;
  p.long_b_us = best_e;
  p.long_a_us = p.short_a_us + p.short_b_us * std::sqrt(static_cast<double>(best_bd)) -
                p.long_b_us * static_cast<double>(best_bd);
  p.head_switch_us = head_switch_us;
  p.write_settle_us = write_settle_us;
  return p;
}

SeekCurveExtractor::SeekCurveExtractor(SyncDisk* disk, const DiskLayout* layout,
                                       double rotation_us, double phase_us)
    : disk_(disk),
      layout_(layout),
      rotation_us_(rotation_us),
      phase_us_(phase_us),
      rng_(0xca11b8a7eULL) {
  MIMDRAID_CHECK_GT(rotation_us, 0.0);
}

double SeekCurveExtractor::SpindleAngleAt(double t_us) const {
  const double revs = (t_us - phase_us_) / rotation_us_;
  double frac = revs - std::floor(revs);
  if (frac >= 1.0) {
    frac -= 1.0;
  }
  return frac;
}

void SeekCurveExtractor::ParkAt(uint32_t cylinder) {
  const DiskGeometry& geo = layout_->geometry();
  for (uint32_t h = 0; h < geo.num_heads; ++h) {
    const uint64_t lba = layout_->ToLba(Chs{cylinder, h, 0});
    if (lba != kInvalidLba) {
      disk_->Read(lba, 1);
      return;
    }
  }
  MIMDRAID_CHECK(false);  // no data track on this cylinder
}

bool SeekCurveExtractor::ProbeFits(uint32_t from_cylinder,
                                   uint32_t to_cylinder, uint32_t head,
                                   bool is_write, double guess_us) {
  ParkAt(from_cylinder);
  const DiskGeometry& geo = layout_->geometry();
  const uint32_t spt = geo.SectorsPerTrack(to_cylinder);
  const double slot_us = rotation_us_ / spt;

  const double t_issue = static_cast<double>(disk_->sim().Now().us());
  // Find a sector on the target track whose slot starts just after
  // t_issue + guess, skipping any positions without a natural LBA.
  double target_angle = SpindleAngleAt(t_issue + guess_us);
  uint64_t lba = kInvalidLba;
  for (uint32_t attempt = 0; attempt < spt; ++attempt) {
    lba = layout_->LbaForAngle(to_cylinder, head, target_angle);
    if (lba != kInvalidLba) {
      break;
    }
    target_angle += 1.0 / spt;
    if (target_angle >= 1.0) {
      target_angle -= 1.0;
    }
  }
  MIMDRAID_CHECK_NE(lba, kInvalidLba);

  // Predicted completion if the drive makes the chosen passage.
  const Chs chs = layout_->ToChs(lba);
  const double slot_angle = layout_->AngleOf(chs);
  double wait = slot_angle - SpindleAngleAt(t_issue + guess_us);
  wait -= std::floor(wait);
  const double predicted_completion =
      t_issue + guess_us + wait * rotation_us_ + slot_us;

  const DiskOpResult result =
      disk_->Access(is_write ? DiskOp::kWrite : DiskOp::kRead, lba, 1);
  const double extra_revs = std::round(
      (static_cast<double>(result.completion_us.us()) - predicted_completion) /
      rotation_us_);
  return extra_revs <= 0.0;
}

double SeekCurveExtractor::MeasureSeekUs(uint32_t from_cylinder,
                                         uint32_t to_cylinder, bool is_write,
                                         const SeekExtractionOptions& options) {
  std::vector<double> estimates;
  for (int s = 0; s < options.searches_per_distance; ++s) {
    double lo = 0.0;
    double hi = options.max_seek_us;
    for (int i = 0; i < options.binary_search_iterations; ++i) {
      const double mid = 0.5 * (lo + hi);
      if (ProbeFits(from_cylinder, to_cylinder, /*head=*/0, is_write, mid)) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    estimates.push_back(0.5 * (lo + hi));
  }
  return Median(std::move(estimates));
}

double SeekCurveExtractor::MeasureHeadSwitchUs(
    const SeekExtractionOptions& options) {
  const DiskGeometry& geo = layout_->geometry();
  // A cylinder safely inside the data area with at least two data tracks.
  const uint32_t cyl = layout_->first_data_cylinder() + 2;
  MIMDRAID_CHECK_GE(geo.num_heads, 2u);
  std::vector<double> estimates;
  for (int s = 0; s < options.searches_per_distance; ++s) {
    double lo = 0.0;
    double hi = options.max_seek_us;
    for (int i = 0; i < options.binary_search_iterations; ++i) {
      const double mid = 0.5 * (lo + hi);
      if (ProbeFits(cyl, cyl, /*head=*/1, /*is_write=*/false, mid)) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    estimates.push_back(0.5 * (lo + hi));
  }
  return Median(std::move(estimates));
}

SeekProfile SeekCurveExtractor::ExtractProfile(
    const SeekExtractionOptions& options) {
  const DiskGeometry& geo = layout_->geometry();
  const uint32_t first_cyl = layout_->first_data_cylinder();
  const uint32_t max_dist = geo.num_cylinders - 1 - first_cyl;
  MIMDRAID_CHECK_GT(max_dist, 8u);

  // Log-spaced distances over the stroke, deduplicated.
  std::vector<uint32_t> distances;
  const double log_max = std::log(static_cast<double>(max_dist));
  for (int i = 0; i < options.num_distances; ++i) {
    const double f = static_cast<double>(i) / (options.num_distances - 1);
    const uint32_t d = static_cast<uint32_t>(std::round(std::exp(f * log_max)));
    if (distances.empty() || d > distances.back()) {
      distances.push_back(std::max(d, 1u));
    }
  }

  std::vector<std::pair<uint32_t, double>> read_samples;
  std::vector<double> write_deltas;
  int write_probe_stride = std::max<size_t>(1, distances.size() / 5);
  for (size_t i = 0; i < distances.size(); ++i) {
    const uint32_t d = distances[i];
    const uint32_t from = first_cyl + static_cast<uint32_t>(rng_.UniformU64(
                                          max_dist - d + 1));
    const double read_us = MeasureSeekUs(from, from + d, /*is_write=*/false,
                                         options);
    read_samples.emplace_back(d, read_us);
    if (i % static_cast<size_t>(write_probe_stride) == 0) {
      const double write_us = MeasureSeekUs(from, from + d, /*is_write=*/true,
                                            options);
      write_deltas.push_back(write_us - read_us);
    }
  }
  const double head_switch = MeasureHeadSwitchUs(options);
  const double write_settle = std::max(0.0, Median(std::move(write_deltas)));
  return FitSeekProfile(read_samples, head_switch, write_settle);
}

}  // namespace mimdraid
