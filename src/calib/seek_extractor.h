// Seek-curve extraction from a black-box disk.
//
// With the spindle phase and rotation period known (RotationEstimator), every
// completion timestamp pins the access to a specific slot passage. That turns
// seek-time measurement into a threshold test: position the arm at cylinder
// c, then request a sector on cylinder c±d whose slot passes at
// (issue + guess). If the completion lands on that passage, the seek (plus
// request overhead) fit within the guess; otherwise the drive caught a later
// revolution. Binary search over the guess converges on the seek time without
// any hardware support — the same timestamps-only discipline as the paper's
// Section 3.2.
//
// The extracted times deliberately *include* the mean pre-access request
// overhead: the predictor that consumes this profile predicts completion
// timestamps, for which effective (overhead-inclusive) seek times are exactly
// the right quantity.
#ifndef MIMDRAID_SRC_CALIB_SEEK_EXTRACTOR_H_
#define MIMDRAID_SRC_CALIB_SEEK_EXTRACTOR_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/calib/sync_disk.h"
#include "src/disk/layout.h"
#include "src/disk/seek_profile.h"
#include "src/util/rng.h"

namespace mimdraid {

struct SeekExtractionOptions {
  // Number of cylinder distances sampled (log-spaced over the stroke).
  int num_distances = 20;
  // Independent binary searches per distance; the median is kept.
  int searches_per_distance = 3;
  // Binary-search iterations (precision = max_seek_us / 2^iterations).
  int binary_search_iterations = 11;
  double max_seek_us = 25000.0;
  uint64_t seed = 0x5eecULL;
};

// Fits a two-regime (sqrt / linear) SeekProfile to (distance, seek_us)
// samples, constrained to be continuous at the boundary. `head_switch_us`
// and `write_settle_us` pass through to the profile.
SeekProfile FitSeekProfile(const std::vector<std::pair<uint32_t, double>>& samples,
                           double head_switch_us, double write_settle_us);

class SeekCurveExtractor {
 public:
  // `layout` is the address map previously recovered by DiskProber (verified
  // to match the drive); `rotation_us`/`phase_us` come from the
  // RotationEstimator.
  SeekCurveExtractor(SyncDisk* disk, const DiskLayout* layout,
                     double rotation_us, double phase_us);

  // Effective (overhead-inclusive) seek time for one cylinder distance.
  double MeasureSeekUs(uint32_t from_cylinder, uint32_t to_cylinder,
                       bool is_write, const SeekExtractionOptions& options);

  // Effective head-switch time (same cylinder, adjacent head).
  double MeasureHeadSwitchUs(const SeekExtractionOptions& options);

  // Runs the full pipeline: samples distances, measures read and write seeks
  // and the head switch, and fits a profile.
  SeekProfile ExtractProfile(const SeekExtractionOptions& options);

 private:
  // One threshold probe: with the arm parked at `from`, does an access to a
  // sector on `to` whose slot passes `guess_us` after issue complete on that
  // passage? Returns true if the drive made the passage.
  bool ProbeFits(uint32_t from_cylinder, uint32_t to_cylinder, uint32_t head,
                 bool is_write, double guess_us);

  // Parks the arm on (cylinder, head 0 data track) and returns.
  void ParkAt(uint32_t cylinder);

  double SpindleAngleAt(double t_us) const;

  SyncDisk* disk_;
  const DiskLayout* layout_;
  double rotation_us_;
  double phase_us_;
  Rng rng_;
};

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_CALIB_SEEK_EXTRACTOR_H_
