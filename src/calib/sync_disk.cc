#include "src/calib/sync_disk.h"

#include "src/util/check.h"

namespace mimdraid {

DiskOpResult SyncDisk::Access(DiskOp op, uint64_t lba, uint32_t sectors) {
  MIMDRAID_CHECK(!disk_->busy());
  bool done = false;
  DiskOpResult result;
  disk_->Start(op, BlockAddr(lba), sectors,
               [&done, &result](const DiskOpResult& r) {
    result = r;
    done = true;
  });
  ++probes_issued_;
  while (!done) {
    MIMDRAID_CHECK(sim_->Step());
  }
  return result;
}

void SyncDisk::Sleep(SimDuration duration_us) {
  sim_->RunUntil(sim_->Now() + duration_us);
}

}  // namespace mimdraid
