// Synchronous access to a SimDisk for calibration-time probing.
//
// Calibration happens offline (before the workload starts), so probes can
// simply drive the simulator until each access completes. This mirrors how
// the real calibration tool owns the raw device exclusively.
#ifndef MIMDRAID_SRC_CALIB_SYNC_DISK_H_
#define MIMDRAID_SRC_CALIB_SYNC_DISK_H_

#include <cstdint>

#include "src/disk/sim_disk.h"
#include "src/sim/simulator.h"

namespace mimdraid {

class SyncDisk {
 public:
  SyncDisk(Simulator* sim, SimDisk* disk) : sim_(sim), disk_(disk) {}

  // Issues the access and runs the simulator until it completes.
  DiskOpResult Access(DiskOp op, uint64_t lba, uint32_t sectors = 1);

  DiskOpResult Read(uint64_t lba, uint32_t sectors = 1) {
    return Access(DiskOp::kRead, lba, sectors);
  }

  // Advances simulated time (the pause between probe batches).
  void Sleep(SimDuration duration_us);

  SimDisk& disk() { return *disk_; }
  Simulator& sim() { return *sim_; }

  uint64_t probes_issued() const { return probes_issued_; }

 private:
  Simulator* sim_;
  SimDisk* disk_;
  uint64_t probes_issued_ = 0;
};

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_CALIB_SYNC_DISK_H_
