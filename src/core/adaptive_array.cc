#include "src/core/adaptive_array.h"

#include <utility>

#include "src/util/check.h"

namespace mimdraid {

AdaptiveArray::AdaptiveArray(const AdaptiveArrayOptions& options)
    : options_(options),
      array_(std::make_unique<MimdRaid>(options.base)),
      monitor_(options.base.dataset_sectors, options.monitor_window),
      advisor_(ModelParamsForDataset(array_->disk(0).geometry(),
                                     options.base.profile,
                                     options.base.dataset_sectors),
               options.advisor),
      disk_params_(ModelParamsForDataset(array_->disk(0).geometry(),
                                         options.base.profile,
                                         options.base.dataset_sectors)) {}

SubmitFn AdaptiveArray::Submitter() {
  return [this](DiskOp op, uint64_t lba, uint32_t sectors, IoDoneFn done) {
    monitor_.OnSubmit(op, lba, sectors, array_->sim().Now());
    array_->controller().Submit(
        op, lba, sectors,
        [this, done = std::move(done)](const IoResult& r) {
          monitor_.OnComplete(array_->sim().Now());
          done(r);
        });
  };
}

Advice AdaptiveArray::Adapt() {
  const int disks = static_cast<int>(array_->num_disks());
  // Rough service-time scale for the utilization estimate: the model's
  // prediction for the current shape plus overheads.
  const WorkloadProfile rough = monitor_.Snapshot(disks, 5000.0);
  const Advice advice =
      advisor_.Evaluate(array_->options().aspect, rough);
  if (!advice.reconfigure) {
    return advice;
  }
  const MigrationEstimate est =
      EstimateMigration(advice, array_->options().dataset_sectors,
                        rough.io_per_s, options_.migration_mb_per_s);
  if (est.migration_seconds > options_.max_migration_seconds) {
    Advice declined = advice;
    declined.reconfigure = false;
    return declined;
  }
  ReshapeEvent event;
  event.at_us = array_->sim().Now();
  event.from = advice.current;
  event.to = advice.recommended;
  event.predicted_gain = advice.predicted_gain;
  event.migration_seconds = est.migration_seconds;
  reshapes_.push_back(event);
  array_->Reshape(advice.recommended, UsFromSeconds(est.migration_seconds));
  return advice;
}

}  // namespace mimdraid
