// AdaptiveArray: the closed loop of monitor -> advisor -> reshape.
//
// Wraps a MimdRaid, taps its request stream through a WorkloadMonitor, and on
// demand consults the ReconfigurationAdvisor; when the predicted gain clears
// the threshold, the array is re-shaped (offline migration whose duration
// comes from the MigrationPlanner estimate). This implements the dynamic
// tuning the paper defers to future work (Section 5, the Ivy discussion).
#ifndef MIMDRAID_SRC_CORE_ADAPTIVE_ARRAY_H_
#define MIMDRAID_SRC_CORE_ADAPTIVE_ARRAY_H_

#include <memory>
#include <vector>

#include "src/adapt/advisor.h"
#include "src/adapt/workload_monitor.h"
#include "src/core/experiment.h"
#include "src/core/mimd_raid.h"

namespace mimdraid {

struct AdaptiveArrayOptions {
  MimdRaidOptions base;
  AdvisorOptions advisor;
  // Copy bandwidth available for a re-layout.
  double migration_mb_per_s = 20.0;
  // Requests the monitor's profile window covers; smaller windows react to
  // phase changes faster.
  size_t monitor_window = 4096;
  // Refuse reconfigurations whose migration would take longer than this.
  double max_migration_seconds = 24 * 3600.0;
};

struct ReshapeEvent {
  SimTime at_us;
  ArrayAspect from;
  ArrayAspect to;
  double predicted_gain = 1.0;
  double migration_seconds = 0.0;
};

class AdaptiveArray {
 public:
  explicit AdaptiveArray(const AdaptiveArrayOptions& options);

  MimdRaid& array() { return *array_; }
  Simulator& sim() { return array_->sim(); }
  const WorkloadMonitor& monitor() const { return monitor_; }
  const std::vector<ReshapeEvent>& reshapes() const { return reshapes_; }

  // Submit function that taps the monitor and forwards to the array.
  SubmitFn Submitter();

  // Consults the advisor on the current window; re-shapes if worthwhile.
  // Returns the advice either way. Quiesces the array when re-shaping.
  Advice Adapt();

 private:
  AdaptiveArrayOptions options_;
  std::unique_ptr<MimdRaid> array_;
  WorkloadMonitor monitor_;
  ReconfigurationAdvisor advisor_;
  ModelDiskParams disk_params_;
  std::vector<ReshapeEvent> reshapes_;
};

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_CORE_ADAPTIVE_ARRAY_H_
