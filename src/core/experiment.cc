#include "src/core/experiment.h"

#include <memory>

#include "src/array/placement.h"
#include "src/util/check.h"

namespace mimdraid {

ModelDiskParams ModelParamsForDataset(const DiskGeometry& geometry,
                                      const SeekProfile& profile,
                                      uint64_t dataset_sectors) {
  // Span the dataset would cover on a single unreplicated disk.
  DiskLayout layout(&geometry);
  SrDiskPlacement placement(&layout, /*dr=*/1);
  const uint64_t capped =
      std::min(dataset_sectors, placement.capacity_sectors());
  ModelDiskParams p;
  const uint32_t span = placement.CylinderSpan(capped);
  p.max_seek_us = profile.SeekUs(std::max(span, 1u), /*is_write=*/false);
  p.rotation_us = static_cast<double>(geometry.RotationUs().us());
  return p;
}

RunResult RunTraceOnArray(MimdRaid& array, const Trace& trace,
                          const TracePlayerOptions& options) {
  TracePlayer player(&array.sim(), &trace, array.Submitter(), options);
  return player.Run();
}

RunResult RunClosedLoopOnArray(MimdRaid& array, ClosedLoopOptions options) {
  if (options.dataset_sectors == 0) {
    options.dataset_sectors = array.layout().dataset_sectors();
  }
  ClosedLoopDriver driver(&array.sim(), array.Submitter(), options);
  return driver.Run();
}

RunResult RunTraceWithCache(MimdRaid& array, const Trace& trace,
                            uint64_t cache_bytes, double hit_latency_us,
                            const TracePlayerOptions& options) {
  auto cache = std::make_shared<LruBlockCache>(cache_bytes,
                                               /*block_sectors=*/16);
  Simulator* sim = &array.sim();
  SubmitFn backend = array.Submitter();
  SubmitFn cached = [sim, cache, backend, hit_latency_us](
                        DiskOp op, uint64_t lba, uint32_t sectors,
                        IoDoneFn done) {
    if (op == DiskOp::kRead && cache->Lookup(lba, sectors)) {
      sim->ScheduleAfter(SimDuration(static_cast<int64_t>(hit_latency_us)),
                         [sim, done = std::move(done)]() {
                           IoResult hit;
                           hit.completion_us = sim->Now();
                           done(hit);
                         });
      return;
    }
    backend(op, lba, sectors,
            [cache, lba, sectors, done = std::move(done)](const IoResult& r) {
              // Only data that actually arrived populates the cache.
              if (r.status == IoStatus::kOk) {
                cache->Insert(lba, sectors);
              }
              done(r);
            });
  };
  TracePlayer player(sim, &trace, std::move(cached), options);
  return player.Run();
}

}  // namespace mimdraid
