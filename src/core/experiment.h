// Experiment helpers shared by benchmarks, examples, and tests.
#ifndef MIMDRAID_SRC_CORE_EXPERIMENT_H_
#define MIMDRAID_SRC_CORE_EXPERIMENT_H_

#include <cstdint>

#include "src/cache/lru_cache.h"
#include "src/core/mimd_raid.h"
#include "src/workload/drivers.h"
#include "src/model/disk_params.h"
#include "src/workload/trace.h"

namespace mimdraid {

ModelDiskParams ModelParamsForDataset(const DiskGeometry& geometry,
                                      const SeekProfile& profile,
                                      uint64_t dataset_sectors);

// Replays `trace` against the array and reports latency/throughput.
RunResult RunTraceOnArray(MimdRaid& array, const Trace& trace,
                          const TracePlayerOptions& options = {});

// Runs the Iometer-style closed loop against the array.
RunResult RunClosedLoopOnArray(MimdRaid& array, ClosedLoopOptions options);

// Replays `trace` with an LRU memory cache in front of the array (Figure 11).
// Cache hits cost `hit_latency_us`; misses and all writes go to the array.
RunResult RunTraceWithCache(MimdRaid& array, const Trace& trace,
                            uint64_t cache_bytes, double hit_latency_us = 50.0,
                            const TracePlayerOptions& options = {});

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_CORE_EXPERIMENT_H_
