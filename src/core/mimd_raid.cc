#include "src/core/mimd_raid.h"

#include <utility>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace mimdraid {

MimdRaid::MimdRaid(const MimdRaidOptions& options) : options_(options) {
  if (options_.geometry.zones.empty()) {
    options_.geometry = MakeSt39133Geometry();
  }
  MIMDRAID_CHECK(options_.geometry.Valid());
  const int d = options_.aspect.TotalDisks();
  MIMDRAID_CHECK_GE(d, 1);

  Rng rng(options_.seed);
  const double rotation_nominal =
      static_cast<double>(options_.geometry.RotationUs());
  for (int i = 0; i < d; ++i) {
    const double phase =
        options_.synchronized_spindles
            ? 0.0
            : rng.UniformDouble() * rotation_nominal;
    const double tolerance = options_.rotation_tolerance_ppm * 1e-6;
    const double rotation =
        rotation_nominal * (1.0 + rng.UniformDouble(-tolerance, tolerance));
    disks_.push_back(std::make_unique<SimDisk>(
        &sim_, options_.geometry, options_.profile, options_.noise,
        rng.Next(), phase, rotation));
  }

  if (options_.use_oracle_predictor) {
    double slack = options_.oracle_slack_us;
    if (slack < 0.0) {
      const bool noisy = options_.noise.overhead_stddev_us > 0.0 ||
                         options_.noise.hiccup_prob > 0.0;
      slack = noisy ? 450.0 : 0.0;
    }
    for (auto& disk : disks_) {
      predictors_.push_back(
          std::make_unique<OraclePredictor>(disk.get(), slack));
    }
  } else {
    // Extract the seek profile once (homogeneous drives), then run the cheap
    // phase-only calibration per disk.
    CalibrationOptions full = options_.calibration;
    full.extract_seek_profile = true;
    const CalibrationResult shared =
        CalibrateDisk(&sim_, disks_[0].get(), full);
    CalibrationOptions phase_only = options_.calibration;
    phase_only.extract_seek_profile = false;
    phase_only.probe_layout = false;
    for (auto& disk : disks_) {
      predictors_.push_back(MakeCalibratedPredictor(
          &sim_, disk.get(), phase_only, &shared.profile, options_.slack));
    }
  }

  layout_ = std::make_unique<ArrayLayout>(
      &disks_[0]->layout(), options_.aspect, options_.stripe_unit_sectors,
      options_.dataset_sectors, options_.placement_mode);

  std::vector<SimDisk*> disk_ptrs;
  std::vector<AccessPredictor*> pred_ptrs;
  for (size_t i = 0; i < disks_.size(); ++i) {
    disk_ptrs.push_back(disks_[i].get());
    pred_ptrs.push_back(predictors_[i].get());
  }
  ArrayControllerOptions copts;
  copts.scheduler = options_.scheduler;
  copts.max_scan = options_.max_scan;
  copts.delayed_table_limit = options_.delayed_table_limit;
  copts.recalibration_interval_us = options_.recalibration_interval_us;
  copts.foreground_write_propagation = options_.foreground_write_propagation;
  controller_ = std::make_unique<ArrayController>(
      &sim_, std::move(disk_ptrs), std::move(pred_ptrs), layout_.get(), copts);
}

void MimdRaid::Reshape(const ArrayAspect& aspect, SimTime migration_us) {
  MIMDRAID_CHECK_EQ(static_cast<size_t>(aspect.TotalDisks()), disks_.size());
  MIMDRAID_CHECK_GE(migration_us, 0);
  // Quiesce: all foreground work and background propagation must finish
  // before the old controller (and its callbacks) can be torn down.
  while (!controller_->Idle()) {
    MIMDRAID_CHECK(sim_.Step());
  }
  controller_.reset();
  sim_.RunUntil(sim_.Now() + migration_us);

  options_.aspect = aspect;
  layout_ = std::make_unique<ArrayLayout>(
      &disks_[0]->layout(), options_.aspect, options_.stripe_unit_sectors,
      options_.dataset_sectors, options_.placement_mode);
  std::vector<SimDisk*> disk_ptrs;
  std::vector<AccessPredictor*> pred_ptrs;
  for (size_t i = 0; i < disks_.size(); ++i) {
    disk_ptrs.push_back(disks_[i].get());
    pred_ptrs.push_back(predictors_[i].get());
  }
  ArrayControllerOptions copts;
  copts.scheduler = options_.scheduler;
  copts.max_scan = options_.max_scan;
  copts.delayed_table_limit = options_.delayed_table_limit;
  copts.recalibration_interval_us = options_.recalibration_interval_us;
  copts.foreground_write_propagation = options_.foreground_write_propagation;
  controller_ = std::make_unique<ArrayController>(
      &sim_, std::move(disk_ptrs), std::move(pred_ptrs), layout_.get(), copts);
}

SubmitFn MimdRaid::Submitter() {
  return [this](DiskOp op, uint64_t lba, uint32_t sectors, IoDoneFn done) {
    controller_->Submit(op, lba, sectors, std::move(done));
  };
}

}  // namespace mimdraid
