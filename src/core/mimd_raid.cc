#include "src/core/mimd_raid.h"

#include <utility>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace mimdraid {

MimdRaid::MimdRaid(const MimdRaidOptions& options) : options_(options) {
  const int d = options_.aspect.TotalDisks();
  MIMDRAID_CHECK_GE(d, 1);
  const int total_drives = d + static_cast<int>(options_.hot_spares);
  if (options_.fleet.empty()) {
    // Homogeneous fleet synthesized from the single-drive-model options.
    if (options_.geometry.zones.empty()) {
      options_.geometry = MakeSt39133Geometry();
    }
    MIMDRAID_CHECK(options_.geometry.Valid());
    options_.fleet = MakeHomogeneousFleet("default", options_.geometry,
                                          options_.profile, options_.noise);
  }
  MIMDRAID_CHECK(options_.fleet.Valid());
  MIMDRAID_CHECK(options_.fleet.slot_generation.empty() ||
                 options_.fleet.slot_generation.size() ==
                     static_cast<size_t>(total_drives));

  if (options_.enable_fault_injection || options_.hot_spares > 0) {
    FaultInjectorOptions fopts = options_.fault;
    if (fopts.seed == FaultInjectorOptions{}.seed) {
      fopts.seed = options_.seed;
    }
    injector_ = std::make_unique<FaultInjector>(fopts);
  }

  Rng rng(options_.seed);
  for (int i = 0; i < total_drives; ++i) {
    const DriveParams& model =
        options_.fleet.generations[options_.fleet.GenerationFor(i)];
    const double rotation_nominal =
        static_cast<double>(model.geometry.RotationUs().us());
    const double phase =
        options_.synchronized_spindles
            ? 0.0
            : rng.UniformDouble() * rotation_nominal;
    const double tolerance = options_.rotation_tolerance_ppm * 1e-6;
    const double rotation =
        rotation_nominal * (1.0 + rng.UniformDouble(-tolerance, tolerance));
    auto disk = std::make_unique<SimDisk>(
        &sim_, model.geometry, model.profile, model.noise,
        rng.Next(), phase, rotation);
    if (i < d) {
      disks_.push_back(std::move(disk));
    } else {
      spare_disks_.push_back(std::move(disk));
    }
  }

  if (options_.use_oracle_predictor) {
    double slack = options_.oracle_slack_us;
    if (slack < 0.0) {
      bool noisy = false;
      for (const DriveParams& g : options_.fleet.generations) {
        noisy = noisy || g.noise.overhead_stddev_us > 0.0 ||
                g.noise.hiccup_prob > 0.0;
      }
      slack = noisy ? 450.0 : 0.0;
    }
    for (auto& disk : disks_) {
      predictors_.push_back(
          std::make_unique<OraclePredictor>(disk.get(), slack));
    }
    for (auto& disk : spare_disks_) {
      spare_predictors_.push_back(
          std::make_unique<OraclePredictor>(disk.get(), slack));
    }
  } else {
    // Seek-profile extraction runs once per drive *generation* (identical
    // drives share a full calibration); every disk then runs the cheap
    // phase-only pass against its generation's profile.
    CalibrationOptions full = options_.calibration;
    full.extract_seek_profile = true;
    CalibrationOptions phase_only = options_.calibration;
    phase_only.extract_seek_profile = false;
    phase_only.probe_layout = false;
    std::vector<std::unique_ptr<CalibrationResult>> generation_calib(
        options_.fleet.generations.size());
    const auto calibrated = [&](size_t slot, SimDisk* disk) {
      const uint32_t gen = options_.fleet.GenerationFor(slot);
      if (generation_calib[gen] == nullptr) {
        generation_calib[gen] =
            std::make_unique<CalibrationResult>(CalibrateDisk(&sim_, disk,
                                                              full));
      }
      return MakeCalibratedPredictor(&sim_, disk, phase_only,
                                     &generation_calib[gen]->profile,
                                     options_.slack);
    };
    for (size_t i = 0; i < disks_.size(); ++i) {
      predictors_.push_back(calibrated(i, disks_[i].get()));
    }
    for (size_t i = 0; i < spare_disks_.size(); ++i) {
      spare_predictors_.push_back(
          calibrated(disks_.size() + i, spare_disks_[i].get()));
    }
  }

  BuildBackend();
}

ArrayController& MimdRaid::controller() {
  MIMDRAID_CHECK(controller_ != nullptr);  // mirror backend only
  return *controller_;
}

Raid5Controller& MimdRaid::raid5() {
  MIMDRAID_CHECK(raid5_ != nullptr);  // RAID-5 backend only
  return *raid5_;
}

EcController& MimdRaid::ec() {
  MIMDRAID_CHECK(ec_ != nullptr);  // erasure backend only
  return *ec_;
}

const ArrayLayout& MimdRaid::layout() const {
  MIMDRAID_CHECK(layout_ != nullptr);  // mirror backend only
  return *layout_;
}

const Raid5Layout& MimdRaid::raid5_layout() const {
  MIMDRAID_CHECK(raid5_layout_ != nullptr);  // RAID-5 backend only
  return *raid5_layout_;
}

const EcLayout& MimdRaid::ec_layout() const {
  MIMDRAID_CHECK(ec_layout_ != nullptr);  // erasure backend only
  return *ec_layout_;
}

void MimdRaid::BuildBackend() {
  std::vector<SimDisk*> disk_ptrs;
  std::vector<AccessPredictor*> pred_ptrs;
  for (size_t i = 0; i < disks_.size(); ++i) {
    disk_ptrs.push_back(disks_[i].get());
    pred_ptrs.push_back(predictors_[i].get());
  }
  if (options_.backend == ArrayBackendKind::kMirror) {
    // Every slot maps through its own drive's layout; mixed generations get
    // capacity-weighted striping, identical drives exact round-robin.
    std::vector<const DiskLayout*> disk_layouts;
    disk_layouts.reserve(disks_.size());
    for (const auto& disk : disks_) {
      disk_layouts.push_back(&disk->layout());
    }
    layout_ = std::make_unique<ArrayLayout>(
        std::move(disk_layouts), options_.aspect,
        options_.stripe_unit_sectors, options_.dataset_sectors,
        options_.placement_mode);
    controller_ = std::make_unique<ArrayController>(
        &sim_, std::move(disk_ptrs), std::move(pred_ptrs), layout_.get(),
        ControllerOptions());
    backend_ = controller_.get();
  } else if (options_.backend == ArrayBackendKind::kRaid5) {
    const uint32_t n = static_cast<uint32_t>(disks_.size());
    MIMDRAID_CHECK_GE(n, 3u);
    // The aspect supplies only the disk budget here; replica dimensions are
    // meaningless under parity.
    MIMDRAID_CHECK_EQ(options_.aspect.dr, 1);
    MIMDRAID_CHECK_EQ(options_.aspect.dm, 1);
    const uint64_t unit = options_.stripe_unit_sectors;
    // One disk's worth of parity: size each drive so the N-1 data shares
    // cover the dataset, rounded up to whole stripe units.
    const uint64_t per_data = (options_.dataset_sectors + n - 2) / (n - 1);
    const uint64_t per_disk = (per_data + unit - 1) / unit * unit;
    // RAID-5 stripes symmetrically, so the weakest drive bounds every share.
    for (const auto& disk : disks_) {
      MIMDRAID_CHECK_LE(per_disk, disk->layout().num_data_sectors());
    }
    raid5_layout_ = std::make_unique<Raid5Layout>(
        n, options_.stripe_unit_sectors, per_disk);
    raid5_ = std::make_unique<Raid5Controller>(
        &sim_, std::move(disk_ptrs), std::move(pred_ptrs),
        raid5_layout_.get(), Raid5Options());
    backend_ = raid5_.get();
  } else {
    const uint32_t n = static_cast<uint32_t>(disks_.size());
    MIMDRAID_CHECK_GE(options_.parity_shards, 1u);
    MIMDRAID_CHECK_GT(n, options_.parity_shards);
    // As for RAID-5, the aspect supplies only the disk budget.
    MIMDRAID_CHECK_EQ(options_.aspect.dr, 1);
    MIMDRAID_CHECK_EQ(options_.aspect.dm, 1);
    const uint32_t k = n - options_.parity_shards;
    const uint64_t unit = options_.stripe_unit_sectors;
    // m disks' worth of parity: size each drive so the k data shares cover
    // the dataset, rounded up to whole stripe units.
    const uint64_t per_data = (options_.dataset_sectors + k - 1) / k;
    const uint64_t per_disk = (per_data + unit - 1) / unit * unit;
    // The rotated layout stripes symmetrically, so the weakest drive bounds
    // every share.
    for (const auto& disk : disks_) {
      MIMDRAID_CHECK_LE(per_disk, disk->layout().num_data_sectors());
    }
    ec_layout_ = std::make_unique<EcLayout>(
        n, k, options_.stripe_unit_sectors, per_disk);
    ec_codec_ = std::make_unique<EcCodec>(k, options_.parity_shards);
    ec_ = std::make_unique<EcController>(
        &sim_, std::move(disk_ptrs), std::move(pred_ptrs), ec_layout_.get(),
        ec_codec_.get(), EcOptions());
    backend_ = ec_.get();
  }
  for (size_t i = 0; i < spare_disks_.size(); ++i) {
    backend_->AddSpare(spare_disks_[i].get(), spare_predictors_[i].get());
  }
}

ArrayControllerOptions MimdRaid::ControllerOptions() const {
  ArrayControllerOptions copts;
  copts.scheduler = options_.scheduler;
  copts.max_scan = options_.max_scan;
  copts.delayed_table_limit = options_.delayed_table_limit;
  copts.recalibration_interval_us = options_.recalibration_interval_us;
  copts.foreground_write_propagation = options_.foreground_write_propagation;
  copts.fault_injector = injector_.get();
  copts.retry = options_.retry;
  copts.disk_error_fail_threshold = options_.disk_error_fail_threshold;
  copts.scrub_interval_us = options_.scrub_interval_us;
  copts.scrub_gating = options_.scrub_gating;
  copts.collector = options_.collector;
  copts.auditor = options_.auditor;
  return copts;
}

Raid5ControllerOptions MimdRaid::Raid5Options() const {
  Raid5ControllerOptions ropts;
  ropts.scheduler = options_.scheduler;
  ropts.max_scan = options_.max_scan;
  ropts.auditor = options_.auditor;
  ropts.fault_injector = injector_.get();
  ropts.collector = options_.collector;
  ropts.retry = options_.retry;
  ropts.disk_error_fail_threshold = options_.disk_error_fail_threshold;
  ropts.scrub_interval_us = options_.scrub_interval_us;
  ropts.scrub_gating = options_.scrub_gating;
  return ropts;
}

EcControllerOptions MimdRaid::EcOptions() const {
  EcControllerOptions eopts;
  eopts.scheduler = options_.scheduler;
  eopts.max_scan = options_.max_scan;
  eopts.auditor = options_.auditor;
  eopts.fault_injector = injector_.get();
  eopts.collector = options_.collector;
  eopts.retry = options_.retry;
  eopts.disk_error_fail_threshold = options_.disk_error_fail_threshold;
  eopts.scrub_interval_us = options_.scrub_interval_us;
  eopts.scrub_gating = options_.scrub_gating;
  return eopts;
}

void MimdRaid::Reshape(const ArrayAspect& aspect, SimDuration migration_us) {
  MIMDRAID_CHECK(options_.backend == ArrayBackendKind::kMirror);
  MIMDRAID_CHECK_EQ(static_cast<size_t>(aspect.TotalDisks()), disks_.size());
  MIMDRAID_CHECK_GE(migration_us, SimDuration(0));
  // Quiesce: all foreground work and background propagation must finish
  // before the old controller (and its callbacks) can be torn down.
  while (!controller_->Idle()) {
    MIMDRAID_CHECK(sim_.Step());
  }
  // Spares consumed by promotions live on inside the old controller's disk
  // set; reshaping a partially-failed array is unsupported.
  MIMDRAID_CHECK_EQ(controller_->spares_available(), spare_disks_.size());
  controller_.reset();
  backend_ = nullptr;
  sim_.RunUntil(sim_.Now() + migration_us);

  options_.aspect = aspect;
  BuildBackend();
}

SubmitFn MimdRaid::Submitter() {
  return [this](DiskOp op, uint64_t lba, uint32_t sectors, IoDoneFn done) {
    backend_->Submit(op, lba, sectors, std::move(done));
  };
}

}  // namespace mimdraid
