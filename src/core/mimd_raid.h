// MimdRaid: the assembled prototype (Figure 4's stack).
//
// Owns the simulator, the disks, the per-disk predictors (oracle or
// calibrated), the array layout, and the controller, wiring them exactly as
// the prototype does: Logical Disk Layer -> Disk Configuration Layer ->
// Scheduling Layer -> (Calibration Layer) -> device.
#ifndef MIMDRAID_SRC_CORE_MIMD_RAID_H_
#define MIMDRAID_SRC_CORE_MIMD_RAID_H_

#include <memory>
#include <vector>

#include "src/array/array_layout.h"
#include "src/array/controller.h"
#include "src/calib/calibration.h"
#include "src/calib/predictor.h"
#include "src/disk/geometry.h"
#include "src/disk/seek_profile.h"
#include "src/disk/sim_disk.h"
#include "src/io/array_backend.h"
#include "src/ec/ec_controller.h"
#include "src/ec/ec_layout.h"
#include "src/ec/gf256.h"
#include "src/model/configurator.h"
#include "src/model/fleet_spec.h"
#include "src/raid5/raid5_controller.h"
#include "src/raid5/raid5_layout.h"
#include "src/sim/auditor.h"
#include "src/sim/fault_injector.h"
#include "src/sim/io_status.h"
#include "src/sim/simulator.h"
#include "src/workload/drivers.h"

namespace mimdraid {

struct MimdRaidOptions {
  // Redundancy policy layered over the shared DriveSet engine. kMirror is the
  // paper's replica-based design (SR/ML/ABL via `aspect`); kRaid5 runs
  // rotating parity over the same disk budget (aspect.TotalDisks() drives,
  // one disk's worth of capacity spent on parity); kErasure runs general
  // (k+m) Reed-Solomon coding with m = parity_shards drives' worth of parity
  // and k = TotalDisks() - m data shards.
  ArrayBackendKind backend = ArrayBackendKind::kMirror;
  ArrayAspect aspect;  // Ds x Dr x Dm; TotalDisks() is the disk budget
  // kErasure only: parity shards per stripe row (m). 1 matches RAID-5's
  // fault tolerance, 2 is RAID-6, larger m tolerates m concurrent losses at
  // k/(k+m) capacity efficiency.
  uint32_t parity_shards = 2;
  SchedulerKind scheduler = SchedulerKind::kRsatf;
  size_t max_scan = 0;
  uint64_t dataset_sectors = 16'400'000;
  uint32_t stripe_unit_sectors = 128;  // 64 KiB, as in the prototype
  // Where rotational replicas live (cross-track is the paper's design).
  PlacementMode placement_mode = PlacementMode::kCrossTrack;

  // Drive model. Empty geometry selects the ST39133 defaults. These three
  // fields describe a homogeneous fleet; set `fleet` instead to mix drive
  // generations.
  DiskGeometry geometry;
  SeekProfile profile = MakeSt39133SeekProfile();
  DiskNoiseModel noise = DiskNoiseModel::None();
  // Heterogeneous drive fleet: per-slot drive generations (array slots first,
  // then hot spares). When empty, a single-generation fleet is synthesized
  // from geometry/profile/noise above — the exact homogeneous behavior.
  FleetSpec fleet;
  bool synchronized_spindles = false;
  // True spindle speeds deviate uniformly within ±tolerance of nominal.
  double rotation_tolerance_ppm = 20.0;
  uint64_t seed = 42;

  // Prediction. The oracle predictor reads the simulator's ground truth and
  // is the right choice for macro experiments (the paper validated that its
  // software predictor matches; Table 2 re-establishes that here). Setting
  // use_oracle_predictor = false runs the full software calibration path.
  bool use_oracle_predictor = true;
  double oracle_slack_us = -1.0;  // <0: auto (0 for noise-free disks)
  CalibrationOptions calibration;
  SlackFeedbackOptions slack;  // software-predictor slack policy

  // Controller.
  size_t delayed_table_limit = 10'000;
  SimDuration recalibration_interval_us;
  bool foreground_write_propagation = false;

  // Fault handling. The injector is instantiated (and wired into every disk)
  // when enable_fault_injection is true or hot_spares > 0.
  bool enable_fault_injection = false;
  FaultInjectorOptions fault;
  RetryPolicy retry;
  // Consecutive-error count at which the controller fail-stops a disk
  // (0 disables auto-failing on error count; kDiskFailed always fail-stops).
  uint32_t disk_error_fail_threshold = 0;
  // Idle-time background scrub period (0 disables scrubbing).
  SimDuration scrub_interval_us;
  // kIdleGated (default) defers scrub ticks to foreground activity;
  // kAlways fires a scrub step every period regardless of engine load.
  ScrubGating scrub_gating = ScrubGating::kIdleGated;
  // Extra drives kept spinning; promoted automatically when a disk
  // fail-stops, followed by an automatic rebuild.
  uint32_t hot_spares = 0;

  // Observability: when set, the controller reports per-request lifecycle,
  // per-slot disk ops / queue depth, and dispatch prediction error to this
  // collector (see src/obs/trace_collector.h). Borrowed; must outlive the
  // MimdRaid. nullptr (the default) disables tracing entirely.
  TraceCollector* collector = nullptr;

  // Debug tripwire: when set, the backend wires this runtime invariant
  // auditor into the simulator, every disk, and every per-drive scheduler.
  // Borrowed; must outlive the MimdRaid. Observes only.
  InvariantAuditor* auditor = nullptr;
};

class MimdRaid {
 public:
  explicit MimdRaid(const MimdRaidOptions& options);

  Simulator& sim() { return sim_; }

  // The policy-neutral face of the array: Submit/Fail/Rebuild/AddSpare/
  // stats export, whichever backend is configured.
  ArrayBackend& backend() { return *backend_; }
  const ArrayBackend& backend() const { return *backend_; }
  ArrayBackendKind backend_kind() const { return options_.backend; }

  // Backend-specific access; each CHECKs that its backend is the one
  // configured.
  ArrayController& controller();
  Raid5Controller& raid5();
  EcController& ec();

  // Mirror-only: the replica layout. CHECKs on the other backends.
  const ArrayLayout& layout() const;
  // RAID-5-only: the parity layout. CHECKs on the other backends.
  const Raid5Layout& raid5_layout() const;
  // Erasure-only: the (k+m) layout. CHECKs on the other backends.
  const EcLayout& ec_layout() const;
  const MimdRaidOptions& options() const { return options_; }

  // Array disks only; hot spares are owned separately until promoted.
  size_t num_disks() const { return disks_.size(); }
  SimDisk& disk(size_t i) { return *disks_[i]; }
  AccessPredictor& predictor(size_t i) { return *predictors_[i]; }

  // nullptr unless fault injection was enabled.
  FaultInjector* fault_injector() { return injector_.get(); }

  // Submit function bound to the controller, for the workload drivers.
  SubmitFn Submitter();

  // Re-shapes the array to a new aspect ratio over the same disks (offline
  // migration): drains outstanding work, advances simulated time by
  // `migration_us` (the re-layout copy), then rebuilds the layout and
  // controller. Pending background propagations are completed during the
  // drain. The new aspect must use the same number of disks. Mirror-only.
  void Reshape(const ArrayAspect& aspect, SimDuration migration_us);

 private:
  ArrayControllerOptions ControllerOptions() const;
  Raid5ControllerOptions Raid5Options() const;
  EcControllerOptions EcOptions() const;
  // (Re)creates the configured backend over disks_/predictors_ and registers
  // the hot spares with it.
  void BuildBackend();

  MimdRaidOptions options_;
  Simulator sim_;
  std::unique_ptr<FaultInjector> injector_;
  std::vector<std::unique_ptr<SimDisk>> disks_;
  std::vector<std::unique_ptr<AccessPredictor>> predictors_;
  std::vector<std::unique_ptr<SimDisk>> spare_disks_;
  std::vector<std::unique_ptr<AccessPredictor>> spare_predictors_;
  std::unique_ptr<ArrayLayout> layout_;
  std::unique_ptr<Raid5Layout> raid5_layout_;
  std::unique_ptr<EcLayout> ec_layout_;
  std::unique_ptr<EcCodec> ec_codec_;
  std::unique_ptr<ArrayController> controller_;
  std::unique_ptr<Raid5Controller> raid5_;
  std::unique_ptr<EcController> ec_;
  ArrayBackend* backend_ = nullptr;  // whichever of the three is live
};

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_CORE_MIMD_RAID_H_
