#include "src/core/sweep_runner.h"

#include <cstdlib>
#include <utility>

namespace mimdraid {

SweepRunner::SweepRunner(size_t jobs) : jobs_(ResolveJobs(jobs)) {
  if (jobs_ <= 1) {
    return;  // serial mode: Submit() runs tasks inline
  }
  workers_.reserve(jobs_);
  for (size_t i = 0; i < jobs_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

SweepRunner::~SweepRunner() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) {
    w.join();
  }
}

void SweepRunner::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    // The exact serial path: run now, on this thread, in submission order.
    try {
      task();
    } catch (...) {
      RecordError(std::current_exception());
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++outstanding_;
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void SweepRunner::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return outstanding_ == 0; });
  if (first_error_ != nullptr) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void SweepRunner::RunAll(std::vector<std::function<void()>> tasks) {
  for (std::function<void()>& task : tasks) {
    Submit(std::move(task));
  }
  Wait();
}

void SweepRunner::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) {
      return;  // shutdown with nothing left to drain
    }
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    try {
      task();
    } catch (...) {
      RecordError(std::current_exception());
    }
    lock.lock();
    if (--outstanding_ == 0) {
      idle_cv_.notify_all();
    }
  }
}

void SweepRunner::RecordError(std::exception_ptr error) {
  std::lock_guard<std::mutex> lock(mu_);
  if (first_error_ == nullptr) {
    first_error_ = error;
  }
}

size_t SweepRunner::ResolveJobs(size_t requested) {
  if (requested > 0) {
    return requested;
  }
  if (const char* env = std::getenv("MIMDRAID_JOBS");
      env != nullptr && *env != '\0') {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) {
      return static_cast<size_t>(parsed);
    }
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? hc : 1;
}

uint64_t SweepRunner::PointSeed(uint64_t base_seed, uint64_t point_index) {
  // SplitMix64 finalizer over a golden-ratio stride: a full-avalanche mix, so
  // (base, i) and (base, i+1) — or (base, i) and (base+1, i) — share no
  // structure.
  uint64_t z = base_seed + 0x9E3779B97F4A7C15ull * (point_index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace mimdraid
