// Parallel sweep engine for the figure/ablation benches.
//
// Every sweep point in the evaluation suite is an independent deterministic
// experiment: it builds its own Simulator, array, and workload, runs to
// completion, and reports numbers. Nothing is shared between points, so the
// (configuration × rate × queue-depth) grids the benches iterate can run on
// every core. SweepRunner is the small worker pool that does that: submit
// closures, wait for the pool to drain, read results from wherever the
// closures stored them (each point owns its own result slot, so no result
// synchronization is needed beyond the pool's own barrier).
//
// Determinism contract: a point must derive all of its randomness from seeds
// it owns — either a fixed per-point seed from its config (as the figure
// benches do) or a stream derived via PointSeed(base, index) — and must not
// touch stdout, globals, or any other point's state. Under that contract the
// results are identical for every job count, and a caller that prints in
// submission order produces byte-identical output to a serial run.
#ifndef MIMDRAID_SRC_CORE_SWEEP_RUNNER_H_
#define MIMDRAID_SRC_CORE_SWEEP_RUNNER_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mimdraid {

class SweepRunner {
 public:
  // `jobs` worker threads; 0 resolves via ResolveJobs(). With jobs == 1 no
  // threads are spawned at all: Submit() runs the task inline on the calling
  // thread, which is the exact old serial execution path.
  explicit SweepRunner(size_t jobs = 0);
  ~SweepRunner();
  SweepRunner(const SweepRunner&) = delete;
  SweepRunner& operator=(const SweepRunner&) = delete;

  size_t jobs() const { return jobs_; }

  // Enqueues one task; it may run on any worker thread (or inline when
  // jobs == 1). Tasks must not submit to the same runner from a worker.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished. If any task threw, the
  // first exception (in completion order) is rethrown here, once.
  void Wait();

  // Convenience: Submit() everything, then Wait().
  void RunAll(std::vector<std::function<void()>> tasks);

  // Job-count resolution shared by every bench: an explicit request (> 0)
  // wins, then the MIMDRAID_JOBS environment variable, then
  // std::thread::hardware_concurrency(), then 1.
  static size_t ResolveJobs(size_t requested);

  // Deterministic per-point seed stream (SplitMix64 over the pair), so a
  // point's RNG depends only on (base_seed, point_index) — never on which
  // worker ran it or in what order. Distinct indices give decorrelated
  // streams even for adjacent base seeds.
  static uint64_t PointSeed(uint64_t base_seed, uint64_t point_index);

 private:
  void WorkerLoop();
  void RecordError(std::exception_ptr error);

  const size_t jobs_;
  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: queue non-empty or shutdown
  std::condition_variable idle_cv_;  // Wait(): outstanding dropped to zero
  std::deque<std::function<void()>> queue_;
  size_t outstanding_ = 0;  // queued + currently running tasks
  bool shutdown_ = false;
  std::exception_ptr first_error_;
  std::vector<std::thread> workers_;
};

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_CORE_SWEEP_RUNNER_H_
