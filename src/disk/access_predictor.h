// Interface between position-sensitive schedulers and the head-position
// prediction machinery.
//
// Schedulers (SATF, RLOOK, RSATF, and the mirror read heuristic) rank
// candidate physical accesses by predicted positioning time. The production
// implementation is calib::HeadPositionPredictor, which works purely from
// observed completion timestamps (Section 3.2 of the paper); tests and oracle
// experiments can substitute a predictor wrapping the simulator's ground
// truth.
#ifndef MIMDRAID_SRC_DISK_ACCESS_PREDICTOR_H_
#define MIMDRAID_SRC_DISK_ACCESS_PREDICTOR_H_

#include <cstdint>

#include "src/disk/timing.h"
#include "src/util/time.h"

namespace mimdraid {

class AccessPredictor {
 public:
  virtual ~AccessPredictor() = default;

  // Predicted access timeline if the op were dispatched now on the idle disk,
  // assuming zero request overhead (overhead shows up only as rotational
  // misses, which the slack mechanism guards against). Must not mutate
  // tracking state.
  virtual AccessPlan Predict(SimTime now, BlockAddr lba, uint32_t sectors,
                             bool is_write) const = 0;

  // The slack (Section 3.2): a predicted rotational wait below this value is
  // at risk of missing its sector because of unobservable request overhead;
  // the scheduler conservatively treats such a candidate as costing a full
  // extra rotation.
  virtual double SlackUs() const = 0;

  // Full rotation time (per the predictor's estimate).
  virtual double RotationUs() const = 0;

  // The predictor's belief about the current arm position.
  virtual HeadState Head() const = 0;

  // Cheap lower bound on Predict(now, lba, ...).total_us, for scheduler
  // pruning: max(seek to the candidate's cylinder, rotational wait from
  // `now`) plus the minimum media transfer. A scheduler may skip the full
  // Predict for a candidate whose bound already exceeds the best cost found
  // so far (EffectiveServiceUs only ever adds to total_us, so a total_us
  // bound also bounds the effective cost). The default returns 0 — always
  // valid, prunes nothing — so custom predictors (including test doubles
  // with synthetic cost functions) keep byte-exact scheduler behavior
  // without implementing it.
  virtual double AccessBoundUs(SimTime now, BlockAddr lba, uint32_t sectors,
                               bool is_write) const {
    (void)now;
    (void)lba;
    (void)sectors;
    (void)is_write;
    return 0.0;
  }

  // Called when a request is dispatched to the (idle) disk.
  virtual void OnDispatch(SimTime now, BlockAddr lba, uint32_t sectors,
                          bool is_write, double predicted_service_us) = 0;

  // Called when the in-flight request completes. The predictor updates its
  // head estimate and prediction-accuracy statistics.
  virtual void OnCompletion(SimTime completion_us, BlockAddr lba,
                            uint32_t sectors) = 0;

  // Service-time estimate with the slack policy applied: a first rotational
  // wait below slack is assumed to wrap a full rotation.
  double EffectiveServiceUs(const AccessPlan& plan) const {
    double t = plan.total_us;
    if (plan.rotational_us < SlackUs()) {
      t += RotationUs();
    }
    return t;
  }
};

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_DISK_ACCESS_PREDICTOR_H_
