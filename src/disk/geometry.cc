#include "src/disk/geometry.h"

#include <cmath>

#include "src/util/check.h"

namespace mimdraid {

uint32_t DiskGeometry::ZoneIndexOf(uint32_t cylinder) const {
  MIMDRAID_CHECK_LT(cylinder, num_cylinders);
  // Zones are few (~10); linear scan from the back is simple and fast.
  for (size_t i = zones.size(); i-- > 0;) {
    if (cylinder >= zones[i].first_cylinder) {
      return static_cast<uint32_t>(i);
    }
  }
  MIMDRAID_CHECK(false);
}

uint32_t DiskGeometry::ZoneCylinders(uint32_t zone_index) const {
  MIMDRAID_CHECK_LT(zone_index, zones.size());
  const uint32_t first = zones[zone_index].first_cylinder;
  const uint32_t next = zone_index + 1 < zones.size()
                            ? zones[zone_index + 1].first_cylinder
                            : num_cylinders;
  return next - first;
}

uint64_t DiskGeometry::TotalSectors() const {
  uint64_t total = 0;
  for (size_t i = 0; i < zones.size(); ++i) {
    total += static_cast<uint64_t>(ZoneCylinders(static_cast<uint32_t>(i))) *
             num_heads * zones[i].sectors_per_track;
  }
  return total;
}

bool DiskGeometry::Valid() const {
  if (rpm == 0 || num_cylinders == 0 || num_heads == 0 || sector_bytes == 0 ||
      zones.empty() || zones[0].first_cylinder != 0) {
    return false;
  }
  for (size_t i = 0; i < zones.size(); ++i) {
    const Zone& z = zones[i];
    if (z.sectors_per_track == 0) {
      return false;
    }
    if (z.track_skew >= z.sectors_per_track || z.cylinder_skew >= z.sectors_per_track) {
      return false;
    }
    if (i > 0 && z.first_cylinder <= zones[i - 1].first_cylinder) {
      return false;
    }
    if (z.first_cylinder >= num_cylinders) {
      return false;
    }
  }
  return true;
}

namespace {

// Skew sized so the platter rotates past `switch_us` of slots during a head
// switch, rounded up, plus one slot of margin.
uint32_t SkewSlots(double switch_us, double rotation_us, uint32_t spt) {
  const double slot_us = rotation_us / spt;
  uint32_t skew = static_cast<uint32_t>(std::ceil(switch_us / slot_us)) + 1;
  return skew < spt ? skew : spt - 1;
}

}  // namespace

DiskGeometry MakeSt39133Geometry() {
  DiskGeometry g;
  g.rpm = 10000;
  g.num_cylinders = 6962;
  g.num_heads = 12;
  g.sector_bytes = 512;
  const double rotation_us = 6000.0;
  const double head_switch_us = 900.0;   // paper: track switch ~900 us
  const double cyl_switch_us = 1100.0;   // single-cylinder seek + settle
  // 10 zones, outer zones denser. SPT chosen to land near 9.1 GB total.
  const uint32_t spts[10] = {264, 253, 242, 231, 220, 209, 198, 187, 176, 165};
  const uint32_t zone_cyls = g.num_cylinders / 10;
  for (uint32_t i = 0; i < 10; ++i) {
    Zone z;
    z.first_cylinder = i * zone_cyls;
    z.sectors_per_track = spts[i];
    z.track_skew = SkewSlots(head_switch_us, rotation_us, spts[i]);
    z.cylinder_skew = SkewSlots(cyl_switch_us, rotation_us, spts[i]);
    g.zones.push_back(z);
  }
  MIMDRAID_CHECK(g.Valid());
  return g;
}

DiskGeometry MakeTestGeometry() {
  DiskGeometry g;
  g.rpm = 10000;
  g.num_cylinders = 60;
  g.num_heads = 4;
  g.sector_bytes = 512;
  Zone z0;
  z0.first_cylinder = 0;
  z0.sectors_per_track = 40;
  z0.track_skew = 7;
  z0.cylinder_skew = 9;
  Zone z1;
  z1.first_cylinder = 30;
  z1.sectors_per_track = 30;
  z1.track_skew = 6;
  z1.cylinder_skew = 7;
  g.zones = {z0, z1};
  MIMDRAID_CHECK(g.Valid());
  return g;
}

}  // namespace mimdraid
