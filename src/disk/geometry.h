// Physical disk geometry: zones, skews, and rotation.
//
// The geometry describes a multi-zone drive in the style of late-1990s SCSI
// disks (the paper's Seagate ST39133LWV): cylinders are grouped into zones
// with a constant sectors-per-track (SPT) within a zone; tracks are skewed
// relative to each other so that sequential transfers crossing a track or
// cylinder boundary do not lose a full revolution.
#ifndef MIMDRAID_SRC_DISK_GEOMETRY_H_
#define MIMDRAID_SRC_DISK_GEOMETRY_H_

#include <cstdint>
#include <vector>

#include "src/util/time.h"

namespace mimdraid {

struct Zone {
  uint32_t first_cylinder = 0;   // inclusive; zone extends to next zone's first
  uint32_t sectors_per_track = 0;
  // Skews in sector slots. Track skew applies between consecutive heads of a
  // cylinder; cylinder skew applies between the last head of a cylinder and
  // the first head of the next.
  uint32_t track_skew = 0;
  uint32_t cylinder_skew = 0;
};

struct DiskGeometry {
  uint32_t rpm = 10000;
  uint32_t num_cylinders = 0;
  uint32_t num_heads = 0;  // tracks per cylinder
  uint32_t sector_bytes = 512;
  std::vector<Zone> zones;  // sorted by first_cylinder; zones[0].first_cylinder == 0

  // Full-rotation time R in microseconds.
  SimDuration RotationUs() const {
    return SimDuration(static_cast<int64_t>(60.0 * 1e6 / rpm));
  }

  // Index into zones for a cylinder.
  uint32_t ZoneIndexOf(uint32_t cylinder) const;
  const Zone& ZoneOf(uint32_t cylinder) const { return zones[ZoneIndexOf(cylinder)]; }

  uint32_t SectorsPerTrack(uint32_t cylinder) const {
    return ZoneOf(cylinder).sectors_per_track;
  }

  // Number of cylinders in the zone with the given index.
  uint32_t ZoneCylinders(uint32_t zone_index) const;

  // Sum over all tracks of sectors-per-track.
  uint64_t TotalSectors() const;

  uint64_t CapacityBytes() const { return TotalSectors() * sector_bytes; }

  // Time for one sector slot to pass under the head on the given cylinder.
  double SlotTimeUs(uint32_t cylinder) const {
    return static_cast<double>(RotationUs().us()) / SectorsPerTrack(cylinder);
  }

  // Validates internal consistency (sorted zones, non-zero sizes, skews < SPT).
  bool Valid() const;
};

// Geometry modeled after the paper's Seagate ST39133LWV (9.1 GB, 10000 RPM,
// Table 1): 12 heads, ~6962 cylinders, 10 zones, 512-byte sectors, skews
// sized to cover a ~0.9 ms head switch.
DiskGeometry MakeSt39133Geometry();

// A tiny geometry (few cylinders/zones) for fast unit tests.
DiskGeometry MakeTestGeometry();

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_DISK_GEOMETRY_H_
