#include "src/disk/layout.h"

#include <cmath>

#include "src/util/check.h"

namespace mimdraid {

DiskLayout::DiskLayout(const DiskGeometry* geometry, uint32_t reserved_tracks,
                       uint32_t spare_tracks_per_zone)
    : geometry_(geometry) {
  MIMDRAID_CHECK(geometry != nullptr);
  MIMDRAID_CHECK(geometry->Valid());
  const uint32_t heads = geometry->num_heads;
  uint64_t lba = 0;
  for (uint32_t zi = 0; zi < geometry->zones.size(); ++zi) {
    const Zone& z = geometry->zones[zi];
    const uint32_t zone_tracks = geometry->ZoneCylinders(zi) * heads;
    const uint32_t reserved = zi == 0 ? reserved_tracks : 0;
    MIMDRAID_CHECK_LT(reserved + spare_tracks_per_zone, zone_tracks);
    ZoneExtent e;
    e.first_track = z.first_cylinder * heads + reserved;
    e.num_data_tracks = zone_tracks - reserved - spare_tracks_per_zone;
    e.first_lba = lba;
    e.spare_first_track = z.first_cylinder * heads + zone_tracks - spare_tracks_per_zone;
    e.num_spare_tracks = spare_tracks_per_zone;
    extents_.push_back(e);
    lba += static_cast<uint64_t>(e.num_data_tracks) * z.sectors_per_track;
  }
  num_data_sectors_ = lba;
  first_data_cylinder_ = extents_[0].first_track / heads;
}

bool DiskLayout::AddBadSector(uint64_t lba) {
  MIMDRAID_CHECK_LT(lba, num_data_sectors_);
  if (remap_.contains(lba)) {
    return false;
  }
  // Natural (pre-remap) position.
  const Chs natural = ToChs(lba);
  const uint32_t zi = geometry_->ZoneIndexOf(natural.cylinder);
  ZoneExtent& e = extents_[zi];
  const Zone& z = geometry_->zones[zi];
  const uint32_t spare_capacity = e.num_spare_tracks * z.sectors_per_track;
  if (e.spare_used >= spare_capacity) {
    return false;
  }
  const uint32_t slot_index = e.spare_used++;
  const uint32_t spare_track = e.spare_first_track + slot_index / z.sectors_per_track;
  Chs spare;
  spare.cylinder = spare_track / geometry_->num_heads;
  spare.head = spare_track % geometry_->num_heads;
  spare.sector = slot_index % z.sectors_per_track;
  remap_[lba] = spare;
  const uint64_t natural_key =
      static_cast<uint64_t>(GlobalTrack(natural.cylinder, natural.head)) *
          z.sectors_per_track +
      natural.sector;
  natural_position_remapped_[natural_key] = lba;
  return true;
}

Chs DiskLayout::ToChs(uint64_t lba) const {
  MIMDRAID_CHECK_LT(lba, num_data_sectors_);
  if (has_remaps()) {
    auto it = remap_.find(lba);
    if (it != remap_.end()) {
      return it->second;
    }
  }
  // Find the zone containing this LBA (zones are few; linear scan).
  uint32_t zi = 0;
  for (size_t i = extents_.size(); i-- > 0;) {
    if (lba >= extents_[i].first_lba) {
      zi = static_cast<uint32_t>(i);
      break;
    }
  }
  const ZoneExtent& e = extents_[zi];
  const Zone& z = geometry_->zones[zi];
  const uint64_t off = lba - e.first_lba;
  const uint32_t track_in_zone = static_cast<uint32_t>(off / z.sectors_per_track);
  MIMDRAID_CHECK_LT(track_in_zone, e.num_data_tracks);
  const uint32_t global_track = e.first_track + track_in_zone;
  Chs chs;
  chs.cylinder = global_track / geometry_->num_heads;
  chs.head = global_track % geometry_->num_heads;
  chs.sector = static_cast<uint32_t>(off % z.sectors_per_track);
  return chs;
}

uint64_t DiskLayout::ToLba(const Chs& chs) const {
  MIMDRAID_CHECK_LT(chs.cylinder, geometry_->num_cylinders);
  MIMDRAID_CHECK_LT(chs.head, geometry_->num_heads);
  const uint32_t zi = geometry_->ZoneIndexOf(chs.cylinder);
  const ZoneExtent& e = extents_[zi];
  const Zone& z = geometry_->zones[zi];
  MIMDRAID_CHECK_LT(chs.sector, z.sectors_per_track);
  const uint32_t global_track = GlobalTrack(chs.cylinder, chs.head);
  if (global_track < e.first_track ||
      global_track >= e.first_track + e.num_data_tracks) {
    return kInvalidLba;  // reserved or spare track
  }
  const uint64_t natural_key =
      static_cast<uint64_t>(global_track) * z.sectors_per_track + chs.sector;
  if (natural_position_remapped_.contains(natural_key)) {
    return kInvalidLba;  // the sector physically here is marked bad
  }
  return e.first_lba +
         static_cast<uint64_t>(global_track - e.first_track) * z.sectors_per_track +
         chs.sector;
}

uint32_t DiskLayout::TrackStartSlot(uint32_t cylinder, uint32_t head) const {
  return TrackStartSlot(cylinder, head, geometry_->ZoneOf(cylinder));
}

uint32_t DiskLayout::TrackStartSlot(uint32_t cylinder, uint32_t head,
                                    const Zone& z) const {
  const uint32_t heads = geometry_->num_heads;
  // Skew accumulates along the logical track chain: (heads - 1) track skews
  // plus one cylinder skew per full cylinder traversed since the zone start,
  // plus one track skew per head within the current cylinder.
  const uint64_t per_cylinder =
      static_cast<uint64_t>(heads - 1) * z.track_skew + z.cylinder_skew;
  const uint64_t acc =
      static_cast<uint64_t>(cylinder - z.first_cylinder) * per_cylinder +
      static_cast<uint64_t>(head) * z.track_skew;
  return static_cast<uint32_t>(acc % z.sectors_per_track);
}

uint32_t DiskLayout::SlotOf(const Chs& chs) const {
  return SlotOf(chs, geometry_->ZoneOf(chs.cylinder));
}

uint32_t DiskLayout::SlotOf(const Chs& chs, const Zone& z) const {
  return (TrackStartSlot(chs.cylinder, chs.head, z) + chs.sector) %
         z.sectors_per_track;
}

double DiskLayout::AngleOf(const Chs& chs) const {
  const uint32_t spt = geometry_->SectorsPerTrack(chs.cylinder);
  return static_cast<double>(SlotOf(chs)) / spt;
}

uint64_t DiskLayout::LbaForAngle(uint32_t cylinder, uint32_t head,
                                 double angle) const {
  MIMDRAID_CHECK_GE(angle, 0.0);
  MIMDRAID_CHECK_LT(angle, 1.0);
  const uint32_t spt = geometry_->SectorsPerTrack(cylinder);
  // First slot whose start is at or after `angle` (cyclically).
  const uint32_t slot =
      static_cast<uint32_t>(std::ceil(angle * spt - 1e-9)) % spt;
  Chs chs;
  chs.cylinder = cylinder;
  chs.head = head;
  chs.sector = (slot + spt - TrackStartSlot(cylinder, head)) % spt;
  return ToLba(chs);
}

bool DiskLayout::IsDataTrack(uint32_t cylinder, uint32_t head) const {
  const uint32_t zi = geometry_->ZoneIndexOf(cylinder);
  const ZoneExtent& e = extents_[zi];
  const uint32_t global_track = GlobalTrack(cylinder, head);
  return global_track >= e.first_track &&
         global_track < e.first_track + e.num_data_tracks;
}

}  // namespace mimdraid
