// Logical-to-physical sector mapping.
//
// Maps the linear LBA space exposed by the drive onto (cylinder, head,
// sector) positions, applying per-zone track/cylinder skew to compute the
// physical rotational slot of each sector. Also models the address-space
// blemishes that the paper's calibration layer has to discover on real
// drives (Section 3.2 / Worthington et al.): reserved tracks at the start of
// the disk and bad sectors remapped to per-zone spare tracks.
//
// Terminology:
//  * `sector` in a Chs is the *logical* index within its track (0 .. SPT-1),
//    i.e. the order in which LBAs traverse the track.
//  * `slot` is the *physical* rotational position: slot / SPT of a revolution
//    past the index mark. Skew is the (per-track) rotation between the two.
#ifndef MIMDRAID_SRC_DISK_LAYOUT_H_
#define MIMDRAID_SRC_DISK_LAYOUT_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/disk/geometry.h"

namespace mimdraid {

inline constexpr uint64_t kInvalidLba = UINT64_MAX;

struct Chs {
  uint32_t cylinder = 0;
  uint32_t head = 0;
  uint32_t sector = 0;  // logical index within the track

  bool operator==(const Chs&) const = default;
};

class DiskLayout {
 public:
  // `reserved_tracks` are removed from the front of zone 0 (drive-internal
  // data); `spare_tracks_per_zone` are removed from the end of every zone and
  // used as the remap target for bad sectors.
  DiskLayout(const DiskGeometry* geometry, uint32_t reserved_tracks = 1,
             uint32_t spare_tracks_per_zone = 1);

  const DiskGeometry& geometry() const { return *geometry_; }

  uint64_t num_data_sectors() const { return num_data_sectors_; }

  // Marks the sector currently holding `lba` as bad, remapping the LBA to the
  // next free spare slot in the same zone. Returns false if the zone's spare
  // space is exhausted or the LBA is already remapped.
  bool AddBadSector(uint64_t lba);

  size_t num_remapped_sectors() const { return remap_.size(); }
  // Most drives carry zero remaps for a whole run; the empty check keeps the
  // hot mapping paths free of hash lookups until the first AddBadSector.
  bool has_remaps() const { return !remap_.empty(); }
  bool IsRemapped(uint64_t lba) const {
    return has_remaps() && remap_.contains(lba);
  }

  // Physical location of an LBA (following any remap). lba < num_data_sectors.
  Chs ToChs(uint64_t lba) const;

  // Inverse mapping. Returns kInvalidLba for reserved/spare tracks or
  // positions whose *natural* LBA has been remapped away.
  uint64_t ToLba(const Chs& chs) const;

  // Physical rotational slot of a position, after skew. The Zone overload
  // skips the per-call zone scan when the caller already resolved it.
  uint32_t SlotOf(const Chs& chs) const;
  uint32_t SlotOf(const Chs& chs, const Zone& z) const;

  // Fraction of a revolution [0, 1) at which the sector's slot begins.
  double AngleOf(const Chs& chs) const;

  // The LBA on (cylinder, head) whose slot begins at or cyclically next after
  // `angle` (in [0, 1)). Returns kInvalidLba if the track holds no data.
  uint64_t LbaForAngle(uint32_t cylinder, uint32_t head, double angle) const;

  // True if (cylinder, head) is a data track (not reserved, not spare).
  bool IsDataTrack(uint32_t cylinder, uint32_t head) const;

  // First data cylinder (cylinders before it are entirely reserved).
  uint32_t first_data_cylinder() const { return first_data_cylinder_; }

  // The rotational slot at which logical sector 0 of the track begins
  // (i.e. the accumulated skew of the track).
  uint32_t TrackStartSlot(uint32_t cylinder, uint32_t head) const;
  uint32_t TrackStartSlot(uint32_t cylinder, uint32_t head,
                          const Zone& z) const;

 private:
  struct ZoneExtent {
    uint32_t first_track = 0;       // global track index of first data track
    uint32_t num_data_tracks = 0;   // excludes reserved and spare tracks
    uint64_t first_lba = 0;         // LBA of the zone's first data sector
    uint32_t spare_first_track = 0; // global track index of first spare track
    uint32_t num_spare_tracks = 0;
    uint32_t spare_used = 0;        // spare slots consumed by remaps
  };

  uint32_t GlobalTrack(uint32_t cylinder, uint32_t head) const {
    return cylinder * geometry_->num_heads + head;
  }

  const DiskGeometry* geometry_;
  std::vector<ZoneExtent> extents_;
  uint64_t num_data_sectors_ = 0;
  uint32_t first_data_cylinder_ = 0;
  std::unordered_map<uint64_t, Chs> remap_;
  // Reverse map keyed by global slot index of the *natural* position, so
  // ToLba can report holes.
  std::unordered_map<uint64_t, uint64_t> natural_position_remapped_;
};

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_DISK_LAYOUT_H_
