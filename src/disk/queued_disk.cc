#include "src/disk/queued_disk.h"

#include <limits>
#include <utility>

#include "src/util/check.h"

namespace mimdraid {

InternalQueueDisk::InternalQueueDisk(SimDisk* disk, FirmwarePolicy policy,
                                     uint32_t queue_depth)
    : disk_(disk), policy_(policy), queue_depth_(queue_depth) {
  MIMDRAID_CHECK(disk != nullptr);
  MIMDRAID_CHECK_GT(queue_depth, 0u);
}

void InternalQueueDisk::Submit(DiskOp op, BlockAddr lba, uint32_t sectors,
                               DiskCompletionFn done) {
  // The tag limit only bounds what a real drive would accept at once; going
  // beyond it would simply leave commands host-side. Timing-wise the two
  // queues are equivalent here as long as the firmware only examines the
  // first queue_depth_ entries when picking (enforced in PickNext).
  queue_.push_back(Command{op, lba, sectors, std::move(done)});
  if (collector_ != nullptr) {
    collector_->OnQueueDepth(trace_slot_, disk_->NowUs(), queue_.size());
  }
  MaybeStart();
}

size_t InternalQueueDisk::PickNext() const {
  if (policy_ == FirmwarePolicy::kFcfs || queue_.size() == 1) {
    return 0;
  }
  // Firmware SATF: the drive knows its own head position and spindle phase
  // exactly (no slack needed) and scans the accepted tags.
  const DiskTimingModel& truth = disk_->DebugTimingModel();
  const double pre = disk_->noise().overhead_mean_us;
  size_t best = 0;
  double best_cost = std::numeric_limits<double>::infinity();
  const size_t scan = std::min<size_t>(queue_.size(), queue_depth_);
  for (size_t i = 0; i < scan; ++i) {
    const Command& c = queue_[i];
    const AccessPlan plan =
        truth.Plan(disk_->DebugHeadState(),
                   static_cast<double>(disk_->NowUs().us()) + pre,
                   c.lba.value(), c.sectors, c.op == DiskOp::kWrite);
    if (plan.total_us < best_cost) {
      best_cost = plan.total_us;
      best = i;
    }
  }
  return best;
}

void InternalQueueDisk::MaybeStart() {
  if (disk_->busy() || queue_.empty()) {
    return;
  }
  const size_t index = PickNext();
  if (index != 0) {
    ++reorderings_;
  }
  Command cmd = std::move(queue_[index]);
  queue_.erase(queue_.begin() + static_cast<ptrdiff_t>(index));
  if (collector_ != nullptr) {
    collector_->OnQueueDepth(trace_slot_, disk_->NowUs(), queue_.size());
  }
  disk_->Start(cmd.op, cmd.lba, cmd.sectors,
               [this, done = std::move(cmd.done)](const DiskOpResult& result) {
                 // The status rides the result through to the submitter; the
                 // firmware itself does not retry — host-side recovery policy
                 // owns that (src/sim/io_status.h).
                 if (!result.ok()) {
                   ++errors_;
                 }
                 if (done) {
                   done(result);
                 }
                 MaybeStart();
               });
}

}  // namespace mimdraid
