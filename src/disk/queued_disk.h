// A drive with an internal command queue and firmware scheduling.
//
// The paper closes with an open question: its host-based predictor enables
// SATF-class scheduling on dumb drives, but some drives (e.g. the HP C2490A)
// schedule internally with perfect knowledge of their own state — how do the
// approaches compare, and can they be combined? InternalQueueDisk models such
// a drive: the host may keep several commands outstanding; the firmware picks
// the next one using the drive's ground-truth timing model (FCFS or SATF).
//
// This is deliberately a wrapper around SimDisk rather than a SimDisk mode:
// the drive's black-box contract (Start one command, completion callback)
// stays untouched for everything the calibration layer does.
#ifndef MIMDRAID_SRC_DISK_QUEUED_DISK_H_
#define MIMDRAID_SRC_DISK_QUEUED_DISK_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/disk/sim_disk.h"

namespace mimdraid {

enum class FirmwarePolicy {
  kFcfs,
  kSatf,  // firmware SATF with perfect internal knowledge
};

class InternalQueueDisk {
 public:
  // `queue_depth` caps commands the drive accepts concurrently (like a
  // SCSI/NCQ tag limit); submissions beyond it are queued host-side in
  // arrival order and fed to the drive as tags free up.
  InternalQueueDisk(SimDisk* disk, FirmwarePolicy policy,
                    uint32_t queue_depth = 32);

  // Accepts the command immediately; `done` fires at completion.
  void Submit(DiskOp op, BlockAddr lba, uint32_t sectors,
              DiskCompletionFn done);

  size_t queued() const { return queue_.size(); }
  bool Idle() const { return queue_.empty() && !disk_->busy(); }
  SimDisk& disk() { return *disk_; }
  uint64_t reorderings() const { return reorderings_; }
  // Commands that completed with a non-kOk IoStatus (observed, not retried).
  uint64_t errors() const { return errors_; }

  // Attaches the observability collector for the host-visible queue-depth
  // series of this drive (nullptr detaches). The wrapped SimDisk has its own
  // SetTraceCollector for the per-command records.
  void SetTraceCollector(TraceCollector* collector, SlotId slot) {
    collector_ = collector;
    trace_slot_ = slot.value();
  }

 private:
  struct Command {
    DiskOp op;
    BlockAddr lba;
    uint32_t sectors;
    DiskCompletionFn done;
  };

  void MaybeStart();
  size_t PickNext() const;

  SimDisk* disk_;
  FirmwarePolicy policy_;
  uint32_t queue_depth_;
  std::vector<Command> queue_;  // commands accepted by the drive
  uint64_t reorderings_ = 0;    // times SATF bypassed the oldest command
  uint64_t errors_ = 0;         // completions with status != kOk
  TraceCollector* collector_ = nullptr;
  uint32_t trace_slot_ = 0;
};

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_DISK_QUEUED_DISK_H_
