#include "src/disk/seek_profile.h"

#include <cmath>

#include "src/util/check.h"

namespace mimdraid {

double SeekProfile::SeekUs(uint32_t distance, bool is_write) const {
  if (distance == 0) {
    return 0.0;
  }
  double t;
  if (distance < boundary_cylinders) {
    t = short_a_us + short_b_us * std::sqrt(static_cast<double>(distance));
  } else {
    t = long_a_us + long_b_us * static_cast<double>(distance);
  }
  if (is_write) {
    t += write_settle_us;
  }
  return t;
}

double SeekProfile::MaxSeekUs(uint32_t num_cylinders) const {
  MIMDRAID_CHECK_GT(num_cylinders, 1u);
  return SeekUs(num_cylinders - 1, /*is_write=*/false);
}

double SeekProfile::AverageRandomSeekUs(uint32_t num_cylinders) const {
  MIMDRAID_CHECK_GT(num_cylinders, 1u);
  // For uniform independent (from, to) over C cylinders, the distance d has
  // probability 2(C-d)/C^2 for d in [1, C-1] (and C/C^2 at d=0, costing 0).
  const double c = static_cast<double>(num_cylinders);
  double sum = 0.0;
  for (uint32_t d = 1; d < num_cylinders; ++d) {
    const double p = 2.0 * (c - d) / (c * c);
    sum += p * SeekUs(d, /*is_write=*/false);
  }
  return sum;
}

bool SeekProfile::WellFormed(double tol_us) const {
  if (boundary_cylinders < 2) {
    return false;
  }
  const double short_at_boundary =
      short_a_us + short_b_us * std::sqrt(static_cast<double>(boundary_cylinders));
  const double long_at_boundary =
      long_a_us + long_b_us * static_cast<double>(boundary_cylinders);
  if (std::abs(short_at_boundary - long_at_boundary) > tol_us) {
    return false;
  }
  return short_b_us >= 0.0 && long_b_us >= 0.0 && short_a_us >= 0.0 &&
         long_a_us >= 0.0 && head_switch_us >= 0.0 && write_settle_us >= 0.0;
}

SeekProfile MakeSt39133SeekProfile() {
  SeekProfile p;
  p.short_a_us = 600.0;
  p.short_b_us = 116.0;
  p.boundary_cylinders = 1400;
  // Long regime chosen continuous with the short regime at the boundary:
  // 600 + 116*sqrt(1400) = 4940.3; 3666 + 0.91*1400 = 4940.0.
  p.long_a_us = 3666.0;
  p.long_b_us = 0.91;
  p.head_switch_us = 900.0;
  p.write_settle_us = 800.0;
  MIMDRAID_CHECK(p.WellFormed());
  return p;
}

SeekProfile MakeTestSeekProfile() {
  SeekProfile p;
  p.short_a_us = 500.0;
  p.short_b_us = 100.0;
  p.boundary_cylinders = 16;
  // 500 + 100*4 = 900 at the boundary; 660 + 15*16 = 900.
  p.long_a_us = 660.0;
  p.long_b_us = 15.0;
  p.head_switch_us = 300.0;
  p.write_settle_us = 200.0;
  MIMDRAID_CHECK(p.WellFormed());
  return p;
}

}  // namespace mimdraid
