// Seek-time model.
//
// Seek time as a function of cylinder distance follows the classic two-regime
// shape (Ruemmler & Wilkes, "An Introduction to Disk Drive Modeling"): for
// short seeks the arm spends most of its time accelerating and the time grows
// with the square root of the distance; for long seeks the arm reaches a
// coast velocity and the time grows linearly. Writes pay an additional settle
// penalty because the fine-positioning tolerance is tighter for writing.
#ifndef MIMDRAID_SRC_DISK_SEEK_PROFILE_H_
#define MIMDRAID_SRC_DISK_SEEK_PROFILE_H_

#include <cstdint>

namespace mimdraid {

struct SeekProfile {
  // Short-seek regime: time_us = short_a_us + short_b_us * sqrt(distance),
  // for 1 <= distance < boundary_cylinders.
  double short_a_us = 600.0;
  double short_b_us = 116.0;
  // Long-seek regime: time_us = long_a_us + long_b_us * distance,
  // for distance >= boundary_cylinders.
  double long_a_us = 3660.0;
  double long_b_us = 0.91;
  uint32_t boundary_cylinders = 1400;
  // Head switch within a cylinder (no arm movement).
  double head_switch_us = 900.0;
  // Extra settle time charged to writes (tighter positioning tolerance).
  double write_settle_us = 800.0;

  // Seek time for the given cylinder distance. Zero distance costs nothing
  // (head-switch cost, if any, is charged separately by the timing model).
  double SeekUs(uint32_t distance, bool is_write) const;

  // Largest seek this profile will ever report for a disk with
  // `num_cylinders` cylinders (the full-stroke read seek).
  double MaxSeekUs(uint32_t num_cylinders) const;

  // Closed-form average read seek over uniformly random (from, to) cylinder
  // pairs, computed by numeric averaging over the distance distribution.
  double AverageRandomSeekUs(uint32_t num_cylinders) const;

  // True if the two regimes are continuous to within `tol_us` at the boundary
  // and both are monotonically non-decreasing.
  bool WellFormed(double tol_us = 50.0) const;
};

// Profile approximating the ST39133LWV (Table 1: 5.2 ms average read seek,
// 6.0 ms average write seek, ~10 ms full stroke).
SeekProfile MakeSt39133SeekProfile();

// Fast, exaggerated profile for unit tests (round numbers).
SeekProfile MakeTestSeekProfile();

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_DISK_SEEK_PROFILE_H_
