#include "src/disk/sim_disk.h"

#include <algorithm>
#include <utility>

#include "src/util/check.h"

namespace mimdraid {

SimDisk::SimDisk(Simulator* sim, const DiskGeometry& geometry,
                 const SeekProfile& profile, const DiskNoiseModel& noise,
                 uint64_t seed, double spindle_phase_us,
                 double rotation_us_override)
    : sim_(sim),
      geometry_(geometry),
      layout_(std::make_unique<DiskLayout>(&geometry_)),
      noise_(noise),
      rng_(seed) {
  MIMDRAID_CHECK(sim != nullptr);
  timing_ = std::make_unique<DiskTimingModel>(
      layout_.get(), profile, spindle_phase_us, rotation_us_override);
  head_.cylinder = layout_->first_data_cylinder();
  head_.head = 0;
}

void SimDisk::Start(DiskOp op, uint64_t lba, uint32_t sectors,
                    DiskCompletionFn done) {
  MIMDRAID_CHECK(!busy_);
  MIMDRAID_CHECK_GT(sectors, 0u);
  MIMDRAID_CHECK_LE(lba + sectors, layout_->num_data_sectors());
  busy_ = true;

  const SimTime start = sim_->Now();
  double overhead =
      rng_.Normal(noise_.overhead_mean_us, noise_.overhead_stddev_us);
  overhead = std::max(overhead, 0.0);
  if (noise_.hiccup_prob > 0.0 && rng_.Bernoulli(noise_.hiccup_prob)) {
    overhead += rng_.Exponential(noise_.hiccup_mean_us);
  }

  const AccessPlan plan =
      timing_->Plan(head_, static_cast<double>(start) + overhead, lba, sectors,
                    op == DiskOp::kWrite);
  double post = rng_.Normal(noise_.post_overhead_mean_us,
                            noise_.post_overhead_stddev_us);
  post = std::max(post, 0.0);
  const double total = overhead + plan.total_us + post;
  const SimTime completion = start + static_cast<SimTime>(total + 0.5);

  DiskOpResult result;
  result.start_us = start;
  result.completion_us = completion;
  result.overhead_us = overhead + post;
  result.seek_us = plan.seek_us;
  result.rotational_us = plan.rotational_us;
  result.transfer_us = plan.transfer_us;

  // Pre-built audit record (cheap PODs; only filled when auditing).
  DiskOpAudit audit;
  if (auditor_ != nullptr) {
    audit.disk = audit_disk_index_;
    audit.is_write = op == DiskOp::kWrite;
    audit.lba = lba;
    audit.sectors = sectors;
    audit.start_us = result.start_us;
    audit.completion_us = result.completion_us;
    audit.overhead_us = result.overhead_us;
    audit.seek_us = result.seek_us;
    audit.rotational_us = result.rotational_us;
    audit.transfer_us = result.transfer_us;
    audit.head_cylinder = plan.end_state.cylinder;
    audit.head_index = plan.end_state.head;
    audit.num_cylinders = geometry_.num_cylinders;
    audit.num_heads = geometry_.num_heads;
    audit.spindle_phase_us = timing_->spindle_phase_us();
    audit.rotation_us = timing_->rotation_us();
  }

  sim_->ScheduleAt(completion,
                   [this, plan, result, audit, cb = std::move(done)]() {
    head_ = plan.end_state;
    busy_ = false;
    ++ops_completed_;
    if (auditor_ != nullptr) {
      auditor_->OnDiskOpComplete(audit);
    }
    if (cb) {
      cb(result);
    }
  });
}

}  // namespace mimdraid
