#include "src/disk/sim_disk.h"

#include <algorithm>
#include <utility>

#include "src/util/check.h"

namespace mimdraid {

namespace {
// Electronics-only rejection time of a fail-stopped drive.
constexpr SimDuration kFailFastUs = SimDuration(100);
}  // namespace

SimDisk::SimDisk(Simulator* sim, const DiskGeometry& geometry,
                 const SeekProfile& profile, const DiskNoiseModel& noise,
                 uint64_t seed, double spindle_phase_us,
                 double rotation_us_override)
    : sim_(sim),
      geometry_(geometry),
      layout_(std::make_unique<DiskLayout>(&geometry_)),
      noise_(noise),
      rng_(seed) {
  MIMDRAID_CHECK(sim != nullptr);
  deterministic_noise_ = noise_.overhead_stddev_us == 0.0 &&
                         noise_.post_overhead_stddev_us == 0.0 &&
                         noise_.hiccup_prob <= 0.0;
  timing_ = std::make_unique<DiskTimingModel>(
      layout_.get(), profile, spindle_phase_us, rotation_us_override);
  head_.cylinder = layout_->first_data_cylinder();
  head_.head = 0;
}

void SimDisk::Start(DiskOp op, BlockAddr addr, uint32_t sectors,
                    DiskCompletionFn done) {
  const uint64_t lba = addr.value();
  MIMDRAID_CHECK(!busy_);
  MIMDRAID_CHECK_GT(sectors, 0u);
  MIMDRAID_CHECK_LE(lba + sectors, layout_->num_data_sectors());
  busy_ = true;

  const SimTime start = sim_->Now();

  FaultOutcome fault;
  if (fault_injector_ != nullptr) {
    fault = fault_injector_->OnAccess(audit_disk_index_, op == DiskOp::kWrite,
                                      lba, sectors);
  }
  if (fault.status == IoStatus::kDiskFailed ||
      fault.status == IoStatus::kTimeout) {
    // The command never reaches the media: dead electronics reject it almost
    // immediately; a hung drive holds it until the host watchdog (a simulator
    // timer armed per dispatched op) expires and aborts it. Either way the
    // arm does not move and the spindle state is untouched.
    const SimDuration hold =
        fault.status == IoStatus::kDiskFailed
            ? kFailFastUs
            : fault_injector_->options().watchdog_timeout_us;
    DiskOpResult result;
    result.status = fault.status;
    result.start_us = start;
    result.completion_us = start + hold;
    result.overhead_us = static_cast<double>(hold.us());
    inflight_result_ = result;
    if (auditor_ != nullptr) {
      inflight_audit_ =
          AuditFor(result, lba, sectors, op == DiskOp::kWrite, head_);
    }
    if (collector_ != nullptr) {
      inflight_trace_ = TraceFor(result, lba, sectors, op == DiskOp::kWrite);
    }
    inflight_done_ = std::move(done);
    inflight_mechanical_ = false;
    sim_->ScheduleAt(result.completion_us, [this] { CompleteInflight(); });
    return;
  }

  if (op == DiskOp::kWrite && fault_injector_ != nullptr) {
    // Firmware write reallocation: a write over a latent-bad sector remaps it
    // to the zone's spare space and stores the data there — rewriting a bad
    // replica is how the layers above repair latent errors. Remap before
    // timing so the access targets the sector's new physical home. If the
    // zone's spare space is exhausted the drive rewrites in place (heroic
    // retries) — the media error is still cleared.
    for (uint64_t bad :
         fault_injector_->LatentInRange(audit_disk_index_, lba, sectors)) {
      layout_->AddBadSector(bad);
      fault_injector_->OnWriteRepaired(audit_disk_index_, bad);
    }
  }

  // Deterministic noise models (all stddevs zero, no hiccups) collapse the
  // Gaussian draws to their means; skipping the sampler saves two Box-Muller
  // pairs per op. The drive RNG has no other consumers, so partially-noisy
  // models still take the sampling path with an unchanged stream.
  double overhead = deterministic_noise_
                        ? noise_.overhead_mean_us
                        : rng_.Normal(noise_.overhead_mean_us,
                                      noise_.overhead_stddev_us);
  overhead = std::max(overhead, 0.0);
  if (noise_.hiccup_prob > 0.0 && rng_.Bernoulli(noise_.hiccup_prob)) {
    overhead += rng_.Exponential(noise_.hiccup_mean_us);
  }
  if (fault.status == IoStatus::kMediaError) {
    // The drive burns revolutions on internal re-reads before giving up.
    overhead += fault_injector_->options().media_retry_penalty_us;
  }

  const AccessPlan plan =
      timing_->Plan(head_, static_cast<double>(start.us()) + overhead, lba, sectors,
                    op == DiskOp::kWrite);
  if (fault.service_multiplier > 1.0) {
    // Fail-slow drive: the mechanical access is stretched; book the stretch
    // as overhead so the decomposition still sums to the service time.
    overhead += (fault.service_multiplier - 1.0) * plan.total_us;
  }
  double post = deterministic_noise_
                    ? noise_.post_overhead_mean_us
                    : rng_.Normal(noise_.post_overhead_mean_us,
                                  noise_.post_overhead_stddev_us);
  post = std::max(post, 0.0);
  const double total = overhead + plan.total_us + post;
  const SimTime completion =
      start + SimDuration(static_cast<int64_t>(total + 0.5));

  DiskOpResult result;
  result.status = fault.status;
  result.start_us = start;
  result.completion_us = completion;
  result.overhead_us = overhead + post;
  result.seek_us = plan.seek_us;
  result.rotational_us = plan.rotational_us;
  result.transfer_us = plan.transfer_us;

  // Pre-built audit/trace records (cheap PODs; only filled when observed),
  // parked in the in-flight slot until the completion event fires.
  inflight_plan_ = plan;
  inflight_result_ = result;
  if (auditor_ != nullptr) {
    inflight_audit_ = AuditFor(result, lba, sectors, op == DiskOp::kWrite,
                               plan.end_state);
  }
  if (collector_ != nullptr) {
    inflight_trace_ = TraceFor(result, lba, sectors, op == DiskOp::kWrite);
  }
  inflight_done_ = std::move(done);
  inflight_mechanical_ = true;

  sim_->ScheduleAt(completion, [this] { CompleteInflight(); });
}

void SimDisk::CompleteInflight() {
  // Copy/move the in-flight state out before invoking the callback: the
  // callback routinely Start()s the next request, which re-fills the slot.
  const DiskOpResult result = inflight_result_;
  if (inflight_mechanical_) {
    head_ = inflight_plan_.end_state;
  }
  busy_ = false;
  if (result.status == IoStatus::kOk) {
    ++ops_completed_;
  } else {
    ++ops_failed_;
  }
  if (auditor_ != nullptr) {
    auditor_->OnDiskOpComplete(inflight_audit_);
  }
  if (collector_ != nullptr) {
    collector_->OnDiskOp(inflight_trace_);
  }
  DiskCompletionFn cb = std::move(inflight_done_);
  if (cb) {
    cb(result);
  }
}

DiskOpRecord SimDisk::TraceFor(const DiskOpResult& result, uint64_t lba,
                               uint32_t sectors, bool is_write) const {
  DiskOpRecord rec;
  rec.slot = trace_slot_;
  rec.is_write = is_write;
  rec.lba = lba;
  rec.sectors = sectors;
  rec.status = result.status;
  rec.start_us = result.start_us;
  rec.completion_us = result.completion_us;
  rec.overhead_us = result.overhead_us;
  rec.seek_us = result.seek_us;
  rec.rotational_us = result.rotational_us;
  rec.transfer_us = result.transfer_us;
  return rec;
}

DiskOpAudit SimDisk::AuditFor(const DiskOpResult& result, uint64_t lba,
                              uint32_t sectors, bool is_write,
                              const HeadState& end_state) const {
  DiskOpAudit audit;
  audit.disk = audit_disk_index_;
  audit.is_write = is_write;
  audit.lba = lba;
  audit.sectors = sectors;
  audit.start_us = result.start_us;
  audit.completion_us = result.completion_us;
  audit.overhead_us = result.overhead_us;
  audit.seek_us = result.seek_us;
  audit.rotational_us = result.rotational_us;
  audit.transfer_us = result.transfer_us;
  audit.head_cylinder = end_state.cylinder;
  audit.head_index = end_state.head;
  audit.num_cylinders = geometry_.num_cylinders;
  audit.num_heads = geometry_.num_heads;
  audit.spindle_phase_us = timing_->spindle_phase_us();
  audit.rotation_us = timing_->rotation_us();
  return audit;
}

}  // namespace mimdraid
