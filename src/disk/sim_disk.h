// Event-driven model of a single disk drive.
//
// SimDisk services one request at a time (the external scheduling layer owns
// the queue, matching the prototype architecture of Section 3.1 where the
// Scheduling Layer maintains a drive queue per physical disk). Service time
// is computed by DiskTimingModel with the drive's true spindle phase, plus a
// stochastic per-operation overhead that models OS + SCSI + controller
// processing. The overhead is the part the paper's head-position predictor
// cannot observe — it is what makes prediction a non-trivial problem.
#ifndef MIMDRAID_SRC_DISK_SIM_DISK_H_
#define MIMDRAID_SRC_DISK_SIM_DISK_H_

#include <cstdint>
#include <memory>

#include "src/disk/geometry.h"
#include "src/disk/layout.h"
#include "src/disk/seek_profile.h"
#include "src/disk/timing.h"
#include "src/obs/trace_collector.h"
#include "src/sim/auditor.h"
#include "src/sim/fault_injector.h"
#include "src/sim/io_status.h"
#include "src/sim/simulator.h"
#include "src/util/inline_fn.h"
#include "src/util/rng.h"

namespace mimdraid {

enum class DiskOp { kRead, kWrite };

// Stochastic request overhead. The pre-access part (command processing, bus,
// controller) delays the start of the mechanical access and is what causes
// rotational misses when a predicted wait was small; the post-access part
// (interrupt delivery, timestamping) jitters the observed completion time and
// is what limits the precision of timestamp-based calibration. A rare heavy
// tail models hiccups such as bus contention or thermal recalibration.
struct DiskNoiseModel {
  double overhead_mean_us = 300.0;
  double overhead_stddev_us = 40.0;
  double post_overhead_mean_us = 50.0;
  double post_overhead_stddev_us = 15.0;
  double hiccup_prob = 0.0;
  double hiccup_mean_us = 3000.0;

  // Noise-free instance for "pure simulator" runs: deterministic overheads.
  static DiskNoiseModel None() {
    return DiskNoiseModel{.overhead_mean_us = 300.0,
                          .overhead_stddev_us = 0.0,
                          .post_overhead_mean_us = 50.0,
                          .post_overhead_stddev_us = 0.0,
                          .hiccup_prob = 0.0,
                          .hiccup_mean_us = 0.0};
  }

  // Noise typical of the prototype platform (Table 1 environment).
  static DiskNoiseModel Prototype() {
    return DiskNoiseModel{.overhead_mean_us = 300.0,
                          .overhead_stddev_us = 40.0,
                          .post_overhead_mean_us = 50.0,
                          .post_overhead_stddev_us = 15.0,
                          .hiccup_prob = 0.001,
                          .hiccup_mean_us = 3000.0};
  }
};

struct DiskOpResult {
  // How the command ended. Anything but kOk means the data did not move;
  // the layer above decides between retry, failover, reconstruction, and
  // surfacing the error (see src/sim/io_status.h).
  IoStatus status = IoStatus::kOk;
  SimTime start_us;
  SimTime completion_us;
  // Decomposition of the service time (ground truth; used by statistics and
  // tests, never by the calibration layer).
  double overhead_us = 0.0;
  double seek_us = 0.0;
  double rotational_us = 0.0;
  double transfer_us = 0.0;

  SimDuration ServiceUs() const { return completion_us - start_us; }
  bool ok() const { return status == IoStatus::kOk; }
};

// Completion callback: move-only, invoked exactly once. The inline capacity
// covers the engine's two big closures — DriveSet's dispatch completion
// (carries a QueuedRequest) and InternalQueueDisk's firmware wrapper (carries
// a nested DiskCompletionFn) — so the steady I/O path never heap-allocates a
// callback.
using DiskCompletionFn = InlineFn<void(const DiskOpResult&), 144>;

class SimDisk {
 public:
  // `spindle_phase_us` sets where in its rotation the platter is at t=0;
  // unsynchronized spindles get distinct random phases from the array layer.
  // `rotation_us_override` lets the true spindle period deviate from nominal
  // (0 = nominal); see DiskTimingModel.
  SimDisk(Simulator* sim, const DiskGeometry& geometry,
          const SeekProfile& profile, const DiskNoiseModel& noise,
          uint64_t seed, double spindle_phase_us,
          double rotation_us_override = 0.0);

  SimDisk(const SimDisk&) = delete;
  SimDisk& operator=(const SimDisk&) = delete;

  // Begins servicing a request. The disk must be idle. `done` fires at the
  // simulated completion time, after the disk has returned to idle, so the
  // callback may immediately start the next request.
  void Start(DiskOp op, BlockAddr lba, uint32_t sectors, DiskCompletionFn done);

  bool busy() const { return busy_; }

  const DiskGeometry& geometry() const { return geometry_; }
  const DiskNoiseModel& noise() const { return noise_; }
  const DiskLayout& layout() const { return *layout_; }
  DiskLayout& mutable_layout() { return *layout_; }

  uint64_t ops_completed() const { return ops_completed_; }
  SimTime NowUs() const { return sim_->Now(); }
  uint64_t num_sectors() const { return layout_->num_data_sectors(); }

  // Attaches the runtime invariant auditor (nullptr detaches); `disk_index`
  // identifies this drive in audit reports. Borrowed, must outlive the disk.
  void SetAuditor(InvariantAuditor* auditor, SlotId disk_index) {
    auditor_ = auditor;
    audit_disk_index_ = disk_index.value();
  }

  // Attaches the fault injector (nullptr detaches); `disk_index` is the array
  // slot this drive occupies in the injector's state. Borrowed, must outlive
  // the disk. With an injector attached every Start() consults it:
  //  * fail-stop  -> the command is rejected almost immediately (kDiskFailed);
  //  * hang       -> the host watchdog timer aborts the command after
  //                  watchdog_timeout_us (kTimeout); the arm does not move;
  //  * media error-> the access runs mechanically (plus the drive's internal
  //                  retry penalty) but returns kMediaError;
  //  * fail-slow  -> mechanical time is stretched by the drive's multiplier.
  // Writes covering a latent-bad LBA trigger the firmware write-reallocation
  // path: the sector is remapped to spare space (DiskLayout::AddBadSector)
  // and the latent error is cleared — rewriting a bad replica repairs it.
  void SetFaultInjector(FaultInjector* injector, SlotId disk_index) {
    fault_injector_ = injector;
    audit_disk_index_ = disk_index.value();
  }
  FaultInjector* fault_injector() const { return fault_injector_; }

  // Attaches the observability collector (nullptr detaches); `slot` labels
  // this drive's track in the trace. Borrowed, must outlive the disk. Kept
  // separate from audit_disk_index_ so tracing composes with auditing and
  // fault injection without ordering constraints between the Set* calls.
  void SetTraceCollector(TraceCollector* collector, SlotId slot) {
    collector_ = collector;
    trace_slot_ = slot.value();
  }
  TraceCollector* trace_collector() const { return collector_; }

  uint64_t ops_failed() const { return ops_failed_; }

  // --- Introspection for tests and oracle experiments only. ---
  // Production components (calibration, schedulers) must treat the drive as a
  // black box and work from completion timestamps.
  const HeadState& DebugHeadState() const { return head_; }
  double DebugSpindlePhaseUs() const { return timing_->spindle_phase_us(); }
  const DiskTimingModel& DebugTimingModel() const { return *timing_; }

 private:
  DiskOpAudit AuditFor(const DiskOpResult& result, uint64_t lba,
                       uint32_t sectors, bool is_write,
                       const HeadState& end_state) const;
  DiskOpRecord TraceFor(const DiskOpResult& result, uint64_t lba,
                        uint32_t sectors, bool is_write) const;
  // Fires at the simulated completion time of the in-flight operation.
  void CompleteInflight();

  Simulator* sim_;
  DiskGeometry geometry_;
  std::unique_ptr<DiskLayout> layout_;
  std::unique_ptr<DiskTimingModel> timing_;
  DiskNoiseModel noise_;
  Rng rng_;
  // All noise stddevs zero and no hiccups: overhead draws collapse to means.
  bool deterministic_noise_ = false;
  HeadState head_;
  bool busy_ = false;
  uint64_t ops_completed_ = 0;
  uint64_t ops_failed_ = 0;
  InvariantAuditor* auditor_ = nullptr;
  FaultInjector* fault_injector_ = nullptr;
  uint32_t audit_disk_index_ = 0;
  TraceCollector* collector_ = nullptr;
  uint32_t trace_slot_ = 0;

  // In-flight operation state. The disk services one request at a time, so
  // the completion event only needs to capture `this` (8 bytes) instead of
  // closing over plan/result/audit/trace/callback (~330 bytes, which forced
  // a heap allocation per op under std::function). CompleteInflight() reads
  // these, releases the disk to idle, then invokes the moved-out callback —
  // which may immediately Start() the next request and overwrite them.
  AccessPlan inflight_plan_;
  DiskOpResult inflight_result_;
  DiskOpAudit inflight_audit_;
  DiskOpRecord inflight_trace_;
  DiskCompletionFn inflight_done_;
  bool inflight_mechanical_ = false;  // false: fault path, arm never moved
};

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_DISK_SIM_DISK_H_
