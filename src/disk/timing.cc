#include "src/disk/timing.h"

#include <cmath>

#include "src/util/check.h"

namespace mimdraid {

DiskTimingModel::DiskTimingModel(const DiskLayout* layout,
                                 const SeekProfile& profile,
                                 double spindle_phase_us,
                                 double rotation_us_override)
    : layout_(layout),
      profile_(profile),
      rotation_us_(rotation_us_override > 0.0
                       ? rotation_us_override
                       : static_cast<double>(layout->geometry().RotationUs().us())),
      spindle_phase_us_(spindle_phase_us) {
  MIMDRAID_CHECK(layout != nullptr);
}

double DiskTimingModel::SpindleAngleAt(double t_us) const {
  const double revs = (t_us - spindle_phase_us_) / rotation_us_;
  double frac = revs - std::floor(revs);
  if (frac >= 1.0) {
    frac -= 1.0;
  }
  return frac;
}

double DiskTimingModel::TimeUntilAngle(double t_us, double angle) const {
  double delta = angle - SpindleAngleAt(t_us);
  delta -= std::floor(delta);
  if (delta >= 1.0) {
    delta -= 1.0;
  }
  // Catch tolerance: if the target slot started passing within the last
  // couple of microseconds (sector preamble/tolerance on a real drive, and
  // integer-microsecond timestamp rounding here), the access still makes it.
  // Without this, a perfectly chained sequential handoff can round past the
  // slot edge and be charged a full spurious rotation.
  const double catch_frac = 2.0 / rotation_us_;
  if (delta > 1.0 - catch_frac) {
    delta = 0.0;
  }
  return delta * rotation_us_;
}

AccessPlan DiskTimingModel::Plan(const HeadState& from, double start_us,
                                 uint64_t lba, uint32_t sectors,
                                 bool is_write) const {
  MIMDRAID_CHECK_GT(sectors, 0u);
  const DiskGeometry& geo = layout_->geometry();
  AccessPlan plan;
  double t = start_us;
  HeadState cur = from;
  uint64_t next_lba = lba;
  uint32_t remaining = sectors;

  while (remaining > 0) {
    const Chs chs = layout_->ToChs(next_lba);
    const uint32_t spt = geo.SectorsPerTrack(chs.cylinder);
    const double slot_time = rotation_us_ / spt;

    // Length of the physically contiguous run on this track: LBAs advance one
    // slot at a time until the track ends or a remapped sector breaks the run.
    uint32_t run = spt - chs.sector;
    if (run > remaining) {
      run = remaining;
    }
    if (layout_->IsRemapped(next_lba)) {
      run = 1;  // remapped sector lives alone on the spare track
    } else {
      for (uint32_t i = 1; i < run; ++i) {
        if (layout_->IsRemapped(next_lba + i)) {
          run = i;
          break;
        }
      }
    }

    // Positioning: seek dominates a concurrent head switch.
    if (chs.cylinder != cur.cylinder) {
      const uint32_t dist = chs.cylinder > cur.cylinder
                                ? chs.cylinder - cur.cylinder
                                : cur.cylinder - chs.cylinder;
      const double seek = profile_.SeekUs(dist, is_write);
      plan.seek_us += seek;
      t += seek;
    } else if (chs.head != cur.head) {
      plan.seek_us += profile_.head_switch_us;
      t += profile_.head_switch_us;
    }
    cur.cylinder = chs.cylinder;
    cur.head = chs.head;

    // Rotational wait until the run's first slot comes under the head.
    const uint32_t slot = layout_->SlotOf(chs);
    const double wait = TimeUntilAngle(t, static_cast<double>(slot) / spt);
    plan.rotational_us += wait;
    t += wait;

    // Media transfer of the run (slots are consecutive by construction).
    const double xfer = run * slot_time;
    plan.transfer_us += xfer;
    t += xfer;

    next_lba += run;
    remaining -= run;
  }

  plan.end_state = cur;
  plan.total_us = t - start_us;
  return plan;
}

}  // namespace mimdraid
