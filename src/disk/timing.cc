#include "src/disk/timing.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace mimdraid {

DiskTimingModel::DiskTimingModel(const DiskLayout* layout,
                                 const SeekProfile& profile,
                                 double spindle_phase_us,
                                 double rotation_us_override)
    : layout_(layout),
      profile_(profile),
      rotation_us_(rotation_us_override > 0.0
                       ? rotation_us_override
                       : static_cast<double>(layout->geometry().RotationUs().us())),
      spindle_phase_us_(spindle_phase_us) {
  MIMDRAID_CHECK(layout != nullptr);
  for (const Zone& zone : layout->geometry().zones) {
    max_sectors_per_track_ = std::max(max_sectors_per_track_,
                                      zone.sectors_per_track);
  }
  min_slot_time_us_ = rotation_us_ / max_sectors_per_track_;
}

double DiskTimingModel::SpindleAngleAt(double t_us) const {
  const double revs = (t_us - spindle_phase_us_) / rotation_us_;
  double frac = revs - std::floor(revs);
  if (frac >= 1.0) {
    frac -= 1.0;
  }
  return frac;
}

double DiskTimingModel::TimeUntilAngle(double t_us, double angle) const {
  double delta = angle - SpindleAngleAt(t_us);
  delta -= std::floor(delta);
  if (delta >= 1.0) {
    delta -= 1.0;
  }
  // Catch tolerance: if the target slot started passing within the last
  // couple of microseconds (sector preamble/tolerance on a real drive, and
  // integer-microsecond timestamp rounding here), the access still makes it.
  // Without this, a perfectly chained sequential handoff can round past the
  // slot edge and be charged a full spurious rotation.
  const double catch_frac = 2.0 / rotation_us_;
  if (delta > 1.0 - catch_frac) {
    delta = 0.0;
  }
  return delta * rotation_us_;
}

double DiskTimingModel::SeekLowerBoundUs(const HeadState& from, uint64_t lba,
                                         uint32_t sectors,
                                         bool is_write) const {
  const Chs chs = layout_->ToChs(lba);
  double seek = 0.0;
  if (chs.cylinder != from.cylinder) {
    const uint32_t dist = chs.cylinder > from.cylinder
                              ? chs.cylinder - from.cylinder
                              : from.cylinder - chs.cylinder;
    seek = profile_.SeekUs(dist, is_write);
  }
  // Same rounding margin as AccessLowerBoundUs: Plan() accumulates the
  // transfer run by run, which can round an ulp below sectors * min_slot.
  return seek + sectors * min_slot_time_us_ - 1e-3;
}

double DiskTimingModel::AccessLowerBoundUs(const HeadState& from,
                                           double start_us, uint64_t lba,
                                           uint32_t sectors,
                                           bool is_write) const {
  const Chs chs = layout_->ToChs(lba);
  double seek = 0.0;
  if (chs.cylinder != from.cylinder) {
    const uint32_t dist = chs.cylinder > from.cylinder
                              ? chs.cylinder - from.cylinder
                              : from.cylinder - chs.cylinder;
    seek = profile_.SeekUs(dist, is_write);
  }
  const Zone& z = layout_->geometry().ZoneOf(chs.cylinder);
  const double wait = TimeUntilAngle(
      start_us, static_cast<double>(layout_->SlotOf(chs, z)) /
                    z.sectors_per_track);
  // Rounding margin: the bound and Plan() evaluate the same exact-arithmetic
  // quantities through different association orders, so the bound can land a
  // few ulps (~1e-11 us in practice) above the true total. One nanosecond of
  // slack keeps this a certain lower bound; the only cost is a spare full
  // prediction when a candidate's bound is within 1 ns of the running best.
  constexpr double kRoundingMarginUs = 1e-3;
  return std::max(seek, wait) + sectors * min_slot_time_us_ - kRoundingMarginUs;
}

AccessPlan DiskTimingModel::Plan(const HeadState& from, double start_us,
                                 uint64_t lba, uint32_t sectors,
                                 bool is_write) const {
  MIMDRAID_CHECK_GT(sectors, 0u);
  const DiskGeometry& geo = layout_->geometry();
  AccessPlan plan;
  double t = start_us;
  HeadState cur = from;
  uint64_t next_lba = lba;
  uint32_t remaining = sectors;

  while (remaining > 0) {
    const Chs chs = layout_->ToChs(next_lba);
    const Zone& zone = geo.ZoneOf(chs.cylinder);
    const uint32_t spt = zone.sectors_per_track;
    const double slot_time = rotation_us_ / spt;

    // Length of the physically contiguous run on this track: LBAs advance one
    // slot at a time until the track ends or a remapped sector breaks the run.
    uint32_t run = spt - chs.sector;
    if (run > remaining) {
      run = remaining;
    }
    if (layout_->has_remaps()) {
      if (layout_->IsRemapped(next_lba)) {
        run = 1;  // remapped sector lives alone on the spare track
      } else {
        for (uint32_t i = 1; i < run; ++i) {
          if (layout_->IsRemapped(next_lba + i)) {
            run = i;
            break;
          }
        }
      }
    }

    // Positioning: seek dominates a concurrent head switch.
    if (chs.cylinder != cur.cylinder) {
      const uint32_t dist = chs.cylinder > cur.cylinder
                                ? chs.cylinder - cur.cylinder
                                : cur.cylinder - chs.cylinder;
      const double seek = profile_.SeekUs(dist, is_write);
      plan.seek_us += seek;
      t += seek;
    } else if (chs.head != cur.head) {
      plan.seek_us += profile_.head_switch_us;
      t += profile_.head_switch_us;
    }
    cur.cylinder = chs.cylinder;
    cur.head = chs.head;

    // Rotational wait until the run's first slot comes under the head.
    const uint32_t slot = layout_->SlotOf(chs, zone);
    const double wait = TimeUntilAngle(t, static_cast<double>(slot) / spt);
    plan.rotational_us += wait;
    t += wait;

    // Media transfer of the run (slots are consecutive by construction).
    const double xfer = run * slot_time;
    plan.transfer_us += xfer;
    t += xfer;

    next_lba += run;
    remaining -= run;
  }

  plan.end_state = cur;
  plan.total_us = t - start_us;
  return plan;
}

}  // namespace mimdraid
