// Mechanical timing model for a zoned disk.
//
// Given a head state and a start time, DiskTimingModel computes the full
// service timeline of an access: seek, rotational wait, and transfer
// (including track/cylinder crossings mid-transfer). The same model is used
// in two roles:
//   * inside SimDisk with the drive's *true* spindle phase — this is the
//     ground truth the simulator executes;
//   * inside the calibration layer with an *estimated* phase and extracted
//     parameters — this is the paper's software head-position predictor.
// Sharing the math guarantees that prediction error comes only from estimate
// error and unobservable noise, as on a real drive.
#ifndef MIMDRAID_SRC_DISK_TIMING_H_
#define MIMDRAID_SRC_DISK_TIMING_H_

#include <cstdint>

#include "src/disk/layout.h"
#include "src/disk/seek_profile.h"

namespace mimdraid {

struct HeadState {
  uint32_t cylinder = 0;
  uint32_t head = 0;

  bool operator==(const HeadState&) const = default;
};

struct AccessPlan {
  double seek_us = 0.0;        // arm movement + head switches
  double rotational_us = 0.0;  // rotational waits (all runs)
  double transfer_us = 0.0;    // media transfer
  double total_us = 0.0;
  HeadState end_state;
};

class DiskTimingModel {
 public:
  // `spindle_phase_us` is the time of a (virtual) index-mark passage: slot 0
  // of an unskewed track is under the head whenever
  // (t - spindle_phase_us) mod R == 0.
  // `rotation_us_override` replaces the nominal rotation period derived from
  // the geometry's RPM; real spindles run within a small tolerance of nominal
  // (~tens of ppm), which is why the paper's predictor must re-calibrate
  // periodically. Pass 0 to use the nominal period.
  DiskTimingModel(const DiskLayout* layout, const SeekProfile& profile,
                  double spindle_phase_us, double rotation_us_override = 0.0);

  // Timeline for accessing `sectors` sectors starting at `lba`, with the arm
  // at `from`, starting at absolute time `start_us`.
  AccessPlan Plan(const HeadState& from, double start_us, uint64_t lba,
                  uint32_t sectors, bool is_write) const;

  // --- Cheap lower bounds on Plan(...).total_us, for scheduler pruning. ---
  // Both avoid the run-splitting walk (and its per-sector remap probes), so
  // they cost a ToChs + table lookup instead of a full timeline build.
  //
  // Phase-oblivious bound: first-run seek plus minimum transfer. Valid for
  // every candidate replica on `lba`'s cylinder (the seek term depends only
  // on the cylinder, the transfer term only on the sector count).
  double SeekLowerBoundUs(const HeadState& from, uint64_t lba,
                          uint32_t sectors, bool is_write) const;
  // Phase-aware bound for one candidate:
  //   max(seek, rotational wait from start_us) + sectors * MinSlotTimeUs().
  // Validity: Plan >= seek + wait(start+seek) + transfer, and
  // wait(start) <= seek + wait(start+seek) because the first slot passage
  // after start+seek is never earlier than the first after start (the catch
  // tolerance shifts both passages identically, so the inequality survives
  // it).
  double AccessLowerBoundUs(const HeadState& from, double start_us,
                            uint64_t lba, uint32_t sectors,
                            bool is_write) const;
  // Fastest per-sector media transfer anywhere on the disk (outermost zone).
  double MinSlotTimeUs() const { return min_slot_time_us_; }

  // Fraction of a revolution [0, 1) the platter has rotated past the index
  // mark at time t.
  double SpindleAngleAt(double t_us) const;

  // Delay from t until the platter reaches `angle` (fraction in [0, 1)).
  double TimeUntilAngle(double t_us, double angle) const;

  const DiskLayout& layout() const { return *layout_; }
  const SeekProfile& seek_profile() const { return profile_; }
  double rotation_us() const { return rotation_us_; }

  double spindle_phase_us() const { return spindle_phase_us_; }
  void set_spindle_phase_us(double phase_us) { spindle_phase_us_ = phase_us; }
  // Also refreshes MinSlotTimeUs(): the per-slot floor scales with the
  // rotation period, and a stale (larger) floor would break the lower-bound
  // guarantee after a downward re-estimate.
  void set_rotation_us(double rotation_us) {
    rotation_us_ = rotation_us;
    min_slot_time_us_ = rotation_us_ / max_sectors_per_track_;
  }

 private:
  const DiskLayout* layout_;
  SeekProfile profile_;
  double rotation_us_;
  double spindle_phase_us_;
  double min_slot_time_us_ = 0.0;
  uint32_t max_sectors_per_track_ = 1;
};

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_DISK_TIMING_H_
