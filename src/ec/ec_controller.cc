#include "src/ec/ec_controller.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "src/util/check.h"

namespace mimdraid {

namespace {

// Status severity follows enum declaration order.
IoStatus Worse(IoStatus a, IoStatus b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

DriveSetOptions EngineOptions(const EcControllerOptions& options) {
  DriveSetOptions engine;
  engine.scheduler = options.scheduler;
  engine.max_scan = options.max_scan;
  engine.auditor = options.auditor;
  engine.fault_injector = options.fault_injector;
  engine.collector = options.collector;
  engine.retry = options.retry;
  engine.disk_error_fail_threshold = options.disk_error_fail_threshold;
  engine.scrub_interval_us = options.scrub_interval_us;
  engine.scrub_gating = options.scrub_gating;
  return engine;
}

}  // namespace

EcController::EcController(Simulator* sim, std::vector<SimDisk*> disks,
                           std::vector<AccessPredictor*> predictors,
                           const EcLayout* layout, const EcCodec* codec,
                           const EcControllerOptions& options)
    : sim_(sim),
      layout_(layout),
      codec_(codec),
      options_(options),
      auditor_(options.auditor),
      collector_(options.collector) {
  MIMDRAID_CHECK(sim != nullptr);
  MIMDRAID_CHECK(layout != nullptr);
  MIMDRAID_CHECK(codec != nullptr);
  MIMDRAID_CHECK_EQ(disks.size(), layout->num_disks());
  MIMDRAID_CHECK_EQ(predictors.size(), disks.size());
  MIMDRAID_CHECK_EQ(codec->n(), layout->num_disks());
  MIMDRAID_CHECK_EQ(codec->k(), layout->data_shards());
  drives_ = std::make_unique<DriveSet>(sim, std::move(disks),
                                       std::move(predictors),
                                       static_cast<DriveSetClient*>(this),
                                       EngineOptions(options));
  drives_->StartScrub();
}

EcController::~EcController() = default;

bool EcController::Idle() const {
  if (!ops_.empty() || rebuilding_disk_ >= 0 || !rebuild_queue_.empty() ||
      drives_->pending_recovery() > 0) {
    return false;
  }
  return drives_->AllDrivesQuiet();
}

void EcController::AuditQuiescent() const {
  if (auditor_ == nullptr) {
    return;
  }
  auditor_->CheckQuiescent(drives_->TotalFgQueued(),
                           drives_->TotalDelayedQueued(),
                           /*nvram_entries=*/0, /*stale_sectors=*/0,
                           /*inflight_writes=*/0, /*parked_requests=*/0);
}

void EcController::ExportStats(StatsRegistry* registry) const {
  MIMDRAID_CHECK(registry != nullptr);
  ExportFaultStats(drives_->fstats(), registry);
  registry->Set("ec.reads_completed",
                static_cast<double>(stats_.reads_completed));
  registry->Set("ec.writes_completed",
                static_cast<double>(stats_.writes_completed));
  registry->Set("ec.rmw_writes", static_cast<double>(stats_.rmw_writes));
  registry->Set("ec.reconstruct_writes",
                static_cast<double>(stats_.reconstruct_writes));
  registry->Set("ec.degraded_reads",
                static_cast<double>(stats_.degraded_reads));
  registry->Set("ec.degraded_writes",
                static_cast<double>(stats_.degraded_writes));
  registry->Set("ec.rebuilt_rows", static_cast<double>(stats_.rebuilt_rows));
}

bool EcController::FailDisk(SlotId disk) {
  MIMDRAID_CHECK_LT(disk.value(), drives_->num_slots());
  if (drives_->failed(disk)) {
    return true;
  }
  drives_->MarkFailed(disk);
  if (drives_->fault_injector() != nullptr) {
    drives_->fault_injector()->FailStop(disk.value());
  }
  drives_->FailQueuedCommands(disk);
  return true;
}

void EcController::OnEntryComplete(SlotId /*disk*/,
                                   const QueuedRequest& /*entry*/,
                                   BlockAddr /*chosen_lba*/,
                                   const DiskOpResult& /*result*/) {
  // Every erasure sub-op registers a command callback with the engine; a
  // completion falling through to the raw-entry hook means the command table
  // lost an entry.
  MIMDRAID_CHECK(false);
}

void EcController::OnSlotFailed(SlotId disk) {
  drives_->FailQueuedCommands(disk);
}

bool EcController::SparePromotionAllowed(SlotId /*disk*/) {
  // Always: a promotion while another slot is rebuilding queues behind it
  // (the slot stays marked failed until its own pass starts).
  return true;
}

uint64_t EcController::UsedSpanSectors(SlotId /*disk*/) const {
  return static_cast<uint64_t>(layout_->num_rows()) *
         layout_->stripe_unit_sectors();
}

void EcController::OnSparePromoted(SlotId disk) {
  // The spare holds no data yet: rebuild the slot through a decode set as
  // soon as a rebuild slot frees up (immediately when none is active).
  DoneFn done = [this](const IoResult& r) {
    if (r.status == IoStatus::kOk) {
      ++fstats().spare_rebuilds_completed;
    }
  };
  if (rebuilding_disk_ >= 0) {
    rebuild_queue_.push_back(QueuedRebuild{disk, std::move(done)});
    return;
  }
  StartRebuild(disk, std::move(done));
}

bool EcController::ScrubEligible() const {
  return ops_.empty() && rebuilding_disk_ < 0 && rebuild_queue_.empty();
}

void EcController::ScrubStep() {
  const uint32_t rows = layout_->num_rows();
  if (rows == 0) {
    return;
  }
  if (scrub_cursor_ >= rows) {
    scrub_cursor_ = 0;
    ++fstats().scrub_sweeps_completed;
    fstats().scrub_last_sweep_coverage =
        sweep_sectors_nominal_ == 0
            ? 0.0
            : static_cast<double>(sweep_sectors_issued_) /
                  static_cast<double>(sweep_sectors_nominal_);
    sweep_sectors_issued_ = 0;
    sweep_sectors_nominal_ = 0;
  }
  const uint32_t row = scrub_cursor_++;
  const uint32_t unit = layout_->stripe_unit_sectors();
  const uint64_t lba = static_cast<uint64_t>(row) * unit;
  for (uint32_t d = 0; d < layout_->num_disks(); ++d) {
    sweep_sectors_nominal_ += unit;
    if (!DiskUsable(d, row)) {
      continue;
    }
    sweep_sectors_issued_ += unit;
    EnqueueDiskOp(
        d, DiskOp::kRead, lba, unit,
        [this, d, lba, unit](const DiskOpResult& r, uint64_t id) {
          ++fstats().scrub_reads;
          fstats().scrub_sectors_read += unit;
          if (r.ok()) {
            return;
          }
          if (r.status == IoStatus::kMediaError &&
              !drives_->failed(SlotId(d))) {
            // Latent sector error caught before a failure could turn it into
            // data loss: rewrite the unit so the drive reallocates the bad
            // sectors. The replacement contents are reconstructible from the
            // row peers read by this same sweep.
            ++fstats().scrub_repairs;
            ++fstats().repairs_queued;
            EnqueueDiskOp(d, DiskOp::kWrite, lba, unit,
                          [this](const DiskOpResult& w, uint64_t wid) {
                            if (!w.ok()) {
                              ResolveCommandFault(
                                  wid, FaultResolution::kSurfaced,
                                  w.status == IoStatus::kDiskFailed);
                            }
                          });
            ResolveCommandFault(id, FaultResolution::kRepaired,
                                /*target_disk_failed=*/false);
            return;
          }
          const bool disk_failed = drives_->failed(SlotId(d));
          ResolveCommandFault(id,
                              disk_failed ? FaultResolution::kAbandoned
                                          : FaultResolution::kSurfaced,
                              disk_failed);
        });
  }
}

bool EcController::DiskUsable(uint32_t disk, uint32_t row) const {
  if (drives_->failed(SlotId(disk))) {
    return false;  // covers slots waiting in the rebuild queue too
  }
  if (rebuilding_disk_ == static_cast<int>(disk)) {
    return row < rebuilt_rows_;
  }
  return true;
}

std::vector<uint32_t> EcController::ReadableColumns(
    uint32_t row, uint32_t excluding_disk, uint32_t unreadable_disk) const {
  std::vector<uint32_t> cols;
  for (uint32_t d = 0; d < layout_->num_disks(); ++d) {
    if (d == excluding_disk || d == unreadable_disk) {
      continue;
    }
    if (DiskUsable(d, row)) {
      cols.push_back(d);
    }
  }
  return cols;
}

void EcController::Submit(DiskOp op, uint64_t lba, uint32_t sectors,
                          DoneFn done) {
  MIMDRAID_CHECK_GT(sectors, 0u);
  const uint64_t op_id = next_op_id_++;
  if (collector_ != nullptr) {
    collector_->OnRequestArrival(op_id, op == DiskOp::kWrite, lba, sectors,
                                 sim_->Now());
  }
  const std::vector<EcFragment> frags = layout_->Map(lba, sectors);
  PendingOp& pending = ops_[op_id];
  pending.remaining = static_cast<uint32_t>(frags.size());
  pending.done = std::move(done);
  pending.op = op;
  for (const EcFragment& frag : frags) {
    if (op == DiskOp::kRead) {
      SubmitReadFragment(op_id, frag);
    } else {
      SubmitWriteFragment(op_id, frag);
    }
  }
}

void EcController::SubmitReadFragment(uint64_t op_id, const EcFragment& frag,
                                      bool force_degraded,
                                      bool repair_on_success) {
  auto work = std::make_shared<FragWork>();
  work->op_id = op_id;
  work->frag = frag;
  work->op = DiskOp::kRead;
  work->force_degraded = force_degraded;
  work->repair_pending = repair_on_success;

  if (!force_degraded && DiskUsable(frag.data_disk, frag.row)) {
    work->phase_remaining = 1;
    EnqueueDiskOp(
        frag.data_disk, DiskOp::kRead, frag.disk_lba, frag.sectors,
        [this, work](const DiskOpResult& r, uint64_t id) {
          if (work->abandoned) {
            if (!r.ok()) {
              ResolveCommandFault(id, FaultResolution::kSurfaced,
                                  r.status == IoStatus::kDiskFailed);
            }
            return;
          }
          if (r.ok()) {
            FragmentPhaseDone(work, r.completion_us, &r);
            return;
          }
          // Direct read failed past the retry budget: fail over to decode
          // reconstruction. A media error additionally queues a repair
          // rewrite once the data is back in hand.
          work->abandoned = true;
          NoteOpRecovery(work->op_id);
          ++fstats().failovers;
          const bool repair =
              r.status == IoStatus::kMediaError &&
              !drives_->failed(SlotId(work->frag.data_disk));
          ResolveCommandFault(id, FaultResolution::kFailedOver,
                              drives_->failed(SlotId(work->frag.data_disk)));
          SubmitReadFragment(work->op_id, work->frag,
                             /*force_degraded=*/true, repair);
        });
    return;
  }

  // Degraded read: decode the missing data unit through any k readable
  // columns. Columns are taken in ascending disk order — deterministic, and
  // Cauchy generators make every k-subset invertible.
  std::vector<uint32_t> cols =
      ReadableColumns(frag.row, frag.data_disk, layout_->num_disks());
  if (cols.size() < codec_->k()) {
    // More than m row members are gone: the data is lost. Finish the
    // fragment gracefully instead of crashing.
    CompleteFragmentFailed(op_id, IoStatus::kUnrecoverable);
    return;
  }
  cols.resize(codec_->k());
  std::vector<uint32_t> positions;
  positions.reserve(cols.size());
  for (uint32_t d : cols) {
    positions.push_back(layout_->PositionOfDisk(frag.row, d));
  }
  MIMDRAID_CHECK(codec_->CanDecodeFrom(positions));
  work->degraded = true;
  work->phase_remaining = static_cast<int>(cols.size());
  ++stats_.degraded_reads;
  ++fstats().reconstructions;
  for (uint32_t d : cols) {
    EnqueueDiskOp(d, DiskOp::kRead, frag.disk_lba, frag.sectors,
                  [this, work](const DiskOpResult& r, uint64_t id) {
                    if (!r.ok()) {
                      // A fault while decoding an already-missing member:
                      // the loss is surfaced to the submitter.
                      ResolveCommandFault(id, FaultResolution::kSurfaced,
                                          r.status == IoStatus::kDiskFailed);
                    }
                    if (work->abandoned) {
                      return;
                    }
                    if (!r.ok()) {
                      work->status =
                          Worse(work->status, IoStatus::kUnrecoverable);
                    }
                    FragmentPhaseDone(work, r.completion_us, &r);
                  });
  }
}

void EcController::SubmitWriteFragment(uint64_t op_id, const EcFragment& frag,
                                       bool force_degraded) {
  auto work = std::make_shared<FragWork>();
  work->op_id = op_id;
  work->frag = frag;
  work->op = DiskOp::kWrite;
  work->force_degraded = force_degraded;

  const uint32_t k = codec_->k();
  const uint32_t m = codec_->m();
  const bool data_writable = DiskUsable(frag.data_disk, frag.row);
  const bool data_readable = data_writable && !force_degraded;
  uint32_t live_parities = 0;
  for (uint32_t j = 0; j < m; ++j) {
    if (DiskUsable(layout_->ParityDiskOf(frag.row, j), frag.row)) {
      ++live_parities;
    }
  }
  if (!data_writable && live_parities == 0) {
    // Neither the data unit nor any parity can record the write: the
    // fragment's contents cannot be persisted anywhere.
    CompleteFragmentFailed(op_id, IoStatus::kUnrecoverable);
    return;
  }
  const bool degraded =
      force_degraded || !data_writable || live_parities < m;
  if (degraded) {
    work->degraded = true;
    ++stats_.degraded_writes;
  }

  if (live_parities == 0) {
    // No parity to maintain: just write the data.
    work->phase_remaining = 1;
    FragmentPhaseDone(work, sim_->Now());
    return;
  }

  // Price the two parity-update strategies by read count (the write count —
  // data if writable plus every live parity — is identical under both):
  //   RMW          1 + live_parities  (old data + old parities; needs the
  //                                    old data readable)
  //   RCW direct   k - 1              (every other data column readable)
  //   RCW decode   k                  (any k readable columns reconstruct
  //                                    the other data units first)
  // and take the argmin, tied toward RMW. RCW-direct dominates RCW-decode
  // whenever it is valid, so at most one RCW variant competes.
  const uint32_t rmw_reads = 1 + live_parities;
  std::vector<uint32_t> other_data;
  bool others_readable = true;
  for (uint32_t s = 0; s < k; ++s) {
    if (s == frag.shard_index) {
      continue;
    }
    const uint32_t d = layout_->DataDiskOf(frag.row, s);
    other_data.push_back(d);
    if (!DiskUsable(d, frag.row)) {
      others_readable = false;
    }
  }
  std::vector<uint32_t> rcw_reads;
  bool rcw_valid = false;
  if (others_readable) {
    rcw_reads = std::move(other_data);
    rcw_valid = true;
  } else {
    // A sibling data column is down: reconstruct it (and the rest) through
    // an arbitrary decode set. The target's own old unit is a valid decode
    // column unless its contents are what we failed to read.
    std::vector<uint32_t> cols = ReadableColumns(
        frag.row, layout_->num_disks(),
        force_degraded ? frag.data_disk : layout_->num_disks());
    if (cols.size() >= k) {
      cols.resize(k);
      std::vector<uint32_t> positions;
      positions.reserve(cols.size());
      for (uint32_t d : cols) {
        positions.push_back(layout_->PositionOfDisk(frag.row, d));
      }
      MIMDRAID_CHECK(codec_->CanDecodeFrom(positions));
      rcw_reads = std::move(cols);
      rcw_valid = true;
    }
  }

  const bool rmw_valid = data_readable;
  if (!rmw_valid && !rcw_valid) {
    // Fewer than k readable columns and no old data to delta against: the
    // new parity cannot be computed.
    CompleteFragmentFailed(op_id, IoStatus::kUnrecoverable);
    return;
  }
  const bool use_rmw =
      rmw_valid &&
      (!rcw_valid || rmw_reads <= static_cast<uint32_t>(rcw_reads.size()));

  // Shared handler for every read-phase sub-op of a write fragment.
  auto read_cb = [this, work](const DiskOpResult& r, uint64_t id) {
    if (work->abandoned) {
      if (!r.ok()) {
        ResolveCommandFault(id, FaultResolution::kSurfaced,
                            r.status == IoStatus::kDiskFailed);
      }
      return;
    }
    if (!r.ok()) {
      if (r.status == IoStatus::kDiskFailed) {
        // Row membership changed under us: re-plan against the survivors.
        work->abandoned = true;
        NoteOpRecovery(work->op_id);
        ResolveCommandFault(id, FaultResolution::kFailedOver,
                            /*target_disk_failed=*/true);
        SubmitWriteFragment(work->op_id, work->frag, work->force_degraded);
        return;
      }
      if (!work->force_degraded) {
        // A pre-image is unreadable; re-plan once with the old data treated
        // as lost (forcing a reconstruct-write that avoids it).
        work->abandoned = true;
        NoteOpRecovery(work->op_id);
        ++fstats().failovers;
        ResolveCommandFault(id, FaultResolution::kFailedOver,
                            /*target_disk_failed=*/false);
        SubmitWriteFragment(work->op_id, work->frag, /*force_degraded=*/true);
        return;
      }
      // Already on the fallback plan and a decode column is unreadable: the
      // new parity cannot be computed.
      work->status = Worse(work->status, IoStatus::kUnrecoverable);
      ResolveCommandFault(id, FaultResolution::kSurfaced,
                          /*target_disk_failed=*/false);
    }
    FragmentPhaseDone(work, r.completion_us, &r);
  };

  if (use_rmw) {
    ++stats_.rmw_writes;
    work->phase_remaining = static_cast<int>(rmw_reads);
    EnqueueDiskOp(frag.data_disk, DiskOp::kRead, frag.disk_lba, frag.sectors,
                  read_cb);
    for (uint32_t j = 0; j < m; ++j) {
      const uint32_t p = layout_->ParityDiskOf(frag.row, j);
      if (DiskUsable(p, frag.row)) {
        EnqueueDiskOp(p, DiskOp::kRead, frag.disk_lba, frag.sectors, read_cb);
      }
    }
    return;
  }

  ++stats_.reconstruct_writes;
  work->phase_remaining = static_cast<int>(rcw_reads.size());
  if (work->phase_remaining == 0) {
    // k == 1: the new data alone determines every parity.
    work->phase_remaining = 1;
    FragmentPhaseDone(work, sim_->Now());
    return;
  }
  for (uint32_t d : rcw_reads) {
    EnqueueDiskOp(d, DiskOp::kRead, frag.disk_lba, frag.sectors, read_cb);
  }
}

void EcController::FragmentPhaseDone(const std::shared_ptr<FragWork>& work,
                                     SimTime completion,
                                     const DiskOpResult* last) {
  MIMDRAID_CHECK_GT(work->phase_remaining, 0);
  if (--work->phase_remaining > 0) {
    return;
  }
  const EcFragment& frag = work->frag;
  if (work->op == DiskOp::kRead) {
    if (work->status == IoStatus::kOk && work->repair_pending &&
        DiskUsable(frag.data_disk, frag.row)) {
      // Reconstructed data in hand: rewrite the latent-bad sectors so the
      // drive reallocates them. Best-effort — if the rewrite fails the next
      // read simply degrades again.
      ++fstats().repairs_queued;
      EnqueueDiskOp(frag.data_disk, DiskOp::kWrite, frag.disk_lba,
                    frag.sectors,
                    [this](const DiskOpResult& w, uint64_t id) {
                      if (!w.ok()) {
                        ResolveCommandFault(id, FaultResolution::kSurfaced,
                                            w.status == IoStatus::kDiskFailed);
                      }
                    });
    }
    OpPartDone(work->op_id, completion, work->status, last);
    return;
  }

  // Write: the read phase (if any) is done.
  if (work->status != IoStatus::kOk) {
    // A pre-image or decode read failed; the new parity cannot be computed.
    OpPartDone(work->op_id, completion, work->status, last);
    return;
  }
  const bool data_ok = DiskUsable(frag.data_disk, frag.row);
  std::vector<uint32_t> parity_targets;
  for (uint32_t j = 0; j < codec_->m(); ++j) {
    const uint32_t p = layout_->ParityDiskOf(frag.row, j);
    if (DiskUsable(p, frag.row)) {
      parity_targets.push_back(p);
    }
  }
  auto writes = std::make_shared<int>(0);
  auto on_write = [this, work, writes](const DiskOpResult& r, uint64_t id) {
    if (work->abandoned) {
      if (!r.ok()) {
        ResolveCommandFault(id, FaultResolution::kSurfaced,
                            r.status == IoStatus::kDiskFailed);
      }
      return;
    }
    if (!r.ok()) {
      if (r.status == IoStatus::kDiskFailed) {
        // The target died mid-write: re-plan the fragment; the surviving
        // members are (re)written by the new plan.
        work->abandoned = true;
        NoteOpRecovery(work->op_id);
        ResolveCommandFault(id, FaultResolution::kFailedOver,
                            /*target_disk_failed=*/true);
        SubmitWriteFragment(work->op_id, work->frag, work->force_degraded);
        return;
      }
      work->status = Worse(work->status, IoStatus::kUnrecoverable);
      ResolveCommandFault(id, FaultResolution::kSurfaced,
                          /*target_disk_failed=*/false);
    }
    MIMDRAID_CHECK_GT(*writes, 0);
    if (--*writes == 0) {
      OpPartDone(work->op_id, r.completion_us, work->status, &r);
    }
  };
  *writes = (data_ok ? 1 : 0) + static_cast<int>(parity_targets.size());
  if (*writes == 0) {
    // Every target died while the reads were in flight.
    CompleteFragmentFailed(work->op_id, IoStatus::kUnrecoverable);
    return;
  }
  if (data_ok) {
    EnqueueDiskOp(frag.data_disk, DiskOp::kWrite, frag.disk_lba, frag.sectors,
                  on_write);
  }
  for (uint32_t p : parity_targets) {
    EnqueueDiskOp(p, DiskOp::kWrite, frag.disk_lba, frag.sectors, on_write);
  }
}

void EcController::OpPartDone(uint64_t op_id, SimTime completion,
                              IoStatus status, const DiskOpResult* last) {
  auto it = ops_.find(op_id);
  MIMDRAID_CHECK(it != ops_.end());
  PendingOp& pending = it->second;
  if (collector_ != nullptr && last != nullptr &&
      completion >= pending.last_completion) {
    pending.has_leg = true;
    pending.leg.entry_arrival_us = last->start_us;
    pending.leg.disk_start_us = last->start_us;
    pending.leg.overhead_us = last->overhead_us;
    pending.leg.seek_us = last->seek_us;
    pending.leg.rotational_us = last->rotational_us;
    pending.leg.transfer_us = last->transfer_us;
  }
  pending.last_completion = std::max(pending.last_completion, completion);
  pending.status = Worse(pending.status, status);
  MIMDRAID_CHECK_GT(pending.remaining, 0u);
  if (--pending.remaining == 0) {
    IoResult out;
    out.status = pending.status == IoStatus::kOk ? IoStatus::kOk
                                                 : IoStatus::kUnrecoverable;
    out.completion_us = pending.last_completion;
    out.recovery_attempts = pending.recovery_attempts;
    if (out.status == IoStatus::kOk) {
      if (pending.op == DiskOp::kRead) {
        ++stats_.reads_completed;
      } else {
        ++stats_.writes_completed;
      }
    } else {
      ++fstats().unrecoverable_completions;
    }
    if (collector_ != nullptr) {
      collector_->OnRequestComplete(op_id, out.status, out.completion_us,
                                    out.recovery_attempts,
                                    pending.has_leg ? &pending.leg : nullptr);
    }
    DoneFn done = std::move(pending.done);
    ops_.erase(it);
    if (done) {
      done(out);
    }
  }
}

void EcController::CompleteFragmentFailed(uint64_t op_id, IoStatus status) {
  drives_->CompleteDeferred(
      [this, op_id, status] { OpPartDone(op_id, sim_->Now(), status); });
}

void EcController::NoteOpRecovery(uint64_t op_id) {
  auto it = ops_.find(op_id);
  if (it != ops_.end()) {
    ++it->second.recovery_attempts;
  }
}

void EcController::EnqueueDiskOp(uint32_t disk, DiskOp op, uint64_t lba,
                                 uint32_t sectors,
                                 DriveSet::CommandDoneFn done,
                                 uint32_t attempts) {
  // The controller tracks its stripe ops by its own op ids; the engine entry
  // id is only meaningful to the DriveSet retry machinery.
  (void)drives_->EnqueueCommand(  // mdl-ok(MDL002): engine id unused by policy
      SlotId(disk), op, BlockAddr(lba), sectors, std::move(done), attempts);
}

void EcController::ResolveCommandFault(uint64_t id, FaultResolution resolution,
                                       bool target_disk_failed) {
  if (id != 0) {
    drives_->ResolveFault(id, resolution, target_disk_failed);
  }
}

void EcController::Rebuild(SlotId disk, DoneFn done) {
  MIMDRAID_CHECK(drives_->failed(disk));
  if (rebuilding_disk_ >= 0) {
    rebuild_queue_.push_back(QueuedRebuild{disk, std::move(done)});
    return;
  }
  StartRebuild(disk, std::move(done));
}

void EcController::StartRebuild(SlotId disk, DoneFn done) {
  MIMDRAID_CHECK(drives_->failed(disk));
  MIMDRAID_CHECK_LT(rebuilding_disk_, 0);
  drives_->MarkReplaced(disk);  // the replacement drive is in the slot
  if (drives_->fault_injector() != nullptr) {
    drives_->fault_injector()->ReplaceDisk(disk.value());
  }
  rebuilding_disk_ = static_cast<int>(disk.value());
  rebuilt_rows_ = 0;
  rebuild_rows_lost_ = 0;
  rebuild_done_ = std::move(done);
  RebuildNextRow();
}

void EcController::FinishRebuild(IoStatus status) {
  rebuilding_disk_ = -1;
  DoneFn done = std::move(rebuild_done_);
  rebuild_done_ = nullptr;
  if (done) {
    IoResult out;
    out.status = status;
    out.completion_us = sim_->Now();
    done(out);
  }
  if (!rebuild_queue_.empty()) {
    QueuedRebuild next = std::move(rebuild_queue_.front());
    rebuild_queue_.pop_front();
    StartRebuild(next.slot, std::move(next.done));
  }
}

void EcController::AbortRebuild(uint32_t disk) {
  if (rebuilding_disk_ != static_cast<int>(disk)) {
    return;
  }
  // The replacement drive itself died; a queued slot (if any) takes over.
  FinishRebuild(IoStatus::kDiskFailed);
}

void EcController::RebuildNextRow() {
  MIMDRAID_CHECK_GE(rebuilding_disk_, 0);
  const uint32_t disk = static_cast<uint32_t>(rebuilding_disk_);
  if (drives_->failed(SlotId(disk))) {
    AbortRebuild(disk);
    return;
  }
  while (rebuilt_rows_ < layout_->num_rows()) {
    const uint32_t row = rebuilt_rows_;
    const uint32_t unit = layout_->stripe_unit_sectors();
    const uint64_t lba = static_cast<uint64_t>(row) * unit;
    // The target's unit — data or parity alike — is recomputed from any k
    // readable columns of the row.
    std::vector<uint32_t> cols =
        ReadableColumns(row, disk, layout_->num_disks());
    if (cols.size() < codec_->k()) {
      // Too many concurrent losses: this row cannot be reconstructed. Note
      // the loss and keep going — later faults must not wedge the rebuild.
      ++fstats().rebuild_fragments_lost;
      ++rebuild_rows_lost_;
      ++rebuilt_rows_;
      continue;
    }
    cols.resize(codec_->k());
    std::vector<uint32_t> positions;
    positions.reserve(cols.size());
    for (uint32_t d : cols) {
      positions.push_back(layout_->PositionOfDisk(row, d));
    }
    MIMDRAID_CHECK(codec_->CanDecodeFrom(positions));
    auto remaining = std::make_shared<int>(static_cast<int>(cols.size()));
    auto lost = std::make_shared<bool>(false);
    auto column_died = std::make_shared<bool>(false);
    auto after_reads = [this, disk, lba, unit, remaining, lost,
                        column_died](const DiskOpResult& r, uint64_t id) {
      if (!r.ok()) {
        ResolveCommandFault(id, FaultResolution::kSurfaced,
                            r.status == IoStatus::kDiskFailed);
        *lost = true;
        if (r.status == IoStatus::kDiskFailed) {
          *column_died = true;
        }
      }
      if (--*remaining > 0) {
        return;
      }
      if (drives_->failed(SlotId(disk))) {
        AbortRebuild(disk);
        return;
      }
      if (*column_died) {
        // A decode column fail-stopped mid-row. The engine has already
        // marked it failed, so the readable set shrank: re-plan the same
        // row through the survivors — with m > 1 it may still decode.
        // Terminates because each re-plan consumes a disk failure.
        RebuildNextRow();
        return;
      }
      if (*lost) {
        ++fstats().rebuild_fragments_lost;
        ++rebuild_rows_lost_;
        ++rebuilt_rows_;
        RebuildNextRow();
        return;
      }
      EnqueueDiskOp(
          disk, DiskOp::kWrite, lba, unit,
          [this, disk](const DiskOpResult& w, uint64_t wid) {
            if (!w.ok()) {
              ResolveCommandFault(wid, FaultResolution::kSurfaced,
                                  w.status == IoStatus::kDiskFailed);
            }
            if (!w.ok() && drives_->failed(SlotId(disk))) {
              AbortRebuild(disk);
              return;
            }
            if (!w.ok()) {
              ++fstats().rebuild_fragments_lost;
              ++rebuild_rows_lost_;
            } else {
              ++stats_.rebuilt_rows;
            }
            ++rebuilt_rows_;
            RebuildNextRow();
          });
    };
    for (uint32_t d : cols) {
      EnqueueDiskOp(d, DiskOp::kRead, lba, unit, after_reads);
    }
    return;
  }
  FinishRebuild(rebuild_rows_lost_ > 0 ? IoStatus::kUnrecoverable
                                       : IoStatus::kOk);
}

}  // namespace mimdraid
