// General (k+m) erasure-coded array controller: Reed-Solomon/Cauchy coding
// over GF(2^8), degraded reads via matrix-inversion reconstruction,
// multi-fault tolerance up to m concurrent failures with multi-slot rebuild,
// and per-request parity-update strategy selection (read-modify-write vs
// reconstruct-write by I/O-count argmin).
//
// This is the third ArrayBackend and the capacity-efficient, deep-redundancy
// end of the paper's frontier: k+1 reproduces RAID-5's geometry, k+2 is
// RAID-6, larger m buys tolerance of m concurrent failures at k/(k+m)
// capacity efficiency. Like Raid5Controller it is a pure policy layer: the
// per-drive machinery — scheduler queues, dispatch, bounded retry, fault
// counting, auto-fail, hot-spare promotion, the scrub timer, observer
// wiring — lives in the shared DriveSet engine.
//
// Write planning: for a fragment targeting data shard D with p <= m live
// parity columns, read-modify-write costs (1 + p) reads + (1 + p) writes
// (old data + old parities in, deltas out) and needs D readable;
// reconstruct-write costs (k - 1) reads when every other data column is
// readable, or k reads through an arbitrary decode set otherwise, plus the
// same writes. The controller prices both and takes the cheaper plan, tied
// toward RMW. With fewer than k readable columns and no RMW path the
// fragment completes with IoStatus::kUnrecoverable — never a crash.
//
// Rebuild: slots queue. One slot rebuilds at a time (row by row through a
// k-column decode set); further failed slots whose spares promote while a
// rebuild streams wait in FIFO order and are served degraded until their
// turn. Up to m concurrent failures stay fully serviceable throughout.
#ifndef MIMDRAID_SRC_EC_EC_CONTROLLER_H_
#define MIMDRAID_SRC_EC_EC_CONTROLLER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/disk/access_predictor.h"
#include "src/disk/sim_disk.h"
#include "src/ec/ec_layout.h"
#include "src/ec/gf256.h"
#include "src/io/array_backend.h"
#include "src/io/drive_set.h"
#include "src/obs/trace_collector.h"
#include "src/sched/scheduler.h"
#include "src/sim/auditor.h"
#include "src/sim/fault_injector.h"
#include "src/sim/io_status.h"
#include "src/sim/simulator.h"
#include "src/stats/fault_stats.h"

namespace mimdraid {

struct EcControllerOptions {
  SchedulerKind scheduler = SchedulerKind::kSatf;
  size_t max_scan = 0;
  // Debug tripwire: when set, the controller wires this runtime invariant
  // auditor into the simulator, every disk, and every per-drive scheduler.
  // Borrowed; must outlive the controller. Observes only.
  InvariantAuditor* auditor = nullptr;
  // Optional fault injection: wired into every disk so media accesses can
  // fail. nullptr leaves the fault path dormant (every access returns kOk).
  FaultInjector* fault_injector = nullptr;
  // Optional observability: wired into every disk; the controller reports
  // request lifecycle, queue depth, and dispatch prediction error to it.
  // Borrowed; must outlive the controller. Observes only.
  TraceCollector* collector = nullptr;
  // Bounded retry with exponential backoff for transient errors and timeouts
  // on individual disk commands.
  RetryPolicy retry;
  // Consecutive-error budget per disk before the engine declares the drive
  // failed and promotes a hot spare (0 = never auto-fail on errors; an
  // explicit kDiskFailed status always auto-fails).
  uint32_t disk_error_fail_threshold = 0;
  // Period of the background scrubber (0 = off); see Raid5ControllerOptions.
  SimDuration scrub_interval_us;
  // Whether scrub ticks defer to foreground activity or fire every period.
  ScrubGating scrub_gating = ScrubGating::kIdleGated;
};

struct EcControllerStats {
  uint64_t reads_completed = 0;
  uint64_t writes_completed = 0;
  // Strategy counts (every write fragment lands in exactly one):
  uint64_t rmw_writes = 0;          // parity delta from old data + old parity
  uint64_t reconstruct_writes = 0;  // parity recomputed from the data columns
  uint64_t degraded_reads = 0;      // served through a decode set
  // Write fragments planned around at least one unusable row member (counted
  // in addition to the strategy tally above).
  uint64_t degraded_writes = 0;
  uint64_t rebuilt_rows = 0;
};

class EcController : public ArrayBackend, private DriveSetClient {
 public:
  using DoneFn = ArrayBackend::DoneFn;

  // `codec` and `layout` are borrowed and must outlive the controller;
  // codec->n() must equal layout->num_disks() and codec->k() the layout's
  // data_shards().
  EcController(Simulator* sim, std::vector<SimDisk*> disks,
               std::vector<AccessPredictor*> predictors,
               const EcLayout* layout, const EcCodec* codec,
               const EcControllerOptions& options);

  EcController(const EcController&) = delete;
  EcController& operator=(const EcController&) = delete;

  ~EcController() override;

  void Submit(DiskOp op, uint64_t lba, uint32_t sectors, DoneFn done) override;

  // Logical capacity (parity excluded): rows * k * unit.
  uint64_t dataset_sectors() const override {
    return layout_->data_capacity_sectors();
  }

  // Marks a disk failed. Up to m concurrent losses are survived: reads
  // decode through any k live columns, writes re-plan around the missing
  // members. Past m, affected fragments complete with
  // IoStatus::kUnrecoverable instead of crashing. Always returns true: every
  // single loss is covered by the code.
  bool FailDisk(SlotId disk) override;
  bool IsFailed(SlotId disk) const override { return drives_->failed(disk); }

  // Reconstructs the (replaced) failed disk row by row through a k-column
  // decode set. When another rebuild is already streaming the slot queues
  // and starts when its turn comes; `done` fires when that slot's pass ends
  // (kOk fully restored, kUnrecoverable rows were lost, kDiskFailed the
  // replacement died mid-rebuild).
  void Rebuild(SlotId disk, DoneFn done) override;
  bool RebuildInProgress() const override { return rebuilding_disk_ >= 0; }

  void AddSpare(SimDisk* disk, AccessPredictor* predictor) override {
    drives_->AddSpare(disk, predictor);
  }
  size_t spares_available() const override {
    return drives_->spares_available();
  }

  const EcControllerStats& stats() const { return stats_; }
  const FaultRecoveryStats& fault_stats() const override {
    return drives_->fstats();
  }
  uint64_t disk_error_count(SlotId disk) const {
    return drives_->error_count(disk);
  }
  const EcLayout& layout() const { return *layout_; }
  const EcCodec& codec() const { return *codec_; }
  bool Idle() const override;

  // Publishes "fault.*" and "ec.*" counters.
  void ExportStats(StatsRegistry* registry) const override;

  void StopScrub() override { drives_->StopScrub(); }
  void StartScrub() override { drives_->StartScrub(); }
  uint64_t scrub_sweeps_completed() const {
    return drives_->fstats().scrub_sweeps_completed;
  }

  void AuditQuiescent() const override;

 private:
  struct PendingOp {
    uint32_t remaining = 0;
    DoneFn done;
    SimTime last_completion;
    DiskOp op = DiskOp::kRead;
    // Worst status across the op's fragments; only kOk or kUnrecoverable is
    // surfaced to the submitter.
    IoStatus status = IoStatus::kOk;
    uint32_t recovery_attempts = 0;
    // Final-leg decomposition, as in Raid5Controller: the completing sub-op's
    // disk phases; everything earlier lands in the recovery residual.
    bool has_leg = false;
    FinalLeg leg;
  };

  // One logical fragment moving through its phases (reads, then writes).
  // Owned by shared_ptr because several disk sub-ops reference it.
  struct FragWork {
    uint64_t op_id = 0;
    EcFragment frag;
    DiskOp op = DiskOp::kRead;
    int phase_remaining = 0;
    bool degraded = false;
    // Set when the fragment was re-planned (disk failure or media-error
    // fallback); stale sub-op completions for an abandoned plan are ignored.
    bool abandoned = false;
    // Plan as if the data disk's old contents were unreadable (a media error
    // exhausted its retry budget).
    bool force_degraded = false;
    // After a media-error read is served via reconstruction, rewrite the bad
    // sectors so the drive reallocates them.
    bool repair_pending = false;
    // Worst verdict across the fragment's sub-operations.
    IoStatus status = IoStatus::kOk;
  };

  struct QueuedRebuild {
    SlotId slot;
    DoneFn done;
  };

  // --- DriveSetClient hooks ---
  // Every sub-op is an engine command; raw entries never reach the policy.
  void OnEntryComplete(SlotId disk, const QueuedRequest& entry,
                       BlockAddr chosen_lba,
                       const DiskOpResult& result) override;
  void OnSlotFailed(SlotId disk) override;
  // Promotion is always allowed: unlike RAID-5's single rebuild cursor, a
  // promotion during a rebuild queues behind it instead of clobbering it.
  bool SparePromotionAllowed(SlotId disk) override;
  uint64_t UsedSpanSectors(SlotId disk) const override;
  void OnSparePromoted(SlotId disk) override;
  bool ScrubEligible() const override;
  // One scrub chunk: reads every usable unit of the next stripe row.
  void ScrubStep() override;

  void SubmitReadFragment(uint64_t op_id, const EcFragment& frag,
                          bool force_degraded = false,
                          bool repair_on_success = false);
  void SubmitWriteFragment(uint64_t op_id, const EcFragment& frag,
                           bool force_degraded = false);
  void EnqueueDiskOp(uint32_t disk, DiskOp op, uint64_t lba, uint32_t sectors,
                     DriveSet::CommandDoneFn done, uint32_t attempts = 0);
  void ResolveCommandFault(uint64_t id, FaultResolution resolution,
                           bool target_disk_failed);
  void FragmentPhaseDone(const std::shared_ptr<FragWork>& work,
                         SimTime completion, const DiskOpResult* last = nullptr);
  void OpPartDone(uint64_t op_id, SimTime completion, IoStatus status,
                  const DiskOpResult* last = nullptr);
  void CompleteFragmentFailed(uint64_t op_id, IoStatus status);
  void NoteOpRecovery(uint64_t op_id);

  void StartRebuild(SlotId disk, DoneFn done);
  void FinishRebuild(IoStatus status);
  void AbortRebuild(uint32_t disk);
  void RebuildNextRow();

  // True if the disk holds valid row data right now (alive, not waiting in
  // the rebuild queue, and — when it is the active rebuild target — already
  // rebuilt past the row).
  bool DiskUsable(uint32_t disk, uint32_t row) const;
  // Columns of `row` whose old contents are readable for decode purposes,
  // in ascending disk order, excluding `excluding_disk` (pass num_disks()
  // to exclude none). `unreadable_disk` marks a disk whose drive is alive
  // but whose unit for this row cannot be read (media-error fallback).
  std::vector<uint32_t> ReadableColumns(uint32_t row, uint32_t excluding_disk,
                                        uint32_t unreadable_disk) const;

  FaultRecoveryStats& fstats() { return drives_->fstats(); }

  Simulator* sim_;
  const EcLayout* layout_;
  const EcCodec* codec_;
  EcControllerOptions options_;
  InvariantAuditor* auditor_ = nullptr;
  TraceCollector* collector_ = nullptr;

  std::unique_ptr<DriveSet> drives_;

  std::unordered_map<uint64_t, PendingOp> ops_;
  uint64_t next_op_id_ = 1;

  // Active rebuild: rows < rebuilt_rows_ of rebuilding_disk_ are valid.
  int rebuilding_disk_ = -1;
  uint32_t rebuilt_rows_ = 0;
  DoneFn rebuild_done_;
  uint64_t rebuild_rows_lost_ = 0;
  // Slots waiting for the active rebuild to finish. Queued slots stay marked
  // failed (their promoted spare holds no data yet), so service keeps
  // decoding around them until their pass starts.
  std::deque<QueuedRebuild> rebuild_queue_;

  uint32_t scrub_cursor_ = 0;  // next stripe row to sweep
  uint64_t sweep_sectors_issued_ = 0;
  uint64_t sweep_sectors_nominal_ = 0;

  EcControllerStats stats_;
};

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_EC_EC_CONTROLLER_H_
