#include "src/ec/ec_layout.h"

#include <algorithm>

namespace mimdraid {

EcLayout::EcLayout(uint32_t num_disks, uint32_t data_shards,
                   uint32_t stripe_unit_sectors, uint64_t per_disk_sectors)
    : num_disks_(num_disks),
      k_(data_shards),
      unit_(stripe_unit_sectors),
      per_disk_sectors_(per_disk_sectors) {
  MIMDRAID_CHECK_GE(num_disks, 2u);
  MIMDRAID_CHECK_GE(data_shards, 1u);
  MIMDRAID_CHECK_LT(data_shards, num_disks);
  MIMDRAID_CHECK_GT(stripe_unit_sectors, 0u);
  rows_ = static_cast<uint32_t>(per_disk_sectors / unit_);
  MIMDRAID_CHECK_GT(rows_, 0u);
  data_capacity_ = static_cast<uint64_t>(rows_) * k_ * unit_;
}

std::vector<EcFragment> EcLayout::Map(uint64_t lba, uint32_t sectors) const {
  MIMDRAID_CHECK_GT(sectors, 0u);
  MIMDRAID_CHECK_LE(lba + sectors, data_capacity_);
  std::vector<EcFragment> out;
  uint64_t cur = lba;
  uint32_t remaining = sectors;
  while (remaining > 0) {
    const uint64_t unit_index = cur / unit_;
    const uint32_t offset = static_cast<uint32_t>(cur % unit_);
    const uint32_t row = static_cast<uint32_t>(unit_index / k_);
    const uint32_t shard = static_cast<uint32_t>(unit_index % k_);
    EcFragment frag;
    frag.logical_lba = cur;
    frag.sectors = std::min(remaining, unit_ - offset);
    frag.row = row;
    frag.shard_index = shard;
    frag.data_disk = DataDiskOf(row, shard);
    // Every row member (data and parity) mirrors the same in-row offset.
    frag.disk_lba = static_cast<uint64_t>(row) * unit_ + offset;
    out.push_back(frag);
    cur += frag.sectors;
    remaining -= frag.sectors;
  }
  return out;
}

std::vector<uint32_t> EcLayout::RowPeers(uint32_t row,
                                         uint32_t excluding_disk) const {
  (void)row;  // every disk participates in every row (data or parity)
  std::vector<uint32_t> peers;
  for (uint32_t d = 0; d < num_disks_; ++d) {
    if (d != excluding_disk) {
      peers.push_back(d);
    }
  }
  return peers;
}

}  // namespace mimdraid
