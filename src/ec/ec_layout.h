// Rotated (k+m) erasure-coded layout.
//
// Generalizes the left-symmetric RAID-5 geometry to m parity shards: each
// stripe row holds k data units and m parity units, and the whole
// (data..parity) position pattern rotates by one disk per row so parity
// traffic spreads evenly across the array. k+1 reproduces the RAID-5 shape;
// k+2 is RAID-6; larger m buys deeper fault tolerance at k/(k+m) capacity
// efficiency — the frontier points bench_abl_capacity plots.
#ifndef MIMDRAID_SRC_EC_EC_LAYOUT_H_
#define MIMDRAID_SRC_EC_EC_LAYOUT_H_

#include <cstdint>
#include <vector>

#include "src/util/check.h"

namespace mimdraid {

// A piece of a logical request confined to one stripe unit.
struct EcFragment {
  uint64_t logical_lba = 0;
  uint32_t sectors = 0;
  uint32_t shard_index = 0;  // data shard position within the row (0..k-1)
  uint32_t data_disk = 0;
  uint64_t disk_lba = 0;  // location of the data on data_disk
  uint32_t row = 0;       // stripe row index
};

class EcLayout {
 public:
  // `num_disks` = k + m drives; `data_shards` = k in [1, num_disks);
  // `stripe_unit_sectors` data sectors per unit; `per_disk_sectors` usable
  // sectors on each drive.
  EcLayout(uint32_t num_disks, uint32_t data_shards,
           uint32_t stripe_unit_sectors, uint64_t per_disk_sectors);

  uint32_t num_disks() const { return num_disks_; }
  uint32_t data_shards() const { return k_; }
  uint32_t parity_shards() const { return num_disks_ - k_; }
  uint32_t stripe_unit_sectors() const { return unit_; }
  uint64_t data_capacity_sectors() const { return data_capacity_; }
  uint32_t num_rows() const { return rows_; }

  // Disk holding stripe position `position` of `row`. Positions 0..k-1 are
  // the data shards, k..k+m-1 the parity shards; the whole pattern rotates
  // one disk per row.
  uint32_t DiskOfPosition(uint32_t row, uint32_t position) const {
    MIMDRAID_CHECK_LT(position, num_disks_);
    return (position + row) % num_disks_;
  }
  uint32_t DataDiskOf(uint32_t row, uint32_t shard) const {
    MIMDRAID_CHECK_LT(shard, k_);
    return DiskOfPosition(row, shard);
  }
  uint32_t ParityDiskOf(uint32_t row, uint32_t parity) const {
    MIMDRAID_CHECK_LT(parity, parity_shards());
    return DiskOfPosition(row, k_ + parity);
  }
  // Inverse of DiskOfPosition: the stripe position `disk` plays in `row`.
  uint32_t PositionOfDisk(uint32_t row, uint32_t disk) const {
    MIMDRAID_CHECK_LT(disk, num_disks_);
    return (disk + num_disks_ - row % num_disks_) % num_disks_;
  }

  // Splits a logical request into per-unit fragments.
  std::vector<EcFragment> Map(uint64_t lba, uint32_t sectors) const;

  // Disks holding the other units of `row` (the superset a reconstruction
  // chooses its k decode columns from).
  std::vector<uint32_t> RowPeers(uint32_t row, uint32_t excluding_disk) const;

 private:
  uint32_t num_disks_;
  uint32_t k_;
  uint32_t unit_;
  uint64_t per_disk_sectors_;
  uint32_t rows_;
  uint64_t data_capacity_;
};

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_EC_EC_LAYOUT_H_
