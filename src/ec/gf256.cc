#include "src/ec/gf256.h"

#include "src/util/check.h"

namespace mimdraid {

namespace {

// Log/exp tables for GF(2^8) over 0x11D, built once at startup. exp is
// doubled so Mul can index log[a] + log[b] without a modular reduction.
struct GfTables {
  uint8_t exp[512];
  uint8_t log[256];
};

GfTables BuildTables() {
  GfTables t{};
  uint32_t x = 1;
  for (uint32_t i = 0; i < 255; ++i) {
    t.exp[i] = static_cast<uint8_t>(x);
    t.log[x] = static_cast<uint8_t>(i);
    x <<= 1;
    if (x & 0x100) {
      x ^= 0x11D;
    }
  }
  for (uint32_t i = 255; i < 512; ++i) {
    t.exp[i] = t.exp[i - 255];
  }
  return t;
}

const GfTables kGf = BuildTables();

}  // namespace

namespace gf256 {

uint8_t Mul(uint8_t a, uint8_t b) {
  if (a == 0 || b == 0) {
    return 0;
  }
  return kGf.exp[kGf.log[a] + kGf.log[b]];
}

uint8_t Inv(uint8_t a) {
  MIMDRAID_CHECK_NE(a, 0);
  return kGf.exp[255 - kGf.log[a]];
}

uint8_t Div(uint8_t a, uint8_t b) {
  MIMDRAID_CHECK_NE(b, 0);
  if (a == 0) {
    return 0;
  }
  return kGf.exp[kGf.log[a] + 255 - kGf.log[b]];
}

}  // namespace gf256

GfMatrix::GfMatrix(uint32_t rows, uint32_t cols)
    : rows_(rows), cols_(cols), cells_(static_cast<size_t>(rows) * cols, 0) {
  MIMDRAID_CHECK_GT(rows, 0u);
  MIMDRAID_CHECK_GT(cols, 0u);
}

GfMatrix GfMatrix::Identity(uint32_t n) {
  GfMatrix out(n, n);
  for (uint32_t i = 0; i < n; ++i) {
    out.set(i, i, 1);
  }
  return out;
}

GfMatrix GfMatrix::Mul(const GfMatrix& other) const {
  MIMDRAID_CHECK_EQ(cols_, other.rows_);
  GfMatrix out(rows_, other.cols_);
  for (uint32_t r = 0; r < rows_; ++r) {
    for (uint32_t c = 0; c < other.cols_; ++c) {
      uint8_t acc = 0;
      for (uint32_t i = 0; i < cols_; ++i) {
        acc ^= gf256::Mul(at(r, i), other.at(i, c));
      }
      out.set(r, c, acc);
    }
  }
  return out;
}

bool GfMatrix::Invert(GfMatrix* out) const {
  MIMDRAID_CHECK(out != nullptr);
  MIMDRAID_CHECK_EQ(rows_, cols_);
  const uint32_t n = rows_;
  // Gauss-Jordan on [this | I]; the right half becomes the inverse.
  GfMatrix work = *this;
  GfMatrix inv = Identity(n);
  for (uint32_t col = 0; col < n; ++col) {
    // Find a pivot (characteristic 2: any non-zero entry will do).
    uint32_t pivot = col;
    while (pivot < n && work.at(pivot, col) == 0) {
      ++pivot;
    }
    if (pivot == n) {
      return false;  // singular
    }
    if (pivot != col) {
      for (uint32_t c = 0; c < n; ++c) {
        const uint8_t tw = work.at(col, c);
        work.set(col, c, work.at(pivot, c));
        work.set(pivot, c, tw);
        const uint8_t ti = inv.at(col, c);
        inv.set(col, c, inv.at(pivot, c));
        inv.set(pivot, c, ti);
      }
    }
    const uint8_t scale = gf256::Inv(work.at(col, col));
    for (uint32_t c = 0; c < n; ++c) {
      work.set(col, c, gf256::Mul(work.at(col, c), scale));
      inv.set(col, c, gf256::Mul(inv.at(col, c), scale));
    }
    for (uint32_t r = 0; r < n; ++r) {
      const uint8_t factor = work.at(r, col);
      if (r == col || factor == 0) {
        continue;
      }
      for (uint32_t c = 0; c < n; ++c) {
        work.set(r, c, work.at(r, c) ^ gf256::Mul(factor, work.at(col, c)));
        inv.set(r, c, inv.at(r, c) ^ gf256::Mul(factor, inv.at(col, c)));
      }
    }
  }
  *out = inv;
  return true;
}

EcCodec::EcCodec(uint32_t data_shards, uint32_t parity_shards)
    : k_(data_shards), m_(parity_shards), encode_(data_shards + parity_shards,
                                                  data_shards) {
  MIMDRAID_CHECK_GE(k_, 1u);
  MIMDRAID_CHECK_GE(m_, 1u);
  MIMDRAID_CHECK_LE(k_ + m_, 255u);
  for (uint32_t i = 0; i < k_; ++i) {
    encode_.set(i, i, 1);
  }
  // Cauchy block: x_j = k + j and y_i = i are disjoint (x_j >= k > i), so
  // every denominator is non-zero and every square submatrix inverts.
  for (uint32_t j = 0; j < m_; ++j) {
    for (uint32_t i = 0; i < k_; ++i) {
      encode_.set(k_ + j, i,
                  gf256::Inv(static_cast<uint8_t>((k_ + j) ^ i)));
    }
  }
}

void EcCodec::Encode(const std::vector<std::vector<uint8_t>>& data,
                     std::vector<std::vector<uint8_t>>* parity) const {
  MIMDRAID_CHECK(parity != nullptr);
  MIMDRAID_CHECK_EQ(data.size(), k_);
  const size_t len = data[0].size();
  for (const auto& shard : data) {
    MIMDRAID_CHECK_EQ(shard.size(), len);
  }
  parity->assign(m_, std::vector<uint8_t>(len, 0));
  for (uint32_t j = 0; j < m_; ++j) {
    std::vector<uint8_t>& out = (*parity)[j];
    for (uint32_t i = 0; i < k_; ++i) {
      const uint8_t coeff = encode_.at(k_ + j, i);
      const std::vector<uint8_t>& in = data[i];
      for (size_t b = 0; b < len; ++b) {
        out[b] ^= gf256::Mul(coeff, in[b]);
      }
    }
  }
}

bool EcCodec::DecodeMatrix(const std::vector<uint32_t>& shard_indices,
                           GfMatrix* out) const {
  MIMDRAID_CHECK_EQ(shard_indices.size(), k_);
  GfMatrix sub(k_, k_);
  for (uint32_t r = 0; r < k_; ++r) {
    MIMDRAID_CHECK_LT(shard_indices[r], n());
    for (uint32_t c = 0; c < k_; ++c) {
      sub.set(r, c, encode_.at(shard_indices[r], c));
    }
  }
  return sub.Invert(out);
}

bool EcCodec::CanDecodeFrom(const std::vector<uint32_t>& shard_indices) const {
  GfMatrix decode(k_, k_);
  return DecodeMatrix(shard_indices, &decode);
}

bool EcCodec::Reconstruct(std::vector<std::vector<uint8_t>>* shards,
                          const std::vector<bool>& present) const {
  MIMDRAID_CHECK(shards != nullptr);
  MIMDRAID_CHECK_EQ(shards->size(), n());
  MIMDRAID_CHECK_EQ(present.size(), n());
  std::vector<uint32_t> chosen;
  for (uint32_t i = 0; i < n() && chosen.size() < k_; ++i) {
    if (present[i]) {
      chosen.push_back(i);
    }
  }
  if (chosen.size() < k_) {
    return false;
  }
  GfMatrix decode(k_, k_);
  MIMDRAID_CHECK(DecodeMatrix(chosen, &decode));
  const size_t len = (*shards)[chosen[0]].size();
  // data[i] = sum over chosen survivors s of decode[i][s] * shard[s].
  std::vector<std::vector<uint8_t>> data(
      k_, std::vector<uint8_t>(len, 0));
  for (uint32_t i = 0; i < k_; ++i) {
    for (uint32_t s = 0; s < k_; ++s) {
      const uint8_t coeff = decode.at(i, s);
      const std::vector<uint8_t>& in = (*shards)[chosen[s]];
      MIMDRAID_CHECK_EQ(in.size(), len);
      for (size_t b = 0; b < len; ++b) {
        data[i][b] ^= gf256::Mul(coeff, in[b]);
      }
    }
  }
  for (uint32_t i = 0; i < k_; ++i) {
    if (!present[i]) {
      (*shards)[i] = data[i];
    }
  }
  for (uint32_t j = 0; j < m_; ++j) {
    if (present[k_ + j]) {
      continue;
    }
    std::vector<uint8_t>& out = (*shards)[k_ + j];
    out.assign(len, 0);
    for (uint32_t i = 0; i < k_; ++i) {
      const uint8_t coeff = encode_.at(k_ + j, i);
      for (size_t b = 0; b < len; ++b) {
        out[b] ^= gf256::Mul(coeff, data[i][b]);
      }
    }
  }
  return true;
}

}  // namespace mimdraid
