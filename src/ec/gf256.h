// GF(2^8) arithmetic and the Reed-Solomon/Cauchy erasure codec underneath
// the general (k+m) backend.
//
// The field is GF(2^8) over the primitive polynomial x^8+x^4+x^3+x^2+1
// (0x11D), the conventional choice for storage codes. The codec's generator
// is a systematic (k+m) x k matrix: an identity block over the k data shards
// stacked on an m x k Cauchy block c[j][i] = 1 / (x_j ^ y_i) with
// x_j = k + j and y_i = i. Every square submatrix of a Cauchy matrix is
// nonsingular, so *any* k surviving shards — data or parity, in any mix —
// reconstruct the stripe by inverting the k x k matrix of their generator
// rows. That property is what lets the controller pick its decode columns
// purely by availability.
//
// The simulator moves no user bytes, so the controller consumes only the
// codec's *plans* (which columns suffice, matrix invertibility); the
// byte-level Encode/Reconstruct paths exist for the unit tests that pin the
// algebra and for the micro-benchmarks that price it.
#ifndef MIMDRAID_SRC_EC_GF256_H_
#define MIMDRAID_SRC_EC_GF256_H_

#include <cstdint>
#include <vector>

namespace mimdraid {

namespace gf256 {

// Carry-less field operations via log/exp tables. Mul(0, x) == 0; Inv and
// Div CHECK against a zero divisor.
uint8_t Mul(uint8_t a, uint8_t b);
uint8_t Inv(uint8_t a);
uint8_t Div(uint8_t a, uint8_t b);
inline uint8_t Add(uint8_t a, uint8_t b) { return a ^ b; }

}  // namespace gf256

// A dense matrix over GF(2^8). Small (shard-count sized), so the plain
// row-major vector representation is fine.
class GfMatrix {
 public:
  GfMatrix(uint32_t rows, uint32_t cols);
  static GfMatrix Identity(uint32_t n);

  uint32_t rows() const { return rows_; }
  uint32_t cols() const { return cols_; }
  uint8_t at(uint32_t r, uint32_t c) const { return cells_[r * cols_ + c]; }
  void set(uint32_t r, uint32_t c, uint8_t v) { cells_[r * cols_ + c] = v; }

  GfMatrix Mul(const GfMatrix& other) const;
  // Gauss-Jordan elimination; returns false when the matrix is singular
  // (never the case for the submatrices this codec builds).
  bool Invert(GfMatrix* out) const;

 private:
  uint32_t rows_;
  uint32_t cols_;
  std::vector<uint8_t> cells_;
};

class EcCodec {
 public:
  // `data_shards` = k >= 1, `parity_shards` = m >= 1, k + m <= 255.
  EcCodec(uint32_t data_shards, uint32_t parity_shards);

  uint32_t k() const { return k_; }
  uint32_t m() const { return m_; }
  uint32_t n() const { return k_ + m_; }
  const GfMatrix& encode_matrix() const { return encode_; }

  // Computes the m parity shards from k equal-length data shards.
  void Encode(const std::vector<std::vector<uint8_t>>& data,
              std::vector<std::vector<uint8_t>>* parity) const;

  // Rebuilds every absent shard (data and parity) in place from the present
  // ones. `shards` has n entries; present[i] marks entry i as holding valid
  // bytes. Returns false when fewer than k shards are present (the stripe is
  // lost); present shards are never modified.
  bool Reconstruct(std::vector<std::vector<uint8_t>>* shards,
                   const std::vector<bool>& present) const;

  // True iff the k chosen shard indices (each in [0, n)) decode the stripe.
  // Always true here — Cauchy generators have no singular k-subsets — but
  // exposed so controller plans can assert it rather than assume it.
  bool CanDecodeFrom(const std::vector<uint32_t>& shard_indices) const;

 private:
  // The k x k matrix mapping the chosen survivor shards back to the data
  // shards; false if singular.
  bool DecodeMatrix(const std::vector<uint32_t>& shard_indices,
                    GfMatrix* out) const;

  uint32_t k_;
  uint32_t m_;
  GfMatrix encode_;  // (k+m) x k systematic generator
};

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_EC_GF256_H_
