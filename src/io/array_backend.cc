#include "src/io/array_backend.h"

namespace mimdraid {

void ExportFaultStats(const FaultRecoveryStats& stats,
                      StatsRegistry* registry) {
  registry->Set("fault.media_errors_seen",
                static_cast<double>(stats.media_errors_seen));
  registry->Set("fault.timeouts_seen",
                static_cast<double>(stats.timeouts_seen));
  registry->Set("fault.disk_failed_seen",
                static_cast<double>(stats.disk_failed_seen));
  registry->Set("fault.retries_issued",
                static_cast<double>(stats.retries_issued));
  registry->Set("fault.failovers", static_cast<double>(stats.failovers));
  registry->Set("fault.reconstructions",
                static_cast<double>(stats.reconstructions));
  registry->Set("fault.repairs_queued",
                static_cast<double>(stats.repairs_queued));
  registry->Set("fault.unrecoverable_completions",
                static_cast<double>(stats.unrecoverable_completions));
  registry->Set("fault.auto_disk_failures",
                static_cast<double>(stats.auto_disk_failures));
  registry->Set("fault.spares_promoted",
                static_cast<double>(stats.spares_promoted));
  registry->Set("fault.spare_rejected",
                static_cast<double>(stats.spare_rejected));
  registry->Set("fault.spare_rebuilds_completed",
                static_cast<double>(stats.spare_rebuilds_completed));
  registry->Set("fault.propagations_abandoned",
                static_cast<double>(stats.propagations_abandoned));
  registry->Set("fault.rebuild_fragments_lost",
                static_cast<double>(stats.rebuild_fragments_lost));
  registry->Set("fault.scrub_reads", static_cast<double>(stats.scrub_reads));
  registry->Set("fault.scrub_repairs",
                static_cast<double>(stats.scrub_repairs));
  registry->Set("fault.scrub_sweeps_completed",
                static_cast<double>(stats.scrub_sweeps_completed));
  registry->Set("fault.scrub_sectors_read",
                static_cast<double>(stats.scrub_sectors_read));
  registry->Set("fault.scrub_last_sweep_coverage",
                stats.scrub_last_sweep_coverage);
}

}  // namespace mimdraid
