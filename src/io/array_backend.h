// The backend-neutral face of an array: what MimdRaid, benches, and the
// conformance suite program against. A backend is a redundancy policy
// (mirroring, rotated parity, ...) layered over the shared DriveSet engine;
// everything here is policy-independent: logical I/O submission, explicit
// failure/rebuild control, the hot-spare pool, idle/quiescence queries, and
// stats export.
#ifndef MIMDRAID_SRC_IO_ARRAY_BACKEND_H_
#define MIMDRAID_SRC_IO_ARRAY_BACKEND_H_

#include <cstdint>
#include <functional>

#include "src/disk/access_predictor.h"
#include "src/disk/sim_disk.h"
#include "src/obs/stats_registry.h"
#include "src/sim/io_status.h"
#include "src/stats/fault_stats.h"

namespace mimdraid {

// Which redundancy policy an assembled array runs over the DriveSet engine.
enum class ArrayBackendKind {
  kMirror,   // ArrayController: Ds x Dr x Dm replica layout (SR/ML/ABL)
  kRaid5,    // Raid5Controller: left-symmetric rotating parity
  kErasure,  // EcController: general (k+m) Reed-Solomon/Cauchy coding
};

class ArrayBackend {
 public:
  // Completion carries a full IoResult: kOk, or kUnrecoverable when every
  // recovery avenue (retry, failover, reconstruction, repair) is exhausted.
  // Intermediate statuses are absorbed by the recovery machinery and never
  // surface here.
  using DoneFn = std::function<void(const IoResult&)>;

  virtual ~ArrayBackend() = default;

  // Submits a logical I/O against the backend's logical address space
  // ([0, dataset_sectors())). `done` fires at the simulated completion time.
  virtual void Submit(DiskOp op, uint64_t lba, uint32_t sectors,
                      DoneFn done) = 0;

  // Logical capacity in sectors.
  virtual uint64_t dataset_sectors() const = 0;

  // --- Failure, rebuild, spares ---
  // Marks a disk failed; returns false if the configuration cannot tolerate
  // the loss (no redundancy covering the disk — data loss).
  virtual bool FailDisk(SlotId disk) = 0;
  virtual bool IsFailed(SlotId disk) const = 0;
  // Re-populates a replaced drive in `disk`'s slot from the surviving
  // redundancy; `done` fires when redundancy is restored.
  virtual void Rebuild(SlotId disk, DoneFn done) = 0;
  virtual bool RebuildInProgress() const = 0;
  // Registers a standby drive + predictor (borrowed) for automatic promotion
  // into a slot the engine fail-stops.
  virtual void AddSpare(SimDisk* disk, AccessPredictor* predictor) = 0;
  virtual size_t spares_available() const = 0;

  // --- Quiescence and teardown ---
  // No logical op outstanding, every queue empty, no recovery timer armed.
  virtual bool Idle() const = 0;
  // Cancels the periodic scrub timer (in-flight scrub work drains normally).
  // Call before draining to quiescence.
  virtual void StopScrub() = 0;
  // Re-arms the periodic scrub timer after a StopScrub (a no-op when already
  // armed or when the backend was configured without scrubbing). Sweep state
  // survives the stop/start pair: the next step resumes from the cursor the
  // last one left.
  virtual void StartScrub() = 0;
  // Runs the auditor's terminal consistency check; a no-op when no auditor
  // is attached. Call once Idle() reports true.
  virtual void AuditQuiescent() const = 0;

  // --- Stats ---
  virtual const FaultRecoveryStats& fault_stats() const = 0;
  // Publishes the backend's counters under stable names ("fault.*" plus a
  // backend-specific prefix) so traced runs carry backend stats.
  virtual void ExportStats(StatsRegistry* registry) const = 0;
};

// Publishes every FaultRecoveryStats counter under "fault.<field>".
void ExportFaultStats(const FaultRecoveryStats& stats, StatsRegistry* registry);

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_IO_ARRAY_BACKEND_H_
