#include "src/io/drive_set.h"

#include <utility>

#include "src/util/check.h"

namespace mimdraid {

DriveSet::DriveSet(Simulator* sim, std::vector<SimDisk*> disks,
                   std::vector<AccessPredictor*> predictors,
                   DriveSetClient* client, const DriveSetOptions& options)
    : sim_(sim),
      disks_(std::move(disks)),
      predictors_(std::move(predictors)),
      client_(client),
      options_(options) {
  MIMDRAID_CHECK(sim != nullptr);
  MIMDRAID_CHECK(client != nullptr);
  MIMDRAID_CHECK(!disks_.empty());
  MIMDRAID_CHECK_EQ(predictors_.size(), disks_.size());
  const size_t n = disks_.size();
  schedulers_.reserve(n);
  fg_.resize(n);
  delayed_.resize(n);
  failed_.resize(n, false);
  error_counts_.resize(n, 0);
  if (options_.auditor != nullptr) {
    sim_->set_auditor(options_.auditor);
  }
  for (size_t i = 0; i < n; ++i) {
    auto scheduler = MakeScheduler(options_.scheduler, options_.max_scan);
    if (options_.auditor != nullptr) {
      disks_[i]->SetAuditor(options_.auditor, SlotId(static_cast<uint32_t>(i)));
      scheduler = MakeAuditedScheduler(std::move(scheduler), options_.auditor);
    }
    if (options_.fault_injector != nullptr) {
      disks_[i]->SetFaultInjector(options_.fault_injector,
                                  SlotId(static_cast<uint32_t>(i)));
    }
    if (options_.collector != nullptr) {
      disks_[i]->SetTraceCollector(options_.collector,
                                   SlotId(static_cast<uint32_t>(i)));
    }
    schedulers_.push_back(std::move(scheduler));
  }
}

DriveSet::~DriveSet() { StopScrub(); }

void DriveSet::StartScrub() {
  if (options_.scrub_interval_us > SimDuration(0) && !scrub_event_.valid()) {
    ScheduleScrubTick();
  }
}

void DriveSet::StopScrub() {
  if (scrub_event_.valid()) {
    // The tick body clears the handle before running, so a valid handle
    // always names a pending event and cancellation cannot miss.
    MIMDRAID_CHECK(sim_->Cancel(scrub_event_));
    scrub_event_ = EventId();
  }
}

void DriveSet::AddSpare(SimDisk* disk, AccessPredictor* predictor) {
  MIMDRAID_CHECK(disk != nullptr);
  MIMDRAID_CHECK(predictor != nullptr);
  spares_.push_back(SpareEntry{disk, predictor, false});
}

size_t DriveSet::TotalFgQueued() const {
  size_t total = 0;
  for (const auto& q : fg_) {
    total += q.size();
  }
  return total;
}

size_t DriveSet::TotalDelayedQueued() const {
  size_t total = 0;
  for (const auto& q : delayed_) {
    total += q.size();
  }
  return total;
}

bool DriveSet::AllDrivesQuiet() const {
  for (size_t i = 0; i < disks_.size(); ++i) {
    if (disks_[i]->busy() || !fg_[i].empty() || !delayed_[i].empty()) {
      return false;
    }
  }
  return true;
}

bool DriveSet::LiveDrivesQuiet() const {
  for (size_t i = 0; i < disks_.size(); ++i) {
    if (failed_[i]) {
      continue;
    }
    if (disks_[i]->busy() || !fg_[i].empty() || !delayed_[i].empty()) {
      return false;
    }
  }
  return true;
}

void DriveSet::EnqueueFg(SlotId slot, QueuedRequest entry) {
  if (options_.auditor != nullptr) {
    options_.auditor->OnEntryQueued(slot.value(), entry.id, entry.delayed);
  }
  fg_[slot.value()].push_back(std::move(entry));
  if (options_.collector != nullptr) {
    options_.collector->OnQueueDepth(slot.value(), sim_->Now(), fg_[slot.value()].size());
  }
}

void DriveSet::EnqueueDelayed(SlotId slot, QueuedRequest entry) {
  if (options_.auditor != nullptr) {
    options_.auditor->OnEntryQueued(slot.value(), entry.id, entry.delayed);
  }
  delayed_[slot.value()].push_back(std::move(entry));
}

void DriveSet::MaybeDispatch(SlotId slot) {
  if (failed_[slot.value()] || disks_[slot.value()]->busy()) {
    return;
  }
  std::vector<QueuedRequest>& queue =
      !fg_[slot.value()].empty() ? fg_[slot.value()] : delayed_[slot.value()];
  if (queue.empty()) {
    return;
  }
  const bool from_fg = &queue == &fg_[slot.value()];
  ScheduleContext ctx;
  ctx.now = sim_->Now();
  ctx.predictor = predictors_[slot.value()];
  ctx.layout = &disks_[slot.value()]->layout();
  ctx.collector = options_.collector;
  ctx.disk = slot;
  const SchedulerPick pick = schedulers_[slot.value()]->Pick(queue, ctx);
  QueuedRequest entry = std::move(queue[pick.queue_index]);
  queue.erase(queue.begin() + static_cast<ptrdiff_t>(pick.queue_index));
  if (options_.auditor != nullptr) {
    options_.auditor->OnEntryDispatched(slot.value(), entry.id);
  }
  if (options_.collector != nullptr && from_fg) {
    options_.collector->OnQueueDepth(slot.value(), sim_->Now(), fg_[slot.value()].size());
  }

  client_->OnEntryDispatched(slot, entry);

  // Non-positional schedulers (FCFS/LOOK/...) do not produce a prediction;
  // compute one so head tracking and accuracy statistics work under every
  // policy.
  double predicted = pick.predicted_service_us;
  if (predicted <= 0.0) {
    predicted = predictors_[slot.value()]
                    ->Predict(sim_->Now(), pick.lba, entry.sectors,
                              entry.op == DiskOp::kWrite)
                    .total_us;
  }
  predictors_[slot.value()]->OnDispatch(sim_->Now(), pick.lba, entry.sectors,
                                entry.op == DiskOp::kWrite, predicted);
  const BlockAddr chosen_lba = pick.lba;
  disks_[slot.value()]->Start(
      entry.op, chosen_lba, entry.sectors,
      [this, slot, entry = std::move(entry), chosen_lba,
       predicted](const DiskOpResult& result) {
        predictors_[slot.value()]->OnCompletion(result.completion_us, chosen_lba,
                                        entry.sectors);
        if (options_.collector != nullptr && result.ok()) {
          options_.collector->OnPrediction(
              slot.value(), result.completion_us, predicted,
              static_cast<double>(result.ServiceUs().us()));
        }
        HandleCompletion(slot, entry, chosen_lba, result);
        MaybeDispatch(slot);
      });
}

void DriveSet::HandleCompletion(SlotId slot, const QueuedRequest& entry,
                                BlockAddr chosen_lba,
                                const DiskOpResult& result) {
  if (options_.auditor != nullptr) {
    options_.auditor->OnEntryCompleted(slot.value(), entry.id);
  }
  if (!result.ok()) {
    // Open a fault record before any recovery: whoever retires the fault
    // (engine-level command retry or the policy) must close it with exactly
    // one resolution.
    if (options_.auditor != nullptr) {
      options_.auditor->OnIoFault(slot.value(), entry.id);
    }
    CountFault(slot, result.status);
  }

  auto cit = command_done_.find(entry.id);
  if (cit == command_done_.end()) {
    client_->OnEntryComplete(slot, entry, chosen_lba, result);
    return;
  }
  CommandDoneFn done = std::move(cit->second);
  command_done_.erase(cit);
  if (!result.ok() && result.status != IoStatus::kDiskFailed &&
      entry.attempts + 1 < options_.retry.max_attempts && !failed_[slot.value()]) {
    // Transient error or timeout: retry the command after backoff with a
    // fresh queue entry.
    ++fstats_.retries_issued;
    ResolveFault(entry.id, FaultResolution::kRetried, false);
    ++pending_recovery_;
    const DiskOp op = entry.op;
    const uint32_t sectors = entry.sectors;
    const uint32_t attempts = entry.attempts;
    sim_->ScheduleAfter(options_.retry.BackoffUs(attempts),
                        [this, slot, op, chosen_lba, sectors, attempts,
                         done = std::move(done)]() mutable {
                          --pending_recovery_;
                          // The retry keeps the original entry's identity in
                          // `done`; the fresh queue id is engine-internal.
                          (void)EnqueueCommand(  // mdl-ok(MDL002): retry id unused
                              slot, op, chosen_lba, sectors, std::move(done),
                              attempts + 1);
                        });
    return;
  }
  done(result, entry.id);
}

uint64_t DriveSet::EnqueueCommand(SlotId slot, DiskOp op, BlockAddr lba,
                                  uint32_t sectors, CommandDoneFn done,
                                  uint32_t attempts) {
  if (failed_[slot.value()]) {
    // The slot died between planning and enqueue: complete with kDiskFailed
    // through the event queue so callers re-plan from a clean stack.
    CompleteDeferred([this, done = std::move(done)] {
      DiskOpResult failure;
      failure.status = IoStatus::kDiskFailed;
      failure.start_us = sim_->Now();
      failure.completion_us = sim_->Now();
      done(failure, 0);
    });
    return 0;
  }
  QueuedRequest entry;
  entry.id = next_entry_id_++;
  entry.op = op;
  entry.sectors = sectors;
  entry.candidate_lbas = {lba};
  entry.arrival_us = sim_->Now();
  entry.attempts = attempts;
  const uint64_t id = entry.id;
  command_done_[id] = std::move(done);
  EnqueueFg(slot, std::move(entry));
  MaybeDispatch(slot);
  return id;
}

void DriveSet::FailQueuedCommands(SlotId slot) {
  std::vector<QueuedRequest> drained;
  drained.swap(fg_[slot.value()]);
  if (options_.collector != nullptr && !drained.empty()) {
    options_.collector->OnQueueDepth(slot.value(), sim_->Now(), 0);
  }
  DiskOpResult failure;
  failure.status = IoStatus::kDiskFailed;
  failure.start_us = sim_->Now();
  failure.completion_us = sim_->Now();
  for (QueuedRequest& entry : drained) {
    if (options_.auditor != nullptr) {
      options_.auditor->OnEntryCancelled(slot.value(), entry.id);
    }
    auto it = command_done_.find(entry.id);
    if (it == command_done_.end()) {
      continue;
    }
    auto done = std::move(it->second);
    command_done_.erase(it);
    done(failure, 0);
  }
}

void DriveSet::CountFault(SlotId slot, IoStatus status) {
  switch (status) {
    case IoStatus::kMediaError:
      ++fstats_.media_errors_seen;
      break;
    case IoStatus::kTimeout:
      ++fstats_.timeouts_seen;
      break;
    case IoStatus::kDiskFailed:
      ++fstats_.disk_failed_seen;
      break;
    default:
      break;
  }
  if (failed_[slot.value()]) {
    return;  // already declared failed; no further escalation
  }
  if (status == IoStatus::kDiskFailed) {
    AutoFail(slot);
    return;
  }
  ++error_counts_[slot.value()];
  if (options_.disk_error_fail_threshold > 0 &&
      error_counts_[slot.value()] >= options_.disk_error_fail_threshold) {
    AutoFail(slot);
  }
}

void DriveSet::AutoFail(SlotId slot) {
  if (failed_[slot.value()]) {
    return;
  }
  failed_[slot.value()] = true;
  ++fstats_.auto_disk_failures;
  if (options_.fault_injector != nullptr) {
    // Threshold-triggered failures: make the verdict binding so the drive
    // cannot half-work its way back into the array.
    options_.fault_injector->FailStop(slot.value());
  }
  client_->OnSlotFailed(slot);
  PromoteSpareIfAvailable(slot);
}

void DriveSet::PromoteSpareIfAvailable(SlotId slot) {
  if (spares_.empty() || !client_->SparePromotionAllowed(slot)) {
    return;
  }
  // The slot keeps mapping through the failed drive's layout, so the spare
  // must resolve that drive's used physical span and match its sector size.
  // Incompatible candidates are skipped (counted) but stay pooled: a slot
  // they do fit may fail later.
  const uint64_t needed_span = client_->UsedSpanSectors(slot);
  const uint32_t sector_bytes =
      disks_[slot.value()]->layout().geometry().sector_bytes;
  size_t pick = spares_.size();
  for (size_t i = 0; i < spares_.size(); ++i) {
    const DiskLayout& candidate = spares_[i].disk->layout();
    if (candidate.geometry().sector_bytes == sector_bytes &&
        candidate.num_data_sectors() >= needed_span) {
      pick = i;
      break;
    }
    // Each pooled spare contributes to spare_rejected at most once: later
    // promotion attempts re-skip it without re-counting, so multi-failure
    // runs don't inflate the tally.
    if (!spares_[i].rejection_counted) {
      spares_[i].rejection_counted = true;
      ++fstats_.spare_rejected;
    }
  }
  if (pick == spares_.size()) {
    return;  // no compatible spare; the slot stays failed
  }
  SimDisk* const spare_disk = spares_[pick].disk;
  AccessPredictor* const spare_predictor = spares_[pick].predictor;
  spares_.erase(spares_.begin() + static_cast<ptrdiff_t>(pick));
  disks_[slot.value()] = spare_disk;
  predictors_[slot.value()] = spare_predictor;
  if (options_.auditor != nullptr) {
    options_.auditor->OnDiskReplaced(slot.value());
    spare_disk->SetAuditor(options_.auditor, slot);
  }
  if (options_.fault_injector != nullptr) {
    options_.fault_injector->ReplaceDisk(slot.value());
    spare_disk->SetFaultInjector(options_.fault_injector, slot);
  }
  if (options_.collector != nullptr) {
    spare_disk->SetTraceCollector(options_.collector, slot);
  }
  ++fstats_.spares_promoted;
  client_->OnSparePromoted(slot);
}

void DriveSet::ScheduleRecovery(uint32_t attempt, std::function<void()> fn) {
  ++pending_recovery_;
  sim_->ScheduleAfter(options_.retry.BackoffUs(attempt),
                      [this, fn = std::move(fn)]() {
                        --pending_recovery_;
                        fn();
                      });
}

void DriveSet::CompleteDeferred(std::function<void()> fn) {
  ++pending_recovery_;
  sim_->ScheduleAfter(SimDuration(0), [this, fn = std::move(fn)]() {
    --pending_recovery_;
    fn();
  });
}

void DriveSet::ResolveFault(uint64_t entry_id, FaultResolution resolution,
                            bool target_disk_failed) {
  if (options_.auditor != nullptr) {
    options_.auditor->OnFaultResolved(entry_id, resolution,
                                      target_disk_failed);
  }
}

void DriveSet::ScheduleScrubTick() {
  scrub_event_ = sim_->ScheduleAfter(options_.scrub_interval_us, [this]() {
    scrub_event_ = EventId();
    ScrubTick();
    ScheduleScrubTick();
  });
}

void DriveSet::ScrubTick() {
  // The policy gate applies under either gating mode (a backend mid-rebuild
  // or with logical ops outstanding must not sweep).
  if (!client_->ScrubEligible()) {
    return;
  }
  // Idle-gating is the rate limit: a tick that finds any foreground or
  // recovery work simply skips its turn. kAlways (the fixed-period policy)
  // admits the step regardless of drive business.
  if (options_.scrub_gating == ScrubGating::kIdleGated &&
      (pending_recovery_ > 0 || !LiveDrivesQuiet())) {
    return;
  }
  client_->ScrubStep();
}

}  // namespace mimdraid
