#include "src/io/drive_set.h"

#include <utility>

#include "src/util/check.h"

namespace mimdraid {

DriveSet::DriveSet(Simulator* sim, std::vector<SimDisk*> disks,
                   std::vector<AccessPredictor*> predictors,
                   DriveSetClient* client, const DriveSetOptions& options)
    : sim_(sim),
      disks_(std::move(disks)),
      predictors_(std::move(predictors)),
      client_(client),
      options_(options) {
  MIMDRAID_CHECK(sim != nullptr);
  MIMDRAID_CHECK(client != nullptr);
  MIMDRAID_CHECK(!disks_.empty());
  MIMDRAID_CHECK_EQ(predictors_.size(), disks_.size());
  const size_t n = disks_.size();
  schedulers_.reserve(n);
  fg_.resize(n);
  delayed_.resize(n);
  failed_.resize(n, false);
  error_counts_.resize(n, 0);
  if (options_.auditor != nullptr) {
    sim_->set_auditor(options_.auditor);
  }
  for (size_t i = 0; i < n; ++i) {
    auto scheduler = MakeScheduler(options_.scheduler, options_.max_scan);
    if (options_.auditor != nullptr) {
      disks_[i]->SetAuditor(options_.auditor, static_cast<uint32_t>(i));
      scheduler = MakeAuditedScheduler(std::move(scheduler), options_.auditor);
    }
    if (options_.fault_injector != nullptr) {
      disks_[i]->SetFaultInjector(options_.fault_injector,
                                  static_cast<uint32_t>(i));
    }
    if (options_.collector != nullptr) {
      disks_[i]->SetTraceCollector(options_.collector,
                                   static_cast<uint32_t>(i));
    }
    schedulers_.push_back(std::move(scheduler));
  }
}

DriveSet::~DriveSet() { StopScrub(); }

void DriveSet::StartScrub() {
  if (options_.scrub_interval_us > 0 && scrub_event_ == 0) {
    ScheduleScrubTick();
  }
}

void DriveSet::StopScrub() {
  if (scrub_event_ != 0) {
    sim_->Cancel(scrub_event_);
    scrub_event_ = 0;
  }
}

void DriveSet::AddSpare(SimDisk* disk, AccessPredictor* predictor) {
  MIMDRAID_CHECK(disk != nullptr);
  MIMDRAID_CHECK(predictor != nullptr);
  spares_.emplace_back(disk, predictor);
}

size_t DriveSet::TotalFgQueued() const {
  size_t total = 0;
  for (const auto& q : fg_) {
    total += q.size();
  }
  return total;
}

size_t DriveSet::TotalDelayedQueued() const {
  size_t total = 0;
  for (const auto& q : delayed_) {
    total += q.size();
  }
  return total;
}

bool DriveSet::AllDrivesQuiet() const {
  for (size_t i = 0; i < disks_.size(); ++i) {
    if (disks_[i]->busy() || !fg_[i].empty() || !delayed_[i].empty()) {
      return false;
    }
  }
  return true;
}

bool DriveSet::LiveDrivesQuiet() const {
  for (size_t i = 0; i < disks_.size(); ++i) {
    if (failed_[i]) {
      continue;
    }
    if (disks_[i]->busy() || !fg_[i].empty() || !delayed_[i].empty()) {
      return false;
    }
  }
  return true;
}

void DriveSet::EnqueueFg(uint32_t slot, QueuedRequest entry) {
  if (options_.auditor != nullptr) {
    options_.auditor->OnEntryQueued(slot, entry.id, entry.delayed);
  }
  fg_[slot].push_back(std::move(entry));
  if (options_.collector != nullptr) {
    options_.collector->OnQueueDepth(slot, sim_->Now(), fg_[slot].size());
  }
}

void DriveSet::EnqueueDelayed(uint32_t slot, QueuedRequest entry) {
  if (options_.auditor != nullptr) {
    options_.auditor->OnEntryQueued(slot, entry.id, entry.delayed);
  }
  delayed_[slot].push_back(std::move(entry));
}

void DriveSet::MaybeDispatch(uint32_t slot) {
  if (failed_[slot] || disks_[slot]->busy()) {
    return;
  }
  std::vector<QueuedRequest>& queue =
      !fg_[slot].empty() ? fg_[slot] : delayed_[slot];
  if (queue.empty()) {
    return;
  }
  const bool from_fg = &queue == &fg_[slot];
  ScheduleContext ctx;
  ctx.now = sim_->Now();
  ctx.predictor = predictors_[slot];
  ctx.layout = &disks_[slot]->layout();
  ctx.collector = options_.collector;
  ctx.disk = slot;
  const SchedulerPick pick = schedulers_[slot]->Pick(queue, ctx);
  QueuedRequest entry = std::move(queue[pick.queue_index]);
  queue.erase(queue.begin() + static_cast<ptrdiff_t>(pick.queue_index));
  if (options_.auditor != nullptr) {
    options_.auditor->OnEntryDispatched(slot, entry.id);
  }
  if (options_.collector != nullptr && from_fg) {
    options_.collector->OnQueueDepth(slot, sim_->Now(), fg_[slot].size());
  }

  client_->OnEntryDispatched(slot, entry);

  // Non-positional schedulers (FCFS/LOOK/...) do not produce a prediction;
  // compute one so head tracking and accuracy statistics work under every
  // policy.
  double predicted = pick.predicted_service_us;
  if (predicted <= 0.0) {
    predicted = predictors_[slot]
                    ->Predict(sim_->Now(), pick.lba, entry.sectors,
                              entry.op == DiskOp::kWrite)
                    .total_us;
  }
  predictors_[slot]->OnDispatch(sim_->Now(), pick.lba, entry.sectors,
                                entry.op == DiskOp::kWrite, predicted);
  const uint64_t chosen_lba = pick.lba;
  disks_[slot]->Start(
      entry.op, chosen_lba, entry.sectors,
      [this, slot, entry = std::move(entry), chosen_lba,
       predicted](const DiskOpResult& result) {
        predictors_[slot]->OnCompletion(result.completion_us, chosen_lba,
                                        entry.sectors);
        if (options_.collector != nullptr && result.ok()) {
          options_.collector->OnPrediction(
              slot, result.completion_us, predicted,
              static_cast<double>(result.ServiceUs()));
        }
        HandleCompletion(slot, entry, chosen_lba, result);
        MaybeDispatch(slot);
      });
}

void DriveSet::HandleCompletion(uint32_t slot, const QueuedRequest& entry,
                                uint64_t chosen_lba,
                                const DiskOpResult& result) {
  if (options_.auditor != nullptr) {
    options_.auditor->OnEntryCompleted(slot, entry.id);
  }
  if (!result.ok()) {
    // Open a fault record before any recovery: whoever retires the fault
    // (engine-level command retry or the policy) must close it with exactly
    // one resolution.
    if (options_.auditor != nullptr) {
      options_.auditor->OnIoFault(slot, entry.id);
    }
    CountFault(slot, result.status);
  }

  auto cit = command_done_.find(entry.id);
  if (cit == command_done_.end()) {
    client_->OnEntryComplete(slot, entry, chosen_lba, result);
    return;
  }
  CommandDoneFn done = std::move(cit->second);
  command_done_.erase(cit);
  if (!result.ok() && result.status != IoStatus::kDiskFailed &&
      entry.attempts + 1 < options_.retry.max_attempts && !failed_[slot]) {
    // Transient error or timeout: retry the command after backoff with a
    // fresh queue entry.
    ++fstats_.retries_issued;
    ResolveFault(entry.id, FaultResolution::kRetried, false);
    ++pending_recovery_;
    const DiskOp op = entry.op;
    const uint32_t sectors = entry.sectors;
    const uint32_t attempts = entry.attempts;
    sim_->ScheduleAfter(options_.retry.BackoffUs(attempts),
                        [this, slot, op, chosen_lba, sectors, attempts,
                         done = std::move(done)]() mutable {
                          --pending_recovery_;
                          EnqueueCommand(slot, op, chosen_lba, sectors,
                                         std::move(done), attempts + 1);
                        });
    return;
  }
  done(result, entry.id);
}

uint64_t DriveSet::EnqueueCommand(uint32_t slot, DiskOp op, uint64_t lba,
                                  uint32_t sectors, CommandDoneFn done,
                                  uint32_t attempts) {
  if (failed_[slot]) {
    // The slot died between planning and enqueue: complete with kDiskFailed
    // through the event queue so callers re-plan from a clean stack.
    CompleteDeferred([this, done = std::move(done)] {
      DiskOpResult failure;
      failure.status = IoStatus::kDiskFailed;
      failure.start_us = sim_->Now();
      failure.completion_us = sim_->Now();
      done(failure, 0);
    });
    return 0;
  }
  QueuedRequest entry;
  entry.id = next_entry_id_++;
  entry.op = op;
  entry.sectors = sectors;
  entry.candidate_lbas = {lba};
  entry.arrival_us = sim_->Now();
  entry.attempts = attempts;
  const uint64_t id = entry.id;
  command_done_[id] = std::move(done);
  EnqueueFg(slot, std::move(entry));
  MaybeDispatch(slot);
  return id;
}

void DriveSet::FailQueuedCommands(uint32_t slot) {
  std::vector<QueuedRequest> drained;
  drained.swap(fg_[slot]);
  if (options_.collector != nullptr && !drained.empty()) {
    options_.collector->OnQueueDepth(slot, sim_->Now(), 0);
  }
  DiskOpResult failure;
  failure.status = IoStatus::kDiskFailed;
  failure.start_us = sim_->Now();
  failure.completion_us = sim_->Now();
  for (QueuedRequest& entry : drained) {
    if (options_.auditor != nullptr) {
      options_.auditor->OnEntryCancelled(slot, entry.id);
    }
    auto it = command_done_.find(entry.id);
    if (it == command_done_.end()) {
      continue;
    }
    auto done = std::move(it->second);
    command_done_.erase(it);
    done(failure, 0);
  }
}

void DriveSet::CountFault(uint32_t slot, IoStatus status) {
  switch (status) {
    case IoStatus::kMediaError:
      ++fstats_.media_errors_seen;
      break;
    case IoStatus::kTimeout:
      ++fstats_.timeouts_seen;
      break;
    case IoStatus::kDiskFailed:
      ++fstats_.disk_failed_seen;
      break;
    default:
      break;
  }
  if (failed_[slot]) {
    return;  // already declared failed; no further escalation
  }
  if (status == IoStatus::kDiskFailed) {
    AutoFail(slot);
    return;
  }
  ++error_counts_[slot];
  if (options_.disk_error_fail_threshold > 0 &&
      error_counts_[slot] >= options_.disk_error_fail_threshold) {
    AutoFail(slot);
  }
}

void DriveSet::AutoFail(uint32_t slot) {
  if (failed_[slot]) {
    return;
  }
  failed_[slot] = true;
  ++fstats_.auto_disk_failures;
  if (options_.fault_injector != nullptr) {
    // Threshold-triggered failures: make the verdict binding so the drive
    // cannot half-work its way back into the array.
    options_.fault_injector->FailStop(slot);
  }
  client_->OnSlotFailed(slot);
  PromoteSpareIfAvailable(slot);
}

void DriveSet::PromoteSpareIfAvailable(uint32_t slot) {
  if (spares_.empty() || !client_->SparePromotionAllowed(slot)) {
    return;
  }
  auto [spare_disk, spare_predictor] = spares_.front();
  spares_.erase(spares_.begin());
  disks_[slot] = spare_disk;
  predictors_[slot] = spare_predictor;
  if (options_.auditor != nullptr) {
    options_.auditor->OnDiskReplaced(slot);
    spare_disk->SetAuditor(options_.auditor, slot);
  }
  if (options_.fault_injector != nullptr) {
    options_.fault_injector->ReplaceDisk(slot);
    spare_disk->SetFaultInjector(options_.fault_injector, slot);
  }
  if (options_.collector != nullptr) {
    spare_disk->SetTraceCollector(options_.collector, slot);
  }
  ++fstats_.spares_promoted;
  client_->OnSparePromoted(slot);
}

void DriveSet::ScheduleRecovery(uint32_t attempt, std::function<void()> fn) {
  ++pending_recovery_;
  sim_->ScheduleAfter(options_.retry.BackoffUs(attempt),
                      [this, fn = std::move(fn)]() {
                        --pending_recovery_;
                        fn();
                      });
}

void DriveSet::CompleteDeferred(std::function<void()> fn) {
  ++pending_recovery_;
  sim_->ScheduleAfter(0, [this, fn = std::move(fn)]() {
    --pending_recovery_;
    fn();
  });
}

void DriveSet::ResolveFault(uint64_t entry_id, FaultResolution resolution,
                            bool target_disk_failed) {
  if (options_.auditor != nullptr) {
    options_.auditor->OnFaultResolved(entry_id, resolution,
                                      target_disk_failed);
  }
}

void DriveSet::ScheduleScrubTick() {
  scrub_event_ = sim_->ScheduleAfter(options_.scrub_interval_us, [this]() {
    scrub_event_ = 0;
    ScrubTick();
    ScheduleScrubTick();
  });
}

void DriveSet::ScrubTick() {
  // Idle-gating is the rate limit: a tick that finds any foreground or
  // recovery work simply skips its turn.
  if (pending_recovery_ > 0 || !client_->ScrubEligible() ||
      !LiveDrivesQuiet()) {
    return;
  }
  client_->ScrubStep();
}

}  // namespace mimdraid
