// The shared drive-pool engine underneath every array backend.
//
// Historically the mirror/SR-Array controller and the RAID-5 controller each
// owned their own copy of the per-drive machinery: scheduler queues, the
// dispatch loop, bounded retry with backoff, consecutive-error auto-fail,
// fail-stop response, hot-spare promotion, the idle-gated scrub timer, and
// the wiring of the three observer layers (InvariantAuditor, FaultInjector,
// TraceCollector). DriveSet extracts that machinery once; a backend is now a
// policy layer (mirror heuristics + delayed propagation on one side, parity
// geometry + RMW planning on the other) speaking to the engine through the
// DriveSetClient hooks below.
//
// Two usage styles coexist, matching the two controllers' historical shapes:
//  * Raw entries: the policy allocates ids (AllocEntryId), builds
//    QueuedRequest values, enqueues them (EnqueueFg/EnqueueDelayed), and gets
//    every completion through DriveSetClient::OnEntryComplete. The engine does
//    the observer bookkeeping and fault counting; recovery is entirely the
//    policy's (the mirror path, whose retry unit is the *fragment*).
//  * Commands: EnqueueCommand registers a per-entry done callback and the
//    engine runs bounded retry with backoff for transient statuses itself,
//    delivering only terminal results (the RAID-5 path, whose retry unit is
//    the *disk command*).
#ifndef MIMDRAID_SRC_IO_DRIVE_SET_H_
#define MIMDRAID_SRC_IO_DRIVE_SET_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/disk/access_predictor.h"
#include "src/disk/sim_disk.h"
#include "src/obs/trace_collector.h"
#include "src/sched/queued_request.h"
#include "src/sched/scheduler.h"
#include "src/sim/auditor.h"
#include "src/sim/fault_injector.h"
#include "src/sim/io_status.h"
#include "src/sim/simulator.h"
#include "src/stats/fault_stats.h"

namespace mimdraid {

// Engine-side scrub admission policy: how a scrub timer tick decides whether
// to run a policy ScrubStep. The policy-side gate (DriveSetClient::
// ScrubEligible — no rebuild in flight, no outstanding logical ops) applies
// under either mode; gating here only controls whether scrubbing must wait
// for the drives themselves to go quiet.
enum class ScrubGating {
  // A tick runs only when every live drive is idle with empty queues and no
  // recovery timer is armed — scrubbing never competes with foreground or
  // background I/O (the utilization-gated policy; the historical behavior).
  kIdleGated,
  // A tick runs whenever the policy gate allows, even with delayed-queue
  // backlog or busy drives — the fixed-period policy, which trades foreground
  // interference for a guaranteed sweep cadence.
  kAlways,
};

struct DriveSetOptions {
  SchedulerKind scheduler = SchedulerKind::kSatf;
  // Cap on SATF-class scan depth per dispatch (0 = whole queue).
  size_t max_scan = 0;
  // Observers. All borrowed; each must outlive the DriveSet. The engine wires
  // them into the simulator, every disk, every per-drive scheduler, and every
  // promoted spare; attaching any of them changes no scheduling decision.
  InvariantAuditor* auditor = nullptr;
  FaultInjector* fault_injector = nullptr;
  TraceCollector* collector = nullptr;
  // Bounded retry with exponential backoff, used by the engine for command
  // execution and by policies for their own recovery timers.
  RetryPolicy retry;
  // Consecutive-error budget per slot before the engine declares the drive
  // failed and promotes a hot spare (0 = never auto-fail on error count; an
  // explicit kDiskFailed verdict always auto-fails).
  uint32_t disk_error_fail_threshold = 0;
  // Period of the background scrubber (0 = off). Each tick that finds every
  // live drive quiet, no recovery timer armed, and the policy eligible
  // (DriveSetClient::ScrubEligible) runs one policy-defined ScrubStep.
  // Idle-gating is the rate limit: scrubbing never competes with foreground
  // work.
  SimDuration scrub_interval_us;
  // Engine-side scrub admission (see ScrubGating above). The default keeps
  // the historical idle-gated behavior.
  ScrubGating scrub_gating = ScrubGating::kIdleGated;
};

// Policy hooks a backend implements on top of the engine. Calls arrive
// synchronously from inside the engine's dispatch/completion/failure paths.
class DriveSetClient {
 public:
  virtual ~DriveSetClient() = default;

  // An entry was picked and removed from a queue, observers notified, and is
  // about to be predicted + started on the drive. The mirror policy cancels
  // duplicate siblings here.
  virtual void OnEntryDispatched(SlotId /*disk*/,
                                 const QueuedRequest& /*entry*/) {}

  // A raw (non-command) entry completed. The engine has already run the
  // observer bookkeeping and fault accounting (including a possible
  // auto-fail); recovery policy for the entry is the client's.
  virtual void OnEntryComplete(SlotId disk, const QueuedRequest& entry,
                               BlockAddr chosen_lba,
                               const DiskOpResult& result) = 0;

  // The engine fail-stopped `disk` (explicit kDiskFailed verdict or the
  // consecutive-error threshold). The policy must dispose of the work it
  // still has queued there (abandon propagations, reroute or fail entries);
  // the engine touches no queue on this path. Called before any spare
  // promotion.
  virtual void OnSlotFailed(SlotId disk) = 0;

  // May the engine promote a hot spare into the failed slot right now? A
  // policy with no redundancy to rebuild from says no.
  virtual bool SparePromotionAllowed(SlotId /*disk*/) { return true; }

  // Physical sectors of `disk`'s drive the policy actually addresses (the
  // span a replacement promoted into the slot must be able to resolve).
  // 0 = any drive qualifies. On heterogeneous fleets this is how the engine
  // rejects spares too small for the failed drive's used extent.
  virtual uint64_t UsedSpanSectors(SlotId /*disk*/) const { return 0; }

  // A spare took over `disk`'s slot (observers rewired, injector slot
  // reset). The slot is still marked failed; the policy starts its rebuild,
  // which clears the mark.
  virtual void OnSparePromoted(SlotId disk) = 0;

  // Policy-level scrub gating beyond the engine's (no outstanding logical
  // ops, no rebuild in progress, ...).
  virtual bool ScrubEligible() const { return true; }

  // Issue the next chunk of verification work. Called at most once per timer
  // tick, only when the whole stack is idle.
  virtual void ScrubStep() {}
};

class DriveSet {
 public:
  // Terminal result of a command, plus the id of the queue entry that carried
  // it (0 for synthetic completions that never held a queue slot — enqueue on
  // an already-failed drive, or a drain). A non-kOk result with a non-zero id
  // has an open auditor fault record the policy must resolve exactly once
  // (ResolveFault); the engine resolves the faults it retires itself
  // (engine-level retries).
  using CommandDoneFn = std::function<void(const DiskOpResult&, uint64_t)>;

  // `disks` and `predictors` are parallel, same-size, borrowed. `client` is
  // borrowed and must outlive the DriveSet; no hook is called from the
  // constructor.
  DriveSet(Simulator* sim, std::vector<SimDisk*> disks,
           std::vector<AccessPredictor*> predictors, DriveSetClient* client,
           const DriveSetOptions& options);

  DriveSet(const DriveSet&) = delete;
  DriveSet& operator=(const DriveSet&) = delete;

  // Cancels the scrub timer. In-flight disk operations must have drained
  // (their completion callbacks hold `this`).
  ~DriveSet();

  // --- Slots ---
  size_t num_slots() const { return disks_.size(); }
  Simulator* sim() { return sim_; }
  SimDisk* disk(SlotId slot) { return disks_[slot.value()]; }
  const SimDisk* disk(SlotId slot) const { return disks_[slot.value()]; }
  AccessPredictor* predictor(SlotId slot) { return predictors_[slot.value()]; }
  bool failed(SlotId slot) const { return failed_[slot.value()]; }
  // Manual failure/replacement bookkeeping for policy-initiated transitions
  // (FailDisk / Rebuild): flips the flag without stats, injector fail-stop,
  // client hooks, or spare promotion.
  void MarkFailed(SlotId slot) { failed_[slot.value()] = true; }
  void MarkReplaced(SlotId slot) { failed_[slot.value()] = false; }
  uint64_t error_count(SlotId slot) const {
    return error_counts_[slot.value()];
  }

  InvariantAuditor* auditor() { return options_.auditor; }
  FaultInjector* fault_injector() { return options_.fault_injector; }
  TraceCollector* collector() { return options_.collector; }
  const DriveSetOptions& options() const { return options_; }
  FaultRecoveryStats& fstats() { return fstats_; }
  const FaultRecoveryStats& fstats() const { return fstats_; }

  // --- Queues ---
  // Queue conservation: every entry id comes from AllocEntryId, is reported
  // queued once (EnqueueFg/EnqueueDelayed), and leaves exactly once — by
  // dispatch or by a policy-side cancellation the policy reports to the
  // auditor itself (the mutable refs exist for those paths: sibling
  // cancellation, reroute-on-failure, delayed-table force-out).
  [[nodiscard]] uint64_t AllocEntryId() { return next_entry_id_++; }
  std::vector<QueuedRequest>& fg(SlotId slot) { return fg_[slot.value()]; }
  std::vector<QueuedRequest>& delayed(SlotId slot) {
    return delayed_[slot.value()];
  }
  const std::vector<QueuedRequest>& fg(SlotId slot) const {
    return fg_[slot.value()];
  }
  const std::vector<QueuedRequest>& delayed(SlotId slot) const {
    return delayed_[slot.value()];
  }
  void EnqueueFg(SlotId slot, QueuedRequest entry);
  void EnqueueDelayed(SlotId slot, QueuedRequest entry);
  // Picks and starts the next entry on `slot` if the drive is live and idle.
  // Foreground entries always outrank delayed ones.
  void MaybeDispatch(SlotId slot);
  size_t TotalFgQueued() const;
  size_t TotalDelayedQueued() const;
  // Every slot (failed included) idle with empty queues — the drive half of a
  // backend's Idle().
  bool AllDrivesQuiet() const;
  // Like AllDrivesQuiet but failed slots are skipped (scrub gating).
  bool LiveDrivesQuiet() const;

  // --- Command execution (engine-run bounded retry) ---
  // Queues one single-disk command. Transient failures (media error, timeout)
  // are retried by the engine up to retry.max_attempts with backoff; `done`
  // sees only kOk, a terminal transient failure, or kDiskFailed (after the
  // engine has fail-stopped the slot). Enqueueing on an already-failed slot
  // completes with a synthetic kDiskFailed through the event queue so callers
  // re-plan from a clean stack. Returns the entry id (0 for that synthetic
  // path).
  [[nodiscard]] uint64_t EnqueueCommand(SlotId slot, DiskOp op, BlockAddr lba,
                          uint32_t sectors, CommandDoneFn done,
                          uint32_t attempts = 0);
  // Drains `slot`'s foreground queue, completing every still-queued command
  // with a synthetic kDiskFailed (id 0). Non-command entries are cancelled
  // with the auditor and dropped — policies that mix raw entries with
  // commands must reroute their raw entries themselves.
  void FailQueuedCommands(SlotId slot);

  // --- Failure response ---
  // Declares `slot` failed in response to an error verdict: marks it, counts
  // it, makes the injector verdict binding (FailStop), lets the policy
  // dispose of queued work (OnSlotFailed), then promotes a hot spare if one
  // is registered and the policy allows it. Idempotent.
  void AutoFail(SlotId slot);
  // Registers a standby drive + predictor (borrowed). Wired to the observers
  // only on promotion. Compatibility with a failed slot is checked at
  // promotion time (the used span differs per slot): a candidate that cannot
  // resolve the slot's used span or whose sector size differs is skipped and
  // counted in fstats().spare_rejected — once per pooled spare, not once per
  // promotion attempt that re-skips it; it stays pooled for slots it fits.
  void AddSpare(SimDisk* disk, AccessPredictor* predictor);
  size_t spares_available() const { return spares_.size(); }

  // --- Recovery timers ---
  // Runs `fn` after the retry backoff for `attempt`; pending_recovery() stays
  // non-zero until every such timer has fired (backends fold it into Idle()).
  void ScheduleRecovery(uint32_t attempt, std::function<void()> fn);
  // Runs `fn` at the next event-queue turn (synthetic completions that must
  // not run inside the caller's stack frame), bracketed the same way.
  void CompleteDeferred(std::function<void()> fn);
  size_t pending_recovery() const { return pending_recovery_; }

  // Closes an open auditor fault record; a no-op without an auditor.
  void ResolveFault(uint64_t entry_id, FaultResolution resolution,
                    bool target_disk_failed);

  // Arms the periodic scrub timer (no-op when scrub_interval_us == 0). Called
  // by the backend after it finishes its own constructor-time scheduling so
  // timer-creation order — and therefore same-timestamp tie-breaking — is
  // identical to the pre-engine controllers.
  void StartScrub();
  // Cancels the periodic scrub timer (in-flight scrub work drains normally).
  void StopScrub();

 private:
  void HandleCompletion(SlotId slot, const QueuedRequest& entry,
                        BlockAddr chosen_lba, const DiskOpResult& result);
  void CountFault(SlotId slot, IoStatus status);
  void PromoteSpareIfAvailable(SlotId slot);
  void ScheduleScrubTick();
  void ScrubTick();

  Simulator* sim_;
  std::vector<SimDisk*> disks_;
  std::vector<AccessPredictor*> predictors_;
  DriveSetClient* client_;
  DriveSetOptions options_;

  std::vector<std::unique_ptr<Scheduler>> schedulers_;
  std::vector<std::vector<QueuedRequest>> fg_;
  std::vector<std::vector<QueuedRequest>> delayed_;
  uint64_t next_entry_id_ = 1;

  // Registered command callbacks, keyed by entry id.
  std::unordered_map<uint64_t, CommandDoneFn> command_done_;

  struct SpareEntry {
    SimDisk* disk = nullptr;
    AccessPredictor* predictor = nullptr;
    // Whether this spare's incompatibility has already landed in
    // fstats().spare_rejected. A pooled spare can be re-examined (and
    // re-skipped) by every later promotion attempt; the counter tracks
    // distinct incompatible spares, not skip events.
    bool rejection_counted = false;
  };

  std::vector<bool> failed_;
  std::vector<uint64_t> error_counts_;
  std::vector<SpareEntry> spares_;
  size_t pending_recovery_ = 0;
  EventId scrub_event_;

  FaultRecoveryStats fstats_;
};

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_IO_DRIVE_SET_H_
