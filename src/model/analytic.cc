#include "src/model/analytic.h"

#include <cmath>

#include "src/util/check.h"

namespace mimdraid {

double SingleDiskAverageSeekUs(double s_us) { return s_us / 3.0; }

double MirrorAverageSeekUs(double s_us, int d) {
  MIMDRAID_CHECK_GE(d, 1);
  return s_us / (2.0 * d + 1.0);
}

double StripeAverageSeekUs(double s_us, int ds) {
  MIMDRAID_CHECK_GE(ds, 1);
  return s_us / (3.0 * ds);
}

double EvenReplicaReadRotationUs(double r_us, int dr) {
  MIMDRAID_CHECK_GE(dr, 1);
  return r_us / (2.0 * dr);
}

double RandomReplicaReadRotationUs(double r_us, int dr) {
  MIMDRAID_CHECK_GE(dr, 1);
  return r_us / (dr + 1.0);
}

double ReplicaWriteRotationUs(double r_us, int dr) {
  MIMDRAID_CHECK_GE(dr, 1);
  return r_us - r_us / (2.0 * dr);
}

double SrReadLatencyUs(double s_us, double r_us, int ds, int dr,
                       double locality) {
  MIMDRAID_CHECK_GT(locality, 0.0);
  return StripeAverageSeekUs(s_us / locality, ds) +
         EvenReplicaReadRotationUs(r_us, dr);
}

AspectRatio OptimalAspectForReads(double s_us, double r_us, int d) {
  MIMDRAID_CHECK_GE(d, 1);
  AspectRatio a;
  a.ds = std::sqrt(2.0 * s_us / (3.0 * r_us) * d);
  a.dr = std::sqrt(3.0 * r_us / (2.0 * s_us) * d);
  return a;
}

double BestReadLatencyUs(double s_us, double r_us, int d) {
  MIMDRAID_CHECK_GE(d, 1);
  return std::sqrt(2.0 * s_us * r_us / (3.0 * d));
}

double SrWriteLatencyUs(double s_us, double r_us, int ds, int dr,
                        double locality) {
  return StripeAverageSeekUs(s_us / locality, ds) +
         ReplicaWriteRotationUs(r_us, dr);
}

double SrMixedLatencyUs(double s_us, double r_us, int ds, int dr, double p,
                        double locality) {
  MIMDRAID_CHECK_GE(p, 0.0);
  MIMDRAID_CHECK_LE(p, 1.0);
  return StripeAverageSeekUs(s_us / locality, ds) +
         p * EvenReplicaReadRotationUs(r_us, dr) +
         (1.0 - p) * ReplicaWriteRotationUs(r_us, dr);
}

AspectRatio OptimalAspectForMixed(double s_us, double r_us, int d, double p) {
  MIMDRAID_CHECK_GT(p, 0.5);  // below 0.5, pure striping is optimal
  AspectRatio a;
  a.ds = std::sqrt(2.0 * s_us / (3.0 * r_us * (2.0 * p - 1.0)) * d);
  a.dr = std::sqrt(3.0 * r_us * (2.0 * p - 1.0) / (2.0 * s_us) * d);
  return a;
}

double BestMixedLatencyUs(double s_us, double r_us, int d, double p) {
  MIMDRAID_CHECK_GT(p, 0.5);
  return std::sqrt(2.0 * s_us * r_us * (2.0 * p - 1.0) / (3.0 * d)) +
         (1.0 - p) * r_us;
}

double RlookRequestTimeUs(double s_us, double r_us, int ds, int dr, double p,
                          double q, double locality) {
  MIMDRAID_CHECK_GE(ds, 1);
  MIMDRAID_CHECK_GE(dr, 1);
  MIMDRAID_CHECK_GT(q, 0.0);
  MIMDRAID_CHECK_GT(locality, 0.0);
  return (s_us / locality) / (q * ds) +
         p * EvenReplicaReadRotationUs(r_us, dr) +
         (1.0 - p) * ReplicaWriteRotationUs(r_us, dr);
}

AspectRatio OptimalAspectForRlook(double s_us, double r_us, int d, double p,
                                  double q) {
  MIMDRAID_CHECK_GT(p, 0.5);
  MIMDRAID_CHECK_GT(q, 0.0);
  AspectRatio a;
  a.ds = std::sqrt(2.0 * s_us / (r_us * (2.0 * p - 1.0) * q) * d);
  a.dr = std::sqrt(r_us * (2.0 * p - 1.0) * q / (2.0 * s_us) * d);
  return a;
}

double BestRlookTimeUs(double s_us, double r_us, int d, double p, double q) {
  MIMDRAID_CHECK_GT(p, 0.5);
  return std::sqrt(2.0 * s_us * r_us * (2.0 * p - 1.0) / (q * d)) +
         (1.0 - p) * r_us;
}

double SingleDiskThroughput(double overhead_us, double request_time_us) {
  const double total_us = overhead_us + request_time_us;
  MIMDRAID_CHECK_GT(total_us, 0.0);
  return 1e6 / total_us;
}

double ArrayThroughput(int d, double total_queue, double n1) {
  MIMDRAID_CHECK_GE(d, 1);
  MIMDRAID_CHECK_GE(total_queue, 0.0);
  const double idle_prob =
      std::pow(1.0 - 1.0 / static_cast<double>(d), total_queue);
  return static_cast<double>(d) * (1.0 - idle_prob) * n1;
}

}  // namespace mimdraid
