// Analytical models of Section 2, Equations (1) through (16).
//
// Conventions: S is the maximum (full-stroke) seek time, R the rotation time,
// both in microseconds. Ds is the striping degree (only 1/Ds of each disk's
// cylinders used), Dr the number of rotational replicas, D = Ds*Dr the disk
// budget. p is the fraction of operations that do not force foreground
// replica propagation (Equation 8); q the per-disk queue depth; L the seek
// locality index (observed average random seek / observed workload seek),
// applied by replacing S with S/L.
#ifndef MIMDRAID_SRC_MODEL_ANALYTIC_H_
#define MIMDRAID_SRC_MODEL_ANALYTIC_H_

namespace mimdraid {

// --- Section 2.1: seek reduction. ---

// Average seek of a single disk under uniform random access: S/3.
double SingleDiskAverageSeekUs(double s_us);

// D-way mirror: expectation of the minimum of D uniform seeks, S/(2D+1).
double MirrorAverageSeekUs(double s_us, int d);

// Equation (1): D-way stripe, S/(3D).
double StripeAverageSeekUs(double s_us, int ds);

// --- Section 2.2: rotational delay reduction. ---

// Equation (2): D evenly spaced replicas, R/(2D) average read rotation.
double EvenReplicaReadRotationUs(double r_us, int dr);

// Randomly placed replicas: R/(D+1) (shown for comparison; not used in the
// SR-Array design).
double RandomReplicaReadRotationUs(double r_us, int dr);

// Equation (3): worst-case rotational cost of writing all D replicas in the
// foreground, R - R/(2D).
double ReplicaWriteRotationUs(double r_us, int dr);

// --- Section 2.3: SR-Array latency. ---

// Equation (4) with seek locality: T_R = S/(3 Ds L) + R/(2 Dr).
double SrReadLatencyUs(double s_us, double r_us, int ds, int dr,
                       double locality = 1.0);

struct AspectRatio {
  double ds = 1.0;  // continuous optima; integerized by the Configurator
  double dr = 1.0;
};

// Equation (5): optimal read-only aspect ratio.
AspectRatio OptimalAspectForReads(double s_us, double r_us, int d);

// Equation (6): latency at the Equation (5) optimum.
double BestReadLatencyUs(double s_us, double r_us, int d);

// Equation (7): worst-case write latency, S/(3 Ds) + R - R/(2 Dr).
double SrWriteLatencyUs(double s_us, double r_us, int ds, int dr,
                        double locality = 1.0);

// Equation (9): p-weighted read/write latency.
double SrMixedLatencyUs(double s_us, double r_us, int ds, int dr, double p,
                        double locality = 1.0);

// Equation (10): optimal aspect ratio under mixed read/write (requires
// p > 0.5; below that, pure striping wins and dr = 1).
AspectRatio OptimalAspectForMixed(double s_us, double r_us, int d, double p);

// Equation (11): latency at the Equation (10) optimum.
double BestMixedLatencyUs(double s_us, double r_us, int d, double p);

// --- Section 2.4: scheduling and throughput. ---

// Equation (12): per-request time under RLOOK with queue depth q,
// S/(q Ds L) + p R/(2 Dr) + (1-p)(R - R/(2 Dr)). Valid for q > 3; below
// that the latency models above apply.
double RlookRequestTimeUs(double s_us, double r_us, int ds, int dr, double p,
                          double q, double locality = 1.0);

// Equation (13): throughput-optimal aspect ratio (requires p > 0.5).
AspectRatio OptimalAspectForRlook(double s_us, double r_us, int d, double p,
                                  double q);

// Equation (14): per-request time at the Equation (13) optimum.
double BestRlookTimeUs(double s_us, double r_us, int d, double p, double q);

// Equation (15): single-disk throughput (requests/second) with per-request
// overhead To: N1 = 1 / (To + Tbest).
double SingleDiskThroughput(double overhead_us, double request_time_us);

// Equation (16): D-disk throughput with Q outstanding requests system-wide,
// derated by the probability of idle disks: N_D = D (1 - (1 - 1/D)^Q) N1.
double ArrayThroughput(int d, double total_queue, double n1);

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_MODEL_ANALYTIC_H_
