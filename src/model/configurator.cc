#include "src/model/configurator.h"

#include <algorithm>

#include "src/util/check.h"

namespace mimdraid {

std::string ArrayAspect::ToString() const {
  return std::to_string(ds) + "x" + std::to_string(dr) + "x" +
         std::to_string(dm);
}

double PredictLatencyUs(const ConfiguratorInputs& in, const ArrayAspect& a) {
  // Mirror copies act as rotational replicas for reads and as extra
  // propagation targets for writes (Section 2.5 approximation).
  const int dr_eff = a.dr * a.dm;
  if (in.queue_depth > 3.0) {
    return RlookRequestTimeUs(in.max_seek_us, in.rotation_us, a.ds, dr_eff,
                              in.p, in.queue_depth, in.locality);
  }
  return SrMixedLatencyUs(in.max_seek_us, in.rotation_us, a.ds, dr_eff, in.p,
                          in.locality);
}

std::vector<ConfigCandidate> EnumerateConfigs(const ConfiguratorInputs& in) {
  MIMDRAID_CHECK_GE(in.num_disks, 1);
  MIMDRAID_CHECK_GT(in.max_seek_us, 0.0);
  MIMDRAID_CHECK_GT(in.rotation_us, 0.0);
  std::vector<ConfigCandidate> out;
  const int d = in.num_disks;
  for (int dm = 1; dm <= d; ++dm) {
    if (!in.allow_mirroring && dm > 1) {
      continue;
    }
    if (d % dm != 0) {
      continue;
    }
    const int rest = d / dm;
    for (int dr = 1; dr <= rest; ++dr) {
      if (rest % dr != 0 || dr > in.max_dr) {
        continue;
      }
      ArrayAspect a;
      a.ds = rest / dr;
      a.dr = dr;
      a.dm = dm;
      // A p ratio at or below 50% precludes replication (Section 2.2): the
      // foreground propagation cost always outweighs the read benefit.
      if (in.p <= 0.5 && a.ReplicasPerBlock() > 1) {
        continue;
      }
      out.push_back(ConfigCandidate{a, PredictLatencyUs(in, a)});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ConfigCandidate& x, const ConfigCandidate& y) {
              return x.predicted_latency_us < y.predicted_latency_us;
            });
  return out;
}

ConfigCandidate ChooseConfig(const ConfiguratorInputs& in) {
  if (in.allow_mirroring) {
    // No closed-form rule for the SR-Mirror space; take the model-scored
    // minimum over all factorizations.
    const std::vector<ConfigCandidate> all = EnumerateConfigs(in);
    MIMDRAID_CHECK(!all.empty());
    return all.front();
  }
  // SR-Array: the paper's integerization rule — compute the continuous
  // optimum Dr from the applicable model, then take the largest integer
  // factor of D at or below it (Section 2.3). Rounding down is deliberate:
  // the latency formulas ignore the practical costs (track switches, replica
  // propagation) that penalize large Dr.
  const int d = in.num_disks;
  double dr_opt = 1.0;
  if (in.p > 0.5) {
    const double s_eff = in.max_seek_us / in.locality;
    const AspectRatio continuous =
        in.queue_depth > 3.0
            ? OptimalAspectForRlook(s_eff, in.rotation_us, d, in.p,
                                    in.queue_depth)
            : OptimalAspectForMixed(s_eff, in.rotation_us, d, in.p);
    dr_opt = continuous.dr;
  }
  const int dr_cap =
      std::min(static_cast<int>(dr_opt), in.max_dr);
  int dr = 1;
  for (int f = 1; f <= dr_cap && f <= d; ++f) {
    if (d % f == 0) {
      dr = f;
    }
  }
  ArrayAspect aspect;
  aspect.ds = d / dr;
  aspect.dr = dr;
  aspect.dm = 1;
  return ConfigCandidate{aspect, PredictLatencyUs(in, aspect)};
}

}  // namespace mimdraid
