// Workload-driven array configuration (the paper's central tool).
//
// Given a disk budget D, disk characteristics (S, R), and workload
// characteristics (p, q, L), the Configurator enumerates the practical
// integer configurations Ds x Dr x Dm with Ds*Dr*Dm = D and returns the one
// the Section 2 models predict to be fastest, honoring the prototype's
// constraints: Dr <= 6 (replica propagation within one rotation is limited by
// the ~900 us track switch), p <= 0.5 precludes rotational replication, and
// the queue-aware model (Eq. 12-14) applies only when q > 3.
#ifndef MIMDRAID_SRC_MODEL_CONFIGURATOR_H_
#define MIMDRAID_SRC_MODEL_CONFIGURATOR_H_

#include <string>
#include <vector>

#include "src/model/analytic.h"

namespace mimdraid {

struct ArrayAspect {
  int ds = 1;  // striping degree
  int dr = 1;  // rotational replicas (same disk)
  int dm = 1;  // mirror copies (different disks)

  int TotalDisks() const { return ds * dr * dm; }
  int ReplicasPerBlock() const { return dr * dm; }
  std::string ToString() const;  // "DsxDrxDm"
};

struct ConfiguratorInputs {
  int num_disks = 1;
  double max_seek_us = 0.0;   // S
  double rotation_us = 0.0;   // R
  double p = 1.0;             // Equation (8)
  double queue_depth = 1.0;   // q, per disk
  double locality = 1.0;      // L
  int max_dr = 6;
  // Explore Dm > 1 (SR-Mirror space). When false only SR-Array shapes
  // (Ds x Dr x 1) are considered.
  bool allow_mirroring = false;
};

struct ConfigCandidate {
  ArrayAspect aspect;
  double predicted_latency_us = 0.0;
};

// Model-predicted request time of one aspect under the inputs. Mirror copies
// approximate as extra rotational replicas (Section 2.5: replace Dr with
// Dr*Dm), except that their propagation cost is seek-bearing; the model
// keeps the paper's approximation.
double PredictLatencyUs(const ConfiguratorInputs& in, const ArrayAspect& a);

// All integer factorizations of D that satisfy the constraints, each scored.
std::vector<ConfigCandidate> EnumerateConfigs(const ConfiguratorInputs& in);

// The model-recommended configuration (lowest predicted latency).
ConfigCandidate ChooseConfig(const ConfiguratorInputs& in);

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_MODEL_CONFIGURATOR_H_
