// Disk parameters the Section 2 models consume for a given dataset: S is the
// full-stroke seek over the span the dataset would occupy on ONE disk
// (unreplicated), R the rotation time.
#ifndef MIMDRAID_SRC_MODEL_DISK_PARAMS_H_
#define MIMDRAID_SRC_MODEL_DISK_PARAMS_H_

namespace mimdraid {

struct ModelDiskParams {
  double max_seek_us = 0.0;  // S
  double rotation_us = 0.0;  // R
};

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_MODEL_DISK_PARAMS_H_
