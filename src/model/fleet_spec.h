// Heterogeneous drive fleets: named drive generations and their per-slot
// assignment.
//
// The paper optimizes one aspect ratio for one workload over identical disks;
// a production fleet mixes drive generations (different seek curves, RPM,
// zone densities, capacities) bought years apart. FleetSpec is the model-layer
// description of such a fleet: a list of named DriveParams (one per
// generation) plus a per-slot generation assignment. MimdRaid threads the
// resolved per-slot parameters through disk construction, per-slot
// calibration/prediction, and the capacity-weighted ArrayLayout; the virtual
// array allocator (src/va) carves multiple tenants out of one FleetSpec.
//
// The empty FleetSpec is the homogeneous degenerate case: every consumer
// falls back to its single-drive-model options and behaves exactly as the
// identical-disk code did (pinned by the byte-identical bench goldens).
#ifndef MIMDRAID_SRC_MODEL_FLEET_SPEC_H_
#define MIMDRAID_SRC_MODEL_FLEET_SPEC_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/disk/geometry.h"
#include "src/disk/seek_profile.h"
#include "src/disk/sim_disk.h"

namespace mimdraid {

// One drive generation: everything that distinguishes a drive model. The
// Section 2 analytic inputs (S, R) and the capacity all derive from the
// geometry + profile, so a generation is fully specified by these fields.
struct DriveParams {
  std::string name;        // e.g. "st39133", stable key for stats/traces
  DiskGeometry geometry;   // zones, RPM, capacity
  SeekProfile profile;     // seek curve of this generation
  DiskNoiseModel noise = DiskNoiseModel::None();
};

struct FleetSpec {
  std::vector<DriveParams> generations;
  // Generation index per drive slot, array slots first, then hot spares, in
  // slot order. Empty = every slot runs generations[0]. When non-empty it
  // must cover every slot the consumer instantiates.
  std::vector<uint32_t> slot_generation;

  // The homogeneous degenerate case: consumers use their single-drive-model
  // options instead.
  bool empty() const { return generations.empty(); }

  uint32_t GenerationFor(size_t slot) const {
    if (slot_generation.empty()) {
      return 0;
    }
    return slot < slot_generation.size() ? slot_generation[slot] : 0;
  }

  // Internal consistency: at least one generation, every referenced index in
  // range, every geometry valid and every profile well-formed.
  bool Valid() const {
    if (generations.empty()) {
      return false;
    }
    for (const DriveParams& g : generations) {
      if (!g.geometry.Valid() || !g.profile.WellFormed()) {
        return false;
      }
    }
    for (const uint32_t gen : slot_generation) {
      if (gen >= generations.size()) {
        return false;
      }
    }
    return true;
  }
};

// A single-generation fleet from one drive model (the explicit spelling of
// the homogeneous case, used where a FleetSpec is required).
inline FleetSpec MakeHomogeneousFleet(std::string name, DiskGeometry geometry,
                                      SeekProfile profile,
                                      DiskNoiseModel noise =
                                          DiskNoiseModel::None()) {
  FleetSpec fleet;
  DriveParams params;
  params.name = std::move(name);
  params.geometry = std::move(geometry);
  params.profile = profile;
  params.noise = noise;
  fleet.generations.push_back(std::move(params));
  return fleet;
}

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_MODEL_FLEET_SPEC_H_
