#include "src/obs/chrome_trace.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace mimdraid {

namespace {

// All names we emit are plain ASCII, but markers are caller-supplied strings,
// so escape defensively.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

class EventWriter {
 public:
  explicit EventWriter(std::ostream& os) : os_(os) {}

  // Each call emits one element of the traceEvents array; `body` is the
  // event object's contents without the surrounding braces.
  void Emit(const std::string& body) {
    if (!first_) {
      os_ << ",\n";
    }
    first_ = false;
    os_ << '{' << body << '}';
  }

 private:
  std::ostream& os_;
  bool first_ = true;
};

std::string Num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::string Num(SimTime v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v.us());
  return buf;
}

std::string Num(SimDuration v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v.us());
  return buf;
}

}  // namespace

void WriteChromeTrace(const TraceCollector& c, std::ostream& os) {
  os << "{\"traceEvents\":[\n";
  EventWriter w(os);

  // Track metadata: pid 0 = physical disks (one thread per slot), pid 1 =
  // logical requests.
  w.Emit("\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"disks\"}");
  w.Emit("\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
         "\"args\":{\"name\":\"requests\"}");
  for (uint32_t slot = 0; slot < c.num_slots(); ++slot) {
    char body[128];
    std::snprintf(body, sizeof(body),
                  "\"ph\":\"M\",\"pid\":0,\"tid\":%u,\"name\":\"thread_name\","
                  "\"args\":{\"name\":\"slot %u\"}",
                  slot, slot);
    w.Emit(body);
  }

  // One complete event per disk command. SimDisk services one command at a
  // time, so the per-slot events never overlap and render as a clean track.
  for (const DiskOpRecord& op : c.disk_ops()) {
    std::ostringstream body;
    body << "\"ph\":\"X\",\"pid\":0,\"tid\":" << op.slot << ",\"cat\":\"disk\""
         << ",\"name\":\"" << (op.is_write ? "write" : "read") << '"'
         << ",\"ts\":" << Num(op.start_us)
         << ",\"dur\":" << Num(op.completion_us - op.start_us)
         << ",\"args\":{\"lba\":" << op.lba << ",\"sectors\":" << op.sectors
         << ",\"status\":\"" << IoStatusName(op.status) << '"'
         << ",\"overhead_us\":" << Num(op.overhead_us)
         << ",\"seek_us\":" << Num(op.seek_us)
         << ",\"rotational_us\":" << Num(op.rotational_us)
         << ",\"transfer_us\":" << Num(op.transfer_us) << '}';
    w.Emit(body.str());
  }

  // Queue depth counters, one counter series per slot.
  for (const QueueDepthSample& q : c.queue_depths()) {
    std::ostringstream body;
    body << "\"ph\":\"C\",\"pid\":0,\"tid\":" << q.slot
         << ",\"name\":\"queue_depth_" << q.slot << "\",\"ts\":" << Num(q.t_us)
         << ",\"args\":{\"depth\":" << q.depth << '}';
    w.Emit(body.str());
  }

  // Async begin/end span per logical request; the phase split rides the end
  // event so a Perfetto query can sum it per span.
  for (const RequestRecord& r : c.requests()) {
    const char* name = r.is_write ? "write" : "read";
    {
      std::ostringstream body;
      body << "\"ph\":\"b\",\"pid\":1,\"tid\":0,\"cat\":\"request\",\"id\":"
           << r.id << ",\"name\":\"" << name << "\",\"ts\":"
           << Num(r.arrival_us) << ",\"args\":{\"lba\":" << r.lba
           << ",\"sectors\":" << r.sectors << '}';
      w.Emit(body.str());
    }
    {
      std::ostringstream body;
      body << "\"ph\":\"e\",\"pid\":1,\"tid\":0,\"cat\":\"request\",\"id\":"
           << r.id << ",\"name\":\"" << name << "\",\"ts\":"
           << Num(r.completion_us)
           << ",\"args\":{\"status\":\"" << IoStatusName(r.status) << '"'
           << ",\"recovery_attempts\":" << r.recovery_attempts
           << ",\"queue_us\":" << Num(r.phases.queue_us)
           << ",\"overhead_us\":" << Num(r.phases.overhead_us)
           << ",\"seek_us\":" << Num(r.phases.seek_us)
           << ",\"rotational_us\":" << Num(r.phases.rotational_us)
           << ",\"transfer_us\":" << Num(r.phases.transfer_us)
           << ",\"recovery_us\":" << Num(r.phases.recovery_us) << '}';
      w.Emit(body.str());
    }
  }

  for (const TraceMarker& m : c.markers()) {
    std::ostringstream body;
    body << "\"ph\":\"i\",\"pid\":0,\"tid\":0,\"s\":\"g\",\"name\":\""
         << JsonEscape(m.name) << "\",\"ts\":" << Num(m.t_us);
    w.Emit(body.str());
  }

  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

std::string ChromeTraceJson(const TraceCollector& collector) {
  std::ostringstream os;
  WriteChromeTrace(collector, os);
  return os.str();
}

bool WriteChromeTraceFile(const TraceCollector& collector,
                          const std::string& path) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out) {
    return false;
  }
  WriteChromeTrace(collector, out);
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace mimdraid
