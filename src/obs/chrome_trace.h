// Chrome trace-event JSON export for TraceCollector.
//
// The emitted file loads in chrome://tracing and Perfetto: one track per
// disk slot (pid 0, complete "X" events with the seek/rotation/transfer
// decomposition in args), async "b"/"e" spans for logical requests (pid 1,
// id = request id, phase breakdown on the end event), counter "C" events for
// per-slot queue depth, and instant "i" events for run markers. Timestamps
// are simulated microseconds, which is also the trace-event unit.
#ifndef MIMDRAID_SRC_OBS_CHROME_TRACE_H_
#define MIMDRAID_SRC_OBS_CHROME_TRACE_H_

#include <ostream>
#include <string>

#include "src/obs/trace_collector.h"

namespace mimdraid {

void WriteChromeTrace(const TraceCollector& collector, std::ostream& os);

// Serializes to a string (tests, small traces).
std::string ChromeTraceJson(const TraceCollector& collector);

// Returns false if the file could not be opened or written.
bool WriteChromeTraceFile(const TraceCollector& collector,
                          const std::string& path);

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_OBS_CHROME_TRACE_H_
