#include "src/obs/json_lite.h"

#include <cctype>
#include <cstdlib>
#include <utility>

namespace mimdraid {
namespace json_lite {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  ParseResult Run() {
    ParseResult result;
    SkipWhitespace();
    if (!ParseValue(&result.value)) {
      result.error = error_;
      result.error_offset = pos_;
      return result;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      result.error = "trailing characters after document";
      result.error_offset = pos_;
      return result;
    }
    result.ok = true;
    return result;
  }

 private:
  bool Fail(const char* message) {
    if (error_.empty()) {
      error_ = message;
    }
    return false;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* literal) {
    size_t n = 0;
    while (literal[n] != '\0') {
      ++n;
    }
    if (text_.compare(pos_, n, literal) != 0) {
      return false;
    }
    pos_ += n;
    return true;
  }

  bool ParseValue(Value* out) {
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->type_ = Type::kString;
        return ParseString(&out->string_);
      case 't':
        if (!ConsumeLiteral("true")) {
          return Fail("bad literal");
        }
        out->type_ = Type::kBool;
        out->bool_ = true;
        return true;
      case 'f':
        if (!ConsumeLiteral("false")) {
          return Fail("bad literal");
        }
        out->type_ = Type::kBool;
        out->bool_ = false;
        return true;
      case 'n':
        if (!ConsumeLiteral("null")) {
          return Fail("bad literal");
        }
        out->type_ = Type::kNull;
        return true;
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(Value* out) {
    ++pos_;  // '{'
    out->type_ = Type::kObject;
    SkipWhitespace();
    if (Consume('}')) {
      return true;
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !ParseString(&key)) {
        return Fail("expected object key string");
      }
      SkipWhitespace();
      if (!Consume(':')) {
        return Fail("expected ':' after object key");
      }
      SkipWhitespace();
      Value member;
      if (!ParseValue(&member)) {
        return false;
      }
      out->object_.emplace(std::move(key), std::move(member));
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return true;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  bool ParseArray(Value* out) {
    ++pos_;  // '['
    out->type_ = Type::kArray;
    SkipWhitespace();
    if (Consume(']')) {
      return true;
    }
    while (true) {
      SkipWhitespace();
      Value element;
      if (!ParseValue(&element)) {
        return false;
      }
      out->array_.push_back(std::move(element));
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return true;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          *out += '"';
          break;
        case '\\':
          *out += '\\';
          break;
        case '/':
          *out += '/';
          break;
        case 'b':
          *out += '\b';
          break;
        case 'f':
          *out += '\f';
          break;
        case 'n':
          *out += '\n';
          break;
        case 'r':
          *out += '\r';
          break;
        case 't':
          *out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad hex digit in \\u escape");
            }
          }
          // Only ASCII survives round-trip; anything wider becomes a
          // placeholder (we never emit non-ASCII).
          *out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default:
          return Fail("bad escape character");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(Value* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Fail("expected a value");
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Fail("malformed number");
    }
    out->type_ = Type::kNumber;
    out->number_ = v;
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

ParseResult Parse(const std::string& text) { return Parser(text).Run(); }

}  // namespace json_lite
}  // namespace mimdraid
