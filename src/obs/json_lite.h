// A minimal recursive-descent JSON parser.
//
// Exists so tools/trace_summarize and the obs tests can *validate* the Chrome
// trace-event files we emit without pulling in an external JSON dependency.
// Supports the full JSON grammar except \uXXXX surrogate pairs (escapes are
// decoded to '?' placeholders beyond the ASCII range we emit). Not a general
// purpose library: error reporting is a single message + offset.
#ifndef MIMDRAID_SRC_OBS_JSON_LITE_H_
#define MIMDRAID_SRC_OBS_JSON_LITE_H_

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace mimdraid {
namespace json_lite {

enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

class Value {
 public:
  Value() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }
  const std::vector<Value>& AsArray() const { return array_; }
  const std::map<std::string, Value>& AsObject() const { return object_; }

  // Object member lookup; returns nullptr if absent or not an object.
  const Value* Find(const std::string& key) const {
    if (type_ != Type::kObject) {
      return nullptr;
    }
    auto it = object_.find(key);
    return it == object_.end() ? nullptr : &it->second;
  }
  // Convenience accessors with defaults, for schema-tolerant readers.
  double GetNumber(const std::string& key, double fallback = 0.0) const {
    const Value* v = Find(key);
    return (v != nullptr && v->is_number()) ? v->number_ : fallback;
  }
  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const {
    const Value* v = Find(key);
    return (v != nullptr && v->is_string()) ? v->string_ : fallback;
  }

 private:
  friend class Parser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::map<std::string, Value> object_;
};

struct ParseResult {
  bool ok = false;
  Value value;
  std::string error;      // empty when ok
  size_t error_offset = 0;
};

// Parses a complete JSON document (trailing whitespace allowed, trailing
// garbage is an error).
ParseResult Parse(const std::string& text);

}  // namespace json_lite
}  // namespace mimdraid

#endif  // MIMDRAID_SRC_OBS_JSON_LITE_H_
