// A flat name -> value registry for run-level scalar statistics.
//
// The export target of TraceCollector::ExportTo and anything else that wants
// to publish a number under a stable name (bench harnesses, tests). std::map
// keys keep Dump() deterministic.
#ifndef MIMDRAID_SRC_OBS_STATS_REGISTRY_H_
#define MIMDRAID_SRC_OBS_STATS_REGISTRY_H_

#include <cstddef>
#include <cstdio>
#include <map>
#include <string>

namespace mimdraid {

class StatsRegistry {
 public:
  void Set(const std::string& name, double value) { values_[name] = value; }
  void Increment(const std::string& name, double delta = 1.0) {
    values_[name] += delta;
  }
  // 0.0 for unknown names (registry consumers treat absence as "not
  // measured", never as an error).
  double Get(const std::string& name) const {
    auto it = values_.find(name);
    return it == values_.end() ? 0.0 : it->second;
  }
  bool Contains(const std::string& name) const {
    return values_.contains(name);
  }
  size_t size() const { return values_.size(); }
  const std::map<std::string, double>& values() const { return values_; }

  std::string Dump() const {
    std::string out;
    for (const auto& [name, value] : values_) {
      char line[256];
      std::snprintf(line, sizeof(line), "%-44s %.3f\n", name.c_str(), value);
      out += line;
    }
    return out;
  }

 private:
  std::map<std::string, double> values_;
};

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_OBS_STATS_REGISTRY_H_
