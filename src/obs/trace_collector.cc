#include "src/obs/trace_collector.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/obs/stats_registry.h"
#include "src/util/check.h"

namespace mimdraid {

void TraceCollector::Observe(SimTime t) {
  if (!span_valid_) {
    span_start_ = t;
    span_end_ = t;
    span_valid_ = true;
    return;
  }
  span_start_ = std::min(span_start_, t);
  span_end_ = std::max(span_end_, t);
}

void TraceCollector::OnRequestArrival(uint64_t id, bool is_write, uint64_t lba,
                                      uint32_t sectors, SimTime now) {
  Observe(now);
  RequestRecord& rec = open_[id];
  rec.id = id;
  rec.is_write = is_write;
  rec.lba = lba;
  rec.sectors = sectors;
  rec.arrival_us = now;
}

void TraceCollector::OnRequestComplete(uint64_t id, IoStatus status,
                                       SimTime completion_us,
                                       uint32_t recovery_attempts,
                                       const FinalLeg* leg) {
  auto it = open_.find(id);
  MIMDRAID_CHECK(it != open_.end());
  RequestRecord rec = it->second;
  open_.erase(it);
  Observe(completion_us);
  rec.completion_us = completion_us;
  rec.status = status;
  rec.recovery_attempts = recovery_attempts;

  const double e2e = rec.EndToEndUs();
  PhaseBreakdown& p = rec.phases;
  if (leg != nullptr) {
    p.queue_us = leg->disk_start_us >= leg->entry_arrival_us
                     ? static_cast<double>(
                           (leg->disk_start_us - leg->entry_arrival_us).us())
                     : 0.0;
    p.overhead_us = leg->overhead_us;
    p.seek_us = leg->seek_us;
    p.rotational_us = leg->rotational_us;
    p.transfer_us = leg->transfer_us;
  }
  // Exact residual: whatever the final leg does not explain (backoff,
  // failover re-queues, earlier plan phases, and sub-µs rounding of the
  // integer completion timestamp). Guarantees SumUs() == EndToEndUs().
  p.recovery_us = e2e - p.queue_us - p.overhead_us - p.seek_us -
                  p.rotational_us - p.transfer_us;
  requests_.push_back(std::move(rec));
}

void TraceCollector::OnDiskOp(const DiskOpRecord& rec) {
  Observe(rec.start_us);
  Observe(rec.completion_us);
  num_slots_ = std::max(num_slots_, rec.slot + 1);
  disk_ops_.push_back(rec);
}

void TraceCollector::OnQueueDepth(uint32_t slot, SimTime now, size_t depth) {
  Observe(now);
  num_slots_ = std::max(num_slots_, slot + 1);
  queue_depths_.push_back(
      QueueDepthSample{slot, now, static_cast<uint32_t>(depth)});
}

void TraceCollector::OnPrediction(uint32_t slot, SimTime now,
                                  double predicted_us, double actual_us) {
  Observe(now);
  num_slots_ = std::max(num_slots_, slot + 1);
  predictions_.push_back(PredictionSample{slot, now, predicted_us, actual_us});
}

void TraceCollector::OnSchedulerScan(uint32_t slot, uint64_t candidates_examined) {
  num_slots_ = std::max(num_slots_, slot + 1);
  ++scheduler_picks_;
  scheduler_candidates_ += candidates_examined;
}

void TraceCollector::OnMarker(const std::string& name, SimTime now) {
  Observe(now);
  markers_.push_back(TraceMarker{name, now});
}

PhaseBreakdown TraceCollector::MeanPhases() const {
  PhaseBreakdown mean;
  if (requests_.empty()) {
    return mean;
  }
  for (const RequestRecord& r : requests_) {
    mean.queue_us += r.phases.queue_us;
    mean.overhead_us += r.phases.overhead_us;
    mean.seek_us += r.phases.seek_us;
    mean.rotational_us += r.phases.rotational_us;
    mean.transfer_us += r.phases.transfer_us;
    mean.recovery_us += r.phases.recovery_us;
  }
  const double n = static_cast<double>(requests_.size());
  mean.queue_us /= n;
  mean.overhead_us /= n;
  mean.seek_us /= n;
  mean.rotational_us /= n;
  mean.transfer_us /= n;
  mean.recovery_us /= n;
  return mean;
}

PredictionErrorSummary TraceCollector::PredictionError() const {
  PredictionErrorSummary s;
  if (predictions_.empty()) {
    return s;
  }
  double sum = 0.0;
  double sum_abs = 0.0;
  double sum_sq = 0.0;
  for (const PredictionSample& p : predictions_) {
    const double e = p.ErrorUs();
    sum += e;
    sum_abs += std::abs(e);
    sum_sq += e * e;
    s.max_abs_error_us = std::max(s.max_abs_error_us, std::abs(e));
  }
  const double n = static_cast<double>(predictions_.size());
  s.samples = predictions_.size();
  s.mean_error_us = sum / n;
  s.mean_abs_error_us = sum_abs / n;
  s.rms_error_us = std::sqrt(sum_sq / n);
  return s;
}

double TraceCollector::FractionPredictedWithin(double threshold_us) const {
  if (predictions_.empty()) {
    return 0.0;
  }
  uint64_t within = 0;
  for (const PredictionSample& p : predictions_) {
    if (std::abs(p.ErrorUs()) <= threshold_us) {
      ++within;
    }
  }
  return static_cast<double>(within) /
         static_cast<double>(predictions_.size());
}

std::vector<SlotSummary> TraceCollector::SlotSummaries() const {
  std::vector<SlotSummary> slots(num_slots_);
  for (const DiskOpRecord& op : disk_ops_) {
    SlotSummary& s = slots[op.slot];
    ++s.ops;
    if (op.status != IoStatus::kOk) {
      ++s.failed_ops;
    }
    s.busy_us += static_cast<double>((op.completion_us - op.start_us).us());
  }
  return slots;
}

std::string TraceCollector::Summary() const {
  std::string out;
  char line[256];
  const SimDuration span = span_end_ - span_start_;
  std::snprintf(line, sizeof(line),
                "trace: %zu requests, %zu disk ops, %zu queue samples, "
                "span %.3f s\n",
                requests_.size(), disk_ops_.size(), queue_depths_.size(),
                static_cast<double>(span.us()) / 1e6);
  out += line;

  if (!requests_.empty()) {
    double mean_e2e = 0.0;
    for (const RequestRecord& r : requests_) {
      mean_e2e += r.EndToEndUs();
    }
    mean_e2e /= static_cast<double>(requests_.size());
    const PhaseBreakdown m = MeanPhases();
    std::snprintf(line, sizeof(line),
                  "phases (mean µs): queue %.1f + overhead %.1f + seek %.1f + "
                  "rotation %.1f + transfer %.1f + recovery %.1f = %.1f "
                  "(e2e %.1f)\n",
                  m.queue_us, m.overhead_us, m.seek_us, m.rotational_us,
                  m.transfer_us, m.recovery_us, m.SumUs(), mean_e2e);
    out += line;
  }

  const PredictionErrorSummary pe = PredictionError();
  if (pe.samples > 0) {
    std::snprintf(line, sizeof(line),
                  "prediction: %llu samples, mean err %+.1f µs, "
                  "mean |err| %.1f µs, rms %.1f µs, max |err| %.1f µs\n",
                  static_cast<unsigned long long>(pe.samples),
                  pe.mean_error_us, pe.mean_abs_error_us, pe.rms_error_us,
                  pe.max_abs_error_us);
    out += line;
  }
  if (scheduler_picks_ > 0) {
    std::snprintf(line, sizeof(line),
                  "scheduler: %llu picks, %.1f candidates examined per pick\n",
                  static_cast<unsigned long long>(scheduler_picks_),
                  static_cast<double>(scheduler_candidates_) /
                      static_cast<double>(scheduler_picks_));
    out += line;
  }

  const std::vector<SlotSummary> slots = SlotSummaries();
  for (size_t i = 0; i < slots.size(); ++i) {
    if (slots[i].ops == 0) {
      continue;
    }
    std::snprintf(line, sizeof(line),
                  "slot %2zu: %8llu ops (%llu failed), utilization %.1f%%\n",
                  i, static_cast<unsigned long long>(slots[i].ops),
                  static_cast<unsigned long long>(slots[i].failed_ops),
                  100.0 * slots[i].Utilization(span));
    out += line;
  }
  return out;
}

void TraceCollector::ExportTo(StatsRegistry* registry) const {
  MIMDRAID_CHECK(registry != nullptr);
  registry->Set("trace.requests", static_cast<double>(requests_.size()));
  registry->Set("trace.disk_ops", static_cast<double>(disk_ops_.size()));
  registry->Set("trace.span_us",
                static_cast<double>((span_end_ - span_start_).us()));
  const PhaseBreakdown m = MeanPhases();
  registry->Set("trace.phase.queue_us", m.queue_us);
  registry->Set("trace.phase.overhead_us", m.overhead_us);
  registry->Set("trace.phase.seek_us", m.seek_us);
  registry->Set("trace.phase.rotational_us", m.rotational_us);
  registry->Set("trace.phase.transfer_us", m.transfer_us);
  registry->Set("trace.phase.recovery_us", m.recovery_us);
  const PredictionErrorSummary pe = PredictionError();
  registry->Set("trace.prediction.samples", static_cast<double>(pe.samples));
  registry->Set("trace.prediction.mean_error_us", pe.mean_error_us);
  registry->Set("trace.prediction.mean_abs_error_us", pe.mean_abs_error_us);
  registry->Set("trace.prediction.rms_error_us", pe.rms_error_us);
  registry->Set("trace.scheduler.picks",
                static_cast<double>(scheduler_picks_));
  const std::vector<SlotSummary> slots = SlotSummaries();
  const SimDuration span = span_end_ - span_start_;
  for (size_t i = 0; i < slots.size(); ++i) {
    char name[64];
    std::snprintf(name, sizeof(name), "trace.slot.%02zu.utilization", i);
    registry->Set(name, slots[i].Utilization(span));
  }
}

void TraceCollector::Clear() {
  requests_.clear();
  disk_ops_.clear();
  queue_depths_.clear();
  predictions_.clear();
  markers_.clear();
  open_.clear();
  scheduler_picks_ = 0;
  scheduler_candidates_ = 0;
  num_slots_ = 0;
  span_start_ = SimTime();
  span_end_ = SimTime();
  span_valid_ = false;
}

}  // namespace mimdraid
