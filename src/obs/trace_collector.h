// Per-request tracing and service-time breakdown (the observability layer).
//
// The paper's claims are about *where* latency goes — seek vs rotational
// delay vs transfer (Sections 2-3) — and how accurately the software
// predictor anticipates it (Section 3.2, Table 2). The TraceCollector records
// exactly that attribution at runtime: per-request lifecycle events with the
// seek/rotational/transfer split SimDisk already computes, per-slot
// utilization and queue-depth time series, scheduler prediction error
// (predicted SchedulerPick cost vs actual service time), and fault-recovery
// time per request.
//
// Wiring follows the borrowed-observer pattern of InvariantAuditor: each
// component holds a raw TraceCollector* (nullptr = disabled) and guards every
// report with a null check. The collector never influences a scheduling or
// recovery decision, and with no collector attached the hot paths reduce to
// one pointer compare — measured results and determinism are unchanged.
#ifndef MIMDRAID_SRC_OBS_TRACE_COLLECTOR_H_
#define MIMDRAID_SRC_OBS_TRACE_COLLECTOR_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sim/io_status.h"
#include "src/util/time.h"

namespace mimdraid {

class StatsRegistry;

// Where a request's end-to-end response time went. queue/overhead/seek/
// rotational/transfer describe the *final leg* — the disk sub-operation whose
// completion completed the request; recovery_us is the exact residual of the
// end-to-end latency not attributable to that leg: retry backoff, failover
// re-queues, duplicate races, and earlier phases of multi-phase plans (e.g.
// the read half of a RAID-5 read-modify-write). By construction
// SumUs() == end-to-end latency; on the fault-free mirror path recovery_us is
// only integer-rounding noise (|recovery_us| < 1 µs).
struct PhaseBreakdown {
  double queue_us = 0.0;       // final leg: enqueue -> disk start
  double overhead_us = 0.0;    // command/bus/controller processing
  double seek_us = 0.0;
  double rotational_us = 0.0;
  double transfer_us = 0.0;
  double recovery_us = 0.0;    // residual (recovery, re-queues, prior phases)

  double SumUs() const {
    return queue_us + overhead_us + seek_us + rotational_us + transfer_us +
           recovery_us;
  }
};

// The disk sub-operation whose completion completed a logical request, as the
// controller saw it. entry_arrival_us is when the winning queue entry was
// enqueued (its QueuedRequest::arrival_us); the remaining fields come from
// the DiskOpResult ground-truth decomposition.
struct FinalLeg {
  SimTime entry_arrival_us;
  SimTime disk_start_us;
  double overhead_us = 0.0;
  double seek_us = 0.0;
  double rotational_us = 0.0;
  double transfer_us = 0.0;
};

// One logical request, arrival through completion.
struct RequestRecord {
  uint64_t id = 0;
  bool is_write = false;
  uint64_t lba = 0;
  uint32_t sectors = 0;
  SimTime arrival_us;
  SimTime completion_us;
  IoStatus status = IoStatus::kOk;
  uint32_t recovery_attempts = 0;
  PhaseBreakdown phases;

  double EndToEndUs() const {
    return static_cast<double>((completion_us - arrival_us).us());
  }
};

// One physical disk command, with its ground-truth service decomposition.
struct DiskOpRecord {
  uint32_t slot = 0;
  bool is_write = false;
  uint64_t lba = 0;
  uint32_t sectors = 0;
  IoStatus status = IoStatus::kOk;
  SimTime start_us;
  SimTime completion_us;
  double overhead_us = 0.0;
  double seek_us = 0.0;
  double rotational_us = 0.0;
  double transfer_us = 0.0;
};

struct QueueDepthSample {
  uint32_t slot = 0;
  SimTime t_us;
  uint32_t depth = 0;
};

// Predicted dispatch cost vs the service time the disk actually delivered
// (kOk completions only) — the runtime analogue of the paper's Table 2.
struct PredictionSample {
  uint32_t slot = 0;
  SimTime t_us;          // completion time of the dispatched command
  double predicted_us = 0.0;
  double actual_us = 0.0;

  double ErrorUs() const { return actual_us - predicted_us; }
};

struct TraceMarker {
  std::string name;
  SimTime t_us;
};

// Per-slot rollup over the recorded disk ops.
struct SlotSummary {
  uint64_t ops = 0;
  uint64_t failed_ops = 0;
  double busy_us = 0.0;  // sum of service times

  double Utilization(SimDuration span_us) const {
    return span_us > SimDuration(0)
               ? busy_us / static_cast<double>(span_us.us())
               : 0.0;
  }
};

struct PredictionErrorSummary {
  uint64_t samples = 0;
  double mean_error_us = 0.0;      // signed: actual - predicted
  double mean_abs_error_us = 0.0;
  double rms_error_us = 0.0;
  double max_abs_error_us = 0.0;
};

class TraceCollector {
 public:
  TraceCollector() = default;
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  // --- Controller-side request lifecycle ---------------------------------
  void OnRequestArrival(uint64_t id, bool is_write, uint64_t lba,
                        uint32_t sectors, SimTime now);
  // `leg` describes the disk sub-op that completed the request; nullptr when
  // no such leg exists (unrecoverable completions, lost replicas), in which
  // case the whole end-to-end latency is booked as recovery_us.
  void OnRequestComplete(uint64_t id, IoStatus status, SimTime completion_us,
                         uint32_t recovery_attempts, const FinalLeg* leg);

  // --- Per-slot events ---------------------------------------------------
  void OnDiskOp(const DiskOpRecord& rec);
  void OnQueueDepth(uint32_t slot, SimTime now, size_t depth);
  void OnPrediction(uint32_t slot, SimTime now, double predicted_us,
                    double actual_us);
  void OnSchedulerScan(uint32_t slot, uint64_t candidates_examined);
  void OnMarker(const std::string& name, SimTime now);

  // --- Raw series --------------------------------------------------------
  const std::vector<RequestRecord>& requests() const { return requests_; }
  const std::vector<DiskOpRecord>& disk_ops() const { return disk_ops_; }
  const std::vector<QueueDepthSample>& queue_depths() const {
    return queue_depths_;
  }
  const std::vector<PredictionSample>& predictions() const {
    return predictions_;
  }
  const std::vector<TraceMarker>& markers() const { return markers_; }
  // Requests whose arrival was recorded but whose completion has not been.
  size_t open_requests() const { return open_.size(); }
  uint64_t scheduler_picks() const { return scheduler_picks_; }
  uint64_t scheduler_candidates_examined() const {
    return scheduler_candidates_;
  }
  uint32_t num_slots() const { return num_slots_; }

  // --- Summaries ---------------------------------------------------------
  // Observed time span: first recorded event to last recorded completion.
  SimTime SpanStartUs() const { return span_start_; }
  SimTime SpanEndUs() const { return span_end_; }
  PhaseBreakdown MeanPhases() const;
  PredictionErrorSummary PredictionError() const;
  // Fraction of prediction samples with |actual - predicted| <= threshold.
  double FractionPredictedWithin(double threshold_us) const;
  std::vector<SlotSummary> SlotSummaries() const;
  // Compact multi-line text report (phases, prediction error, per-slot
  // utilization).
  std::string Summary() const;
  // Publishes the summary numbers as named scalars.
  void ExportTo(StatsRegistry* registry) const;

  void Clear();

 private:
  void Observe(SimTime t);

  std::vector<RequestRecord> requests_;
  std::vector<DiskOpRecord> disk_ops_;
  std::vector<QueueDepthSample> queue_depths_;
  std::vector<PredictionSample> predictions_;
  std::vector<TraceMarker> markers_;
  std::unordered_map<uint64_t, RequestRecord> open_;
  uint64_t scheduler_picks_ = 0;
  uint64_t scheduler_candidates_ = 0;
  uint32_t num_slots_ = 0;
  SimTime span_start_;
  SimTime span_end_;
  bool span_valid_ = false;
};

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_OBS_TRACE_COLLECTOR_H_
