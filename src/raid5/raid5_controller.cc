#include "src/raid5/raid5_controller.h"

#include <algorithm>
#include <utility>

#include "src/util/check.h"

namespace mimdraid {

Raid5Controller::Raid5Controller(Simulator* sim, std::vector<SimDisk*> disks,
                                 std::vector<AccessPredictor*> predictors,
                                 const Raid5Layout* layout,
                                 const Raid5ControllerOptions& options)
    : sim_(sim),
      disks_(std::move(disks)),
      predictors_(std::move(predictors)),
      layout_(layout),
      options_(options) {
  MIMDRAID_CHECK(sim != nullptr);
  MIMDRAID_CHECK(layout != nullptr);
  MIMDRAID_CHECK_EQ(disks_.size(), layout->num_disks());
  MIMDRAID_CHECK_EQ(predictors_.size(), disks_.size());
  const size_t n = disks_.size();
  queues_.resize(n);
  failed_.resize(n, false);
  for (size_t i = 0; i < n; ++i) {
    schedulers_.push_back(MakeScheduler(options.scheduler, options.max_scan));
  }
}

bool Raid5Controller::Idle() const {
  if (!ops_.empty() || rebuilding_disk_ >= 0) {
    return false;
  }
  for (size_t i = 0; i < disks_.size(); ++i) {
    if (disks_[i]->busy() || !queues_[i].empty()) {
      return false;
    }
  }
  return true;
}

void Raid5Controller::FailDisk(uint32_t disk) {
  MIMDRAID_CHECK_LT(disk, failed_.size());
  for (size_t i = 0; i < failed_.size(); ++i) {
    MIMDRAID_CHECK(!failed_[i]);  // a second failure loses data
  }
  failed_[disk] = true;
  // Outstanding queue entries for the failed disk cannot complete; a real
  // controller re-drives them. Here we require quiescence at failure time
  // (tests fail disks between requests), which keeps the model simple.
  MIMDRAID_CHECK(queues_[disk].empty());
  MIMDRAID_CHECK(!disks_[disk]->busy());
}

bool Raid5Controller::DiskUsable(uint32_t disk, uint32_t row) const {
  if (!failed_[disk]) {
    if (rebuilding_disk_ == static_cast<int>(disk)) {
      return row < rebuilt_rows_;
    }
    return true;
  }
  return false;
}

void Raid5Controller::Submit(DiskOp op, uint64_t lba, uint32_t sectors,
                             DoneFn done) {
  MIMDRAID_CHECK_GT(sectors, 0u);
  const uint64_t op_id = next_op_id_++;
  const std::vector<Raid5Fragment> frags = layout_->Map(lba, sectors);
  PendingOp& pending = ops_[op_id];
  pending.remaining = static_cast<uint32_t>(frags.size());
  pending.done = std::move(done);
  pending.op = op;
  for (const Raid5Fragment& frag : frags) {
    if (op == DiskOp::kRead) {
      SubmitReadFragment(op_id, frag);
    } else {
      SubmitWriteFragment(op_id, frag);
    }
  }
}

void Raid5Controller::SubmitReadFragment(uint64_t op_id,
                                         const Raid5Fragment& frag) {
  auto work = std::make_shared<FragWork>();
  work->op_id = op_id;
  work->frag = frag;
  work->op = DiskOp::kRead;

  if (DiskUsable(frag.data_disk, frag.row)) {
    work->phase_remaining = 1;
    EnqueueDiskOp(frag.data_disk, DiskOp::kRead, frag.disk_lba, frag.sectors,
                  [this, work](const DiskOpResult& r) {
                    FragmentPhaseDone(work, r.completion_us);
                  });
    return;
  }
  // Degraded read: reconstruct from every surviving row member (including
  // parity).
  work->degraded = true;
  const std::vector<uint32_t> peers =
      layout_->RowPeers(frag.row, frag.data_disk);
  work->phase_remaining = static_cast<int>(peers.size());
  ++stats_.degraded_reads;
  for (uint32_t peer : peers) {
    EnqueueDiskOp(peer, DiskOp::kRead, frag.disk_lba, frag.sectors,
                  [this, work](const DiskOpResult& r) {
                    FragmentPhaseDone(work, r.completion_us);
                  });
  }
}

void Raid5Controller::SubmitWriteFragment(uint64_t op_id,
                                          const Raid5Fragment& frag) {
  auto work = std::make_shared<FragWork>();
  work->op_id = op_id;
  work->frag = frag;
  work->op = DiskOp::kWrite;

  const bool data_ok = DiskUsable(frag.data_disk, frag.row);
  const bool parity_ok = DiskUsable(frag.parity_disk, frag.row);

  if (data_ok && parity_ok) {
    if (frag.sectors == layout_->stripe_unit_sectors() &&
        frag.disk_lba % layout_->stripe_unit_sectors() == 0) {
      // Unit-aligned write: new parity still needs the other units unless the
      // whole row is written; a unit-granular controller cannot see sibling
      // fragments, so treat a full-unit write as reconstruct-write: read the
      // other data units, then write data + parity.
      const uint32_t n = layout_->num_disks();
      std::vector<uint32_t> other_data;
      for (uint32_t i = 0; i < n - 1; ++i) {
        const uint32_t d = layout_->DataDiskOf(frag.row, i);
        if (d != frag.data_disk) {
          other_data.push_back(d);
        }
      }
      ++stats_.full_stripe_writes;
      work->phase_remaining = static_cast<int>(other_data.size());
      if (work->phase_remaining == 0) {
        work->phase_remaining = 1;
        FragmentPhaseDone(work, sim_->Now());
        return;
      }
      for (uint32_t d : other_data) {
        EnqueueDiskOp(d, DiskOp::kRead, frag.disk_lba, frag.sectors,
                      [this, work](const DiskOpResult& r) {
                        FragmentPhaseDone(work, r.completion_us);
                      });
      }
      return;
    }
    // Small write: read-modify-write of data and parity.
    ++stats_.rmw_writes;
    work->phase_remaining = 2;
    for (uint32_t d : {frag.data_disk, frag.parity_disk}) {
      const uint64_t lba = d == frag.data_disk ? frag.disk_lba : frag.parity_lba;
      EnqueueDiskOp(d, DiskOp::kRead, lba, frag.sectors,
                    [this, work](const DiskOpResult& r) {
                      FragmentPhaseDone(work, r.completion_us);
                    });
    }
    return;
  }

  ++stats_.degraded_writes;
  work->degraded = true;
  if (!parity_ok) {
    // Parity lost: just write the data; the fragment is then complete.
    EnqueueDiskOp(frag.data_disk, DiskOp::kWrite, frag.disk_lba, frag.sectors,
                  [this, work](const DiskOpResult& r) {
                    OpPartDone(work->op_id, r.completion_us);
                  });
    return;
  }
  // Data disk lost: reconstruct-write — read the other data units, then
  // write the new parity.
  std::vector<uint32_t> others;
  for (uint32_t i = 0; i < layout_->num_disks() - 1; ++i) {
    const uint32_t d = layout_->DataDiskOf(frag.row, i);
    if (d != frag.data_disk) {
      others.push_back(d);
    }
  }
  work->phase_remaining = static_cast<int>(others.size());
  for (uint32_t d : others) {
    EnqueueDiskOp(d, DiskOp::kRead, frag.disk_lba, frag.sectors,
                  [this, work](const DiskOpResult& r) {
                    FragmentPhaseDone(work, r.completion_us);
                  });
  }
}

void Raid5Controller::FragmentPhaseDone(const std::shared_ptr<FragWork>& work,
                                        SimTime completion) {
  MIMDRAID_CHECK_GT(work->phase_remaining, 0);
  if (--work->phase_remaining > 0) {
    return;
  }
  const Raid5Fragment& frag = work->frag;
  if (work->op == DiskOp::kRead) {
    OpPartDone(work->op_id, completion);
    return;
  }

  // Write: the read phase (if any) is done; issue the write phase.
  const bool data_ok = DiskUsable(frag.data_disk, frag.row);
  const bool parity_ok = DiskUsable(frag.parity_disk, frag.row);
  auto writes = std::make_shared<int>(0);
  auto on_write = [this, work, writes](const DiskOpResult& r) {
    MIMDRAID_CHECK_GT(*writes, 0);
    if (--*writes == 0) {
      OpPartDone(work->op_id, r.completion_us);
    }
  };
  if (data_ok) {
    ++*writes;
  }
  if (parity_ok) {
    ++*writes;
  }
  MIMDRAID_CHECK_GT(*writes, 0);
  if (data_ok) {
    EnqueueDiskOp(frag.data_disk, DiskOp::kWrite, frag.disk_lba, frag.sectors,
                  on_write);
  }
  if (parity_ok) {
    EnqueueDiskOp(frag.parity_disk, DiskOp::kWrite, frag.parity_lba,
                  frag.sectors, on_write);
  }
}

void Raid5Controller::OpPartDone(uint64_t op_id, SimTime completion) {
  auto it = ops_.find(op_id);
  MIMDRAID_CHECK(it != ops_.end());
  PendingOp& pending = it->second;
  pending.last_completion = std::max(pending.last_completion, completion);
  MIMDRAID_CHECK_GT(pending.remaining, 0u);
  if (--pending.remaining == 0) {
    if (pending.op == DiskOp::kRead) {
      ++stats_.reads_completed;
    } else {
      ++stats_.writes_completed;
    }
    DoneFn done = std::move(pending.done);
    const SimTime at = pending.last_completion;
    ops_.erase(it);
    if (done) {
      done(at);
    }
  }
}

void Raid5Controller::EnqueueDiskOp(
    uint32_t disk, DiskOp op, uint64_t lba, uint32_t sectors,
    std::function<void(const DiskOpResult&)> done) {
  MIMDRAID_CHECK(!failed_[disk]);
  QueuedRequest entry;
  entry.id = next_entry_id_++;
  entry.op = op;
  entry.sectors = sectors;
  entry.candidate_lbas = {lba};
  entry.arrival_us = sim_->Now();
  entry_done_[entry.id] = std::move(done);
  queues_[disk].push_back(std::move(entry));
  MaybeDispatch(disk);
}

void Raid5Controller::MaybeDispatch(uint32_t disk) {
  if (disks_[disk]->busy() || queues_[disk].empty()) {
    return;
  }
  ScheduleContext ctx;
  ctx.now = sim_->Now();
  ctx.predictor = predictors_[disk];
  ctx.layout = &disks_[disk]->layout();
  const SchedulerPick pick = schedulers_[disk]->Pick(queues_[disk], ctx);
  QueuedRequest entry = std::move(queues_[disk][pick.queue_index]);
  queues_[disk].erase(queues_[disk].begin() +
                      static_cast<ptrdiff_t>(pick.queue_index));
  double predicted = pick.predicted_service_us;
  if (predicted <= 0.0) {
    predicted = predictors_[disk]
                    ->Predict(sim_->Now(), pick.lba, entry.sectors,
                              entry.op == DiskOp::kWrite)
                    .total_us;
  }
  predictors_[disk]->OnDispatch(sim_->Now(), pick.lba, entry.sectors,
                                entry.op == DiskOp::kWrite, predicted);
  const uint64_t entry_id = entry.id;
  const uint64_t lba = pick.lba;
  const uint32_t sectors = entry.sectors;
  disks_[disk]->Start(entry.op, lba, sectors,
                      [this, disk, entry_id, lba, sectors](
                          const DiskOpResult& result) {
                        predictors_[disk]->OnCompletion(result.completion_us,
                                                        lba, sectors);
                        auto it = entry_done_.find(entry_id);
                        MIMDRAID_CHECK(it != entry_done_.end());
                        auto done = std::move(it->second);
                        entry_done_.erase(it);
                        done(result);
                        MaybeDispatch(disk);
                      });
}

void Raid5Controller::Rebuild(uint32_t disk, DoneFn done) {
  MIMDRAID_CHECK(failed_[disk]);
  failed_[disk] = false;  // the replacement drive is in the slot
  rebuilding_disk_ = static_cast<int>(disk);
  rebuilt_rows_ = 0;
  rebuild_done_ = std::move(done);
  RebuildNextRow();
}

void Raid5Controller::RebuildNextRow() {
  MIMDRAID_CHECK_GE(rebuilding_disk_, 0);
  const uint32_t disk = static_cast<uint32_t>(rebuilding_disk_);
  if (rebuilt_rows_ >= layout_->num_rows()) {
    rebuilding_disk_ = -1;
    DoneFn done = std::move(rebuild_done_);
    if (done) {
      done(sim_->Now());
    }
    return;
  }
  const uint32_t row = rebuilt_rows_;
  const uint32_t unit = layout_->stripe_unit_sectors();
  const uint64_t lba = static_cast<uint64_t>(row) * unit;
  const std::vector<uint32_t> peers = layout_->RowPeers(row, disk);
  auto remaining = std::make_shared<int>(static_cast<int>(peers.size()));
  auto after_reads = [this, disk, lba, unit, remaining](const DiskOpResult&) {
    if (--*remaining > 0) {
      return;
    }
    EnqueueDiskOp(disk, DiskOp::kWrite, lba, unit,
                  [this](const DiskOpResult&) {
                    ++rebuilt_rows_;
                    ++stats_.rebuilt_rows;
                    RebuildNextRow();
                  });
  };
  for (uint32_t peer : peers) {
    EnqueueDiskOp(peer, DiskOp::kRead, lba, unit, after_reads);
  }
}

}  // namespace mimdraid
