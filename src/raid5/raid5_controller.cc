#include "src/raid5/raid5_controller.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "src/util/check.h"

namespace mimdraid {

namespace {

// Status severity follows enum declaration order.
IoStatus Worse(IoStatus a, IoStatus b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

DriveSetOptions EngineOptions(const Raid5ControllerOptions& options) {
  DriveSetOptions engine;
  engine.scheduler = options.scheduler;
  engine.max_scan = options.max_scan;
  engine.auditor = options.auditor;
  engine.fault_injector = options.fault_injector;
  engine.collector = options.collector;
  engine.retry = options.retry;
  engine.disk_error_fail_threshold = options.disk_error_fail_threshold;
  engine.scrub_interval_us = options.scrub_interval_us;
  engine.scrub_gating = options.scrub_gating;
  return engine;
}

}  // namespace

Raid5Controller::Raid5Controller(Simulator* sim, std::vector<SimDisk*> disks,
                                 std::vector<AccessPredictor*> predictors,
                                 const Raid5Layout* layout,
                                 const Raid5ControllerOptions& options)
    : sim_(sim),
      layout_(layout),
      options_(options),
      auditor_(options.auditor),
      collector_(options.collector) {
  MIMDRAID_CHECK(sim != nullptr);
  MIMDRAID_CHECK(layout != nullptr);
  MIMDRAID_CHECK_EQ(disks.size(), layout->num_disks());
  MIMDRAID_CHECK_EQ(predictors.size(), disks.size());
  drives_ = std::make_unique<DriveSet>(sim, std::move(disks),
                                       std::move(predictors),
                                       static_cast<DriveSetClient*>(this),
                                       EngineOptions(options));
  drives_->StartScrub();
}

Raid5Controller::~Raid5Controller() = default;

bool Raid5Controller::Idle() const {
  if (!ops_.empty() || rebuilding_disk_ >= 0 ||
      drives_->pending_recovery() > 0) {
    return false;
  }
  return drives_->AllDrivesQuiet();
}

void Raid5Controller::AuditQuiescent() const {
  if (auditor_ == nullptr) {
    return;
  }
  auditor_->CheckQuiescent(drives_->TotalFgQueued(),
                           drives_->TotalDelayedQueued(),
                           /*nvram_entries=*/0, /*stale_sectors=*/0,
                           /*inflight_writes=*/0, /*parked_requests=*/0);
}

void Raid5Controller::ExportStats(StatsRegistry* registry) const {
  MIMDRAID_CHECK(registry != nullptr);
  ExportFaultStats(drives_->fstats(), registry);
  registry->Set("raid5.reads_completed",
                static_cast<double>(stats_.reads_completed));
  registry->Set("raid5.writes_completed",
                static_cast<double>(stats_.writes_completed));
  registry->Set("raid5.rmw_writes", static_cast<double>(stats_.rmw_writes));
  registry->Set("raid5.full_stripe_writes",
                static_cast<double>(stats_.full_stripe_writes));
  registry->Set("raid5.degraded_reads",
                static_cast<double>(stats_.degraded_reads));
  registry->Set("raid5.degraded_writes",
                static_cast<double>(stats_.degraded_writes));
  registry->Set("raid5.rebuilt_rows",
                static_cast<double>(stats_.rebuilt_rows));
}

bool Raid5Controller::FailDisk(SlotId disk) {
  MIMDRAID_CHECK_LT(disk.value(), drives_->num_slots());
  if (drives_->failed(disk)) {
    return true;
  }
  drives_->MarkFailed(disk);
  if (drives_->fault_injector() != nullptr) {
    drives_->fault_injector()->FailStop(disk.value());
  }
  // Outstanding queue entries for the failed disk cannot complete on it; they
  // are re-driven through their failure handlers (degraded service or
  // kUnrecoverable), exactly as on an auto-detected failure.
  drives_->FailQueuedCommands(disk);
  return true;
}

void Raid5Controller::OnEntryComplete(SlotId /*disk*/,
                                      const QueuedRequest& /*entry*/,
                                      BlockAddr /*chosen_lba*/,
                                      const DiskOpResult& /*result*/) {
  // Every RAID-5 sub-op registers a command callback with the engine; a
  // completion falling through to the raw-entry hook means the command table
  // lost an entry.
  MIMDRAID_CHECK(false);
}

void Raid5Controller::OnSlotFailed(SlotId disk) {
  drives_->FailQueuedCommands(disk);
}

bool Raid5Controller::SparePromotionAllowed(SlotId /*disk*/) {
  return rebuilding_disk_ < 0;
}

uint64_t Raid5Controller::UsedSpanSectors(SlotId /*disk*/) const {
  return static_cast<uint64_t>(layout_->num_rows()) *
         layout_->stripe_unit_sectors();
}

void Raid5Controller::OnSparePromoted(SlotId disk) {
  // The spare holds no data yet: rebuild the slot from parity immediately.
  // Fragments planned before promotion keep treating the slot as unusable
  // (DiskUsable is rebuild-cursor aware), so service stays correct while the
  // reconstruction streams.
  Rebuild(disk, [this](const IoResult& r) {
    if (r.status == IoStatus::kOk) {
      ++fstats().spare_rebuilds_completed;
    }
  });
}

bool Raid5Controller::ScrubEligible() const {
  return ops_.empty() && rebuilding_disk_ < 0;
}

void Raid5Controller::ScrubStep() {
  const uint32_t rows = layout_->num_rows();
  if (rows == 0) {
    return;
  }
  if (scrub_cursor_ >= rows) {
    scrub_cursor_ = 0;
    ++fstats().scrub_sweeps_completed;
    fstats().scrub_last_sweep_coverage =
        sweep_sectors_nominal_ == 0
            ? 0.0
            : static_cast<double>(sweep_sectors_issued_) /
                  static_cast<double>(sweep_sectors_nominal_);
    sweep_sectors_issued_ = 0;
    sweep_sectors_nominal_ = 0;
  }
  const uint32_t row = scrub_cursor_++;
  const uint32_t unit = layout_->stripe_unit_sectors();
  const uint64_t lba = static_cast<uint64_t>(row) * unit;
  for (uint32_t d = 0; d < layout_->num_disks(); ++d) {
    sweep_sectors_nominal_ += unit;
    if (!DiskUsable(d, row)) {
      continue;
    }
    sweep_sectors_issued_ += unit;
    EnqueueDiskOp(
        d, DiskOp::kRead, lba, unit,
        [this, d, lba, unit](const DiskOpResult& r, uint64_t id) {
          ++fstats().scrub_reads;
          fstats().scrub_sectors_read += unit;
          if (r.ok()) {
            return;
          }
          if (r.status == IoStatus::kMediaError &&
              !drives_->failed(SlotId(d))) {
            // Latent sector error caught before a failure could turn it into
            // data loss: rewrite the unit so the drive reallocates the bad
            // sectors. The replacement data is reconstructible from the row
            // peers read by this same sweep.
            ++fstats().scrub_repairs;
            ++fstats().repairs_queued;
            EnqueueDiskOp(d, DiskOp::kWrite, lba, unit,
                          [this](const DiskOpResult& w, uint64_t wid) {
                            if (!w.ok()) {
                              ResolveCommandFault(
                                  wid, FaultResolution::kSurfaced,
                                  w.status == IoStatus::kDiskFailed);
                            }
                          });
            ResolveCommandFault(id, FaultResolution::kRepaired,
                                /*target_disk_failed=*/false);
            return;
          }
          const bool disk_failed = drives_->failed(SlotId(d));
          ResolveCommandFault(id,
                              disk_failed ? FaultResolution::kAbandoned
                                          : FaultResolution::kSurfaced,
                              disk_failed);
        });
  }
}

bool Raid5Controller::DiskUsable(uint32_t disk, uint32_t row) const {
  if (!drives_->failed(SlotId(disk))) {
    if (rebuilding_disk_ == static_cast<int>(disk)) {
      return row < rebuilt_rows_;
    }
    return true;
  }
  return false;
}

void Raid5Controller::Submit(DiskOp op, uint64_t lba, uint32_t sectors,
                             DoneFn done) {
  MIMDRAID_CHECK_GT(sectors, 0u);
  const uint64_t op_id = next_op_id_++;
  if (collector_ != nullptr) {
    collector_->OnRequestArrival(op_id, op == DiskOp::kWrite, lba, sectors,
                                 sim_->Now());
  }
  const std::vector<Raid5Fragment> frags = layout_->Map(lba, sectors);
  PendingOp& pending = ops_[op_id];
  pending.remaining = static_cast<uint32_t>(frags.size());
  pending.done = std::move(done);
  pending.op = op;
  for (const Raid5Fragment& frag : frags) {
    if (op == DiskOp::kRead) {
      SubmitReadFragment(op_id, frag);
    } else {
      SubmitWriteFragment(op_id, frag);
    }
  }
}

void Raid5Controller::SubmitReadFragment(uint64_t op_id,
                                         const Raid5Fragment& frag,
                                         bool force_degraded,
                                         bool repair_on_success) {
  auto work = std::make_shared<FragWork>();
  work->op_id = op_id;
  work->frag = frag;
  work->op = DiskOp::kRead;
  work->force_degraded = force_degraded;
  work->repair_pending = repair_on_success;

  if (!force_degraded && DiskUsable(frag.data_disk, frag.row)) {
    work->phase_remaining = 1;
    EnqueueDiskOp(
        frag.data_disk, DiskOp::kRead, frag.disk_lba, frag.sectors,
        [this, work](const DiskOpResult& r, uint64_t id) {
          if (work->abandoned) {
            if (!r.ok()) {
              ResolveCommandFault(id, FaultResolution::kSurfaced,
                                  r.status == IoStatus::kDiskFailed);
            }
            return;
          }
          if (r.ok()) {
            FragmentPhaseDone(work, r.completion_us, &r);
            return;
          }
          // Direct read failed past the retry budget: fail over to peer
          // reconstruction. A media error additionally queues a repair
          // rewrite once the data is back in hand.
          work->abandoned = true;
          NoteOpRecovery(work->op_id);
          ++fstats().failovers;
          const bool repair =
              r.status == IoStatus::kMediaError &&
              !drives_->failed(SlotId(work->frag.data_disk));
          ResolveCommandFault(id, FaultResolution::kFailedOver,
                              drives_->failed(SlotId(work->frag.data_disk)));
          SubmitReadFragment(work->op_id, work->frag,
                             /*force_degraded=*/true, repair);
        });
    return;
  }

  // Degraded read: reconstruct from every surviving row member (including
  // parity).
  const std::vector<uint32_t> peers =
      layout_->RowPeers(frag.row, frag.data_disk);
  bool peers_usable = !peers.empty();
  for (uint32_t peer : peers) {
    if (!DiskUsable(peer, frag.row)) {
      peers_usable = false;
    }
  }
  if (!peers_usable) {
    // Second failure inside the reconstruction set: the data is gone. Finish
    // the fragment gracefully instead of crashing.
    CompleteFragmentFailed(op_id, IoStatus::kUnrecoverable);
    return;
  }
  work->degraded = true;
  work->phase_remaining = static_cast<int>(peers.size());
  ++stats_.degraded_reads;
  ++fstats().reconstructions;
  for (uint32_t peer : peers) {
    EnqueueDiskOp(peer, DiskOp::kRead, frag.disk_lba, frag.sectors,
                  [this, work](const DiskOpResult& r, uint64_t id) {
                    if (!r.ok()) {
                      // A fault while reconstructing an already-missing
                      // member: the loss is surfaced to the submitter.
                      ResolveCommandFault(id, FaultResolution::kSurfaced,
                                          r.status == IoStatus::kDiskFailed);
                    }
                    if (work->abandoned) {
                      return;
                    }
                    if (!r.ok()) {
                      work->status =
                          Worse(work->status, IoStatus::kUnrecoverable);
                    }
                    FragmentPhaseDone(work, r.completion_us, &r);
                  });
  }
}

void Raid5Controller::SubmitWriteFragment(uint64_t op_id,
                                          const Raid5Fragment& frag,
                                          bool force_degraded) {
  auto work = std::make_shared<FragWork>();
  work->op_id = op_id;
  work->frag = frag;
  work->op = DiskOp::kWrite;
  work->force_degraded = force_degraded;

  const bool data_ok = !force_degraded && DiskUsable(frag.data_disk, frag.row);
  const bool parity_ok = DiskUsable(frag.parity_disk, frag.row);

  // Shared handler for every read-phase sub-op of a write fragment.
  auto read_cb = [this, work](const DiskOpResult& r, uint64_t id) {
    if (work->abandoned) {
      if (!r.ok()) {
        ResolveCommandFault(id, FaultResolution::kSurfaced,
                            r.status == IoStatus::kDiskFailed);
      }
      return;
    }
    if (!r.ok()) {
      if (r.status == IoStatus::kDiskFailed) {
        // Row membership changed under us: re-plan against the survivors.
        work->abandoned = true;
        NoteOpRecovery(work->op_id);
        ResolveCommandFault(id, FaultResolution::kFailedOver,
                            /*target_disk_failed=*/true);
        SubmitWriteFragment(work->op_id, work->frag, work->force_degraded);
        return;
      }
      if (!work->force_degraded) {
        // Old data or old parity is unreadable; a reconstruct-write needs
        // neither.
        work->abandoned = true;
        NoteOpRecovery(work->op_id);
        ++fstats().failovers;
        ResolveCommandFault(id, FaultResolution::kFailedOver,
                            /*target_disk_failed=*/false);
        SubmitWriteFragment(work->op_id, work->frag, /*force_degraded=*/true);
        return;
      }
      // Already reconstructing and a peer unit is unreadable: the new parity
      // cannot be computed.
      work->status = Worse(work->status, IoStatus::kUnrecoverable);
      ResolveCommandFault(id, FaultResolution::kSurfaced,
                          /*target_disk_failed=*/false);
    }
    FragmentPhaseDone(work, r.completion_us, &r);
  };

  if (data_ok && parity_ok) {
    if (frag.sectors == layout_->stripe_unit_sectors() &&
        frag.disk_lba % layout_->stripe_unit_sectors() == 0) {
      // Unit-aligned write: new parity still needs the other units unless the
      // whole row is written; a unit-granular controller cannot see sibling
      // fragments, so treat a full-unit write as reconstruct-write: read the
      // other data units, then write data + parity. Requires every other
      // data unit to be readable; with a dead peer in the row, fall through
      // to RMW instead (old data + old parity need no peers), which also
      // keeps a re-plan after a mid-flight peer failure from re-issuing the
      // identical doomed plan forever.
      const uint32_t n = layout_->num_disks();
      std::vector<uint32_t> other_data;
      bool others_readable = true;
      for (uint32_t i = 0; i < n - 1; ++i) {
        const uint32_t d = layout_->DataDiskOf(frag.row, i);
        if (d != frag.data_disk) {
          other_data.push_back(d);
          if (!DiskUsable(d, frag.row)) {
            others_readable = false;
          }
        }
      }
      if (others_readable) {
        ++stats_.full_stripe_writes;
        work->phase_remaining = static_cast<int>(other_data.size());
        if (work->phase_remaining == 0) {
          work->phase_remaining = 1;
          FragmentPhaseDone(work, sim_->Now());
          return;
        }
        for (uint32_t d : other_data) {
          EnqueueDiskOp(d, DiskOp::kRead, frag.disk_lba, frag.sectors,
                        read_cb);
        }
        return;
      }
    }
    // Small write: read-modify-write of data and parity.
    ++stats_.rmw_writes;
    work->phase_remaining = 2;
    for (uint32_t d : {frag.data_disk, frag.parity_disk}) {
      const uint64_t lba =
          d == frag.data_disk ? frag.disk_lba : frag.parity_lba;
      EnqueueDiskOp(d, DiskOp::kRead, lba, frag.sectors, read_cb);
    }
    return;
  }

  if (drives_->failed(SlotId(frag.data_disk)) &&
      drives_->failed(SlotId(frag.parity_disk))) {
    // Both row members for this fragment are gone: nothing can be written.
    CompleteFragmentFailed(op_id, IoStatus::kUnrecoverable);
    return;
  }

  ++stats_.degraded_writes;
  work->degraded = true;
  if (!parity_ok) {
    // Parity lost: just write the data. The write phase re-checks which
    // targets are usable, so entering it directly writes data alone.
    work->phase_remaining = 1;
    FragmentPhaseDone(work, sim_->Now());
    return;
  }
  // Data copy lost (disk failed or its sectors unreadable): reconstruct-write
  // — read the other data units, then write the new parity (and the data
  // itself when the disk is merely media-degraded, not failed).
  std::vector<uint32_t> others;
  bool others_usable = true;
  for (uint32_t i = 0; i < layout_->num_disks() - 1; ++i) {
    const uint32_t d = layout_->DataDiskOf(frag.row, i);
    if (d != frag.data_disk) {
      others.push_back(d);
      if (!DiskUsable(d, frag.row)) {
        others_usable = false;
      }
    }
  }
  if (!others_usable) {
    // A second missing member: the new parity cannot be computed.
    CompleteFragmentFailed(op_id, IoStatus::kUnrecoverable);
    return;
  }
  work->phase_remaining = static_cast<int>(others.size());
  if (work->phase_remaining == 0) {
    work->phase_remaining = 1;
    FragmentPhaseDone(work, sim_->Now());
    return;
  }
  for (uint32_t d : others) {
    EnqueueDiskOp(d, DiskOp::kRead, frag.disk_lba, frag.sectors, read_cb);
  }
}

void Raid5Controller::FragmentPhaseDone(const std::shared_ptr<FragWork>& work,
                                        SimTime completion,
                                        const DiskOpResult* last) {
  MIMDRAID_CHECK_GT(work->phase_remaining, 0);
  if (--work->phase_remaining > 0) {
    return;
  }
  const Raid5Fragment& frag = work->frag;
  if (work->op == DiskOp::kRead) {
    if (work->status == IoStatus::kOk && work->repair_pending &&
        DiskUsable(frag.data_disk, frag.row)) {
      // Reconstructed data in hand: rewrite the latent-bad sectors so the
      // drive reallocates them. Best-effort — if the rewrite fails the next
      // read simply degrades again.
      ++fstats().repairs_queued;
      EnqueueDiskOp(frag.data_disk, DiskOp::kWrite, frag.disk_lba,
                    frag.sectors,
                    [this](const DiskOpResult& w, uint64_t id) {
                      if (!w.ok()) {
                        ResolveCommandFault(id, FaultResolution::kSurfaced,
                                            w.status == IoStatus::kDiskFailed);
                      }
                    });
    }
    OpPartDone(work->op_id, completion, work->status, last);
    return;
  }

  // Write: the read phase (if any) is done.
  if (work->status != IoStatus::kOk) {
    // A reconstruct-read failed; the new parity cannot be computed.
    OpPartDone(work->op_id, completion, work->status, last);
    return;
  }
  const bool data_ok = DiskUsable(frag.data_disk, frag.row);
  const bool parity_ok = DiskUsable(frag.parity_disk, frag.row);
  auto writes = std::make_shared<int>(0);
  auto on_write = [this, work, writes](const DiskOpResult& r, uint64_t id) {
    if (work->abandoned) {
      if (!r.ok()) {
        ResolveCommandFault(id, FaultResolution::kSurfaced,
                            r.status == IoStatus::kDiskFailed);
      }
      return;
    }
    if (!r.ok()) {
      if (r.status == IoStatus::kDiskFailed) {
        // The target died mid-write: re-plan the fragment; the surviving
        // member is (re)written by the new plan.
        work->abandoned = true;
        NoteOpRecovery(work->op_id);
        ResolveCommandFault(id, FaultResolution::kFailedOver,
                            /*target_disk_failed=*/true);
        SubmitWriteFragment(work->op_id, work->frag, work->force_degraded);
        return;
      }
      work->status = Worse(work->status, IoStatus::kUnrecoverable);
      ResolveCommandFault(id, FaultResolution::kSurfaced,
                          /*target_disk_failed=*/false);
    }
    MIMDRAID_CHECK_GT(*writes, 0);
    if (--*writes == 0) {
      OpPartDone(work->op_id, r.completion_us, work->status, &r);
    }
  };
  if (data_ok) {
    ++*writes;
  }
  if (parity_ok) {
    ++*writes;
  }
  if (*writes == 0) {
    // Both targets died while the reads were in flight.
    CompleteFragmentFailed(work->op_id, IoStatus::kUnrecoverable);
    return;
  }
  if (data_ok) {
    EnqueueDiskOp(frag.data_disk, DiskOp::kWrite, frag.disk_lba, frag.sectors,
                  on_write);
  }
  if (parity_ok) {
    EnqueueDiskOp(frag.parity_disk, DiskOp::kWrite, frag.parity_lba,
                  frag.sectors, on_write);
  }
}

void Raid5Controller::OpPartDone(uint64_t op_id, SimTime completion,
                                 IoStatus status, const DiskOpResult* last) {
  auto it = ops_.find(op_id);
  MIMDRAID_CHECK(it != ops_.end());
  PendingOp& pending = it->second;
  if (collector_ != nullptr && last != nullptr &&
      completion >= pending.last_completion) {
    pending.has_leg = true;
    pending.leg.entry_arrival_us = last->start_us;
    pending.leg.disk_start_us = last->start_us;
    pending.leg.overhead_us = last->overhead_us;
    pending.leg.seek_us = last->seek_us;
    pending.leg.rotational_us = last->rotational_us;
    pending.leg.transfer_us = last->transfer_us;
  }
  pending.last_completion = std::max(pending.last_completion, completion);
  pending.status = Worse(pending.status, status);
  MIMDRAID_CHECK_GT(pending.remaining, 0u);
  if (--pending.remaining == 0) {
    IoResult out;
    out.status = pending.status == IoStatus::kOk ? IoStatus::kOk
                                                 : IoStatus::kUnrecoverable;
    out.completion_us = pending.last_completion;
    out.recovery_attempts = pending.recovery_attempts;
    if (out.status == IoStatus::kOk) {
      if (pending.op == DiskOp::kRead) {
        ++stats_.reads_completed;
      } else {
        ++stats_.writes_completed;
      }
    } else {
      ++fstats().unrecoverable_completions;
    }
    if (collector_ != nullptr) {
      collector_->OnRequestComplete(op_id, out.status, out.completion_us,
                                    out.recovery_attempts,
                                    pending.has_leg ? &pending.leg : nullptr);
    }
    DoneFn done = std::move(pending.done);
    ops_.erase(it);
    if (done) {
      done(out);
    }
  }
}

void Raid5Controller::CompleteFragmentFailed(uint64_t op_id, IoStatus status) {
  drives_->CompleteDeferred(
      [this, op_id, status] { OpPartDone(op_id, sim_->Now(), status); });
}

void Raid5Controller::NoteOpRecovery(uint64_t op_id) {
  auto it = ops_.find(op_id);
  if (it != ops_.end()) {
    ++it->second.recovery_attempts;
  }
}

void Raid5Controller::EnqueueDiskOp(uint32_t disk, DiskOp op, uint64_t lba,
                                    uint32_t sectors,
                                    DriveSet::CommandDoneFn done,
                                    uint32_t attempts) {
  // RAID-5 tracks its stripe ops by its own op ids; the engine entry id is
  // only meaningful to the DriveSet retry machinery.
  (void)drives_->EnqueueCommand(  // mdl-ok(MDL002): engine id unused by policy
      SlotId(disk), op, BlockAddr(lba), sectors, std::move(done), attempts);
}

void Raid5Controller::ResolveCommandFault(uint64_t id,
                                          FaultResolution resolution,
                                          bool target_disk_failed) {
  if (id != 0) {
    drives_->ResolveFault(id, resolution, target_disk_failed);
  }
}

void Raid5Controller::Rebuild(SlotId disk, DoneFn done) {
  MIMDRAID_CHECK(drives_->failed(disk));
  drives_->MarkReplaced(disk);  // the replacement drive is in the slot
  if (drives_->fault_injector() != nullptr) {
    drives_->fault_injector()->ReplaceDisk(disk.value());
  }
  rebuilding_disk_ = static_cast<int>(disk.value());
  rebuilt_rows_ = 0;
  rebuild_rows_lost_ = 0;
  rebuild_done_ = std::move(done);
  RebuildNextRow();
}

void Raid5Controller::AbortRebuild(uint32_t disk) {
  if (rebuilding_disk_ != static_cast<int>(disk)) {
    return;
  }
  rebuilding_disk_ = -1;
  DoneFn done = std::move(rebuild_done_);
  if (done) {
    IoResult out;
    out.status = IoStatus::kDiskFailed;
    out.completion_us = sim_->Now();
    done(out);
  }
}

void Raid5Controller::RebuildNextRow() {
  MIMDRAID_CHECK_GE(rebuilding_disk_, 0);
  const uint32_t disk = static_cast<uint32_t>(rebuilding_disk_);
  if (drives_->failed(SlotId(disk))) {
    // The replacement drive itself died.
    AbortRebuild(disk);
    return;
  }
  while (rebuilt_rows_ < layout_->num_rows()) {
    const uint32_t row = rebuilt_rows_;
    const uint32_t unit = layout_->stripe_unit_sectors();
    const uint64_t lba = static_cast<uint64_t>(row) * unit;
    const std::vector<uint32_t> peers = layout_->RowPeers(row, disk);
    bool peers_ok = !peers.empty();
    for (uint32_t peer : peers) {
      if (drives_->failed(SlotId(peer))) {
        peers_ok = false;
      }
    }
    if (!peers_ok) {
      // Another disk failed: this row cannot be reconstructed. Note the loss
      // and keep going — later faults must not wedge the rebuild.
      ++fstats().rebuild_fragments_lost;
      ++rebuild_rows_lost_;
      ++rebuilt_rows_;
      continue;
    }
    auto remaining = std::make_shared<int>(static_cast<int>(peers.size()));
    auto lost = std::make_shared<bool>(false);
    auto after_reads = [this, disk, lba, unit, remaining,
                        lost](const DiskOpResult& r, uint64_t id) {
      if (!r.ok()) {
        ResolveCommandFault(id, FaultResolution::kSurfaced,
                            r.status == IoStatus::kDiskFailed);
        *lost = true;
      }
      if (--*remaining > 0) {
        return;
      }
      if (drives_->failed(SlotId(disk))) {
        AbortRebuild(disk);
        return;
      }
      if (*lost) {
        ++fstats().rebuild_fragments_lost;
        ++rebuild_rows_lost_;
        ++rebuilt_rows_;
        RebuildNextRow();
        return;
      }
      EnqueueDiskOp(
          disk, DiskOp::kWrite, lba, unit,
          [this, disk](const DiskOpResult& w, uint64_t wid) {
            if (!w.ok()) {
              ResolveCommandFault(wid, FaultResolution::kSurfaced,
                                  w.status == IoStatus::kDiskFailed);
            }
            if (!w.ok() && drives_->failed(SlotId(disk))) {
              AbortRebuild(disk);
              return;
            }
            if (!w.ok()) {
              ++fstats().rebuild_fragments_lost;
              ++rebuild_rows_lost_;
            } else {
              ++stats_.rebuilt_rows;
            }
            ++rebuilt_rows_;
            RebuildNextRow();
          });
    };
    for (uint32_t peer : peers) {
      EnqueueDiskOp(peer, DiskOp::kRead, lba, unit, after_reads);
    }
    return;
  }
  rebuilding_disk_ = -1;
  DoneFn done = std::move(rebuild_done_);
  if (done) {
    IoResult out;
    out.status = rebuild_rows_lost_ > 0 ? IoStatus::kUnrecoverable
                                        : IoStatus::kOk;
    out.completion_us = sim_->Now();
    done(out);
  }
}

}  // namespace mimdraid
