#include "src/raid5/raid5_controller.h"

#include <algorithm>
#include <utility>

#include "src/util/check.h"

namespace mimdraid {

namespace {

// Status severity follows enum declaration order.
IoStatus Worse(IoStatus a, IoStatus b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

}  // namespace

Raid5Controller::Raid5Controller(Simulator* sim, std::vector<SimDisk*> disks,
                                 std::vector<AccessPredictor*> predictors,
                                 const Raid5Layout* layout,
                                 const Raid5ControllerOptions& options)
    : sim_(sim),
      disks_(std::move(disks)),
      predictors_(std::move(predictors)),
      layout_(layout),
      options_(options),
      collector_(options.collector) {
  MIMDRAID_CHECK(sim != nullptr);
  MIMDRAID_CHECK(layout != nullptr);
  MIMDRAID_CHECK_EQ(disks_.size(), layout->num_disks());
  MIMDRAID_CHECK_EQ(predictors_.size(), disks_.size());
  const size_t n = disks_.size();
  queues_.resize(n);
  failed_.resize(n, false);
  for (size_t i = 0; i < n; ++i) {
    schedulers_.push_back(MakeScheduler(options.scheduler, options.max_scan));
    disks_[i]->SetFaultInjector(options_.fault_injector,
                                static_cast<uint32_t>(i));
    if (collector_ != nullptr) {
      disks_[i]->SetTraceCollector(collector_, static_cast<uint32_t>(i));
    }
  }
}

bool Raid5Controller::Idle() const {
  if (!ops_.empty() || rebuilding_disk_ >= 0 || pending_recovery_ > 0) {
    return false;
  }
  for (size_t i = 0; i < disks_.size(); ++i) {
    if (disks_[i]->busy() || !queues_[i].empty()) {
      return false;
    }
  }
  return true;
}

void Raid5Controller::FailDisk(uint32_t disk) {
  MIMDRAID_CHECK_LT(disk, failed_.size());
  if (failed_[disk]) {
    return;
  }
  failed_[disk] = true;
  if (options_.fault_injector != nullptr) {
    options_.fault_injector->FailStop(disk);
  }
  // Outstanding queue entries for the failed disk cannot complete on it; they
  // are re-driven through their failure handlers (degraded service or
  // kUnrecoverable), exactly as on an auto-detected failure.
  DrainQueue(disk);
}

void Raid5Controller::AutoFailDisk(uint32_t disk) {
  if (failed_[disk]) {
    return;
  }
  failed_[disk] = true;
  ++fstats_.auto_disk_failures;
  if (options_.fault_injector != nullptr) {
    options_.fault_injector->FailStop(disk);
  }
  DrainQueue(disk);
}

void Raid5Controller::DrainQueue(uint32_t disk) {
  std::vector<QueuedRequest> drained;
  drained.swap(queues_[disk]);
  if (collector_ != nullptr && !drained.empty()) {
    collector_->OnQueueDepth(disk, sim_->Now(), 0);
  }
  DiskOpResult failure;
  failure.status = IoStatus::kDiskFailed;
  failure.start_us = sim_->Now();
  failure.completion_us = sim_->Now();
  for (QueuedRequest& entry : drained) {
    auto it = entry_done_.find(entry.id);
    if (it == entry_done_.end()) {
      continue;
    }
    auto done = std::move(it->second);
    entry_done_.erase(it);
    done(failure);
  }
}

bool Raid5Controller::DiskUsable(uint32_t disk, uint32_t row) const {
  if (!failed_[disk]) {
    if (rebuilding_disk_ == static_cast<int>(disk)) {
      return row < rebuilt_rows_;
    }
    return true;
  }
  return false;
}

void Raid5Controller::Submit(DiskOp op, uint64_t lba, uint32_t sectors,
                             DoneFn done) {
  MIMDRAID_CHECK_GT(sectors, 0u);
  const uint64_t op_id = next_op_id_++;
  if (collector_ != nullptr) {
    collector_->OnRequestArrival(op_id, op == DiskOp::kWrite, lba, sectors,
                                 sim_->Now());
  }
  const std::vector<Raid5Fragment> frags = layout_->Map(lba, sectors);
  PendingOp& pending = ops_[op_id];
  pending.remaining = static_cast<uint32_t>(frags.size());
  pending.done = std::move(done);
  pending.op = op;
  for (const Raid5Fragment& frag : frags) {
    if (op == DiskOp::kRead) {
      SubmitReadFragment(op_id, frag);
    } else {
      SubmitWriteFragment(op_id, frag);
    }
  }
}

void Raid5Controller::SubmitReadFragment(uint64_t op_id,
                                         const Raid5Fragment& frag,
                                         bool force_degraded,
                                         bool repair_on_success) {
  auto work = std::make_shared<FragWork>();
  work->op_id = op_id;
  work->frag = frag;
  work->op = DiskOp::kRead;
  work->force_degraded = force_degraded;
  work->repair_pending = repair_on_success;

  if (!force_degraded && DiskUsable(frag.data_disk, frag.row)) {
    work->phase_remaining = 1;
    EnqueueDiskOp(frag.data_disk, DiskOp::kRead, frag.disk_lba, frag.sectors,
                  [this, work](const DiskOpResult& r) {
                    if (work->abandoned) {
                      return;
                    }
                    if (r.ok()) {
                      FragmentPhaseDone(work, r.completion_us, &r);
                      return;
                    }
                    // Direct read failed past the retry budget: fail over to
                    // peer reconstruction. A media error additionally queues
                    // a repair rewrite once the data is back in hand.
                    work->abandoned = true;
                    NoteOpRecovery(work->op_id);
                    ++fstats_.failovers;
                    const bool repair = r.status == IoStatus::kMediaError &&
                                        !failed_[work->frag.data_disk];
                    SubmitReadFragment(work->op_id, work->frag,
                                       /*force_degraded=*/true, repair);
                  });
    return;
  }

  // Degraded read: reconstruct from every surviving row member (including
  // parity).
  const std::vector<uint32_t> peers =
      layout_->RowPeers(frag.row, frag.data_disk);
  bool peers_usable = !peers.empty();
  for (uint32_t peer : peers) {
    if (!DiskUsable(peer, frag.row)) {
      peers_usable = false;
    }
  }
  if (!peers_usable) {
    // Second failure inside the reconstruction set: the data is gone. Finish
    // the fragment gracefully instead of crashing.
    CompleteFragmentFailed(op_id, IoStatus::kUnrecoverable);
    return;
  }
  work->degraded = true;
  work->phase_remaining = static_cast<int>(peers.size());
  ++stats_.degraded_reads;
  ++fstats_.reconstructions;
  for (uint32_t peer : peers) {
    EnqueueDiskOp(peer, DiskOp::kRead, frag.disk_lba, frag.sectors,
                  [this, work](const DiskOpResult& r) {
                    if (work->abandoned) {
                      return;
                    }
                    if (!r.ok()) {
                      // A fault while reconstructing an already-missing
                      // member: unrecoverable.
                      work->status =
                          Worse(work->status, IoStatus::kUnrecoverable);
                    }
                    FragmentPhaseDone(work, r.completion_us, &r);
                  });
  }
}

void Raid5Controller::SubmitWriteFragment(uint64_t op_id,
                                          const Raid5Fragment& frag,
                                          bool force_degraded) {
  auto work = std::make_shared<FragWork>();
  work->op_id = op_id;
  work->frag = frag;
  work->op = DiskOp::kWrite;
  work->force_degraded = force_degraded;

  const bool data_ok = !force_degraded && DiskUsable(frag.data_disk, frag.row);
  const bool parity_ok = DiskUsable(frag.parity_disk, frag.row);

  // Shared handler for every read-phase sub-op of a write fragment.
  auto read_cb = [this, work](const DiskOpResult& r) {
    if (work->abandoned) {
      return;
    }
    if (!r.ok()) {
      if (r.status == IoStatus::kDiskFailed) {
        // Row membership changed under us: re-plan against the survivors.
        work->abandoned = true;
        NoteOpRecovery(work->op_id);
        SubmitWriteFragment(work->op_id, work->frag, work->force_degraded);
        return;
      }
      if (!work->force_degraded) {
        // Old data or old parity is unreadable; a reconstruct-write needs
        // neither.
        work->abandoned = true;
        NoteOpRecovery(work->op_id);
        ++fstats_.failovers;
        SubmitWriteFragment(work->op_id, work->frag, /*force_degraded=*/true);
        return;
      }
      // Already reconstructing and a peer unit is unreadable: the new parity
      // cannot be computed.
      work->status = Worse(work->status, IoStatus::kUnrecoverable);
    }
    FragmentPhaseDone(work, r.completion_us, &r);
  };

  if (data_ok && parity_ok) {
    if (frag.sectors == layout_->stripe_unit_sectors() &&
        frag.disk_lba % layout_->stripe_unit_sectors() == 0) {
      // Unit-aligned write: new parity still needs the other units unless the
      // whole row is written; a unit-granular controller cannot see sibling
      // fragments, so treat a full-unit write as reconstruct-write: read the
      // other data units, then write data + parity. Requires every other
      // data unit to be readable; with a dead peer in the row, fall through
      // to RMW instead (old data + old parity need no peers), which also
      // keeps a re-plan after a mid-flight peer failure from re-issuing the
      // identical doomed plan forever.
      const uint32_t n = layout_->num_disks();
      std::vector<uint32_t> other_data;
      bool others_readable = true;
      for (uint32_t i = 0; i < n - 1; ++i) {
        const uint32_t d = layout_->DataDiskOf(frag.row, i);
        if (d != frag.data_disk) {
          other_data.push_back(d);
          if (!DiskUsable(d, frag.row)) {
            others_readable = false;
          }
        }
      }
      if (others_readable) {
        ++stats_.full_stripe_writes;
        work->phase_remaining = static_cast<int>(other_data.size());
        if (work->phase_remaining == 0) {
          work->phase_remaining = 1;
          FragmentPhaseDone(work, sim_->Now());
          return;
        }
        for (uint32_t d : other_data) {
          EnqueueDiskOp(d, DiskOp::kRead, frag.disk_lba, frag.sectors,
                        read_cb);
        }
        return;
      }
    }
    // Small write: read-modify-write of data and parity.
    ++stats_.rmw_writes;
    work->phase_remaining = 2;
    for (uint32_t d : {frag.data_disk, frag.parity_disk}) {
      const uint64_t lba =
          d == frag.data_disk ? frag.disk_lba : frag.parity_lba;
      EnqueueDiskOp(d, DiskOp::kRead, lba, frag.sectors, read_cb);
    }
    return;
  }

  if (failed_[frag.data_disk] && failed_[frag.parity_disk]) {
    // Both row members for this fragment are gone: nothing can be written.
    CompleteFragmentFailed(op_id, IoStatus::kUnrecoverable);
    return;
  }

  ++stats_.degraded_writes;
  work->degraded = true;
  if (!parity_ok) {
    // Parity lost: just write the data. The write phase re-checks which
    // targets are usable, so entering it directly writes data alone.
    work->phase_remaining = 1;
    FragmentPhaseDone(work, sim_->Now());
    return;
  }
  // Data copy lost (disk failed or its sectors unreadable): reconstruct-write
  // — read the other data units, then write the new parity (and the data
  // itself when the disk is merely media-degraded, not failed).
  std::vector<uint32_t> others;
  bool others_usable = true;
  for (uint32_t i = 0; i < layout_->num_disks() - 1; ++i) {
    const uint32_t d = layout_->DataDiskOf(frag.row, i);
    if (d != frag.data_disk) {
      others.push_back(d);
      if (!DiskUsable(d, frag.row)) {
        others_usable = false;
      }
    }
  }
  if (!others_usable) {
    // A second missing member: the new parity cannot be computed.
    CompleteFragmentFailed(op_id, IoStatus::kUnrecoverable);
    return;
  }
  work->phase_remaining = static_cast<int>(others.size());
  if (work->phase_remaining == 0) {
    work->phase_remaining = 1;
    FragmentPhaseDone(work, sim_->Now());
    return;
  }
  for (uint32_t d : others) {
    EnqueueDiskOp(d, DiskOp::kRead, frag.disk_lba, frag.sectors, read_cb);
  }
}

void Raid5Controller::FragmentPhaseDone(const std::shared_ptr<FragWork>& work,
                                        SimTime completion,
                                        const DiskOpResult* last) {
  MIMDRAID_CHECK_GT(work->phase_remaining, 0);
  if (--work->phase_remaining > 0) {
    return;
  }
  const Raid5Fragment& frag = work->frag;
  if (work->op == DiskOp::kRead) {
    if (work->status == IoStatus::kOk && work->repair_pending &&
        DiskUsable(frag.data_disk, frag.row)) {
      // Reconstructed data in hand: rewrite the latent-bad sectors so the
      // drive reallocates them. Best-effort — if the rewrite fails the next
      // read simply degrades again.
      ++fstats_.repairs_queued;
      EnqueueDiskOp(frag.data_disk, DiskOp::kWrite, frag.disk_lba,
                    frag.sectors, [](const DiskOpResult&) {});
    }
    OpPartDone(work->op_id, completion, work->status, last);
    return;
  }

  // Write: the read phase (if any) is done.
  if (work->status != IoStatus::kOk) {
    // A reconstruct-read failed; the new parity cannot be computed.
    OpPartDone(work->op_id, completion, work->status, last);
    return;
  }
  const bool data_ok = DiskUsable(frag.data_disk, frag.row);
  const bool parity_ok = DiskUsable(frag.parity_disk, frag.row);
  auto writes = std::make_shared<int>(0);
  auto on_write = [this, work, writes](const DiskOpResult& r) {
    if (work->abandoned) {
      return;
    }
    if (!r.ok()) {
      if (r.status == IoStatus::kDiskFailed) {
        // The target died mid-write: re-plan the fragment; the surviving
        // member is (re)written by the new plan.
        work->abandoned = true;
        NoteOpRecovery(work->op_id);
        SubmitWriteFragment(work->op_id, work->frag, work->force_degraded);
        return;
      }
      work->status = Worse(work->status, IoStatus::kUnrecoverable);
    }
    MIMDRAID_CHECK_GT(*writes, 0);
    if (--*writes == 0) {
      OpPartDone(work->op_id, r.completion_us, work->status, &r);
    }
  };
  if (data_ok) {
    ++*writes;
  }
  if (parity_ok) {
    ++*writes;
  }
  if (*writes == 0) {
    // Both targets died while the reads were in flight.
    CompleteFragmentFailed(work->op_id, IoStatus::kUnrecoverable);
    return;
  }
  if (data_ok) {
    EnqueueDiskOp(frag.data_disk, DiskOp::kWrite, frag.disk_lba, frag.sectors,
                  on_write);
  }
  if (parity_ok) {
    EnqueueDiskOp(frag.parity_disk, DiskOp::kWrite, frag.parity_lba,
                  frag.sectors, on_write);
  }
}

void Raid5Controller::OpPartDone(uint64_t op_id, SimTime completion,
                                 IoStatus status, const DiskOpResult* last) {
  auto it = ops_.find(op_id);
  MIMDRAID_CHECK(it != ops_.end());
  PendingOp& pending = it->second;
  if (collector_ != nullptr && last != nullptr &&
      completion >= pending.last_completion) {
    pending.has_leg = true;
    pending.leg.entry_arrival_us = last->start_us;
    pending.leg.disk_start_us = last->start_us;
    pending.leg.overhead_us = last->overhead_us;
    pending.leg.seek_us = last->seek_us;
    pending.leg.rotational_us = last->rotational_us;
    pending.leg.transfer_us = last->transfer_us;
  }
  pending.last_completion = std::max(pending.last_completion, completion);
  pending.status = Worse(pending.status, status);
  MIMDRAID_CHECK_GT(pending.remaining, 0u);
  if (--pending.remaining == 0) {
    IoResult out;
    out.status = pending.status == IoStatus::kOk ? IoStatus::kOk
                                                 : IoStatus::kUnrecoverable;
    out.completion_us = pending.last_completion;
    out.recovery_attempts = pending.recovery_attempts;
    if (out.status == IoStatus::kOk) {
      if (pending.op == DiskOp::kRead) {
        ++stats_.reads_completed;
      } else {
        ++stats_.writes_completed;
      }
    } else {
      ++fstats_.unrecoverable_completions;
    }
    if (collector_ != nullptr) {
      collector_->OnRequestComplete(op_id, out.status, out.completion_us,
                                    out.recovery_attempts,
                                    pending.has_leg ? &pending.leg : nullptr);
    }
    DoneFn done = std::move(pending.done);
    ops_.erase(it);
    if (done) {
      done(out);
    }
  }
}

void Raid5Controller::CompleteFragmentFailed(uint64_t op_id, IoStatus status) {
  ++pending_recovery_;
  sim_->ScheduleAfter(0, [this, op_id, status] {
    --pending_recovery_;
    OpPartDone(op_id, sim_->Now(), status);
  });
}

void Raid5Controller::NoteOpRecovery(uint64_t op_id) {
  auto it = ops_.find(op_id);
  if (it != ops_.end()) {
    ++it->second.recovery_attempts;
  }
}

void Raid5Controller::CountFault(IoStatus status) {
  switch (status) {
    case IoStatus::kMediaError:
      ++fstats_.media_errors_seen;
      break;
    case IoStatus::kTimeout:
      ++fstats_.timeouts_seen;
      break;
    case IoStatus::kDiskFailed:
      ++fstats_.disk_failed_seen;
      break;
    default:
      break;
  }
}

void Raid5Controller::EnqueueDiskOp(
    uint32_t disk, DiskOp op, uint64_t lba, uint32_t sectors,
    std::function<void(const DiskOpResult&)> done, uint32_t attempts) {
  if (failed_[disk]) {
    // The slot died between planning and enqueue: complete with kDiskFailed
    // through the event queue so callers re-plan from a clean stack.
    ++pending_recovery_;
    sim_->ScheduleAfter(0, [this, done] {
      --pending_recovery_;
      DiskOpResult failure;
      failure.status = IoStatus::kDiskFailed;
      failure.start_us = sim_->Now();
      failure.completion_us = sim_->Now();
      done(failure);
    });
    return;
  }
  QueuedRequest entry;
  entry.id = next_entry_id_++;
  entry.op = op;
  entry.sectors = sectors;
  entry.candidate_lbas = {lba};
  entry.arrival_us = sim_->Now();
  entry.attempts = attempts;
  entry_done_[entry.id] = std::move(done);
  queues_[disk].push_back(std::move(entry));
  if (collector_ != nullptr) {
    collector_->OnQueueDepth(disk, sim_->Now(), queues_[disk].size());
  }
  MaybeDispatch(disk);
}

void Raid5Controller::MaybeDispatch(uint32_t disk) {
  if (failed_[disk] || disks_[disk]->busy() || queues_[disk].empty()) {
    return;
  }
  ScheduleContext ctx;
  ctx.now = sim_->Now();
  ctx.predictor = predictors_[disk];
  ctx.layout = &disks_[disk]->layout();
  ctx.collector = collector_;
  ctx.disk = disk;
  const SchedulerPick pick = schedulers_[disk]->Pick(queues_[disk], ctx);
  QueuedRequest entry = std::move(queues_[disk][pick.queue_index]);
  queues_[disk].erase(queues_[disk].begin() +
                      static_cast<ptrdiff_t>(pick.queue_index));
  if (collector_ != nullptr) {
    collector_->OnQueueDepth(disk, sim_->Now(), queues_[disk].size());
  }
  double predicted = pick.predicted_service_us;
  if (predicted <= 0.0) {
    predicted = predictors_[disk]
                    ->Predict(sim_->Now(), pick.lba, entry.sectors,
                              entry.op == DiskOp::kWrite)
                    .total_us;
  }
  predictors_[disk]->OnDispatch(sim_->Now(), pick.lba, entry.sectors,
                                entry.op == DiskOp::kWrite, predicted);
  const uint64_t entry_id = entry.id;
  const uint64_t lba = pick.lba;
  const uint32_t sectors = entry.sectors;
  const DiskOp op = entry.op;
  const uint32_t attempts = entry.attempts;
  disks_[disk]->Start(
      op, lba, sectors,
      [this, disk, entry_id, lba, sectors, op,
       attempts, predicted](const DiskOpResult& result) {
        predictors_[disk]->OnCompletion(result.completion_us, lba, sectors);
        if (collector_ != nullptr && result.ok()) {
          collector_->OnPrediction(disk, result.completion_us, predicted,
                                   static_cast<double>(result.ServiceUs()));
        }
        auto it = entry_done_.find(entry_id);
        MIMDRAID_CHECK(it != entry_done_.end());
        auto done = std::move(it->second);
        entry_done_.erase(it);
        if (!result.ok()) {
          CountFault(result.status);
          if (result.status == IoStatus::kDiskFailed) {
            AutoFailDisk(disk);
            done(result);
          } else if (attempts + 1 < options_.retry.max_attempts &&
                     !failed_[disk]) {
            // Transient error or timeout: retry the command after backoff
            // with a fresh queue entry.
            ++fstats_.retries_issued;
            ++pending_recovery_;
            sim_->ScheduleAfter(
                options_.retry.BackoffUs(attempts),
                [this, disk, op, lba, sectors, attempts, done] {
                  --pending_recovery_;
                  EnqueueDiskOp(disk, op, lba, sectors, done, attempts + 1);
                });
          } else {
            done(result);
          }
        } else {
          done(result);
        }
        MaybeDispatch(disk);
      });
}

void Raid5Controller::Rebuild(uint32_t disk, DoneFn done) {
  MIMDRAID_CHECK(failed_[disk]);
  failed_[disk] = false;  // the replacement drive is in the slot
  if (options_.fault_injector != nullptr) {
    options_.fault_injector->ReplaceDisk(disk);
  }
  rebuilding_disk_ = static_cast<int>(disk);
  rebuilt_rows_ = 0;
  rebuild_rows_lost_ = 0;
  rebuild_done_ = std::move(done);
  RebuildNextRow();
}

void Raid5Controller::AbortRebuild(uint32_t disk) {
  if (rebuilding_disk_ != static_cast<int>(disk)) {
    return;
  }
  rebuilding_disk_ = -1;
  DoneFn done = std::move(rebuild_done_);
  if (done) {
    IoResult out;
    out.status = IoStatus::kDiskFailed;
    out.completion_us = sim_->Now();
    done(out);
  }
}

void Raid5Controller::RebuildNextRow() {
  MIMDRAID_CHECK_GE(rebuilding_disk_, 0);
  const uint32_t disk = static_cast<uint32_t>(rebuilding_disk_);
  if (failed_[disk]) {
    // The replacement drive itself died.
    AbortRebuild(disk);
    return;
  }
  while (rebuilt_rows_ < layout_->num_rows()) {
    const uint32_t row = rebuilt_rows_;
    const uint32_t unit = layout_->stripe_unit_sectors();
    const uint64_t lba = static_cast<uint64_t>(row) * unit;
    const std::vector<uint32_t> peers = layout_->RowPeers(row, disk);
    bool peers_ok = !peers.empty();
    for (uint32_t peer : peers) {
      if (failed_[peer]) {
        peers_ok = false;
      }
    }
    if (!peers_ok) {
      // Another disk failed: this row cannot be reconstructed. Note the loss
      // and keep going — later faults must not wedge the rebuild.
      ++fstats_.rebuild_fragments_lost;
      ++rebuild_rows_lost_;
      ++rebuilt_rows_;
      continue;
    }
    auto remaining = std::make_shared<int>(static_cast<int>(peers.size()));
    auto lost = std::make_shared<bool>(false);
    auto after_reads = [this, disk, lba, unit, remaining,
                        lost](const DiskOpResult& r) {
      if (!r.ok()) {
        *lost = true;
      }
      if (--*remaining > 0) {
        return;
      }
      if (failed_[disk]) {
        AbortRebuild(disk);
        return;
      }
      if (*lost) {
        ++fstats_.rebuild_fragments_lost;
        ++rebuild_rows_lost_;
        ++rebuilt_rows_;
        RebuildNextRow();
        return;
      }
      EnqueueDiskOp(disk, DiskOp::kWrite, lba, unit,
                    [this, disk](const DiskOpResult& w) {
                      if (!w.ok() && failed_[disk]) {
                        AbortRebuild(disk);
                        return;
                      }
                      if (!w.ok()) {
                        ++fstats_.rebuild_fragments_lost;
                        ++rebuild_rows_lost_;
                      } else {
                        ++stats_.rebuilt_rows;
                      }
                      ++rebuilt_rows_;
                      RebuildNextRow();
                    });
    };
    for (uint32_t peer : peers) {
      EnqueueDiskOp(peer, DiskOp::kRead, lba, unit, after_reads);
    }
    return;
  }
  rebuilding_disk_ = -1;
  DoneFn done = std::move(rebuild_done_);
  if (done) {
    IoResult out;
    out.status = rebuild_rows_lost_ > 0 ? IoStatus::kUnrecoverable
                                        : IoStatus::kOk;
    out.completion_us = sim_->Now();
    done(out);
  }
}

}  // namespace mimdraid
