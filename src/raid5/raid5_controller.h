// RAID-5 array controller: rotating parity, small-write read-modify-write,
// full-stripe writes, degraded-mode service, and online rebuild.
//
// The baseline at the capacity-efficient end of the spectrum the paper
// explores: where the SR-Array spends capacity to cut latency, RAID-5 spends
// latency (four disk accesses per small write) to save capacity.
//
// Fault handling: every disk sub-operation carries an IoStatus. Transient
// media errors and timeouts are retried a bounded number of times with
// exponential backoff by the shared DriveSet engine; a persistent media error
// on a direct read degrades the fragment to peer reconstruction (and queues a
// repair rewrite so the drive reallocates the bad sector); a kDiskFailed
// verdict fail-stops the slot and re-plans affected fragments against the
// surviving row members. When a fragment's data cannot be recovered (a second
// fault inside a reconstruction set), the operation completes gracefully with
// IoStatus::kUnrecoverable — the controller never crashes on a double
// failure.
//
// The per-drive machinery — scheduler queues, dispatch, bounded retry, fault
// counting, auto-fail, hot-spare promotion, the scrub timer, observer
// wiring — lives in the shared DriveSet engine (src/io/drive_set.h); this
// class is the parity *policy* over that engine and one of the two
// ArrayBackend implementations.
#ifndef MIMDRAID_SRC_RAID5_RAID5_CONTROLLER_H_
#define MIMDRAID_SRC_RAID5_RAID5_CONTROLLER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/disk/access_predictor.h"
#include "src/disk/sim_disk.h"
#include "src/io/array_backend.h"
#include "src/io/drive_set.h"
#include "src/obs/trace_collector.h"
#include "src/raid5/raid5_layout.h"
#include "src/sched/scheduler.h"
#include "src/sim/auditor.h"
#include "src/sim/fault_injector.h"
#include "src/sim/io_status.h"
#include "src/sim/simulator.h"
#include "src/stats/fault_stats.h"

namespace mimdraid {

struct Raid5ControllerOptions {
  SchedulerKind scheduler = SchedulerKind::kSatf;
  size_t max_scan = 0;
  // Debug tripwire: when set, the controller wires this runtime invariant
  // auditor into the simulator, every disk, and every per-drive scheduler.
  // Borrowed; must outlive the controller. Observes only.
  InvariantAuditor* auditor = nullptr;
  // Optional fault injection: wired into every disk so media accesses can
  // fail. nullptr leaves the fault path dormant (every access returns kOk).
  FaultInjector* fault_injector = nullptr;
  // Optional observability: wired into every disk; the controller reports
  // request lifecycle, queue depth, and dispatch prediction error to it.
  // Borrowed; must outlive the controller. Observes only.
  TraceCollector* collector = nullptr;
  // Bounded retry with exponential backoff for transient errors and timeouts
  // on individual disk commands.
  RetryPolicy retry;
  // Consecutive-error budget per disk before the engine declares the drive
  // failed and promotes a hot spare (0 = never auto-fail on errors; an
  // explicit kDiskFailed status always auto-fails).
  uint32_t disk_error_fail_threshold = 0;
  // Period of the background scrubber (0 = off). Each tick that finds the
  // array otherwise idle reads every usable unit of the next parity row; a
  // media error triggers a repair-rewrite of the unit (the data is logically
  // reconstructible from the row peers read in the same pass). Idle-gating is
  // the rate limit: scrubbing never competes with foreground work.
  SimDuration scrub_interval_us;
  // Whether scrub ticks defer to foreground activity (historical default) or
  // fire on every period regardless of engine load (fixed-period policy for
  // reliability studies). The policy-level gate (no logical ops, no rebuild)
  // applies under both modes.
  ScrubGating scrub_gating = ScrubGating::kIdleGated;
};

struct Raid5Stats {
  uint64_t reads_completed = 0;
  uint64_t writes_completed = 0;
  uint64_t rmw_writes = 0;          // small writes using read-modify-write
  uint64_t full_stripe_writes = 0;  // rows written without reading
  uint64_t degraded_reads = 0;      // reconstructed from peers
  uint64_t degraded_writes = 0;
  uint64_t rebuilt_rows = 0;
};

class Raid5Controller : public ArrayBackend, private DriveSetClient {
 public:
  using DoneFn = ArrayBackend::DoneFn;

  Raid5Controller(Simulator* sim, std::vector<SimDisk*> disks,
                  std::vector<AccessPredictor*> predictors,
                  const Raid5Layout* layout,
                  const Raid5ControllerOptions& options);

  Raid5Controller(const Raid5Controller&) = delete;
  Raid5Controller& operator=(const Raid5Controller&) = delete;

  ~Raid5Controller() override;

  void Submit(DiskOp op, uint64_t lba, uint32_t sectors, DoneFn done) override;

  // Logical capacity (parity excluded).
  uint64_t dataset_sectors() const override {
    return layout_->data_capacity_sectors();
  }

  // Marks a disk failed: reads reconstruct from peers; writes maintain
  // parity. A second failure is survived gracefully — fragments that need
  // both missing disks complete with IoStatus::kUnrecoverable instead of
  // crashing; fragments whose members survive keep being served. Outstanding
  // queue entries for the disk are re-driven against the survivors. Always
  // returns true: rotated parity covers every single-disk loss.
  bool FailDisk(SlotId disk) override;
  bool IsFailed(SlotId disk) const override { return drives_->failed(disk); }

  // Reconstructs the (replaced) failed disk row by row; `done` fires when the
  // array is fully redundant again (status kOk), when rows were lost to
  // additional faults (kUnrecoverable), or when the replacement drive itself
  // failed mid-rebuild (kDiskFailed). Foreground traffic may continue; rows
  // not yet rebuilt keep being served degraded.
  void Rebuild(SlotId disk, DoneFn done) override;
  bool RebuildInProgress() const override { return rebuilding_disk_ >= 0; }

  // Registers a standby drive + predictor (borrowed) the engine promotes
  // into a slot it fail-stops; the controller then rebuilds the slot row by
  // row from parity.
  void AddSpare(SimDisk* disk, AccessPredictor* predictor) override {
    drives_->AddSpare(disk, predictor);
  }
  size_t spares_available() const override {
    return drives_->spares_available();
  }

  const Raid5Stats& stats() const { return stats_; }
  const FaultRecoveryStats& fault_stats() const override {
    return drives_->fstats();
  }
  uint64_t disk_error_count(SlotId disk) const {
    return drives_->error_count(disk);
  }
  const Raid5Layout& layout() const { return *layout_; }
  bool Idle() const override;

  // Publishes "fault.*" and "raid5.*" counters.
  void ExportStats(StatsRegistry* registry) const override;

  // Cancels the periodic scrub timer (in-flight scrub reads drain normally).
  void StopScrub() override { drives_->StopScrub(); }
  // Re-arms the timer; the next step resumes from scrub_cursor_ as it stood.
  void StartScrub() override { drives_->StartScrub(); }
  uint64_t scrub_sweeps_completed() const {
    return drives_->fstats().scrub_sweeps_completed;
  }

  // Runs the auditor's terminal consistency check (queues empty, every fault
  // record closed). Call once Idle() reports true; a no-op without an
  // auditor.
  void AuditQuiescent() const override;

 private:
  struct PendingOp {
    uint32_t remaining = 0;
    DoneFn done;
    SimTime last_completion;
    DiskOp op = DiskOp::kRead;
    // Worst status across the op's fragments; only kOk or kUnrecoverable is
    // surfaced to the submitter.
    IoStatus status = IoStatus::kOk;
    uint32_t recovery_attempts = 0;
    // Decomposition of the sub-op whose completion is last_completion (the
    // one that completes the request). RAID-5 sub-ops have no single queue
    // timestamp for the logical request, so entry_arrival_us is the disk
    // start: queue_us reads 0 and everything before the final leg (RMW read
    // phases, peer reconstruction, queueing) lands in the recovery residual.
    bool has_leg = false;
    FinalLeg leg;
  };

  // One logical fragment moving through its phases (e.g. RMW reads, then
  // writes). Owned by shared_ptr because several disk sub-ops reference it.
  struct FragWork {
    uint64_t op_id = 0;
    Raid5Fragment frag;
    DiskOp op = DiskOp::kRead;
    int phase_remaining = 0;
    bool degraded = false;
    // Set when the fragment was re-planned (disk failure or media-error
    // fallback); stale sub-op completions for an abandoned plan are ignored.
    bool abandoned = false;
    // Plan as if the data disk were unusable even when it is alive (a media
    // error made its copy of this fragment unreadable).
    bool force_degraded = false;
    // After a media-error read is served via reconstruction, rewrite the bad
    // sectors so the drive reallocates them.
    bool repair_pending = false;
    // Worst verdict across the fragment's sub-operations.
    IoStatus status = IoStatus::kOk;
  };

  // --- DriveSetClient hooks ---
  // Every RAID-5 disk sub-op is an engine command; raw entries never reach
  // the policy.
  void OnEntryComplete(SlotId disk, const QueuedRequest& entry,
                       BlockAddr chosen_lba,
                       const DiskOpResult& result) override;
  void OnSlotFailed(SlotId disk) override;
  // One rebuild at a time: a promotion while another slot is rebuilding
  // would clobber the rebuild cursor, so the spare stays pooled.
  bool SparePromotionAllowed(SlotId disk) override;
  // RAID-5 addresses every disk symmetrically: rows * stripe unit.
  uint64_t UsedSpanSectors(SlotId disk) const override;
  void OnSparePromoted(SlotId disk) override;
  bool ScrubEligible() const override;
  // One scrub chunk: reads every usable unit of the next parity row.
  void ScrubStep() override;

  void SubmitReadFragment(uint64_t op_id, const Raid5Fragment& frag,
                          bool force_degraded = false,
                          bool repair_on_success = false);
  void SubmitWriteFragment(uint64_t op_id, const Raid5Fragment& frag,
                           bool force_degraded = false);
  void EnqueueDiskOp(uint32_t disk, DiskOp op, uint64_t lba, uint32_t sectors,
                     DriveSet::CommandDoneFn done, uint32_t attempts = 0);
  // Closes the auditor fault record of a terminal command failure the policy
  // is absorbing (a no-op for synthetic completions, id == 0).
  void ResolveCommandFault(uint64_t id, FaultResolution resolution,
                           bool target_disk_failed);
  // `last` is the disk sub-op result that produced `completion` (nullptr on
  // synthetic completions); it feeds the per-request service decomposition.
  void FragmentPhaseDone(const std::shared_ptr<FragWork>& work,
                         SimTime completion,
                         const DiskOpResult* last = nullptr);
  void OpPartDone(uint64_t op_id, SimTime completion, IoStatus status,
                  const DiskOpResult* last = nullptr);
  // Completes one fragment of `op_id` with a failure status through the
  // event queue (never synchronously inside Submit).
  void CompleteFragmentFailed(uint64_t op_id, IoStatus status);
  void NoteOpRecovery(uint64_t op_id);
  void AbortRebuild(uint32_t disk);
  // True if the disk is usable for the given row right now (alive, or
  // already rebuilt past it).
  bool DiskUsable(uint32_t disk, uint32_t row) const;
  void RebuildNextRow();

  FaultRecoveryStats& fstats() { return drives_->fstats(); }

  Simulator* sim_;
  const Raid5Layout* layout_;
  Raid5ControllerOptions options_;
  InvariantAuditor* auditor_ = nullptr;
  TraceCollector* collector_ = nullptr;

  // The shared drive-pool engine: queues, dispatch, bounded retry, fault
  // counting, auto-fail, spares, the scrub timer.
  std::unique_ptr<DriveSet> drives_;

  std::unordered_map<uint64_t, PendingOp> ops_;
  uint64_t next_op_id_ = 1;

  // Rebuild progress: rows < rebuilt_rows_ of rebuilding_disk_ are valid.
  int rebuilding_disk_ = -1;
  uint32_t rebuilt_rows_ = 0;
  DoneFn rebuild_done_;
  uint64_t rebuild_rows_lost_ = 0;  // rows lost during the current rebuild

  uint32_t scrub_cursor_ = 0;  // next parity row to sweep
  // Per-sweep coverage tallies (sectors issued vs. fully-live nominal); the
  // ratio lands in fstats().scrub_last_sweep_coverage at sweep wrap.
  uint64_t sweep_sectors_issued_ = 0;
  uint64_t sweep_sectors_nominal_ = 0;

  Raid5Stats stats_;
};

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_RAID5_RAID5_CONTROLLER_H_
