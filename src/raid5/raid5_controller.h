// RAID-5 array controller: rotating parity, small-write read-modify-write,
// full-stripe writes, degraded-mode service, and online rebuild.
//
// The baseline at the capacity-efficient end of the spectrum the paper
// explores: where the SR-Array spends capacity to cut latency, RAID-5 spends
// latency (four disk accesses per small write) to save capacity.
#ifndef MIMDRAID_SRC_RAID5_RAID5_CONTROLLER_H_
#define MIMDRAID_SRC_RAID5_RAID5_CONTROLLER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/disk/access_predictor.h"
#include "src/disk/sim_disk.h"
#include "src/raid5/raid5_layout.h"
#include "src/sched/scheduler.h"
#include "src/sim/simulator.h"

namespace mimdraid {

struct Raid5ControllerOptions {
  SchedulerKind scheduler = SchedulerKind::kSatf;
  size_t max_scan = 0;
};

struct Raid5Stats {
  uint64_t reads_completed = 0;
  uint64_t writes_completed = 0;
  uint64_t rmw_writes = 0;          // small writes using read-modify-write
  uint64_t full_stripe_writes = 0;  // rows written without reading
  uint64_t degraded_reads = 0;      // reconstructed from peers
  uint64_t degraded_writes = 0;
  uint64_t rebuilt_rows = 0;
};

class Raid5Controller {
 public:
  using DoneFn = std::function<void(SimTime completion_us)>;

  Raid5Controller(Simulator* sim, std::vector<SimDisk*> disks,
                  std::vector<AccessPredictor*> predictors,
                  const Raid5Layout* layout,
                  const Raid5ControllerOptions& options);

  Raid5Controller(const Raid5Controller&) = delete;
  Raid5Controller& operator=(const Raid5Controller&) = delete;

  void Submit(DiskOp op, uint64_t lba, uint32_t sectors, DoneFn done);

  // Marks a disk failed: reads reconstruct from peers; writes maintain
  // parity. A second failure in a running array is unrecoverable and CHECKs.
  void FailDisk(uint32_t disk);
  bool IsFailed(uint32_t disk) const { return failed_[disk]; }

  // Reconstructs the (replaced) failed disk row by row; `done` fires when the
  // array is fully redundant again. Foreground traffic may continue; rows not
  // yet rebuilt keep being served degraded.
  void Rebuild(uint32_t disk, DoneFn done);

  const Raid5Stats& stats() const { return stats_; }
  const Raid5Layout& layout() const { return *layout_; }
  bool Idle() const;

 private:
  struct PendingOp {
    uint32_t remaining = 0;
    DoneFn done;
    SimTime last_completion = 0;
    DiskOp op = DiskOp::kRead;
  };

  // One logical fragment moving through its phases (e.g. RMW reads, then
  // writes). Owned by shared_ptr because several disk sub-ops reference it.
  struct FragWork {
    uint64_t op_id = 0;
    Raid5Fragment frag;
    DiskOp op = DiskOp::kRead;
    int phase_remaining = 0;
    bool degraded = false;
  };

  void SubmitReadFragment(uint64_t op_id, const Raid5Fragment& frag);
  void SubmitWriteFragment(uint64_t op_id, const Raid5Fragment& frag);
  void EnqueueDiskOp(uint32_t disk, DiskOp op, uint64_t lba, uint32_t sectors,
                     std::function<void(const DiskOpResult&)> done);
  void MaybeDispatch(uint32_t disk);
  void FragmentPhaseDone(const std::shared_ptr<FragWork>& work,
                         SimTime completion);
  void OpPartDone(uint64_t op_id, SimTime completion);
  // True if the disk is usable for the given row right now (alive, or
  // already rebuilt past it).
  bool DiskUsable(uint32_t disk, uint32_t row) const;
  void RebuildNextRow();

  Simulator* sim_;
  std::vector<SimDisk*> disks_;
  std::vector<AccessPredictor*> predictors_;
  const Raid5Layout* layout_;
  Raid5ControllerOptions options_;

  std::vector<std::unique_ptr<Scheduler>> schedulers_;
  std::vector<std::vector<QueuedRequest>> queues_;
  std::unordered_map<uint64_t, std::function<void(const DiskOpResult&)>>
      entry_done_;
  uint64_t next_entry_id_ = 1;

  std::unordered_map<uint64_t, PendingOp> ops_;
  uint64_t next_op_id_ = 1;

  std::vector<bool> failed_;
  // Rebuild progress: rows < rebuilt_rows_ of rebuilding_disk_ are valid.
  int rebuilding_disk_ = -1;
  uint32_t rebuilt_rows_ = 0;
  DoneFn rebuild_done_;

  Raid5Stats stats_;
};

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_RAID5_RAID5_CONTROLLER_H_
