// RAID-5 array controller: rotating parity, small-write read-modify-write,
// full-stripe writes, degraded-mode service, and online rebuild.
//
// The baseline at the capacity-efficient end of the spectrum the paper
// explores: where the SR-Array spends capacity to cut latency, RAID-5 spends
// latency (four disk accesses per small write) to save capacity.
//
// Fault handling: every disk sub-operation carries an IoStatus. Transient
// media errors and timeouts are retried a bounded number of times with
// exponential backoff; a persistent media error on a direct read degrades the
// fragment to peer reconstruction (and queues a repair rewrite so the drive
// reallocates the bad sector); a kDiskFailed verdict fail-stops the slot and
// re-plans affected fragments against the surviving row members. When a
// fragment's data cannot be recovered (a second fault inside a reconstruction
// set), the operation completes gracefully with IoStatus::kUnrecoverable —
// the controller never crashes on a double failure.
#ifndef MIMDRAID_SRC_RAID5_RAID5_CONTROLLER_H_
#define MIMDRAID_SRC_RAID5_RAID5_CONTROLLER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/disk/access_predictor.h"
#include "src/disk/sim_disk.h"
#include "src/obs/trace_collector.h"
#include "src/raid5/raid5_layout.h"
#include "src/sched/scheduler.h"
#include "src/sim/fault_injector.h"
#include "src/sim/io_status.h"
#include "src/sim/simulator.h"
#include "src/stats/fault_stats.h"

namespace mimdraid {

struct Raid5ControllerOptions {
  SchedulerKind scheduler = SchedulerKind::kSatf;
  size_t max_scan = 0;
  // Optional fault injection: wired into every disk so media accesses can
  // fail. nullptr leaves the fault path dormant (every access returns kOk).
  FaultInjector* fault_injector = nullptr;
  // Optional observability: wired into every disk; the controller reports
  // request lifecycle, queue depth, and dispatch prediction error to it.
  // Borrowed; must outlive the controller. Observes only.
  TraceCollector* collector = nullptr;
  // Bounded retry with exponential backoff for transient errors and timeouts
  // on individual disk commands.
  RetryPolicy retry;
};

struct Raid5Stats {
  uint64_t reads_completed = 0;
  uint64_t writes_completed = 0;
  uint64_t rmw_writes = 0;          // small writes using read-modify-write
  uint64_t full_stripe_writes = 0;  // rows written without reading
  uint64_t degraded_reads = 0;      // reconstructed from peers
  uint64_t degraded_writes = 0;
  uint64_t rebuilt_rows = 0;
};

class Raid5Controller {
 public:
  using DoneFn = std::function<void(const IoResult&)>;

  Raid5Controller(Simulator* sim, std::vector<SimDisk*> disks,
                  std::vector<AccessPredictor*> predictors,
                  const Raid5Layout* layout,
                  const Raid5ControllerOptions& options);

  Raid5Controller(const Raid5Controller&) = delete;
  Raid5Controller& operator=(const Raid5Controller&) = delete;

  void Submit(DiskOp op, uint64_t lba, uint32_t sectors, DoneFn done);

  // Marks a disk failed: reads reconstruct from peers; writes maintain
  // parity. A second failure is survived gracefully — fragments that need
  // both missing disks complete with IoStatus::kUnrecoverable instead of
  // crashing; fragments whose members survive keep being served. Outstanding
  // queue entries for the disk are re-driven against the survivors.
  void FailDisk(uint32_t disk);
  bool IsFailed(uint32_t disk) const { return failed_[disk]; }

  // Reconstructs the (replaced) failed disk row by row; `done` fires when the
  // array is fully redundant again (status kOk), when rows were lost to
  // additional faults (kUnrecoverable), or when the replacement drive itself
  // failed mid-rebuild (kDiskFailed). Foreground traffic may continue; rows
  // not yet rebuilt keep being served degraded.
  void Rebuild(uint32_t disk, DoneFn done);
  bool RebuildInProgress() const { return rebuilding_disk_ >= 0; }

  const Raid5Stats& stats() const { return stats_; }
  const FaultRecoveryStats& fault_stats() const { return fstats_; }
  const Raid5Layout& layout() const { return *layout_; }
  bool Idle() const;

 private:
  struct PendingOp {
    uint32_t remaining = 0;
    DoneFn done;
    SimTime last_completion = 0;
    DiskOp op = DiskOp::kRead;
    // Worst status across the op's fragments; only kOk or kUnrecoverable is
    // surfaced to the submitter.
    IoStatus status = IoStatus::kOk;
    uint32_t recovery_attempts = 0;
    // Decomposition of the sub-op whose completion is last_completion (the
    // one that completes the request). RAID-5 sub-ops have no single queue
    // timestamp for the logical request, so entry_arrival_us is the disk
    // start: queue_us reads 0 and everything before the final leg (RMW read
    // phases, peer reconstruction, queueing) lands in the recovery residual.
    bool has_leg = false;
    FinalLeg leg;
  };

  // One logical fragment moving through its phases (e.g. RMW reads, then
  // writes). Owned by shared_ptr because several disk sub-ops reference it.
  struct FragWork {
    uint64_t op_id = 0;
    Raid5Fragment frag;
    DiskOp op = DiskOp::kRead;
    int phase_remaining = 0;
    bool degraded = false;
    // Set when the fragment was re-planned (disk failure or media-error
    // fallback); stale sub-op completions for an abandoned plan are ignored.
    bool abandoned = false;
    // Plan as if the data disk were unusable even when it is alive (a media
    // error made its copy of this fragment unreadable).
    bool force_degraded = false;
    // After a media-error read is served via reconstruction, rewrite the bad
    // sectors so the drive reallocates them.
    bool repair_pending = false;
    // Worst verdict across the fragment's sub-operations.
    IoStatus status = IoStatus::kOk;
  };

  void SubmitReadFragment(uint64_t op_id, const Raid5Fragment& frag,
                          bool force_degraded = false,
                          bool repair_on_success = false);
  void SubmitWriteFragment(uint64_t op_id, const Raid5Fragment& frag,
                           bool force_degraded = false);
  void EnqueueDiskOp(uint32_t disk, DiskOp op, uint64_t lba, uint32_t sectors,
                     std::function<void(const DiskOpResult&)> done,
                     uint32_t attempts = 0);
  void MaybeDispatch(uint32_t disk);
  // `last` is the disk sub-op result that produced `completion` (nullptr on
  // synthetic completions); it feeds the per-request service decomposition.
  void FragmentPhaseDone(const std::shared_ptr<FragWork>& work,
                         SimTime completion,
                         const DiskOpResult* last = nullptr);
  void OpPartDone(uint64_t op_id, SimTime completion, IoStatus status,
                  const DiskOpResult* last = nullptr);
  // Completes one fragment of `op_id` with a failure status through the
  // event queue (never synchronously inside Submit).
  void CompleteFragmentFailed(uint64_t op_id, IoStatus status);
  void NoteOpRecovery(uint64_t op_id);
  void CountFault(IoStatus status);
  // Fail-stops a slot in response to a kDiskFailed verdict and re-drives its
  // queued entries through their failure handlers.
  void AutoFailDisk(uint32_t disk);
  void DrainQueue(uint32_t disk);
  void AbortRebuild(uint32_t disk);
  // True if the disk is usable for the given row right now (alive, or
  // already rebuilt past it).
  bool DiskUsable(uint32_t disk, uint32_t row) const;
  void RebuildNextRow();

  Simulator* sim_;
  std::vector<SimDisk*> disks_;
  std::vector<AccessPredictor*> predictors_;
  const Raid5Layout* layout_;
  Raid5ControllerOptions options_;
  TraceCollector* collector_ = nullptr;

  std::vector<std::unique_ptr<Scheduler>> schedulers_;
  std::vector<std::vector<QueuedRequest>> queues_;
  std::unordered_map<uint64_t, std::function<void(const DiskOpResult&)>>
      entry_done_;
  uint64_t next_entry_id_ = 1;

  std::unordered_map<uint64_t, PendingOp> ops_;
  uint64_t next_op_id_ = 1;

  std::vector<bool> failed_;
  // Rebuild progress: rows < rebuilt_rows_ of rebuilding_disk_ are valid.
  int rebuilding_disk_ = -1;
  uint32_t rebuilt_rows_ = 0;
  DoneFn rebuild_done_;
  uint64_t rebuild_rows_lost_ = 0;  // rows lost during the current rebuild

  // Backoff timers and scheduled synthetic completions in flight; keeps
  // Idle() false while recovery work is pending.
  size_t pending_recovery_ = 0;

  Raid5Stats stats_;
  FaultRecoveryStats fstats_;
};

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_RAID5_RAID5_CONTROLLER_H_
