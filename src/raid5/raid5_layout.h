// Left-symmetric RAID-5 layout.
//
// The capacity-frugal baseline from the paper's related work (Hou & Patt's
// mirroring-vs-RAID-5 tradeoff, HP AutoRAID's lower level): N disks store
// N-1 disks' worth of data plus rotating parity. It anchors the opposite end
// of the capacity-for-performance spectrum from the SR-Array: best capacity
// efficiency, worst small-write cost (the read-modify-write of data and
// parity).
#ifndef MIMDRAID_SRC_RAID5_RAID5_LAYOUT_H_
#define MIMDRAID_SRC_RAID5_RAID5_LAYOUT_H_

#include <cstdint>
#include <vector>

#include "src/util/check.h"

namespace mimdraid {

// A piece of a logical request confined to one stripe unit.
struct Raid5Fragment {
  uint64_t logical_lba = 0;
  uint32_t sectors = 0;
  uint32_t data_disk = 0;
  uint64_t disk_lba = 0;  // location of the data on data_disk
  uint32_t parity_disk = 0;
  uint64_t parity_lba = 0;  // corresponding parity sectors
  uint32_t row = 0;         // stripe row index
};

class Raid5Layout {
 public:
  // `num_disks` >= 3; `stripe_unit_sectors` data sectors per unit;
  // `per_disk_sectors` usable sectors on each disk.
  Raid5Layout(uint32_t num_disks, uint32_t stripe_unit_sectors,
              uint64_t per_disk_sectors);

  uint32_t num_disks() const { return num_disks_; }
  uint32_t stripe_unit_sectors() const { return unit_; }
  uint64_t data_capacity_sectors() const { return data_capacity_; }
  uint32_t num_rows() const { return rows_; }

  // Parity disk of a stripe row (left-symmetric rotation).
  uint32_t ParityDiskOf(uint32_t row) const {
    return (num_disks_ - 1 - row % num_disks_) % num_disks_;
  }

  // The i-th data disk (0..N-2) of a row, skipping the parity disk, in
  // left-symmetric order (data starts just after the parity disk).
  uint32_t DataDiskOf(uint32_t row, uint32_t index) const {
    MIMDRAID_CHECK_LT(index, num_disks_ - 1);
    return (ParityDiskOf(row) + 1 + index) % num_disks_;
  }

  // Splits a logical request into per-unit fragments.
  std::vector<Raid5Fragment> Map(uint64_t lba, uint32_t sectors) const;

  // Disks holding the other data units of `row` (everything needed to
  // reconstruct one lost unit, together with parity).
  std::vector<uint32_t> RowPeers(uint32_t row, uint32_t excluding_disk) const;

 private:
  uint32_t num_disks_;
  uint32_t unit_;
  uint64_t per_disk_sectors_;
  uint32_t rows_;
  uint64_t data_capacity_;
};

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_RAID5_RAID5_LAYOUT_H_
