#include "src/rel/fleet_sim.h"

#include "src/util/check.h"

namespace mimdraid {
namespace rel {

namespace {

FaultInjectorOptions InjectorOptions(const FleetOptions& options) {
  FaultInjectorOptions fo;
  fo.seed = options.seed;
  fo.lifetime = options.lifetime;
  return fo;
}

}  // namespace

FleetSim::FleetSim(const FleetOptions& options)
    : options_(options),
      injector_(InjectorOptions(options)),
      // Rebuild durations draw from their own stream so the per-slot hazard
      // streams stay aligned with a FaultInjector run outside the fleet sim.
      rebuild_rng_(options.seed ^ 0xD1B54A32D192ED03ull),
      slots_(options.disks) {
  MIMDRAID_CHECK_GE(options_.disks, 2u);
  MIMDRAID_CHECK_GE(options_.fault_tolerance, 1u);
  MIMDRAID_CHECK_LT(options_.fault_tolerance, options_.disks);
  MIMDRAID_CHECK(options_.lifetime.hazard != LifetimeHazard::kNone);
  MIMDRAID_CHECK_GT(options_.rebuild_hours, 0.0);
  MIMDRAID_CHECK_GT(options_.horizon_hours, 0.0);
  if (options_.scrub != ScrubPolicy::kOff) {
    MIMDRAID_CHECK_GT(options_.scrub_period_hours, 0.0);
  }
  MIMDRAID_CHECK_GE(options_.utilization, 0.0);
  MIMDRAID_CHECK_LT(options_.utilization, 1.0);
}

void FleetSim::Schedule(double at_hours, EventKind kind, uint32_t slot,
                        uint64_t generation) {
  queue_.push(Event{at_hours, kind, slot, generation, next_seq_++});
}

void FleetSim::ArmSlot(uint32_t slot, double now_hours) {
  const uint64_t gen = slots_[slot].generation;
  Schedule(now_hours + injector_.DrawLifetimeHours(slot),
           EventKind::kDiskFailure, slot, gen);
  if (options_.lifetime.lse_rate_per_hour > 0.0) {
    Schedule(now_hours + injector_.DrawLseGapHours(slot),
             EventKind::kLseArrival, slot, gen);
  }
}

double FleetSim::EffectiveScrubPeriod() const {
  if (options_.scrub == ScrubPolicy::kUtilizationGated) {
    // Foreground load keeps the idle-gated scrubber off the disks a
    // `utilization` fraction of the time; the sweep takes proportionally
    // longer to come around.
    return options_.scrub_period_hours / (1.0 - options_.utilization);
  }
  return options_.scrub_period_hours;
}

void FleetSim::ScheduleNextSweep(double now_hours, uint32_t slot) {
  // Sweeps are array infrastructure, not disk state: they survive disk
  // replacement, so they carry no meaningful generation.
  Schedule(now_hours + EffectiveScrubPeriod(), EventKind::kScrubSweep, slot,
           /*generation=*/0);
}

double FleetSim::DrawRebuildHours() {
  if (options_.rebuild_model == RebuildTimeModel::kExponential) {
    return rebuild_rng_.Exponential(options_.rebuild_hours);
  }
  return options_.rebuild_hours;
}

void FleetSim::SweepSlot(uint32_t slot) {
  result_.lse_scrub_cleared += slots_[slot].outstanding_lses;
  slots_[slot].outstanding_lses = 0;
}

void FleetSim::RenewArray(double now_hours) {
  for (uint32_t i = 0; i < options_.disks; ++i) {
    // The generation bump invalidates every pending disk-bound event of the
    // old array, including in-flight rebuild completions.
    ++slots_[i].generation;
    slots_[i].failed = false;
    slots_[i].outstanding_lses = 0;
    injector_.ReplaceDisk(i);
  }
  failed_count_ = 0;
  for (uint32_t i = 0; i < options_.disks; ++i) {
    ArmSlot(i, now_hours);
  }
}

void FleetSim::OnDiskFailure(const Event& e) {
  Slot& slot = slots_[e.slot];
  if (e.generation != slot.generation || slot.failed) {
    return;
  }
  slot.failed = true;
  // The dead disk's latent errors die with it (its data is now wholly
  // missing, which the redundancy accounting below covers instead).
  slot.outstanding_lses = 0;
  ++failed_count_;
  ++result_.disk_failures;
  if (failed_count_ > options_.fault_tolerance) {
    ++result_.data_loss_events;
    RenewArray(e.at_hours);
    return;
  }
  if (failed_count_ == options_.fault_tolerance) {
    // Critical window: reconstruction must read every survivor end to end,
    // so each survivor carrying unscrubbed LSEs has sectors it cannot
    // deliver — one sector-loss event per afflicted disk. The rebuild's
    // rewrite remaps those sectors, clearing the latent errors.
    for (uint32_t i = 0; i < options_.disks; ++i) {
      if (!slots_[i].failed && slots_[i].outstanding_lses > 0) {
        ++result_.sector_loss_events;
        slots_[i].outstanding_lses = 0;
      }
    }
  }
  // Replacement + rebuild begins immediately (the fleet model assumes the
  // spare pool is replenished; finite-spare dynamics are an engine-level
  // concern, tested against DriveSet directly).
  Schedule(e.at_hours + DrawRebuildHours(), EventKind::kRebuildDone, e.slot,
           slot.generation);
}

void FleetSim::OnRebuildDone(const Event& e) {
  Slot& slot = slots_[e.slot];
  if (e.generation != slot.generation || !slot.failed) {
    return;
  }
  slot.failed = false;
  MIMDRAID_CHECK_GT(failed_count_, 0u);
  --failed_count_;
  ++result_.rebuilds_completed;
  // A fresh disk occupies the slot now: new generation, clean injector
  // state (the slot's RNG stream position is preserved by contract).
  ++slot.generation;
  injector_.ReplaceDisk(e.slot);
  ArmSlot(e.slot, e.at_hours);
}

void FleetSim::OnLseArrival(const Event& e) {
  Slot& slot = slots_[e.slot];
  if (e.generation != slot.generation || slot.failed) {
    return;
  }
  ++result_.lse_arrivals;
  if (failed_count_ == options_.fault_tolerance) {
    // The array is already critical: this sector is needed by the rebuild
    // and has no surviving redundancy — immediate sector loss.
    ++result_.sector_loss_events;
  } else {
    ++slot.outstanding_lses;
  }
  Schedule(e.at_hours + injector_.DrawLseGapHours(e.slot),
           EventKind::kLseArrival, e.slot, slot.generation);
}

void FleetSim::OnScrubSweep(const Event& e) {
  ++result_.scrub_sweeps;
  if (e.slot == kNoSlot) {
    // Fleet-wide sweep: every live disk is covered; down slots are the
    // coverage shortfall, exactly as the engine scrubber reports it.
    uint32_t live = 0;
    for (uint32_t i = 0; i < options_.disks; ++i) {
      if (!slots_[i].failed) {
        ++live;
        SweepSlot(i);
      }
    }
    result_.last_sweep_coverage =
        static_cast<double>(live) / static_cast<double>(options_.disks);
  } else {
    if (!slots_[e.slot].failed) {
      SweepSlot(e.slot);
      result_.last_sweep_coverage = 1.0;
    } else {
      result_.last_sweep_coverage = 0.0;
    }
  }
  ScheduleNextSweep(e.at_hours, e.slot);
}

FleetTrialResult FleetSim::Run() {
  MIMDRAID_CHECK(!ran_);
  ran_ = true;
  for (uint32_t i = 0; i < options_.disks; ++i) {
    ArmSlot(i, 0.0);
  }
  switch (options_.scrub) {
    case ScrubPolicy::kOff:
      break;
    case ScrubPolicy::kFixedPeriod:
    case ScrubPolicy::kUtilizationGated:
      ScheduleNextSweep(0.0, kNoSlot);
      break;
    case ScrubPolicy::kStaggered: {
      // Phase-offset the per-disk sweeps across one period so the fleet's
      // scrub load is flat instead of bursty.
      const double period = EffectiveScrubPeriod();
      for (uint32_t i = 0; i < options_.disks; ++i) {
        const double phase = period * static_cast<double>(i + 1) /
                             static_cast<double>(options_.disks);
        Schedule(phase, EventKind::kScrubSweep, i, /*generation=*/0);
      }
      break;
    }
  }
  while (!queue_.empty() && queue_.top().at_hours <= options_.horizon_hours) {
    // mdl-ok(MDL006): POD event, no closure; the pop would dangle a reference
    const Event e = queue_.top();
    queue_.pop();
    ++result_.events_processed;
    switch (e.kind) {
      case EventKind::kDiskFailure:
        OnDiskFailure(e);
        break;
      case EventKind::kRebuildDone:
        OnRebuildDone(e);
        break;
      case EventKind::kLseArrival:
        OnLseArrival(e);
        break;
      case EventKind::kScrubSweep:
        OnScrubSweep(e);
        break;
    }
  }
  result_.observed_hours = options_.horizon_hours;
  return result_;
}

}  // namespace rel
}  // namespace mimdraid
