// Fleet-lifetime reliability simulator: the MTTDL axis of the capacity /
// performance / reliability trade the paper's arrays sit on.
//
// The microsecond-scale Simulator (src/sim) resolves individual disk
// accesses; simulating years of array life at that resolution is hopeless
// (a single year is ~3.2e13 microseconds). This simulator fast-forwards:
// it models only the *reliability events* of an array's life — whole-disk
// failures drawn from a lifetime hazard, rebuild completions, latent-sector-
// error (LSE) arrivals, and scrub sweeps — on its own event queue keyed in
// double hours. A quiet simulated year costs O(reliability events), not
// O(disk accesses): with failure rates in the 1e-6/hour range, decades of
// fleet time resolve in microseconds of wall clock.
//
// Randomness comes from a private FaultInjector (the same per-slot-stream
// machinery the chaos suite trusts): every lifetime and LSE-gap draw uses
// the slot's own stream, so a trial is bit-reproducible per (seed, slot) and
// independent of event interleaving across slots. Rebuild durations draw
// from a separate dedicated stream.
//
// Loss model. The array tolerates `fault_tolerance` (= m) concurrent
// whole-disk failures:
//   * an (m+1)-th concurrent failure is a whole-array data loss;
//   * while exactly m disks are down (the critical window), rebuilding needs
//     every surviving disk readable end to end, so an outstanding LSE on a
//     survivor — whether it arrived earlier and was never scrubbed, or
//     arrives mid-window — is a sector-loss event.
// Scrubbing earns its keep against the second clause: a sweep clears the
// LSEs of the disks it covers, shrinking the population that can ambush a
// rebuild.
//
// Renewal semantics: after a whole-array loss the array is restored from
// backup — every slot restarts fresh (new lifetime draws, LSEs cleared).
// Loss cycles are therefore i.i.d., and total-hours / total-losses is the
// censoring-aware MLE of the MTTDL (src/stats/estimate.h). In exponential-
// lifetime + exponential-rebuild mode the process is exactly the Markov
// chain behind the closed-form MTTDL (src/rel/hazard.h), which is the
// analytic cross-check.
#ifndef MIMDRAID_SRC_REL_FLEET_SIM_H_
#define MIMDRAID_SRC_REL_FLEET_SIM_H_

#include <cstdint>
#include <queue>
#include <vector>

#include "src/sim/fault_injector.h"
#include "src/util/rng.h"

namespace mimdraid {
namespace rel {

// When the scrubber visits the fleet. Mirrors the engine-level ScrubGating
// policy at lifetime scale: kUtilizationGated stretches the nominal period
// by the fraction of time foreground load keeps the idle-gated scrubber off
// the disks.
enum class ScrubPolicy {
  kOff,               // never scrub; LSEs persist until a rebuild rewrites them
  kFixedPeriod,       // all disks swept together every period
  kStaggered,         // per-disk sweeps, phase-offset by slot across the period
  kUtilizationGated,  // fixed-period, stretched to period / (1 - utilization)
};

// How long a rebuild occupies the critical window. kFixed uses the
// calibrated constant from src/rel/rebuild_calib.h; kExponential is the
// memoryless repair the closed-form MTTDL assumes (cross-check mode only).
enum class RebuildTimeModel { kFixed, kExponential };

struct FleetOptions {
  // Array shape: total disks in the redundancy group and how many concurrent
  // whole-disk failures it survives (mirrored pair: 2/1; n-disk RAID-5: n/1;
  // k+m erasure code: (k+m)/m).
  uint32_t disks = 2;
  uint32_t fault_tolerance = 1;
  // Lifetime hazard + LSE arrival rate (hazard must not be kNone).
  DiskLifetimeOptions lifetime;
  RebuildTimeModel rebuild_model = RebuildTimeModel::kFixed;
  // Mean (kExponential) or exact (kFixed) hours a failed slot takes to
  // return to service.
  double rebuild_hours = 8.0;
  ScrubPolicy scrub = ScrubPolicy::kOff;
  double scrub_period_hours = 336.0;  // two weeks, a common fleet default
  // Fraction of wall time foreground load denies the idle-gated scrubber
  // (kUtilizationGated only); 0 degenerates to kFixedPeriod.
  double utilization = 0.0;
  // Trial length in simulated hours; the trial always runs to the horizon
  // (losses renew the array rather than ending the trial).
  double horizon_hours = 10.0 * 8766.0;
  uint64_t seed = 1;
};

// Everything one trial observed. Counters are exact (not sampled).
struct FleetTrialResult {
  double observed_hours = 0.0;
  uint64_t data_loss_events = 0;    // whole-array losses (renewals)
  uint64_t sector_loss_events = 0;  // LSE caught inside a critical window
  uint64_t disk_failures = 0;
  uint64_t rebuilds_completed = 0;
  uint64_t lse_arrivals = 0;
  uint64_t lse_scrub_cleared = 0;  // LSEs removed by sweeps before they bit
  uint64_t scrub_sweeps = 0;       // sweep events processed
  // Live-disk fraction the most recent sweep covered (1.0 when the whole
  // group was up; < 1 while slots were down; 0 until the first sweep).
  double last_sweep_coverage = 0.0;
  // Total events popped from the queue: the O(reliability events) cost of
  // the trial, pinned by FleetSim.QuietYearCostsOnlyReliabilityEvents.
  uint64_t events_processed = 0;
};

class FleetSim {
 public:
  explicit FleetSim(const FleetOptions& options);

  FleetSim(const FleetSim&) = delete;
  FleetSim& operator=(const FleetSim&) = delete;

  // Runs one trial from a fresh array to the horizon. Call once.
  FleetTrialResult Run();

 private:
  enum class EventKind : uint8_t {
    kDiskFailure = 0,
    kRebuildDone = 1,
    kLseArrival = 2,
    kScrubSweep = 3,
  };

  struct Event {
    double at_hours = 0.0;
    EventKind kind = EventKind::kDiskFailure;
    uint32_t slot = 0;        // disk slot; kNoSlot for fleet-wide sweeps
    uint64_t generation = 0;  // validity token (see Slot::generation)
    uint64_t seq = 0;         // tie-break of last resort: insertion order
  };

  // Min-heap order with a total deterministic tie-break, so simultaneous
  // events resolve identically on every run: (time, kind, slot, seq).
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at_hours != b.at_hours) return a.at_hours > b.at_hours;
      if (a.kind != b.kind) return a.kind > b.kind;
      if (a.slot != b.slot) return a.slot > b.slot;
      return a.seq > b.seq;
    }
  };

  struct Slot {
    bool failed = false;
    uint64_t outstanding_lses = 0;
    // Bumped whenever the slot's disk is replaced (rebuild completion or
    // whole-array renewal); events scheduled against an older disk carry the
    // old generation and are dropped on pop.
    uint64_t generation = 0;
  };

  static constexpr uint32_t kNoSlot = 0xFFFFFFFFu;

  void Schedule(double at_hours, EventKind kind, uint32_t slot,
                uint64_t generation);
  // Arms the slot's next whole-disk failure and LSE arrival from its fresh
  // disk's hazard draws.
  void ArmSlot(uint32_t slot, double now_hours);
  void ScheduleNextSweep(double now_hours, uint32_t slot);
  double EffectiveScrubPeriod() const;
  double DrawRebuildHours();

  void OnDiskFailure(const Event& e);
  void OnRebuildDone(const Event& e);
  void OnLseArrival(const Event& e);
  void OnScrubSweep(const Event& e);
  // Restores the whole array from backup after a loss: every slot fresh.
  void RenewArray(double now_hours);
  // Clears one live slot's outstanding LSEs, crediting the scrubber.
  void SweepSlot(uint32_t slot);

  FleetOptions options_;
  FaultInjector injector_;
  Rng rebuild_rng_;
  std::vector<Slot> slots_;
  uint32_t failed_count_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventAfter> queue_;
  uint64_t next_seq_ = 0;
  FleetTrialResult result_;
  bool ran_ = false;
};

}  // namespace rel
}  // namespace mimdraid

#endif  // MIMDRAID_SRC_REL_FLEET_SIM_H_
