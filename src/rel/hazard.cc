#include "src/rel/hazard.h"

#include <cmath>

#include "src/util/check.h"

namespace mimdraid {
namespace rel {

double WeibullMeanHours(double shape, double scale_hours) {
  MIMDRAID_CHECK_GT(shape, 0.0);
  MIMDRAID_CHECK_GT(scale_hours, 0.0);
  return scale_hours * std::tgamma(1.0 + 1.0 / shape);
}

double ClosedFormMttdlSingleFault(uint32_t n, double mttf_hours,
                                  double mttr_hours) {
  MIMDRAID_CHECK_GE(n, 2u);
  MIMDRAID_CHECK_GT(mttf_hours, 0.0);
  MIMDRAID_CHECK_GT(mttr_hours, 0.0);
  const double lambda = 1.0 / mttf_hours;
  const double mu = 1.0 / mttr_hours;
  const double nd = static_cast<double>(n);
  return ((2.0 * nd - 1.0) * lambda + mu) /
         (nd * (nd - 1.0) * lambda * lambda);
}

}  // namespace rel
}  // namespace mimdraid
