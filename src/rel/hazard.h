// Closed-form reliability math for the fleet simulator's analytic
// cross-checks.
//
// The fleet simulator (fleet_sim.h) is a general event-driven model; these
// helpers provide the special cases with known answers so the simulator can
// be validated against theory:
//
//   * the mean of the Weibull lifetime distribution the hazard draws sample
//     (pins the inverse-CDF transform in FaultInjector::DrawLifetimeHours);
//   * the Markov-chain MTTDL of a single-fault-tolerant array with
//     exponential lifetimes (rate lambda = 1/MTTF) and exponential repair
//     (rate mu = 1/MTTR). For an n-disk group tolerating one failure,
//
//         MTTDL = ((2n - 1) lambda + mu) / (n (n - 1) lambda^2)
//
//     which for the mirrored pair (n = 2) is the textbook
//     (3 lambda + mu) / (2 lambda^2). The fleet simulator run in
//     exponential-lifetime + exponential-rebuild mode realizes exactly this
//     chain, so its Monte Carlo estimate must bracket this value (pinned by
//     FleetSim.ExponentialModeMatchesClosedFormMttdl).
#ifndef MIMDRAID_SRC_REL_HAZARD_H_
#define MIMDRAID_SRC_REL_HAZARD_H_

#include <cstdint>

namespace mimdraid {
namespace rel {

// Mean of a Weibull(shape, scale) lifetime: scale * Gamma(1 + 1/shape).
double WeibullMeanHours(double shape, double scale_hours);

// Exact Markov-chain MTTDL of an n-disk single-fault-tolerant group
// (mirrored pair, RAID-5 group) with exponential lifetimes of mean
// mttf_hours and exponential repair of mean mttr_hours. n >= 2.
double ClosedFormMttdlSingleFault(uint32_t n, double mttf_hours,
                                  double mttr_hours);

}  // namespace rel
}  // namespace mimdraid

#endif  // MIMDRAID_SRC_REL_HAZARD_H_
