#include "src/rel/mttdl.h"

#include <vector>

#include "src/core/sweep_runner.h"
#include "src/util/check.h"

namespace mimdraid {
namespace rel {

MttdlEstimate RunFleetMonteCarlo(const MonteCarloOptions& options) {
  MIMDRAID_CHECK_GT(options.trials, 0u);
  std::vector<FleetTrialResult> trials(options.trials);
  SweepRunner runner(options.jobs);
  for (uint32_t i = 0; i < options.trials; ++i) {
    runner.Submit([&options, &trials, i] {
      FleetOptions fleet = options.fleet;
      fleet.seed = SweepRunner::PointSeed(options.base_seed, i);
      FleetSim sim(fleet);
      trials[i] = sim.Run();
    });
  }
  runner.Wait();

  MttdlEstimate est;
  for (const FleetTrialResult& t : trials) {
    est.totals.observed_hours += t.observed_hours;
    est.totals.data_loss_events += t.data_loss_events;
    est.totals.sector_loss_events += t.sector_loss_events;
    est.totals.disk_failures += t.disk_failures;
    est.totals.rebuilds_completed += t.rebuilds_completed;
    est.totals.lse_arrivals += t.lse_arrivals;
    est.totals.lse_scrub_cleared += t.lse_scrub_cleared;
    est.totals.scrub_sweeps += t.scrub_sweeps;
    est.totals.events_processed += t.events_processed;
    est.totals.last_sweep_coverage = t.last_sweep_coverage;
  }
  est.total_hours = est.totals.observed_hours;
  est.mttdl_hours = ExponentialMeanEstimate(
      est.total_hours, est.totals.data_loss_events, options.confidence);
  est.array_loss_per_year = EventsPerYearEstimate(
      est.total_hours, est.totals.data_loss_events, options.confidence);
  est.sector_loss_per_year = EventsPerYearEstimate(
      est.total_hours, est.totals.sector_loss_events, options.confidence);
  return est;
}

}  // namespace rel
}  // namespace mimdraid
