// Monte Carlo MTTDL estimation over the fleet simulator.
//
// One trial (FleetSim::Run) observes a fixed horizon of simulated array
// life; the harness runs many independent trials — each seeded
// deterministically via SweepRunner::PointSeed(base_seed, trial), so the
// estimate depends only on (base_seed, trials), never on the job count or
// scheduling order — and pools them: total exposure hours and total loss
// events feed the censoring-aware exponential estimators in
// src/stats/estimate.h.
//
// Outputs: MTTDL (mean hours between whole-array losses) with a two-sided
// confidence interval, plus expected-events-per-year rates for both loss
// classes (whole-array and sector loss), the reliability axis the
// bench_reliability frontier quotes next to capacity overhead and
// performance.
#ifndef MIMDRAID_SRC_REL_MTTDL_H_
#define MIMDRAID_SRC_REL_MTTDL_H_

#include <cstddef>
#include <cstdint>

#include "src/rel/fleet_sim.h"
#include "src/stats/estimate.h"

namespace mimdraid {
namespace rel {

struct MonteCarloOptions {
  // Per-trial configuration; the seed field is overwritten per trial with
  // PointSeed(base_seed, trial_index).
  FleetOptions fleet;
  uint32_t trials = 100;
  uint64_t base_seed = 1;
  // Worker threads (0 resolves via SweepRunner::ResolveJobs). Results are
  // identical for every value.
  size_t jobs = 1;
  double confidence = 0.95;
};

struct MttdlEstimate {
  // Pooled exposure across all trials.
  double total_hours = 0.0;
  // Summed per-trial counters (observed_hours is the pooled exposure,
  // last_sweep_coverage the final trial's value).
  FleetTrialResult totals;
  // Mean hours between whole-array losses, with CI (hi may be +inf when no
  // loss was observed).
  IntervalEstimate mttdl_hours;
  // Expected data-loss events per year of array operation, by class.
  IntervalEstimate array_loss_per_year;
  IntervalEstimate sector_loss_per_year;
};

// Runs the trials (in parallel when jobs != 1) and pools the estimate.
MttdlEstimate RunFleetMonteCarlo(const MonteCarloOptions& options);

}  // namespace rel
}  // namespace mimdraid

#endif  // MIMDRAID_SRC_REL_MTTDL_H_
