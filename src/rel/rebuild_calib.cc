#include "src/rel/rebuild_calib.h"

#include <memory>

#include "src/core/mimd_raid.h"
#include "src/util/check.h"

namespace mimdraid {
namespace rel {

namespace {

// Microseconds of simulated time per hour of fleet time.
constexpr double kUsPerHour = 3.6e9;

// The embedded rig: small enough to rebuild in milliseconds of wall clock,
// real enough to exercise the actual row-by-row rebuild path (seeks,
// rotation, the engine's dispatch). Same shape as the conformance rigs.
MimdRaidOptions CalibrationRig(ArrayBackendKind kind, uint64_t seed) {
  MimdRaidOptions options;
  options.backend = kind;
  if (kind == ArrayBackendKind::kMirror) {
    options.aspect.ds = 2;
    options.aspect.dr = 1;
    options.aspect.dm = 2;
  } else {
    // Both parity backends: four columns (RAID-5 3+1; erasure k+m from
    // options.parity_shards, 2+2 at the default).
    options.aspect.ds = 4;
    options.aspect.dr = 1;
    options.aspect.dm = 1;
  }
  options.scheduler = SchedulerKind::kSatf;
  options.dataset_sectors = 2400;
  options.stripe_unit_sectors = 16;
  options.geometry = MakeTestGeometry();
  options.profile = MakeTestSeekProfile();
  options.seed = seed;
  return options;
}

}  // namespace

double RebuildCalibration::HoursForCapacity(uint64_t capacity_sectors) const {
  MIMDRAID_CHECK_GT(measured_sectors, 0u);
  MIMDRAID_CHECK_GT(measured_duration_us, 0.0);
  return measured_duration_us *
         (static_cast<double>(capacity_sectors) /
          static_cast<double>(measured_sectors)) /
         kUsPerHour;
}

RebuildCalibration CalibrateRebuild(ArrayBackendKind kind, uint64_t seed) {
  MimdRaid array(CalibrationRig(kind, seed));
  array.backend().StopScrub();
  MIMDRAID_CHECK(array.backend().FailDisk(SlotId(0)));

  const SimTime start = array.sim().Now();
  bool rebuilt = false;
  IoResult result;
  array.backend().Rebuild(SlotId(0), [&](const IoResult& r) {
    result = r;
    rebuilt = true;
  });
  while (!rebuilt) {
    MIMDRAID_CHECK(array.sim().Step());
  }
  MIMDRAID_CHECK(result.status == IoStatus::kOk);

  RebuildCalibration calib;
  calib.measured_duration_us =
      static_cast<double>((result.completion_us - start).us());
  switch (kind) {
    case ArrayBackendKind::kMirror:
      calib.measured_sectors = array.layout().per_disk_sectors();
      break;
    case ArrayBackendKind::kRaid5:
      calib.measured_sectors =
          static_cast<uint64_t>(array.raid5_layout().num_rows()) *
          array.raid5_layout().stripe_unit_sectors();
      break;
    case ArrayBackendKind::kErasure:
      calib.measured_sectors =
          static_cast<uint64_t>(array.ec_layout().num_rows()) *
          array.ec_layout().stripe_unit_sectors();
      break;
  }
  return calib;
}

}  // namespace rel
}  // namespace mimdraid
