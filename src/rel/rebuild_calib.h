// Rebuild-window calibration: ties the fleet simulator's abstract
// rebuild_hours to what the real array actually does.
//
// The length of the critical window is the single most important input to
// any MTTDL estimate (the closed form is ~ MTTR / (n(n-1) lambda^2 MTTF^-2):
// halve the rebuild and you double the MTTDL). Rather than invent a number,
// this helper runs a short *embedded* simulation through the real stack —
// a small MimdRaid with the requested backend, a failed disk, and the actual
// row-by-row rebuild path over the DriveSet engine — measures the simulated
// microseconds the rebuild took and the sectors it reconstructed, and
// extrapolates linearly to any capacity:
//
//     hours(C) = measured_duration * (C / measured_sectors) / 3.6e9 us/hour
//
// Linear extrapolation is exact for the mechanism being modeled: rebuild is
// a sequential sweep whose cost is proportional to the data moved (the
// per-row constant is what the embedded run measures, including real seek,
// rotation, and scheduling effects). The embedded run is deterministic per
// seed, so calibrated fleet results stay bit-reproducible.
#ifndef MIMDRAID_SRC_REL_REBUILD_CALIB_H_
#define MIMDRAID_SRC_REL_REBUILD_CALIB_H_

#include <cstdint>

#include "src/io/array_backend.h"

namespace mimdraid {
namespace rel {

struct RebuildCalibration {
  // What the embedded run observed: one whole-disk rebuild, idle array.
  double measured_duration_us = 0.0;
  uint64_t measured_sectors = 0;

  // Rebuild hours for a disk holding `capacity_sectors` of affected data,
  // scaled linearly from the measured run.
  double HoursForCapacity(uint64_t capacity_sectors) const;
};

// Runs the embedded fail + rebuild against a small array of the given
// backend kind and measures the result. Deterministic per (kind, seed).
RebuildCalibration CalibrateRebuild(ArrayBackendKind kind, uint64_t seed);

}  // namespace rel
}  // namespace mimdraid

#endif  // MIMDRAID_SRC_REL_REBUILD_CALIB_H_
