#include "src/sched/basic_schedulers.h"

#include <cstdlib>
#include <limits>

#include "src/util/check.h"

namespace mimdraid {
namespace {

uint32_t CylinderOf(const ScheduleContext& ctx, BlockAddr lba) {
  return ctx.layout->ToChs(lba.value()).cylinder;
}

}  // namespace

SchedulerPick FcfsScheduler::Pick(const std::vector<QueuedRequest>& queue,
                                  const ScheduleContext& ctx) {
  (void)ctx;
  MIMDRAID_CHECK(!queue.empty());
  size_t best = 0;
  for (size_t i = 1; i < queue.size(); ++i) {
    if (queue[i].arrival_us < queue[best].arrival_us) {
      best = i;
    }
  }
  return SchedulerPick{best, queue[best].candidate_lbas.front(), 0.0};
}

SchedulerPick SstfScheduler::Pick(const std::vector<QueuedRequest>& queue,
                                  const ScheduleContext& ctx) {
  MIMDRAID_CHECK(!queue.empty());
  MIMDRAID_CHECK(ctx.predictor != nullptr);
  const uint32_t head_cyl = ctx.predictor->Head().cylinder;
  size_t best = 0;
  BlockAddr best_lba = queue[0].candidate_lbas.front();
  uint32_t best_dist = std::numeric_limits<uint32_t>::max();
  for (size_t i = 0; i < queue.size(); ++i) {
    for (BlockAddr lba : queue[i].candidate_lbas) {
      const uint32_t cyl = CylinderOf(ctx, lba);
      const uint32_t dist = cyl > head_cyl ? cyl - head_cyl : head_cyl - cyl;
      if (dist < best_dist) {
        best_dist = dist;
        best = i;
        best_lba = lba;
      }
    }
  }
  return SchedulerPick{best, best_lba, 0.0};
}

size_t LookScheduler::PickIndex(const std::vector<QueuedRequest>& queue,
                                const ScheduleContext& ctx) {
  MIMDRAID_CHECK(!queue.empty());
  // Two passes at most: current direction, then the reverse.
  for (int attempt = 0; attempt < 2; ++attempt) {
    size_t best = queue.size();
    uint32_t best_cyl = 0;
    SimTime best_arrival;
    for (size_t i = 0; i < queue.size(); ++i) {
      const uint32_t cyl = CylinderOf(ctx, queue[i].candidate_lbas.front());
      const bool eligible = direction_ > 0 ? cyl >= current_cylinder_
                                           : cyl <= current_cylinder_;
      if (!eligible) {
        continue;
      }
      const bool closer = direction_ > 0 ? cyl < best_cyl : cyl > best_cyl;
      if (best == queue.size() || closer ||
          (cyl == best_cyl && queue[i].arrival_us < best_arrival)) {
        best = i;
        best_cyl = cyl;
        best_arrival = queue[i].arrival_us;
      }
    }
    if (best != queue.size()) {
      current_cylinder_ = best_cyl;
      return best;
    }
    direction_ = -direction_;
  }
  MIMDRAID_CHECK(false);  // queue non-empty: one direction must have a request
}

SchedulerPick LookScheduler::Pick(const std::vector<QueuedRequest>& queue,
                                  const ScheduleContext& ctx) {
  const size_t i = PickIndex(queue, ctx);
  return SchedulerPick{i, queue[i].candidate_lbas.front(), 0.0};
}

SchedulerPick ClookScheduler::Pick(const std::vector<QueuedRequest>& queue,
                                   const ScheduleContext& ctx) {
  MIMDRAID_CHECK(!queue.empty());
  // Forward sweep; wrap to the smallest outstanding cylinder.
  size_t best = queue.size();
  uint32_t best_cyl = 0;
  size_t wrap_best = 0;
  uint32_t wrap_cyl = std::numeric_limits<uint32_t>::max();
  for (size_t i = 0; i < queue.size(); ++i) {
    const uint32_t cyl = CylinderOf(ctx, queue[i].candidate_lbas.front());
    if (cyl >= current_cylinder_ && (best == queue.size() || cyl < best_cyl)) {
      best = i;
      best_cyl = cyl;
    }
    if (cyl < wrap_cyl) {
      wrap_best = i;
      wrap_cyl = cyl;
    }
  }
  if (best == queue.size()) {
    best = wrap_best;
    best_cyl = wrap_cyl;
  }
  current_cylinder_ = best_cyl;
  return SchedulerPick{best, queue[best].candidate_lbas.front(), 0.0};
}

}  // namespace mimdraid
