// Non-positional baseline schedulers: FCFS, SSTF, LOOK, C-LOOK.
#ifndef MIMDRAID_SRC_SCHED_BASIC_SCHEDULERS_H_
#define MIMDRAID_SRC_SCHED_BASIC_SCHEDULERS_H_

#include "src/sched/scheduler.h"

namespace mimdraid {

// First-come first-served: dispatch in arrival order.
class FcfsScheduler : public Scheduler {
 public:
  SchedulerPick Pick(const std::vector<QueuedRequest>& queue,
                     const ScheduleContext& ctx) override;
  std::string name() const override { return "FCFS"; }
};

// Shortest seek time first: minimize cylinder distance from the current arm
// position; considers all replicas of an entry.
class SstfScheduler : public Scheduler {
 public:
  SchedulerPick Pick(const std::vector<QueuedRequest>& queue,
                     const ScheduleContext& ctx) override;
  std::string name() const override { return "SSTF"; }
};

// Elevator: sweep the arm from one end of the (used) cylinder range to the
// other, servicing requests along the way; reverse when the current direction
// is exhausted.
class LookScheduler : public Scheduler {
 public:
  SchedulerPick Pick(const std::vector<QueuedRequest>& queue,
                     const ScheduleContext& ctx) override;
  std::string name() const override { return "LOOK"; }

 protected:
  // Picks the queue index by the LOOK sweep over primary-candidate cylinders.
  size_t PickIndex(const std::vector<QueuedRequest>& queue,
                   const ScheduleContext& ctx);

 private:
  int direction_ = +1;
  uint32_t current_cylinder_ = 0;
};

// Circular LOOK: sweep in one direction only, wrapping to the lowest
// outstanding cylinder at the end.
class ClookScheduler : public Scheduler {
 public:
  SchedulerPick Pick(const std::vector<QueuedRequest>& queue,
                     const ScheduleContext& ctx) override;
  std::string name() const override { return "CLOOK"; }

 private:
  uint32_t current_cylinder_ = 0;
};

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_SCHED_BASIC_SCHEDULERS_H_
