#include "src/sched/positional_schedulers.h"

#include <limits>

#include "src/obs/trace_collector.h"
#include "src/util/check.h"

namespace mimdraid {
namespace {

struct CandidateCost {
  // Ranking cost: slack-adjusted (a risky rotational wait is charged a full
  // extra rotation).
  double effective_us = 0.0;
  // Raw predicted service time, reported as the dispatch prediction; if the
  // request then misses its rotation, the error surfaces as a miss and feeds
  // the slack loop.
  double predicted_us = 0.0;
};

CandidateCost CostOf(const ScheduleContext& ctx, const QueuedRequest& req,
                     BlockAddr lba) {
  const AccessPlan plan = ctx.predictor->Predict(
      ctx.now, lba, req.sectors, req.op == DiskOp::kWrite);
  return CandidateCost{ctx.predictor->EffectiveServiceUs(plan), plan.total_us};
}

}  // namespace

SchedulerPick SatfScheduler::Pick(const std::vector<QueuedRequest>& queue,
                                  const ScheduleContext& ctx) {
  MIMDRAID_CHECK(!queue.empty());
  MIMDRAID_CHECK(ctx.predictor != nullptr);
  const size_t scan = max_scan_ == 0 ? queue.size()
                                     : std::min(max_scan_, queue.size());
  size_t best = 0;
  CandidateCost best_cost{std::numeric_limits<double>::infinity(), 0.0};
  for (size_t i = 0; i < scan; ++i) {
    // SATF proper is replica-oblivious: it evaluates the primary copy only.
    const CandidateCost cost =
        CostOf(ctx, queue[i], queue[i].candidate_lbas.front());
    if (cost.effective_us < best_cost.effective_us) {
      best_cost = cost;
      best = i;
    }
  }
  if (ctx.collector != nullptr) {
    ctx.collector->OnSchedulerScan(ctx.disk.value(), scan);
  }
  return SchedulerPick{best, queue[best].candidate_lbas.front(),
                       best_cost.predicted_us};
}

SchedulerPick RsatfScheduler::Pick(const std::vector<QueuedRequest>& queue,
                                   const ScheduleContext& ctx) {
  MIMDRAID_CHECK(!queue.empty());
  MIMDRAID_CHECK(ctx.predictor != nullptr);
  const size_t scan = max_scan_ == 0 ? queue.size()
                                     : std::min(max_scan_, queue.size());
  size_t best = 0;
  BlockAddr best_lba = queue[0].candidate_lbas.front();
  CandidateCost best_cost{std::numeric_limits<double>::infinity(), 0.0};
  uint64_t examined = 0;
  for (size_t i = 0; i < scan; ++i) {
    for (BlockAddr lba : queue[i].candidate_lbas) {
      const CandidateCost cost = CostOf(ctx, queue[i], lba);
      ++examined;
      if (cost.effective_us < best_cost.effective_us) {
        best_cost = cost;
        best = i;
        best_lba = lba;
      }
    }
  }
  if (ctx.collector != nullptr) {
    ctx.collector->OnSchedulerScan(ctx.disk.value(), examined);
  }
  return SchedulerPick{best, best_lba, best_cost.predicted_us};
}

SchedulerPick AsatfScheduler::Pick(const std::vector<QueuedRequest>& queue,
                                   const ScheduleContext& ctx) {
  MIMDRAID_CHECK(!queue.empty());
  MIMDRAID_CHECK(ctx.predictor != nullptr);
  const size_t scan = max_scan_ == 0 ? queue.size()
                                     : std::min(max_scan_, queue.size());
  size_t best = 0;
  BlockAddr best_lba = queue[0].candidate_lbas.front();
  double best_aged = std::numeric_limits<double>::infinity();
  CandidateCost best_cost{0.0, 0.0};
  uint64_t examined = 0;
  for (size_t i = 0; i < scan; ++i) {
    const double age_credit =
        age_weight_ *
        static_cast<double>((ctx.now - queue[i].arrival_us).us());
    for (BlockAddr lba : queue[i].candidate_lbas) {
      const CandidateCost cost = CostOf(ctx, queue[i], lba);
      ++examined;
      const double aged = cost.effective_us - age_credit;
      if (aged < best_aged) {
        best_aged = aged;
        best_cost = cost;
        best = i;
        best_lba = lba;
      }
    }
  }
  if (ctx.collector != nullptr) {
    ctx.collector->OnSchedulerScan(ctx.disk.value(), examined);
  }
  return SchedulerPick{best, best_lba, best_cost.predicted_us};
}

SchedulerPick RlookScheduler::Pick(const std::vector<QueuedRequest>& queue,
                                   const ScheduleContext& ctx) {
  MIMDRAID_CHECK(ctx.predictor != nullptr);
  // LOOK chooses the request (all replicas of an entry share a cylinder);
  // the rotationally closest replica is then taken.
  const size_t i = PickIndex(queue, ctx);
  BlockAddr best_lba = queue[i].candidate_lbas.front();
  CandidateCost best_cost{std::numeric_limits<double>::infinity(), 0.0};
  for (BlockAddr lba : queue[i].candidate_lbas) {
    const CandidateCost cost = CostOf(ctx, queue[i], lba);
    if (cost.effective_us < best_cost.effective_us) {
      best_cost = cost;
      best_lba = lba;
    }
  }
  if (ctx.collector != nullptr) {
    ctx.collector->OnSchedulerScan(ctx.disk.value(),
                                  queue[i].candidate_lbas.size());
  }
  return SchedulerPick{i, best_lba, best_cost.predicted_us};
}

}  // namespace mimdraid
