#include "src/sched/positional_schedulers.h"

#include <limits>

#include "src/obs/trace_collector.h"
#include "src/util/check.h"

namespace mimdraid {
namespace {

struct CandidateCost {
  // Ranking cost: slack-adjusted (a risky rotational wait is charged a full
  // extra rotation).
  double effective_us = 0.0;
  // Raw predicted service time, reported as the dispatch prediction; if the
  // request then misses its rotation, the error surfaces as a miss and feeds
  // the slack loop.
  double predicted_us = 0.0;
};

CandidateCost CostOf(const ScheduleContext& ctx, const QueuedRequest& req,
                     BlockAddr lba) {
  const AccessPlan plan = ctx.predictor->Predict(
      ctx.now, lba, req.sectors, req.op == DiskOp::kWrite);
  return CandidateCost{ctx.predictor->EffectiveServiceUs(plan), plan.total_us};
}

}  // namespace

// Pruning in the Pick loops below must be *exact*: the figure goldens lock
// the chosen requests byte for byte, so a candidate may be skipped only when
// it provably cannot change the outcome. All comparisons against the running
// best use strict `<` ("first strictly smaller wins"), so a candidate whose
// cost lower bound exceeds the current best can neither win nor retie —
// skipping its full prediction leaves the scan's result bit-identical. The
// scan order itself is never reordered.

SchedulerPick SatfScheduler::Pick(const std::vector<QueuedRequest>& queue,
                                  const ScheduleContext& ctx) {
  MIMDRAID_CHECK(!queue.empty());
  MIMDRAID_CHECK(ctx.predictor != nullptr);
  const size_t scan = max_scan_ == 0 ? queue.size()
                                     : std::min(max_scan_, queue.size());
  size_t best = 0;
  CandidateCost best_cost{std::numeric_limits<double>::infinity(), 0.0};
  uint64_t examined = 0;
  for (size_t i = 0; i < scan; ++i) {
    // SATF proper is replica-oblivious: it evaluates the primary copy only.
    const QueuedRequest& req = queue[i];
    const BlockAddr lba = req.candidate_lbas.front();
    const bool is_write = req.op == DiskOp::kWrite;
    if (ctx.predictor->AccessBoundUs(ctx.now, lba, req.sectors, is_write) >
        best_cost.effective_us) {
      continue;
    }
    const CandidateCost cost = CostOf(ctx, req, lba);
    ++examined;
    if (cost.effective_us < best_cost.effective_us) {
      best_cost = cost;
      best = i;
    }
  }
  if (ctx.collector != nullptr) {
    ctx.collector->OnSchedulerScan(ctx.disk.value(), examined);
  }
  return SchedulerPick{best, queue[best].candidate_lbas.front(),
                       best_cost.predicted_us};
}

SchedulerPick RsatfScheduler::Pick(const std::vector<QueuedRequest>& queue,
                                   const ScheduleContext& ctx) {
  MIMDRAID_CHECK(!queue.empty());
  MIMDRAID_CHECK(ctx.predictor != nullptr);
  const size_t scan = max_scan_ == 0 ? queue.size()
                                     : std::min(max_scan_, queue.size());
  size_t best = 0;
  BlockAddr best_lba = queue[0].candidate_lbas.front();
  CandidateCost best_cost{std::numeric_limits<double>::infinity(), 0.0};
  uint64_t examined = 0;
  for (size_t i = 0; i < scan; ++i) {
    const QueuedRequest& req = queue[i];
    const bool is_write = req.op == DiskOp::kWrite;
    // The bound must be evaluated per replica, not once per entry: replicas
    // normally share a cylinder, but a latent-bad-sector remap can move one
    // to spare space on a different cylinder, so no single seek bound covers
    // the candidate list.
    for (BlockAddr lba : req.candidate_lbas) {
      if (ctx.predictor->AccessBoundUs(ctx.now, lba, req.sectors, is_write) >
          best_cost.effective_us) {
        continue;
      }
      const CandidateCost cost = CostOf(ctx, req, lba);
      ++examined;
      if (cost.effective_us < best_cost.effective_us) {
        best_cost = cost;
        best = i;
        best_lba = lba;
      }
    }
  }
  if (ctx.collector != nullptr) {
    ctx.collector->OnSchedulerScan(ctx.disk.value(), examined);
  }
  return SchedulerPick{best, best_lba, best_cost.predicted_us};
}

SchedulerPick AsatfScheduler::Pick(const std::vector<QueuedRequest>& queue,
                                   const ScheduleContext& ctx) {
  MIMDRAID_CHECK(!queue.empty());
  MIMDRAID_CHECK(ctx.predictor != nullptr);
  const size_t scan = max_scan_ == 0 ? queue.size()
                                     : std::min(max_scan_, queue.size());
  size_t best = 0;
  BlockAddr best_lba = queue[0].candidate_lbas.front();
  double best_aged = std::numeric_limits<double>::infinity();
  CandidateCost best_cost{0.0, 0.0};
  uint64_t examined = 0;
  for (size_t i = 0; i < scan; ++i) {
    const QueuedRequest& req = queue[i];
    const bool is_write = req.op == DiskOp::kWrite;
    const double age_credit =
        age_weight_ * static_cast<double>((ctx.now - req.arrival_us).us());
    // Aged-cost analogue of the RSATF prune: aged >= bound - age_credit, so
    // a bound beaten by best_aged even after the credit cannot win the scan.
    for (BlockAddr lba : req.candidate_lbas) {
      if (ctx.predictor->AccessBoundUs(ctx.now, lba, req.sectors, is_write) -
              age_credit >
          best_aged) {
        continue;
      }
      const CandidateCost cost = CostOf(ctx, req, lba);
      ++examined;
      const double aged = cost.effective_us - age_credit;
      if (aged < best_aged) {
        best_aged = aged;
        best_cost = cost;
        best = i;
        best_lba = lba;
      }
    }
  }
  if (ctx.collector != nullptr) {
    ctx.collector->OnSchedulerScan(ctx.disk.value(), examined);
  }
  return SchedulerPick{best, best_lba, best_cost.predicted_us};
}

SchedulerPick RlookScheduler::Pick(const std::vector<QueuedRequest>& queue,
                                   const ScheduleContext& ctx) {
  MIMDRAID_CHECK(ctx.predictor != nullptr);
  // LOOK chooses the request (all replicas of an entry share a cylinder);
  // the rotationally closest replica is then taken.
  const size_t i = PickIndex(queue, ctx);
  const QueuedRequest& req = queue[i];
  const bool is_write = req.op == DiskOp::kWrite;
  BlockAddr best_lba = req.candidate_lbas.front();
  CandidateCost best_cost{std::numeric_limits<double>::infinity(), 0.0};
  uint64_t examined = 0;
  for (BlockAddr lba : req.candidate_lbas) {
    if (ctx.predictor->AccessBoundUs(ctx.now, lba, req.sectors, is_write) >
        best_cost.effective_us) {
      continue;
    }
    const CandidateCost cost = CostOf(ctx, req, lba);
    ++examined;
    if (cost.effective_us < best_cost.effective_us) {
      best_cost = cost;
      best_lba = lba;
    }
  }
  if (ctx.collector != nullptr) {
    ctx.collector->OnSchedulerScan(ctx.disk.value(), examined);
  }
  return SchedulerPick{i, best_lba, best_cost.predicted_us};
}

}  // namespace mimdraid
