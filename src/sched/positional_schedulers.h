// Rotational-position-sensitive schedulers: SATF, RLOOK, RSATF.
//
// SATF (Shortest Access Time First, Jacobson & Wilkes / Seltzer et al.) picks
// the request with the smallest predicted positioning time (seek + rotation).
// The paper's extensions consider rotational replicas: RLOOK keeps the LOOK
// sweep in the seek dimension but picks the rotationally closest replica of
// the chosen request; RSATF minimizes predicted access time over every
// replica of every queued request (Section 2.4).
//
// All three apply the predictor's slack: a candidate whose predicted
// rotational wait is below the slack is charged a full extra rotation, which
// is what keeps the on-target rate above 99% despite unobservable request
// overhead (Section 3.2).
#ifndef MIMDRAID_SRC_SCHED_POSITIONAL_SCHEDULERS_H_
#define MIMDRAID_SRC_SCHED_POSITIONAL_SCHEDULERS_H_

#include "src/sched/basic_schedulers.h"
#include "src/sched/scheduler.h"

namespace mimdraid {

class SatfScheduler : public Scheduler {
 public:
  explicit SatfScheduler(size_t max_scan = 0) : max_scan_(max_scan) {}

  SchedulerPick Pick(const std::vector<QueuedRequest>& queue,
                     const ScheduleContext& ctx) override;
  std::string name() const override { return "SATF"; }

 private:
  size_t max_scan_;
};

class RsatfScheduler : public Scheduler {
 public:
  explicit RsatfScheduler(size_t max_scan = 0) : max_scan_(max_scan) {}

  SchedulerPick Pick(const std::vector<QueuedRequest>& queue,
                     const ScheduleContext& ctx) override;
  std::string name() const override { return "RSATF"; }

 private:
  size_t max_scan_;
};

// Aged SATF: SATF with a starvation control. A request's cost is its
// predicted (slack-adjusted) access time minus an age credit that grows while
// it waits, so a far request cannot be bypassed forever by a stream of
// nearby arrivals — SATF's classic weakness (noted by Jacobson & Wilkes and
// Seltzer et al.). age_weight is the microseconds of predicted access time
// one microsecond of waiting is worth; 0 degenerates to plain SATF.
// Replica-aware like RSATF (evaluates every candidate).
class AsatfScheduler : public Scheduler {
 public:
  explicit AsatfScheduler(size_t max_scan = 0, double age_weight = 0.1)
      : max_scan_(max_scan), age_weight_(age_weight) {}

  SchedulerPick Pick(const std::vector<QueuedRequest>& queue,
                     const ScheduleContext& ctx) override;
  std::string name() const override { return "ASATF"; }

 private:
  size_t max_scan_;
  double age_weight_;
};

class RlookScheduler : public LookScheduler {
 public:
  SchedulerPick Pick(const std::vector<QueuedRequest>& queue,
                     const ScheduleContext& ctx) override;
  std::string name() const override { return "RLOOK"; }
};

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_SCHED_POSITIONAL_SCHEDULERS_H_
