// A request queued at one physical drive.
//
// The Disk Configuration Layer translates a logical I/O into per-drive
// entries. On an SR-Array disk a read carries the LBAs of all Dr rotational
// replicas as candidates; the replica-aware schedulers (RLOOK, RSATF) choose
// among them at dispatch time. Plain schedulers use the first candidate. By
// construction all candidates of one entry live on the same cylinder (the
// replicas of a block share a cylinder, on different tracks) — but note the
// invariant is not absolute: a latent-bad-sector remap relocates a replica
// to zone spare space, possibly on another cylinder, so per-entry shortcuts
// keyed off one candidate's cylinder are unsound (schedulers bound costs per
// replica for exactly this reason).
#ifndef MIMDRAID_SRC_SCHED_QUEUED_REQUEST_H_
#define MIMDRAID_SRC_SCHED_QUEUED_REQUEST_H_

#include <cstdint>
#include <vector>

#include "src/disk/sim_disk.h"
#include "src/util/time.h"

namespace mimdraid {

struct QueuedRequest {
  uint64_t id = 0;
  DiskOp op = DiskOp::kRead;
  uint32_t sectors = 0;
  std::vector<BlockAddr> candidate_lbas;
  SimTime arrival_us;
  // Background replica propagation (serviced only when the foreground queue
  // is empty; see Section 3.4).
  bool delayed = false;
  // Calibration-maintenance access (periodic reference-sector read).
  bool maintenance = false;
  // Array-layer correlation handle (fragment key; 0 for delayed/maintenance).
  uint64_t tag = 0;
  // Recovery attempts already spent on the work this entry carries; a retry
  // mints a fresh entry (fresh id, so queue conservation holds) with
  // attempts + 1.
  uint32_t attempts = 0;
};

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_SCHED_QUEUED_REQUEST_H_
