#include "src/sched/scheduler.h"

#include "src/sched/basic_schedulers.h"
#include "src/sched/positional_schedulers.h"
#include "src/util/check.h"

namespace mimdraid {

std::unique_ptr<Scheduler> MakeScheduler(SchedulerKind kind, size_t max_scan) {
  switch (kind) {
    case SchedulerKind::kFcfs:
      return std::make_unique<FcfsScheduler>();
    case SchedulerKind::kSstf:
      return std::make_unique<SstfScheduler>();
    case SchedulerKind::kLook:
      return std::make_unique<LookScheduler>();
    case SchedulerKind::kClook:
      return std::make_unique<ClookScheduler>();
    case SchedulerKind::kSatf:
      return std::make_unique<SatfScheduler>(max_scan);
    case SchedulerKind::kAsatf:
      return std::make_unique<AsatfScheduler>(max_scan);
    case SchedulerKind::kRlook:
      return std::make_unique<RlookScheduler>();
    case SchedulerKind::kRsatf:
      return std::make_unique<RsatfScheduler>(max_scan);
  }
  MIMDRAID_CHECK(false);
}

const char* SchedulerKindName(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kFcfs:
      return "FCFS";
    case SchedulerKind::kSstf:
      return "SSTF";
    case SchedulerKind::kLook:
      return "LOOK";
    case SchedulerKind::kClook:
      return "CLOOK";
    case SchedulerKind::kSatf:
      return "SATF";
    case SchedulerKind::kAsatf:
      return "ASATF";
    case SchedulerKind::kRlook:
      return "RLOOK";
    case SchedulerKind::kRsatf:
      return "RSATF";
  }
  MIMDRAID_CHECK(false);
}

}  // namespace mimdraid
