#include "src/sched/scheduler.h"

#include <utility>

#include "src/sched/basic_schedulers.h"
#include "src/sched/positional_schedulers.h"
#include "src/sim/auditor.h"
#include "src/util/check.h"

namespace mimdraid {

namespace {

// Decorator that reports every pick to the invariant auditor. Scan state
// lives in the wrapped scheduler, so wrapping changes no scheduling decision.
class AuditedScheduler final : public Scheduler {
 public:
  AuditedScheduler(std::unique_ptr<Scheduler> inner, InvariantAuditor* auditor)
      : inner_(std::move(inner)), auditor_(auditor) {
    MIMDRAID_CHECK(inner_ != nullptr);
    MIMDRAID_CHECK(auditor_ != nullptr);
  }

  SchedulerPick Pick(const std::vector<QueuedRequest>& queue,
                     const ScheduleContext& ctx) override {
    const SchedulerPick pick = inner_->Pick(queue, ctx);
    const bool index_ok = pick.queue_index < queue.size();
    auditor_->OnSchedulerPick(
        inner_->name(), queue.size(), pick.queue_index, pick.lba,
        index_ok ? queue[pick.queue_index].candidate_lbas
                 : std::vector<BlockAddr>{},
        pick.predicted_service_us);
    return pick;
  }

  std::string name() const override { return inner_->name(); }

 private:
  std::unique_ptr<Scheduler> inner_;
  InvariantAuditor* auditor_;
};

}  // namespace

std::unique_ptr<Scheduler> MakeScheduler(SchedulerKind kind, size_t max_scan) {
  switch (kind) {
    case SchedulerKind::kFcfs:
      return std::make_unique<FcfsScheduler>();
    case SchedulerKind::kSstf:
      return std::make_unique<SstfScheduler>();
    case SchedulerKind::kLook:
      return std::make_unique<LookScheduler>();
    case SchedulerKind::kClook:
      return std::make_unique<ClookScheduler>();
    case SchedulerKind::kSatf:
      return std::make_unique<SatfScheduler>(max_scan);
    case SchedulerKind::kAsatf:
      return std::make_unique<AsatfScheduler>(max_scan);
    case SchedulerKind::kRlook:
      return std::make_unique<RlookScheduler>();
    case SchedulerKind::kRsatf:
      return std::make_unique<RsatfScheduler>(max_scan);
  }
  MIMDRAID_CHECK(false);
}

std::unique_ptr<Scheduler> MakeAuditedScheduler(
    std::unique_ptr<Scheduler> inner, InvariantAuditor* auditor) {
  return std::make_unique<AuditedScheduler>(std::move(inner), auditor);
}

const char* SchedulerKindName(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kFcfs:
      return "FCFS";
    case SchedulerKind::kSstf:
      return "SSTF";
    case SchedulerKind::kLook:
      return "LOOK";
    case SchedulerKind::kClook:
      return "CLOOK";
    case SchedulerKind::kSatf:
      return "SATF";
    case SchedulerKind::kAsatf:
      return "ASATF";
    case SchedulerKind::kRlook:
      return "RLOOK";
    case SchedulerKind::kRsatf:
      return "RSATF";
  }
  MIMDRAID_CHECK(false);
}

}  // namespace mimdraid
