// Local disk scheduler interface (the prototype's Scheduling Layer).
//
// A scheduler ranks the entries of one drive's queue and picks the next
// request to dispatch, choosing a concrete replica for multi-candidate
// entries. Position-sensitive policies consult the drive's AccessPredictor.
#ifndef MIMDRAID_SRC_SCHED_SCHEDULER_H_
#define MIMDRAID_SRC_SCHED_SCHEDULER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/disk/access_predictor.h"
#include "src/disk/layout.h"
#include "src/sched/queued_request.h"

namespace mimdraid {

class InvariantAuditor;
class TraceCollector;

struct ScheduleContext {
  SimTime now;
  AccessPredictor* predictor = nullptr;  // required by SATF-class policies
  const DiskLayout* layout = nullptr;
  // Optional observability: when set, SATF-class policies report how many
  // candidates they examined per pick (cost of a scheduling decision).
  TraceCollector* collector = nullptr;
  SlotId disk;  // slot label for collector reports
};

struct SchedulerPick {
  size_t queue_index = 0;
  BlockAddr lba;                      // chosen replica
  double predicted_service_us = 0.0;  // 0 for non-positional policies
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  // Picks the next request from `queue` (non-empty). Implementations may keep
  // scan state (LOOK direction); they must be told about the pick they made,
  // which happens implicitly: returning a pick commits it.
  virtual SchedulerPick Pick(const std::vector<QueuedRequest>& queue,
                             const ScheduleContext& ctx) = 0;

  virtual std::string name() const = 0;
};

enum class SchedulerKind {
  kFcfs,
  kSstf,
  kLook,
  kClook,
  kSatf,
  kAsatf,
  kRlook,
  kRsatf,
};

// `max_scan` caps how many queue entries SATF-class policies examine per
// dispatch (0 = unlimited); LOOK-class policies always scan the whole queue
// (a cylinder comparison is cheap).
std::unique_ptr<Scheduler> MakeScheduler(SchedulerKind kind,
                                         size_t max_scan = 0);

// Wraps `inner` so every pick is validated by `auditor` (index in range,
// chosen LBA among the picked entry's candidates, non-negative prediction).
// Used by the runtime invariant-audit layer; `auditor` must not be null and
// must outlive the returned scheduler.
std::unique_ptr<Scheduler> MakeAuditedScheduler(std::unique_ptr<Scheduler> inner,
                                                InvariantAuditor* auditor);

const char* SchedulerKindName(SchedulerKind kind);

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_SCHED_SCHEDULER_H_
