#include "src/sim/auditor.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <unordered_set>

namespace mimdraid {

namespace {

// The disk rounds its integer completion time to the nearest microsecond of
// the real-valued service sum, so the decomposition may disagree with the
// timestamps by up to half a microsecond (plus accumulated double rounding).
constexpr double kDecompositionToleranceUs = 1.0;

}  // namespace

// Counts one check; on failure builds the message lazily (the hooks sit on
// the simulator's hot path, so the passing case must not allocate).
#define AUDIT_EXPECT(cond, streamed)             \
  do {                                           \
    ++checks_run_;                               \
    if (!(cond)) [[unlikely]] {                  \
      std::ostringstream audit_os;               \
      audit_os << streamed; /* NOLINT */         \
      Fail(audit_os.str());                      \
    }                                            \
  } while (0)

void InvariantAuditor::Fail(const std::string& message) {
  ++violations_;
  last_violation_ = message;
  if (handler_) {
    handler_(message);
    return;
  }
  std::fprintf(stderr, "AUDIT failed: %s\n", message.c_str());
  std::abort();
}

void InvariantAuditor::OnEventScheduled(SimTime now, SimTime at) {
  AUDIT_EXPECT(at >= now,
               "event-time monotonicity: scheduled at " << at
                   << " which is before now " << now);
}

void InvariantAuditor::OnEventFired(SimTime now_before, SimTime at) {
  AUDIT_EXPECT(at >= now_before,
               "event-time monotonicity: event fires at " << at
                   << " but the clock already reads " << now_before);
}

void InvariantAuditor::OnDiskOpComplete(const DiskOpAudit& op) {
  AUDIT_EXPECT(op.completion_us >= op.start_us,
               "disk " << op.disk << ": completion " << op.completion_us
                       << " precedes start " << op.start_us);
  AUDIT_EXPECT(op.sectors > 0,
               "disk " << op.disk << ": zero-sector operation at lba "
                       << op.lba);

  // Head-position consistency: the arm must park on a real track.
  AUDIT_EXPECT(op.head_cylinder < op.num_cylinders,
               "disk " << op.disk << ": head cylinder " << op.head_cylinder
                       << " out of range (num_cylinders " << op.num_cylinders
                       << ")");
  AUDIT_EXPECT(op.head_index < op.num_heads,
               "disk " << op.disk << ": head index " << op.head_index
                       << " out of range (num_heads " << op.num_heads << ")");

  // Service-time decomposition must account for the whole service time.
  const double service = static_cast<double>((op.completion_us - op.start_us).us());
  const double sum =
      op.overhead_us + op.seek_us + op.rotational_us + op.transfer_us;
  AUDIT_EXPECT(std::abs(service - sum) <= kDecompositionToleranceUs,
               "disk " << op.disk << " [lba " << op.lba << " +" << op.sectors
                       << "]: service decomposition drift (timestamps say "
                       << service << "us vs components " << sum << "us)");
  AUDIT_EXPECT(op.overhead_us >= 0.0 && op.seek_us >= 0.0 &&
                   op.rotational_us >= 0.0 && op.transfer_us >= 0.0,
               "disk " << op.disk << ": negative service component (overhead "
                       << op.overhead_us << ", seek " << op.seek_us
                       << ", rotational " << op.rotational_us << ", transfer "
                       << op.transfer_us << ")");

  // Spindle-phase consistency: the true phase and rotation period are
  // physical constants of the drive; any drift means simulator state was
  // corrupted (e.g. a calibration estimate written through to ground truth).
  DiskConstants& c = disk_constants_[op.disk];
  if (!c.seen) {
    c.seen = true;
    c.spindle_phase_us = op.spindle_phase_us;
    c.rotation_us = op.rotation_us;
    c.last_completion_us = op.completion_us;
    AUDIT_EXPECT(op.rotation_us > 0.0,
                 "disk " << op.disk << ": non-positive rotation period "
                         << op.rotation_us);
    return;
  }
  AUDIT_EXPECT(op.spindle_phase_us == c.spindle_phase_us,
               "disk " << op.disk << ": true spindle phase drifted ("
                       << op.spindle_phase_us << " vs recorded "
                       << c.spindle_phase_us << ")");
  AUDIT_EXPECT(op.rotation_us == c.rotation_us,
               "disk " << op.disk << ": rotation period drifted ("
                       << op.rotation_us << " vs recorded " << c.rotation_us
                       << ")");
  // One spindle services one request at a time: this op must have started at
  // or after the previous completion.
  AUDIT_EXPECT(op.start_us >= c.last_completion_us,
               "disk " << op.disk << ": overlapping service (op starts at "
                       << op.start_us << " before previous completion "
                       << c.last_completion_us << ")");
  c.last_completion_us = op.completion_us;
}

void InvariantAuditor::OnSchedulerPick(const std::string& scheduler_name,
                                       size_t queue_size, size_t picked_index,
                                       BlockAddr chosen_lba,
                                       const std::vector<BlockAddr>& candidates,
                                       double predicted_service_us) {
  AUDIT_EXPECT(queue_size > 0, scheduler_name << ": picked from an empty "
                                                 "queue");
  AUDIT_EXPECT(picked_index < queue_size,
               scheduler_name << ": pick index " << picked_index
                              << " out of range (queue size " << queue_size
                              << ")");
  bool found = false;
  for (BlockAddr cand : candidates) {
    if (cand == chosen_lba) {
      found = true;
      break;
    }
  }
  AUDIT_EXPECT(found, scheduler_name
                          << ": chosen lba " << chosen_lba
                          << " is not a candidate of the picked entry ("
                          << candidates.size() << " candidates)");
  AUDIT_EXPECT(predicted_service_us >= 0.0,
               scheduler_name << ": negative predicted service "
                              << predicted_service_us);
}

void InvariantAuditor::OnEntryQueued(uint32_t disk, uint64_t entry_id,
                                     bool delayed) {
  const bool inserted =
      entries_
          .try_emplace(entry_id, EntryInfo{EntryState::kQueued, disk, delayed})
          .second;
  AUDIT_EXPECT(inserted, "queue conservation: entry "
                             << entry_id << " queued twice (disk " << disk
                             << ")");
}

void InvariantAuditor::OnEntryDispatched(uint32_t disk, uint64_t entry_id) {
  auto it = entries_.find(entry_id);
  AUDIT_EXPECT(it != entries_.end(),
               "queue conservation: dispatch of unknown entry "
                   << entry_id << " on disk " << disk);
  if (it == entries_.end()) {
    return;
  }
  AUDIT_EXPECT(it->second.state == EntryState::kQueued,
               "queue conservation: entry " << entry_id
                                            << " dispatched while not queued");
  AUDIT_EXPECT(it->second.disk == disk,
               "queue conservation: entry "
                   << entry_id << " dispatched on disk " << disk
                   << " but was queued on disk " << it->second.disk);
  it->second.state = EntryState::kDispatched;
  ++dispatched_count_;
}

void InvariantAuditor::OnEntryCancelled(uint32_t disk, uint64_t entry_id) {
  auto it = entries_.find(entry_id);
  AUDIT_EXPECT(it != entries_.end(),
               "queue conservation: cancellation of unknown entry "
                   << entry_id << " on disk " << disk);
  if (it == entries_.end()) {
    return;
  }
  // Only still-queued entries can be cancelled; a dispatched request is
  // owned by the drive until its completion callback runs.
  AUDIT_EXPECT(it->second.state == EntryState::kQueued,
               "queue conservation: entry " << entry_id
                                            << " cancelled after dispatch");
  entries_.erase(it);
}

void InvariantAuditor::OnEntryCompleted(uint32_t disk, uint64_t entry_id) {
  auto it = entries_.find(entry_id);
  AUDIT_EXPECT(it != entries_.end(),
               "queue conservation: completion of unknown (lost or "
               "duplicated) entry "
                   << entry_id << " on disk " << disk);
  if (it == entries_.end()) {
    return;
  }
  AUDIT_EXPECT(it->second.state == EntryState::kDispatched,
               "queue conservation: entry "
                   << entry_id << " completed without being dispatched");
  if (it->second.state == EntryState::kDispatched) {
    --dispatched_count_;
  }
  entries_.erase(it);
}

void InvariantAuditor::OnArrayMap(uint64_t lba, uint32_t sectors, int dm,
                                  int dr, uint32_t num_disks,
                                  uint64_t per_disk_physical_sectors,
                                  const std::vector<AuditFragment>& fragments) {
  const size_t replicas_per_block =
      static_cast<size_t>(dm) * static_cast<size_t>(dr);

  AUDIT_EXPECT(!fragments.empty(), "replica map [lba "
                                       << lba << " +" << sectors
                                       << "]: empty fragment list");

  // Fragments must tile [lba, lba + sectors) exactly, in order.
  uint64_t expected_lba = lba;
  for (const AuditFragment& frag : fragments) {
    AUDIT_EXPECT(frag.sectors > 0, "replica map [lba "
                                       << lba << " +" << sectors
                                       << "]: zero-sector fragment at logical "
                                       << frag.logical_lba);
    AUDIT_EXPECT(frag.logical_lba == expected_lba,
                 "replica map [lba " << lba << " +" << sectors
                                     << "]: fragment gap/overlap (starts at "
                                     << frag.logical_lba << ", expected "
                                     << expected_lba << ")");
    expected_lba = frag.logical_lba + frag.sectors;

    AUDIT_EXPECT(frag.replicas.size() == replicas_per_block,
                 "replica map [lba " << lba << " +" << sectors
                                     << "]: fragment carries "
                                     << frag.replicas.size()
                                     << " replicas, expected Dm*Dr = "
                                     << replicas_per_block);
    if (frag.replicas.size() != replicas_per_block) {
      continue;
    }

    std::unordered_set<uint32_t> mirror_disks;
    std::unordered_set<uint64_t> physical;
    for (int m = 0; m < dm; ++m) {
      const uint32_t mirror_disk =
          frag.replicas[static_cast<size_t>(m) * static_cast<size_t>(dr)].disk;
      // All Dm mirror copies must live on distinct disks; losing one disk
      // must never lose two copies.
      AUDIT_EXPECT(mirror_disks.insert(mirror_disk).second,
                   "replica map [lba " << lba << " +" << sectors
                                       << "]: mirror copies share disk "
                                       << mirror_disk);
      for (int r = 0; r < dr; ++r) {
        const AuditReplicaRef& loc =
            frag.replicas[static_cast<size_t>(m) * static_cast<size_t>(dr) +
                          static_cast<size_t>(r)];
        AUDIT_EXPECT(loc.disk < num_disks,
                     "replica map [lba " << lba << " +" << sectors
                                         << "]: replica disk " << loc.disk
                                         << " out of range (num_disks "
                                         << num_disks << ")");
        // Rotational replicas of one mirror copy stay on that copy's disk.
        AUDIT_EXPECT(loc.disk == mirror_disk,
                     "replica map [lba "
                         << lba << " +" << sectors
                         << "]: rotational replica wandered to disk "
                         << loc.disk << " (mirror copy lives on disk "
                         << mirror_disk << ")");
        AUDIT_EXPECT(loc.lba + frag.sectors <= per_disk_physical_sectors,
                     "replica map [lba "
                         << lba << " +" << sectors << "]: replica [disk "
                         << loc.disk << " lba " << loc.lba << " +"
                         << frag.sectors << "] exceeds per-disk capacity "
                         << per_disk_physical_sectors);
        AUDIT_EXPECT(physical.insert(NvramKey(loc.disk, loc.lba)).second,
                     "replica map [lba "
                         << lba << " +" << sectors
                         << "]: duplicate physical replica [disk " << loc.disk
                         << " lba " << loc.lba << "]");
      }
    }
  }
  AUDIT_EXPECT(expected_lba == lba + sectors,
               "replica map [lba " << lba << " +" << sectors
                                   << "]: fragments cover "
                                   << (expected_lba - lba)
                                   << " sectors, expected " << sectors);
}

void InvariantAuditor::OnNvramPut(uint32_t disk, uint64_t lba,
                                  uint64_t owner_entry) {
  auto it = entries_.find(owner_entry);
  AUDIT_EXPECT(it != entries_.end() && it->second.delayed,
               "nvram consistency: table entry [disk "
                   << disk << " lba " << lba << "] owned by " << owner_entry
                   << " which is not a live delayed-write entry");
  nvram_mirror_[NvramKey(disk, lba)] = owner_entry;
}

void InvariantAuditor::OnNvramErase(uint32_t disk, uint64_t lba) {
  const size_t erased = nvram_mirror_.erase(NvramKey(disk, lba));
  AUDIT_EXPECT(erased == 1, "nvram consistency: erase of unknown table entry "
                            "[disk "
                                << disk << " lba " << lba << "]");
}

void InvariantAuditor::OnIoFault(uint32_t disk, uint64_t entry_id) {
  const bool inserted = open_faults_.try_emplace(entry_id, disk).second;
  AUDIT_EXPECT(inserted, "fault conservation: entry "
                             << entry_id << " reported faulted twice (disk "
                             << disk << ")");
}

void InvariantAuditor::OnFaultResolved(uint64_t entry_id,
                                       FaultResolution resolution,
                                       bool target_disk_failed) {
  auto it = open_faults_.find(entry_id);
  AUDIT_EXPECT(it != open_faults_.end(),
               "fault conservation: resolution for unknown fault (entry "
                   << entry_id << ", resolution "
                   << static_cast<int>(resolution) << ")");
  if (it == open_faults_.end()) {
    return;
  }
  AUDIT_EXPECT(resolution != FaultResolution::kAbandoned || target_disk_failed,
               "fault conservation: entry "
                   << entry_id << " (disk " << it->second
                   << ") abandoned while its target disk is still live");
  open_faults_.erase(it);
}

void InvariantAuditor::OnDiskReplaced(uint32_t disk) {
  // The slot now holds a physically different drive; forget the old spindle
  // constants so the replacement's phase/period are recorded fresh. The
  // last-completion watermark carries over: the slot's service timeline is
  // still serial (the old drive's final completion precedes promotion).
  auto it = disk_constants_.find(disk);
  if (it == disk_constants_.end()) {
    return;
  }
  const SimTime watermark = it->second.last_completion_us;
  it->second = DiskConstants{};
  it->second.last_completion_us = watermark;
  it->second.seen = false;
}

void InvariantAuditor::CheckQuiescent(size_t fg_queued, size_t delayed_queued,
                                      size_t nvram_entries,
                                      size_t stale_sectors,
                                      size_t inflight_writes,
                                      size_t parked_requests) {
  AUDIT_EXPECT(fg_queued == 0, "quiescence: " << fg_queued
                                              << " foreground entries still "
                                                 "queued");
  AUDIT_EXPECT(delayed_queued == 0, "quiescence: "
                                        << delayed_queued
                                        << " delayed entries still queued");
  AUDIT_EXPECT(nvram_entries == 0, "quiescence: "
                                       << nvram_entries
                                       << " NVRAM table entries still "
                                          "pending");
  AUDIT_EXPECT(stale_sectors == 0, "quiescence: " << stale_sectors
                                                  << " sectors still marked "
                                                     "stale");
  AUDIT_EXPECT(inflight_writes == 0,
               "quiescence: " << inflight_writes
                              << " logical sectors still marked "
                                 "write-in-flight");
  AUDIT_EXPECT(parked_requests == 0,
               "quiescence: " << parked_requests
                              << " reads still parked behind writes");
  AUDIT_EXPECT(entries_.empty(), "quiescence: "
                                     << entries_.size()
                                     << " queue entries never completed "
                                        "(lost requests)");
  AUDIT_EXPECT(dispatched_count_ == 0,
               "quiescence: " << dispatched_count_
                              << " dispatched requests never completed");
  AUDIT_EXPECT(nvram_mirror_.empty(),
               "quiescence: auditor NVRAM mirror still holds "
                   << nvram_mirror_.size() << " entries");
  AUDIT_EXPECT(open_faults_.empty(),
               "fault conservation: " << open_faults_.size()
                                      << " failed sub-ops were never retried, "
                                         "failed over, reconstructed, "
                                         "repaired, or surfaced");
}

#undef AUDIT_EXPECT

}  // namespace mimdraid
