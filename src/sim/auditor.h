// Runtime invariant-audit layer for the simulator stack.
//
// The biggest risk in an event-driven disk simulator is *silent* corruption:
// a mis-ordered event, a stale head position, or a replica map that drifts
// out of sync skews every latency number without failing a single test. The
// InvariantAuditor is a passive observer that components report to when a
// debug flag enables it (ArrayControllerOptions::auditor, or directly via
// Simulator::set_auditor / SimDisk::SetAuditor). It machine-checks, after
// every operation:
//
//   * event-time monotonicity — no event is scheduled in the past and the
//     simulated clock never runs backwards;
//   * spindle-phase / head-position consistency — a drive's true spindle
//     phase and rotation period are physical constants, the arm always parks
//     on a valid (cylinder, head), operations on one spindle never overlap,
//     and the reported service-time decomposition sums to the service time;
//   * scheduler-pick validity — a scheduler returns an index inside the
//     queue and a replica LBA the picked entry actually offers;
//   * queue conservation — every per-drive queue entry follows
//     queued -> dispatched -> completed (or queued -> cancelled), with no
//     lost, duplicated, or resurrected requests;
//   * replica-set agreement — every fragment produced by the array layout
//     tiles the logical range exactly and carries Dm*Dr distinct,
//     in-bounds physical replicas with mirror copies on distinct disks;
//   * NVRAM-table / delayed-write consistency — every pending propagation
//     recorded in the NVRAM metadata table is owned by a live delayed queue
//     entry, and nothing lingers once the array reports idle;
//   * fault conservation — every disk sub-op that completes with a non-kOk
//     IoStatus must be resolved by the controller: retried, failed over to
//     another replica, reconstructed from peers, repaired by a rewrite, or
//     surfaced to the submitter as kUnrecoverable. Abandoning a fault is
//     legal only when its target disk is failed (the data has no future on
//     that drive). A fault that is none of these by quiescence time was
//     silently dropped — the worst failure mode a recovery path can have.
//
// On a violation the auditor calls its failure handler: by default the
// process aborts with a message carrying the operand values (like
// MIMDRAID_CHECK); tests install a recording handler to assert that seeded
// corruption is caught without dying.
//
// The auditor deliberately depends only on the util layer: hooks receive
// primitives and small POD structs so lower layers (sim, disk) can call it
// without inverting the library dependency order.
#ifndef MIMDRAID_SRC_SIM_AUDITOR_H_
#define MIMDRAID_SRC_SIM_AUDITOR_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/util/time.h"

namespace mimdraid {

// One physical copy of a fragment, as reported to the auditor.
struct AuditReplicaRef {
  uint32_t disk = 0;
  uint64_t lba = 0;
};

// One fragment of a logical request with its full replica set, mirror-major:
// replicas[m*dr + r] is rotational replica r of mirror copy m.
struct AuditFragment {
  uint64_t logical_lba = 0;
  uint32_t sectors = 0;
  std::vector<AuditReplicaRef> replicas;
};

// How a controller disposed of a failed disk sub-op (fault conservation).
enum class FaultResolution : uint8_t {
  kRetried,        // re-queued against the same target after backoff
  kFailedOver,     // re-aimed at another replica / mirror disk
  kReconstructed,  // rebuilt from RAID-5 peers
  kRepaired,       // bad replica rewritten from a surviving copy
  kSurfaced,       // completed to the submitter as kUnrecoverable
  kAbandoned,      // dropped — legal only when the target disk is failed
};

// Everything a SimDisk knows about an operation at completion time.
struct DiskOpAudit {
  uint32_t disk = 0;
  bool is_write = false;
  uint64_t lba = 0;
  uint32_t sectors = 0;
  SimTime start_us;
  SimTime completion_us;
  // Ground-truth service decomposition (overhead includes pre+post).
  double overhead_us = 0.0;
  double seek_us = 0.0;
  double rotational_us = 0.0;
  double transfer_us = 0.0;
  // Post-op arm position and its geometry bounds.
  uint32_t head_cylinder = 0;
  uint32_t head_index = 0;
  uint32_t num_cylinders = 0;
  uint32_t num_heads = 0;
  // Physical constants of the drive; must never change between ops.
  double spindle_phase_us = 0.0;
  double rotation_us = 0.0;
};

class InvariantAuditor {
 public:
  using FailureHandler = std::function<void(const std::string& message)>;

  InvariantAuditor() = default;
  InvariantAuditor(const InvariantAuditor&) = delete;
  InvariantAuditor& operator=(const InvariantAuditor&) = delete;

  // Replaces the abort-on-violation default. The handler receives the full
  // failure message; returning from it continues the run (used by tests to
  // assert the auditor fires on seeded corruption).
  void set_failure_handler(FailureHandler handler) {
    handler_ = std::move(handler);
  }

  uint64_t checks_run() const { return checks_run_; }
  uint64_t violations() const { return violations_; }
  const std::string& last_violation() const { return last_violation_; }

  // --- Simulator hooks ---
  void OnEventScheduled(SimTime now, SimTime at);
  void OnEventFired(SimTime now_before, SimTime at);

  // --- SimDisk hooks ---
  void OnDiskOpComplete(const DiskOpAudit& op);

  // --- Scheduler hooks ---
  void OnSchedulerPick(const std::string& scheduler_name, size_t queue_size,
                       size_t picked_index, BlockAddr chosen_lba,
                       const std::vector<BlockAddr>& candidates,
                       double predicted_service_us);

  // --- Array controller: queue conservation ---
  void OnEntryQueued(uint32_t disk, uint64_t entry_id, bool delayed);
  void OnEntryDispatched(uint32_t disk, uint64_t entry_id);
  void OnEntryCancelled(uint32_t disk, uint64_t entry_id);
  void OnEntryCompleted(uint32_t disk, uint64_t entry_id);

  // --- Array controller: replica-set agreement ---
  void OnArrayMap(uint64_t lba, uint32_t sectors, int dm, int dr,
                  uint32_t num_disks, uint64_t per_disk_physical_sectors,
                  const std::vector<AuditFragment>& fragments);

  // --- Array controller: NVRAM / delayed-write consistency ---
  void OnNvramPut(uint32_t disk, uint64_t lba, uint64_t owner_entry);
  void OnNvramErase(uint32_t disk, uint64_t lba);

  // --- Fault conservation ---
  // A disk sub-op (keyed by its queue entry id) completed with a failure
  // status; the controller must follow up with exactly one OnFaultResolved.
  void OnIoFault(uint32_t disk, uint64_t entry_id);
  void OnFaultResolved(uint64_t entry_id, FaultResolution resolution,
                       bool target_disk_failed);
  size_t open_faults() const { return open_faults_.size(); }

  // A replacement drive was promoted into `disk`'s slot: its spindle phase
  // and rotation period are new physical constants.
  void OnDiskReplaced(uint32_t disk);

  // Terminal check, called when the controller claims quiescence: every
  // count the controller reports and every live object the auditor tracks
  // must be zero.
  void CheckQuiescent(size_t fg_queued, size_t delayed_queued,
                      size_t nvram_entries, size_t stale_sectors,
                      size_t inflight_writes, size_t parked_requests);

 private:
  enum class EntryState { kQueued, kDispatched };

  struct EntryInfo {
    EntryState state = EntryState::kQueued;
    uint32_t disk = 0;
    bool delayed = false;
  };

  void Fail(const std::string& message);

  FailureHandler handler_;
  uint64_t checks_run_ = 0;
  uint64_t violations_ = 0;
  std::string last_violation_;

  // Live queue entries (erased on completion/cancellation, so memory stays
  // proportional to outstanding work, not run length).
  std::unordered_map<uint64_t, EntryInfo> entries_;
  size_t dispatched_count_ = 0;

  // Mirror of the controller's NVRAM table: key -> owning entry id.
  std::unordered_map<uint64_t, uint64_t> nvram_mirror_;

  // Failed sub-ops awaiting a resolution: entry id -> target disk.
  std::unordered_map<uint64_t, uint32_t> open_faults_;

  // Physical constants per disk, recorded on first completion.
  struct DiskConstants {
    double spindle_phase_us = 0.0;
    double rotation_us = 0.0;
    SimTime last_completion_us;
    bool seen = false;
  };
  std::unordered_map<uint32_t, DiskConstants> disk_constants_;

  static uint64_t NvramKey(uint32_t disk, uint64_t lba) {
    return (static_cast<uint64_t>(disk) << 48) | lba;
  }
};

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_SIM_AUDITOR_H_
