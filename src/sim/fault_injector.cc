#include "src/sim/fault_injector.h"

#include <cmath>

#include "src/util/check.h"

namespace mimdraid {

FaultInjector::FaultInjector(const FaultInjectorOptions& options)
    : options_(options) {
  MIMDRAID_CHECK_GE(options.latent_error_prob, 0.0);
  if (options.lifetime.hazard == LifetimeHazard::kExponential) {
    MIMDRAID_CHECK_GT(options.lifetime.mttf_hours, 0.0);
  } else if (options.lifetime.hazard == LifetimeHazard::kWeibull) {
    MIMDRAID_CHECK_GT(options.lifetime.weibull_shape, 0.0);
    MIMDRAID_CHECK_GT(options.lifetime.weibull_scale_hours, 0.0);
  }
  MIMDRAID_CHECK_GE(options.lifetime.lse_rate_per_hour, 0.0);
  MIMDRAID_CHECK_GE(options.transient_error_prob, 0.0);
  MIMDRAID_CHECK_GE(options.timeout_prob, 0.0);
  MIMDRAID_CHECK_GT(options.watchdog_timeout_us, SimDuration(0));
  MIMDRAID_CHECK_GE(options.media_retry_penalty_us, 0.0);
}

FaultInjector::DiskFaultState& FaultInjector::StateFor(uint32_t disk) {
  auto it = disks_.find(disk);
  if (it == disks_.end()) {
    // A disk slot's stream is a deterministic function of (seed, slot), not
    // of first-access order, so per-disk fault sequences are stable across
    // workload changes.
    it = disks_.emplace(disk, DiskFaultState(options_.seed * 0x9E3779B97F4A7C15ull + disk + 1))
             .first;
  }
  return it->second;
}

const FaultInjector::DiskFaultState* FaultInjector::StateForOrNull(
    uint32_t disk) const {
  auto it = disks_.find(disk);
  return it == disks_.end() ? nullptr : &it->second;
}

void FaultInjector::InjectLatentError(uint32_t disk, uint64_t lba) {
  if (StateFor(disk).latent_lbas.insert(lba).second) {
    ++counters_.latent_errors_planted;
  }
}

void FaultInjector::InjectTransientErrors(uint32_t disk, uint32_t count) {
  StateFor(disk).pending_transients += count;
}

void FaultInjector::SetFailSlow(uint32_t disk, double service_multiplier) {
  MIMDRAID_CHECK_GE(service_multiplier, 1.0);
  StateFor(disk).service_multiplier = service_multiplier;
}

void FaultInjector::FailStop(uint32_t disk) {
  StateFor(disk).fail_stopped = true;
}

void FaultInjector::ReplaceDisk(uint32_t disk) {
  DiskFaultState& s = StateFor(disk);
  s.fail_stopped = false;
  s.service_multiplier = 1.0;
  s.pending_transients = 0;
  s.latent_lbas.clear();
}

bool FaultInjector::IsFailStopped(uint32_t disk) const {
  const DiskFaultState* s = StateForOrNull(disk);
  return s != nullptr && s->fail_stopped;
}

bool FaultInjector::HasLatentError(uint32_t disk, uint64_t lba) const {
  const DiskFaultState* s = StateForOrNull(disk);
  return s != nullptr && s->latent_lbas.contains(lba);
}

size_t FaultInjector::LatentErrorCount(uint32_t disk) const {
  const DiskFaultState* s = StateForOrNull(disk);
  return s == nullptr ? 0 : s->latent_lbas.size();
}

size_t FaultInjector::TotalLatentErrors() const {
  size_t total = 0;
  for (const auto& [disk, s] : disks_) {
    total += s.latent_lbas.size();
  }
  return total;
}

double FaultInjector::DrawLifetimeHours(uint32_t disk) {
  const DiskLifetimeOptions& lt = options_.lifetime;
  MIMDRAID_CHECK(lt.hazard != LifetimeHazard::kNone);
  DiskFaultState& s = StateFor(disk);
  ++counters_.lifetime_draws;
  if (lt.hazard == LifetimeHazard::kExponential) {
    return s.rng.Exponential(lt.mttf_hours);
  }
  // Weibull inverse CDF: T = c * (-ln(1 - U))^(1/s). -log1p(-u) keeps
  // precision for small u, and u < 1 guarantees a finite draw.
  const double u = s.rng.UniformDouble();
  return lt.weibull_scale_hours *
         std::pow(-std::log1p(-u), 1.0 / lt.weibull_shape);
}

double FaultInjector::DrawLseGapHours(uint32_t disk) {
  MIMDRAID_CHECK_GT(options_.lifetime.lse_rate_per_hour, 0.0);
  DiskFaultState& s = StateFor(disk);
  ++counters_.lse_gap_draws;
  return s.rng.Exponential(1.0 / options_.lifetime.lse_rate_per_hour);
}

FaultOutcome FaultInjector::OnAccess(uint32_t disk, bool is_write,
                                     uint64_t lba, uint32_t sectors) {
  DiskFaultState& s = StateFor(disk);
  FaultOutcome out;
  if (s.fail_stopped) {
    ++counters_.failstop_rejections;
    out.status = IoStatus::kDiskFailed;
    return out;
  }
  out.service_multiplier = s.service_multiplier;
  if (s.service_multiplier > 1.0) {
    ++counters_.slow_accesses;
  }
  // One-shot transients queued by the chaos harness fire first.
  if (s.pending_transients > 0) {
    --s.pending_transients;
    ++counters_.transient_errors;
    out.status = IoStatus::kMediaError;
    return out;
  }
  // The drive hangs; the host watchdog aborts the command.
  if (options_.timeout_prob > 0.0 && s.rng.Bernoulli(options_.timeout_prob)) {
    ++counters_.timeouts;
    out.status = IoStatus::kTimeout;
    return out;
  }
  if (options_.transient_error_prob > 0.0 &&
      s.rng.Bernoulli(options_.transient_error_prob)) {
    ++counters_.transient_errors;
    out.status = IoStatus::kMediaError;
    return out;
  }
  if (!is_write) {
    // A read over a latent-bad sector fails persistently.
    for (uint32_t i = 0; i < sectors; ++i) {
      if (s.latent_lbas.contains(lba + i)) {
        ++counters_.media_error_reads;
        out.status = IoStatus::kMediaError;
        return out;
      }
    }
    // Media decay: this very read discovers a fresh latent error.
    if (options_.latent_error_prob > 0.0 &&
        s.rng.Bernoulli(options_.latent_error_prob)) {
      s.latent_lbas.insert(lba);
      ++counters_.latent_errors_planted;
      ++counters_.media_error_reads;
      out.status = IoStatus::kMediaError;
      return out;
    }
  }
  return out;
}

std::vector<uint64_t> FaultInjector::LatentInRange(uint32_t disk, uint64_t lba,
                                                   uint32_t sectors) const {
  std::vector<uint64_t> bad;
  const DiskFaultState* s = StateForOrNull(disk);
  if (s == nullptr || s->latent_lbas.empty()) {
    return bad;
  }
  for (uint32_t i = 0; i < sectors; ++i) {
    if (s->latent_lbas.contains(lba + i)) {
      bad.push_back(lba + i);
    }
  }
  return bad;
}

void FaultInjector::OnWriteRepaired(uint32_t disk, uint64_t lba) {
  DiskFaultState& s = StateFor(disk);
  if (s.latent_lbas.erase(lba) > 0) {
    ++counters_.write_repairs;
  }
}

}  // namespace mimdraid
