// Deterministic, seedable fault-injection subsystem.
//
// Disks consult the injector on every media access (SimDisk::Start). It
// models the partial-fault classes that dominate real array failures:
//
//   * latent sector errors — persistent per-LBA read failures, planted
//     explicitly or stochastically, surviving until the sector is rewritten
//     (the drive then remaps it to spare space via DiskLayout::AddBadSector);
//   * transient errors — one-shot media errors that succeed on retry;
//   * I/O timeouts — the drive hangs and the host watchdog aborts the
//     command after watchdog_timeout_us;
//   * fail-slow drives — a configurable service-time multiplier;
//   * fail-stop — dead electronics reject every command immediately.
//
// Beyond the per-access fault classes, the injector is also the randomness
// source for *lifetime-scale* reliability modeling (src/rel): whole-disk
// time-to-failure draws from a configurable hazard (constant-rate exponential
// or Weibull, whose shape parameter covers both infant-mortality and wear-out
// ends of the bathtub curve) and latent-sector-error interarrival draws from a
// Poisson process. Keeping those draws here — on the same per-slot streams the
// access-time faults use — makes a fleet-lifetime run reproducible per
// (seed, slot) with the exact machinery the chaos suite already trusts.
//
// Determinism: each disk slot gets its own RNG stream forked from the seed,
// so a run is bit-for-bit reproducible for a given (seed, workload) pair
// regardless of how faults interleave across disks. Replacing a drive
// (hot-spare promotion) resets the slot's fault state but not its stream:
// ReplaceDisk MUST NOT advance, rewind, or reseed the slot's RNG, so runs
// stay bit-reproducible across spare promotions (post-replacement draws are
// identical to what the slot would have drawn without the promotion; pinned
// by FaultInjector.ReplaceDiskPreservesSlotStreamPosition).
#ifndef MIMDRAID_SRC_SIM_FAULT_INJECTOR_H_
#define MIMDRAID_SRC_SIM_FAULT_INJECTOR_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/sim/io_status.h"
#include "src/util/rng.h"
#include "src/util/time.h"

namespace mimdraid {

// Whole-disk lifetime hazard. kExponential is the constant-rate memoryless
// model every closed-form MTTDL expression assumes (the analytic cross-check
// mode); kWeibull generalizes it: shape < 1 gives a decreasing hazard (infant
// mortality), shape = 1 degenerates to exponential, shape > 1 an increasing
// hazard (wear-out) — the two non-flat regimes of the bathtub curve.
enum class LifetimeHazard {
  kNone,         // lifetime draws disabled (DrawLifetimeHours CHECKs)
  kExponential,  // rate 1/mttf_hours
  kWeibull,      // scale weibull_scale_hours, shape weibull_shape
};

// Lifetime-scale reliability knobs (consumed by src/rel's fleet simulator;
// inert for the per-access fault path).
struct DiskLifetimeOptions {
  LifetimeHazard hazard = LifetimeHazard::kNone;
  // Mean time to failure for the exponential hazard.
  double mttf_hours = 1.0e6;
  // Weibull parameters. With shape s and scale c the mean lifetime is
  // c * tgamma(1 + 1/s) (see rel::WeibullMeanHours).
  double weibull_shape = 1.0;
  double weibull_scale_hours = 1.0e6;
  // Poisson arrival rate of latent sector errors per disk-hour (0 disables;
  // DrawLseGapHours CHECKs). Field studies put this around 1e-4..1e-3 per
  // hour for nearline drives.
  double lse_rate_per_hour = 0.0;
};

struct FaultInjectorOptions {
  uint64_t seed = 1;
  // Lifetime/hazard model for whole-disk failures and LSE accumulation.
  DiskLifetimeOptions lifetime;
  // Per-access probability of planting a *new* persistent latent error at the
  // access's first LBA (reads only; the read that discovers it fails).
  double latent_error_prob = 0.0;
  // Per-access probability of a one-shot transient media error.
  double transient_error_prob = 0.0;
  // Per-access probability that the drive hangs until the watchdog fires.
  double timeout_prob = 0.0;
  // Host command watchdog: a hung command is aborted (and completes with
  // IoStatus::kTimeout) this long after dispatch.
  SimDuration watchdog_timeout_us = SimDuration(250'000);
  // Extra service time a drive spends in internal retries before reporting a
  // media error (a handful of revolutions of re-reads).
  double media_retry_penalty_us = 25'000.0;
};

// Aggregate counters for everything the injector did (by fault class) and
// everything the drives repaired. Exposed so chaos tests and CI artifacts can
// reconcile injected faults against controller recovery stats.
struct FaultInjectorCounters {
  uint64_t latent_errors_planted = 0;
  uint64_t transient_errors = 0;
  uint64_t timeouts = 0;
  uint64_t media_error_reads = 0;   // reads failed by a live latent error
  uint64_t failstop_rejections = 0;
  uint64_t slow_accesses = 0;       // accesses stretched by a fail-slow drive
  uint64_t write_repairs = 0;       // latent errors cleared by a rewrite
  uint64_t lifetime_draws = 0;      // whole-disk time-to-failure samples
  uint64_t lse_gap_draws = 0;       // LSE interarrival samples
};

// Verdict for one media access.
struct FaultOutcome {
  IoStatus status = IoStatus::kOk;
  // Mechanical-time multiplier (> 1 on a fail-slow drive).
  double service_multiplier = 1.0;
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultInjectorOptions& options);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const FaultInjectorOptions& options() const { return options_; }
  const FaultInjectorCounters& counters() const { return counters_; }

  // --- Explicit injection (tests, chaos harness). ---
  void InjectLatentError(uint32_t disk, uint64_t lba);
  // The next `count` accesses to `disk` fail with a transient media error.
  void InjectTransientErrors(uint32_t disk, uint32_t count);
  void SetFailSlow(uint32_t disk, double service_multiplier);
  void FailStop(uint32_t disk);

  // Replacement drive in the slot (hot-spare promotion): clears fail-stop,
  // fail-slow, pending transients, and the latent-error map for the slot.
  // Contract: the slot's RNG stream position is preserved exactly — a draw
  // made after ReplaceDisk returns the same value the slot would have drawn
  // without it, so runs stay bit-reproducible across spare promotions
  // (FaultInjector.ReplaceDiskPreservesSlotStreamPosition).
  void ReplaceDisk(uint32_t disk);

  // --- Lifetime-scale draws (fleet reliability simulation, src/rel). ---
  // Samples a whole-disk time-to-failure from the configured hazard, using
  // `disk`'s private stream. CHECKs unless options.lifetime.hazard != kNone.
  double DrawLifetimeHours(uint32_t disk);
  // Samples the gap to the next latent-sector-error arrival (exponential with
  // mean 1/lse_rate_per_hour). CHECKs unless lse_rate_per_hour > 0.
  double DrawLseGapHours(uint32_t disk);

  // --- Queries. ---
  bool IsFailStopped(uint32_t disk) const;
  bool HasLatentError(uint32_t disk, uint64_t lba) const;
  size_t LatentErrorCount(uint32_t disk) const;
  size_t TotalLatentErrors() const;

  // --- Disk-side hooks (called by SimDisk). ---
  // Evaluates one media access. May plant new stochastic faults as a side
  // effect; the decision is drawn from the slot's private RNG stream.
  FaultOutcome OnAccess(uint32_t disk, bool is_write, uint64_t lba,
                        uint32_t sectors);
  // LBAs in [lba, lba+sectors) carrying a live latent error (for the write
  // reallocation path).
  std::vector<uint64_t> LatentInRange(uint32_t disk, uint64_t lba,
                                      uint32_t sectors) const;
  // A write landed on a latent-bad LBA and the drive reallocated the sector:
  // the media under the LBA is good again.
  void OnWriteRepaired(uint32_t disk, uint64_t lba);

 private:
  struct DiskFaultState {
    Rng rng;
    bool fail_stopped = false;
    double service_multiplier = 1.0;
    uint32_t pending_transients = 0;
    std::unordered_set<uint64_t> latent_lbas;

    explicit DiskFaultState(uint64_t seed) : rng(seed) {}
  };

  DiskFaultState& StateFor(uint32_t disk);
  const DiskFaultState* StateForOrNull(uint32_t disk) const;

  FaultInjectorOptions options_;
  FaultInjectorCounters counters_;
  std::unordered_map<uint32_t, DiskFaultState> disks_;
};

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_SIM_FAULT_INJECTOR_H_
