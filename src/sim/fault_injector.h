// Deterministic, seedable fault-injection subsystem.
//
// Disks consult the injector on every media access (SimDisk::Start). It
// models the partial-fault classes that dominate real array failures:
//
//   * latent sector errors — persistent per-LBA read failures, planted
//     explicitly or stochastically, surviving until the sector is rewritten
//     (the drive then remaps it to spare space via DiskLayout::AddBadSector);
//   * transient errors — one-shot media errors that succeed on retry;
//   * I/O timeouts — the drive hangs and the host watchdog aborts the
//     command after watchdog_timeout_us;
//   * fail-slow drives — a configurable service-time multiplier;
//   * fail-stop — dead electronics reject every command immediately.
//
// Determinism: each disk slot gets its own RNG stream forked from the seed,
// so a run is bit-for-bit reproducible for a given (seed, workload) pair
// regardless of how faults interleave across disks. Replacing a drive
// (hot-spare promotion) resets the slot's fault state but not its stream.
#ifndef MIMDRAID_SRC_SIM_FAULT_INJECTOR_H_
#define MIMDRAID_SRC_SIM_FAULT_INJECTOR_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/sim/io_status.h"
#include "src/util/rng.h"
#include "src/util/time.h"

namespace mimdraid {

struct FaultInjectorOptions {
  uint64_t seed = 1;
  // Per-access probability of planting a *new* persistent latent error at the
  // access's first LBA (reads only; the read that discovers it fails).
  double latent_error_prob = 0.0;
  // Per-access probability of a one-shot transient media error.
  double transient_error_prob = 0.0;
  // Per-access probability that the drive hangs until the watchdog fires.
  double timeout_prob = 0.0;
  // Host command watchdog: a hung command is aborted (and completes with
  // IoStatus::kTimeout) this long after dispatch.
  SimDuration watchdog_timeout_us = SimDuration(250'000);
  // Extra service time a drive spends in internal retries before reporting a
  // media error (a handful of revolutions of re-reads).
  double media_retry_penalty_us = 25'000.0;
};

// Aggregate counters for everything the injector did (by fault class) and
// everything the drives repaired. Exposed so chaos tests and CI artifacts can
// reconcile injected faults against controller recovery stats.
struct FaultInjectorCounters {
  uint64_t latent_errors_planted = 0;
  uint64_t transient_errors = 0;
  uint64_t timeouts = 0;
  uint64_t media_error_reads = 0;   // reads failed by a live latent error
  uint64_t failstop_rejections = 0;
  uint64_t slow_accesses = 0;       // accesses stretched by a fail-slow drive
  uint64_t write_repairs = 0;       // latent errors cleared by a rewrite
};

// Verdict for one media access.
struct FaultOutcome {
  IoStatus status = IoStatus::kOk;
  // Mechanical-time multiplier (> 1 on a fail-slow drive).
  double service_multiplier = 1.0;
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultInjectorOptions& options);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const FaultInjectorOptions& options() const { return options_; }
  const FaultInjectorCounters& counters() const { return counters_; }

  // --- Explicit injection (tests, chaos harness). ---
  void InjectLatentError(uint32_t disk, uint64_t lba);
  // The next `count` accesses to `disk` fail with a transient media error.
  void InjectTransientErrors(uint32_t disk, uint32_t count);
  void SetFailSlow(uint32_t disk, double service_multiplier);
  void FailStop(uint32_t disk);

  // Replacement drive in the slot (hot-spare promotion): clears fail-stop,
  // fail-slow, pending transients, and the latent-error map for the slot.
  void ReplaceDisk(uint32_t disk);

  // --- Queries. ---
  bool IsFailStopped(uint32_t disk) const;
  bool HasLatentError(uint32_t disk, uint64_t lba) const;
  size_t LatentErrorCount(uint32_t disk) const;
  size_t TotalLatentErrors() const;

  // --- Disk-side hooks (called by SimDisk). ---
  // Evaluates one media access. May plant new stochastic faults as a side
  // effect; the decision is drawn from the slot's private RNG stream.
  FaultOutcome OnAccess(uint32_t disk, bool is_write, uint64_t lba,
                        uint32_t sectors);
  // LBAs in [lba, lba+sectors) carrying a live latent error (for the write
  // reallocation path).
  std::vector<uint64_t> LatentInRange(uint32_t disk, uint64_t lba,
                                      uint32_t sectors) const;
  // A write landed on a latent-bad LBA and the drive reallocated the sector:
  // the media under the LBA is good again.
  void OnWriteRepaired(uint32_t disk, uint64_t lba);

 private:
  struct DiskFaultState {
    Rng rng;
    bool fail_stopped = false;
    double service_multiplier = 1.0;
    uint32_t pending_transients = 0;
    std::unordered_set<uint64_t> latent_lbas;

    explicit DiskFaultState(uint64_t seed) : rng(seed) {}
  };

  DiskFaultState& StateFor(uint32_t disk);
  const DiskFaultState* StateForOrNull(uint32_t disk) const;

  FaultInjectorOptions options_;
  FaultInjectorCounters counters_;
  std::unordered_map<uint32_t, DiskFaultState> disks_;
};

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_SIM_FAULT_INJECTOR_H_
