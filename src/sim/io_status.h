// I/O completion status threaded through the whole stack.
//
// The seed prototype carried only a completion time through its DoneFn
// callbacks, so no I/O could ever *fail* — latent sector errors, transient
// faults, and fail-slow disks (the partial-fault classes that dominate real
// array field failures) were unrepresentable. Every completion now carries an
// IoStatus; the recovery machinery (retry with backoff, read-failover,
// RAID-5 reconstruction, hot-spare promotion, scrubbing) lives in the
// controllers, and kUnrecoverable is the graceful terminal status when
// redundancy is exhausted — the array never crashes on a data-loss event.
#ifndef MIMDRAID_SRC_SIM_IO_STATUS_H_
#define MIMDRAID_SRC_SIM_IO_STATUS_H_

#include <cstdint>

#include "src/util/time.h"

namespace mimdraid {

// [[nodiscard]]: a dropped IoStatus is how data-loss events get silently
// swallowed — every producer's status must be inspected or explicitly voided.
enum class [[nodiscard]] IoStatus : uint8_t {
  kOk = 0,
  // Persistent media error (latent sector error): every read of the sector
  // fails until the data is rewritten, which lets the drive remap the sector
  // to spare space (DiskLayout::AddBadSector).
  kMediaError,
  // The drive hung; the host watchdog timer expired and aborted the command.
  // Transient by nature — a retry usually succeeds.
  kTimeout,
  // The drive is fail-stopped; the command was rejected by dead electronics.
  kDiskFailed,
  // Terminal: the controller exhausted every replica / reconstruction path.
  // Surfaced to the submitter instead of crashing (the array keeps serving
  // everything still intact).
  kUnrecoverable,
};

inline const char* IoStatusName(IoStatus s) {
  switch (s) {
    case IoStatus::kOk:
      return "ok";
    case IoStatus::kMediaError:
      return "media-error";
    case IoStatus::kTimeout:
      return "timeout";
    case IoStatus::kDiskFailed:
      return "disk-failed";
    case IoStatus::kUnrecoverable:
      return "unrecoverable";
  }
  return "?";
}

// What a logical I/O submitter gets back from a controller.
struct IoResult {
  IoStatus status = IoStatus::kOk;
  SimTime completion_us;
  // Recovery work the controller spent on this op (retries + failovers +
  // reconstructions). 0 on the fast path.
  uint32_t recovery_attempts = 0;
};

// Bounded retry with exponential backoff in simulated time. Attempt k
// (0-based) that fails is retried after backoff_base_us * multiplier^k,
// until max_attempts recovery steps have been spent on the sub-operation.
struct RetryPolicy {
  uint32_t max_attempts = 3;
  SimDuration backoff_base_us = SimDuration(1'000);
  double backoff_multiplier = 2.0;

  SimDuration BackoffUs(uint32_t attempt) const {
    double b = static_cast<double>(backoff_base_us.us());
    for (uint32_t i = 0; i < attempt; ++i) {
      b *= backoff_multiplier;
    }
    return SimDuration(static_cast<int64_t>(b));
  }
};

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_SIM_IO_STATUS_H_
