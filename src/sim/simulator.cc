#include "src/sim/simulator.h"

#include <utility>

#include "src/sim/auditor.h"
#include "src/util/check.h"

namespace mimdraid {

EventId Simulator::ScheduleAt(SimTime at, std::function<void()> fn) {
  if (auditor_ != nullptr) {
    auditor_->OnEventScheduled(now_, at);
  } else {
    MIMDRAID_CHECK_GE(at, now_);
  }
  const uint64_t seq = next_seq_++;
  // seq doubles as the event id: unique and monotonically increasing.
  heap_.push(Event{at, seq, seq, std::move(fn)});
  return seq;
}

EventId Simulator::ScheduleAfter(SimTime delay, std::function<void()> fn) {
  MIMDRAID_CHECK_GE(delay, 0);
  return ScheduleAt(now_ + delay, std::move(fn));
}

bool Simulator::Cancel(EventId id) {
  if (id == 0 || id >= next_seq_) {
    return false;
  }
  return cancelled_.insert(id).second;
}

bool Simulator::Step() {
  while (!heap_.empty()) {
    Event ev = heap_.top();
    heap_.pop();
    auto it = cancelled_.find(ev.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    if (auditor_ != nullptr) {
      auditor_->OnEventFired(now_, ev.at);
    } else {
      MIMDRAID_CHECK_GE(ev.at, now_);
    }
    now_ = ev.at;
    ++events_fired_;
    ev.fn();
    return true;
  }
  return false;
}

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RunUntil(SimTime deadline) {
  MIMDRAID_CHECK_GE(deadline, now_);
  for (;;) {
    // Peek past cancelled entries.
    while (!heap_.empty()) {
      const Event& top = heap_.top();
      auto it = cancelled_.find(top.id);
      if (it == cancelled_.end()) {
        break;
      }
      cancelled_.erase(it);
      heap_.pop();
    }
    if (heap_.empty() || heap_.top().at > deadline) {
      now_ = deadline;
      return;
    }
    Step();
  }
}

}  // namespace mimdraid
