#include "src/sim/simulator.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "src/sim/auditor.h"
#include "src/util/check.h"

namespace mimdraid {

namespace {

// Compaction trigger: sweep overflow tombstones once they outnumber the live
// entries by this margin. The margin keeps tiny queues from compacting on
// every other cancel; the proportional part bounds the vector at
// 2*live + kOverflowSlack entries.
constexpr size_t kOverflowSlack = 64;

}  // namespace

uint32_t Simulator::AllocSlot() {
  if (!free_slots_.empty()) {
    const uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  MIMDRAID_CHECK_LT(pool_.size(), static_cast<size_t>(UINT32_MAX));
  pool_.emplace_back();
  return static_cast<uint32_t>(pool_.size() - 1);
}

void Simulator::RetireSlot(uint32_t slot) {
  Event& ev = pool_[slot];
  ev.fn.reset();
  ev.state = SlotState::kFree;
  // Bumping the generation invalidates every EventId minted for this
  // incarnation; gen never revisits 0, so EventId() stays unambiguous.
  ++ev.gen;
  if (ev.gen == 0) {
    ev.gen = 1;
  }
  free_slots_.push_back(slot);
}

void Simulator::InsertIntoRing(uint32_t slot, int64_t bucket_abs) {
  const auto idx = static_cast<uint32_t>(bucket_abs) & kBucketMask;
  std::vector<uint32_t>& bucket = ring_[idx];
  pool_[slot].state = SlotState::kInRing;
  pool_[slot].ring_pos = static_cast<uint32_t>(bucket.size());
  bucket.push_back(slot);
  occupied_[idx >> 6] |= uint64_t{1} << (idx & 63);
  ++ring_count_;
}

void Simulator::RemoveFromRing(uint32_t slot) {
  const Event& ev = pool_[slot];
  const auto idx = static_cast<uint32_t>(BucketOf(ev.at)) & kBucketMask;
  std::vector<uint32_t>& bucket = ring_[idx];
  const uint32_t pos = ev.ring_pos;
  // Swap-with-back removal; patch the moved event's back-pointer.
  bucket[pos] = bucket.back();
  pool_[bucket[pos]].ring_pos = pos;
  bucket.pop_back();
  if (bucket.empty()) {
    occupied_[idx >> 6] &= ~(uint64_t{1} << (idx & 63));
  }
  --ring_count_;
}

void Simulator::PopOverflowTop() {
  std::pop_heap(overflow_.begin(), overflow_.end(), OverflowLater{});
  overflow_.pop_back();
}

void Simulator::CompactOverflowIfStale() {
  if (overflow_dead_ <= overflow_.size() / 2 || overflow_dead_ <= kOverflowSlack) {
    return;
  }
  auto live_end = std::remove_if(
      overflow_.begin(), overflow_.end(), [this](const OverflowEntry& e) {
        return pool_[e.slot].state != SlotState::kInOverflow ||
               pool_[e.slot].seq != e.seq;
      });
  overflow_.erase(live_end, overflow_.end());
  std::make_heap(overflow_.begin(), overflow_.end(), OverflowLater{});
  overflow_dead_ = 0;
}

EventId Simulator::ScheduleAt(SimTime at, EventFn fn) {
  if (auditor_ != nullptr) {
    auditor_->OnEventScheduled(now_, at);
  } else {
    MIMDRAID_CHECK_GE(at, now_);
  }
  const uint64_t seq = next_seq_++;
  const uint32_t slot = AllocSlot();
  Event& ev = pool_[slot];
  ev.at = at;
  ev.seq = seq;
  ev.fn = std::move(fn);

  // Cursor invariant: cur_bucket_ tracks BucketOf(now_), so no pending event
  // is ever behind it (pending at >= now_ implies bucket >= BucketOf(now_)).
  // Advancing it here is always safe for the same reason, and keeps the ring
  // window anchored at the present after a long idle gap (e.g. RunUntil
  // jumping the clock) so near-future inserts keep taking the O(1) route.
  const int64_t now_bucket = BucketOf(now_);
  if (cur_bucket_ < now_bucket) {
    cur_bucket_ = now_bucket;
  }
  const int64_t bucket_abs = BucketOf(at);
  if (bucket_abs < cur_bucket_ + static_cast<int64_t>(kNumBuckets)) {
    InsertIntoRing(slot, bucket_abs);
  } else {
    ev.state = SlotState::kInOverflow;
    overflow_.push_back(OverflowEntry{at, seq, slot});
    std::push_heap(overflow_.begin(), overflow_.end(), OverflowLater{});
  }
  ++pending_;
  return IdFor(slot, ev.gen);
}

EventId Simulator::ScheduleAfter(SimDuration delay, EventFn fn) {
  MIMDRAID_CHECK_GE(delay, SimDuration(0));
  return ScheduleAt(now_ + delay, std::move(fn));
}

bool Simulator::Cancel(EventId id) {
  const uint32_t slot = static_cast<uint32_t>(id.raw());
  const auto gen = static_cast<uint32_t>(id.raw() >> 32);
  // A fired, already-cancelled, or never-issued id no longer matches its
  // slot's generation (or names no slot at all): harmless no-op.
  if (slot >= pool_.size() || pool_[slot].gen != gen ||
      pool_[slot].state == SlotState::kFree) {
    return false;
  }
  if (pool_[slot].state == SlotState::kInRing) {
    RemoveFromRing(slot);
  } else {
    // The heap entry stays behind as a tombstone (detected by seq mismatch
    // once the slot retires); the closure dies right now regardless.
    ++overflow_dead_;
  }
  RetireSlot(slot);
  --pending_;
  CompactOverflowIfStale();
  return true;
}

uint32_t Simulator::FindEarliest() {
  // Peek-only: nothing here moves the cursor or relocates events, so RunUntil
  // can probe the queue head without perturbing engine state. The cursor is
  // only committed by Step(), in lockstep with now_ — that keeps the ring
  // invariant (every ring event's bucket inside [cur_bucket_, cur_bucket_ +
  // kNumBuckets)) immune to deadline-bounded runs that stop short.
  //
  // Drop dead heap tops so overflow_.front() is a live event (or gone).
  while (!overflow_.empty()) {
    const OverflowEntry& top = overflow_.front();
    if (pool_[top.slot].state == SlotState::kInOverflow &&
        pool_[top.slot].seq == top.seq) {
      break;
    }
    PopOverflowTop();
    --overflow_dead_;
  }
  uint32_t best = kNpos;
  if (ring_count_ > 0) {
    // First occupied bucket at/after the cursor via the occupancy bitmap
    // (one countr_zero per 64 buckets, cyclic). Every ring event sits inside
    // the window, so the first occupied bucket is the minimum bucket, and
    // bucket times are monotone in bucket index — the global ring minimum
    // lives there. Buckets are small (64 µs of events), so the linear
    // (at, seq) min scan inside is cheap and reproduces the old binary
    // heap's deterministic total order exactly.
    const auto start = static_cast<uint32_t>(cur_bucket_) & kBucketMask;
    uint32_t found = kNpos;
    uint32_t word = start >> 6;
    uint64_t bits = occupied_[word] & (~uint64_t{0} << (start & 63));
    for (uint32_t scanned = 0; scanned <= kNumBuckets / 64; ++scanned) {
      if (bits != 0) {
        found = (word << 6) + static_cast<uint32_t>(std::countr_zero(bits));
        break;
      }
      word = (word + 1) & ((kNumBuckets / 64) - 1);
      bits = occupied_[word];
    }
    MIMDRAID_CHECK(found != kNpos);
    const std::vector<uint32_t>& bucket = ring_[found];
    best = bucket[0];
    for (size_t i = 1; i < bucket.size(); ++i) {
      const Event& cand = pool_[bucket[i]];
      const Event& cur = pool_[best];
      if (cand.at < cur.at || (cand.at == cur.at && cand.seq < cur.seq)) {
        best = bucket[i];
      }
    }
  }
  if (!overflow_.empty()) {
    // The overflow top competes directly with the ring minimum; no draining.
    // (An overflow event whose bucket has drifted inside the window just
    // keeps firing from the heap — correct either way.)
    const OverflowEntry& top = overflow_.front();
    if (best == kNpos || top.at < pool_[best].at ||
        (top.at == pool_[best].at && top.seq < pool_[best].seq)) {
      best = top.slot;
    }
  }
  return best;
}

bool Simulator::Step() {
  const uint32_t slot = FindEarliest();
  if (slot == kNpos) {
    return false;
  }
  Event& ev = pool_[slot];
  const SimTime at = ev.at;
  // Detach before invoking: move the closure out (no copy — the old engine
  // copied the whole std::function off the heap top per event), unlink, and
  // retire the slot so the callback can freely schedule new events into it
  // and a self-Cancel from inside the callback is a clean no-op.
  EventFn fn = std::move(ev.fn);
  if (ev.state == SlotState::kInRing) {
    RemoveFromRing(slot);
  } else {
    // FindEarliest only ever surfaces the overflow *top*.
    PopOverflowTop();
  }
  RetireSlot(slot);
  --pending_;
  if (auditor_ != nullptr) {
    auditor_->OnEventFired(now_, at);
  } else {
    MIMDRAID_CHECK_GE(at, now_);
  }
  now_ = at;
  // Commit the cursor in lockstep with the clock: every still-pending event
  // has at >= now_, hence bucket >= BucketOf(now_).
  const int64_t now_bucket = BucketOf(now_);
  if (cur_bucket_ < now_bucket) {
    cur_bucket_ = now_bucket;
  }
  ++events_fired_;
  fn();
  return true;
}

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RunUntil(SimTime deadline) {
  MIMDRAID_CHECK_GE(deadline, now_);
  for (;;) {
    // Peek: FindEarliest skips cancelled work entirely (Cancel unlinks
    // eagerly), so a cancelled event exactly at `deadline` can never drag
    // now_ forward — the old DropCancelledTop hazard class is structurally
    // gone, and the pinning test watches it stays that way.
    const uint32_t slot = FindEarliest();
    if (slot == kNpos || pool_[slot].at > deadline) {
      now_ = deadline;
      return;
    }
    Step();
  }
}

}  // namespace mimdraid
