#include "src/sim/simulator.h"

#include <utility>

#include "src/sim/auditor.h"
#include "src/util/check.h"

namespace mimdraid {

EventId Simulator::ScheduleAt(SimTime at, std::function<void()> fn) {
  if (auditor_ != nullptr) {
    auditor_->OnEventScheduled(now_, at);
  } else {
    MIMDRAID_CHECK_GE(at, now_);
  }
  const uint64_t seq = next_seq_++;
  // seq doubles as the event id: unique and monotonically increasing.
  const EventId id(seq);
  heap_.push(Event{at, seq, id, std::move(fn)});
  pending_ids_.insert(id);
  return id;
}

EventId Simulator::ScheduleAfter(SimDuration delay, std::function<void()> fn) {
  MIMDRAID_CHECK_GE(delay, SimDuration(0));
  return ScheduleAt(now_ + delay, std::move(fn));
}

bool Simulator::Cancel(EventId id) {
  // Only a still-pending id may enter the lazy-deletion set: a fired (or
  // already-cancelled, or never-issued) id has no heap entry left to skip,
  // and inserting it would corrupt the bookkeeping forever.
  if (pending_ids_.erase(id) == 0) {
    return false;
  }
  cancelled_.insert(id);
  return true;
}

bool Simulator::DropCancelledTop() {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) {
      return true;
    }
    cancelled_.erase(it);
    heap_.pop();
  }
  return false;
}

bool Simulator::Step() {
  if (!DropCancelledTop()) {
    return false;
  }
  Event ev = heap_.top();
  heap_.pop();
  pending_ids_.erase(ev.id);
  if (auditor_ != nullptr) {
    auditor_->OnEventFired(now_, ev.at);
  } else {
    MIMDRAID_CHECK_GE(ev.at, now_);
  }
  now_ = ev.at;
  ++events_fired_;
  ev.fn();
  return true;
}

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RunUntil(SimTime deadline) {
  MIMDRAID_CHECK_GE(deadline, now_);
  for (;;) {
    if (!DropCancelledTop() || heap_.top().at > deadline) {
      now_ = deadline;
      return;
    }
    Step();
  }
}

}  // namespace mimdraid
