// Discrete-event simulation core.
//
// The entire MimdRAID stack runs on simulated time: disks, schedulers, the
// array controller, and workload drivers all schedule callbacks on a single
// Simulator instance. This mirrors the paper's "integrated simulator"
// (Section 3.1), whose motivation was to replace real I/O time and idle time
// with simulated time.
//
// Events are totally ordered by (timestamp, insertion sequence), so two
// events at the same instant fire in scheduling order and runs are
// deterministic.
//
// Engine layout (ISSUE 8, fleet-scale overhaul). Events live in a pooled
// slab and are indexed by a calendar queue: a ring of fixed-width time
// buckets covering a sliding near-future window, with a binary-heap overflow
// for events beyond the horizon. The steady path — schedule, fire — is a
// pool-slot reuse plus a bucket append/scan: no allocation (the callback
// lives in the event's inline buffer, see src/util/inline_fn.h) and no
// rebalancing. Cancel is eager: a ring event is unlinked from its bucket and
// its slot recycled immediately; an overflow event has its callback (and
// everything the closure kept alive) destroyed on the spot, leaving only a
// 24-byte tombstone that compaction sweeps once tombstones outnumber live
// entries. PendingEvents() is an exact counter throughout.
#ifndef MIMDRAID_SRC_SIM_SIMULATOR_H_
#define MIMDRAID_SRC_SIM_SIMULATOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/util/inline_fn.h"
#include "src/util/time.h"

namespace mimdraid {

class InvariantAuditor;

class Simulator {
 public:
  // Inline capacity of an event callback. Sized for the engine's largest
  // steady-state closure (DriveSet's command-retry lambda, which carries a
  // CommandDoneFn); bigger captures still work via InlineFn's heap fallback.
  using EventFn = InlineFn<void(), 120>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `fn` to run at absolute simulated time `at` (>= Now()).
  // Returns an id usable with Cancel().
  EventId ScheduleAt(SimTime at, EventFn fn);

  // Schedules `fn` to run `delay` from now.
  EventId ScheduleAfter(SimDuration delay, EventFn fn);

  // Cancels a pending event. Cancelling an already-fired or already-cancelled
  // event is a harmless no-op; returns whether the event was still pending
  // (false for fired, cancelled, or never-issued ids). The result is
  // [[nodiscard]]: the PR 2 livelock class started with a caller assuming a
  // Cancel it never checked had won the race against the event firing.
  // Cancellation releases the callback eagerly — the closure and everything
  // it captures are destroyed before Cancel returns, never parked until the
  // event's deadline would have come up.
  [[nodiscard]] bool Cancel(EventId id);

  // Runs events until the queue is empty.
  void Run();

  // Runs events with timestamp <= deadline, then sets Now() to deadline
  // (if the queue drained earlier) so subsequent scheduling is relative to it.
  void RunUntil(SimTime deadline);

  // Fires the single earliest event. Returns false if the queue is empty.
  bool Step();

  // Number of pending (non-cancelled, non-fired) events.
  size_t PendingEvents() const { return pending_; }

  // Total events fired since construction (for tests / sanity checks).
  uint64_t events_fired() const { return events_fired_; }

  // Attaches a runtime invariant auditor (src/sim/auditor.h); nullptr
  // detaches. Borrowed, must outlive the simulator. With an auditor attached,
  // the auditor owns event-time monotonicity enforcement (its default
  // handler aborts exactly like the built-in checks it replaces).
  void set_auditor(InvariantAuditor* auditor) { auditor_ = auditor; }
  InvariantAuditor* auditor() const { return auditor_; }

  // Test-only backdoor: warps the clock without firing events, so tests can
  // seed an event-ordering violation and assert the auditor catches it.
  void CorruptClockForTest(SimTime t) { now_ = t; }

  // --- Test-only introspection of engine storage (regression coverage for
  // the cancel-churn retention class; see sim_test.cc). ---
  // Event slots ever allocated (live + free-listed). Bounded by the peak
  // number of simultaneously pending events, not by throughput.
  size_t EventSlotsForTest() const { return pool_.size(); }
  // Far-future heap entries, live + tombstones. Compaction keeps this within
  // a small multiple of the live count.
  size_t OverflowEntriesForTest() const { return overflow_.size(); }

 private:
  // Calendar ring geometry: kNumBuckets buckets of 2^kBucketShift µs each.
  // With 64 µs buckets the ring spans a 65.5 ms near-future window — several
  // disk service times — so virtually every I/O-path event takes the O(1)
  // ring route; only long timers (scrub ticks, watchdogs, reliability-scale
  // events) touch the overflow heap.
  static constexpr int kBucketShift = 6;
  static constexpr uint32_t kNumBuckets = 1024;  // power of two
  static constexpr uint32_t kBucketMask = kNumBuckets - 1;
  static constexpr uint32_t kNpos = UINT32_MAX;

  enum class SlotState : uint8_t { kFree, kInRing, kInOverflow };

  struct Event {
    SimTime at;
    uint64_t seq = 0;   // global tie-break: FIFO among same-time events
    uint32_t gen = 1;   // id generation; bumped every time the slot retires
    SlotState state = SlotState::kFree;
    uint32_t ring_pos = 0;  // index within its bucket while kInRing
    EventFn fn;
  };

  // Overflow heap entry. (at, seq) orders it; `slot`+`seq` identify the pool
  // event, and a mismatch (slot retired or reused) marks a tombstone.
  struct OverflowEntry {
    SimTime at;
    uint64_t seq;
    uint32_t slot;
  };
  struct OverflowLater {
    bool operator()(const OverflowEntry& a, const OverflowEntry& b) const {
      if (a.at != b.at) {
        return a.at > b.at;
      }
      return a.seq > b.seq;
    }
  };

  static int64_t BucketOf(SimTime at) { return at.us() >> kBucketShift; }
  static EventId IdFor(uint32_t slot, uint32_t gen) {
    return EventId((static_cast<uint64_t>(gen) << 32) | slot);
  }

  uint32_t AllocSlot();
  void RetireSlot(uint32_t slot);
  void InsertIntoRing(uint32_t slot, int64_t bucket_abs);
  void RemoveFromRing(uint32_t slot);
  void PopOverflowTop();
  void CompactOverflowIfStale();
  // Earliest live event (ring minimum vs overflow top); kNpos when no event
  // is pending. Peek-only: the event stays queued and the cursor does not
  // move — Step() detaches the event and commits the cursor with the clock.
  uint32_t FindEarliest();

  SimTime now_;
  InvariantAuditor* auditor_ = nullptr;
  uint64_t next_seq_ = 1;
  size_t pending_ = 0;
  uint64_t events_fired_ = 0;

  std::vector<Event> pool_;
  std::vector<uint32_t> free_slots_;

  // Calendar ring: bucket i holds events with BucketOf(at) ≡ i (mod
  // kNumBuckets) inside the window [cur_bucket_, cur_bucket_ + kNumBuckets).
  std::vector<uint32_t> ring_[kNumBuckets];
  uint64_t occupied_[kNumBuckets / 64] = {};
  int64_t cur_bucket_ = 0;
  size_t ring_count_ = 0;

  // Beyond-horizon events: min-heap over (at, seq) via std::push_heap.
  std::vector<OverflowEntry> overflow_;
  size_t overflow_dead_ = 0;
};

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_SIM_SIMULATOR_H_
