// Discrete-event simulation core.
//
// The entire MimdRAID stack runs on simulated time: disks, schedulers, the
// array controller, and workload drivers all schedule callbacks on a single
// Simulator instance. This mirrors the paper's "integrated simulator"
// (Section 3.1), whose motivation was to replace real I/O time and idle time
// with simulated time.
//
// Events are totally ordered by (timestamp, insertion sequence), so two
// events at the same instant fire in scheduling order and runs are
// deterministic.
#ifndef MIMDRAID_SRC_SIM_SIMULATOR_H_
#define MIMDRAID_SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/util/time.h"

namespace mimdraid {

class InvariantAuditor;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `fn` to run at absolute simulated time `at` (>= Now()).
  // Returns an id usable with Cancel().
  EventId ScheduleAt(SimTime at, std::function<void()> fn);

  // Schedules `fn` to run `delay` from now.
  EventId ScheduleAfter(SimDuration delay, std::function<void()> fn);

  // Cancels a pending event. Cancelling an already-fired or already-cancelled
  // event is a harmless no-op; returns whether the event was still pending
  // (false for fired, cancelled, or never-issued ids). The result is
  // [[nodiscard]]: the PR 2 livelock class started with a caller assuming a
  // Cancel it never checked had won the race against the event firing.
  [[nodiscard]] bool Cancel(EventId id);

  // Runs events until the queue is empty.
  void Run();

  // Runs events with timestamp <= deadline, then sets Now() to deadline
  // (if the queue drained earlier) so subsequent scheduling is relative to it.
  void RunUntil(SimTime deadline);

  // Fires the single earliest event. Returns false if the queue is empty.
  bool Step();

  // Number of pending (non-cancelled, non-fired) events.
  size_t PendingEvents() const { return pending_ids_.size(); }

  // Total events fired since construction (for tests / sanity checks).
  uint64_t events_fired() const { return events_fired_; }

  // Attaches a runtime invariant auditor (src/sim/auditor.h); nullptr
  // detaches. Borrowed, must outlive the simulator. With an auditor attached,
  // the auditor owns event-time monotonicity enforcement (its default
  // handler aborts exactly like the built-in checks it replaces).
  void set_auditor(InvariantAuditor* auditor) { auditor_ = auditor; }
  InvariantAuditor* auditor() const { return auditor_; }

  // Test-only backdoor: warps the clock without firing events, so tests can
  // seed an event-ordering violation and assert the auditor catches it.
  void CorruptClockForTest(SimTime t) { now_ = t; }

 private:
  struct Event {
    SimTime at;
    uint64_t seq;  // tie-break: FIFO among same-time events
    EventId id;
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) {
        return a.at > b.at;
      }
      return a.seq > b.seq;
    }
  };

  // Pops cancelled entries off the top of the heap until a live event (or
  // nothing) remains; the single owner of the cancelled-set bookkeeping.
  // Returns whether heap_.top() is a live event.
  bool DropCancelledTop();

  SimTime now_;
  InvariantAuditor* auditor_ = nullptr;
  uint64_t next_seq_ = 1;
  std::priority_queue<Event, std::vector<Event>, EventLater> heap_;
  // Ids scheduled but neither fired nor cancelled. Membership is what makes
  // Cancel() on a fired id a true no-op and PendingEvents() exact.
  std::unordered_set<EventId> pending_ids_;
  // Lazy-deletion set: cancelled ids are skipped when popped.
  std::unordered_set<EventId> cancelled_;
  uint64_t events_fired_ = 0;
};

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_SIM_SIMULATOR_H_
