#include "src/stats/estimate.h"

#include <cmath>
#include <limits>

#include "src/util/check.h"

namespace mimdraid {

double NormalQuantile(double p) {
  MIMDRAID_CHECK_GT(p, 0.0);
  MIMDRAID_CHECK_LT(p, 1.0);
  // Acklam's piecewise rational approximation to the probit function.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  static constexpr double p_low = 0.02425;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - p_low) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

double ChiSquareQuantile(double p, double dof) {
  MIMDRAID_CHECK_GT(dof, 0.0);
  const double z = NormalQuantile(p);
  // Wilson–Hilferty: (X/k)^(1/3) is approximately normal with mean
  // 1 - 2/(9k) and variance 2/(9k).
  const double h = 2.0 / (9.0 * dof);
  const double t = 1.0 - h + z * std::sqrt(h);
  return dof * t * t * t;
}

IntervalEstimate ExponentialMeanEstimate(double total_hours, uint64_t events,
                                         double confidence) {
  MIMDRAID_CHECK_GT(total_hours, 0.0);
  MIMDRAID_CHECK_GT(confidence, 0.0);
  MIMDRAID_CHECK_LT(confidence, 1.0);
  const double alpha = 1.0 - confidence;
  IntervalEstimate e;
  const double events_d = static_cast<double>(events);
  e.lo = 2.0 * total_hours /
         ChiSquareQuantile(1.0 - alpha / 2.0, 2.0 * events_d + 2.0);
  if (events == 0) {
    e.point = std::numeric_limits<double>::infinity();
    e.hi = std::numeric_limits<double>::infinity();
    return e;
  }
  e.point = total_hours / events_d;
  e.hi = 2.0 * total_hours / ChiSquareQuantile(alpha / 2.0, 2.0 * events_d);
  return e;
}

IntervalEstimate EventsPerYearEstimate(double total_hours, uint64_t events,
                                       double confidence) {
  const IntervalEstimate mean =
      ExponentialMeanEstimate(total_hours, events, confidence);
  IntervalEstimate rate;
  // The rate interval is the reciprocal of the mean-time interval (bounds
  // swap); 1/inf reads as a clean zero.
  rate.point = kHoursPerYear / mean.point;
  rate.lo = kHoursPerYear / mean.hi;
  rate.hi = kHoursPerYear / mean.lo;
  return rate;
}

}  // namespace mimdraid
