// Interval estimation for reliability experiments.
//
// The fleet Monte Carlo harness (src/rel) observes a total exposure time T
// (hours of simulated array operation, summed over trials) and a count L of
// data-loss events inside it. Under the renewal model the fleet simulator
// implements — the array restarts from a fresh state after every loss — the
// cycles are i.i.d. and the maximum-likelihood estimate of the mean time to
// data loss is simply T / L. That estimator is also censoring-aware: trials
// that reach the horizon without a loss still contribute their full observed
// hours to T, shrinking the estimate's bias toward optimism that a
// "completed cycles only" average would have.
//
// Confidence intervals come from the classic chi-square pivot for the
// exponential mean: with L events in exposure T, a (1-a) CI for the mean is
//
//     [ 2T / chi2_{1-a/2, 2L+2} ,  2T / chi2_{a/2, 2L} ]
//
// (the +2 degrees of freedom on the lower bound make the interval valid for
// the censored / "events counted in fixed exposure" regime, and give a
// finite lower bound even at L = 0, where the upper bound is infinite).
// Chi-square quantiles use the Wilson–Hilferty cube-root normal
// approximation, accurate to a fraction of a percent for the dof this
// subsystem encounters (2L with L >= a handful).
#ifndef MIMDRAID_SRC_STATS_ESTIMATE_H_
#define MIMDRAID_SRC_STATS_ESTIMATE_H_

#include <cstdint>

namespace mimdraid {

// A point estimate bracketed by a confidence interval. `hi` may be +inf
// (zero observed events bounds the mean only from below).
struct IntervalEstimate {
  double point = 0.0;
  double lo = 0.0;
  double hi = 0.0;
};

// Standard normal quantile (inverse CDF), Acklam's rational approximation
// (|relative error| < 1.2e-9 over (0, 1)). p must be in (0, 1).
double NormalQuantile(double p);

// Chi-square quantile via the Wilson–Hilferty transform. p in (0, 1),
// dof > 0.
double ChiSquareQuantile(double p, double dof);

// Mean time between events from total exposure `total_hours` containing
// `events` events, with a two-sided `confidence` interval (e.g. 0.95).
// events == 0 yields point = hi = +inf with a finite lower bound.
IntervalEstimate ExponentialMeanEstimate(double total_hours, uint64_t events,
                                         double confidence);

// Event rate per year from the same observation (events / total exposure),
// with the matching interval (reciprocal of the mean-time interval).
IntervalEstimate EventsPerYearEstimate(double total_hours, uint64_t events,
                                       double confidence);

// Hours per (Julian) year; the single conversion constant the reliability
// subsystem uses when quoting per-year rates.
inline constexpr double kHoursPerYear = 8766.0;

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_STATS_ESTIMATE_H_
