#include "src/stats/fault_stats.h"

#include <sstream>

namespace mimdraid {

std::string FaultRecoveryStats::Summary() const {
  std::ostringstream os;
  os << "faults seen:        media=" << media_errors_seen
     << " timeout=" << timeouts_seen << " disk-failed=" << disk_failed_seen
     << " (total " << TotalFaultsSeen() << ")\n";
  os << "recovery:           retries=" << retries_issued
     << " failovers=" << failovers << " reconstructions=" << reconstructions
     << " repairs-queued=" << repairs_queued << "\n";
  os << "surfaced:           unrecoverable=" << unrecoverable_completions
     << " propagations-abandoned=" << propagations_abandoned
     << " rebuild-fragments-lost=" << rebuild_fragments_lost << "\n";
  os << "disk management:    auto-failures=" << auto_disk_failures
     << " spares-promoted=" << spares_promoted
     << " spares-rejected=" << spare_rejected
     << " spare-rebuilds-done=" << spare_rebuilds_completed << "\n";
  os << "scrubber:           reads=" << scrub_reads
     << " repairs=" << scrub_repairs
     << " sweeps=" << scrub_sweeps_completed
     << " sectors=" << scrub_sectors_read
     << " last-sweep-coverage=" << scrub_last_sweep_coverage << "\n";
  return os.str();
}

}  // namespace mimdraid
