// Fault / recovery counters exported by the array controllers.
//
// One struct shared by ArrayController and Raid5Controller so chaos tests
// and CI artifacts can reconcile what the FaultInjector injected against what
// the recovery machinery did about it: every fault must end up retried,
// failed-over, reconstructed, repaired, or surfaced as kUnrecoverable —
// never silently dropped (the InvariantAuditor enforces the same rule
// per-operation at runtime).
#ifndef MIMDRAID_SRC_STATS_FAULT_STATS_H_
#define MIMDRAID_SRC_STATS_FAULT_STATS_H_

#include <cstdint>
#include <string>

namespace mimdraid {

struct FaultRecoveryStats {
  // Fault classes observed at the controller (per completed disk sub-op).
  uint64_t media_errors_seen = 0;
  uint64_t timeouts_seen = 0;
  uint64_t disk_failed_seen = 0;

  // Recovery actions.
  uint64_t retries_issued = 0;        // same target, after backoff
  uint64_t failovers = 0;             // alternate replica / mirror disk
  uint64_t reconstructions = 0;       // RAID-5 peer reconstruction
  uint64_t repairs_queued = 0;        // bad replica rewritten from a good one
  uint64_t unrecoverable_completions = 0;  // redundancy exhausted, surfaced

  // Automatic failure handling.
  uint64_t auto_disk_failures = 0;    // error threshold tripped
  uint64_t spares_promoted = 0;
  // Distinct pooled spares found incompatible with a failed slot at
  // promotion time (too small for the used span, or geometry mismatch).
  // Each spare counts at most once however many later promotion attempts
  // re-skip it; it stays pooled for slots it does fit.
  uint64_t spare_rejected = 0;
  uint64_t spare_rebuilds_completed = 0;
  uint64_t propagations_abandoned = 0;  // delayed write given up (disk dead)
  uint64_t rebuild_fragments_lost = 0;

  // Background scrubbing.
  uint64_t scrub_reads = 0;
  uint64_t scrub_repairs = 0;
  uint64_t scrub_sweeps_completed = 0;
  // Sectors of media actually verified by completed scrub reads (cumulative
  // over every sweep; a mirror sweep reads every live replica, so this can
  // exceed the logical dataset per sweep).
  uint64_t scrub_sectors_read = 0;
  // Coverage of the most recently *completed* sweep: sectors the sweep
  // issued over the sectors a fully-live array would have issued. 1.0 on a
  // healthy array; failed slots (replicas skipped) pull it below 1.0. Zero
  // until the first sweep completes.
  double scrub_last_sweep_coverage = 0.0;

  uint64_t TotalFaultsSeen() const {
    return media_errors_seen + timeouts_seen + disk_failed_seen;
  }

  // Multi-line human-readable summary (CI job artifact format).
  std::string Summary() const;
};

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_STATS_FAULT_STATS_H_
