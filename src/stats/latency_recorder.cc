#include "src/stats/latency_recorder.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace mimdraid {

double LatencyRecorder::PercentileUs(double q) const {
  MIMDRAID_CHECK_GE(q, 0.0);
  MIMDRAID_CHECK_LE(q, 1.0);
  if (samples_.empty()) {
    return 0.0;
  }
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

}  // namespace mimdraid
