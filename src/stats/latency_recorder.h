// Latency and throughput accounting for experiments.
#ifndef MIMDRAID_SRC_STATS_LATENCY_RECORDER_H_
#define MIMDRAID_SRC_STATS_LATENCY_RECORDER_H_

#include <cstdint>
#include <vector>

#include "src/util/summary.h"
#include "src/util/time.h"

namespace mimdraid {

// Records per-request response times; supports mean and percentile queries.
class LatencyRecorder {
 public:
  void Record(double latency_us) {
    summary_.Add(latency_us);
    samples_.push_back(latency_us);
    sorted_ = false;
  }

  uint64_t count() const { return summary_.count(); }
  double MeanUs() const { return summary_.mean(); }
  double MeanMs() const { return summary_.mean() / 1000.0; }
  double StddevUs() const { return summary_.stddev(); }
  double MaxUs() const { return summary_.max(); }

  // q in [0, 1]; e.g. 0.5 = median, 0.99 = P99.
  double PercentileUs(double q) const;

  void Reset() {
    summary_ = Summary();
    samples_.clear();
    sorted_ = false;
  }

 private:
  Summary summary_;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

// Completed-operations-per-second over an observation window. The window
// opens at Start(); querying Iops() before Start() returns 0 instead of
// silently measuring from simulated time zero (which would inflate or
// deflate the rate depending on when the caller began counting).
class ThroughputMeter {
 public:
  void Start(SimTime now) {
    start_us_ = now;
    completed_ = 0;
    started_ = true;
  }
  void RecordCompletion() { ++completed_; }
  uint64_t completed() const { return completed_; }
  bool started() const { return started_; }

  double Iops(SimTime now) const {
    if (!started_) {
      return 0.0;
    }
    const double secs = SecondsFromUs(now - start_us_);
    return secs <= 0.0 ? 0.0 : static_cast<double>(completed_) / secs;
  }

 private:
  SimTime start_us_;
  uint64_t completed_ = 0;
  bool started_ = false;
};

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_STATS_LATENCY_RECORDER_H_
