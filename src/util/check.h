// Lightweight assertion macros for invariant enforcement.
//
// CHECK-class macros are active in all build types: a violated invariant in a
// simulator silently corrupts results, so we always pay for the branch.
#ifndef MIMDRAID_SRC_UTIL_CHECK_H_
#define MIMDRAID_SRC_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace mimdraid {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace mimdraid

#define MIMDRAID_CHECK(expr)                             \
  do {                                                   \
    if (!(expr)) {                                       \
      ::mimdraid::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                    \
  } while (0)

#define MIMDRAID_CHECK_LE(a, b) MIMDRAID_CHECK((a) <= (b))
#define MIMDRAID_CHECK_LT(a, b) MIMDRAID_CHECK((a) < (b))
#define MIMDRAID_CHECK_GE(a, b) MIMDRAID_CHECK((a) >= (b))
#define MIMDRAID_CHECK_GT(a, b) MIMDRAID_CHECK((a) > (b))
#define MIMDRAID_CHECK_EQ(a, b) MIMDRAID_CHECK((a) == (b))
#define MIMDRAID_CHECK_NE(a, b) MIMDRAID_CHECK((a) != (b))

#endif  // MIMDRAID_SRC_UTIL_CHECK_H_
