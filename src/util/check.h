// Assertion macros for invariant enforcement.
//
// CHECK-class macros are active in all build types: a violated invariant in a
// simulator silently corrupts results, so we always pay for the branch.
// DCHECK-class macros compile to nothing in NDEBUG builds (the default
// RelWithDebInfo defines NDEBUG); use them for checks that are too hot for
// release or that duplicate a cheaper CHECK upstream.
//
// Binary comparison macros report both operand values on failure:
//
//   MIMDRAID_CHECK_LE(queue.size(), limit);
//   // -> CHECK failed at foo.cc:42: queue.size() <= limit (5 vs 3)
//
// Every macro is stream-capable for extra context:
//
//   MIMDRAID_CHECK_EQ(a, b) << "disk " << disk << " out of sync";
#ifndef MIMDRAID_SRC_UTIL_CHECK_H_
#define MIMDRAID_SRC_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <string>

namespace mimdraid {

// Kept for callers that want to fail outside the macros.
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

namespace check_internal {

// Accumulates streamed context after a failed check and aborts when the full
// expression ends. The temporary's destructor is the abort point, so
// `MIMDRAID_CHECK(x) << "ctx"` prints "ctx" before dying.
class FailureStream {
 public:
  FailureStream(const char* file, int line, const std::string& message) {
    // Trailing space separates the message from any streamed context.
    stream_ << "CHECK failed at " << file << ":" << line << ": " << message
            << " ";
  }
  FailureStream(const FailureStream&) = delete;
  FailureStream& operator=(const FailureStream&) = delete;

  [[noreturn]] ~FailureStream() {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::abort();
  }

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

// Swallows the stream expression so the macro has type void (usable in a
// ternary). operator& binds tighter than <<'s left-to-right chain end.
struct Voidifier {
  void operator&(std::ostream&) const {}
};

// Prints a value if it has an operator<<, a placeholder otherwise (so checks
// on user types without printers still compile).
template <typename T>
void PrintOperand(std::ostream& os, const T& v) {
  if constexpr (requires(std::ostream& o, const T& t) { o << t; }) {
    os << v;
  } else {
    os << "<unprintable>";
  }
}

// On comparison failure, builds the "expr (lhs vs rhs)" message. Never
// returns nullptr from this path; the macro only calls it on failure. The
// string is intentionally leaked — we are about to abort.
template <typename A, typename B>
std::string* MakeCheckOpString(const A& a, const B& b, const char* expr_text) {
  std::ostringstream os;
  os << expr_text << " (";
  PrintOperand(os, a);
  os << " vs ";
  PrintOperand(os, b);
  os << ")";
  return new std::string(os.str());
}

// Comparison functors: keeping the comparison in a template (instead of
// textual macro pasting at every call site) evaluates each operand exactly
// once while preserving the operands for the failure message.
// NOLINTBEGIN(bugprone-macro-parentheses)
#define MIMDRAID_DEFINE_CHECK_OP_IMPL(name, op)                     \
  template <typename A, typename B>                                 \
  inline std::string* name(const A& a, const B& b,                  \
                           const char* expr_text) {                 \
    if (a op b) [[likely]] {                                        \
      return nullptr;                                               \
    }                                                               \
    return MakeCheckOpString(a, b, expr_text);                      \
  }
// NOLINTEND(bugprone-macro-parentheses)
MIMDRAID_DEFINE_CHECK_OP_IMPL(CheckLeImpl, <=)
MIMDRAID_DEFINE_CHECK_OP_IMPL(CheckLtImpl, <)
MIMDRAID_DEFINE_CHECK_OP_IMPL(CheckGeImpl, >=)
MIMDRAID_DEFINE_CHECK_OP_IMPL(CheckGtImpl, >)
MIMDRAID_DEFINE_CHECK_OP_IMPL(CheckEqImpl, ==)
MIMDRAID_DEFINE_CHECK_OP_IMPL(CheckNeImpl, !=)
#undef MIMDRAID_DEFINE_CHECK_OP_IMPL

}  // namespace check_internal
}  // namespace mimdraid

#define MIMDRAID_CHECK(expr)                                          \
  (expr) ? (void)0                                                    \
         : ::mimdraid::check_internal::Voidifier() &                  \
               ::mimdraid::check_internal::FailureStream(             \
                   __FILE__, __LINE__, #expr)                         \
                   .stream()

// The while-loop runs at most once: a non-null result means the check failed
// and the FailureStream aborts at the end of the statement. Written as a loop
// (rather than `if`) so streamed context works and dangling-else is safe.
#define MIMDRAID_CHECK_OP_(impl, a, b, expr_text)                     \
  while (::std::string* mimdraid_check_msg =                          \
             ::mimdraid::check_internal::impl((a), (b), expr_text))   \
  ::mimdraid::check_internal::FailureStream(__FILE__, __LINE__,       \
                                            *mimdraid_check_msg)      \
      .stream()

#define MIMDRAID_CHECK_LE(a, b) \
  MIMDRAID_CHECK_OP_(CheckLeImpl, a, b, #a " <= " #b)
#define MIMDRAID_CHECK_LT(a, b) \
  MIMDRAID_CHECK_OP_(CheckLtImpl, a, b, #a " < " #b)
#define MIMDRAID_CHECK_GE(a, b) \
  MIMDRAID_CHECK_OP_(CheckGeImpl, a, b, #a " >= " #b)
#define MIMDRAID_CHECK_GT(a, b) \
  MIMDRAID_CHECK_OP_(CheckGtImpl, a, b, #a " > " #b)
#define MIMDRAID_CHECK_EQ(a, b) \
  MIMDRAID_CHECK_OP_(CheckEqImpl, a, b, #a " == " #b)
#define MIMDRAID_CHECK_NE(a, b) \
  MIMDRAID_CHECK_OP_(CheckNeImpl, a, b, #a " != " #b)

// DCHECK variants: in debug builds they are the CHECKs above; in NDEBUG
// builds the `while (false)` keeps the operands type-checked (and any
// streamed context compiling) without evaluating them.
#ifndef NDEBUG
#define MIMDRAID_DCHECK(expr) MIMDRAID_CHECK(expr)
#define MIMDRAID_DCHECK_LE(a, b) MIMDRAID_CHECK_LE(a, b)
#define MIMDRAID_DCHECK_LT(a, b) MIMDRAID_CHECK_LT(a, b)
#define MIMDRAID_DCHECK_GE(a, b) MIMDRAID_CHECK_GE(a, b)
#define MIMDRAID_DCHECK_GT(a, b) MIMDRAID_CHECK_GT(a, b)
#define MIMDRAID_DCHECK_EQ(a, b) MIMDRAID_CHECK_EQ(a, b)
#define MIMDRAID_DCHECK_NE(a, b) MIMDRAID_CHECK_NE(a, b)
#else
#define MIMDRAID_DCHECK(expr) \
  while (false) MIMDRAID_CHECK(expr)
#define MIMDRAID_DCHECK_LE(a, b) \
  while (false) MIMDRAID_CHECK_LE(a, b)
#define MIMDRAID_DCHECK_LT(a, b) \
  while (false) MIMDRAID_CHECK_LT(a, b)
#define MIMDRAID_DCHECK_GE(a, b) \
  while (false) MIMDRAID_CHECK_GE(a, b)
#define MIMDRAID_DCHECK_GT(a, b) \
  while (false) MIMDRAID_CHECK_GT(a, b)
#define MIMDRAID_DCHECK_EQ(a, b) \
  while (false) MIMDRAID_CHECK_EQ(a, b)
#define MIMDRAID_DCHECK_NE(a, b) \
  while (false) MIMDRAID_CHECK_NE(a, b)
#endif

#endif  // MIMDRAID_SRC_UTIL_CHECK_H_
