// Minimal command-line flag parsing for the example tools.
//
// Supports --name=value and --name value forms, plus bare --name for
// booleans. Unknown flags are reported; positional arguments are collected.
#ifndef MIMDRAID_SRC_UTIL_FLAGS_H_
#define MIMDRAID_SRC_UTIL_FLAGS_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace mimdraid {

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        positional_.push_back(std::move(arg));
        continue;
      }
      arg = arg.substr(2);
      const size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && argv[i + 1][0] != '-') {
        values_[arg] = argv[++i];
      } else {
        values_[arg] = "true";
      }
    }
  }

  bool Has(const std::string& name) const { return values_.contains(name); }

  std::string GetString(const std::string& name,
                        const std::string& def) const {
    auto it = values_.find(name);
    return it == values_.end() ? def : it->second;
  }

  int64_t GetInt(const std::string& name, int64_t def) const {
    auto it = values_.find(name);
    return it == values_.end() ? def : std::strtoll(it->second.c_str(),
                                                    nullptr, 10);
  }

  double GetDouble(const std::string& name, double def) const {
    auto it = values_.find(name);
    return it == values_.end() ? def : std::strtod(it->second.c_str(), nullptr);
  }

  bool GetBool(const std::string& name, bool def) const {
    auto it = values_.find(name);
    if (it == values_.end()) {
      return def;
    }
    return it->second != "false" && it->second != "0";
  }

  const std::vector<std::string>& positional() const { return positional_; }

  // All parsed flag names (for unknown-flag checks).
  std::vector<std::string> Names() const {
    std::vector<std::string> out;
    for (const auto& [k, v] : values_) {
      (void)v;
      out.push_back(k);
    }
    return out;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_UTIL_FLAGS_H_
