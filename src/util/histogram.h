// Fixed-bucket latency histogram for cheap distribution summaries when
// storing every sample (LatencyRecorder) would be wasteful.
#ifndef MIMDRAID_SRC_UTIL_HISTOGRAM_H_
#define MIMDRAID_SRC_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "src/util/check.h"

namespace mimdraid {

class Histogram {
 public:
  // Uniform buckets of `bucket_width` covering [0, bucket_width * buckets);
  // larger samples land in the overflow bucket.
  Histogram(double bucket_width, size_t buckets)
      : width_(bucket_width), counts_(buckets + 1, 0) {
    MIMDRAID_CHECK_GT(bucket_width, 0.0);
    MIMDRAID_CHECK_GT(buckets, 0u);
  }

  void Add(double value) {
    ++total_;
    if (value < 0.0) {
      value = 0.0;
    }
    // Clamp in floating point before the cast: for samples beyond
    // SIZE_MAX * width_ the double -> size_t conversion itself is undefined
    // behaviour (UBSan float-cast-overflow), so the comparison must happen
    // on the double.
    const size_t overflow_bucket = counts_.size() - 1;
    const double scaled = value / width_;
    const size_t bucket = scaled >= static_cast<double>(overflow_bucket)
                              ? overflow_bucket
                              : static_cast<size_t>(scaled);
    ++counts_[bucket];
  }

  uint64_t total() const { return total_; }
  uint64_t overflow() const { return counts_.back(); }

  // Upper edge of the bucket containing quantile q (0..1].
  double QuantileUpperBound(double q) const {
    MIMDRAID_CHECK_GT(q, 0.0);
    MIMDRAID_CHECK_LE(q, 1.0);
    if (total_ == 0) {
      return 0.0;
    }
    // The smallest meaningful rank is the first sample: q*total rounds to 0
    // for tiny q, and a zero target would match the (possibly empty) first
    // bucket and report a bogus low quantile.
    uint64_t target =
        static_cast<uint64_t>(q * static_cast<double>(total_) + 0.5);
    if (target == 0) {
      target = 1;
    }
    uint64_t seen = 0;
    for (size_t i = 0; i < counts_.size(); ++i) {
      seen += counts_[i];
      if (seen >= target) {
        return width_ * static_cast<double>(i + 1);
      }
    }
    return width_ * static_cast<double>(counts_.size());
  }

  const std::vector<uint64_t>& counts() const { return counts_; }

 private:
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_UTIL_HISTOGRAM_H_
