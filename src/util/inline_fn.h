// Small-buffer move-only callable, the engine's replacement for
// std::function on the event hot path.
//
// Motivation (ISSUE 8): every simulated disk operation used to pay two heap
// allocations — one when std::function captured the completion closure at
// schedule time and another when Simulator::Step copied the event off the
// binary heap. InlineFn stores the callable in an inline buffer sized by the
// owner (the simulator's event pool, SimDisk's completion slot), so the
// steady-state schedule → fire cycle allocates nothing. Callables larger
// than the buffer still work: they fall back to a single heap allocation,
// exactly like std::function, and moving the wrapper then just steals the
// pointer.
//
// Differences from std::function, on purpose:
//   * move-only — completion callbacks are invoked exactly once (MDL001), so
//     nothing should ever need to copy one;
//   * no target_type()/target() RTTI;
//   * invoking an empty InlineFn is a checked failure, not std::bad_function_call.
#ifndef MIMDRAID_SRC_UTIL_INLINE_FN_H_
#define MIMDRAID_SRC_UTIL_INLINE_FN_H_

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "src/util/check.h"

namespace mimdraid {

template <typename Sig, size_t kInlineBytes = 64>
class InlineFn;  // primary template intentionally undefined

template <typename R, typename... Args, size_t kInlineBytes>
class InlineFn<R(Args...), kInlineBytes> {
 public:
  InlineFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFn> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor): callable adaptor
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      invoke_ = &InvokeInline<Fn>;
      manage_ = &ManageInline<Fn>;
    } else {
      // Oversized (or over-aligned) callable: one heap allocation, moved by
      // pointer steal afterwards.
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      invoke_ = &InvokeHeap<Fn>;
      manage_ = &ManageHeap<Fn>;
    }
  }

  InlineFn(InlineFn&& other) noexcept { MoveFrom(other); }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      MoveFrom(other);
    }
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { reset(); }

  // Shallow-const call, matching std::function: invoking through a const
  // wrapper is allowed even when the callable mutates its own captures.
  R operator()(Args... args) const {
    MIMDRAID_CHECK(invoke_ != nullptr);
    return invoke_(const_cast<unsigned char*>(buf_),
                   std::forward<Args>(args)...);
  }

  explicit operator bool() const { return invoke_ != nullptr; }

  // Destroys the held callable (and with it everything the closure captured);
  // the eager-release half of Simulator::Cancel.
  void reset() {
    if (manage_ != nullptr) {
      manage_(buf_, nullptr);
      invoke_ = nullptr;
      manage_ = nullptr;
    }
  }

 private:
  using InvokeFn = R (*)(unsigned char*, Args&&...);
  // dst == nullptr: destroy src in place. Otherwise: move-construct into dst's
  // buffer and destroy src.
  using ManageFn = void (*)(unsigned char* src, unsigned char* dst);

  template <typename Fn>
  static R InvokeInline(unsigned char* buf, Args&&... args) {
    return (*std::launder(reinterpret_cast<Fn*>(buf)))(
        std::forward<Args>(args)...);
  }

  template <typename Fn>
  static void ManageInline(unsigned char* src, unsigned char* dst) {
    Fn* f = std::launder(reinterpret_cast<Fn*>(src));
    if (dst != nullptr) {
      ::new (static_cast<void*>(dst)) Fn(std::move(*f));
    }
    f->~Fn();
  }

  template <typename Fn>
  static R InvokeHeap(unsigned char* buf, Args&&... args) {
    return (**std::launder(reinterpret_cast<Fn**>(buf)))(
        std::forward<Args>(args)...);
  }

  template <typename Fn>
  static void ManageHeap(unsigned char* src, unsigned char* dst) {
    Fn** slot = std::launder(reinterpret_cast<Fn**>(src));
    if (dst != nullptr) {
      ::new (static_cast<void*>(dst)) Fn*(*slot);
    } else {
      delete *slot;
    }
    // The Fn* itself is trivially destructible; nothing further to do.
  }

  void MoveFrom(InlineFn& other) noexcept {
    if (other.manage_ != nullptr) {
      other.manage_(other.buf_, buf_);
      invoke_ = other.invoke_;
      manage_ = other.manage_;
      other.invoke_ = nullptr;
      other.manage_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  InvokeFn invoke_ = nullptr;
  ManageFn manage_ = nullptr;
};

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_UTIL_INLINE_FN_H_
