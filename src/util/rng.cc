#include "src/util/rng.h"

#include <cmath>

#include "src/util/check.h"

namespace mimdraid {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64: used to expand a 64-bit seed into the 256-bit xoshiro state.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& w : state_) {
    w = SplitMix64(s);
  }
  // xoshiro must not start in the all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
    state_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformU64(uint64_t n) {
  MIMDRAID_CHECK_GT(n, 0u);
  // Lemire-style rejection: draw until the value falls in the largest
  // multiple of n representable in 64 bits.
  const uint64_t threshold = -n % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) {
      return r % n;
    }
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  MIMDRAID_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  UniformU64(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Exponential(double mean) {
  MIMDRAID_CHECK_GT(mean, 0.0);
  double u;
  do {
    u = UniformDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::Normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1;
  do {
    u1 = UniformDouble();
  } while (u1 <= 0.0);
  const double u2 = UniformDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return UniformDouble() < p;
}

Rng Rng::Fork() { return Rng(Next()); }

ZipfSampler::ZipfSampler(uint64_t n, double theta) : n_(n) {
  MIMDRAID_CHECK_GT(n, 0u);
  MIMDRAID_CHECK_GE(theta, 0.0);
  cdf_.resize(n);
  double sum = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = sum;
  }
  for (auto& c : cdf_) {
    c /= sum;
  }
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.UniformDouble();
  // First index whose CDF value exceeds u.
  uint64_t lo = 0;
  uint64_t hi = n_ - 1;
  while (lo < hi) {
    const uint64_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace mimdraid
