// Deterministic pseudo-random number generation for simulation.
//
// All stochastic components of the simulator draw from an explicitly seeded
// Rng so that every experiment is reproducible bit-for-bit. The core
// generator is xoshiro256++ (Blackman & Vigna), which is fast, has a 256-bit
// state, and passes BigCrush.
#ifndef MIMDRAID_SRC_UTIL_RNG_H_
#define MIMDRAID_SRC_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace mimdraid {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Raw 64 uniformly distributed bits.
  uint64_t Next();

  // Uniform in [0, n). n must be > 0. Uses rejection sampling (no modulo bias).
  uint64_t UniformU64(uint64_t n);

  // Uniform in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform in [0, 1).
  double UniformDouble();

  // Uniform in [lo, hi).
  double UniformDouble(double lo, double hi);

  // Exponentially distributed with the given mean (> 0).
  double Exponential(double mean);

  // Normally distributed (Box-Muller; consumes two uniforms per pair).
  double Normal(double mean, double stddev);

  // True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  // Splits off an independent stream (seeded from this stream's output).
  Rng Fork();

 private:
  uint64_t state_[4];
  // Cached second Box-Muller variate.
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

// Samples from a Zipf(theta) distribution over {0, ..., n-1}: rank r has
// probability proportional to 1/(r+1)^theta. Precomputes the CDF once, so
// sampling is O(log n). Used for hot-spot footprints in synthetic workloads.
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double theta);

  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  std::vector<double> cdf_;
};

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_UTIL_RNG_H_
