// Compile-time strong types for the quantities the simulator moves around.
//
// Motivation (ISSUE 6 / mimdraid-lint): the Simulator::Cancel and
// LruBlockCache bugs fixed in PR 5 were *dimension* and *lifecycle* errors a
// compiler could have rejected. These wrappers make the illegal states
// unrepresentable:
//
//   * SimTime      — an absolute instant, microseconds since simulation start.
//   * SimDuration  — a span of simulated time, microseconds.
//   * SlotId       — an array slot (drive position) index.
//   * BlockAddr    — a logical block address on one drive (512 B sectors).
//   * EventId      — a Simulator event handle; default-constructed == invalid.
//
// Only dimensionally valid arithmetic exists:
//
//   time + duration -> time        time - time     -> duration
//   duration +/- duration          duration * k, duration / k (dimensionless)
//   time + time                    -> does not compile
//   SlotId  <-> BlockAddr          -> does not compile (no conversions)
//
// All constructors are explicit and there are no implicit conversions to the
// underlying integers, so raw ints never silently cross a dimension boundary;
// unwrap with .us() / .value() / .raw() at the arithmetic-heavy leaves
// (geometry, timing) where plain integers win, and re-wrap at the API edge.
//
// Negative-compile coverage: tests/negative_compile/ proves the two headline
// rejections (SimTime + SimTime, SlotId -> BlockAddr) stay rejected.
#ifndef MIMDRAID_SRC_UTIL_STRONG_TYPES_H_
#define MIMDRAID_SRC_UTIL_STRONG_TYPES_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>

namespace mimdraid {

// A span of simulated time, in microseconds. Signed: backoff math and
// time-until-deadline computations legitimately go negative.
class SimDuration {
 public:
  constexpr SimDuration() = default;
  constexpr explicit SimDuration(int64_t us) : us_(us) {}

  static constexpr SimDuration Us(int64_t us) { return SimDuration(us); }

  constexpr int64_t us() const { return us_; }

  friend constexpr SimDuration operator+(SimDuration a, SimDuration b) {
    return SimDuration(a.us_ + b.us_);
  }
  friend constexpr SimDuration operator-(SimDuration a, SimDuration b) {
    return SimDuration(a.us_ - b.us_);
  }
  constexpr SimDuration operator-() const { return SimDuration(-us_); }

  constexpr SimDuration& operator+=(SimDuration o) {
    us_ += o.us_;
    return *this;
  }
  constexpr SimDuration& operator-=(SimDuration o) {
    us_ -= o.us_;
    return *this;
  }

  // Scaling by a dimensionless factor keeps the dimension. Integer factors
  // scale exactly; double factors truncate like the historical
  // static_cast<SimTime>(double) conversion did.
  friend constexpr SimDuration operator*(SimDuration d, int64_t k) {
    return SimDuration(d.us_ * k);
  }
  friend constexpr SimDuration operator*(int64_t k, SimDuration d) {
    return SimDuration(k * d.us_);
  }
  friend constexpr SimDuration operator*(SimDuration d, double k) {
    return SimDuration(static_cast<int64_t>(static_cast<double>(d.us_) * k));
  }
  friend constexpr SimDuration operator*(double k, SimDuration d) {
    return d * k;
  }
  friend constexpr SimDuration operator/(SimDuration d, int64_t k) {
    return SimDuration(d.us_ / k);
  }
  // Ratio of two spans is dimensionless.
  friend constexpr double Ratio(SimDuration a, SimDuration b) {
    return static_cast<double>(a.us_) / static_cast<double>(b.us_);
  }

  friend constexpr bool operator==(SimDuration a, SimDuration b) = default;
  friend constexpr auto operator<=>(SimDuration a, SimDuration b) = default;

 private:
  int64_t us_ = 0;
};

// An absolute instant of simulated time, microseconds since simulation start.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(int64_t us) : us_(us) {}
  // An instant is "start + span"; the explicit form reads naturally at call
  // sites like RunUntil(SimTime(UsFromSeconds(10.0))).
  constexpr explicit SimTime(SimDuration since_start)
      : us_(since_start.us()) {}

  static constexpr SimTime Us(int64_t us) { return SimTime(us); }

  constexpr int64_t us() const { return us_; }
  // The span from simulation start to this instant.
  constexpr SimDuration SinceStart() const { return SimDuration(us_); }

  friend constexpr SimTime operator+(SimTime t, SimDuration d) {
    return SimTime(t.us_ + d.us());
  }
  friend constexpr SimTime operator+(SimDuration d, SimTime t) {
    return t + d;
  }
  friend constexpr SimTime operator-(SimTime t, SimDuration d) {
    return SimTime(t.us_ - d.us());
  }
  friend constexpr SimDuration operator-(SimTime a, SimTime b) {
    return SimDuration(a.us_ - b.us_);
  }

  constexpr SimTime& operator+=(SimDuration d) {
    us_ += d.us();
    return *this;
  }
  constexpr SimTime& operator-=(SimDuration d) {
    us_ -= d.us();
    return *this;
  }

  friend constexpr bool operator==(SimTime a, SimTime b) = default;
  friend constexpr auto operator<=>(SimTime a, SimTime b) = default;

 private:
  int64_t us_ = 0;
};

// An array slot (drive position). Ordinal: comparison and ++ exist for
// iteration, but a SlotId never converts to or from a BlockAddr.
class SlotId {
 public:
  constexpr SlotId() = default;
  constexpr explicit SlotId(uint32_t v) : v_(v) {}

  constexpr uint32_t value() const { return v_; }

  constexpr SlotId& operator++() {
    ++v_;
    return *this;
  }

  friend constexpr bool operator==(SlotId a, SlotId b) = default;
  friend constexpr auto operator<=>(SlotId a, SlotId b) = default;

 private:
  uint32_t v_ = 0;
};

// A logical block address on one drive, in 512 B sectors. Offset arithmetic
// exists (addr + sectors, addr - addr -> distance); cross-dimension mixing
// does not.
class BlockAddr {
 public:
  constexpr BlockAddr() = default;
  constexpr explicit BlockAddr(uint64_t lba) : lba_(lba) {}

  constexpr uint64_t value() const { return lba_; }

  friend constexpr BlockAddr operator+(BlockAddr a, uint64_t sectors) {
    return BlockAddr(a.lba_ + sectors);
  }
  friend constexpr BlockAddr operator-(BlockAddr a, uint64_t sectors) {
    return BlockAddr(a.lba_ - sectors);
  }
  // Distance between two addresses, in sectors (signed).
  friend constexpr int64_t operator-(BlockAddr a, BlockAddr b) {
    return static_cast<int64_t>(a.lba_) - static_cast<int64_t>(b.lba_);
  }

  friend constexpr bool operator==(BlockAddr a, BlockAddr b) = default;
  friend constexpr auto operator<=>(BlockAddr a, BlockAddr b) = default;

 private:
  uint64_t lba_ = 0;
};

// Handle for cancelling a scheduled Simulator event. Default-constructed is
// the invalid handle (never issued by ScheduleAt/ScheduleAfter); use valid()
// instead of comparing against raw zero.
class EventId {
 public:
  constexpr EventId() = default;
  constexpr explicit EventId(uint64_t raw) : raw_(raw) {}

  constexpr uint64_t raw() const { return raw_; }
  constexpr bool valid() const { return raw_ != 0; }

  friend constexpr bool operator==(EventId a, EventId b) = default;
  friend constexpr auto operator<=>(EventId a, EventId b) = default;

 private:
  uint64_t raw_ = 0;
};

// Printers keep MIMDRAID_CHECK_* failure messages informative.
inline std::ostream& operator<<(std::ostream& os, SimDuration d) {
  return os << d.us() << "us";
}
inline std::ostream& operator<<(std::ostream& os, SimTime t) {
  return os << "@" << t.us() << "us";
}
inline std::ostream& operator<<(std::ostream& os, SlotId s) {
  return os << "slot" << s.value();
}
inline std::ostream& operator<<(std::ostream& os, BlockAddr a) {
  return os << "lba" << a.value();
}
inline std::ostream& operator<<(std::ostream& os, EventId id) {
  return os << "evt#" << id.raw();
}

}  // namespace mimdraid

// Hash support so the strong ids drop into unordered containers.
template <>
struct std::hash<mimdraid::EventId> {
  size_t operator()(mimdraid::EventId id) const noexcept {
    return std::hash<uint64_t>{}(id.raw());
  }
};

template <>
struct std::hash<mimdraid::SlotId> {
  size_t operator()(mimdraid::SlotId s) const noexcept {
    return std::hash<uint32_t>{}(s.value());
  }
};

template <>
struct std::hash<mimdraid::BlockAddr> {
  size_t operator()(mimdraid::BlockAddr a) const noexcept {
    return std::hash<uint64_t>{}(a.value());
  }
};

#endif  // MIMDRAID_SRC_UTIL_STRONG_TYPES_H_
