// Streaming summary statistics (count/mean/variance/min/max) via Welford's
// algorithm. Used pervasively for latency and error accounting.
#ifndef MIMDRAID_SRC_UTIL_SUMMARY_H_
#define MIMDRAID_SRC_UTIL_SUMMARY_H_

#include <cmath>
#include <cstdint>
#include <limits>

namespace mimdraid {

class Summary {
 public:
  void Add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) {
      min_ = x;
    }
    if (x > max_) {
      max_ = x;
    }
    sum_ += x;
  }

  void Merge(const Summary& other) {
    if (other.count_ == 0) {
      return;
    }
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double delta = other.mean_ - mean_;
    const double n = static_cast<double>(count_);
    const double m = static_cast<double>(other.count_);
    m2_ += other.m2_ + delta * delta * n * m / (n + m);
    mean_ = (n * mean_ + m * other.mean_) / (n + m);
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.min_ < min_) {
      min_ = other.min_;
    }
    if (other.max_ > max_) {
      max_ = other.max_;
    }
  }

  uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double sum() const { return sum_; }
  double variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_UTIL_SUMMARY_H_
