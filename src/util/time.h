// Simulated-time representation.
//
// All simulator timestamps and durations are in microseconds. Since ISSUE 6
// they are *strong types* (src/util/strong_types.h): SimTime is an absolute
// instant, SimDuration a span, and only dimensionally valid arithmetic
// compiles (time + duration, time - time; never time + time). The
// arithmetic-heavy geometry/timing leaves still run on plain integers and
// doubles — unwrap with .us() at those leaves and re-wrap at the API edge.
#ifndef MIMDRAID_SRC_UTIL_TIME_H_
#define MIMDRAID_SRC_UTIL_TIME_H_

#include <cstdint>

#include "src/util/strong_types.h"

namespace mimdraid {

inline constexpr SimTime kSimTimeNever = SimTime(INT64_MAX);

inline constexpr SimDuration UsFromMs(double ms) {
  return SimDuration(static_cast<int64_t>(ms * 1000.0));
}

inline constexpr double MsFromUs(SimDuration d) {
  return static_cast<double>(d.us()) / 1000.0;
}

inline constexpr double MsFromUs(SimTime t) {
  return static_cast<double>(t.us()) / 1000.0;
}

inline constexpr SimDuration UsFromSeconds(double s) {
  return SimDuration(static_cast<int64_t>(s * 1e6));
}

inline constexpr double SecondsFromUs(SimDuration d) {
  return static_cast<double>(d.us()) / 1e6;
}

inline constexpr double SecondsFromUs(SimTime t) {
  return static_cast<double>(t.us()) / 1e6;
}

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_UTIL_TIME_H_
