// Simulated-time representation.
//
// All simulator timestamps and durations are in microseconds, carried in a
// signed 64-bit integer (rollover at ~292,000 simulated years). A strong
// typedef is deliberately avoided: timestamps flow through arithmetic-heavy
// geometry code where the ergonomics of plain integers win, and the unit is
// encoded in every variable name (`_us` suffix by convention).
#ifndef MIMDRAID_SRC_UTIL_TIME_H_
#define MIMDRAID_SRC_UTIL_TIME_H_

#include <cstdint>

namespace mimdraid {

// Microseconds, either a timestamp (since simulation start) or a duration.
using SimTime = int64_t;

inline constexpr SimTime kSimTimeNever = INT64_MAX;

inline constexpr SimTime UsFromMs(double ms) {
  return static_cast<SimTime>(ms * 1000.0);
}

inline constexpr double MsFromUs(SimTime us) {
  return static_cast<double>(us) / 1000.0;
}

inline constexpr SimTime UsFromSeconds(double s) {
  return static_cast<SimTime>(s * 1e6);
}

inline constexpr double SecondsFromUs(SimTime us) {
  return static_cast<double>(us) / 1e6;
}

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_UTIL_TIME_H_
