#include "src/va/virtual_array.h"

#include <algorithm>
#include <utility>

#include "src/core/sweep_runner.h"
#include "src/obs/trace_collector.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace mimdraid {

const char* VaPlacementName(VaPlacement placement) {
  switch (placement) {
    case VaPlacement::kMostFree:
      return "most-free";
    case VaPlacement::kLeastFree:
      return "least-free";
    case VaPlacement::kProbabilistic:
      return "probabilistic";
    case VaPlacement::kRoundRobin:
      return "round-robin";
  }
  MIMDRAID_CHECK(false);
}

VirtualArrayAllocator::VirtualArrayAllocator(FleetSpec fleet,
                                             size_t num_drives,
                                             VaPlacement placement,
                                             uint64_t seed)
    : fleet_(std::move(fleet)), placement_(placement), seed_(seed) {
  MIMDRAID_CHECK(fleet_.Valid());
  MIMDRAID_CHECK_GE(num_drives, 1u);
  // Usable sectors per generation (the layout's data region, reserved and
  // spare tracks excluded), computed once and shared by same-generation
  // drives.
  std::vector<uint64_t> generation_capacity;
  generation_capacity.reserve(fleet_.generations.size());
  for (const DriveParams& g : fleet_.generations) {
    DiskLayout layout(&g.geometry);
    generation_capacity.push_back(layout.num_data_sectors());
  }
  capacity_sectors_.reserve(num_drives);
  for (size_t d = 0; d < num_drives; ++d) {
    capacity_sectors_.push_back(generation_capacity[fleet_.GenerationFor(d)]);
  }
  free_sectors_ = capacity_sectors_;
}

uint64_t VirtualArrayAllocator::TotalFreeSectors() const {
  uint64_t total = 0;
  for (const uint64_t f : free_sectors_) {
    total += f;
  }
  return total;
}

uint64_t VirtualArrayAllocator::PerDriveSectors(const VaRequest& request) {
  const uint64_t unit = request.stripe_unit_sectors;
  MIMDRAID_CHECK_GT(unit, 0u);
  MIMDRAID_CHECK_GT(request.dataset_sectors, 0u);
  if (request.backend == ArrayBackendKind::kRaid5) {
    // Mirrors MimdRaid's RAID-5 sizing: N-1 data shares cover the dataset,
    // rounded up to whole stripe units (the parity share is the same size).
    const uint64_t n = static_cast<uint64_t>(request.aspect.TotalDisks());
    MIMDRAID_CHECK_GE(n, 3u);
    const uint64_t per_data = (request.dataset_sectors + n - 2) / (n - 1);
    return (per_data + unit - 1) / unit * unit;
  }
  if (request.backend == ArrayBackendKind::kErasure) {
    // Mirrors MimdRaid's erasure sizing: k = n - m data shares cover the
    // dataset, rounded up to whole stripe units (every shard, data or
    // parity, is the same size).
    const uint64_t n = static_cast<uint64_t>(request.aspect.TotalDisks());
    MIMDRAID_CHECK_GE(request.parity_shards, 1u);
    MIMDRAID_CHECK_GT(n, request.parity_shards);
    const uint64_t k = n - request.parity_shards;
    const uint64_t per_data = (request.dataset_sectors + k - 1) / k;
    return (per_data + unit - 1) / unit * unit;
  }
  // Mirror: each of the Ds*Dr columns holds an equal share of the dataset
  // (the conservative bound on the capacity-weighted deal), and every sector
  // of a column carries Dr same-disk rotational replicas.
  const uint64_t columns =
      static_cast<uint64_t>(request.aspect.ds) * request.aspect.dr;
  const uint64_t units = (request.dataset_sectors + unit - 1) / unit;
  const uint64_t units_per_column = (units + columns - 1) / columns;
  return units_per_column * unit * static_cast<uint64_t>(request.aspect.dr);
}

std::optional<VaAllocation> VirtualArrayAllocator::Allocate(
    const VaRequest& request) {
  const size_t need = static_cast<size_t>(request.aspect.TotalDisks());
  const uint64_t per_drive = PerDriveSectors(request);

  std::vector<uint32_t> fitting;
  for (uint32_t d = 0; d < free_sectors_.size(); ++d) {
    if (free_sectors_[d] >= per_drive) {
      fitting.push_back(d);
    }
  }
  if (fitting.size() < need) {
    return std::nullopt;  // never over-allocate the fleet
  }

  std::vector<uint32_t> chosen;
  chosen.reserve(need);
  switch (placement_) {
    case VaPlacement::kMostFree:
    case VaPlacement::kLeastFree: {
      // Stable sort keeps ties in drive-index order (determinism).
      const bool most = placement_ == VaPlacement::kMostFree;
      std::stable_sort(fitting.begin(), fitting.end(),
                       [&](uint32_t a, uint32_t b) {
                         return most ? free_sectors_[a] > free_sectors_[b]
                                     : free_sectors_[a] < free_sectors_[b];
                       });
      chosen.assign(fitting.begin(),
                    fitting.begin() + static_cast<ptrdiff_t>(need));
      break;
    }
    case VaPlacement::kRoundRobin: {
      // First fitting drive at or after the cursor, wrapping; the cursor
      // advances past the last drive taken.
      size_t start = 0;
      while (start < fitting.size() && fitting[start] < cursor_) {
        ++start;
      }
      for (size_t k = 0; k < need; ++k) {
        chosen.push_back(fitting[(start + k) % fitting.size()]);
      }
      cursor_ = (static_cast<size_t>(chosen.back()) + 1) % num_drives();
      break;
    }
    case VaPlacement::kProbabilistic: {
      // Weighted sampling without replacement, weight = free space. The
      // stream depends only on (seed, allocation index), never on wall
      // clock or prior failed probes.
      Rng rng(SweepRunner::PointSeed(seed_, next_id_));
      std::vector<uint32_t> pool = fitting;
      for (size_t k = 0; k < need; ++k) {
        uint64_t total = 0;
        for (const uint32_t d : pool) {
          total += free_sectors_[d];
        }
        uint64_t ticket = rng.UniformU64(total);
        size_t pick = pool.size() - 1;
        for (size_t i = 0; i < pool.size(); ++i) {
          const uint64_t w = free_sectors_[pool[i]];
          if (ticket < w) {
            pick = i;
            break;
          }
          ticket -= w;
        }
        chosen.push_back(pool[pick]);
        pool.erase(pool.begin() + static_cast<ptrdiff_t>(pick));
      }
      break;
    }
  }

  VaAllocation allocation;
  allocation.id = next_id_++;
  allocation.request = request;
  allocation.drives = std::move(chosen);
  allocation.per_drive_sectors = per_drive;
  for (const uint32_t d : allocation.drives) {
    MIMDRAID_CHECK_GE(free_sectors_[d], per_drive);
    free_sectors_[d] -= per_drive;
  }
  live_allocations_.insert(allocation.id);
  return allocation;
}

void VirtualArrayAllocator::Release(const VaAllocation& allocation) {
  // Releasing an id we never granted — or granted and already released —
  // would credit free space the fleet doesn't have; refuse loudly.
  MIMDRAID_CHECK_EQ(live_allocations_.erase(allocation.id), 1u);
  for (const uint32_t d : allocation.drives) {
    free_sectors_[d] += allocation.per_drive_sectors;
    MIMDRAID_CHECK_LE(free_sectors_[d], capacity_sectors_[d]);
  }
}

MimdRaidOptions VirtualArrayAllocator::Materialize(
    const VaAllocation& allocation, const MimdRaidOptions& base) const {
  MIMDRAID_CHECK_EQ(base.hot_spares, 0u);  // spares are fleet-level drives
  MIMDRAID_CHECK_EQ(allocation.drives.size(),
                    static_cast<size_t>(allocation.request.aspect.TotalDisks()));
  MimdRaidOptions options = base;
  options.backend = allocation.request.backend;
  options.aspect = allocation.request.aspect;
  options.dataset_sectors = allocation.request.dataset_sectors;
  options.stripe_unit_sectors = allocation.request.stripe_unit_sectors;
  options.parity_shards = allocation.request.parity_shards;
  options.fleet.generations = fleet_.generations;
  options.fleet.slot_generation.clear();
  options.fleet.slot_generation.reserve(allocation.drives.size());
  for (const uint32_t drive : allocation.drives) {
    options.fleet.slot_generation.push_back(fleet_.GenerationFor(drive));
  }
  options.seed = SweepRunner::PointSeed(base.seed, allocation.id);
  return options;
}

void ExportVaStats(const ArrayBackend& backend, const std::string& va_name,
                   StatsRegistry* registry) {
  StatsRegistry scratch;
  backend.ExportStats(&scratch);
  for (const auto& [name, value] : scratch.values()) {
    registry->Set("va." + va_name + "." + name, value);
  }
}

void ExportVaTrace(const TraceCollector& collector, const std::string& va_name,
                   StatsRegistry* registry) {
  StatsRegistry scratch;
  collector.ExportTo(&scratch);
  for (const auto& [name, value] : scratch.values()) {
    registry->Set("va." + va_name + "." + name, value);
  }
}

MimdRaid& VaHost::Add(const VaAllocation& allocation,
                      const MimdRaidOptions& base) {
  for (const Tenant& t : tenants_) {
    MIMDRAID_CHECK(t.allocation.request.name != allocation.request.name);
  }
  Tenant tenant;
  tenant.allocation = allocation;
  tenant.array =
      std::make_unique<MimdRaid>(allocator_->Materialize(allocation, base));
  tenants_.push_back(std::move(tenant));
  return *tenants_.back().array;
}

const VaHost::Tenant& VaHost::Find(const std::string& name) const {
  for (const Tenant& t : tenants_) {
    if (t.allocation.request.name == name) {
      return t;
    }
  }
  MIMDRAID_CHECK(false);  // unknown tenant name
}

MimdRaid& VaHost::array(const std::string& name) {
  return *Find(name).array;
}

const VaAllocation& VaHost::allocation(const std::string& name) const {
  return Find(name).allocation;
}

void VaHost::ExportAllStats(StatsRegistry* registry) const {
  for (const Tenant& t : tenants_) {
    ExportVaStats(t.array->backend(), t.allocation.request.name, registry);
  }
}

}  // namespace mimdraid
