// Virtual arrays carved out of one shared heterogeneous drive fleet (the
// HDA generalization of Thomasian & Xu; placement policies after liveraid).
//
// The paper dedicates the whole fleet to one array tuned for one workload.
// A consolidated installation instead hosts several tenants — each wanting
// its own backend (mirror vs RAID-5), aspect ratio, and redundancy degree —
// on a pool of drives bought across generations. This layer provides:
//
//   VirtualArrayAllocator — capacity bookkeeping over the fleet. Each
//     physical drive exposes its usable sectors (per-generation geometry);
//     Allocate() picks the drives for a VA under one of four placement
//     policies and reserves per-drive extents; Release() returns them.
//     Placement is deterministic: most-free / least-free / round-robin are
//     pure functions of the allocator state, and the probabilistic policy
//     draws from Rng(SweepRunner::PointSeed(seed, allocation_index)).
//
//   Materialize() — turns an allocation into MimdRaidOptions whose FleetSpec
//     assigns every VA slot the drive generation of the physical drive
//     backing it, so a VA spanning mixed generations genuinely simulates
//     per-slot geometry (capacity-weighted striping, per-slot predictors).
//
//   VaHost / ExportVaStats — owns the materialized arrays and namespaces
//     each tenant's stats as "va.<name>.<stat>" in a shared StatsRegistry,
//     so the obs layer attributes latency and fault handling per tenant.
//
// Scope: the allocator shares the fleet at *capacity* granularity — each VA
// runs its own simulator over its allocated drives. Cross-VA spindle
// contention (two tenants queued on one spindle) is future work and called
// out in DESIGN.md §12.
#ifndef MIMDRAID_SRC_VA_VIRTUAL_ARRAY_H_
#define MIMDRAID_SRC_VA_VIRTUAL_ARRAY_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/core/mimd_raid.h"
#include "src/model/fleet_spec.h"
#include "src/obs/stats_registry.h"

namespace mimdraid {

// How Allocate() picks physical drives for a new VA (liveraid's menu).
enum class VaPlacement {
  kMostFree,       // spread: drives with the most free space first
  kLeastFree,      // pack: fullest drives that still fit (best-fit)
  kProbabilistic,  // random, weighted by free space (deterministic seed)
  kRoundRobin,     // rotating cursor over the fleet
};

const char* VaPlacementName(VaPlacement placement);

// What a tenant asks for.
struct VaRequest {
  std::string name;  // stable key for stats/trace namespacing
  ArrayBackendKind backend = ArrayBackendKind::kMirror;
  ArrayAspect aspect;  // TotalDisks() physical drives are claimed
  uint64_t dataset_sectors = 0;
  uint32_t stripe_unit_sectors = 128;
  // kErasure only: parity shards per stripe row (m); the VA's k is
  // TotalDisks() - m.
  uint32_t parity_shards = 2;
};

// A granted reservation: which physical drives back each VA slot, and how
// many sectors are reserved on each. Pass back to Release() to free.
struct VaAllocation {
  uint64_t id = 0;  // allocation sequence number (also the PointSeed index)
  VaRequest request;
  std::vector<uint32_t> drives;  // physical drive per VA slot, in slot order
  uint64_t per_drive_sectors = 0;
};

class VirtualArrayAllocator {
 public:
  // `fleet` describes the drive generations; `num_drives` physical drives
  // populate the pool, drive i running generation fleet.GenerationFor(i).
  // `seed` feeds the probabilistic policy's per-allocation streams.
  VirtualArrayAllocator(FleetSpec fleet, size_t num_drives,
                        VaPlacement placement, uint64_t seed = 42);

  size_t num_drives() const { return free_sectors_.size(); }
  VaPlacement placement() const { return placement_; }
  const FleetSpec& fleet() const { return fleet_; }
  uint64_t DriveCapacitySectors(uint32_t drive) const {
    return capacity_sectors_[drive];
  }
  uint64_t DriveFreeSectors(uint32_t drive) const {
    return free_sectors_[drive];
  }
  uint64_t TotalFreeSectors() const;

  // Sectors Allocate() would reserve on each drive for `request` (the
  // redundancy-expanded per-slot share, rounded to whole stripe units).
  static uint64_t PerDriveSectors(const VaRequest& request);

  // Reserves drives + extents for `request`. std::nullopt when fewer than
  // TotalDisks() drives have room — the fleet is never over-allocated.
  std::optional<VaAllocation> Allocate(const VaRequest& request);

  // Returns an allocation's extents to the pool. Each allocation may be
  // released exactly once: a double release or an allocation this allocator
  // never granted (unknown id) CHECK-fails immediately instead of silently
  // corrupting the free-space accounting.
  void Release(const VaAllocation& allocation);

  // MimdRaidOptions for a simulator running `allocation`: backend, aspect,
  // dataset, and a FleetSpec binding every VA slot to the generation of the
  // physical drive backing it. `base` supplies everything else (scheduler,
  // predictors, fault options, ...); base.hot_spares must be 0 — spares are
  // fleet-level drives, not per-VA. The VA's seed is derived via
  // PointSeed(base.seed, allocation.id) so tenants are decorrelated.
  MimdRaidOptions Materialize(const VaAllocation& allocation,
                              const MimdRaidOptions& base) const;

 private:
  FleetSpec fleet_;
  VaPlacement placement_;
  uint64_t seed_;
  uint64_t next_id_ = 0;
  size_t cursor_ = 0;  // round-robin start position
  std::vector<uint64_t> capacity_sectors_;
  std::vector<uint64_t> free_sectors_;
  // Ids of allocations granted and not yet released; Release() consults this
  // to fail fast on double-release/unknown-allocation.
  std::unordered_set<uint64_t> live_allocations_;
};

// Copies every stat the backend exports into `registry` under the
// "va.<name>." prefix (per-tenant attribution in one shared registry).
void ExportVaStats(const ArrayBackend& backend, const std::string& va_name,
                   StatsRegistry* registry);

// Same namespacing for a tenant's TraceCollector export (give each VA its
// own collector; the merged registry keys stay per-tenant).
void ExportVaTrace(const TraceCollector& collector, const std::string& va_name,
                   StatsRegistry* registry);

// Owns the materialized arrays of a multi-tenant run: one MimdRaid (its own
// simulator) per allocation, looked up by tenant name.
class VaHost {
 public:
  explicit VaHost(VirtualArrayAllocator* allocator) : allocator_(allocator) {}

  // Materializes `allocation` over `base` options and takes ownership of the
  // resulting array. The allocation's tenant name must be unused.
  MimdRaid& Add(const VaAllocation& allocation, const MimdRaidOptions& base);

  size_t size() const { return tenants_.size(); }
  MimdRaid& array(const std::string& name);
  const VaAllocation& allocation(const std::string& name) const;

  // Exports every tenant's backend stats as "va.<name>.<stat>".
  void ExportAllStats(StatsRegistry* registry) const;

 private:
  struct Tenant {
    VaAllocation allocation;
    std::unique_ptr<MimdRaid> array;
  };
  const Tenant& Find(const std::string& name) const;

  VirtualArrayAllocator* allocator_;
  std::vector<Tenant> tenants_;
};

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_VA_VIRTUAL_ARRAY_H_
