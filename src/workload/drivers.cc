#include "src/workload/drivers.h"

#include <algorithm>

#include "src/obs/trace_collector.h"
#include "src/util/check.h"

namespace mimdraid {

TracePlayer::TracePlayer(Simulator* sim, const Trace* trace, SubmitFn submit,
                         const TracePlayerOptions& options)
    : sim_(sim), trace_(trace), submit_(std::move(submit)), options_(options) {
  MIMDRAID_CHECK(sim != nullptr);
  MIMDRAID_CHECK(trace != nullptr);
  MIMDRAID_CHECK(!trace->records.empty());
  MIMDRAID_CHECK_GT(options.rate_scale, 0.0);
}

RunResult TracePlayer::Run() {
  first_arrival_sim_us_ = sim_->Now();
  last_outstanding_change_ = sim_->Now();
  if (options_.collector != nullptr) {
    options_.collector->OnMarker("trace replay begin", sim_->Now());
  }
  ScheduleNextArrival();
  // Drain: the run ends when every scheduled arrival has fired and every
  // submitted I/O has completed.
  while (pending_arrivals_ > 0 || outstanding_ > 0) {
    MIMDRAID_CHECK(sim_->Step());
  }
  if (options_.collector != nullptr) {
    options_.collector->OnMarker("trace replay end", sim_->Now());
  }
  result_.completed = completed_;
  if (result_.saturated) {
    // Arrivals are chained one at a time, so once saturation stops the chain
    // every record at or past next_record_ is never offered. Together with
    // the arrivals discarded by Arrive(), that is the full drop count.
    result_.dropped =
        dropped_ + (trace_->records.size() - next_record_);
  }
  result_.elapsed_us = sim_->Now() - first_arrival_sim_us_;
  result_.iops = result_.elapsed_us > SimDuration(0)
                     ? static_cast<double>(completed_) /
                           SecondsFromUs(result_.elapsed_us)
                     : 0.0;
  result_.mean_outstanding =
      result_.elapsed_us > SimDuration(0)
          ? outstanding_time_integral_ /
                static_cast<double>(result_.elapsed_us.us())
          : 0.0;
  return result_;
}

void TracePlayer::ScheduleNextArrival() {
  if (next_record_ >= trace_->records.size() || stopped_arrivals_) {
    return;
  }
  const size_t index = next_record_++;
  const TraceRecord& rec = trace_->records[index];
  const SimTime t0 = trace_->records.front().time_us;
  const SimTime when =
      first_arrival_sim_us_ +
      SimDuration(static_cast<int64_t>(
          static_cast<double>((rec.time_us - t0).us()) /
          options_.rate_scale));
  ++pending_arrivals_;
  sim_->ScheduleAt(std::max(when, sim_->Now()),
                   [this, index]() { Arrive(index); });
}

void TracePlayer::Arrive(size_t index) {
  --pending_arrivals_;
  const TraceRecord& rec = trace_->records[index];
  if (outstanding_ >= options_.max_outstanding) {
    // The array cannot keep up with the offered rate; declare saturation and
    // stop offering load so the run terminates. The record that tripped the
    // cap is discarded, not submitted — count it so the caller can reconcile
    // completed + dropped against the records offered.
    result_.saturated = true;
    stopped_arrivals_ = true;
    ++dropped_;
    if (options_.collector != nullptr) {
      options_.collector->OnMarker("saturated", sim_->Now());
    }
    return;
  }
  const SimTime now = sim_->Now();
  outstanding_time_integral_ +=
      static_cast<double>(outstanding_) *
      static_cast<double>((now - last_outstanding_change_).us());
  last_outstanding_change_ = now;
  ++outstanding_;
  ++submitted_;

  const bool record = !rec.is_async && submitted_ > options_.warmup_ios;
  const SimTime arrival = now;
  submit_(rec.is_write ? DiskOp::kWrite : DiskOp::kRead, rec.lba, rec.sectors,
          [this, record, arrival](const IoResult& r) {
            const SimTime t = sim_->Now();
            outstanding_time_integral_ +=
                static_cast<double>(outstanding_) *
                static_cast<double>((t - last_outstanding_change_).us());
            last_outstanding_change_ = t;
            --outstanding_;
            ++completed_;
            if (r.status != IoStatus::kOk) {
              ++result_.failed;
            } else if (record) {
              result_.latency.Record(
                  static_cast<double>((r.completion_us - arrival).us()));
            }
          });
  ScheduleNextArrival();
}

ClosedLoopDriver::ClosedLoopDriver(Simulator* sim, SubmitFn submit,
                                   const ClosedLoopOptions& options)
    : sim_(sim), submit_(std::move(submit)), options_(options),
      rng_(options.seed) {
  MIMDRAID_CHECK(sim != nullptr);
  MIMDRAID_CHECK_GT(options.outstanding, 0u);
  MIMDRAID_CHECK_GT(options.dataset_sectors, 0u);
  MIMDRAID_CHECK_GT(options.footprint_frac, 0.0);
  MIMDRAID_CHECK_LE(options.footprint_frac, 1.0);
}

RunResult ClosedLoopDriver::Run() {
  for (uint32_t i = 0; i < options_.outstanding; ++i) {
    IssueOne();
  }
  while (recorded_ < options_.measure_ops) {
    MIMDRAID_CHECK(sim_->Step());
  }
  // Drain: in-flight completions reference this driver; it must not be
  // destroyed while they are pending.
  while (outstanding_ > 0) {
    MIMDRAID_CHECK(sim_->Step());
  }
  if (options_.collector != nullptr) {
    options_.collector->OnMarker("measure end", sim_->Now());
  }
  result_.completed = completions_;
  result_.elapsed_us = sim_->Now() - measure_start_us_;
  result_.iops = result_.elapsed_us > SimDuration(0)
                     ? static_cast<double>(recorded_) /
                           SecondsFromUs(result_.elapsed_us)
                     : 0.0;
  result_.mean_outstanding = options_.outstanding;
  return result_;
}

void ClosedLoopDriver::IssueOne() {
  if (stop_issuing_) {
    return;
  }
  const uint64_t span = std::max<uint64_t>(
      options_.sectors,
      static_cast<uint64_t>(static_cast<double>(options_.dataset_sectors) *
                            options_.footprint_frac));
  uint64_t lba = rng_.UniformU64(span);
  lba -= lba % options_.sectors;
  if (lba + options_.sectors > options_.dataset_sectors) {
    lba = options_.dataset_sectors - options_.sectors;
  }
  const DiskOp op =
      rng_.Bernoulli(options_.read_frac) ? DiskOp::kRead : DiskOp::kWrite;
  const SimTime issue = sim_->Now();
  ++outstanding_;
  submit_(op, lba, options_.sectors, [this, issue](const IoResult& r) {
    --outstanding_;
    ++completions_;
    if (r.status != IoStatus::kOk) {
      ++result_.failed;
    }
    if (completions_ == options_.warmup_ops) {
      measure_start_us_ = sim_->Now();
      if (options_.collector != nullptr) {
        options_.collector->OnMarker("measure begin", sim_->Now());
      }
    } else if (completions_ > options_.warmup_ops &&
               recorded_ < options_.measure_ops) {
      // Failed completions count toward the measured quota (the run must
      // terminate even on a badly degraded array) but contribute no latency
      // sample.
      ++recorded_;
      if (r.status == IoStatus::kOk) {
        result_.latency.Record(
            static_cast<double>((r.completion_us - issue).us()));
      }
      if (recorded_ >= options_.measure_ops) {
        stop_issuing_ = true;
      }
    }
    IssueOne();
  });
}

}  // namespace mimdraid
