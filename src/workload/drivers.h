// Workload drivers: open-loop trace replay and a closed-loop synthetic load
// generator in the style of Intel Iometer (fixed outstanding-request count,
// configurable read fraction and request size).
//
// Drivers are decoupled from the array through SubmitFn, so the same driver
// can exercise an ArrayController, a cached front end, or a single raw disk.
#ifndef MIMDRAID_SRC_WORKLOAD_DRIVERS_H_
#define MIMDRAID_SRC_WORKLOAD_DRIVERS_H_

#include <cstdint>
#include <functional>

#include "src/disk/sim_disk.h"
#include "src/sim/io_status.h"
#include "src/sim/simulator.h"
#include "src/stats/latency_recorder.h"
#include "src/util/rng.h"
#include "src/workload/trace.h"

namespace mimdraid {

class TraceCollector;

using IoDoneFn = std::function<void(const IoResult&)>;
using SubmitFn =
    std::function<void(DiskOp op, uint64_t lba, uint32_t sectors, IoDoneFn)>;

struct RunResult {
  LatencyRecorder latency;  // recorded response times (µs), kOk only
  uint64_t completed = 0;   // all completed operations
  uint64_t failed = 0;      // completions surfaced with a non-kOk status
  double iops = 0.0;        // completions / measured second
  SimDuration elapsed_us;
  // The offered load outran the array (outstanding exceeded the cap); mean
  // latency is meaningless past this point.
  bool saturated = false;
  // Trace records never submitted because the run saturated: the record that
  // tripped the cap plus everything after it. On every run,
  // completed + dropped + still-pending == records offered.
  uint64_t dropped = 0;
  double mean_outstanding = 0.0;  // time-averaged queue depth
};

struct TracePlayerOptions {
  double rate_scale = 1.0;
  size_t max_outstanding = 20'000;
  size_t warmup_ios = 200;  // completions before recording starts
  // Optional observability: the driver drops replay begin/end and saturation
  // markers into the collector's timeline. Borrowed; may be nullptr.
  TraceCollector* collector = nullptr;
};

// Replays a trace open-loop against `submit`, timing each request from its
// (scaled) trace arrival to completion. Async-write response times are not
// recorded (the paper excludes sync-daemon writes), but the I/Os are issued.
class TracePlayer {
 public:
  TracePlayer(Simulator* sim, const Trace* trace, SubmitFn submit,
              const TracePlayerOptions& options);

  RunResult Run();

 private:
  void ScheduleNextArrival();
  void Arrive(size_t index);

  Simulator* sim_;
  const Trace* trace_;
  SubmitFn submit_;
  TracePlayerOptions options_;

  size_t next_record_ = 0;
  size_t pending_arrivals_ = 0;  // scheduled arrival events not yet fired
  size_t outstanding_ = 0;
  uint64_t submitted_ = 0;
  uint64_t completed_ = 0;
  uint64_t dropped_ = 0;  // arrivals discarded after saturation tripped
  bool stopped_arrivals_ = false;
  RunResult result_;
  SimTime last_outstanding_change_;
  double outstanding_time_integral_ = 0.0;
  SimTime first_arrival_sim_us_;
};

struct ClosedLoopOptions {
  uint32_t outstanding = 8;
  double read_frac = 1.0;
  uint32_t sectors = 1;
  uint64_t dataset_sectors = 0;
  // Restrict accesses to the leading fraction of the dataset; 1/L for a
  // seek-locality index of L (the micro-benchmarks use L = 3).
  double footprint_frac = 1.0;
  uint64_t warmup_ops = 300;
  uint64_t measure_ops = 4000;
  uint64_t seed = 7;
  // Optional observability: measurement-window begin/end markers. Borrowed;
  // may be nullptr.
  TraceCollector* collector = nullptr;
};

// Keeps `outstanding` random requests in flight; measures throughput and
// latency over `measure_ops` completions after warmup.
class ClosedLoopDriver {
 public:
  ClosedLoopDriver(Simulator* sim, SubmitFn submit,
                   const ClosedLoopOptions& options);

  RunResult Run();

 private:
  void IssueOne();

  Simulator* sim_;
  SubmitFn submit_;
  ClosedLoopOptions options_;
  Rng rng_;
  uint64_t completions_ = 0;
  uint64_t recorded_ = 0;
  uint64_t outstanding_ = 0;
  bool stop_issuing_ = false;
  SimTime measure_start_us_;
  RunResult result_;
};

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_WORKLOAD_DRIVERS_H_
