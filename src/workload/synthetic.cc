#include "src/workload/synthetic.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace mimdraid {
namespace {

constexpr uint32_t kHotBlockSectors = 64;  // granularity of the Zipf space

uint32_t SampleSize(const std::vector<std::pair<uint32_t, double>>& dist,
                    Rng& rng) {
  double total = 0.0;
  for (const auto& [size, w] : dist) {
    (void)size;
    total += w;
  }
  double u = rng.UniformDouble() * total;
  for (const auto& [size, w] : dist) {
    u -= w;
    if (u <= 0.0) {
      return size;
    }
  }
  return dist.back().first;
}

// Fixed-capacity ring push (access-history bookkeeping).
void Remember(std::vector<uint64_t>& ring, size_t& next, uint64_t lba) {
  constexpr size_t kCapacity = 65536;
  if (ring.size() < kCapacity) {
    ring.push_back(lba);
    next = ring.size() % kCapacity;
  } else {
    ring[next] = lba;
    next = (next + 1) % kCapacity;
  }
}

uint64_t AlignClamp(double pos, uint32_t size, uint64_t dataset) {
  double p = std::max(pos, 0.0);
  uint64_t lba = static_cast<uint64_t>(p);
  lba -= lba % size;
  if (lba + size > dataset) {
    lba = dataset - size;
    lba -= lba % size;
  }
  return lba;
}

}  // namespace

Trace GenerateSyntheticTrace(const SyntheticTraceParams& params) {
  MIMDRAID_CHECK_GT(params.dataset_sectors, 0u);
  MIMDRAID_CHECK_GT(params.io_per_s, 0.0);
  MIMDRAID_CHECK_GE(params.target_locality, 1.0);
  Trace trace;
  trace.name = params.name;
  trace.dataset_sectors = params.dataset_sectors;

  Rng rng(params.seed);
  const uint64_t hot_blocks =
      std::max<uint64_t>(1, params.dataset_sectors / kHotBlockSectors);
  // The Zipf space is capped to bound CDF precomputation; hot draws map into
  // the full dataset by scaling.
  const uint64_t zipf_n = std::min<uint64_t>(hot_blocks, 1 << 20);
  ZipfSampler zipf(zipf_n, params.hot_theta);
  // A fixed random permutation-ish scatter so the hottest blocks are not all
  // adjacent at LBA 0 (multiplicative hashing into the block space).
  const auto scatter = [&](uint64_t rank) {
    return (rank * 0x9e3779b97f4a7c15ULL) % hot_blocks;
  };

  double fresh_prob = 1.0 / params.target_locality;
  const double mean_gap_us = 1e6 / params.io_per_s;
  const SimTime end_us = SimTime(UsFromSeconds(params.duration_s));
  const SimDuration burst_us = params.sync_burst_period_s > 0.0
                                   ? UsFromSeconds(params.sync_burst_period_s)
                                   : SimDuration(0);

  // Async writes (sync-daemon flushes) target recently dirtied data, so they
  // carry the locality of the foreground stream; the fresh probability of
  // foreground records compensates for the async share that never jumps.
  const double foreground_frac = 1.0 - params.async_write_frac;
  // Residual effects (sorted flush bursts, hot-spot clustering) shift the
  // realized locality; generate, measure, and adjust until it lands near the
  // target.
  for (int calibration = 0; calibration < 7; ++calibration) {
  trace.records.clear();
  Rng pass_rng(params.seed + static_cast<uint64_t>(calibration) * 0x9e37ULL);
  rng = pass_rng;
  const double foreground_fresh_prob =
      std::min(1.0, fresh_prob / std::max(foreground_frac, 1e-9));
  std::vector<uint64_t> recent;
  size_t recent_next = 0;
  std::vector<uint64_t> history;  // long access history for re-reference
  size_t history_next = 0;
  constexpr size_t kRecentWindow = 64;
  const auto remember = [&](uint64_t lba) {
    if (recent.size() < kRecentWindow) {
      recent.push_back(lba);
    } else {
      recent[recent_next] = lba;
      recent_next = (recent_next + 1) % kRecentWindow;
    }
  };

  double t = 0.0;
  uint64_t prev_lba = params.dataset_sectors / 2;
  uint64_t seq_cursor = prev_lba;
  while (true) {
    t += rng.Exponential(mean_gap_us);
    if (t >= static_cast<double>(end_us.us())) {
      break;
    }
    TraceRecord rec;
    rec.time_us = SimTime(static_cast<int64_t>(t));
    rec.sectors = SampleSize(params.size_dist, rng);

    // Operation mix first: async flushes have their own placement rule.
    const double u = rng.UniformDouble();
    if (u < params.read_frac) {
      rec.is_write = false;
    } else {
      rec.is_write = true;
      rec.is_async = u < params.read_frac + params.async_write_frac;
    }

    // Temporal re-reference: a read revisits recently touched data, with a
    // bias toward the most recent touches (what a cache would hold).
    if (!rec.is_write && !history.empty() &&
        rng.Bernoulli(params.reref_frac)) {
      const double recency = rng.UniformDouble();
      const size_t back = static_cast<size_t>(
          recency * recency * recency * static_cast<double>(history.size()));
      const size_t idx =
          (history_next + history.size() - 1 - back) % history.size();
      rec.lba = AlignClamp(static_cast<double>(history[idx]), rec.sectors,
                           params.dataset_sectors);
      prev_lba = rec.lba;
      remember(rec.lba);
      Remember(history, history_next, rec.lba);
      trace.records.push_back(rec);
      continue;
    }

    if (rec.is_async && !recent.empty()) {
      // Flush of recently dirtied data: pick a recently touched location.
      rec.lba = AlignClamp(
          static_cast<double>(recent[rng.UniformU64(recent.size())]),
          rec.sectors, params.dataset_sectors);
      if (burst_us > SimDuration(0)) {
        // Round up to the next flush tick (integer tick arithmetic).
        rec.time_us =
            SimTime((rec.time_us.us() / burst_us.us() + 1) * burst_us.us());
        if (rec.time_us >= end_us) {
          continue;
        }
      }
      trace.records.push_back(rec);
      continue;  // flushes do not move the foreground locality cursor
    }

    // Foreground location.
    if (rng.Bernoulli(foreground_fresh_prob)) {
      double pos;
      if (rng.Bernoulli(params.hot_frac)) {
        const uint64_t block = scatter(zipf.Sample(rng)) %
                               std::max<uint64_t>(hot_blocks, 1);
        pos = static_cast<double>(block * kHotBlockSectors);
      } else {
        pos = rng.UniformDouble() *
              static_cast<double>(params.dataset_sectors);
      }
      rec.lba = AlignClamp(pos, rec.sectors, params.dataset_sectors);
      seq_cursor = rec.lba + rec.sectors;
    } else if (rng.Bernoulli(params.sequential_frac)) {
      rec.lba = AlignClamp(static_cast<double>(seq_cursor), rec.sectors,
                           params.dataset_sectors);
      seq_cursor = rec.lba + rec.sectors;
    } else {
      const double jump = rng.Exponential(params.near_jump_mean_sectors) *
                          (rng.Bernoulli(0.5) ? 1.0 : -1.0);
      rec.lba = AlignClamp(static_cast<double>(prev_lba) + jump, rec.sectors,
                           params.dataset_sectors);
      seq_cursor = rec.lba + rec.sectors;
    }
    prev_lba = rec.lba;
    remember(rec.lba);
    if (!rec.is_write || params.reref_includes_writes) {
      Remember(history, history_next, rec.lba);
    }
    trace.records.push_back(rec);
  }
  // Burst quantization can reorder records; restore time order. Records
  // sharing a flush tick (the async burst) are issued in ascending LBA order,
  // as a real sync daemon does.
  std::stable_sort(trace.records.begin(), trace.records.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     if (a.time_us != b.time_us) {
                       return a.time_us < b.time_us;
                     }
                     return a.lba < b.lba;
                   });
  const double measured = ComputeTraceStats(trace).seek_locality;
  if (std::abs(measured - params.target_locality) <
      0.12 * params.target_locality) {
    break;
  }
  // fresh_prob ~ 1/L: too little locality means too many fresh jumps.
  fresh_prob = std::clamp(fresh_prob * measured / params.target_locality,
                          1e-4, 1.0);
  }  // calibration loop
  return trace;
}

SyntheticTraceParams CelloBaseParams(double duration_s, uint64_t seed) {
  SyntheticTraceParams p;
  p.name = "cello-base";
  // 8.4 GB footprint (Table 3), essentially a full ST39133.
  p.dataset_sectors = 16'400'000;
  p.duration_s = duration_s;
  p.io_per_s = 2.84;
  p.read_frac = 0.552;
  p.async_write_frac = 0.189;
  p.target_locality = 4.14;
  // Moderate skew over a multi-GB hot region: gives the cache-size
  // sensitivity of a real file server (Fig. 11) without inflating the
  // read-after-write ratio beyond Table 3.
  p.hot_theta = 0.8;
  p.hot_frac = 0.5;
  p.sequential_frac = 0.6;
  p.reref_frac = 0.2;
  p.size_dist = {{8, 0.45}, {16, 0.35}, {2, 0.1}, {64, 0.1}};
  p.sync_burst_period_s = 30.0;
  p.seed = seed;
  return p;
}

SyntheticTraceParams CelloDisk6Params(double duration_s, uint64_t seed) {
  SyntheticTraceParams p;
  p.name = "cello-disk6";
  // 1.3 GB news spool: ~15% of a disk, very high locality.
  p.dataset_sectors = 2'540'000;
  p.duration_s = duration_s;
  p.io_per_s = 2.56;
  p.read_frac = 0.358;
  p.async_write_frac = 0.161;
  p.target_locality = 16.67;
  p.hot_theta = 0.9;
  p.hot_frac = 0.35;
  p.sequential_frac = 0.7;
  p.reref_frac = 0.06;
  p.size_dist = {{8, 0.5}, {16, 0.3}, {2, 0.2}};
  p.sync_burst_period_s = 30.0;
  p.seed = seed;
  return p;
}

SyntheticTraceParams TpccParams(double duration_s, uint64_t seed) {
  SyntheticTraceParams p;
  p.name = "tpcc";
  // 9.0 GB of database pages, nearly uniform access (L = 1.04), no async
  // writes, strong read-after-write reuse from hot tables.
  p.dataset_sectors = 17'578'000;
  p.duration_s = duration_s;
  p.io_per_s = 500.0;
  p.read_frac = 0.548;
  p.async_write_frac = 0.0;
  p.target_locality = 1.04;
  p.hot_theta = 0.95;
  p.hot_frac = 0.35;
  p.sequential_frac = 0.0;
  p.reref_frac = 0.2;
  p.reref_includes_writes = true;
  p.size_dist = {{4, 0.85}, {16, 0.15}};
  p.sync_burst_period_s = 0.0;
  p.seed = seed;
  return p;
}

}  // namespace mimdraid
