// Synthetic trace generation.
//
// The paper evaluates on the HP Cello '92 traces and a TPC-C disk trace,
// neither of which is redistributable. These generators produce traces whose
// Table 3 characteristics (I/O rate, read fraction, async-write fraction,
// seek locality L, read-after-recent-write fraction, footprint) match the
// originals; the Section 2 models — and therefore the configuration
// decisions under test — consume exactly these aggregate characteristics.
//
// Locality model: with probability 1/L a request jumps to a fresh location
// (uniform or hot-spot draw); otherwise it stays near the previous request
// (short exponential jump or sequential continuation). Since near jumps
// contribute almost nothing to mean inter-request distance, the observed
// locality index lands at ~L by construction. Hot spots follow a Zipf
// distribution over blocks, which also produces read-after-write reuse.
#ifndef MIMDRAID_SRC_WORKLOAD_SYNTHETIC_H_
#define MIMDRAID_SRC_WORKLOAD_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/workload/trace.h"

namespace mimdraid {

struct SyntheticTraceParams {
  std::string name;
  uint64_t dataset_sectors = 0;
  double duration_s = 0.0;
  double io_per_s = 0.0;
  double read_frac = 0.55;
  double async_write_frac = 0.0;  // fraction of *all* I/Os
  double target_locality = 1.0;   // L
  double hot_theta = 0.9;         // Zipf skew of fresh-location draws
  double hot_frac = 0.5;          // probability a fresh draw uses the Zipf
  double sequential_frac = 0.5;   // near draws that continue sequentially
  double near_jump_mean_sectors = 2048.0;
  // Fraction of reads that re-reference recently touched data (recency-biased
  // draw over the access history). This is the temporal locality an LRU
  // cache exploits (Figure 11); it also contributes read-after-write reuse.
  double reref_frac = 0.0;
  // Include writes in the re-reference history (database-style page reuse,
  // which raises the read-after-write ratio, vs file-cache reuse of reads).
  bool reref_includes_writes = false;
  // (sectors, weight) request-size mixture; sizes should be powers of two.
  std::vector<std::pair<uint32_t, double>> size_dist = {{16, 1.0}};
  // Async writes are emitted in periodic bursts (the 30 s sync daemon);
  // 0 keeps them Poisson like everything else.
  double sync_burst_period_s = 30.0;
  uint64_t seed = 1;
};

Trace GenerateSyntheticTrace(const SyntheticTraceParams& params);

// Presets matching the Table 3 rows (duration shortened from the originals;
// rates and mix preserved).
SyntheticTraceParams CelloBaseParams(double duration_s, uint64_t seed);
SyntheticTraceParams CelloDisk6Params(double duration_s, uint64_t seed);
SyntheticTraceParams TpccParams(double duration_s, uint64_t seed);

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_WORKLOAD_SYNTHETIC_H_
