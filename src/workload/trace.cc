#include "src/workload/trace.h"

#include <cmath>
#include <cstdlib>
#include <unordered_map>

#include "src/util/check.h"

namespace mimdraid {

TraceStats ComputeTraceStats(const Trace& trace) {
  TraceStats s;
  s.io_count = trace.records.size();
  if (trace.records.empty()) {
    return s;
  }
  s.duration_s = SecondsFromUs(trace.DurationUs());
  s.io_rate_per_s =
      s.duration_s > 0.0 ? static_cast<double>(s.io_count) / s.duration_s : 0.0;
  s.data_size_gb =
      static_cast<double>(trace.dataset_sectors) * 512.0 / 1e9;

  uint64_t reads = 0;
  uint64_t async_writes = 0;
  uint64_t raw_hits = 0;
  double dist_sum = 0.0;
  uint64_t dist_count = 0;
  double sector_sum = 0.0;
  uint64_t prev_lba = trace.records.front().lba;
  // Last-write timestamps at 8 KiB block granularity.
  constexpr uint32_t kBlockSectors = 16;
  constexpr SimDuration kHourUs(3'600'000'000LL);
  std::unordered_map<uint64_t, SimTime> last_write;

  for (const TraceRecord& r : trace.records) {
    sector_sum += r.sectors;
    if (r.is_write) {
      if (r.is_async) {
        ++async_writes;
      }
      for (uint64_t b = r.lba / kBlockSectors;
           b <= (r.lba + r.sectors - 1) / kBlockSectors; ++b) {
        last_write[b] = r.time_us;
      }
    } else {
      ++reads;
      bool recent = false;
      for (uint64_t b = r.lba / kBlockSectors;
           b <= (r.lba + r.sectors - 1) / kBlockSectors; ++b) {
        auto it = last_write.find(b);
        if (it != last_write.end() && r.time_us - it->second <= kHourUs) {
          recent = true;
          break;
        }
      }
      if (recent) {
        ++raw_hits;
      }
    }
    dist_sum += std::abs(static_cast<double>(r.lba) -
                         static_cast<double>(prev_lba));
    ++dist_count;
    prev_lba = r.lba;
  }

  const double n = static_cast<double>(s.io_count);
  s.read_frac = static_cast<double>(reads) / n;
  s.async_write_frac = static_cast<double>(async_writes) / n;
  s.read_after_write_frac = static_cast<double>(raw_hits) / n;
  s.mean_request_sectors = sector_sum / n;
  const double mean_observed = dist_sum / static_cast<double>(dist_count);
  const double mean_random = static_cast<double>(trace.dataset_sectors) / 3.0;
  s.seek_locality = mean_observed > 0.0 ? mean_random / mean_observed : 1.0;
  return s;
}

Trace ScaleTraceRate(const Trace& trace, double scale) {
  MIMDRAID_CHECK_GT(scale, 0.0);
  Trace out;
  out.name = trace.name;
  out.dataset_sectors = trace.dataset_sectors;
  out.records.reserve(trace.records.size());
  const SimTime t0 =
      trace.records.empty() ? SimTime(0) : trace.records.front().time_us;
  for (TraceRecord r : trace.records) {
    r.time_us = t0 + SimDuration(static_cast<int64_t>(
                         static_cast<double>((r.time_us - t0).us()) / scale));
    out.records.push_back(r);
  }
  return out;
}

}  // namespace mimdraid
