// I/O trace representation and characterization (Table 3).
#ifndef MIMDRAID_SRC_WORKLOAD_TRACE_H_
#define MIMDRAID_SRC_WORKLOAD_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/time.h"

namespace mimdraid {

struct TraceRecord {
  SimTime time_us;
  bool is_write = false;
  // Writes issued by background daemons (e.g. the 30-second sync sweep);
  // excluded from response-time reporting, as in the paper.
  bool is_async = false;
  uint64_t lba = 0;
  uint32_t sectors = 0;
};

struct Trace {
  std::string name;
  uint64_t dataset_sectors = 0;  // logical footprint the trace addresses
  std::vector<TraceRecord> records;

  SimDuration DurationUs() const {
    return records.empty()
               ? SimDuration(0)
               : records.back().time_us - records.front().time_us;
  }
};

// The Table 3 metrics, computed from a trace.
struct TraceStats {
  uint64_t io_count = 0;
  double duration_s = 0.0;
  double io_rate_per_s = 0.0;
  double read_frac = 0.0;
  double async_write_frac = 0.0;
  // Seek locality L: mean random |distance| over the footprint (= N/3)
  // divided by mean observed inter-request distance.
  double seek_locality = 0.0;
  // Fraction of I/Os that read data written within the last hour.
  double read_after_write_frac = 0.0;
  double mean_request_sectors = 0.0;
  double data_size_gb = 0.0;
};

TraceStats ComputeTraceStats(const Trace& trace);

// Uniformly rescales inter-arrival times: scale 2.0 halves them (doubling the
// offered rate), as in the paper's accelerated-rate experiments.
Trace ScaleTraceRate(const Trace& trace, double scale);

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_WORKLOAD_TRACE_H_
