#include "src/workload/trace_io.h"

#include <cinttypes>
#include <cstdio>
#include <memory>

namespace mimdraid {

namespace {
struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) {
      std::fclose(f);
    }
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;
}  // namespace

bool SaveTrace(const Trace& trace, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (!f) {
    return false;
  }
  std::fprintf(f.get(), "# mimdraid-trace v1 %s %" PRIu64 "\n",
               trace.name.empty() ? "unnamed" : trace.name.c_str(),
               trace.dataset_sectors);
  for (const TraceRecord& r : trace.records) {
    const char op = r.is_write ? (r.is_async ? 'A' : 'W') : 'R';
    if (std::fprintf(f.get(), "%lld %c %" PRIu64 " %u\n",
                     static_cast<long long>(r.time_us.us()), op, r.lba,
                     r.sectors) < 0) {
      return false;
    }
  }
  return true;
}

bool LoadTrace(const std::string& path, Trace* trace) {
  if (trace == nullptr) {
    return false;
  }
  FilePtr f(std::fopen(path.c_str(), "r"));
  if (!f) {
    return false;
  }
  char name[256];
  uint64_t dataset = 0;
  if (std::fscanf(f.get(), "# mimdraid-trace v1 %255s %" SCNu64 "\n", name,
                  &dataset) != 2) {
    return false;
  }
  trace->name = name;
  trace->dataset_sectors = dataset;
  trace->records.clear();
  long long time_us = 0;
  char op = 0;
  uint64_t lba = 0;
  uint32_t sectors = 0;
  while (true) {
    const int got = std::fscanf(f.get(), "%lld %c %" SCNu64 " %u\n", &time_us,
                                &op, &lba, &sectors);
    if (got == EOF) {
      break;
    }
    if (got != 4 || (op != 'R' && op != 'W' && op != 'A') || sectors == 0 ||
        lba + sectors > dataset) {
      return false;
    }
    TraceRecord rec;
    rec.time_us = SimTime(time_us);
    rec.is_write = op != 'R';
    rec.is_async = op == 'A';
    rec.lba = lba;
    rec.sectors = sectors;
    trace->records.push_back(rec);
  }
  return true;
}

}  // namespace mimdraid
