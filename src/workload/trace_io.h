// Trace persistence: a simple line-oriented text format so traces can be
// saved, inspected, and replayed across runs (and real traces in the same
// schema can be imported).
//
// Format: header line `# mimdraid-trace v1 <name> <dataset_sectors>`,
// then one record per line: `<time_us> <R|W|A> <lba> <sectors>`
// (A = asynchronous write).
#ifndef MIMDRAID_SRC_WORKLOAD_TRACE_IO_H_
#define MIMDRAID_SRC_WORKLOAD_TRACE_IO_H_

#include <string>

#include "src/workload/trace.h"

namespace mimdraid {

// Writes the trace; returns false on I/O failure.
bool SaveTrace(const Trace& trace, const std::string& path);

// Reads a trace; returns false on I/O failure or malformed content.
bool LoadTrace(const std::string& path, Trace* trace);

}  // namespace mimdraid

#endif  // MIMDRAID_SRC_WORKLOAD_TRACE_IO_H_
