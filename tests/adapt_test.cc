// Tests for the workload monitor, reconfiguration advisor, migration
// estimator, and the closed adaptation loop.
#include <gtest/gtest.h>

#include <cmath>

#include "src/adapt/advisor.h"
#include "src/adapt/workload_monitor.h"
#include "src/core/adaptive_array.h"
#include "src/util/rng.h"
#include "src/workload/drivers.h"

namespace mimdraid {
namespace {

constexpr uint64_t kDataset = 2'000'000;

TEST(WorkloadMonitor, TracksRateAndMix) {
  WorkloadMonitor mon(kDataset);
  Rng rng(1);
  SimTime t;
  for (int i = 0; i < 1000; ++i) {
    t += SimDuration(10'000);  // 100 IO/s
    const DiskOp op = i % 4 == 0 ? DiskOp::kWrite : DiskOp::kRead;
    mon.OnSubmit(op, rng.UniformU64(kDataset), 8, t);
    mon.OnComplete(t + SimDuration(3000));
  }
  const WorkloadProfile p = mon.Snapshot(/*disks=*/4, /*mean_service_us=*/5000);
  EXPECT_NEAR(p.io_per_s, 100.0, 5.0);
  EXPECT_NEAR(p.read_frac, 0.75, 0.02);
  EXPECT_NEAR(p.mean_request_sectors, 8.0, 1e-9);
  // Uniform random accesses: locality ~1.
  EXPECT_LT(p.locality, 1.6);
}

TEST(WorkloadMonitor, DetectsLocality) {
  WorkloadMonitor mon(kDataset);
  Rng rng(2);
  SimTime t;
  uint64_t cursor = kDataset / 2;
  for (int i = 0; i < 2000; ++i) {
    t += SimDuration(10'000);
    if (rng.Bernoulli(0.1)) {
      cursor = rng.UniformU64(kDataset - 8);
    } else {
      cursor = (cursor + 8) % (kDataset - 8);
    }
    mon.OnSubmit(DiskOp::kRead, cursor, 8, t);
    mon.OnComplete(t + SimDuration(3000));
  }
  const WorkloadProfile p = mon.Snapshot(4, 5000);
  // ~10% far jumps -> L near 10.
  EXPECT_GT(p.locality, 5.0);
  EXPECT_LT(p.locality, 20.0);
}

TEST(WorkloadMonitor, WindowFollowsPhaseChange) {
  WorkloadMonitor mon(kDataset, /*window=*/256);
  Rng rng(3);
  SimTime t;
  // Phase 1: pure reads.
  for (int i = 0; i < 1000; ++i) {
    t += SimDuration(1000);
    mon.OnSubmit(DiskOp::kRead, rng.UniformU64(kDataset), 8, t);
    mon.OnComplete(t + SimDuration(100));
  }
  EXPECT_NEAR(mon.Snapshot(4, 5000).read_frac, 1.0, 1e-9);
  // Phase 2: pure writes; the window forgets phase 1.
  for (int i = 0; i < 1000; ++i) {
    t += SimDuration(1000);
    mon.OnSubmit(DiskOp::kWrite, rng.UniformU64(kDataset), 8, t);
    mon.OnComplete(t + SimDuration(100));
  }
  EXPECT_NEAR(mon.Snapshot(4, 5000).read_frac, 0.0, 1e-9);
}

TEST(WorkloadMonitor, UtilizationDrivesPEstimate) {
  WorkloadMonitor mon(kDataset);
  Rng rng(4);
  SimTime t;
  for (int i = 0; i < 500; ++i) {
    t += SimDuration(100'000);  // 10 IO/s: low load
    mon.OnSubmit(i % 2 == 0 ? DiskOp::kRead : DiskOp::kWrite,
                 rng.UniformU64(kDataset), 8, t);
    mon.OnComplete(t + SimDuration(5000));
  }
  const WorkloadProfile low = mon.Snapshot(/*disks=*/6, 5000);
  // 10 IO/s * 5ms / 6 disks: nearly idle -> propagation maskable -> p ~ 1.
  EXPECT_GT(low.p_estimate, 0.9);

  WorkloadMonitor hot(kDataset);
  t = SimTime(0);
  for (int i = 0; i < 500; ++i) {
    t += SimDuration(1'000);  // 1000 IO/s on one disk: saturated
    hot.OnSubmit(i % 2 == 0 ? DiskOp::kRead : DiskOp::kWrite,
                 rng.UniformU64(kDataset), 8, t);
    hot.OnComplete(t + SimDuration(5000));
  }
  const WorkloadProfile high = hot.Snapshot(/*disks=*/1, 5000);
  // Saturated: p collapses toward the read fraction.
  EXPECT_LT(high.p_estimate, 0.6);
}

ModelDiskParams Params() {
  ModelDiskParams p;
  p.max_seek_us = 9900;
  p.rotation_us = 6000;
  return p;
}

TEST(Advisor, RecommendsReplicationForReadHeavyIdleLoad) {
  ReconfigurationAdvisor advisor(Params());
  ArrayAspect stripe;
  stripe.ds = 6;
  WorkloadProfile profile;
  profile.read_frac = 1.0;
  profile.p_estimate = 1.0;
  profile.locality = 1.0;
  profile.mean_queue_depth = 1.0;
  profile.io_per_s = 5.0;
  profile.samples = 1000;
  const Advice advice = advisor.Evaluate(stripe, profile);
  EXPECT_GT(advice.recommended.dr, 1);
  EXPECT_TRUE(advice.reconfigure);
  EXPECT_GT(advice.predicted_gain, 1.15);
}

TEST(Advisor, KeepsStripingForWriteHeavySaturatedLoad) {
  ReconfigurationAdvisor advisor(Params());
  ArrayAspect stripe;
  stripe.ds = 6;
  WorkloadProfile profile;
  profile.read_frac = 0.3;
  profile.p_estimate = 0.35;
  profile.locality = 1.0;
  profile.mean_queue_depth = 8.0;
  const Advice advice = advisor.Evaluate(stripe, profile);
  EXPECT_EQ(advice.recommended.dr, 1);
  EXPECT_FALSE(advice.reconfigure);
}

TEST(Advisor, NoReconfigureWhenGainBelowThreshold) {
  AdvisorOptions options;
  options.min_gain = 100.0;  // impossible bar
  ReconfigurationAdvisor advisor(Params(), options);
  ArrayAspect stripe;
  stripe.ds = 6;
  WorkloadProfile profile;
  profile.read_frac = 1.0;
  profile.p_estimate = 1.0;
  profile.locality = 1.0;
  profile.mean_queue_depth = 1.0;
  const Advice advice = advisor.Evaluate(stripe, profile);
  EXPECT_FALSE(advice.reconfigure);
}

TEST(MigrationEstimate, ScalesWithDataAndReplication) {
  Advice advice;
  advice.current = ArrayAspect{6, 1, 1};
  advice.recommended = ArrayAspect{2, 3, 1};
  advice.current_predicted_us = 3000;
  advice.recommended_predicted_us = 2000;
  const MigrationEstimate small =
      EstimateMigration(advice, 1'000'000, 100.0, 20.0);
  const MigrationEstimate big =
      EstimateMigration(advice, 4'000'000, 100.0, 20.0);
  EXPECT_NEAR(big.migration_seconds / small.migration_seconds, 4.0, 1e-9);
  EXPECT_GT(small.break_even_seconds, 0.0);
  EXPECT_TRUE(std::isfinite(small.break_even_seconds));
}

TEST(MigrationEstimate, InfiniteBreakEvenWithoutGain) {
  Advice advice;
  advice.current_predicted_us = 2000;
  advice.recommended_predicted_us = 2500;
  const MigrationEstimate est = EstimateMigration(advice, 1'000'000, 100.0);
  EXPECT_TRUE(std::isinf(est.break_even_seconds));
}

TEST(AdaptiveArray, ReshapesUnderReadHeavyLoadAndImproves) {
  AdaptiveArrayOptions options;
  options.base.aspect = ArrayAspect{6, 1, 1};  // start as a plain stripe
  options.base.scheduler = SchedulerKind::kRsatf;
  options.base.dataset_sectors = kDataset;
  options.advisor.min_gain = 1.1;
  AdaptiveArray adaptive(options);

  ClosedLoopOptions loop;
  loop.outstanding = 1;
  loop.read_frac = 1.0;
  loop.sectors = 8;
  loop.warmup_ops = 100;
  loop.measure_ops = 1200;
  loop.dataset_sectors = kDataset;
  ClosedLoopDriver phase1(&adaptive.sim(), adaptive.Submitter(), loop);
  const RunResult before = phase1.Run();

  const Advice advice = adaptive.Adapt();
  ASSERT_TRUE(advice.reconfigure);
  EXPECT_GT(advice.recommended.dr, 1);
  ASSERT_EQ(adaptive.reshapes().size(), 1u);

  loop.seed = 99;
  ClosedLoopDriver phase2(&adaptive.sim(), adaptive.Submitter(), loop);
  const RunResult after = phase2.Run();
  EXPECT_LT(after.latency.MeanUs(), before.latency.MeanUs());
}

TEST(AdaptiveArray, DoesNotThrashWhenAlreadyOptimal) {
  AdaptiveArrayOptions options;
  options.base.aspect = ArrayAspect{2, 3, 1};
  options.base.dataset_sectors = kDataset;
  AdaptiveArray adaptive(options);
  ClosedLoopOptions loop;
  loop.outstanding = 1;
  loop.read_frac = 1.0;
  loop.sectors = 8;
  loop.warmup_ops = 50;
  loop.measure_ops = 600;
  loop.dataset_sectors = kDataset;
  ClosedLoopDriver driver(&adaptive.sim(), adaptive.Submitter(), loop);
  driver.Run();
  const Advice first = adaptive.Adapt();
  const size_t reshapes = adaptive.reshapes().size();
  // A second evaluation on the same workload must not flip back and forth.
  ClosedLoopDriver driver2(&adaptive.sim(), adaptive.Submitter(), loop);
  driver2.Run();
  adaptive.Adapt();
  EXPECT_LE(adaptive.reshapes().size(), reshapes + 1);
  if (!first.reconfigure) {
    EXPECT_EQ(adaptive.reshapes().size(), 0u);
  }
}

}  // namespace
}  // namespace mimdraid
