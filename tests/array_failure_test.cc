// Disk failure and rebuild in mirrored arrays (the Section 2.5 reliability
// tradeoff): a striped mirror survives a disk; an SR-Array column does not.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/array/array_layout.h"
#include "src/array/controller.h"
#include "src/calib/predictor.h"
#include "src/disk/sim_disk.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace mimdraid {
namespace {

struct Rig {
  Rig(int ds, int dr, int dm, uint64_t dataset = 3000) {
    aspect.ds = ds;
    aspect.dr = dr;
    aspect.dm = dm;
    const int d = aspect.TotalDisks();
    for (int i = 0; i < d; ++i) {
      disks.push_back(std::make_unique<SimDisk>(
          &sim, MakeTestGeometry(), MakeTestSeekProfile(),
          DiskNoiseModel::None(), 61 + i, i * 777.0));
      preds.push_back(std::make_unique<OraclePredictor>(disks.back().get(), 0.0));
      dptr.push_back(disks.back().get());
      pptr.push_back(preds.back().get());
    }
    layout = std::make_unique<ArrayLayout>(&disks[0]->layout(), aspect, 16,
                                           dataset);
    controller = std::make_unique<ArrayController>(
        &sim, dptr, pptr, layout.get(), ArrayControllerOptions{});
  }

  SimTime Do(DiskOp op, uint64_t lba, uint32_t sectors) {
    SimTime completion(-1);
    controller->Submit(op, lba, sectors, [&](const IoResult& r) { completion = r.completion_us; });
    while (completion < SimTime(0)) {
      EXPECT_TRUE(sim.Step());
    }
    return completion;
  }

  void Drain() {
    while (!controller->Idle() && sim.Step()) {
    }
  }

  Simulator sim;
  ArrayAspect aspect;
  std::vector<std::unique_ptr<SimDisk>> disks;
  std::vector<std::unique_ptr<AccessPredictor>> preds;
  std::vector<SimDisk*> dptr;
  std::vector<AccessPredictor*> pptr;
  std::unique_ptr<ArrayLayout> layout;
  std::unique_ptr<ArrayController> controller;
};

TEST(ArrayFailure, SrArrayCannotTolerateDiskLoss) {
  Rig rig(1, 2, 1);
  EXPECT_FALSE(rig.controller->FailDisk(SlotId(0)));  // Dm == 1: data loss
  EXPECT_FALSE(rig.controller->IsFailed(SlotId(0)));
}

TEST(ArrayFailure, MirrorServesReadsAfterFailure) {
  Rig rig(2, 1, 2);  // four disks, two mirrored columns
  ASSERT_TRUE(rig.controller->FailDisk(SlotId(0)));
  Rng rng(5);
  for (int i = 0; i < 30; ++i) {
    rig.Do(DiskOp::kRead, rng.UniformU64(3000 - 8), 8);
  }
  rig.Drain();
  EXPECT_EQ(rig.controller->stats().reads_completed, 30u);
  EXPECT_EQ(rig.disks[0]->ops_completed(), 0u);  // nothing touches the corpse
}

TEST(ArrayFailure, MirrorWritesSkipFailedDisk) {
  Rig rig(1, 1, 2);
  ASSERT_TRUE(rig.controller->FailDisk(SlotId(1)));
  for (int i = 0; i < 10; ++i) {
    rig.Do(DiskOp::kWrite, static_cast<uint64_t>(i) * 16, 8);
  }
  rig.Drain();
  EXPECT_EQ(rig.controller->stats().writes_completed, 10u);
  EXPECT_EQ(rig.disks[1]->ops_completed(), 0u);
  // No propagation is queued to the failed disk.
  EXPECT_EQ(rig.controller->DelayedBacklog(), 0u);
}

TEST(ArrayFailure, DegradedReadLatencyNoWorseThanSingleCopy) {
  // Healthy 1x1x2 mirror picks the better of two copies; degraded it has one.
  Rig healthy(1, 1, 2);
  Rng rng(7);
  Summary healthy_lat;
  for (int i = 0; i < 60; ++i) {
    const uint64_t lba = rng.UniformU64(3000 - 8);
    const SimTime t0 = healthy.sim.Now();
    healthy_lat.Add(
        static_cast<double>((healthy.Do(DiskOp::kRead, lba, 8) - t0).us()));
  }
  Rig degraded(1, 1, 2);
  ASSERT_TRUE(degraded.controller->FailDisk(SlotId(1)));
  Rng rng2(7);
  Summary degraded_lat;
  for (int i = 0; i < 60; ++i) {
    const uint64_t lba = rng2.UniformU64(3000 - 8);
    const SimTime t0 = degraded.sim.Now();
    degraded_lat.Add(
        static_cast<double>((degraded.Do(DiskOp::kRead, lba, 8) - t0).us()));
  }
  EXPECT_GT(degraded_lat.mean(), healthy_lat.mean() * 0.95);
}

TEST(ArrayFailure, RebuildRestoresService) {
  Rig rig(1, 2, 2, /*dataset=*/800);  // four disks: 2 columns x 2 mirrors
  // Dirty the array a little first.
  for (int i = 0; i < 5; ++i) {
    rig.Do(DiskOp::kWrite, static_cast<uint64_t>(i) * 32, 8);
  }
  rig.Drain();
  ASSERT_TRUE(rig.controller->FailDisk(SlotId(1)));
  SimTime rebuilt_at(-1);
  rig.controller->RebuildDisk(1, [&](const IoResult& r) { rebuilt_at = r.completion_us; });
  while (rebuilt_at < SimTime(0)) {
    ASSERT_TRUE(rig.sim.Step());
  }
  EXPECT_GT(rig.controller->rebuild_copied_fragments(), 0u);
  EXPECT_FALSE(rig.controller->IsFailed(SlotId(1)));
  // The rebuilt disk serves reads again.
  const uint64_t before = rig.disks[1]->ops_completed();
  Rng rng(9);
  for (int i = 0; i < 40; ++i) {
    rig.Do(DiskOp::kRead, rng.UniformU64(800 - 8), 8);
  }
  rig.Drain();
  EXPECT_GT(rig.disks[1]->ops_completed(), before);
}

TEST(ArrayFailure, ForegroundTrafficContinuesDuringRebuild) {
  Rig rig(1, 1, 2, /*dataset=*/1600);
  ASSERT_TRUE(rig.controller->FailDisk(SlotId(0)));
  SimTime rebuilt_at(-1);
  rig.controller->RebuildDisk(0, [&](const IoResult& r) { rebuilt_at = r.completion_us; });
  Rng rng(11);
  int done = 0;
  constexpr int kOps = 50;
  for (int i = 0; i < kOps; ++i) {
    rig.controller->Submit(DiskOp::kRead, rng.UniformU64(1600 - 8), 8,
                           [&](const IoResult&) { ++done; });
  }
  while (done < kOps || rebuilt_at < SimTime(0)) {
    ASSERT_TRUE(rig.sim.Step());
  }
  rig.Drain();
  EXPECT_EQ(rig.controller->stats().reads_completed,
            static_cast<uint64_t>(kOps));
}

}  // namespace
}  // namespace mimdraid
