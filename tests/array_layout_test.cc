#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/array/array_layout.h"
#include "src/disk/geometry.h"

namespace mimdraid {
namespace {

class ArrayLayoutTest : public ::testing::Test {
 protected:
  ArrayLayoutTest() : geo_(MakeTestGeometry()), disk_layout_(&geo_) {}

  ArrayLayout Make(int ds, int dr, int dm, uint32_t unit = 16,
                   uint64_t dataset = 4000) {
    ArrayAspect a;
    a.ds = ds;
    a.dr = dr;
    a.dm = dm;
    return ArrayLayout(&disk_layout_, a, unit, dataset);
  }

  DiskGeometry geo_;
  DiskLayout disk_layout_;
};

TEST_F(ArrayLayoutTest, StripeMapsUnitsRoundRobin) {
  const ArrayLayout layout = Make(2, 1, 1);
  // Unit 0 -> disk 0, unit 1 -> disk 1, unit 2 -> disk 0... (a unit may be
  // split at a track boundary, but every fragment stays on the unit's disk).
  for (uint64_t unit = 0; unit < 8; ++unit) {
    const auto frags = layout.Map(unit * 16, 16);
    ASSERT_GE(frags.size(), 1u);
    for (const auto& f : frags) {
      EXPECT_EQ(f.group, unit % 2);
      EXPECT_EQ(f.replicas[0].disk, unit % 2);
    }
  }
}

TEST_F(ArrayLayoutTest, WithinUnitStaysOnOneDisk) {
  const ArrayLayout layout = Make(4, 1, 1);
  const auto frags = layout.Map(3, 8);  // inside unit 0
  ASSERT_EQ(frags.size(), 1u);
  EXPECT_EQ(frags[0].replicas[0].disk, 0u);
  EXPECT_EQ(frags[0].sectors, 8u);
}

TEST_F(ArrayLayoutTest, CrossUnitRequestSplits) {
  const ArrayLayout layout = Make(2, 1, 1);
  const auto frags = layout.Map(10, 16);  // spans units 0 and 1
  ASSERT_EQ(frags.size(), 2u);
  EXPECT_EQ(frags[0].sectors, 6u);
  EXPECT_EQ(frags[0].replicas[0].disk, 0u);
  EXPECT_EQ(frags[1].sectors, 10u);
  EXPECT_EQ(frags[1].replicas[0].disk, 1u);
}

TEST_F(ArrayLayoutTest, FragmentsCoverRequestExactly) {
  const ArrayLayout layout = Make(3, 2, 1, 16, 6000);
  for (uint64_t lba : {0ull, 5ull, 100ull, 999ull}) {
    for (uint32_t n : {1u, 16u, 64u, 128u}) {
      const auto frags = layout.Map(lba, n);
      uint64_t cur = lba;
      for (const auto& f : frags) {
        EXPECT_EQ(f.logical_lba, cur);
        cur += f.sectors;
      }
      EXPECT_EQ(cur, lba + n);
    }
  }
}

TEST_F(ArrayLayoutTest, ReplicaCountIsDrTimesDm) {
  const ArrayLayout layout = Make(1, 2, 2, 16, 2000);
  const auto frags = layout.Map(0, 4);
  ASSERT_EQ(frags.size(), 1u);
  EXPECT_EQ(frags[0].replicas.size(), 4u);
}

TEST_F(ArrayLayoutTest, MirrorCopiesOnDistinctDisks) {
  const ArrayLayout layout = Make(2, 1, 2, 16, 4000);
  EXPECT_EQ(layout.num_disks(), 4u);
  const auto frags = layout.Map(16, 4);  // unit 1 -> group 1
  ASSERT_EQ(frags.size(), 1u);
  std::set<uint32_t> disks;
  for (const auto& rep : frags[0].replicas) {
    disks.insert(rep.disk);
  }
  EXPECT_EQ(disks, (std::set<uint32_t>{2, 3}));
}

TEST_F(ArrayLayoutTest, MirrorCopiesStaggeredInAngle) {
  // 1x1x2: copies on two disks, half a revolution apart (synchronized
  // spindles make this meaningful).
  const ArrayLayout layout = Make(1, 1, 2, 16, 2000);
  const auto frags = layout.Map(100, 1);
  ASSERT_EQ(frags.size(), 1u);
  const Chs a = disk_layout_.ToChs(frags[0].replicas[0].lba);
  const Chs b = disk_layout_.ToChs(frags[0].replicas[1].lba);
  double gap = disk_layout_.AngleOf(b) - disk_layout_.AngleOf(a);
  gap -= std::floor(gap);
  EXPECT_NEAR(gap, 0.5, 1.0 / 40 + 1e-9);
}

TEST_F(ArrayLayoutTest, SrMirrorCopiesEvenlySpacedAcrossAll) {
  // 1x2x2: four copies at quarter-revolution spacing.
  const ArrayLayout layout = Make(1, 2, 2, 16, 2000);
  const auto frags = layout.Map(64, 1);
  ASSERT_EQ(frags.size(), 1u);
  std::vector<double> angles;
  for (const auto& rep : frags[0].replicas) {
    angles.push_back(disk_layout_.AngleOf(disk_layout_.ToChs(rep.lba)));
  }
  // Sort relative angles; gaps should be ~0.25 each.
  std::vector<double> rel;
  for (double a : angles) {
    double d = a - angles[0];
    d -= std::floor(d);
    rel.push_back(d);
  }
  std::sort(rel.begin(), rel.end());
  for (size_t i = 0; i < rel.size(); ++i) {
    EXPECT_NEAR(rel[i], 0.25 * static_cast<double>(i), 1.0 / 40 + 1e-9);
  }
}

TEST_F(ArrayLayoutTest, PerDiskSectorsScalesInverselyWithDs) {
  const ArrayLayout one = Make(1, 1, 1, 16, 6400);
  const ArrayLayout four = Make(4, 1, 1, 16, 6400);
  EXPECT_EQ(one.per_disk_sectors(), 6400u);
  EXPECT_EQ(four.per_disk_sectors(), 1600u);
}

TEST_F(ArrayLayoutTest, CylinderSpanShrinksWithStriping) {
  const uint64_t dataset = 6000;
  const ArrayLayout one = Make(1, 1, 1, 16, dataset);
  const ArrayLayout two = Make(2, 1, 1, 16, dataset);
  EXPECT_GT(one.CylinderSpan(), two.CylinderSpan());
}

TEST_F(ArrayLayoutTest, DatasetMustFit) {
  // Dr=4 on the tiny geometry leaves ~2070 sectors per disk.
  ArrayAspect a;
  a.ds = 1;
  a.dr = 4;
  a.dm = 1;
  EXPECT_DEATH(ArrayLayout(&disk_layout_, a, 16, 50'000), "CHECK");
}

TEST_F(ArrayLayoutTest, AllReplicasContiguousForFragment) {
  const ArrayLayout layout = Make(1, 2, 1, 16, 2000);
  const auto frags = layout.Map(0, 16);
  for (const auto& f : frags) {
    for (const auto& rep : f.replicas) {
      // Each copy occupies `sectors` consecutive physical LBAs on one track.
      const Chs first = disk_layout_.ToChs(rep.lba);
      const Chs last = disk_layout_.ToChs(rep.lba + f.sectors - 1);
      EXPECT_EQ(first.cylinder, last.cylinder);
      EXPECT_EQ(first.head, last.head);
    }
  }
}

}  // namespace
}  // namespace mimdraid
