// Property tests for ArrayLayout::Map across aspect shapes: fragments must
// exactly partition the request, and every copy must be physically contiguous
// on the right disk.
#include <gtest/gtest.h>

#include <set>

#include "src/array/array_layout.h"
#include "src/disk/geometry.h"
#include "src/util/rng.h"

namespace mimdraid {
namespace {

struct MapParam {
  int ds;
  int dr;
  int dm;
};

class ArrayMapProperty : public ::testing::TestWithParam<MapParam> {
 protected:
  ArrayMapProperty() : geo_(MakeTestGeometry()), layout_(&geo_) {}
  DiskGeometry geo_;
  DiskLayout layout_;
};

TEST_P(ArrayMapProperty, FragmentsPartitionAndPlaceCorrectly) {
  const MapParam p = GetParam();
  ArrayAspect aspect;
  aspect.ds = p.ds;
  aspect.dr = p.dr;
  aspect.dm = p.dm;
  const uint64_t dataset = 3000;
  ArrayLayout array(&layout_, aspect, /*stripe_unit=*/16, dataset);
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const uint32_t sectors = 1 + static_cast<uint32_t>(rng.UniformU64(100));
    const uint64_t lba = rng.UniformU64(dataset - sectors);
    const auto frags = array.Map(lba, sectors);
    uint64_t cur = lba;
    for (const ArrayFragment& f : frags) {
      EXPECT_EQ(f.logical_lba, cur);
      EXPECT_GT(f.sectors, 0u);
      cur += f.sectors;
      ASSERT_EQ(f.replicas.size(),
                static_cast<size_t>(aspect.dr) * aspect.dm);
      // Stripe column consistency.
      EXPECT_EQ(f.group, (f.logical_lba / 16) % array.num_groups());
      std::set<uint32_t> disks;
      for (size_t m = 0; m < static_cast<size_t>(aspect.dm); ++m) {
        for (size_t r = 0; r < static_cast<size_t>(aspect.dr); ++r) {
          const ReplicaLocation& loc =
              f.replicas[m * static_cast<size_t>(aspect.dr) + r];
          EXPECT_EQ(loc.disk, array.DiskFor(f.group, static_cast<uint32_t>(m)));
          disks.insert(loc.disk);
          // Physical contiguity of the copy.
          const Chs first = layout_.ToChs(loc.lba);
          const Chs last = layout_.ToChs(loc.lba + f.sectors - 1);
          EXPECT_EQ(first.cylinder, last.cylinder);
          EXPECT_EQ(first.head, last.head);
          EXPECT_EQ(loc.lba + f.sectors - 1,
                    layout_.ToLba(Chs{first.cylinder, first.head,
                                      first.sector + f.sectors - 1}));
        }
      }
      EXPECT_EQ(disks.size(), static_cast<size_t>(aspect.dm));
    }
    EXPECT_EQ(cur, lba + sectors);
  }
}

TEST_P(ArrayMapProperty, SameLogicalRangeMapsIdentically) {
  const MapParam p = GetParam();
  ArrayAspect aspect;
  aspect.ds = p.ds;
  aspect.dr = p.dr;
  aspect.dm = p.dm;
  ArrayLayout array(&layout_, aspect, 16, 3000);
  const auto a = array.Map(123, 48);
  const auto b = array.Map(123, 48);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].logical_lba, b[i].logical_lba);
    EXPECT_EQ(a[i].sectors, b[i].sectors);
    for (size_t r = 0; r < a[i].replicas.size(); ++r) {
      EXPECT_EQ(a[i].replicas[r].lba, b[i].replicas[r].lba);
      EXPECT_EQ(a[i].replicas[r].disk, b[i].replicas[r].disk);
    }
  }
}

TEST_P(ArrayMapProperty, DistinctLogicalSectorsNeverShareAPhysicalSector) {
  const MapParam p = GetParam();
  ArrayAspect aspect;
  aspect.ds = p.ds;
  aspect.dr = p.dr;
  aspect.dm = p.dm;
  const uint64_t dataset = 2000;
  ArrayLayout array(&layout_, aspect, 16, dataset);
  std::set<std::pair<uint32_t, uint64_t>> owned;
  for (uint64_t lba = 0; lba < dataset; lba += 16) {
    const auto frags = array.Map(lba, 16);
    for (const ArrayFragment& f : frags) {
      for (const ReplicaLocation& loc : f.replicas) {
        for (uint32_t s = 0; s < f.sectors; ++s) {
          EXPECT_TRUE(owned.insert({loc.disk, loc.lba + s}).second)
              << "duplicate physical sector disk=" << loc.disk
              << " lba=" << loc.lba + s;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ArrayMapProperty,
    ::testing::Values(MapParam{1, 1, 1}, MapParam{4, 1, 1}, MapParam{1, 2, 1},
                      MapParam{2, 2, 1}, MapParam{1, 1, 2}, MapParam{2, 1, 2},
                      MapParam{1, 2, 2}, MapParam{1, 4, 1}),
    [](const auto& suite_info) {
      return std::to_string(suite_info.param.ds) + "x" +
             std::to_string(suite_info.param.dr) + "x" +
             std::to_string(suite_info.param.dm);
    });

}  // namespace
}  // namespace mimdraid
