// ASATF starvation-control tests: plain SATF can bypass a far request
// indefinitely under a stream of nearby arrivals; ASATF's age credit bounds
// the wait.
#include <gtest/gtest.h>

#include "src/calib/predictor.h"
#include "src/disk/sim_disk.h"
#include "src/sched/positional_schedulers.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace mimdraid {
namespace {

class AsatfTest : public ::testing::Test {
 protected:
  AsatfTest()
      : disk_(&sim_, MakeSt39133Geometry(), MakeSt39133SeekProfile(),
              DiskNoiseModel::None(), 1, 0.0),
        predictor_(&disk_, 0.0) {
    ctx_.predictor = &predictor_;
    ctx_.layout = &disk_.layout();
  }

  QueuedRequest Req(uint64_t id, uint32_t cylinder, SimTime arrival) {
    QueuedRequest r;
    r.id = id;
    r.op = DiskOp::kRead;
    r.sectors = 1;
    uint64_t lba = kInvalidLba;
    for (uint32_t h = 0; h < 12 && lba == kInvalidLba; ++h) {
      lba = disk_.layout().ToLba(Chs{cylinder, h, 0});
    }
    r.candidate_lbas = {BlockAddr(lba)};
    r.arrival_us = arrival;
    return r;
  }

  // Simulates a dispatch stream: near requests keep arriving at the head's
  // cylinder; a single far request waits. Returns how many dispatches the
  // far request waited (capped at `max_dispatches`).
  int DispatchesUntilFarServed(Scheduler& sched, int max_dispatches) {
    std::vector<QueuedRequest> queue;
    uint64_t next_id = 1;
    const uint32_t near_cyl = 100;
    const uint32_t far_cyl = 6000;
    SimTime now;
    queue.push_back(Req(next_id++, far_cyl, now));
    const uint64_t far_id = queue.back().id;
    // Keep a few near requests in the queue at all times.
    for (int i = 0; i < 4; ++i) {
      queue.push_back(Req(next_id++, near_cyl + i, now));
    }
    for (int dispatch = 1; dispatch <= max_dispatches; ++dispatch) {
      ctx_.now = now;
      const SchedulerPick pick = sched.Pick(queue, ctx_);
      const bool served_far = queue[pick.queue_index].id == far_id;
      queue.erase(queue.begin() + static_cast<ptrdiff_t>(pick.queue_index));
      if (served_far) {
        return dispatch;
      }
      now += SimDuration(3000);  // ~one request service time
      queue.push_back(Req(next_id++, near_cyl + dispatch % 5, now));
    }
    return max_dispatches + 1;
  }

  Simulator sim_;
  SimDisk disk_;
  OraclePredictor predictor_;
  ScheduleContext ctx_;
};

TEST_F(AsatfTest, SatfStarvesTheFarRequest) {
  SatfScheduler satf;
  EXPECT_GT(DispatchesUntilFarServed(satf, 200), 200);
}

TEST_F(AsatfTest, AsatfServesTheFarRequestPromptly) {
  AsatfScheduler asatf(/*max_scan=*/0, /*age_weight=*/0.1);
  // Predicted access gap near-vs-far is < 10 ms; at weight 0.1 the credit
  // closes it within ~100 ms of waiting = ~33 dispatches.
  EXPECT_LE(DispatchesUntilFarServed(asatf, 200), 50);
}

TEST_F(AsatfTest, HigherAgeWeightServesSooner) {
  AsatfScheduler slow(0, 0.05);
  AsatfScheduler fast(0, 0.5);
  EXPECT_LT(DispatchesUntilFarServed(fast, 200),
            DispatchesUntilFarServed(slow, 200));
}

TEST_F(AsatfTest, ZeroWeightDegeneratesToSatf) {
  AsatfScheduler zero(0, 0.0);
  SatfScheduler satf;
  // Same crafted queue: identical picks.
  std::vector<QueuedRequest> q1;
  std::vector<QueuedRequest> q2;
  Rng rng(3);
  for (int i = 0; i < 12; ++i) {
    const QueuedRequest r =
        Req(i + 1, static_cast<uint32_t>(rng.UniformU64(6900)),
            SimTime(static_cast<int64_t>(rng.UniformU64(50000))));
    q1.push_back(r);
    q2.push_back(r);
  }
  ctx_.now = SimTime(60000);
  // ASATF considers all replicas; with single candidates it must match SATF.
  EXPECT_EQ(zero.Pick(q1, ctx_).queue_index, satf.Pick(q2, ctx_).queue_index);
}

TEST_F(AsatfTest, AsatfThroughputCloseToSatf) {
  // The age credit must not cost much average-case efficiency: run both over
  // the same random dispatch stream and compare total predicted cost.
  SatfScheduler satf;
  AsatfScheduler asatf(0, 0.1);
  Rng rng(11);
  double satf_total = 0.0;
  double asatf_total = 0.0;
  for (auto* pair : {&satf_total, &asatf_total}) {
    Scheduler* sched =
        pair == &satf_total ? static_cast<Scheduler*>(&satf) : &asatf;
    Rng local(11);
    std::vector<QueuedRequest> queue;
    uint64_t id = 1;
    SimTime now;
    for (int i = 0; i < 16; ++i) {
      queue.push_back(Req(id++, static_cast<uint32_t>(local.UniformU64(6900)),
                          now));
    }
    for (int dispatch = 0; dispatch < 100; ++dispatch) {
      ctx_.now = now;
      const SchedulerPick pick = sched->Pick(queue, ctx_);
      *pair += pick.predicted_service_us;
      queue.erase(queue.begin() + static_cast<ptrdiff_t>(pick.queue_index));
      now += SimDuration(3000);
      queue.push_back(Req(id++, static_cast<uint32_t>(local.UniformU64(6900)),
                          now));
    }
  }
  EXPECT_LT(asatf_total, satf_total * 1.3);
}

}  // namespace
}  // namespace mimdraid
